(* hgd: the resident hypergraph analysis daemon.

   Thin cmdliner front end over Hp_server.Server: bind a Unix-domain
   socket, keep datasets resident, memoize analyses, answer the line
   protocol documented in lib/server/protocol.mli.  `hgtool serve` is
   the same loop; this standalone binary is what a supervisor runs. *)

module Server = Hp_server.Server
open Cmdliner

let parse_bind what spec =
  if spec = "" then Ok None
  else
    match Hp_server.Netaddr.parse_hostport spec with
    | Ok hp -> Ok (Some hp)
    | Error msg -> Error (Printf.sprintf "--%s %s" what msg)

let serve socket workers cache timeout domains preload queue_limit
    shed_watermark max_file_bytes failpoints stats_samples cache_file
    wal_sync wal_checkpoint_every kcore_budget tcp http log_level quiet =
  (match Hp_util.Log.level_of_string log_level with
  | Ok l -> Hp_util.Log.set_level l
  | Error msg -> Printf.eprintf "hgd: %s, keeping info\n%!" msg);
  let ( let* ) r f =
    match r with
    | Ok v -> f v
    | Error msg ->
      Hp_util.Log.error ~comp:"hgd" ~fields:[ ("error", msg) ] "start failed";
      1
  in
  let* tcp = parse_bind "tcp" tcp in
  let* http = parse_bind "http" http in
  let config =
    {
      Server.socket_path = socket;
      workers;
      cache_capacity = cache;
      request_timeout = timeout;
      compute_domains = domains;
      preload;
      queue_limit;
      shed_watermark;
      max_file_bytes;
      failpoints;
      stats_samples;
      cache_file = (if cache_file = "" then None else Some cache_file);
      wal_sync;
      wal_checkpoint_every;
      kcore_budget;
      tcp;
      http;
    }
  in
  match Server.start config with
  | Error msg ->
    Hp_util.Log.error ~comp:"hgd" ~fields:[ ("error", msg) ] "start failed";
    1
  | Ok t ->
    if not quiet then begin
      Printf.printf "hgd: listening on %s (%d workers, %d cache entries)\n%!"
        socket workers cache;
      Option.iter
        (fun p -> Printf.printf "hgd: tcp protocol on port %d\n%!" p)
        (Server.tcp_port t);
      Option.iter
        (fun p -> Printf.printf "hgd: http /metrics + /healthz on port %d\n%!" p)
        (Server.http_port t)
    end;
    let stop_signal _ = Server.request_stop t in
    ignore (Sys.signal Sys.sigint (Sys.Signal_handle stop_signal));
    ignore (Sys.signal Sys.sigterm (Sys.Signal_handle stop_signal));
    Server.wait t;
    if not quiet then Printf.printf "hgd: shut down\n%!";
    0

let socket_arg =
  Arg.(value & opt string "hgd.sock" & info [ "s"; "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket to listen on.")

let workers_arg =
  Arg.(value & opt int (Hp_util.Parallel.recommended_domains ())
       & info [ "w"; "workers" ] ~docv:"N" ~doc:"Worker pool size.")

let cache_arg =
  Arg.(value & opt int 128 & info [ "cache" ] ~docv:"N"
         ~doc:"Result cache entry budget (0 disables caching).")

let timeout_arg =
  Arg.(value & opt float 30.0 & info [ "timeout" ] ~docv:"SECONDS"
         ~doc:"Per-request compute budget (0 disables the check).")

let domains_arg =
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
         ~doc:"Domains handed to each analysis kernel.")

let preload_arg =
  Arg.(value & opt_all file [] & info [ "preload" ] ~docv:"FILE"
         ~doc:"Dataset to load before accepting connections (repeatable).")

let queue_limit_arg =
  Arg.(value & opt int 128 & info [ "queue-limit" ] ~docv:"N"
         ~doc:"Connections waiting for a worker before ERR busy.")

let shed_watermark_arg =
  Arg.(value & opt int 64 & info [ "shed-watermark" ] ~docv:"N"
         ~doc:"Queue depth at which analyses become cache-only \
               (0 disables shedding).")

let max_file_bytes_arg =
  Arg.(value & opt int (1 lsl 30) & info [ "max-file-bytes" ] ~docv:"BYTES"
         ~doc:"Reject dataset files larger than this (0 = unlimited).")

let failpoints_arg =
  let env = Cmd.Env.info "HGD_FAILPOINTS" in
  Arg.(value & opt string "" & info [ "failpoints" ] ~env ~docv:"SPEC"
         ~doc:"Fault-injection spec, e.g. \
               $(i,registry.read=err*1;core.peel=sleep:50).  Test-only.")

let stats_samples_arg =
  Arg.(value & opt int 0 & info [ "stats-samples" ] ~docv:"N"
         ~doc:"Estimate STATS path metrics from N sampled BFS sources \
               instead of the exact all-pairs sweep (0 = exact).")

let cache_file_arg =
  Arg.(value & opt string "" & info [ "cache-file" ] ~docv:"FILE"
         ~doc:"Persist the result cache here on shutdown and restore it on \
               startup, so a restarted daemon answers repeated queries warm \
               (empty = memory-only).")

let wal_sync_conv =
  let parse s =
    Result.map_error
      (fun m -> `Msg m)
      (Hp_wal.Wal.sync_policy_of_string s)
  in
  let print ppf p =
    Format.pp_print_string ppf (Hp_wal.Wal.sync_policy_to_string p)
  in
  Arg.conv (parse, print)

let wal_sync_arg =
  Arg.(value & opt wal_sync_conv Hp_wal.Wal.Batch
       & info [ "wal-sync" ] ~docv:"POLICY"
           ~doc:"fsync policy for write-ahead-log appends: $(i,always) \
                 (every mutation power-loss durable), $(i,batch) \
                 (periodic; the default), or $(i,never) (OS-paced).")

let wal_checkpoint_arg =
  Arg.(value & opt int 0 & info [ "wal-checkpoint-every" ] ~docv:"N"
         ~doc:"Compact a dataset's write-ahead log into a fresh sibling \
               snapshot after every N mutations (0 = only on an explicit \
               CHECKPOINT request).")

let kcore_budget_arg =
  Arg.(value & opt int 4096 & info [ "kcore-budget" ] ~docv:"N"
         ~doc:"Visit budget for an incremental k-core repair: a mutation \
               whose affected subcore would exceed N vertices + hyperedges \
               falls back to a full re-peel instead (reported by INFO as \
               $(i,kcore_budget_fallbacks)).  Default 4096; must be >= 1.")

let tcp_arg =
  Arg.(value & opt string "" & info [ "tcp" ] ~docv:"HOST:PORT"
         ~doc:"Also serve the protocol over TCP via the nonblocking event \
               loop (e.g. $(i,127.0.0.1:7070), $(i,:7070) for all \
               interfaces, port 0 for an ephemeral port).  The same port \
               answers HTTP $(i,GET /metrics) and $(i,GET /healthz).")

let http_arg =
  Arg.(value & opt string "" & info [ "http" ] ~docv:"HOST:PORT"
         ~doc:"Dedicated HTTP port for $(i,GET /metrics) (Prometheus text) \
               and $(i,GET /healthz), for scrapers kept away from the \
               protocol port.")

let log_level_arg =
  let env = Cmd.Env.info "HGD_LOG_LEVEL" in
  Arg.(value & opt string "info" & info [ "log-level" ] ~env ~docv:"LEVEL"
         ~doc:"Structured-log threshold: debug, info, warn, or error.")

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress startup chatter.")

let () =
  let doc = "Resident hypergraph analysis server with result caching." in
  let cmd =
    Cmd.v (Cmd.info "hgd" ~doc)
      Term.(const serve $ socket_arg $ workers_arg $ cache_arg $ timeout_arg
            $ domains_arg $ preload_arg $ queue_limit_arg $ shed_watermark_arg
            $ max_file_bytes_arg $ failpoints_arg $ stats_samples_arg
            $ cache_file_arg $ wal_sync_arg $ wal_checkpoint_arg
            $ kcore_budget_arg $ tcp_arg $ http_arg $ log_level_arg
            $ quiet_arg)
  in
  exit (Cmd.eval' cmd)
