(* hgtool: command-line access to the hypergraph toolkit.

   Subcommands:
     generate     write the synthetic Cellzome dataset as a .hg file
     stats        Section-2 statistics of a .hg file
     kcore        k-core / core decomposition of a .hg or .mtx file
     cover        greedy (multi)cover bait selection
     export-pajek Figure-3 style .net/.clu export
     pack         write a dataset as a binary .hgsnap snapshot
     unpack       write a .hgsnap snapshot back out as a .hg text file
     verify-snap  deep-check a snapshot (framing, checksums, identity)
     wal-dump     decode a .hgwal write-ahead log (header + records)
     checkpoint   compact a dataset's WAL into a fresh sibling snapshot
     serve        run the resident analysis server (hgd) in the foreground
     query        send one request to a running server
     metrics      fetch server counters/histograms (table or Prometheus)
     trace        show the slowest recent requests with per-stage timings

   File-inspection commands (verify-snap, wal-dump, checkpoint) follow
   the exit-code table in README.md: 0 = ok, 1 = I/O or usage error,
   2 = corrupt or invalid content. *)

module H = Hp_hypergraph.Hypergraph
module HIO = Hp_hypergraph.Hypergraph_io
module HP = Hp_hypergraph.Hypergraph_path
module HC = Hp_hypergraph.Hypergraph_core
module Snap = Hp_snapshot.Snapshot
module Wal = Hp_wal.Wal
open Cmdliner

(* README exit-code table: corruption is distinguishable from a missing
   file in scripts without parsing stderr. *)
let exit_io = 1
let exit_corrupt = 2

(* A malformed or unreadable input must exit non-zero with a one-line
   diagnostic naming the file (and line, when the parser knows it) —
   never an exception backtrace. *)
let load path =
  match
    if Filename.check_suffix path Snap.file_extension then
      match Snap.read path with
      | Ok (h, _) -> h
      | Error e -> failwith (Snap.error_to_string e)
    else if Filename.check_suffix path ".mtx" then
      Hp_data.Matrix_market.to_hypergraph (Hp_data.Matrix_market.read path)
    else HIO.read path
  with
  | h -> h
  | exception Sys_error msg ->
    Printf.eprintf "hgtool: %s\n" msg;
    exit 1
  | exception (Failure msg | Invalid_argument msg) ->
    Printf.eprintf "hgtool: %s: %s\n" path msg;
    exit 1

let input_arg =
  let doc =
    "Input hypergraph: .hg (membership lists), .mtx (MatrixMarket), or \
     .hgsnap (binary snapshot)."
  in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let seed_arg =
  let doc = "Random seed for the generator." in
  Arg.(value & opt int 2004 & info [ "seed" ] ~docv:"SEED" ~doc)

(* generate *)
let generate_cmd =
  let run seed output =
    let ds = Hp_data.Cellzome.generate ~seed () in
    HIO.write output ds.hypergraph;
    Printf.printf "wrote %s: %d proteins, %d complexes, |E| = %d\n" output
      (H.n_vertices ds.hypergraph) (H.n_edges ds.hypergraph)
      (H.total_incidence ds.hypergraph)
  in
  let output =
    Arg.(value & opt string "cellzome.hg" & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output path.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Write the synthetic Cellzome dataset as a .hg file.")
    Term.(const run $ seed_arg $ output)

(* stats *)
let stats_cmd =
  let run path samples domains timeout seed =
    let h = load path in
    Printf.printf "vertices: %d\nhyperedges: %d\ntotal incidence |E|: %d\n"
      (H.n_vertices h) (H.n_edges h) (H.total_incidence h);
    Printf.printf "max vertex degree: %d\nmax hyperedge size: %d\n"
      (H.max_vertex_degree h) (H.max_edge_size h);
    let summary = HP.component_summary h in
    Printf.printf "components: %d" (Array.length summary);
    if Array.length summary > 0 then begin
      let nv, ne = summary.(0) in
      Printf.printf " (largest: %d vertices, %d hyperedges)" nv ne
    end;
    print_newline ();
    let deadline = Hp_util.Deadline.of_timeout timeout in
    let sampled = samples > 0 && samples < H.n_vertices h in
    let diam, apl =
      match
        if sampled then
          HP.sampled_diameter_and_average_path ~domains ~deadline
            (Hp_util.Prng.create seed) h ~samples
        else HP.diameter_and_average_path ~domains ~deadline h
      with
      | r -> r
      | exception Hp_util.Deadline.Expired ->
        Printf.eprintf "hgtool: stats: path sweep exceeded the %.1f s budget\n"
          timeout;
        exit 1
    in
    if sampled then Printf.printf "sampled sources: %d\n" samples;
    Printf.printf "diameter: %d\naverage path length: %.3f\n" diam apl;
    let hist = Hp_stats.Degree_dist.vertex_histogram h in
    (match Hp_stats.Powerlaw.fit_loglog hist with
    | fit ->
      Printf.printf "power-law fit: log10(c) = %.3f, gamma = %.3f, R^2 = %.3f\n"
        fit.log10_c fit.gamma fit.r2
    | exception Invalid_argument _ ->
      print_endline "power-law fit: not enough distinct degrees")
  in
  let samples =
    Arg.(value & opt int 0 & info [ "samples" ] ~docv:"N"
           ~doc:"Estimate path metrics from N sampled BFS sources \
                 instead of the exact all-pairs sweep (0 = exact).")
  in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
           ~doc:"Domains for the path sweep.")
  in
  let timeout =
    Arg.(value & opt float 0.0 & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Abort the path sweep past this budget (0 = none).")
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Network statistics (paper Section 2).")
    Term.(const run $ input_arg $ samples $ domains $ timeout $ seed_arg)

(* kcore *)
let kcore_cmd =
  let run path k naive list_members =
    let h = load path in
    let strategy = if naive then HC.Naive else HC.Overlap in
    let result, k =
      match k with
      | Some k -> (HC.k_core ~strategy h k, k)
      | None ->
        let k, r = HC.max_core ~strategy h in
        (r, k)
    in
    Printf.printf "%d-core: %d vertices, %d hyperedges\n" k
      (H.n_vertices result.core) (H.n_edges result.core);
    if list_members then
      Array.iter
        (fun v -> print_endline (H.vertex_name h v))
        result.vertex_ids
  in
  let k =
    Arg.(value & opt (some int) None & info [ "k" ] ~docv:"K"
           ~doc:"Core index; the maximum core when omitted.")
  in
  let naive =
    Arg.(value & flag & info [ "naive" ]
           ~doc:"Use subset-scan maximality tests instead of overlap counts.")
  in
  let list_members =
    Arg.(value & flag & info [ "members" ] ~doc:"List the core vertices by name.")
  in
  Cmd.v
    (Cmd.info "kcore" ~doc:"Compute a k-core or the maximum core (paper Section 3).")
    Term.(const run $ input_arg $ k $ naive $ list_members)

(* cover *)
let cover_cmd =
  let run path weighting r =
    let h = load path in
    let weights =
      match weighting with
      | "uniform" -> Hp_cover.Weighting.uniform h
      | "degree" -> Hp_cover.Weighting.degree h
      | "degree2" -> Hp_cover.Weighting.degree_squared h
      | other -> failwith ("unknown weighting: " ^ other)
    in
    let trace =
      if r <= 1 then Hp_cover.Greedy.vertex_cover_trace ~weights h
      else
        Hp_cover.Greedy.solve ~weights
          ~requirements:(Hp_cover.Multicover.uniform_requirements h ~r)
          h
    in
    Printf.printf "cover: %d vertices, total weight %.1f, average degree %.3f\n"
      (Array.length trace.cover) trace.total_weight
      (Hp_cover.Cover.average_degree h trace.cover);
    Array.iter (fun v -> print_endline (H.vertex_name h v)) trace.cover
  in
  let weighting =
    Arg.(value & opt string "uniform" & info [ "w"; "weighting" ] ~docv:"SCHEME"
           ~doc:"Vertex weights: uniform, degree, or degree2.")
  in
  let r =
    Arg.(value & opt int 1 & info [ "r" ] ~docv:"R"
           ~doc:"Cover each hyperedge R times (multicover when R > 1).")
  in
  Cmd.v
    (Cmd.info "cover" ~doc:"Greedy bait selection by vertex (multi)cover (Section 4).")
    Term.(const run $ input_arg $ weighting $ r)

(* export-pajek *)
let export_cmd =
  let run path dir prefix =
    let h = load path in
    let _, r = HC.max_core h in
    let net, clu =
      Hp_data.Pajek.write_figure3 ~dir ~prefix h ~core_vertices:r.vertex_ids
        ~core_edges:r.edge_ids
    in
    Printf.printf "wrote %s and %s\n" net clu
  in
  let dir =
    Arg.(value & opt string "." & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let prefix =
    Arg.(value & opt string "hypergraph" & info [ "p"; "prefix" ] ~docv:"NAME"
           ~doc:"Output file prefix.")
  in
  Cmd.v
    (Cmd.info "export-pajek"
       ~doc:"Export the bipartite drawing with the maximum core highlighted (Figure 3).")
    Term.(const run $ input_arg $ dir $ prefix)

(* components *)
let components_cmd =
  let run path =
    let h = load path in
    let summary = HP.component_summary h in
    Printf.printf "%d components\n" (Array.length summary);
    let rows =
      Array.to_list
        (Array.mapi
           (fun i (nv, ne) -> [ string_of_int (i + 1); string_of_int nv; string_of_int ne ])
           summary)
    in
    print_endline
      (Hp_util.Table.render ~header:[ "component"; "vertices"; "hyperedges" ] rows)
  in
  Cmd.v
    (Cmd.info "components" ~doc:"Connected components, largest first.")
    Term.(const run $ input_arg)

(* powerlaw *)
let powerlaw_cmd =
  let run path =
    let h = load path in
    let hist = Hp_stats.Degree_dist.vertex_histogram h in
    Array.iter
      (fun (d, c) -> Printf.printf "%d %d\n" d c)
      (Hp_stats.Degree_dist.frequency_series hist);
    (match Hp_stats.Powerlaw.fit_loglog hist with
    | fit ->
      Printf.printf
        "# least squares: log10(c) = %.3f, gamma = %.3f, R^2 = %.3f\n"
        fit.log10_c fit.gamma fit.r2;
      let mle = Hp_stats.Powerlaw.fit_mle hist in
      Printf.printf "# discrete MLE: gamma = %.3f over %d observations\n"
        mle.gamma_mle mle.n_tail;
      Printf.printf "# KS distance at LS exponent: %.4f\n"
        (Hp_stats.Powerlaw.ks_distance hist ~gamma:fit.gamma ~dmin:1)
    | exception Invalid_argument _ ->
      print_endline "# not enough distinct degrees to fit")
  in
  Cmd.v
    (Cmd.info "powerlaw"
       ~doc:"Degree frequency series (gnuplot-ready) with power-law fits.")
    Term.(const run $ input_arg)

(* mm-generate *)
let mm_generate_cmd =
  let run kind n nnz seed output =
    let rng = Hp_util.Prng.create seed in
    let m =
      match kind with
      | "banded" -> Hp_data.Matrix_market.banded rng ~n ~bandwidth:12 ~fill:0.75
      | "block" ->
        Hp_data.Matrix_market.block_structured rng ~n ~block:24 ~fill:0.8
          ~noise:(max 0 (nnz - (n * 20)))
      | "random" ->
        Hp_data.Matrix_market.random_rect rng ~rows:n ~cols:n ~nnz
      | other -> failwith ("unknown matrix kind: " ^ other)
    in
    Hp_data.Matrix_market.write output m;
    Printf.printf "wrote %s: %dx%d, %d stored entries\n" output m.rows m.cols
      (Hp_data.Matrix_market.nnz m)
  in
  let kind =
    Arg.(value & opt string "banded" & info [ "kind" ] ~docv:"KIND"
           ~doc:"Matrix structure: banded, block, or random.")
  in
  let n = Arg.(value & opt int 1000 & info [ "n" ] ~docv:"N" ~doc:"Matrix order.") in
  let nnz =
    Arg.(value & opt int 20000 & info [ "nnz" ] ~docv:"NNZ"
           ~doc:"Target nonzeros (random/block kinds).")
  in
  let output =
    Arg.(value & opt string "matrix.mtx" & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output path.")
  in
  Cmd.v
    (Cmd.info "mm-generate" ~doc:"Write a synthetic MatrixMarket matrix.")
    Term.(const run $ kind $ n $ nnz $ seed_arg $ output)

(* reliability *)
let reliability_cmd =
  let run path r p trials seed =
    let h = load path in
    let weights = Hp_cover.Weighting.degree_squared h in
    let baits =
      if r <= 1 then Hp_cover.Greedy.vertex_cover ~weights h
      else
        (Hp_cover.Greedy.solve ~weights
           ~requirements:(Hp_cover.Multicover.uniform_requirements h ~r)
           h)
          .cover
    in
    let rng = Hp_util.Prng.create seed in
    let rel =
      Hp_data.Tap_experiment.assess rng h ~baits ~reproducibility:p ~trials
    in
    Printf.printf
      "baits: %d (degree^2 %s)\n\
       coverable complexes: %d\n\
       mean identified per run: %.1f%%\n\
       mean identified twice per run: %.1f%%\n\
       always identified: %d, never identified: %d\n"
      (Array.length baits)
      (if r <= 1 then "cover" else Printf.sprintf "%d-multicover" r)
      rel.coverable
      (100.0 *. rel.mean_identified_fraction)
      (100.0 *. rel.mean_twice_identified_fraction)
      rel.always_identified rel.never_identified
  in
  let r =
    Arg.(value & opt int 1 & info [ "r" ] ~docv:"R" ~doc:"Multicover requirement.")
  in
  let p =
    Arg.(value & opt float 0.7 & info [ "p"; "reproducibility" ] ~docv:"P"
           ~doc:"Per-pull success probability.")
  in
  let trials =
    Arg.(value & opt int 200 & info [ "trials" ] ~docv:"N" ~doc:"Monte-Carlo trials.")
  in
  Cmd.v
    (Cmd.info "reliability"
       ~doc:"Simulate TAP identification reliability for a computed bait set.")
    Term.(const run $ input_arg $ r $ p $ trials $ seed_arg)

(* dual *)
let dual_cmd =
  let run path output =
    let h = load path in
    let d = Hp_hypergraph.Hypergraph_dual.dual h in
    HIO.write output d;
    Printf.printf "wrote %s: %d vertices (complexes), %d hyperedges (proteins)\n"
      output (H.n_vertices d) (H.n_edges d)
  in
  let output =
    Arg.(value & opt string "dual.hg" & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output path.")
  in
  Cmd.v
    (Cmd.info "dual" ~doc:"Write the dual hypergraph (complexes become vertices).")
    Term.(const run $ input_arg $ output)

(* pack *)
let pack_cmd =
  let run path output =
    let h = load path in
    let output =
      match output with Some o -> o | None -> Snap.sibling_path path
    in
    match Snap.pack h output with
    | info ->
      Printf.printf "wrote %s: %d bytes, identity %s\n" output info.Snap.bytes
        info.Snap.identity
    | exception Sys_error msg ->
      Printf.eprintf "hgtool: pack: %s\n" msg;
      exit 1
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output path; the input's sibling $(i,.hgsnap) when omitted.")
  in
  Cmd.v
    (Cmd.info "pack"
       ~doc:"Write a dataset as a binary snapshot the server can mmap \
             without re-parsing.")
    Term.(const run $ input_arg $ output)

(* unpack *)
let unpack_cmd =
  let run path output =
    if not (Filename.check_suffix path Snap.file_extension) then begin
      Printf.eprintf "hgtool: unpack: %s: expected a %s file\n" path
        Snap.file_extension;
      exit 1
    end;
    match Snap.read path with
    | Error e ->
      Printf.eprintf "hgtool: unpack: %s: %s\n" path (Snap.error_to_string e);
      exit 1
    | Ok (h, _) ->
      let output =
        match output with
        | Some o -> o
        | None -> Filename.remove_extension path ^ ".hg"
      in
      HIO.write output h;
      Printf.printf "wrote %s: %d proteins, %d complexes, |E| = %d\n" output
        (H.n_vertices h) (H.n_edges h) (H.total_incidence h)
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output path; the snapshot's sibling $(i,.hg) when omitted.")
  in
  Cmd.v
    (Cmd.info "unpack" ~doc:"Write a binary snapshot back out as a .hg text file.")
    Term.(const run $ input_arg $ output)

(* verify-snap *)
let verify_snap_cmd =
  let run path =
    match Snap.verify path with
    | Error (Snap.Io msg) ->
      Printf.eprintf "hgtool: verify-snap: %s\n" msg;
      exit exit_io
    | Error e ->
      Printf.eprintf "hgtool: verify-snap: %s: %s\n" path
        (Snap.error_to_string e);
      exit exit_corrupt
    | Ok snap ->
      Printf.printf "%s: ok\nidentity: %s\nvertices: %d\nhyperedges: %d\nincidence: %d\nfile bytes: %d\n"
        path snap.Snap.identity snap.Snap.n_vertices snap.Snap.n_edges
        snap.Snap.incidence snap.Snap.file_bytes;
      List.iter
        (fun (name, off, len) ->
          Printf.printf "section %-16s offset %-10d %d bytes\n" name off len)
        snap.Snap.sections
  in
  (* [string], not [file]: a missing path must reach [Snap.verify] and
     exit 1 per the README table, not die in cmdliner's converter. *)
  let input =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"Snapshot (.hgsnap) to verify.")
  in
  Cmd.v
    (Cmd.info "verify-snap"
       ~doc:"Deep-check a snapshot: framing, section checksums, CSR \
             invariants, and the content identity digest.  Exits 1 on \
             I/O failure, 2 on corrupt content.")
    Term.(const run $ input)

(* wal-dump *)
let wal_dump_cmd =
  let run path =
    match Wal.read path with
    | Error (Wal.Io msg) ->
      Printf.eprintf "hgtool: wal-dump: %s\n" msg;
      exit exit_io
    | Error e ->
      Printf.eprintf "hgtool: wal-dump: %s: %s\n" path (Wal.error_to_string e);
      exit exit_corrupt
    | Ok log ->
      Printf.printf
        "%s: ok\nhandle: %s\nbase identity: %s\nbase epoch: %d\nrecords: %d\nvalid bytes: %d\n"
        path log.Wal.handle log.Wal.base_identity log.Wal.base_epoch
        (Array.length log.Wal.records)
        log.Wal.valid_bytes;
      if log.Wal.torn_bytes > 0 then
        Printf.printf "torn tail: %d bytes (recovery truncates them)\n"
          log.Wal.torn_bytes;
      Array.iter
        (fun (r : Wal.record) ->
          match r.op with
          | Wal.Add_vertex { name } ->
            Printf.printf "epoch %-6d addvertex %s\n" r.epoch name
          | Wal.Add_edge { name; members } ->
            Printf.printf "epoch %-6d addedge %s%s\n" r.epoch name
              (Array.fold_left
                 (fun acc v -> acc ^ " " ^ string_of_int v)
                 "" members)
          | Wal.Del_edge { edge } ->
            Printf.printf "epoch %-6d deledge %d\n" r.epoch edge)
        log.Wal.records
  in
  let input =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"Write-ahead log (.hgwal) to decode.")
  in
  Cmd.v
    (Cmd.info "wal-dump"
       ~doc:"Decode a write-ahead log: header, then one line per record. \
             A torn tail is reported and tolerated (recovery truncates \
             it); mid-log corruption exits 2, I/O failure exits 1.")
    Term.(const run $ input)

(* checkpoint *)
let checkpoint_cmd =
  let run path =
    let module R = Hp_server.Registry in
    let reg = R.create () in
    match R.load reg path with
    | Error (R.Read_failed msg) ->
      Printf.eprintf "hgtool: checkpoint: %s\n" msg;
      exit exit_io
    | Error (R.Parse_failed msg) ->
      Printf.eprintf "hgtool: checkpoint: %s\n" msg;
      exit exit_corrupt
    | Ok (entry, _) -> (
      match R.checkpoint reg entry.R.digest with
      | Error (`Missing | `Ambiguous) ->
        Printf.eprintf "hgtool: checkpoint: %s: dataset vanished mid-run\n" path;
        exit exit_io
      | Error (`Io msg) ->
        Printf.eprintf "hgtool: checkpoint: %s\n" msg;
        exit exit_io
      | Ok info ->
        Printf.printf
          "wrote %s: %d bytes, identity %s\nepoch: %d\nrecords folded: %d\n"
          info.R.snapshot_path info.R.snapshot_bytes info.R.snapshot_identity
          info.R.at_epoch info.R.records_folded;
        (* Closes the fresh WAL writer so the log header is flushed. *)
        ignore (R.evict reg entry.R.digest))
  in
  let input =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"Dataset (.hg, .mtx, or .hgsnap); its sibling .hgwal, if \
                 any, is replayed first and then compacted away.")
  in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:"Compact a dataset's write-ahead log into a fresh sibling \
             snapshot, exactly as the server's CHECKPOINT verb does, so \
             recovery cost drops to zero.  Exits 1 on I/O failure, 2 on \
             corrupt input.")
    Term.(const run $ input)

(* serve *)
let socket_arg =
  Arg.(value & opt string "hgd.sock" & info [ "s"; "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket of the server.")

let serve_cmd =
  let run socket workers cache timeout domains preload queue_limit
      shed_watermark max_file_bytes failpoints stats_samples cache_file
      wal_sync wal_checkpoint_every kcore_budget tcp http log_level =
    (match Hp_util.Log.level_of_string log_level with
    | Ok l -> Hp_util.Log.set_level l
    | Error msg -> Printf.eprintf "hgtool: serve: %s, keeping info\n%!" msg);
    let parse_bind what spec =
      if spec = "" then None
      else
        match Hp_server.Netaddr.parse_hostport spec with
        | Ok hp -> Some hp
        | Error msg ->
          Printf.eprintf "hgtool: serve: --%s %s\n" what msg;
          exit 1
    in
    let tcp = parse_bind "tcp" tcp in
    let http = parse_bind "http" http in
    let config =
      {
        Hp_server.Server.socket_path = socket;
        workers;
        cache_capacity = cache;
        request_timeout = timeout;
        compute_domains = domains;
        preload;
        queue_limit;
        shed_watermark;
        max_file_bytes;
        failpoints;
        stats_samples;
        cache_file = (if cache_file = "" then None else Some cache_file);
        wal_sync;
        wal_checkpoint_every;
        kcore_budget;
        tcp;
        http;
      }
    in
    match Hp_server.Server.start config with
    | Error msg ->
      Printf.eprintf "hgtool: serve: %s\n" msg;
      exit 1
    | Ok t ->
      Printf.printf "hgtool: serving on %s (%d workers, %d cache entries)\n%!"
        socket workers cache;
      Option.iter
        (fun p -> Printf.printf "hgtool: tcp protocol on port %d\n%!" p)
        (Hp_server.Server.tcp_port t);
      Option.iter
        (fun p -> Printf.printf "hgtool: http /metrics + /healthz on port %d\n%!" p)
        (Hp_server.Server.http_port t);
      let stop_signal _ = Hp_server.Server.request_stop t in
      ignore (Sys.signal Sys.sigint (Sys.Signal_handle stop_signal));
      ignore (Sys.signal Sys.sigterm (Sys.Signal_handle stop_signal));
      Hp_server.Server.wait t
  in
  let workers =
    Arg.(value & opt int (Hp_util.Parallel.recommended_domains ())
         & info [ "w"; "workers" ] ~docv:"N" ~doc:"Worker pool size.")
  in
  let cache =
    Arg.(value & opt int 128 & info [ "cache" ] ~docv:"N"
           ~doc:"Result cache entry budget (0 disables caching).")
  in
  let timeout =
    Arg.(value & opt float 30.0 & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Per-request compute budget (0 disables the check).")
  in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
           ~doc:"Domains handed to each analysis kernel.")
  in
  let preload =
    Arg.(value & opt_all file [] & info [ "preload" ] ~docv:"FILE"
           ~doc:"Dataset to load before accepting connections (repeatable).")
  in
  let queue_limit =
    Arg.(value & opt int 128 & info [ "queue-limit" ] ~docv:"N"
           ~doc:"Connections waiting for a worker before ERR busy.")
  in
  let shed_watermark =
    Arg.(value & opt int 64 & info [ "shed-watermark" ] ~docv:"N"
           ~doc:"Queue depth at which analyses become cache-only \
                 (0 disables shedding).")
  in
  let max_file_bytes =
    Arg.(value & opt int (1 lsl 30) & info [ "max-file-bytes" ] ~docv:"BYTES"
           ~doc:"Reject dataset files larger than this (0 = unlimited).")
  in
  let failpoints =
    let env = Cmd.Env.info "HGD_FAILPOINTS" in
    Arg.(value & opt string "" & info [ "failpoints" ] ~env ~docv:"SPEC"
           ~doc:"Fault-injection spec (test-only).")
  in
  let stats_samples =
    Arg.(value & opt int 0 & info [ "stats-samples" ] ~docv:"N"
           ~doc:"Estimate STATS path metrics from N sampled BFS sources \
                 (0 = exact).")
  in
  let cache_file =
    Arg.(value & opt string "" & info [ "cache-file" ] ~docv:"FILE"
           ~doc:"Persist the result cache here on shutdown and restore it \
                 on startup, so a restarted server answers repeated \
                 queries warm (empty = memory-only).")
  in
  let policy_conv =
    Arg.conv
      ( (fun s ->
          Result.map_error (fun m -> `Msg m) (Wal.sync_policy_of_string s)),
        fun ppf p -> Format.pp_print_string ppf (Wal.sync_policy_to_string p) )
  in
  let wal_sync =
    Arg.(value & opt policy_conv Wal.Batch & info [ "wal-sync" ] ~docv:"POLICY"
           ~doc:"fsync policy for write-ahead-log appends: $(i,always), \
                 $(i,batch) (default), or $(i,never).")
  in
  let wal_checkpoint_every =
    Arg.(value & opt int 0 & info [ "wal-checkpoint-every" ] ~docv:"N"
           ~doc:"Compact a dataset's WAL into a fresh sibling snapshot \
                 after every N mutations (0 = manual CHECKPOINT only).")
  in
  let kcore_budget =
    Arg.(value & opt int 4096 & info [ "kcore-budget" ] ~docv:"N"
           ~doc:"Visit budget for an incremental k-core repair before it \
                 falls back to a full re-peel (default 4096, >= 1).")
  in
  let tcp =
    Arg.(value & opt string "" & info [ "tcp" ] ~docv:"HOST:PORT"
           ~doc:"Also serve the protocol over TCP via the nonblocking event \
                 loop (port 0 = ephemeral); the same port answers HTTP \
                 $(i,GET /metrics) and $(i,GET /healthz).")
  in
  let http =
    Arg.(value & opt string "" & info [ "http" ] ~docv:"HOST:PORT"
           ~doc:"Dedicated HTTP port for $(i,GET /metrics) and \
                 $(i,GET /healthz).")
  in
  let log_level =
    let env = Cmd.Env.info "HGD_LOG_LEVEL" in
    Arg.(value & opt string "info" & info [ "log-level" ] ~env ~docv:"LEVEL"
           ~doc:"Structured-log threshold: debug, info, warn, or error.")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the resident analysis server in the foreground.")
    Term.(const run $ socket_arg $ workers $ cache $ timeout $ domains $ preload
          $ queue_limit $ shed_watermark $ max_file_bytes $ failpoints
          $ stats_samples $ cache_file $ wal_sync $ wal_checkpoint_every
          $ kcore_budget $ tcp $ http $ log_level)

(* The one-shot commands and `query` target the Unix socket by
   default; --tcp HOST:PORT aims them at a TCP server instead — same
   protocol, so everything downstream is transport-blind. *)
let tcp_target_arg =
  Arg.(value & opt string "" & info [ "tcp" ] ~docv:"HOST:PORT"
         ~doc:"Target a server over TCP instead of the Unix socket.")

let resolve_addr ~what ~socket ~tcp =
  if tcp = "" then Hp_server.Client.Unix_path socket
  else
    match Hp_server.Netaddr.parse_hostport tcp with
    | Ok (host, port) -> Hp_server.Client.Tcp { host; port }
    | Error msg ->
      Printf.eprintf "hgtool: %s: --tcp %s\n" what msg;
      exit 1

(* Shared plumbing for the one-shot observability commands: send a
   single request, fail loudly on transport or server errors, hand the
   payload to the renderer. *)
let one_shot ~what ~addr req render =
  match
    Hp_server.Client.with_connection_addr addr (fun c ->
        Hp_server.Client.request c req)
  with
  | Error msg ->
    Printf.eprintf "hgtool: %s: %s\n" what msg;
    exit 1
  | Ok (Hp_server.Protocol.Err { code; message; _ }) ->
    Printf.eprintf "hgtool: %s: %s: %s\n" what
      (Hp_server.Protocol.error_code_to_string code)
      message;
    exit 1
  | Ok (Hp_server.Protocol.Ok kvs) -> render kvs

(* metrics *)
let metrics_cmd =
  let run socket tcp format =
    let addr = resolve_addr ~what:"metrics" ~socket ~tcp in
    let fmt =
      match String.lowercase_ascii format with
      | "table" | "text" -> Hp_server.Protocol.Table
      | "prom" | "prometheus" -> Hp_server.Protocol.Prometheus
      | other ->
        Printf.eprintf "hgtool: metrics: unknown format %S (table or prom)\n" other;
        exit 1
    in
    one_shot ~what:"metrics" ~addr (Hp_server.Protocol.Metrics fmt) (fun kvs ->
        match fmt with
        | Hp_server.Protocol.Prometheus ->
          (* The exposition lines arrive keyed by line number, already
             in order; printing the values verbatim reassembles the
             text format a Prometheus scraper expects. *)
          List.iter (fun (_, line) -> print_endline line) kvs
        | Hp_server.Protocol.Table ->
          print_endline
            (Hp_util.Table.render ~header:[ "metric"; "value" ]
               (List.map (fun (k, v) -> [ k; v ]) kvs)))
  in
  let format =
    Arg.(value & opt string "table" & info [ "format" ] ~docv:"FORMAT"
           ~doc:"Output format: $(i,table) (key/value) or $(i,prom) \
                 (Prometheus text exposition).")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Fetch a running server's counters and latency histograms.")
    Term.(const run $ socket_arg $ tcp_target_arg $ format)

(* trace *)
let trace_cmd =
  let run socket tcp n =
    let addr = resolve_addr ~what:"trace" ~socket ~tcp in
    one_shot ~what:"trace" ~addr (Hp_server.Protocol.Trace n) (fun kvs ->
        let count =
          match List.assoc_opt "count" kvs with
          | Some c -> (try int_of_string c with _ -> 0)
          | None -> 0
        in
        if count = 0 then print_endline "no traced requests yet"
        else begin
          let field i name =
            Option.value ~default:"-"
              (List.assoc_opt (Printf.sprintf "%d.%s" i name) kvs)
          in
          let cols =
            [ "trace"; "status"; "cached"; "total_us"; "queue_us"; "parse_us";
              "cache_us"; "compute_us"; "write_us"; "request" ]
          in
          print_endline
            (Hp_util.Table.render ~header:cols
               (List.init count (fun i -> List.map (field i) cols)))
        end)
  in
  let n =
    Arg.(value & opt (some int) None & info [ "n" ] ~docv:"N"
           ~doc:"Show the N slowest retained requests (server default 10).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Show the slowest recent requests with per-stage timings \
             (queue, parse, cache, compute, write).")
    Term.(const run $ socket_arg $ tcp_target_arg $ n)

(* query *)
let print_reply_stdout = function
  | Hp_server.Protocol.Err { code; message; retry_after_ms } ->
    let hint =
      match retry_after_ms with
      | Some ms -> Printf.sprintf " (retry after %d ms)" ms
      | None -> ""
    in
    Printf.printf "error\t%s: %s%s\n"
      (Hp_server.Protocol.error_code_to_string code) message hint;
    false
  | Hp_server.Protocol.Ok kvs ->
    List.iter (fun (k, v) -> Printf.printf "%s\t%s\n" k v) kvs;
    true

(* One request line per stdin line, shipped as a single pipelined
   BATCH; items are printed as they stream back, separated by their
   "item <i>" header so the output stays machine-splittable. *)
let run_batch_query addr =
  let lines = ref [] in
  (try
     while true do
       let line = String.trim (input_line stdin) in
       if line <> "" then lines := line :: !lines
     done
   with End_of_file -> ());
  let lines = List.rev !lines in
  if lines = [] then begin
    Printf.eprintf "hgtool: query --batch: no request lines on stdin\n";
    exit 1
  end;
  let outcome =
    Hp_server.Client.with_connection_addr addr (fun c ->
        Hp_server.Client.batch_lines c lines)
  in
  match outcome with
  | Error msg ->
    Printf.eprintf "hgtool: query: %s\n" msg;
    exit 1
  | Ok (Hp_server.Client.Refused reply) ->
    ignore (print_reply_stdout reply);
    exit 1
  | Ok (Hp_server.Client.Items items) ->
    let all_ok = ref true in
    List.iteri
      (fun i item ->
        Printf.printf "item\t%d\n" i;
        match item with
        | Ok reply -> if not (print_reply_stdout reply) then all_ok := false
        | Error msg ->
          Printf.printf "error\ttransport: %s\n" msg;
          all_ok := false)
      items;
    if not !all_ok then exit 1

let query_cmd =
  let run socket tcp retries timeout batch words =
    let addr = resolve_addr ~what:"query" ~socket ~tcp in
    if batch then begin
      if words <> [] then begin
        Printf.eprintf
          "hgtool: query: --batch reads request lines from stdin; drop the \
           positional request\n";
        exit 1
      end;
      run_batch_query addr;
      exit 0
    end;
    if words = [] then begin
      Printf.eprintf "hgtool: query: missing request (e.g. PING, LOAD file, STATS digest)\n";
      exit 1
    end;
    let line = String.concat " " words in
    let outcome =
      (* A well-formed request goes through the retrying caller, which
         honours ERR busy backoff hints and rides out a daemon restart.
         A malformed line is still sent verbatim, once, so the server
         answers it itself. *)
      match Hp_server.Protocol.parse_request line with
      | Ok req ->
        let policy =
          { Hp_server.Client.default_policy with retries; timeout }
        in
        Hp_server.Client.call_addr ~policy ~addr req
      | Error _ ->
        Hp_server.Client.with_connection_addr addr (fun c ->
            Hp_server.Client.request_line c line)
    in
    match outcome with
    | Error msg ->
      Printf.eprintf "hgtool: query: %s\n" msg;
      exit 1
    | Ok (Hp_server.Protocol.Err { code; message; retry_after_ms }) ->
      let hint =
        match retry_after_ms with
        | Some ms -> Printf.sprintf " (retry after %d ms)" ms
        | None -> ""
      in
      Printf.eprintf "error: %s: %s%s\n"
        (Hp_server.Protocol.error_code_to_string code) message hint;
      exit 1
    | Ok (Hp_server.Protocol.Ok kvs) ->
      List.iter (fun (k, v) -> Printf.printf "%s\t%s\n" k v) kvs
  in
  let retries =
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N"
           ~doc:"Retry busy or unreachable servers up to N times with \
                 jittered exponential backoff.")
  in
  let timeout =
    Arg.(value & opt float 0.0 & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Per-attempt I/O timeout (0 = none).")
  in
  let batch =
    Arg.(value & flag & info [ "batch" ]
           ~doc:"Read one request line per stdin line and send them all as a \
                 single pipelined BATCH over one connection; replies stream \
                 back per item, each preceded by an `item\\t<i>' line.")
  in
  let words =
    Arg.(value & pos_all string [] & info [] ~docv:"REQUEST"
           ~doc:"Request verb and arguments, as one protocol line.")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Send one request (LOAD, STATS, KCORE, COVER, STORAGE, POWERLAW, \
             ADDVERTEX, ADDEDGE, DELEDGE, CHECKPOINT, DATASETS, METRICS, \
             TRACE, EVICT, PING, SHUTDOWN) to a running server, or a \
             pipelined batch with $(b,--batch).")
    Term.(const run $ socket_arg $ tcp_target_arg $ retries $ timeout $ batch
          $ words)

(* loadgen *)
let loadgen_cmd =
  let module S = Hp_server.Server in
  let module L = Hp_server.Loadgen in
  let module C = Hp_server.Client in
  let iso8601 t =
    let tm = Unix.gmtime t in
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  let print_phase (p : L.phase) =
    Printf.printf
      "%-8s %3d conns  %6d ok  %4d failed  %7.1f req/s  p50 %.2f ms  p99 %.2f ms  max %.2f ms\n"
      p.L.label p.L.connections p.L.requests p.L.failures p.L.throughput_rps
      p.L.latency.L.p50_ms p.L.latency.L.p99_ms p.L.latency.L.max_ms;
    if p.L.mutations > 0 || p.L.mutation_races > 0 then
      Printf.printf "%-8s %d mutations applied, %d lost races\n" ""
        p.L.mutations p.L.mutation_races
  in
  let finish ~out ~check_tcp report =
    print_phase report.L.single;
    print_phase report.L.loaded;
    Printf.printf "scaleup: %.2fx\n%!" report.L.scaleup;
    if out <> "" then begin
      let dir = Filename.dirname out in
      if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let oc = open_out out in
      output_string oc (L.to_json ~generated_at:(iso8601 (Unix.time ())) report);
      close_out oc;
      Printf.printf "wrote %s\n%!" out
    end;
    if check_tcp then begin
      let baseline_file = Filename.concat "bench" "tcp_baseline.json" in
      let baseline =
        match In_channel.with_open_text baseline_file In_channel.input_all with
        | s -> s
        | exception Sys_error msg ->
          Printf.eprintf "hgtool: loadgen: --check-tcp: %s\n" msg;
          exit 1
      in
      match L.check ~baseline report with
      | Ok () -> Printf.printf "tcp loadgen guard: ok\n%!"
      | Error msg ->
        Printf.eprintf "hgtool: loadgen: %s\n" msg;
        exit 1
    end
  in
  let run tcp self_host connections requests dataset stalled seed mutate out
      check_tcp =
    let measure ~host ~port ~dataset ~cleanup =
      let cfg =
        {
          (L.default_config ~host ~port) with
          L.connections;
          requests_per_conn = requests;
          dataset;
          stalled;
          seed;
          mutate;
        }
      in
      let outcome = L.run cfg in
      cleanup ();
      match outcome with
      | Error msg ->
        Printf.eprintf "hgtool: loadgen: %s\n" msg;
        exit 1
      | Ok report -> finish ~out ~check_tcp report
    in
    if self_host then begin
      (* Spin a private in-process server on an ephemeral TCP port:
         what the tcp-load CI job runs, and a one-command smoke test
         locally.  Admission control is opened wide — the guard wants
         zero failures, so the server must never answer ERR busy. *)
      let socket = Filename.temp_file "hgd-loadgen" ".sock" in
      (try Sys.remove socket with Sys_error _ -> ());
      let config =
        {
          (S.default_config ~socket_path:socket) with
          S.queue_limit = 4096;
          shed_watermark = 0;
          request_timeout = 60.0;
          tcp = Some ("127.0.0.1", 0);
        }
      in
      match S.start config with
      | Error msg ->
        Printf.eprintf "hgtool: loadgen: self-host: %s\n" msg;
        exit 1
      | Ok t ->
        let port =
          match S.tcp_port t with
          | Some p -> p
          | None ->
            Printf.eprintf "hgtool: loadgen: self-host: no TCP port bound\n";
            exit 1
        in
        let digest =
          match dataset with
          | "" -> None
          | file -> (
            (* LOAD over the TCP path itself; the digest keys the
               analysis mix. *)
            match
              C.with_connection_addr (C.Tcp { host = "127.0.0.1"; port })
                (fun c -> C.request c (Hp_server.Protocol.Load file))
            with
            | Ok (Hp_server.Protocol.Ok kvs) -> List.assoc_opt "digest" kvs
            | Ok (Hp_server.Protocol.Err { message; _ }) ->
              Printf.eprintf "hgtool: loadgen: LOAD %s: %s\n" file message;
              S.stop t;
              exit 1
            | Error msg ->
              Printf.eprintf "hgtool: loadgen: LOAD %s: %s\n" file msg;
              S.stop t;
              exit 1)
        in
        measure ~host:"127.0.0.1" ~port ~dataset:digest
          ~cleanup:(fun () -> S.stop t)
    end
    else
      match tcp with
      | "" ->
        Printf.eprintf
          "hgtool: loadgen: need --tcp HOST:PORT or --self-host\n";
        exit 1
      | spec -> (
        match Hp_server.Netaddr.parse_hostport spec with
        | Error msg ->
          Printf.eprintf "hgtool: loadgen: --tcp %s\n" msg;
          exit 1
        | Ok (host, port) ->
          measure ~host ~port
            ~dataset:(if dataset = "" then None else Some dataset)
            ~cleanup:(fun () -> ()))
  in
  let connections =
    Arg.(value & opt int 64 & info [ "c"; "connections" ] ~docv:"N"
           ~doc:"Concurrent client connections in the loaded phase.")
  in
  let requests =
    Arg.(value & opt int 50 & info [ "n"; "requests" ] ~docv:"N"
           ~doc:"Requests issued per connection.")
  in
  let dataset =
    Arg.(value & opt string "" & info [ "dataset" ] ~docv:"ARG"
           ~doc:"Aim KCORE/STATS/POWERLAW at this dataset: a resident \
                 digest with $(b,--tcp), a file to LOAD with \
                 $(b,--self-host).  Empty keeps the mix to \
                 PING/DATASETS/batches.")
  in
  let stalled =
    Arg.(value & opt int 0 & info [ "stalled" ] ~docv:"N"
           ~doc:"Extra connections that send half a request line and hold \
                 the socket for the whole loaded phase (head-of-line \
                 blocking pressure; excluded from throughput).")
  in
  let seed =
    Arg.(value & opt int 0x10ad & info [ "seed" ] ~docv:"SEED"
           ~doc:"Workload-mix PRNG seed.")
  in
  let mutate =
    Arg.(value & opt float 0.0 & info [ "mutate" ] ~docv:"FRAC"
           ~doc:"Make this fraction of each client's requests \
                 ADDVERTEX/ADDEDGE/DELEDGE mutations against \
                 $(b,--dataset), exercising the WAL and incremental \
                 k-core repair under load.  Mutations rejected by \
                 write-write races (stale DELEDGE ids) are reported as \
                 $(i,mutation_races), not failures.  0 = read-only mix.")
  in
  let self_host =
    Arg.(value & flag & info [ "self-host" ]
           ~doc:"Start a private in-process server on an ephemeral port and \
                 load-test that, instead of targeting $(b,--tcp).")
  in
  let out =
    Arg.(value & opt string "_artifacts/BENCH_tcp.json" & info [ "o"; "out" ]
           ~docv:"FILE"
           ~doc:"Write the JSON report here (empty = stdout summary only).")
  in
  let check_tcp =
    Arg.(value & flag & info [ "check-tcp" ]
           ~doc:"CI guard: fail unless every request succeeded and the \
                 measured concurrency scaleup is at least half the \
                 committed baseline in bench/tcp_baseline.json.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Drive a server's TCP front end with many concurrent clients \
             running a mixed KCORE/STATS/BATCH/PING workload; report \
             throughput and latency percentiles, and optionally guard \
             them against the committed baseline.")
    Term.(const run $ tcp_target_arg $ self_host $ connections $ requests
          $ dataset $ stalled $ seed $ mutate $ out $ check_tcp)

let () =
  let info = Cmd.info "hgtool" ~doc:"Hypergraph toolkit for protein complex networks." in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd; stats_cmd; kcore_cmd; cover_cmd; export_cmd;
            components_cmd; powerlaw_cmd; mm_generate_cmd; reliability_cmd; dual_cmd;
            pack_cmd; unpack_cmd; verify_snap_cmd; wal_dump_cmd; checkpoint_cmd;
            serve_cmd; query_cmd; metrics_cmd; trace_cmd; loadgen_cmd;
          ]))
