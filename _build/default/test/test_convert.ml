(* Tests for the baseline graph representations (paper Sections
   1.1-1.2) and the storage accounting that motivates the hypergraph
   model. *)

module H = Hp_hypergraph.Hypergraph
module HC = Hp_hypergraph.Hypergraph_convert
module S = Hp_hypergraph.Storage
module G = Hp_graph.Graph
module GA = Hp_graph.Graph_algo

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let sample () = H.create ~n_vertices:5 [ [ 0; 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ]

let test_clique_expansion () =
  let g = HC.clique_expansion (sample ()) in
  check "vertices" 5 (G.n_vertices g);
  (* {0,1,2} -> 3 edges, {2,3} -> 1, {3,4} -> 1. *)
  check "edges" 5 (G.n_edges g);
  checkb "clique edge" true (G.mem_edge g 0 2);
  checkb "no cross-complex edge" false (G.mem_edge g 0 3)

let test_clique_expansion_dedup () =
  (* Overlapping complexes share pairs; the simple graph counts them
     once. *)
  let h = H.create ~n_vertices:3 [ [ 0; 1; 2 ]; [ 0; 1 ] ] in
  check "dedup" 3 (G.n_edges (HC.clique_expansion h))

let test_star_expansion () =
  let h = sample () in
  let centers = HC.default_centers h in
  Alcotest.(check (array int)) "default centers" [| 0; 2; 3 |] centers;
  let g = HC.star_expansion h ~centers in
  (* Stars: 0-1, 0-2; 2-3; 3-4. *)
  check "edges" 4 (G.n_edges g);
  checkb "bait edge" true (G.mem_edge g 0 1);
  checkb "non-bait pair absent" false (G.mem_edge g 1 2)

let test_star_expansion_validation () =
  let h = sample () in
  Alcotest.check_raises "center must be a member"
    (Invalid_argument "Hypergraph_convert.star_expansion: center not a member")
    (fun () -> ignore (HC.star_expansion h ~centers:[| 4; 2; 3 |]));
  Alcotest.check_raises "centers length"
    (Invalid_argument "Hypergraph_convert.star_expansion: centers length mismatch")
    (fun () -> ignore (HC.star_expansion h ~centers:[| 0 |]))

let test_star_expansion_empty_edge () =
  let h = H.create ~n_vertices:2 [ []; [ 0; 1 ] ] in
  let centers = HC.default_centers h in
  check "empty edge center" (-1) centers.(0);
  let g = HC.star_expansion h ~centers in
  check "edges" 1 (G.n_edges g)

let test_intersection_graph () =
  let g = HC.intersection_graph (sample ()) in
  check "vertices are complexes" 3 (G.n_vertices g);
  (* e0-e1 share 2; e1-e2 share 3. *)
  check "edges" 2 (G.n_edges g);
  checkb "sharing complexes adjacent" true (G.mem_edge g 0 1);
  checkb "disjoint complexes not adjacent" false (G.mem_edge g 0 2);
  Alcotest.(check (list (triple int int int)))
    "weights"
    [ (0, 1, 1); (1, 2, 1) ]
    (HC.intersection_weights (sample ()))

let test_intersection_threshold () =
  (* e0 = {0,1,2} and e1 = {1,2,3} share two proteins; e2 = {3,4}
     shares one with e1. *)
  let h = H.create ~n_vertices:5 [ [ 0; 1; 2 ]; [ 1; 2; 3 ]; [ 3; 4 ] ] in
  check "s=1 keeps both overlaps" 2 (G.n_edges (HC.intersection_graph_min_overlap h ~s:1));
  check "s=2 keeps the strong pair" 1 (G.n_edges (HC.intersection_graph_min_overlap h ~s:2));
  check "s=3 keeps nothing" 0 (G.n_edges (HC.intersection_graph_min_overlap h ~s:3));
  Alcotest.check_raises "s must be positive"
    (Invalid_argument "Hypergraph_convert.intersection_graph_min_overlap: s < 1")
    (fun () -> ignore (HC.intersection_graph_min_overlap h ~s:0))

let prop_intersection_threshold_monotone =
  QCheck.Test.make ~name:"thresholded intersection: edges decrease in s" ~count:150
    (Th.arbitrary_hypergraph ())
    (fun h ->
      let edges s = G.n_edges (HC.intersection_graph_min_overlap h ~s) in
      edges 1 >= edges 2 && edges 2 >= edges 3)

let test_bipartite_graph () =
  let h = sample () in
  let b = HC.bipartite_graph h in
  check "bipartite nodes" 8 (G.n_vertices b);
  check "bipartite edges = |E|" (H.total_incidence h) (G.n_edges b);
  checkb "membership edge" true (G.mem_edge b 0 5);
  (* No protein-protein or complex-complex edges. *)
  let ok = ref true in
  G.iter_edges b (fun u v -> if (u < 5) = (v < 5) then ok := false);
  checkb "bipartite" true !ok

let prop_clique_neighbors_are_comembers =
  QCheck.Test.make ~name:"clique expansion: adjacency iff co-membership" ~count:200
    (Th.arbitrary_hypergraph ())
    (fun h ->
      let g = HC.clique_expansion h in
      let n = H.n_vertices h in
      let comember u v =
        Array.exists
          (fun e -> H.mem h ~vertex:v ~edge:e)
          (H.vertex_edges h u)
      in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if G.mem_edge g u v <> comember u v then ok := false
        done
      done;
      !ok)

let prop_intersection_matches_overlaps =
  QCheck.Test.make ~name:"intersection graph: edges iff non-zero overlap" ~count:200
    (Th.arbitrary_hypergraph ())
    (fun h ->
      let g = HC.intersection_graph h in
      let m = H.n_edges h in
      let ok = ref true in
      for f = 0 to m - 1 do
        for g' = f + 1 to m - 1 do
          let overlap =
            Hp_util.Sorted.inter_count (H.edge_members h f) (H.edge_members h g')
          in
          if G.mem_edge g f g' <> (overlap > 0) then ok := false
        done
      done;
      !ok)

(* The paper's clustering claim: clique expansion inflates clustering
   coefficients — every complex member sits in a clique. *)
let test_clustering_inflation () =
  let h = H.create ~n_vertices:6 [ [ 0; 1; 2; 3 ]; [ 3; 4; 5 ] ] in
  let clique = HC.clique_expansion h in
  let star = HC.star_expansion h ~centers:(HC.default_centers h) in
  let cc = GA.average_clustering clique in
  let cs = GA.average_clustering star in
  checkb "clique expansion highly clustered" true (cc >= 0.9);
  Alcotest.(check (float 1e-9)) "star expansion has no triangles" 0.0 cs

(* Storage accounting (paper Sections 1.2-1.3, bench E10). *)

let test_storage_report () =
  let h = sample () in
  let r = S.measure h in
  check "hypergraph entries = |E|" 7 r.hypergraph_entries;
  check "clique entries" 10 r.clique_entries;
  check "clique raw" 10 r.clique_entries_raw;
  check "star entries" 8 r.star_entries;
  check "intersection entries" 4 r.intersection_entries

let test_storage_quadratic_growth () =
  (* One complex of n proteins: hypergraph O(n), clique O(n^2). *)
  let big = H.create ~n_vertices:40 [ List.init 40 Fun.id ] in
  let r = S.measure big in
  check "hypergraph linear" 40 r.hypergraph_entries;
  check "clique quadratic" (40 * 39) r.clique_entries;
  check "raw equals analytic" r.clique_entries (S.raw_clique_entries big)

let prop_raw_upper_bounds_dedup =
  QCheck.Test.make ~name:"storage: raw clique count >= deduplicated" ~count:200
    (Th.arbitrary_hypergraph ())
    (fun h ->
      let r = S.measure h in
      r.clique_entries_raw >= r.clique_entries
      && r.hypergraph_entries = H.total_incidence h)

let () =
  Alcotest.run "hp_convert"
    [
      ( "expansions",
        [
          Alcotest.test_case "clique expansion" `Quick test_clique_expansion;
          Alcotest.test_case "clique dedup" `Quick test_clique_expansion_dedup;
          Alcotest.test_case "star expansion" `Quick test_star_expansion;
          Alcotest.test_case "star validation" `Quick test_star_expansion_validation;
          Alcotest.test_case "star with empty edge" `Quick test_star_expansion_empty_edge;
          Alcotest.test_case "intersection graph" `Quick test_intersection_graph;
          Alcotest.test_case "intersection threshold" `Quick test_intersection_threshold;
          Th.prop prop_intersection_threshold_monotone;
          Alcotest.test_case "bipartite graph" `Quick test_bipartite_graph;
          Th.prop prop_clique_neighbors_are_comembers;
          Th.prop prop_intersection_matches_overlaps;
        ] );
      ( "model comparison",
        [
          Alcotest.test_case "clustering inflation" `Quick test_clustering_inflation;
          Alcotest.test_case "storage report" `Quick test_storage_report;
          Alcotest.test_case "quadratic growth" `Quick test_storage_quadratic_growth;
          Th.prop prop_raw_upper_bounds_dedup;
        ] );
    ]
