(* Shared test utilities: QCheck generators for random graphs and
   hypergraphs, and the alcotest registration shim for property
   tests. *)

module H = Hp_hypergraph.Hypergraph
module G = Hp_graph.Graph

let prop = QCheck_alcotest.to_alcotest

(* Small random hypergraph: up to [max_v] vertices and [max_e]
   hyperedges, membership by coin flips (possibly empty edges,
   duplicate edges, isolated vertices — the full messy input space). *)
let hypergraph_gen ?(max_v = 10) ?(max_e = 10) () =
  let open QCheck.Gen in
  int_range 1 max_v >>= fun nv ->
  int_range 0 max_e >>= fun ne ->
  let edge = list_repeat nv (float_range 0.0 1.0) in
  list_repeat ne edge >|= fun rows ->
  let members =
    List.map
      (fun row ->
        List.mapi (fun v p -> if p < 0.35 then Some v else None) row
        |> List.filter_map Fun.id)
      rows
  in
  H.create ~n_vertices:nv members

let hypergraph_print h =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "n=%d;" (H.n_vertices h));
  for e = 0 to H.n_edges h - 1 do
    Buffer.add_string buf
      (Printf.sprintf " e%d={%s}" e
         (String.concat ","
            (Array.to_list (Array.map string_of_int (H.edge_members h e)))))
  done;
  Buffer.contents buf

let arbitrary_hypergraph ?max_v ?max_e () =
  QCheck.make ~print:hypergraph_print (hypergraph_gen ?max_v ?max_e ())

(* Small random simple graph. *)
let graph_gen ?(max_v = 12) () =
  let open QCheck.Gen in
  int_range 1 max_v >>= fun n ->
  let pairs =
    List.concat_map (fun u -> List.init u (fun v -> (u, v))) (List.init n Fun.id)
  in
  list_repeat (List.length pairs) (float_range 0.0 1.0) >|= fun coins ->
  let edges =
    List.map2 (fun e p -> if p < 0.3 then Some e else None) pairs coins
    |> List.filter_map Fun.id
  in
  G.of_edges ~n edges

let graph_print g =
  Printf.sprintf "n=%d edges=[%s]" (G.n_vertices g)
    (String.concat ";"
       (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) (G.edges g)))

let arbitrary_graph ?max_v () = QCheck.make ~print:graph_print (graph_gen ?max_v ())

(* Naive reference implementations used as oracles. *)

let naive_graph_core_numbers g =
  (* Repeatedly strip vertices of degree < k over a residual vertex
     set, for each k; quadratic and obviously correct. *)
  let n = G.n_vertices g in
  let core = Array.make n 0 in
  let rec fix k alive =
    let deg v =
      Array.fold_left
        (fun acc w -> if alive.(w) then acc + 1 else acc)
        0 (G.neighbors g v)
    in
    let changed = ref false in
    for v = 0 to n - 1 do
      if alive.(v) && deg v < k then begin
        alive.(v) <- false;
        changed := true
      end
    done;
    if !changed then fix k alive
  in
  let rec levels k =
    let alive = Array.make n true in
    fix k alive;
    if Array.exists Fun.id alive then begin
      Array.iteri (fun v a -> if a then core.(v) <- k) alive;
      levels (k + 1)
    end
  in
  levels 1;
  core

let sorted_array a =
  let b = Array.copy a in
  Array.sort compare b;
  b
