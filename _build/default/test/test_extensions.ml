(* Tests for the extension features: the TAP reliability simulator,
   the ortholog-transfer model, and the batch peeling rounds. *)

module H = Hp_hypergraph.Hypergraph
module HC = Hp_hypergraph.Hypergraph_core
module TAP = Hp_data.Tap_experiment
module O = Hp_data.Ortholog
module U = Hp_util

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let sample () = H.create ~n_vertices:5 [ [ 0; 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ]

(* TAP simulation *)

let test_tap_certain () =
  let h = sample () in
  let rng = U.Prng.create 1 in
  let o = TAP.simulate rng h ~baits:[| 2; 3 |] ~reproducibility:1.0 in
  Alcotest.(check (array bool)) "all identified" [| true; true; true |] o.identified;
  (* e1 = {2,3} contains both baits. *)
  Alcotest.(check (array int)) "pull counts" [| 1; 2; 1 |] o.pulls;
  check "productive baits" 2 o.successful_baits

let test_tap_impossible () =
  let h = sample () in
  let rng = U.Prng.create 1 in
  let o = TAP.simulate rng h ~baits:[| 2; 3 |] ~reproducibility:0.0 in
  checkb "nothing identified" true (Array.for_all not o.identified);
  check "no productive baits" 0 o.successful_baits

let test_tap_validation () =
  let h = sample () in
  let rng = U.Prng.create 1 in
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Tap_experiment.simulate: reproducibility out of [0,1]")
    (fun () -> ignore (TAP.simulate rng h ~baits:[| 0 |] ~reproducibility:1.5));
  Alcotest.check_raises "bad trials"
    (Invalid_argument "Tap_experiment.assess: trials must be positive") (fun () ->
      ignore (TAP.assess rng h ~baits:[| 0 |] ~reproducibility:0.5 ~trials:0))

let test_tap_assess () =
  let h = sample () in
  let rng = U.Prng.create 2 in
  let r = TAP.assess rng h ~baits:[| 2; 3 |] ~reproducibility:0.7 ~trials:300 in
  check "coverable" 3 r.coverable;
  checkb "identified fraction near analytic" true
    (* e0 and e2 found w.p. 0.7, e1 w.p. 1 - 0.09 = 0.91: mean
       (0.7 + 0.91 + 0.7) / 3 = 0.77. *)
    (Float.abs (r.mean_identified_fraction -. 0.77) < 0.05);
  checkb "twice fraction near analytic" true
    (* Only e1 can be seen twice: 0.49 / 3. *)
    (Float.abs (r.mean_twice_identified_fraction -. (0.49 /. 3.0)) < 0.04);
  checkb "bounds" true
    (r.always_identified <= r.coverable && r.never_identified <= r.coverable)

let test_tap_uncoverable () =
  (* A bait-free complex never counts as coverable. *)
  let h = sample () in
  let rng = U.Prng.create 3 in
  let r = TAP.assess rng h ~baits:[| 0 |] ~reproducibility:1.0 ~trials:10 in
  check "only e0 coverable" 1 r.coverable;
  Alcotest.(check (float 1e-9)) "certain identification" 1.0
    r.mean_identified_fraction

let prop_tap_multicover_dominates =
  QCheck.Test.make ~name:"tap: more redundancy never hurts identification" ~count:50
    (Th.arbitrary_hypergraph ~max_v:8 ~max_e:8 ())
    (fun h ->
      let nonempty = Array.exists (fun s -> s > 0) (H.edge_sizes h) in
      QCheck.assume nonempty;
      let single = Hp_cover.Greedy.vertex_cover h in
      let reqs =
        Array.init (H.n_edges h) (fun e -> min 2 (H.edge_size h e))
      in
      let double = (Hp_cover.Greedy.solve ~requirements:reqs h).cover in
      let assess baits =
        let rng = U.Prng.create 99 in
        (TAP.assess rng h ~baits ~reproducibility:0.7 ~trials:100)
          .mean_identified_fraction
      in
      assess double >= assess single -. 0.05)

(* Ortholog *)

let test_perturb_identity () =
  let h = sample () in
  let rng = U.Prng.create 4 in
  let o = O.perturb rng ~membership_loss:0.0 ~membership_gain:0.0 ~complex_loss:0.0 h in
  checkb "no perturbation is identity" true (H.equal_structure h o.hypergraph);
  check "no losses" 0 o.lost_memberships;
  check "no gains" 0 o.gained_memberships;
  check "no drops" 0 o.dropped_complexes

let test_perturb_total_loss () =
  let h = sample () in
  let rng = U.Prng.create 4 in
  let o = O.perturb rng ~membership_loss:0.0 ~membership_gain:0.0 ~complex_loss:1.0 h in
  check "all complexes dropped" 3 o.dropped_complexes;
  checkb "all empty" true (Array.for_all (fun s -> s = 0) (H.edge_sizes o.hypergraph))

let test_perturb_keeps_one_member () =
  let h = sample () in
  let rng = U.Prng.create 4 in
  let o = O.perturb rng ~membership_loss:1.0 ~membership_gain:0.0 ~complex_loss:0.0 h in
  (* Membership loss keeps a witness member per surviving complex. *)
  checkb "never empties a surviving complex" true
    (Array.for_all (fun s -> s >= 1) (H.edge_sizes o.hypergraph))

let test_perturb_names_preserved () =
  let ds = Hp_data.Cellzome.generate ~seed:8 () in
  let rng = U.Prng.create 4 in
  let o = O.perturb rng ds.hypergraph in
  Alcotest.(check string) "vertex names preserved"
    (H.vertex_name ds.hypergraph ds.adh1)
    (H.vertex_name o.hypergraph ds.adh1)

let test_transfer_report () =
  let h = sample () in
  let rng = U.Prng.create 4 in
  let o = O.perturb rng ~membership_loss:0.0 ~membership_gain:0.0 ~complex_loss:0.0 h in
  let r = O.transfer_report o ~baits:[| 2; 3 |] in
  check "coverable" 3 r.coverable_complexes;
  check "covered" 3 r.covered;
  check "covered twice" 1 r.covered_twice;
  Alcotest.(check (float 1e-9)) "fraction" 1.0 r.coverage_fraction

let prop_perturb_counts_consistent =
  QCheck.Test.make ~name:"ortholog: reported deltas match the structures" ~count:100
    (Th.arbitrary_hypergraph ())
    (fun h ->
      let rng = U.Prng.create 17 in
      let o = O.perturb rng ~membership_loss:0.3 ~membership_gain:0.2 ~complex_loss:0.2 h in
      H.n_vertices o.hypergraph = H.n_vertices h
      && H.n_edges o.hypergraph = H.n_edges h
      && H.total_incidence o.hypergraph
         <= H.total_incidence h + o.gained_memberships
      && o.lost_memberships >= 0 && o.gained_memberships >= 0)

(* Purification pipeline *)

module P = Hp_data.Purification

let test_jaccard () =
  Alcotest.(check (float 1e-9)) "identical" 1.0 (P.jaccard [| 1; 2 |] [| 1; 2 |]);
  Alcotest.(check (float 1e-9)) "disjoint" 0.0 (P.jaccard [| 1 |] [| 2 |]);
  Alcotest.(check (float 1e-9)) "half" (1.0 /. 3.0) (P.jaccard [| 1; 2 |] [| 2; 3 |]);
  Alcotest.(check (float 1e-9)) "both empty" 1.0 (P.jaccard [||] [||])

let test_perfect_experiment () =
  let h = sample () in
  let rng = U.Prng.create 5 in
  let ps =
    P.run_experiment rng h ~baits:[| 2; 3 |] ~reproducibility:1.0 ~dropout:0.0
      ~contamination:0.0
  in
  (* Bait 2 is in e0, e1; bait 3 in e1, e2: four purifications. *)
  check "purification count" 4 (List.length ps);
  List.iter
    (fun (p : P.purification) ->
      checkb "bait not a prey" true (not (Array.exists (fun v -> v = p.bait) p.preys)))
    ps;
  let recon = P.reconstruct ~n_vertices:5 ps in
  let a = P.compare_to_truth ~truth:h recon in
  check "all true complexes" 3 a.true_complexes;
  check "all matched" 3 a.matched;
  check "no spurious" 0 a.spurious;
  Alcotest.(check (float 1e-9)) "perfect jaccard" 1.0 a.mean_best_jaccard

let test_zero_reproducibility_experiment () =
  let h = sample () in
  let rng = U.Prng.create 5 in
  let ps =
    P.run_experiment rng h ~baits:[| 2; 3 |] ~reproducibility:0.0 ~dropout:0.0
      ~contamination:0.0
  in
  check "no purifications" 0 (List.length ps);
  let recon = P.reconstruct ~n_vertices:5 ps in
  check "nothing reconstructed" 0 (H.n_edges recon);
  let a = P.compare_to_truth ~truth:h recon in
  check "nothing matched" 0 a.matched

let test_experiment_validation () =
  let h = sample () in
  let rng = U.Prng.create 5 in
  Alcotest.check_raises "bad reproducibility"
    (Invalid_argument "Purification.run_experiment: reproducibility out of [0,1]")
    (fun () ->
      ignore
        (P.run_experiment rng h ~baits:[| 0 |] ~reproducibility:2.0 ~dropout:0.0
           ~contamination:0.0));
  Alcotest.check_raises "bad dropout"
    (Invalid_argument "Purification.run_experiment: dropout out of [0,1]") (fun () ->
      ignore
        (P.run_experiment rng h ~baits:[| 0 |] ~reproducibility:1.0 ~dropout:(-0.1)
           ~contamination:0.0))

let test_duplicate_purifications_merge () =
  (* Two baits in the same complex give identical candidates that must
     merge into one reconstructed complex. *)
  let h = H.create ~n_vertices:3 [ [ 0; 1; 2 ] ] in
  let rng = U.Prng.create 6 in
  let ps =
    P.run_experiment rng h ~baits:[| 0; 1 |] ~reproducibility:1.0 ~dropout:0.0
      ~contamination:0.0
  in
  check "two purifications" 2 (List.length ps);
  let recon = P.reconstruct ~n_vertices:3 ps in
  check "merged to one complex" 1 (H.n_edges recon);
  Alcotest.(check (array int)) "full membership" [| 0; 1; 2 |]
    (H.edge_members recon 0)

let prop_reconstruction_members_in_range =
  QCheck.Test.make ~name:"purification: reconstruction is a valid hypergraph"
    ~count:100
    (Th.arbitrary_hypergraph ~max_v:8 ~max_e:6 ())
    (fun h ->
      let rng = U.Prng.create 31 in
      let baits = Hp_cover.Greedy.vertex_cover h in
      let ps =
        P.run_experiment rng h ~baits ~reproducibility:0.8 ~dropout:0.2
          ~contamination:0.1
      in
      let recon = P.reconstruct ~n_vertices:(H.n_vertices h) ps in
      let a = P.compare_to_truth ~truth:h recon in
      H.n_vertices recon = H.n_vertices h
      && a.matched <= a.true_complexes
      && a.spurious <= a.reconstructed
      && a.mean_best_jaccard >= 0.0
      && a.mean_best_jaccard <= 1.0)

(* Peel rounds *)

let test_peel_rounds_known () =
  (* Chain {0,1} {1,2} {2,3}: k=2 peels everything: round 1 removes the
     ends 0 and 3 (degree 1); the cascade-shrunken edges expose 1 and 2
     next. *)
  let h = H.create ~n_vertices:4 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ] in
  let r = HC.peel_rounds h 2 in
  check "empties the core" 0 r.core_vertices;
  check "no surviving edges" 0 r.core_edges;
  checkb "multiple rounds" true (r.rounds >= 2);
  check "all vertices deleted" 4 (Array.fold_left ( + ) 0 r.batch_sizes)

let test_peel_rounds_zero_k () =
  let h = sample () in
  let r = HC.peel_rounds h 0 in
  check "0 rounds at k=0" 0 r.rounds;
  check "all vertices stay" 5 r.core_vertices

let test_peel_rounds_negative () =
  Alcotest.check_raises "negative k"
    (Invalid_argument "Hypergraph_core.peel_rounds: negative k") (fun () ->
      ignore (HC.peel_rounds (sample ()) (-2)))

let prop_peel_rounds_matches_kcore =
  QCheck.Test.make ~name:"peel_rounds: same core sizes as k_core" ~count:200
    QCheck.(pair (Th.arbitrary_hypergraph ()) (int_range 1 4))
    (fun (h, k) ->
      let k = max 1 k in
      let r = HC.peel_rounds h k in
      let kc = HC.k_core h k in
      r.core_vertices = H.n_vertices kc.core
      && r.core_edges = H.n_edges kc.core
      && Array.for_all (fun b -> b > 0) r.batch_sizes)

let prop_peel_rounds_bounded =
  QCheck.Test.make ~name:"peel_rounds: rounds bounded by deletions" ~count:200
    QCheck.(pair (Th.arbitrary_hypergraph ()) (int_range 1 3))
    (fun (h, k) ->
      let k = max 1 k in
      let r = HC.peel_rounds h k in
      let deleted = Array.fold_left ( + ) 0 r.batch_sizes in
      r.rounds = Array.length r.batch_sizes
      && r.rounds <= deleted + 1
      && deleted = H.n_vertices h - r.core_vertices)

let () =
  Alcotest.run "extensions"
    [
      ( "tap simulation",
        [
          Alcotest.test_case "certain detection" `Quick test_tap_certain;
          Alcotest.test_case "zero reproducibility" `Quick test_tap_impossible;
          Alcotest.test_case "validation" `Quick test_tap_validation;
          Alcotest.test_case "monte-carlo vs analytic" `Quick test_tap_assess;
          Alcotest.test_case "uncoverable complexes" `Quick test_tap_uncoverable;
          Th.prop prop_tap_multicover_dominates;
        ] );
      ( "ortholog",
        [
          Alcotest.test_case "identity perturbation" `Quick test_perturb_identity;
          Alcotest.test_case "total complex loss" `Quick test_perturb_total_loss;
          Alcotest.test_case "keeps one member" `Quick test_perturb_keeps_one_member;
          Alcotest.test_case "names preserved" `Quick test_perturb_names_preserved;
          Alcotest.test_case "transfer report" `Quick test_transfer_report;
          Th.prop prop_perturb_counts_consistent;
        ] );
      ( "purification",
        [
          Alcotest.test_case "jaccard" `Quick test_jaccard;
          Alcotest.test_case "perfect conditions" `Quick test_perfect_experiment;
          Alcotest.test_case "zero reproducibility" `Quick
            test_zero_reproducibility_experiment;
          Alcotest.test_case "validation" `Quick test_experiment_validation;
          Alcotest.test_case "duplicates merge" `Quick test_duplicate_purifications_merge;
          Th.prop prop_reconstruction_members_in_range;
        ] );
      ( "peel rounds",
        [
          Alcotest.test_case "chain example" `Quick test_peel_rounds_known;
          Alcotest.test_case "k = 0" `Quick test_peel_rounds_zero_k;
          Alcotest.test_case "negative k" `Quick test_peel_rounds_negative;
          Th.prop prop_peel_rounds_matches_kcore;
          Th.prop prop_peel_rounds_bounded;
        ] );
    ]
