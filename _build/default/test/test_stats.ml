(* Tests for the statistics layer: degree distributions, power-law
   fitting (Figure 1), small-world assessment, and the hypergeometric
   enrichment test. *)

module H = Hp_hypergraph.Hypergraph
module DD = Hp_stats.Degree_dist
module PL = Hp_stats.Powerlaw
module SW = Hp_stats.Smallworld
module HG = Hp_stats.Hypergeom
module U = Hp_util

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf tol = Alcotest.(check (float tol))

let sample () = H.create ~n_vertices:5 [ [ 0; 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ]

(* Degree distributions *)

let test_histograms () =
  let h = sample () in
  let vh = DD.vertex_histogram h in
  check "degree-1 proteins" 3 (DD.count_with_degree vh 1);
  check "degree-2 proteins" 2 (DD.count_with_degree vh 2);
  let eh = DD.edge_histogram h in
  check "size-2 complexes" 2 (U.Int_histogram.count eh 2);
  Alcotest.(check (array (pair int int))) "series" [| (1, 3); (2, 2) |]
    (DD.frequency_series vh)

let test_loglog_points () =
  let hist = U.Int_histogram.of_array [| 1; 1; 1; 1; 2; 2; 4 |] in
  let pts = DD.loglog_points hist in
  check "points" 3 (Array.length pts);
  let x0, y0 = pts.(0) in
  checkf 1e-9 "first x" 0.0 x0;
  checkf 1e-9 "first y" (log10 4.0) y0

(* Power law *)

let exact_powerlaw ~c ~gamma ~dmax =
  (* Histogram with counts exactly c * d^-gamma (rounded). *)
  let values = ref [] in
  for d = 1 to dmax do
    let count = int_of_float (Float.round (c *. (float_of_int d ** -.gamma))) in
    for _ = 1 to count do
      values := d :: !values
    done
  done;
  U.Int_histogram.of_array (Array.of_list !values)

let test_fit_recovers_exponent () =
  let hist = exact_powerlaw ~c:1000.0 ~gamma:2.5 ~dmax:10 in
  let fit = PL.fit_loglog hist in
  checkb "gamma recovered" true (Float.abs (fit.gamma -. 2.5) < 0.1);
  checkb "log c recovered" true (Float.abs (fit.log10_c -. 3.0) < 0.1);
  checkb "excellent r2" true (fit.r2 > 0.99);
  check "points" 10 fit.points;
  checkb "prediction at d=1 near c" true
    (Float.abs (PL.predicted_count fit 1 -. 1000.0) < 100.0)

let test_fit_requires_two_degrees () =
  let hist = U.Int_histogram.of_array [| 3; 3; 3 |] in
  Alcotest.check_raises "single degree"
    (Invalid_argument "Powerlaw.fit_loglog: need at least two distinct degrees")
    (fun () -> ignore (PL.fit_loglog hist))

let test_mle () =
  (* Large sample from the true distribution: MLE should land near the
     sampling exponent. *)
  let rng = U.Prng.create 12 in
  let values = Array.init 50000 (fun _ -> U.Prng.powerlaw_int rng ~gamma:2.5 ~dmin:1 ~dmax:1000) in
  let hist = U.Int_histogram.of_array values in
  let fit = PL.fit_mle hist in
  checkb "gamma_mle near 2.5" true (Float.abs (fit.gamma_mle -. 2.5) < 0.15);
  check "n_tail is sample size" 50000 fit.n_tail;
  Alcotest.check_raises "dmin too high"
    (Invalid_argument "Powerlaw.fit_mle: no observations at or above dmin") (fun () ->
      ignore (PL.fit_mle ~dmin:5000 hist))

let test_ks_distance () =
  let rng = U.Prng.create 13 in
  let values = Array.init 20000 (fun _ -> U.Prng.powerlaw_int rng ~gamma:2.5 ~dmin:1 ~dmax:50) in
  let hist = U.Int_histogram.of_array values in
  let good = PL.ks_distance hist ~gamma:2.5 ~dmin:1 in
  let bad = PL.ks_distance hist ~gamma:1.2 ~dmin:1 in
  checkb "true exponent fits well" true (good < 0.05);
  checkb "wrong exponent fits worse" true (bad > (2.0 *. good))

(* Small world *)

let test_smallworld_hypergraph () =
  let ds = Hp_data.Cellzome.generate ~seed:5 () in
  let rng = U.Prng.create 5 in
  let r = SW.assess_hypergraph rng ~trials:2 ~shuffle_rounds:3 ds.hypergraph in
  checkb "observed diameter small" true (r.diameter <= 8);
  checkb "null statistics positive" true (r.null_average_path_mean > 0.0);
  check "trials recorded" 2 r.trials

let test_smallworld_graph () =
  (* A caveman-ish graph: cliques on a ring are strongly clustered. *)
  let edges = ref [] in
  let n = 40 in
  for c = 0 to 7 do
    let base = 5 * c in
    for i = 0 to 4 do
      for j = i + 1 to 4 do
        edges := (base + i, base + j) :: !edges
      done
    done;
    edges := (base + 4, (base + 5) mod n) :: !edges
  done;
  let g = Hp_graph.Graph.of_edges ~n !edges in
  let rng = U.Prng.create 6 in
  let r = SW.assess_graph rng ~trials:2 g in
  checkb "clustering above random" true (r.g_clustering > r.rand_clustering);
  checkb "sigma above one" true (r.sigma > 1.0)

(* Hypergeometric *)

let test_log_choose () =
  checkf 1e-9 "C(5,2)" (log 10.0) (HG.log_choose 5 2);
  checkf 1e-9 "C(n,0)" 0.0 (HG.log_choose 7 0);
  checkb "out of range" true (HG.log_choose 3 5 = neg_infinity)

let test_pmf_sums_to_one () =
  let total = ref 0.0 in
  for x = 0 to 10 do
    total := !total +. HG.pmf ~capital_n:30 ~capital_k:10 ~n:12 ~x
  done;
  checkf 1e-9 "pmf sums to 1" 1.0 !total

let test_pmf_known_value () =
  (* Urn: 10 of 30 marked, draw 12; P(X = 4) computed directly. *)
  let expected =
    exp (HG.log_choose 10 4 +. HG.log_choose 20 8 -. HG.log_choose 30 12)
  in
  checkf 1e-12 "pmf" expected (HG.pmf ~capital_n:30 ~capital_k:10 ~n:12 ~x:4)

let test_p_value_monotone () =
  let p x = HG.p_value_ge ~capital_n:100 ~capital_k:20 ~n:30 ~x in
  checkf 1e-9 "x=0 certain" 1.0 (p 0);
  checkb "monotone decreasing" true (p 5 > p 10 && p 10 > p 15);
  checkb "extreme tail small" true (p 19 < 1e-6)

let test_enrichment_report () =
  (* The paper's own comparison: 22 essential of 32 known core proteins
     vs. 878 essential genes of 4036. *)
  let e = HG.test ~population:4036 ~labelled:878 ~sample:32 ~hits:22 in
  checkf 1e-9 "sample fraction" (22.0 /. 32.0) e.sample_fraction;
  checkb "strong fold" true (e.fold > 3.0);
  checkb "highly significant" true (e.p_value < 1e-6);
  Alcotest.check_raises "inconsistent counts"
    (Invalid_argument "Hypergeom.test: inconsistent counts") (fun () ->
      ignore (HG.test ~population:10 ~labelled:20 ~sample:5 ~hits:1))

let prop_pvalue_bounds =
  QCheck.Test.make ~name:"hypergeom: p-values lie in [0,1]" ~count:200
    QCheck.(quad (int_range 1 60) (int_range 0 60) (int_range 0 60) (int_range 0 60))
    (fun (n, k, s, x) ->
      let k = min k n and s = min s n in
      let x = min x s in
      let p = HG.p_value_ge ~capital_n:n ~capital_k:k ~n:s ~x in
      p >= 0.0 && p <= 1.0)

let () =
  Alcotest.run "hp_stats"
    [
      ( "degree distribution",
        [
          Alcotest.test_case "histograms" `Quick test_histograms;
          Alcotest.test_case "loglog points" `Quick test_loglog_points;
        ] );
      ( "power law",
        [
          Alcotest.test_case "recovers exponent" `Quick test_fit_recovers_exponent;
          Alcotest.test_case "degenerate input" `Quick test_fit_requires_two_degrees;
          Alcotest.test_case "mle" `Quick test_mle;
          Alcotest.test_case "ks distance" `Quick test_ks_distance;
        ] );
      ( "small world",
        [
          Alcotest.test_case "hypergraph report" `Slow test_smallworld_hypergraph;
          Alcotest.test_case "graph sigma" `Quick test_smallworld_graph;
        ] );
      ( "hypergeometric",
        [
          Alcotest.test_case "log_choose" `Quick test_log_choose;
          Alcotest.test_case "pmf normalization" `Quick test_pmf_sums_to_one;
          Alcotest.test_case "pmf known value" `Quick test_pmf_known_value;
          Alcotest.test_case "p-value monotone" `Quick test_p_value_monotone;
          Alcotest.test_case "enrichment report" `Quick test_enrichment_report;
          Th.prop prop_pvalue_bounds;
        ] );
    ]
