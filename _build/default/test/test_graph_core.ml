(* Tests for the graph k-core decomposition (paper Section 3 and
   Figure 2). *)

module G = Hp_graph.Graph
module GC = Hp_graph.Graph_core

let check = Alcotest.(check int)

(* The Figure 2 example: a graph whose maximum core is a 3-core.  We
   re-encode it as a K4 (the 3-core) with a tree and a path hanging
   off it, which exercises the same structure: 1-core = everything,
   2-core = 3-core = the K4, 4-core empty. *)
let figure2 () =
  G.of_edges ~n:9
    [
      (* the K4: vertices 0-3 *)
      (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3);
      (* a path 4-5-6 attached to 0 *)
      (0, 4); (4, 5); (5, 6);
      (* pendant vertices *)
      (1, 7); (2, 8);
    ]

let test_figure2 () =
  let g = figure2 () in
  let d = GC.decompose g in
  check "max core" 3 d.max_core;
  Alcotest.(check (array int)) "core numbers"
    [| 3; 3; 3; 3; 1; 1; 1; 1; 1 |]
    d.core_number;
  Alcotest.(check (array int)) "3-core vertices" [| 0; 1; 2; 3 |]
    (GC.k_core_vertices g 3);
  Alcotest.(check (array int)) "2-core equals 3-core" [| 0; 1; 2; 3 |]
    (GC.k_core_vertices g 2);
  check "1-core is everything" 9 (Array.length (GC.k_core_vertices g 1));
  check "4-core empty" 0 (Array.length (GC.k_core_vertices g 4));
  Alcotest.(check (array int)) "max core vertices" [| 0; 1; 2; 3 |]
    (GC.max_core_vertices g);
  check "degeneracy" 3 (GC.degeneracy g)

let test_empty_and_edgeless () =
  let empty = G.of_edges ~n:0 [] in
  check "empty max core" 0 (GC.decompose empty).max_core;
  let edgeless = G.of_edges ~n:5 [] in
  let d = GC.decompose edgeless in
  check "edgeless max core" 0 d.max_core;
  Alcotest.(check (array int)) "all zero" [| 0; 0; 0; 0; 0 |] d.core_number

let test_k_core_subgraph () =
  let g = figure2 () in
  let sub, ids = GC.k_core g 3 in
  check "subgraph vertices" 4 (G.n_vertices sub);
  check "subgraph edges" 6 (G.n_edges sub);
  Alcotest.(check (array int)) "ids" [| 0; 1; 2; 3 |] ids

let test_peel_order_complete () =
  let g = figure2 () in
  let d = GC.decompose g in
  Alcotest.(check (array int)) "peel order is a permutation"
    (Array.init 9 Fun.id)
    (Th.sorted_array d.peel_order)

let test_clique_core () =
  (* K6: every vertex in the 5-core. *)
  let edges = ref [] in
  for u = 0 to 5 do
    for v = u + 1 to 5 do
      edges := (u, v) :: !edges
    done
  done;
  let g = G.of_edges ~n:6 !edges in
  check "K6 degeneracy" 5 (GC.degeneracy g)

let prop_matches_naive =
  QCheck.Test.make ~name:"core numbers match naive peeling oracle" ~count:200
    (Th.arbitrary_graph ())
    (fun g ->
      (GC.decompose g).core_number = Th.naive_graph_core_numbers g)

let prop_kcore_min_degree =
  QCheck.Test.make ~name:"k-core: induced subgraph has min degree >= k" ~count:200
    (Th.arbitrary_graph ())
    (fun g ->
      let d = GC.decompose g in
      let ok = ref true in
      for k = 1 to d.max_core do
        let sub, _ = GC.k_core g k in
        for v = 0 to G.n_vertices sub - 1 do
          if G.degree sub v < k then ok := false
        done
      done;
      !ok)

let prop_cores_nested =
  QCheck.Test.make ~name:"k-core: cores are nested" ~count:200
    (Th.arbitrary_graph ())
    (fun g ->
      let d = GC.decompose g in
      let ok = ref true in
      for k = 1 to d.max_core do
        let upper = GC.k_core_vertices g k in
        let lower = GC.k_core_vertices g (k - 1) in
        if not (Hp_util.Sorted.subset upper lower) then ok := false
      done;
      !ok)

let prop_maximality =
  (* No vertex outside the k-core could be added back: it must have had
     degree < k against the k-core at removal time.  Equivalent check:
     adding any single excluded vertex with its edges into the core
     leaves it with degree < k against core vertices... which is false
     in general (a removed vertex can have many core neighbors only if
     its own cascade removed it; but then its neighbors-in-core count
     must be < k).  Verify that. *)
  QCheck.Test.make ~name:"k-core: excluded vertices have < k core neighbors"
    ~count:200 (Th.arbitrary_graph ())
    (fun g ->
      let d = GC.decompose g in
      let ok = ref true in
      for k = 1 to d.max_core do
        let core = GC.k_core_vertices g k in
        let in_core = Array.make (G.n_vertices g) false in
        Array.iter (fun v -> in_core.(v) <- true) core;
        for v = 0 to G.n_vertices g - 1 do
          if not in_core.(v) then begin
            let core_neighbors =
              Array.fold_left
                (fun acc w -> if in_core.(w) then acc + 1 else acc)
                0 (G.neighbors g v)
            in
            if core_neighbors >= k then ok := false
          end
        done
      done;
      !ok)

let () =
  Alcotest.run "hp_graph_core"
    [
      ( "known cases",
        [
          Alcotest.test_case "figure 2 example" `Quick test_figure2;
          Alcotest.test_case "empty and edgeless" `Quick test_empty_and_edgeless;
          Alcotest.test_case "k-core subgraph" `Quick test_k_core_subgraph;
          Alcotest.test_case "peel order" `Quick test_peel_order_complete;
          Alcotest.test_case "clique" `Quick test_clique_core;
        ] );
      ( "properties",
        [
          Th.prop prop_matches_naive;
          Th.prop prop_kcore_min_degree;
          Th.prop prop_cores_nested;
          Th.prop prop_maximality;
        ] );
    ]
