(* Tests for the vertex cover suite (paper Section 4): validation,
   the Figure-5 greedy algorithm and its multicover variant, the
   primal-dual extension, and the exact branch-and-bound oracle. *)

module H = Hp_hypergraph.Hypergraph
module C = Hp_cover.Cover
module W = Hp_cover.Weighting
module Gr = Hp_cover.Greedy
module M = Hp_cover.Multicover
module PD = Hp_cover.Primal_dual
module E = Hp_cover.Exact

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let sample () = H.create ~n_vertices:5 [ [ 0; 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ]

(* Cover validation *)

let test_is_cover () =
  let h = sample () in
  checkb "valid cover" true (C.is_cover h [| 2; 3 |]);
  checkb "missing edge" false (C.is_cover h [| 0; 4 |]);
  checkb "everything" true (C.is_cover h [| 0; 1; 2; 3; 4 |]);
  Alcotest.(check (array int)) "coverage" [| 1; 2; 1 |] (C.coverage h [| 2; 3 |]);
  Alcotest.(check (array int)) "uncovered" [| 1; 2 |] (C.uncovered h [| 0 |])

let test_empty_edges_ignored () =
  let h = H.create ~n_vertices:2 [ []; [ 0 ] ] in
  checkb "empty edge cannot block" true (C.is_cover h [| 0 |]);
  Alcotest.(check (array int)) "uncovered skips empty" [||] (C.uncovered h [| 0 |])

let test_multicover_validation () =
  let h = sample () in
  checkb "double cover" true
    (C.is_multicover h ~requirements:[| 2; 2; 2 |] [| 0; 1; 2; 3; 4 |]);
  checkb "insufficient" false (C.is_multicover h ~requirements:[| 2; 2; 2 |] [| 2; 3 |]);
  Alcotest.check_raises "requirements length"
    (Invalid_argument "Cover.is_multicover: requirements length mismatch") (fun () ->
      ignore (C.is_multicover h ~requirements:[| 1 |] [| 0 |]))

let test_quality_measures () =
  let h = sample () in
  checkf "total weight" 7.0 (C.total_weight ~weights:[| 1.; 2.; 3.; 4.; 5. |] [| 1; 4 |]);
  (* degrees: v2 = 2, v3 = 2. *)
  checkf "average degree" 2.0 (C.average_degree h [| 2; 3 |]);
  checkf "empty set degree" 0.0 (C.average_degree h [||])

(* Weighting *)

let test_weightings () =
  let h = sample () in
  Alcotest.(check (array (float 1e-9))) "uniform" [| 1.; 1.; 1.; 1.; 1. |] (W.uniform h);
  Alcotest.(check (array (float 1e-9))) "degree" [| 1.; 1.; 2.; 2.; 1. |] (W.degree h);
  Alcotest.(check (array (float 1e-9))) "degree^2" [| 1.; 1.; 4.; 4.; 1. |]
    (W.degree_squared h)

let test_preferences () =
  let h =
    H.create ~vertex_names:[| "A"; "B" |] ~n_vertices:2 [ [ 0; 1 ] ]
  in
  let w = W.of_preferences h [ ("B", 9.0) ] ~default:1.0 in
  Alcotest.(check (array (float 1e-9))) "preference table" [| 1.0; 9.0 |] w;
  Alcotest.check_raises "unknown name"
    (Invalid_argument "Weighting.of_preferences: unknown vertex C") (fun () ->
      ignore (W.of_preferences h [ ("C", 1.0) ] ~default:1.0))

(* Greedy *)

let test_greedy_known () =
  let h = sample () in
  let cover = Gr.vertex_cover h in
  checkb "is a cover" true (C.is_cover h cover);
  (* {2,3} is optimal and the greedy finds a 2-cover here. *)
  check "cover size" 2 (Array.length cover)

let test_greedy_picks_hub () =
  (* A star of complexes all containing vertex 0: one pick suffices. *)
  let h = H.create ~n_vertices:4 [ [ 0; 1 ]; [ 0; 2 ]; [ 0; 3 ] ] in
  Alcotest.(check (array int)) "hub only" [| 0 |] (Gr.vertex_cover h)

let test_greedy_weights_redirect () =
  (* Same star, but the hub is prohibitively expensive. *)
  let h = H.create ~n_vertices:4 [ [ 0; 1 ]; [ 0; 2 ]; [ 0; 3 ] ] in
  let weights = [| 100.0; 1.0; 1.0; 1.0 |] in
  let cover = Gr.vertex_cover ~weights h in
  checkb "avoids hub" true (not (Array.exists (fun v -> v = 0) cover));
  check "covers with leaves" 3 (Array.length cover)

let test_greedy_trace () =
  let h = sample () in
  let t = Gr.vertex_cover_trace h in
  checkf "total weight is cardinality" (float_of_int (Array.length t.cover))
    t.total_weight;
  check "steps match cover" (Array.length t.cover) (List.length t.steps);
  (* Each step covered at least one new hyperedge. *)
  checkb "progress every step" true
    (List.for_all (fun (s : Gr.step) -> s.completed >= 1) t.steps);
  let total_completed =
    List.fold_left (fun acc (s : Gr.step) -> acc + s.completed) 0 t.steps
  in
  check "all hyperedges completed" 3 total_completed

let test_greedy_infeasible () =
  let h = H.create ~n_vertices:2 [ [ 0; 1 ] ] in
  Alcotest.check_raises "requirement too large"
    (Invalid_argument "Greedy.solve: requirement exceeds hyperedge size (infeasible)")
    (fun () -> ignore (Gr.solve ~requirements:[| 3 |] h))

let test_harmonic () =
  checkf "H_1" 1.0 (Gr.harmonic 1);
  checkf "H_3" (1.0 +. 0.5 +. (1.0 /. 3.0)) (Gr.harmonic 3);
  checkf "H_0" 0.0 (Gr.harmonic 0)

(* Multicover *)

let test_uniform_requirements () =
  let h = H.create ~n_vertices:4 [ [ 0 ]; [ 0; 1 ]; [ 0; 1; 2; 3 ]; [] ] in
  Alcotest.(check (array int)) "r=2 skips singletons" [| 0; 2; 2; 0 |]
    (M.uniform_requirements h ~r:2);
  check "covered edges" 2 (M.covered_edges ~requirements:(M.uniform_requirements h ~r:2))

let test_double_cover () =
  let h = sample () in
  let t = M.double_cover h in
  let reqs = M.uniform_requirements h ~r:2 in
  checkb "meets requirements" true (C.is_multicover h ~requirements:reqs t.cover);
  (* Doubling requirements cannot shrink the cover. *)
  checkb "at least as large as single cover" true
    (Array.length t.cover >= Array.length (Gr.vertex_cover h))

let prop_greedy_is_cover =
  QCheck.Test.make ~name:"greedy: always a valid cover" ~count:300
    (Th.arbitrary_hypergraph ())
    (fun h ->
      let cover = Gr.vertex_cover h in
      C.is_cover h cover
      (* No duplicate picks. *)
      && Array.length (Hp_util.Sorted.of_array cover) = Array.length cover)

let prop_multicover_meets_requirements =
  QCheck.Test.make ~name:"multicover: requirements met" ~count:300
    QCheck.(pair (Th.arbitrary_hypergraph ()) (int_range 1 3))
    (fun (h, r) ->
      let reqs = M.uniform_requirements h ~r in
      let t = M.solve ~requirements:reqs h in
      C.is_multicover h ~requirements:reqs t.cover)

let prop_greedy_within_harmonic_of_exact =
  QCheck.Test.make ~name:"greedy: within H_m of the optimum" ~count:150
    (Th.arbitrary_hypergraph ~max_v:7 ~max_e:6 ())
    (fun h ->
      let greedy = float_of_int (Array.length (Gr.vertex_cover h)) in
      match E.optimal_weight h with
      | Some opt -> greedy <= (Gr.harmonic (H.n_edges h) *. opt) +. 1e-9
      | None -> true)

(* Primal-dual *)

let test_primal_dual_known () =
  let h = sample () in
  let cover = PD.vertex_cover h in
  checkb "is a cover" true (C.is_cover h cover)

let prop_primal_dual_is_cover =
  QCheck.Test.make ~name:"primal-dual: always a valid cover" ~count:300
    (Th.arbitrary_hypergraph ())
    (fun h -> C.is_cover h (PD.vertex_cover h))

let prop_primal_dual_sandwich =
  (* Weak duality: sum of duals <= optimum <= primal-dual cover weight
     <= Delta_F * sum of duals. *)
  QCheck.Test.make ~name:"primal-dual: dual bound sandwiches the cover" ~count:150
    (Th.arbitrary_hypergraph ~max_v:7 ~max_e:6 ())
    (fun h ->
      let cover, duals = PD.vertex_cover_with_duals h in
      let dual_sum = Array.fold_left ( +. ) 0.0 duals in
      let weight = float_of_int (Array.length cover) in
      match E.optimal_weight h with
      | Some opt -> dual_sum <= opt +. 1e-6 && opt <= weight +. 1e-6
      | None -> dual_sum <= weight +. 1e-6)

(* Exact *)

let test_exact_known () =
  let h = sample () in
  (match E.min_weight_cover h with
  | Some cover ->
    checkb "optimal is a cover" true (C.is_cover h cover);
    check "optimal size" 2 (Array.length cover)
  | None -> Alcotest.fail "exact solver gave up on a tiny instance");
  Alcotest.(check (option (float 1e-9))) "optimal weight" (Some 2.0)
    (E.optimal_weight h)

let test_exact_weighted () =
  (* Hub vs leaves: with an expensive hub the optimum uses the leaves. *)
  let h = H.create ~n_vertices:4 [ [ 0; 1 ]; [ 0; 2 ]; [ 0; 3 ] ] in
  Alcotest.(check (option (float 1e-9))) "cheap hub" (Some 1.0) (E.optimal_weight h);
  Alcotest.(check (option (float 1e-9))) "expensive hub" (Some 3.0)
    (E.optimal_weight ~weights:[| 10.0; 1.0; 1.0; 1.0 |] h)

let test_exact_node_limit () =
  let rng = Hp_util.Prng.create 3 in
  let h = Hp_hypergraph.Hypergraph_gen.uniform rng ~nv:30 ~ne:25 ~edge_size:5 in
  Alcotest.(check (option (array int))) "limit respected" None
    (E.min_weight_cover ~node_limit:3 h)

let prop_exact_beats_heuristics =
  QCheck.Test.make ~name:"exact: never worse than greedy or primal-dual" ~count:100
    (Th.arbitrary_hypergraph ~max_v:6 ~max_e:5 ())
    (fun h ->
      match E.optimal_weight h with
      | None -> true
      | Some opt ->
        opt <= float_of_int (Array.length (Gr.vertex_cover h)) +. 1e-9
        && opt <= float_of_int (Array.length (PD.vertex_cover h)) +. 1e-9)

let () =
  Alcotest.run "hp_cover"
    [
      ( "validation",
        [
          Alcotest.test_case "is_cover" `Quick test_is_cover;
          Alcotest.test_case "empty edges" `Quick test_empty_edges_ignored;
          Alcotest.test_case "multicover" `Quick test_multicover_validation;
          Alcotest.test_case "quality measures" `Quick test_quality_measures;
        ] );
      ( "weighting",
        [
          Alcotest.test_case "schemes" `Quick test_weightings;
          Alcotest.test_case "preferences" `Quick test_preferences;
        ] );
      ( "greedy",
        [
          Alcotest.test_case "known cover" `Quick test_greedy_known;
          Alcotest.test_case "hub pick" `Quick test_greedy_picks_hub;
          Alcotest.test_case "weights redirect" `Quick test_greedy_weights_redirect;
          Alcotest.test_case "trace" `Quick test_greedy_trace;
          Alcotest.test_case "infeasible" `Quick test_greedy_infeasible;
          Alcotest.test_case "harmonic numbers" `Quick test_harmonic;
          Th.prop prop_greedy_is_cover;
          Th.prop prop_greedy_within_harmonic_of_exact;
        ] );
      ( "multicover",
        [
          Alcotest.test_case "uniform requirements" `Quick test_uniform_requirements;
          Alcotest.test_case "double cover" `Quick test_double_cover;
          Th.prop prop_multicover_meets_requirements;
        ] );
      ( "primal-dual",
        [
          Alcotest.test_case "known cover" `Quick test_primal_dual_known;
          Th.prop prop_primal_dual_is_cover;
          Th.prop prop_primal_dual_sandwich;
        ] );
      ( "exact",
        [
          Alcotest.test_case "known optimum" `Quick test_exact_known;
          Alcotest.test_case "weighted optimum" `Quick test_exact_weighted;
          Alcotest.test_case "node limit" `Quick test_exact_node_limit;
          Th.prop prop_exact_beats_heuristics;
        ] );
    ]
