(* End-to-end integration tests: the full pipeline the experiments run,
   crossing every library boundary — generate, persist, reload,
   analyze, core, cover, export. *)

module H = Hp_hypergraph.Hypergraph
module HIO = Hp_hypergraph.Hypergraph_io
module HP = Hp_hypergraph.Hypergraph_path
module HC = Hp_hypergraph.Hypergraph_core
module MM = Hp_data.Matrix_market
module U = Hp_util

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_generate_save_reload_analyze () =
  let ds = Hp_data.Cellzome.generate ~seed:99 () in
  let path = Filename.temp_file "hp_integration" ".hg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      HIO.write path ds.hypergraph;
      let h = HIO.read path in
      check "vertices preserved" (H.n_vertices ds.hypergraph) (H.n_vertices h);
      check "edges preserved" (H.n_edges ds.hypergraph) (H.n_edges h);
      (* Core computed on the reloaded hypergraph matches (structure is
         identical up to vertex renumbering by first appearance). *)
      let k0, r0 = HC.max_core ds.hypergraph in
      let k1, r1 = HC.max_core h in
      check "same max core index" k0 k1;
      check "same core size" (H.n_vertices r0.core) (H.n_vertices r1.core);
      check "same core complexes" (H.n_edges r0.core) (H.n_edges r1.core);
      (* And the core proteins carry the same names. *)
      let names result base =
        Array.map (fun v -> H.vertex_name base v) result
        |> Array.to_list |> List.sort compare
      in
      Alcotest.(check (list string)) "same core proteins by name"
        (names r0.vertex_ids ds.hypergraph)
        (names r1.vertex_ids h))

let test_mtx_pipeline () =
  let rng = U.Prng.create 21 in
  let m = MM.banded rng ~n:120 ~bandwidth:6 ~fill:0.8 in
  let path = Filename.temp_file "hp_integration" ".mtx" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      MM.write path m;
      let m' = MM.read path in
      checkb "mtx roundtrip" true (m = m');
      let h = MM.to_hypergraph m' in
      let d = HC.decompose h in
      checkb "banded matrix has a core" true (d.max_core >= 2);
      (* The k-core result agrees with an independent per-k run. *)
      let r = HC.k_core h d.max_core in
      checkb "per-k agrees with decomposition" true (H.n_vertices r.core > 0);
      let r' = HC.k_core h (d.max_core + 1) in
      check "nothing above the max core" 0 (H.n_vertices r'.core))

let test_cover_pipeline_on_core () =
  (* Select baits for just the core proteome: subhypergraph workflow. *)
  let ds = Hp_data.Cellzome.generate ~seed:77 () in
  let _, r = HC.max_core ds.hypergraph in
  let cover = Hp_cover.Greedy.vertex_cover r.core in
  checkb "cover of the core" true (Hp_cover.Cover.is_cover r.core cover);
  checkb "cover smaller than core" true
    (Array.length cover < H.n_vertices r.core);
  (* Map back to original protein names without collisions. *)
  let names =
    Array.map (fun v -> H.vertex_name ds.hypergraph r.vertex_ids.(v)) cover
  in
  check "distinct names" (Array.length names)
    (List.length (List.sort_uniq compare (Array.to_list names)))

let test_null_model_pipeline () =
  (* Degree-preserving shuffle preserves both degree sequences and
     keeps every analysis runnable. *)
  let ds = Hp_data.Cellzome.generate ~seed:55 () in
  let h = ds.hypergraph in
  let rng = U.Prng.create 55 in
  let null = Hp_hypergraph.Hypergraph_gen.degree_preserving_shuffle rng h ~rounds:2 in
  Alcotest.(check (array int)) "vertex degrees preserved" (H.vertex_degrees h)
    (H.vertex_degrees null);
  Alcotest.(check (array int)) "edge sizes preserved" (H.edge_sizes h)
    (H.edge_sizes null);
  checkb "wiring actually changed" false (H.equal_structure h null);
  let _, apl = HP.diameter_and_average_path null in
  checkb "null analyzable" true (apl > 0.0)

let test_full_experiment_smoke () =
  (* A miniature of bench/main.exe: every experiment step in sequence
     on a fresh dataset. *)
  let ds = Hp_data.Cellzome.generate ~seed:31 () in
  let h = ds.hypergraph in
  let hist = Hp_stats.Degree_dist.vertex_histogram h in
  let fit = Hp_stats.Powerlaw.fit_loglog hist in
  checkb "fit sane" true (fit.gamma > 1.0);
  let summary = HP.component_summary h in
  checkb "components found" true (Array.length summary > 1);
  let k, r = HC.max_core h in
  checkb "core found" true (k >= 5 && H.n_vertices r.core > 0);
  let rng = U.Prng.create 31 in
  let ann = Hp_data.Annotations.generate rng ds in
  let report = Hp_data.Annotations.core_report ann ~protein_ids:r.vertex_ids in
  checkb "enrichment computed" true (report.essential_enrichment.p_value <= 1.0);
  let w = Hp_cover.Weighting.degree_squared h in
  let t = Hp_cover.Multicover.double_cover ~weights:w h in
  checkb "multicover valid" true
    (Hp_cover.Cover.is_multicover h
       ~requirements:(Hp_cover.Multicover.uniform_requirements h ~r:2)
       t.cover);
  let net, clu =
    Hp_data.Pajek.write_figure3
      ~dir:(Filename.get_temp_dir_name ())
      ~prefix:"hp_smoke" h ~core_vertices:r.vertex_ids ~core_edges:r.edge_ids
  in
  checkb "pajek written" true (Sys.file_exists net && Sys.file_exists clu);
  Sys.remove net;
  Sys.remove clu

let () =
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          Alcotest.test_case "generate/save/reload/analyze" `Quick
            test_generate_save_reload_analyze;
          Alcotest.test_case "mtx to core" `Quick test_mtx_pipeline;
          Alcotest.test_case "cover of the core" `Quick test_cover_pipeline_on_core;
          Alcotest.test_case "null model" `Quick test_null_model_pipeline;
          Alcotest.test_case "full experiment smoke" `Quick test_full_experiment_smoke;
        ] );
    ]
