(* Tests for the data substrates: the calibrated Cellzome generator,
   annotations, DIP networks, MatrixMarket I/O, and the Pajek export.
   These pin the structural facts the experiments rely on. *)

module H = Hp_hypergraph.Hypergraph
module HP = Hp_hypergraph.Hypergraph_path
module HC = Hp_hypergraph.Hypergraph_core
module GC = Hp_graph.Graph_core
module G = Hp_graph.Graph
module MM = Hp_data.Matrix_market
module CZ = Hp_data.Cellzome
module U = Hp_util

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let dataset = lazy (CZ.paper ())

(* Names *)

let test_gene_names () =
  let rng = U.Prng.create 1 in
  let names = Hp_data.Names.gene_names rng 500 in
  check "count" 500 (Array.length names);
  let distinct = List.sort_uniq compare (Array.to_list names) in
  check "unique" 500 (List.length distinct);
  checkb "shapes" true
    (Array.for_all (fun n -> String.length n >= 4 && String.length n <= 5) names)

let test_complex_names () =
  Alcotest.(check (array string)) "systematic" [| "CPX001"; "CPX002" |]
    (Hp_data.Names.complex_names 2)

(* Cellzome *)

let test_cellzome_shape () =
  let ds = Lazy.force dataset in
  let h = ds.hypergraph in
  check "proteins" CZ.Reported.n_proteins (H.n_vertices h);
  check "complexes" CZ.Reported.n_complexes (H.n_edges h);
  check "max degree" CZ.Reported.max_degree (H.max_vertex_degree h);
  check "ADH1 has it" CZ.Reported.max_degree (H.vertex_degree h ds.adh1);
  Alcotest.(check string) "ADH1 name" "ADH1" (H.vertex_name h ds.adh1);
  (* Exactly 3 singleton complexes. *)
  let singles =
    Array.fold_left (fun a s -> if s = 1 then a + 1 else a) 0 (H.edge_sizes h)
  in
  check "singleton complexes" CZ.Reported.singleton_complexes singles

let test_cellzome_components () =
  let ds = Lazy.force dataset in
  let summary = HP.component_summary ds.hypergraph in
  check "components" CZ.Reported.n_components (Array.length summary);
  let nv, ne = summary.(0) in
  check "largest proteins" CZ.Reported.largest_component_proteins nv;
  check "largest complexes" CZ.Reported.largest_component_complexes ne

let test_cellzome_core () =
  let ds = Lazy.force dataset in
  let k, r = HC.max_core ds.hypergraph in
  check "max core index" CZ.Reported.max_core k;
  check "core proteins" CZ.Reported.core_proteins (H.n_vertices r.core);
  check "core complexes" CZ.Reported.core_complexes (H.n_edges r.core);
  (* The planted proteins are exactly the max core. *)
  Alcotest.(check (array int)) "planted = computed" ds.core_proteins
    (Th.sorted_array r.vertex_ids);
  Alcotest.(check (array int)) "planted complexes = computed" ds.core_complexes
    (Th.sorted_array r.edge_ids)

let test_cellzome_degree_distribution () =
  let ds = Lazy.force dataset in
  let hist = Hp_stats.Degree_dist.vertex_histogram ds.hypergraph in
  let fit = Hp_stats.Powerlaw.fit_loglog hist in
  (* Shape targets: exponent near the reported 2.528, strong fit,
     majority of proteins in a single complex. *)
  checkb "gamma in band" true (fit.gamma > 2.0 && fit.gamma < 3.0);
  checkb "r2 strong" true (fit.r2 > 0.85);
  checkb "degree-1 majority" true
    (U.Int_histogram.count hist 1 > H.n_vertices ds.hypergraph / 2)

let test_cellzome_small_world () =
  let ds = Lazy.force dataset in
  let diam, apl = HP.diameter_and_average_path ds.hypergraph in
  checkb "diameter band" true (diam >= 4 && diam <= 8);
  checkb "avg path band" true (apl > 2.0 && apl < 3.5)

let test_cellzome_deterministic () =
  let a = CZ.generate ~seed:123 () and b = CZ.generate ~seed:123 () in
  checkb "same seed same structure" true
    (H.equal_structure a.hypergraph b.hypergraph);
  let c = CZ.generate ~seed:124 () in
  checkb "different seed differs" false
    (H.equal_structure a.hypergraph c.hypergraph)

let test_cellzome_baits () =
  let ds = Lazy.force dataset in
  check "productive baits" CZ.Reported.productive_baits
    (Array.length ds.historical_baits);
  let avg = Hp_cover.Cover.average_degree ds.hypergraph ds.historical_baits in
  checkb "bait degree near reported" true
    (Float.abs (avg -. CZ.Reported.bait_average_degree) < 0.05);
  (* Baits are distinct proteins. *)
  check "distinct" (Array.length ds.historical_baits)
    (Array.length (U.Sorted.of_array ds.historical_baits))

(* Proteome generator *)

let test_proteome_cellzome_params_match () =
  (* Cellzome is the canonical instance of the generic generator. *)
  let rng = U.Prng.create 2004 in
  let p =
    Hp_data.Proteome_gen.generate ~hub_name:"ADH1" rng
      Hp_data.Proteome_gen.cellzome_params
  in
  let ds = Lazy.force dataset in
  checkb "same structure" true (H.equal_structure p.hypergraph ds.hypergraph);
  check "same hub" ds.adh1 p.hub

let test_proteome_scaled_shape () =
  let params = Hp_data.Proteome_gen.scaled Hp_data.Proteome_gen.cellzome_params 2.0 in
  check "core proteins doubled" 82 params.core_proteins;
  check "membership unchanged" 6 params.core_membership;
  let rng = U.Prng.create 7 in
  let p = Hp_data.Proteome_gen.generate rng params in
  let h = p.hypergraph in
  checkb "roughly doubled proteins" true
    (H.n_vertices h > 2500 && H.n_vertices h < 2900);
  (* The planted core is still exactly the maximum core. *)
  let k, r = HC.max_core h in
  check "max core still the planted index" 6 k;
  check "core proteins" params.core_proteins (H.n_vertices r.core);
  check "core complexes" params.core_complexes (H.n_edges r.core);
  Alcotest.(check (array int)) "planted = computed" p.core_proteins
    (Th.sorted_array r.vertex_ids)

let test_proteome_validation () =
  let bad = { Hp_data.Proteome_gen.cellzome_params with hub_degree = 99 } in
  Alcotest.check_raises "hub degree too large"
    (Invalid_argument "Proteome_gen: hub_degree exceeds periphery complexes")
    (fun () -> ignore (Hp_data.Proteome_gen.generate (U.Prng.create 1) bad));
  Alcotest.check_raises "bad scale"
    (Invalid_argument "Proteome_gen.scaled: factor must be positive") (fun () ->
      ignore (Hp_data.Proteome_gen.scaled Hp_data.Proteome_gen.cellzome_params 0.0))

(* Annotations *)

let test_annotations () =
  let ds = Lazy.force dataset in
  let rng = U.Prng.create 11 in
  let ann = Hp_data.Annotations.generate rng ds in
  check "genome essential" 878 ann.genome_essential;
  check "one annotation per protein" (H.n_vertices ds.hypergraph)
    (Array.length ann.by_protein);
  let report = Hp_data.Annotations.core_report ann ~protein_ids:ds.core_proteins in
  check "covers the core" 41 report.core_size;
  check "unknown + known = size" report.core_size (report.unknown + report.known_total);
  checkb "essential within known" true (report.known_essential <= report.known_total);
  (* Calibrated enrichment: clearly above the ~22% base rate. *)
  checkb "core enriched" true (report.essential_enrichment.fold > 2.0);
  checkb "significant" true (report.essential_enrichment.p_value < 1e-4)

let test_annotations_background_rate () =
  let ds = Lazy.force dataset in
  let rng = U.Prng.create 11 in
  let ann = Hp_data.Annotations.generate rng ds in
  (* Non-core proteins follow the genome base rate, within tolerance. *)
  let in_core = Array.make (H.n_vertices ds.hypergraph) false in
  Array.iter (fun v -> in_core.(v) <- true) ds.core_proteins;
  let known = ref 0 and essential = ref 0 in
  Array.iteri
    (fun v (a : Hp_data.Annotations.annotation) ->
      if (not in_core.(v)) && a.known then begin
        incr known;
        if a.essential then incr essential
      end)
    ann.by_protein;
  let rate = float_of_int !essential /. float_of_int !known in
  checkb "background near 21.8%" true (Float.abs (rate -. 0.2175) < 0.05)

(* DIP *)

let test_dip_yeast () =
  let net = Hp_data.Dip.yeast () in
  check "proteins" Hp_data.Dip.Reported.yeast_proteins (G.n_vertices net.graph);
  let d = GC.decompose net.graph in
  check "max core" Hp_data.Dip.Reported.yeast_max_core d.max_core;
  let size =
    Array.fold_left (fun a c -> if c = d.max_core then a + 1 else a) 0 d.core_number
  in
  check "core size" Hp_data.Dip.Reported.yeast_core_size size

let test_dip_drosophila () =
  let net = Hp_data.Dip.drosophila () in
  check "proteins" Hp_data.Dip.Reported.drosophila_proteins (G.n_vertices net.graph);
  let d = GC.decompose net.graph in
  check "max core" Hp_data.Dip.Reported.drosophila_max_core d.max_core;
  let size =
    Array.fold_left (fun a c -> if c = d.max_core then a + 1 else a) 0 d.core_number
  in
  check "core size" Hp_data.Dip.Reported.drosophila_core_size size

(* MatrixMarket *)

let test_mm_parse () =
  let text =
    "%%MatrixMarket matrix coordinate real general\n\
     % a comment\n\
     3 4 3\n\
     1 1 0.5\n\
     2 3 1.0\n\
     3 4 -2.0\n"
  in
  let m = MM.parse text in
  check "rows" 3 m.rows;
  check "cols" 4 m.cols;
  check "nnz" 3 (MM.nnz m);
  Alcotest.(check (array (pair int int))) "entries 0-based"
    [| (0, 0); (1, 2); (2, 3) |]
    m.entries

let test_mm_parse_symmetric_pattern () =
  let text = "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 2\n1 1\n2 1\n" in
  let m = MM.parse text in
  checkb "symmetric" true (m.symmetry = MM.Symmetric);
  check "nnz" 2 (MM.nnz m)

let test_mm_parse_errors () =
  let bad_header = "%%NotMatrixMarket\n1 1 0\n" in
  (match MM.parse bad_header with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure _ -> ());
  let wrong_count = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n" in
  (match MM.parse wrong_count with
  | _ -> Alcotest.fail "expected count mismatch failure"
  | exception Failure _ -> ())

let prop_mm_parse_never_crashes =
  QCheck.Test.make ~name:"mm: parse total on arbitrary text" ~count:500
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 80) QCheck.Gen.printable)
    (fun text ->
      match MM.parse text with
      | _ -> true
      | exception Failure _ -> true)

let test_mm_roundtrip () =
  let m = MM.create ~rows:3 ~cols:3 ~symmetry:MM.Symmetric [ (2, 0); (1, 1); (0, 2) ] in
  (* (0,2) canonicalizes to (2,0): duplicates collapse. *)
  check "canonical nnz" 2 (MM.nnz m);
  let m' = MM.parse (MM.to_string m) in
  checkb "roundtrip" true (m = m')

let test_mm_to_hypergraph () =
  let m = MM.create ~rows:2 ~cols:3 [ (0, 0); (0, 2); (1, 1) ] in
  let h = MM.to_hypergraph m in
  check "vertices are columns" 3 (H.n_vertices h);
  check "edges are rows" 2 (H.n_edges h);
  Alcotest.(check (array int)) "row 0" [| 0; 2 |] (H.edge_members h 0)

let test_mm_symmetric_expansion () =
  let m = MM.create ~rows:2 ~cols:2 ~symmetry:MM.Symmetric [ (1, 0); (0, 0) ] in
  let h = MM.to_hypergraph m in
  (* Row 0 sees (0,0) and mirrored (0,1); row 1 sees (1,0). *)
  Alcotest.(check (array int)) "row 0 expanded" [| 0; 1 |] (H.edge_members h 0);
  Alcotest.(check (array int)) "row 1" [| 0 |] (H.edge_members h 1)

let test_mm_generators () =
  let rng = U.Prng.create 2 in
  let banded = MM.banded rng ~n:50 ~bandwidth:3 ~fill:1.0 in
  checkb "diagonal present" true
    (Array.exists (fun e -> e = (0, 0)) banded.entries);
  check "full band nnz" (50 + (3 * 50) - (1 + 2 + 3)) (MM.nnz banded);
  let rect = MM.random_rect rng ~rows:20 ~cols:10 ~nnz:50 in
  checkb "requested density approximate" true (MM.nnz rect >= 20 && MM.nnz rect <= 50);
  let block = MM.block_structured rng ~n:30 ~block:5 ~fill:1.0 ~noise:0 in
  checkb "block has dense diagonal blocks" true (MM.nnz block >= 30)

let test_mm_suite () =
  let suite = MM.synthetic_suite () in
  check "five instances" 5 (List.length suite);
  List.iter
    (fun (name, m) ->
      checkb (name ^ " nonempty") true (MM.nnz m > 0);
      let h = MM.to_hypergraph m in
      checkb (name ^ " rows become edges") true (H.n_edges h = m.rows))
    suite

(* Pajek *)

let test_pajek_network () =
  let h =
    H.create ~vertex_names:[| "A"; "B" |] ~edge_names:[| "X" |] ~n_vertices:2
      [ [ 0; 1 ] ]
  in
  let s = Hp_data.Pajek.network h in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  Alcotest.(check string) "header" "*Vertices 3" (List.nth lines 0);
  Alcotest.(check string) "protein node" "1 \"A\"" (List.nth lines 1);
  Alcotest.(check string) "complex node" "3 \"X\"" (List.nth lines 3);
  Alcotest.(check string) "edges marker" "*Edges" (List.nth lines 4);
  Alcotest.(check string) "membership arc" "1 3" (List.nth lines 5)

let test_pajek_partition () =
  let h = H.create ~n_vertices:2 [ [ 0; 1 ] ] in
  let s =
    Hp_data.Pajek.core_partition h ~core_vertices:[| 1 |] ~core_edges:[| 0 |]
  in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  Alcotest.(check (list string)) "classes"
    [ "*Vertices 3"; "0"; "1"; "3" ]
    lines

let test_pajek_write () =
  let ds = Lazy.force dataset in
  let _, r = HC.max_core ds.hypergraph in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "hp_pajek_test" in
  let net, clu =
    Hp_data.Pajek.write_figure3 ~dir ~prefix:"fig3" ds.hypergraph
      ~core_vertices:r.vertex_ids ~core_edges:r.edge_ids
  in
  checkb "net exists" true (Sys.file_exists net);
  checkb "clu exists" true (Sys.file_exists clu);
  Sys.remove net;
  Sys.remove clu

let () =
  Alcotest.run "hp_data"
    [
      ( "names",
        [
          Alcotest.test_case "gene names" `Quick test_gene_names;
          Alcotest.test_case "complex names" `Quick test_complex_names;
        ] );
      ( "cellzome",
        [
          Alcotest.test_case "shape" `Quick test_cellzome_shape;
          Alcotest.test_case "components" `Quick test_cellzome_components;
          Alcotest.test_case "planted max core" `Quick test_cellzome_core;
          Alcotest.test_case "degree distribution" `Quick test_cellzome_degree_distribution;
          Alcotest.test_case "small world" `Quick test_cellzome_small_world;
          Alcotest.test_case "deterministic" `Quick test_cellzome_deterministic;
          Alcotest.test_case "historical baits" `Quick test_cellzome_baits;
        ] );
      ( "proteome generator",
        [
          Alcotest.test_case "cellzome equivalence" `Quick
            test_proteome_cellzome_params_match;
          Alcotest.test_case "scaled instance keeps the planted core" `Quick
            test_proteome_scaled_shape;
          Alcotest.test_case "validation" `Quick test_proteome_validation;
        ] );
      ( "annotations",
        [
          Alcotest.test_case "core report" `Quick test_annotations;
          Alcotest.test_case "background rate" `Quick test_annotations_background_rate;
        ] );
      ( "dip",
        [
          Alcotest.test_case "yeast" `Quick test_dip_yeast;
          Alcotest.test_case "drosophila" `Quick test_dip_drosophila;
        ] );
      ( "matrix market",
        [
          Alcotest.test_case "parse" `Quick test_mm_parse;
          Alcotest.test_case "parse symmetric pattern" `Quick test_mm_parse_symmetric_pattern;
          Alcotest.test_case "parse errors" `Quick test_mm_parse_errors;
          Th.prop prop_mm_parse_never_crashes;
          Alcotest.test_case "roundtrip" `Quick test_mm_roundtrip;
          Alcotest.test_case "to hypergraph" `Quick test_mm_to_hypergraph;
          Alcotest.test_case "symmetric expansion" `Quick test_mm_symmetric_expansion;
          Alcotest.test_case "generators" `Quick test_mm_generators;
          Alcotest.test_case "synthetic suite" `Quick test_mm_suite;
        ] );
      ( "pajek",
        [
          Alcotest.test_case "network format" `Quick test_pajek_network;
          Alcotest.test_case "partition format" `Quick test_pajek_partition;
          Alcotest.test_case "figure 3 files" `Quick test_pajek_write;
        ] );
    ]
