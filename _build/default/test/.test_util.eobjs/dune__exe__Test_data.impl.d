test/test_data.ml: Alcotest Array Filename Float Hp_cover Hp_data Hp_graph Hp_hypergraph Hp_stats Hp_util Lazy List QCheck String Sys Th
