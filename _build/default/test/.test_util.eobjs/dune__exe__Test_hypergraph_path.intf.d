test/test_hypergraph_path.mli:
