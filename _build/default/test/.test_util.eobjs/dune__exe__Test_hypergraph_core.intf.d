test/test_hypergraph_core.mli:
