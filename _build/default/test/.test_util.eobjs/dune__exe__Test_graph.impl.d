test/test_graph.ml: Alcotest Array Float Fun Hp_graph Hp_util List QCheck Th
