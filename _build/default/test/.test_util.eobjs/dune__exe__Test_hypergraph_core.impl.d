test/test_hypergraph_core.ml: Alcotest Array Fun Hp_data Hp_graph Hp_hypergraph Hp_util List QCheck Th
