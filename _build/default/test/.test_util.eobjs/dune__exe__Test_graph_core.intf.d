test/test_graph_core.mli:
