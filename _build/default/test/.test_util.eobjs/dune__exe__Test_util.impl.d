test/test_util.ml: Alcotest Array Float Fun Hashtbl Hp_util List QCheck String Th
