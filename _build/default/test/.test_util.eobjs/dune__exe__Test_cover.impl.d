test/test_cover.ml: Alcotest Array Hp_cover Hp_hypergraph Hp_util List QCheck Th
