test/test_stats.ml: Alcotest Array Float Hp_data Hp_graph Hp_hypergraph Hp_stats Hp_util QCheck Th
