test/test_hypergraph.ml: Alcotest Array Format Hp_graph Hp_hypergraph Hp_util QCheck String Th
