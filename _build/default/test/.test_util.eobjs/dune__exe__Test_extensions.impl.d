test/test_extensions.ml: Alcotest Array Float Hp_cover Hp_data Hp_hypergraph Hp_util List QCheck Th
