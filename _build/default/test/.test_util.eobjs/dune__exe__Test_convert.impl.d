test/test_convert.ml: Alcotest Array Fun Hp_graph Hp_hypergraph Hp_util List QCheck Th
