test/test_integration.ml: Alcotest Array Filename Fun Hp_cover Hp_data Hp_hypergraph Hp_stats Hp_util List Sys
