test/test_graph_core.ml: Alcotest Array Fun Hp_graph Hp_util QCheck Th
