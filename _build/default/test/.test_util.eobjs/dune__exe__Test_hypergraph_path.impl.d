test/test_hypergraph_path.ml: Alcotest Array Hp_data Hp_graph Hp_hypergraph Hp_util QCheck Th
