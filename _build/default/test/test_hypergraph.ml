(* Tests for the core hypergraph type: construction, degrees, two-step
   adjacency, names, subhypergraphs, reducedness, text I/O. *)

module H = Hp_hypergraph.Hypergraph
module HIO = Hp_hypergraph.Hypergraph_io
module U = Hp_util

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* Running example: 5 proteins, 4 complexes
     e0 = {0,1,2}   e1 = {2,3}   e2 = {3,4}   e3 = {0,1,2}  (duplicate) *)
let sample () = H.create ~n_vertices:5 [ [ 0; 1; 2 ]; [ 2; 3 ]; [ 3; 4 ]; [ 0; 1; 2 ] ]

let test_sizes () =
  let h = sample () in
  check "vertices" 5 (H.n_vertices h);
  check "edges" 4 (H.n_edges h);
  check "total incidence" 10 (H.total_incidence h);
  check "max vertex degree" 3 (H.vertex_degree h 2);
  check "max vertex degree accessor" 3 (H.max_vertex_degree h);
  check "max edge size" 3 (H.max_edge_size h);
  Alcotest.(check (array int)) "vertex degrees" [| 2; 2; 3; 2; 1 |] (H.vertex_degrees h);
  Alcotest.(check (array int)) "edge sizes" [| 3; 2; 2; 3 |] (H.edge_sizes h)

let test_incidence () =
  let h = sample () in
  Alcotest.(check (array int)) "edge members sorted" [| 0; 1; 2 |] (H.edge_members h 0);
  Alcotest.(check (array int)) "vertex edges sorted" [| 0; 1; 3 |] (H.vertex_edges h 2);
  checkb "mem" true (H.mem h ~vertex:3 ~edge:1);
  checkb "not mem" false (H.mem h ~vertex:0 ~edge:1)

let test_member_dedup_and_range () =
  let h = H.create ~n_vertices:3 [ [ 0; 0; 1 ] ] in
  check "duplicate members collapse" 2 (H.edge_size h 0);
  Alcotest.check_raises "member out of range"
    (Invalid_argument "Hypergraph: member vertex out of range") (fun () ->
      ignore (H.create ~n_vertices:2 [ [ 5 ] ]))

let test_degree2 () =
  let h = sample () in
  (* e0 overlaps e1 (via 2) and e3 (via 0,1,2): d2 = 2. *)
  check "edge degree2 of e0" 2 (H.edge_degree2 h 0);
  (* e1 = {2,3}: overlaps e0, e2, e3. *)
  check "edge degree2 of e1" 3 (H.edge_degree2 h 1);
  check "max edge degree2" 3 (H.max_edge_degree2 h);
  (* vertex 2 co-occurs with 0,1,3. *)
  check "vertex degree2" 3 (H.vertex_degree2 h 2);
  (* vertex 4 co-occurs with 3 only. *)
  check "leaf vertex degree2" 1 (H.vertex_degree2 h 4)

let test_names () =
  let h =
    H.create
      ~vertex_names:[| "A"; "B"; "C" |]
      ~edge_names:[| "X"; "Y" |]
      ~n_vertices:3
      [ [ 0; 1 ]; [ 1; 2 ] ]
  in
  Alcotest.(check string) "vertex name" "B" (H.vertex_name h 1);
  Alcotest.(check string) "edge name" "Y" (H.edge_name h 1);
  Alcotest.(check (option int)) "lookup" (Some 2) (H.vertex_of_name h "C");
  Alcotest.(check (option int)) "missing" None (H.vertex_of_name h "Z");
  Alcotest.(check (option int)) "edge lookup" (Some 0) (H.edge_of_name h "X");
  (* Fallback names without tables. *)
  let anon = sample () in
  Alcotest.(check string) "default vertex name" "v3" (H.vertex_name anon 3);
  Alcotest.(check string) "default edge name" "e1" (H.edge_name anon 1);
  Alcotest.(check (option int)) "no lookup table" None (H.vertex_of_name anon "v3")

let test_name_length_mismatch () =
  Alcotest.check_raises "vertex names mismatch"
    (Invalid_argument "Hypergraph: vertex_names length mismatch") (fun () ->
      ignore (H.create ~vertex_names:[| "A" |] ~n_vertices:2 [ [ 0 ] ]));
  Alcotest.check_raises "edge names mismatch"
    (Invalid_argument "Hypergraph: edge_names length mismatch") (fun () ->
      ignore (H.create ~edge_names:[| "X"; "Y" |] ~n_vertices:2 [ [ 0 ] ]))

let test_sub () =
  let h = sample () in
  let sub, vids, eids = H.sub h ~vertices:[| 2; 3; 4 |] ~edges:[| 1; 2 |] in
  check "sub vertices" 3 (H.n_vertices sub);
  check "sub edges" 2 (H.n_edges sub);
  Alcotest.(check (array int)) "vid map" [| 2; 3; 4 |] vids;
  Alcotest.(check (array int)) "eid map" [| 1; 2 |] eids;
  (* e1 = {2,3} becomes {0,1} in new ids. *)
  Alcotest.(check (array int)) "restricted members" [| 0; 1 |] (H.edge_members sub 0);
  (* Restriction drops members outside the kept set. *)
  let sub2, _, _ = H.sub h ~vertices:[| 0 |] ~edges:[| 0 |] in
  Alcotest.(check (array int)) "heavy restriction" [| 0 |] (H.edge_members sub2 0)

let test_is_reduced () =
  checkb "duplicate edges not reduced" false (H.is_reduced (sample ()));
  let r = H.create ~n_vertices:4 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ] in
  checkb "chain reduced" true (H.is_reduced r);
  let nested = H.create ~n_vertices:3 [ [ 0; 1; 2 ]; [ 0; 1 ] ] in
  checkb "nested not reduced" false (H.is_reduced nested);
  let with_empty = H.create ~n_vertices:2 [ [ 0 ]; [] ] in
  checkb "empty edge not reduced" false (H.is_reduced with_empty)

let test_equal_structure () =
  checkb "same" true (H.equal_structure (sample ()) (sample ()));
  let other = H.create ~n_vertices:5 [ [ 0; 1 ] ] in
  checkb "different" false (H.equal_structure (sample ()) other)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  loop 0

let test_pp () =
  let h =
    H.create ~vertex_names:[| "A"; "B" |] ~edge_names:[| "X" |] ~n_vertices:2
      [ [ 0; 1 ] ]
  in
  let s = Format.asprintf "%a" H.pp h in
  checkb "mentions edge" true (contains s "X: A B")

(* Builder *)

let test_builder () =
  let module B = Hp_hypergraph.Hypergraph_builder in
  let b = B.create () in
  let cdc28 = B.add_vertex b "CDC28" in
  check "first id" 0 cdc28;
  check "idempotent vertex" cdc28 (B.add_vertex b "CDC28");
  let e0 = B.add_edge b ~name:"CDK" [ "CDC28"; "CLN1"; "CLN1" ] in
  check "edge id" 0 e0;
  let e1 = B.add_edge b [ "CLN2"; "CDC28" ] in
  B.add_to_edge b e1 "CKS1";
  check "vertices registered" 4 (B.n_vertices b);
  check "edges registered" 2 (B.n_edges b);
  let h = B.build b in
  check "built vertices" 4 (H.n_vertices h);
  check "duplicate member collapsed" 2 (H.edge_size h e0);
  check "incremental member added" 3 (H.edge_size h e1);
  Alcotest.(check string) "edge name" "CDK" (H.edge_name h 0);
  Alcotest.(check string) "default edge name" "e1" (H.edge_name h 1);
  Alcotest.(check (option int)) "lookup by name" (Some cdc28) (H.vertex_of_name h "CDC28");
  (* Builder stays usable after build. *)
  ignore (B.add_edge b [ "FAR1" ]);
  check "later build sees additions" 3 (H.n_edges (B.build b));
  Alcotest.check_raises "unknown edge"
    (Invalid_argument "Hypergraph_builder.add_to_edge: unknown hyperedge")
    (fun () -> B.add_to_edge b 99 "X")

(* Random hypergraph generators *)

let test_gen_uniform () =
  let rng = Hp_util.Prng.create 3 in
  let h = Hp_hypergraph.Hypergraph_gen.uniform rng ~nv:20 ~ne:15 ~edge_size:4 in
  check "vertices" 20 (H.n_vertices h);
  check "edges" 15 (H.n_edges h);
  checkb "exact sizes" true (Array.for_all (fun s -> s = 4) (H.edge_sizes h));
  Alcotest.check_raises "edge larger than vertex set"
    (Invalid_argument "Hypergraph_gen.uniform: edge_size > nv") (fun () ->
      ignore (Hp_hypergraph.Hypergraph_gen.uniform rng ~nv:3 ~ne:1 ~edge_size:5))

let test_gen_configuration () =
  let rng = Hp_util.Prng.create 3 in
  let vertex_degrees = Array.make 30 2 in
  let edge_sizes = Array.make 12 5 in
  let h =
    Hp_hypergraph.Hypergraph_gen.bipartite_configuration rng ~vertex_degrees
      ~edge_sizes
  in
  check "vertices" 30 (H.n_vertices h);
  check "edges" 12 (H.n_edges h);
  (* Erased model: realized degrees never exceed requests. *)
  checkb "vertex degrees bounded" true
    (Array.for_all (fun d -> d <= 2) (H.vertex_degrees h));
  checkb "edge sizes bounded" true (Array.for_all (fun s -> s <= 5) (H.edge_sizes h))

let test_gen_powerlaw_membership () =
  let rng = Hp_util.Prng.create 3 in
  let h =
    Hp_hypergraph.Hypergraph_gen.powerlaw_membership rng ~nv:400 ~ne:60 ~gamma:2.5
      ~dmax:12
  in
  check "vertices" 400 (H.n_vertices h);
  check "edges" 60 (H.n_edges h);
  let hist = Hp_util.Int_histogram.of_array (H.vertex_degrees h) in
  checkb "degree-1 dominates" true
    (Hp_util.Int_histogram.count hist 1 > Hp_util.Int_histogram.count hist 2)

(* Dual hypergraph *)

let test_dual_known () =
  let h = sample () in
  let d = Hp_hypergraph.Hypergraph_dual.dual h in
  check "dual vertices are edges" (H.n_edges h) (H.n_vertices d);
  check "dual edges are vertices" (H.n_vertices h) (H.n_edges d);
  (* Protein 2 belongs to e0, e1, e3: its dual hyperedge lists them. *)
  Alcotest.(check (array int)) "dual edge of vertex 2" [| 0; 1; 3 |]
    (H.edge_members d 2);
  check "incidence preserved" (H.total_incidence h) (H.total_incidence d)

let test_dual_names_swap () =
  let h =
    H.create ~vertex_names:[| "A"; "B" |] ~edge_names:[| "X" |] ~n_vertices:2
      [ [ 0; 1 ] ]
  in
  let d = Hp_hypergraph.Hypergraph_dual.dual h in
  Alcotest.(check string) "complex becomes vertex" "X" (H.vertex_name d 0);
  Alcotest.(check string) "protein becomes edge" "B" (H.edge_name d 1)

let prop_dual_involution =
  QCheck.Test.make ~name:"dual: dual of dual is the original" ~count:200
    (Th.arbitrary_hypergraph ())
    (fun h ->
      H.equal_structure h
        Hp_hypergraph.Hypergraph_dual.(dual (dual h)))

let prop_dual_intersection_graph =
  (* The complex intersection graph of H is the clique expansion of
     dual(H): complexes are adjacent iff they share a protein iff they
     co-occur in a dual hyperedge. *)
  QCheck.Test.make ~name:"dual: intersection graph = clique expansion of dual"
    ~count:200 (Th.arbitrary_hypergraph ())
    (fun h ->
      let lhs = Hp_hypergraph.Hypergraph_convert.intersection_graph h in
      let rhs =
        Hp_hypergraph.Hypergraph_convert.clique_expansion
          (Hp_hypergraph.Hypergraph_dual.dual h)
      in
      Hp_graph.Graph.edges lhs = Hp_graph.Graph.edges rhs)

let test_complex_core () =
  (* Three complexes pairwise sharing proteins: every complex overlaps
     the other two, so the dual 2-core retains them. *)
  let h = H.create ~n_vertices:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ] in
  let r = Hp_hypergraph.Hypergraph_dual.complex_core h 2 in
  check "complex core size" 3 (H.n_vertices r.core)

(* Text I/O *)

let test_io_roundtrip_known () =
  let h =
    H.create
      ~vertex_names:[| "ADH1"; "CDC28"; "LONE" |]
      ~edge_names:[| "CPX1"; "CPX2" |]
      ~n_vertices:3
      [ [ 0; 1 ]; [ 1 ] ]
  in
  let s = HIO.to_string h in
  let h' = HIO.of_string s in
  checkb "structure preserved" true (H.equal_structure h h');
  Alcotest.(check string) "names preserved" "ADH1" (H.vertex_name h' 0);
  (* The isolated vertex survives through a [vertex] line. *)
  check "vertices preserved" 3 (H.n_vertices h');
  Alcotest.(check (option int)) "isolated vertex named" (Some 2)
    (H.vertex_of_name h' "LONE")

let test_io_parse_errors () =
  (match HIO.of_string "not a valid line" with
  | _ -> Alcotest.fail "expected parse failure"
  | exception Failure msg -> checkb "line number in error" true (contains msg "line 1"));
  (* Comments and blanks are fine. *)
  let h = HIO.of_string "# comment\n\ncpx: a b\n" in
  check "parsed edges" 1 (H.n_edges h);
  check "parsed vertices" 2 (H.n_vertices h)

let prop_io_never_crashes =
  (* Fuzz: arbitrary text must either parse or raise [Failure] with a
     message — never a stray exception. *)
  QCheck.Test.make ~name:"io: of_string total on arbitrary text" ~count:500
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 80) QCheck.Gen.printable)
    (fun text ->
      match HIO.of_string text with
      | _ -> true
      | exception Failure _ -> true)

let prop_io_roundtrip =
  (* The format identifies vertices by name, so ids permute to
     first-appearance order on parse; check counts, per-edge sizes in
     order, and idempotence of the round trip. *)
  QCheck.Test.make ~name:"io: to_string/of_string preserves structure" ~count:200
    (Th.arbitrary_hypergraph ())
    (fun h ->
      let h' = HIO.of_string (HIO.to_string h) in
      let h'' = HIO.of_string (HIO.to_string h') in
      H.n_vertices h' = H.n_vertices h
      && H.n_edges h' = H.n_edges h
      && H.edge_sizes h' = H.edge_sizes h
      && H.equal_structure h' h'')

let prop_incidence_consistent =
  QCheck.Test.make ~name:"incidence: vertex_edges inverts edge_members" ~count:200
    (Th.arbitrary_hypergraph ())
    (fun h ->
      let ok = ref true in
      for e = 0 to H.n_edges h - 1 do
        Array.iter
          (fun v ->
            if not (Array.exists (fun f -> f = e) (H.vertex_edges h v)) then ok := false)
          (H.edge_members h e)
      done;
      for v = 0 to H.n_vertices h - 1 do
        Array.iter
          (fun e -> if not (H.mem h ~vertex:v ~edge:e) then ok := false)
          (H.vertex_edges h v)
      done;
      (* Both degree sums equal |E|. *)
      let sv = Array.fold_left ( + ) 0 (H.vertex_degrees h) in
      let se = Array.fold_left ( + ) 0 (H.edge_sizes h) in
      !ok && sv = se && sv = H.total_incidence h)

let prop_degree2_bounds =
  QCheck.Test.make ~name:"degree2: bounded by reachable sets" ~count:200
    (Th.arbitrary_hypergraph ())
    (fun h ->
      let ok = ref true in
      for e = 0 to H.n_edges h - 1 do
        if H.edge_degree2 h e > H.n_edges h - 1 then ok := false
      done;
      for v = 0 to H.n_vertices h - 1 do
        if H.vertex_degree2 h v > H.n_vertices h - 1 then ok := false
      done;
      !ok)

let () =
  Alcotest.run "hp_hypergraph"
    [
      ( "structure",
        [
          Alcotest.test_case "sizes" `Quick test_sizes;
          Alcotest.test_case "incidence" `Quick test_incidence;
          Alcotest.test_case "member dedup and range" `Quick test_member_dedup_and_range;
          Alcotest.test_case "degree2" `Quick test_degree2;
          Th.prop prop_incidence_consistent;
          Th.prop prop_degree2_bounds;
        ] );
      ( "names",
        [
          Alcotest.test_case "lookup" `Quick test_names;
          Alcotest.test_case "length mismatch" `Quick test_name_length_mismatch;
        ] );
      ( "derived",
        [
          Alcotest.test_case "sub" `Quick test_sub;
          Alcotest.test_case "is_reduced" `Quick test_is_reduced;
          Alcotest.test_case "equal_structure" `Quick test_equal_structure;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
      ("builder", [ Alcotest.test_case "incremental construction" `Quick test_builder ]);
      ( "generators",
        [
          Alcotest.test_case "uniform" `Quick test_gen_uniform;
          Alcotest.test_case "bipartite configuration" `Quick test_gen_configuration;
          Alcotest.test_case "powerlaw membership" `Quick test_gen_powerlaw_membership;
        ] );
      ( "dual",
        [
          Alcotest.test_case "structure" `Quick test_dual_known;
          Alcotest.test_case "names swap" `Quick test_dual_names_swap;
          Alcotest.test_case "complex core" `Quick test_complex_core;
          Th.prop prop_dual_involution;
          Th.prop prop_dual_intersection_graph;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip with names" `Quick test_io_roundtrip_known;
          Alcotest.test_case "parse errors" `Quick test_io_parse_errors;
          Th.prop prop_io_never_crashes;
          Th.prop prop_io_roundtrip;
        ] );
    ]
