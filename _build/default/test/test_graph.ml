(* Tests for the graph substrate: construction, traversal, network
   statistics, generators. *)

module G = Hp_graph.Graph
module GA = Hp_graph.Graph_algo
module GG = Hp_graph.Graph_gen
module U = Hp_util

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* A 4-cycle plus an isolated vertex. *)
let cycle4 () = G.of_edges ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 0) ]

let test_construction () =
  let g = cycle4 () in
  check "vertices" 5 (G.n_vertices g);
  check "edges" 4 (G.n_edges g);
  check "degree" 2 (G.degree g 0);
  check "isolated degree" 0 (G.degree g 4);
  Alcotest.(check (array int)) "neighbors sorted" [| 1; 3 |] (G.neighbors g 0);
  checkb "mem_edge" true (G.mem_edge g 2 3);
  checkb "mem_edge symmetric" true (G.mem_edge g 3 2);
  checkb "no edge" false (G.mem_edge g 0 2);
  check "max degree" 2 (G.max_degree g)

let test_dedup_and_loops () =
  let g = G.of_edges ~n:3 [ (0, 1); (1, 0); (0, 1); (2, 2) ] in
  check "parallel edges collapse" 1 (G.n_edges g);
  check "self loop dropped" 0 (G.degree g 2)

let test_out_of_range () =
  Alcotest.check_raises "endpoint out of range"
    (Invalid_argument "Graph.of_edge_array: endpoint out of range") (fun () ->
      ignore (G.of_edges ~n:2 [ (0, 5) ]))

let test_iter_edges () =
  let g = cycle4 () in
  let seen = ref [] in
  G.iter_edges g (fun u v -> seen := (u, v) :: !seen);
  check "each edge once" 4 (List.length !seen);
  checkb "u < v" true (List.for_all (fun (u, v) -> u < v) !seen)

let test_induced () =
  let g = cycle4 () in
  let sub, ids = G.induced g [| 0; 1; 2 |] in
  check "induced vertices" 3 (G.n_vertices sub);
  check "induced edges" 2 (G.n_edges sub);
  Alcotest.(check (array int)) "id map" [| 0; 1; 2 |] ids

let test_bfs () =
  let g = cycle4 () in
  let d = GA.bfs_distances g 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 1; -1 |] d;
  Alcotest.(check (option int)) "distance" (Some 2) (GA.distance g 0 2);
  Alcotest.(check (option int)) "unreachable" None (GA.distance g 0 4)

let test_components () =
  let g = G.of_edges ~n:6 [ (0, 1); (2, 3); (3, 4) ] in
  let _, count = GA.components g in
  check "component count" 3 count;
  Alcotest.(check (array int)) "sizes sorted" [| 3; 2; 1 |] (GA.component_sizes g);
  Alcotest.(check (array int)) "largest" [| 2; 3; 4 |] (GA.largest_component g)

let test_diameter_and_apl () =
  let path = G.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  check "path diameter" 3 (GA.diameter path);
  (* P4 distances: 1,2,3,1,2,1 over 6 pairs -> 10/6. *)
  Alcotest.(check (float 1e-9)) "path apl" (10.0 /. 6.0) (GA.average_path_length path);
  check "eccentricity of end" 3 (GA.eccentricity path 0);
  check "eccentricity of middle" 2 (GA.eccentricity path 1)

let test_clustering () =
  let triangle_plus = G.of_edges ~n:4 [ (0, 1); (1, 2); (0, 2); (2, 3) ] in
  Alcotest.(check (float 1e-9)) "triangle vertex" 1.0
    (GA.clustering_coefficient triangle_plus 0);
  Alcotest.(check (float 1e-9)) "hub vertex" (1.0 /. 3.0)
    (GA.clustering_coefficient triangle_plus 2);
  Alcotest.(check (float 1e-9)) "degree-1 vertex" 0.0
    (GA.clustering_coefficient triangle_plus 3);
  let complete = G.of_edges ~n:4 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ] in
  Alcotest.(check (float 1e-9)) "K4 average" 1.0 (GA.average_clustering complete)

let test_sampled_paths () =
  let rng = U.Prng.create 1 in
  let path = G.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let avg, dmax = GA.sampled_path_stats rng path ~samples:50 in
  checkb "sampled max <= true diameter" true (dmax <= 3);
  checkb "sampled avg positive" true (avg > 0.0)

let prop_bfs_symmetric =
  QCheck.Test.make ~name:"bfs: distance is symmetric" ~count:100
    (Th.arbitrary_graph ())
    (fun g ->
      let n = G.n_vertices g in
      let ok = ref true in
      for u = 0 to n - 1 do
        let du = GA.bfs_distances g u in
        for v = 0 to n - 1 do
          if (GA.bfs_distances g v).(u) <> du.(v) then ok := false
        done
      done;
      !ok)

let prop_components_partition =
  QCheck.Test.make ~name:"components: labels partition and respect edges" ~count:200
    (Th.arbitrary_graph ())
    (fun g ->
      let labels, count = GA.components g in
      let ok = ref (Array.for_all (fun c -> c >= 0 && c < count) labels) in
      G.iter_edges g (fun u v -> if labels.(u) <> labels.(v) then ok := false);
      (* Reachable implies same label. *)
      for u = 0 to G.n_vertices g - 1 do
        let d = GA.bfs_distances g u in
        Array.iteri
          (fun v dv -> if dv >= 0 && labels.(v) <> labels.(u) then ok := false)
          d
      done;
      !ok)

(* Assortativity *)

let test_assortativity_star () =
  (* A star is perfectly disassortative: every edge joins the hub
     (degree n-1) to a leaf (degree 1). *)
  let g = G.of_edges ~n:5 [ (0, 1); (0, 2); (0, 3); (0, 4) ] in
  Alcotest.(check (float 1e-9)) "star r = -1" (-1.0) (GA.degree_assortativity g)

let test_assortativity_regular () =
  (* Constant degrees: undefined (zero variance). *)
  let g = G.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  checkb "regular graph gives nan" true (Float.is_nan (GA.degree_assortativity g))

let test_assortativity_assortative () =
  (* Two hubs joined to each other plus private leaves: the hub-hub
     edge pushes r up relative to the star. *)
  let g = G.of_edges ~n:6 [ (0, 1); (0, 2); (0, 3); (1, 4); (1, 5) ] in
  let r = GA.degree_assortativity g in
  checkb "within [-1,1]" true (r >= -1.0 && r <= 1.0)

let prop_assortativity_bounded =
  QCheck.Test.make ~name:"assortativity: in [-1,1] or nan" ~count:200
    (Th.arbitrary_graph ())
    (fun g ->
      let r = GA.degree_assortativity g in
      Float.is_nan r || (r >= -1.0 -. 1e-9 && r <= 1.0 +. 1e-9))

(* Generators *)

let test_erdos_renyi () =
  let rng = U.Prng.create 4 in
  let g = GG.erdos_renyi_gnm rng ~n:30 ~m:60 in
  check "vertices" 30 (G.n_vertices g);
  check "edges" 60 (G.n_edges g)

let test_barabasi_albert () =
  let rng = U.Prng.create 4 in
  let g = GG.barabasi_albert rng ~n:200 ~m:2 in
  check "vertices" 200 (G.n_vertices g);
  checkb "edge count in range" true (G.n_edges g >= 300 && G.n_edges g <= 500);
  let _, count = GA.components g in
  check "connected" 1 count

let test_configuration_model () =
  let rng = U.Prng.create 4 in
  let degseq = Array.make 40 3 in
  let g = GG.configuration_model rng degseq in
  check "vertices" 40 (G.n_vertices g);
  (* Erased model: realized degrees never exceed the request. *)
  checkb "degrees bounded" true
    (Array.for_all (fun v -> G.degree g v <= 3) (Array.init 40 Fun.id))

let test_random_regular_ish () =
  let rng = U.Prng.create 4 in
  let g = GG.random_regular_ish rng ~n:50 ~degree:6 in
  checkb "min degree met" true
    (Array.for_all (fun v -> G.degree g v >= 6) (Array.init 50 Fun.id))

let test_maslov_sneppen_preserves_degrees () =
  let rng = U.Prng.create 4 in
  let g = GG.barabasi_albert rng ~n:120 ~m:3 in
  let null = GG.maslov_sneppen rng g ~rounds:10 in
  Alcotest.(check (array int)) "degree sequence preserved" (G.degrees g)
    (G.degrees null);
  check "edge count preserved" (G.n_edges g) (G.n_edges null);
  checkb "wiring changed" false (G.edges g = G.edges null)

let prop_maslov_sneppen_degrees =
  QCheck.Test.make ~name:"maslov-sneppen: degrees preserved exactly" ~count:100
    (Th.arbitrary_graph ())
    (fun g ->
      let rng = U.Prng.create 7 in
      let null = GG.maslov_sneppen rng g ~rounds:5 in
      G.degrees null = G.degrees g)

let test_planted_core_powerlaw () =
  let rng = U.Prng.create 4 in
  let g =
    GG.planted_core_powerlaw rng ~n:500 ~core_size:20 ~core_degree:8 ~gamma:2.3 ~dmax:7
  in
  check "vertices" 500 (G.n_vertices g);
  (* The planted block keeps its internal min degree. *)
  let core, _ = G.induced g (Array.init 20 Fun.id) in
  checkb "planted block dense" true
    (Array.for_all (fun v -> G.degree core v >= 8) (Array.init 20 Fun.id));
  let _, count = GA.components g in
  check "connected" 1 count

let () =
  Alcotest.run "hp_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "dedup and loops" `Quick test_dedup_and_loops;
          Alcotest.test_case "range check" `Quick test_out_of_range;
          Alcotest.test_case "iter_edges" `Quick test_iter_edges;
          Alcotest.test_case "induced subgraph" `Quick test_induced;
        ] );
      ( "algo",
        [
          Alcotest.test_case "bfs" `Quick test_bfs;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "diameter and apl" `Quick test_diameter_and_apl;
          Alcotest.test_case "clustering" `Quick test_clustering;
          Alcotest.test_case "sampled paths" `Quick test_sampled_paths;
          Th.prop prop_bfs_symmetric;
          Th.prop prop_components_partition;
        ] );
      ( "assortativity",
        [
          Alcotest.test_case "star" `Quick test_assortativity_star;
          Alcotest.test_case "regular" `Quick test_assortativity_regular;
          Alcotest.test_case "mixed" `Quick test_assortativity_assortative;
          Th.prop prop_assortativity_bounded;
        ] );
      ( "generators",
        [
          Alcotest.test_case "erdos-renyi" `Quick test_erdos_renyi;
          Alcotest.test_case "barabasi-albert" `Quick test_barabasi_albert;
          Alcotest.test_case "configuration model" `Quick test_configuration_model;
          Alcotest.test_case "random regular-ish" `Quick test_random_regular_ish;
          Alcotest.test_case "planted core" `Quick test_planted_core_powerlaw;
          Alcotest.test_case "maslov-sneppen rewiring" `Quick
            test_maslov_sneppen_preserves_degrees;
          Th.prop prop_maslov_sneppen_degrees;
        ] );
    ]
