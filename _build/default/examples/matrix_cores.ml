(* Table 1 of the paper in miniature: hypergraph core statistics of
   sparse matrices viewed as hypergraphs (columns are vertices, rows
   are hyperedges).  Uses the two smallest synthetic Matrix Market
   stand-ins so the example runs in about a second; the full suite is
   in the benchmark harness.

   Run with:  dune exec examples/matrix_cores.exe *)

module H = Hp_hypergraph.Hypergraph
module HC = Hp_hypergraph.Hypergraph_core
module MM = Hp_data.Matrix_market

let () =
  let suite = MM.synthetic_suite () in
  let small = List.filteri (fun i _ -> i < 2) suite in
  let rows =
    List.map
      (fun (name, m) ->
        let h = MM.to_hypergraph m in
        let t0 = Sys.time () in
        let d = HC.decompose h in
        let dt = Sys.time () -. t0 in
        let core_v =
          Array.fold_left (fun a c -> if c >= d.max_core then a + 1 else a) 0 d.vertex_core
        in
        let core_e =
          Array.fold_left (fun a c -> if c >= d.max_core then a + 1 else a) 0 d.edge_core
        in
        [
          name;
          string_of_int (H.n_vertices h);
          string_of_int (H.n_edges h);
          string_of_int (H.total_incidence h);
          string_of_int d.max_core;
          string_of_int core_v;
          string_of_int core_e;
          Hp_util.Table.fmt_time dt;
        ])
      small
  in
  print_endline
    (Hp_util.Table.render
       ~header:[ "matrix"; "|V|"; "|F|"; "|E|"; "max core"; "core |V|"; "core |F|"; "time" ]
       rows)
