(* Quickstart: build a small protein complex hypergraph by hand, query
   it, compute its cores and a bait cover.

   Run with:  dune exec examples/quickstart.exe *)

module H = Hp_hypergraph.Hypergraph
module HP = Hp_hypergraph.Hypergraph_path
module HC = Hp_hypergraph.Hypergraph_core

let () =
  (* Eight proteins, five complexes.  Proteins are vertices, complexes
     are hyperedges of arbitrary size. *)
  let proteins = [| "CDC28"; "CLN1"; "CLN2"; "CKS1"; "SIC1"; "CLB5"; "CLB6"; "FAR1" |] in
  let complexes = [| "CDK-CLN1"; "CDK-CLN2"; "CDK-CLB"; "CDK-INHIB"; "CKS-MODULE" |] in
  let h =
    H.create ~vertex_names:proteins ~edge_names:complexes ~n_vertices:8
      [
        [ 0; 1; 3 ];       (* CDC28 CLN1 CKS1 *)
        [ 0; 2; 3 ];       (* CDC28 CLN2 CKS1 *)
        [ 0; 5; 6; 3 ];    (* CDC28 CLB5 CLB6 CKS1 *)
        [ 0; 4; 7 ];       (* CDC28 SIC1 FAR1 *)
        [ 3; 0 ];          (* CKS1 CDC28 *)
      ]
  in
  Printf.printf "hypergraph: %d proteins, %d complexes, |E| = %d\n"
    (H.n_vertices h) (H.n_edges h) (H.total_incidence h);

  (* Degrees: how many complexes each protein belongs to. *)
  Array.iteri
    (fun v name -> Printf.printf "  %-6s degree %d\n" name (H.vertex_degree h v))
    proteins;

  (* Distances count hyperedges along the path (paper Section 1.3). *)
  (match HP.distance h 1 4 with
  | Some d -> Printf.printf "distance CLN1 -> SIC1: %d complexes\n" d
  | None -> print_endline "CLN1 and SIC1 are not connected");

  (* The maximum core.  Note that CKS-MODULE = {CDC28, CKS1} is
     contained in the first complex, so reduction removes it. *)
  let k, r = HC.max_core h in
  Printf.printf "maximum core: %d-core with %d proteins, %d complexes\n" k
    (H.n_vertices r.core) (H.n_edges r.core);
  Array.iter
    (fun v -> Printf.printf "  core protein %s\n" (H.vertex_name h v))
    r.vertex_ids;

  (* A minimum-cardinality bait set. *)
  let cover = Hp_cover.Greedy.vertex_cover h in
  Printf.printf "greedy bait cover (%d proteins):" (Array.length cover);
  Array.iter (fun v -> Printf.printf " %s" (H.vertex_name h v)) cover;
  print_newline ()
