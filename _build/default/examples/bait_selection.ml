(* Section 4 of the paper: propose bait protein sets for the TAP
   experiment as vertex covers of the hypergraph, comparing
   - the minimum-cardinality greedy cover (few baits, promiscuous),
   - the degree^2-weighted cover (more baits, unambiguous),
   - the 2-multicover (redundant identification of each complex), and
   - the historical bait set of the experiment itself.

   Run with:  dune exec examples/bait_selection.exe *)

module H = Hp_hypergraph.Hypergraph
module C = Hp_cover.Cover

let () =
  let ds = Hp_data.Cellzome.paper () in
  let h = ds.hypergraph in
  let row name vertices covered =
    Printf.printf "  %-24s %4d baits  avg degree %5.2f  complexes covered %d\n" name
      (Array.length vertices)
      (C.average_degree h vertices)
      covered
  in
  let covered_by set =
    Array.length (C.coverage h set |> Array.to_list |> List.filter (fun c -> c > 0) |> Array.of_list)
  in
  Printf.printf "bait selection on %d proteins / %d complexes:\n" (H.n_vertices h)
    (H.n_edges h);

  let unweighted = Hp_cover.Greedy.vertex_cover h in
  assert (C.is_cover h unweighted);
  row "greedy (unweighted)" unweighted (covered_by unweighted);

  let w2 = Hp_cover.Weighting.degree_squared h in
  let weighted = Hp_cover.Greedy.vertex_cover ~weights:w2 h in
  assert (C.is_cover h weighted);
  row "greedy (degree^2)" weighted (covered_by weighted);

  let reqs = Hp_cover.Multicover.uniform_requirements h ~r:2 in
  let mc = Hp_cover.Multicover.solve ~weights:w2 ~requirements:reqs h in
  assert (C.is_multicover h ~requirements:reqs mc.cover);
  Printf.printf "  %-24s %4d baits  avg degree %5.2f  complexes covered twice %d\n"
    "greedy 2-multicover" (Array.length mc.cover)
    (C.average_degree h mc.cover)
    (Hp_cover.Multicover.covered_edges ~requirements:reqs);

  row "historical (Cellzome)" ds.historical_baits (covered_by ds.historical_baits);

  (* Expert preferences: penalize a protein the experimenters know to
     be a poor bait and the cover routes around it. *)
  let avoid = H.vertex_name h ds.adh1 in
  let prefs = Hp_cover.Weighting.of_preferences h [ (avoid, 1000.0) ] ~default:1.0 in
  let expert = Hp_cover.Greedy.vertex_cover ~weights:prefs h in
  Printf.printf "  with %s blacklisted: %d baits, uses %s: %b\n" avoid
    (Array.length expert) avoid
    (Array.exists (fun v -> v = ds.adh1) expert)
