(* The reliability argument of paper Section 4, simulated: the TAP
   experiment reproduces only ~70% of bait-complex identifications, so
   covering each complex twice (the multicover) buys confident,
   redundant identification.

   Run with:  dune exec examples/reliability.exe *)

module H = Hp_hypergraph.Hypergraph
module TAP = Hp_data.Tap_experiment

let () =
  let ds = Hp_data.Cellzome.paper () in
  let h = ds.hypergraph in
  let w2 = Hp_cover.Weighting.degree_squared h in
  let reqs = Hp_cover.Multicover.uniform_requirements h ~r:2 in
  let single = Hp_cover.Greedy.vertex_cover ~weights:w2 h in
  let double = (Hp_cover.Multicover.solve ~weights:w2 ~requirements:reqs h).cover in

  Printf.printf "TAP simulation on %d proteins / %d complexes, 200 trials each\n\n"
    (H.n_vertices h) (H.n_edges h);
  let describe name baits =
    Printf.printf "%s (%d baits):\n" name (Array.length baits);
    List.iter
      (fun p ->
        let rng = Hp_util.Prng.create 1970 in
        let r = TAP.assess rng h ~baits ~reproducibility:p ~trials:200 in
        Printf.printf
          "  reproducibility %.0f%%: identified %.1f%% per run, twice %.1f%%, \
           missed-in-all-trials %d\n"
          (100.0 *. p)
          (100.0 *. r.mean_identified_fraction)
          (100.0 *. r.mean_twice_identified_fraction)
          r.never_identified)
      [ 0.5; 0.7; 0.9 ];
    print_newline ()
  in
  describe "single cover (degree^2 weighted)" single;
  describe "2-multicover" double;

  (* A single run in detail. *)
  let rng = Hp_util.Prng.create 7 in
  let o = TAP.simulate rng h ~baits:double ~reproducibility:0.7 in
  let found = Array.fold_left (fun a b -> if b then a + 1 else a) 0 o.identified in
  Printf.printf
    "one concrete run of the 2-multicover: %d of %d complexes pulled down, \
     %d baits productive\n"
    found (H.n_edges h) o.successful_baits
