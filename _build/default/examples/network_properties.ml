(* Section 2 of the paper on the synthetic Cellzome dataset: component
   structure, degree distribution with the power-law fit of Figure 1,
   and the small-world statistics, including the comparison against a
   degree-preserving null model.

   Run with:  dune exec examples/network_properties.exe *)

module H = Hp_hypergraph.Hypergraph
module HP = Hp_hypergraph.Hypergraph_path
module U = Hp_util

let () =
  let ds = Hp_data.Cellzome.paper () in
  let h = ds.hypergraph in
  Printf.printf "Cellzome-like dataset: %d proteins, %d complexes\n\n"
    (H.n_vertices h) (H.n_edges h);

  let summary = HP.component_summary h in
  Printf.printf "connected components: %d\n" (Array.length summary);
  let nv0, ne0 = summary.(0) in
  Printf.printf "largest component: %d proteins, %d complexes\n\n" nv0 ne0;

  let hist = Hp_stats.Degree_dist.vertex_histogram h in
  Printf.printf "protein degree distribution (Figure 1):\n";
  Array.iter
    (fun (d, c) -> Printf.printf "  degree %2d: %4d proteins\n" d c)
    (Hp_stats.Degree_dist.frequency_series hist);
  let fit = Hp_stats.Powerlaw.fit_loglog hist in
  Printf.printf "least-squares fit P(d) = c d^-gamma: log10(c) = %.3f, gamma = %.3f, R^2 = %.3f\n"
    fit.log10_c fit.gamma fit.r2;
  let mle = Hp_stats.Powerlaw.fit_mle hist in
  Printf.printf "MLE exponent (extension): gamma = %.3f over %d observations\n\n"
    mle.gamma_mle mle.n_tail;

  let rng = U.Prng.create 7 in
  let report = Hp_stats.Smallworld.assess_hypergraph rng ~trials:3 h in
  Printf.printf "small-world assessment:\n";
  Printf.printf "  diameter: %d (degree-preserving null: %.1f)\n" report.diameter
    report.null_diameter_mean;
  Printf.printf "  average path length: %.3f (null: %.3f)\n" report.average_path
    report.null_average_path_mean;
  Printf.printf
    "  => path lengths stay near the randomized wiring: a small world.\n"
