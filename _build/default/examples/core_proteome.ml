(* Section 3 of the paper: compute the maximum core of the protein
   complex hypergraph (the core proteome), test it for enrichment in
   essential and homologous proteins, and compare against the graph
   k-cores of the DIP-style protein interaction networks.

   Run with:  dune exec examples/core_proteome.exe *)

module H = Hp_hypergraph.Hypergraph
module HC = Hp_hypergraph.Hypergraph_core
module GC = Hp_graph.Graph_core
module G = Hp_graph.Graph

let () =
  let ds = Hp_data.Cellzome.paper () in
  let h = ds.hypergraph in
  let k, r = HC.max_core h in
  Printf.printf "maximum core of the yeast hypergraph: %d-core, %d proteins, %d complexes\n"
    k (H.n_vertices r.core) (H.n_edges r.core);
  Printf.printf "core proteins:";
  Array.iteri
    (fun i v ->
      if i mod 8 = 0 then Printf.printf "\n  ";
      Printf.printf "%-8s" (H.vertex_name h v))
    r.vertex_ids;
  print_newline ();

  (* Enrichment of the core proteome (synthetic annotations). *)
  let rng = Hp_util.Prng.create 11 in
  let ann = Hp_data.Annotations.generate rng ds in
  let report = Hp_data.Annotations.core_report ann ~protein_ids:r.vertex_ids in
  Printf.printf "\nannotation of the %d core proteins:\n" report.core_size;
  Printf.printf "  unknown / uncharacterized: %d\n" report.unknown;
  Printf.printf "  essential among the %d known: %d\n" report.known_total
    report.known_essential;
  Printf.printf "  with reported homologs: %d\n" report.homologs;
  let e = report.essential_enrichment in
  Printf.printf
    "  essentiality enrichment: %.1f%% in core vs %.1f%% genome-wide (%.1fx, p = %.2e)\n"
    (100.0 *. e.sample_fraction) (100.0 *. e.population_fraction) e.fold e.p_value;

  (* Graph cores of the protein-protein interaction networks. *)
  print_newline ();
  let describe name (net : Hp_data.Dip.network) =
    let d = GC.decompose net.graph in
    let size =
      Array.fold_left (fun a c -> if c = d.max_core then a + 1 else a) 0 d.core_number
    in
    Printf.printf "%s PPI network: %d proteins, max core k = %d with %d proteins\n" name
      (G.n_vertices net.graph) d.max_core size
  in
  describe "yeast" (Hp_data.Dip.yeast ());
  describe "drosophila" (Hp_data.Dip.drosophila ())
