(* Paper Section 4's second motivation for computed bait sets: "when we
   wish to use one organism as a model to identify the protein
   complexes in a related organism".  We perturb the yeast hypergraph
   into a synthetic relative at several divergence levels and measure
   how yeast-chosen bait sets transfer.

   Run with:  dune exec examples/cross_organism.exe *)

module H = Hp_hypergraph.Hypergraph
module O = Hp_data.Ortholog

let () =
  let ds = Hp_data.Cellzome.paper () in
  let h = ds.hypergraph in
  let w2 = Hp_cover.Weighting.degree_squared h in
  let reqs = Hp_cover.Multicover.uniform_requirements h ~r:2 in
  let sets =
    [
      ("min-cardinality cover", Hp_cover.Greedy.vertex_cover h);
      ("degree^2 cover", Hp_cover.Greedy.vertex_cover ~weights:w2 h);
      ("2-multicover", (Hp_cover.Multicover.solve ~weights:w2 ~requirements:reqs h).cover);
    ]
  in
  List.iter
    (fun divergence ->
      let rng = Hp_util.Prng.create 1492 in
      let ortholog =
        O.perturb rng ~membership_loss:divergence ~membership_gain:(divergence /. 2.0)
          ~complex_loss:(divergence /. 2.0) h
      in
      Printf.printf
        "divergence %.0f%%: lost %d memberships, gained %d, dropped %d complexes\n"
        (100.0 *. divergence)
        ortholog.lost_memberships ortholog.gained_memberships
        ortholog.dropped_complexes;
      List.iter
        (fun (name, baits) ->
          let r = O.transfer_report ortholog ~baits in
          Printf.printf
            "  %-22s %3d baits -> %3d of %3d complexes covered (%.1f%%), %d twice\n"
            name r.baits r.covered r.coverable_complexes
            (100.0 *. r.coverage_fraction)
            r.covered_twice)
        sets;
      print_newline ())
    [ 0.05; 0.15; 0.30 ];
  print_endline
    "Redundant bait sets hold their coverage as the organisms diverge; the\n\
     minimum-cardinality cover is the most brittle — the case for computing\n\
     multicovers before scaling the experiment to a new proteome."
