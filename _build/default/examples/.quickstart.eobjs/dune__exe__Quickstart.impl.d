examples/quickstart.ml: Array Hp_cover Hp_hypergraph Printf
