examples/core_proteome.ml: Array Hp_data Hp_graph Hp_hypergraph Hp_util Printf
