examples/matrix_cores.mli:
