examples/cross_organism.ml: Hp_cover Hp_data Hp_hypergraph Hp_util List Printf
