examples/network_properties.ml: Array Hp_data Hp_hypergraph Hp_stats Hp_util Printf
