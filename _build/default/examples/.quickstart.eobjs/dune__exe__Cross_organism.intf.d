examples/cross_organism.mli:
