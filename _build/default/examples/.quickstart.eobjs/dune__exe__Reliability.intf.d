examples/reliability.mli:
