examples/core_proteome.mli:
