examples/reliability.ml: Array Hp_cover Hp_data Hp_hypergraph Hp_util List Printf
