examples/matrix_cores.ml: Array Hp_data Hp_hypergraph Hp_util List Sys
