examples/bait_selection.ml: Array Hp_cover Hp_data Hp_hypergraph List Printf
