examples/network_properties.mli:
