examples/bait_selection.mli:
