examples/quickstart.mli:
