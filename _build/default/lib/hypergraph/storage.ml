module H = Hypergraph
module G = Hp_graph.Graph

type report = {
  hypergraph_entries : int;
  clique_entries : int;
  clique_entries_raw : int;
  star_entries : int;
  intersection_entries : int;
}

let raw_clique_entries h =
  let total = ref 0 in
  for e = 0 to H.n_edges h - 1 do
    let s = H.edge_size h e in
    total := !total + (s * (s - 1))
  done;
  !total

let measure h =
  let clique = Hypergraph_convert.clique_expansion h in
  let star = Hypergraph_convert.star_expansion h ~centers:(Hypergraph_convert.default_centers h) in
  let inter = Hypergraph_convert.intersection_graph h in
  {
    hypergraph_entries = H.total_incidence h;
    clique_entries = 2 * G.n_edges clique;
    clique_entries_raw = raw_clique_entries h;
    star_entries = 2 * G.n_edges star;
    intersection_entries = 2 * G.n_edges inter;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>hypergraph: %d entries@,clique expansion: %d entries (%d before dedup)@,\
     star expansion: %d entries@,intersection graph: %d entries@]"
    r.hypergraph_entries r.clique_entries r.clique_entries_raw r.star_entries
    r.intersection_entries
