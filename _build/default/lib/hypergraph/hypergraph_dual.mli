(** The dual hypergraph: vertices and hyperedges swap roles.

    In the protein complex reading, the dual's vertices are the
    complexes and its hyperedges are the proteins, each containing the
    complexes that protein belongs to.  Two classical identities tie
    the paper's representations together (both property-tested):

    - the complex intersection graph of H (Section 1.1) is exactly the
      clique expansion of dual(H);
    - dual(dual(H)) = H.

    The k-core of the dual is a "complex core": complexes that each
    share proteins with many other retained complexes. *)

val dual : Hypergraph.t -> Hypergraph.t
(** Names carry over with roles swapped. *)

val complex_core :
  Hypergraph.t -> int -> Hypergraph_core.result
(** [complex_core h k] = k-core of [dual h]: in the result, vertices
    are complexes of [h] and hyperedges are proteins of [h]. *)
