(** Plain-text persistence for hypergraphs (`.hg` files).

    Format: one hyperedge per line, [edge_name: member member ...],
    names being whitespace-free tokens.  Lines starting with [#] and
    blank lines are ignored.  Vertices are identified by name; ids are
    assigned in order of first appearance.  An isolated vertex can be
    declared with a [vertex <name>] line. *)

val to_string : Hypergraph.t -> string

val write : string -> Hypergraph.t -> unit
(** [write path h] *)

val of_string : string -> Hypergraph.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val read : string -> Hypergraph.t
(** [read path] *)
