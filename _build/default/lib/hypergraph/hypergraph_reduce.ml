module U = Hp_util
module H = Hypergraph

let overlap_table h =
  (* overlap(f, g) for f < g, keyed by f * n_edges + g. *)
  let m = H.n_edges h in
  let table = Hashtbl.create (4 * m) in
  for v = 0 to H.n_vertices h - 1 do
    let adj = H.vertex_edges h v in
    let d = Array.length adj in
    for i = 0 to d - 1 do
      for j = i + 1 to d - 1 do
        let key = (adj.(i) * m) + adj.(j) in
        let c = Option.value (Hashtbl.find_opt table key) ~default:0 in
        Hashtbl.replace table key (c + 1)
      done
    done
  done;
  table

let overlaps h =
  let m = H.n_edges h in
  Hashtbl.fold
    (fun key c acc -> (key / m, key mod m, c) :: acc)
    (overlap_table h) []
  |> List.sort compare

let non_maximal_edges h =
  let m = H.n_edges h in
  let doomed = Array.make m false in
  (* An empty hyperedge is contained in any other hyperedge.  Among
     multiple empty hyperedges the smallest id survives, and only if no
     non-empty hyperedge exists at all. *)
  let first_empty = ref (-1) and has_nonempty = ref false in
  for e = 0 to m - 1 do
    if H.edge_size h e = 0 then begin
      if !first_empty < 0 then first_empty := e
    end
    else has_nonempty := true
  done;
  for e = 0 to m - 1 do
    if H.edge_size h e = 0 && (!has_nonempty || e <> !first_empty) then
      doomed.(e) <- true
  done;
  List.iter
    (fun (f, g, c) ->
      let df = H.edge_size h f and dg = H.edge_size h g in
      if c = df && c = dg then
        (* Identical member sets: keep the smaller id (f < g). *)
        doomed.(g) <- true
      else if c = df && df < dg then doomed.(f) <- true
      else if c = dg && dg < df then doomed.(g) <- true)
    (overlaps h);
  let buf = U.Dynarray.create ~dummy:0 () in
  Array.iteri (fun e b -> if b then U.Dynarray.push buf e) doomed;
  U.Dynarray.to_array buf

let reduce h =
  let bad = non_maximal_edges h in
  let keep =
    U.Sorted.diff (Array.init (H.n_edges h) Fun.id) bad
  in
  let vertices = Array.init (H.n_vertices h) Fun.id in
  let h', _, emap = H.sub h ~vertices ~edges:keep in
  (h', emap)
