module U = Hp_util

type t = {
  vertex_ids : (string, int) Hashtbl.t;
  vertex_names : string U.Dynarray.t;
  edge_names : string U.Dynarray.t;
  edge_members : int list U.Dynarray.t;   (* reverse-ordered member ids *)
}

let create () =
  {
    vertex_ids = Hashtbl.create 64;
    vertex_names = U.Dynarray.create ~dummy:"" ();
    edge_names = U.Dynarray.create ~dummy:"" ();
    edge_members = U.Dynarray.create ~dummy:[] ();
  }

let add_vertex t name =
  match Hashtbl.find_opt t.vertex_ids name with
  | Some id -> id
  | None ->
    let id = U.Dynarray.length t.vertex_names in
    Hashtbl.add t.vertex_ids name id;
    U.Dynarray.push t.vertex_names name;
    id

let n_vertices t = U.Dynarray.length t.vertex_names

let n_edges t = U.Dynarray.length t.edge_names

let add_edge t ?name members =
  let id = n_edges t in
  let name = match name with Some n -> n | None -> "e" ^ string_of_int id in
  U.Dynarray.push t.edge_names name;
  U.Dynarray.push t.edge_members (List.map (add_vertex t) members);
  id

let add_to_edge t edge name =
  if edge < 0 || edge >= n_edges t then
    invalid_arg "Hypergraph_builder.add_to_edge: unknown hyperedge";
  let v = add_vertex t name in
  U.Dynarray.set t.edge_members edge (v :: U.Dynarray.get t.edge_members edge)

let build t =
  Hypergraph.of_arrays
    ~vertex_names:(U.Dynarray.to_array t.vertex_names)
    ~edge_names:(U.Dynarray.to_array t.edge_names)
    ~n_vertices:(n_vertices t)
    (Array.map Array.of_list (U.Dynarray.to_array t.edge_members))
