(** Incremental construction of named hypergraphs.

    The immutable [Hypergraph.t] wants all members up front; this
    builder accumulates proteins and complexes by name (ids assigned on
    first sight), which is the natural shape when ingesting records —
    e.g. streaming TAP purifications or rows of a curated table. *)

type t

val create : unit -> t

val add_vertex : t -> string -> int
(** Id of the named vertex, registering it if new. *)

val add_edge : t -> ?name:string -> string list -> int
(** Register a hyperedge over the named member vertices (created as
    needed; duplicates within the list collapse).  [name] defaults to
    ["e<i>"].  Returns the hyperedge id. *)

val add_to_edge : t -> int -> string -> unit
(** Add one member to an existing hyperedge.  Raises
    [Invalid_argument] on an unknown hyperedge id. *)

val n_vertices : t -> int

val n_edges : t -> int

val build : t -> Hypergraph.t
(** Freeze into an immutable hypergraph.  The builder stays usable;
    later [build]s see later additions. *)
