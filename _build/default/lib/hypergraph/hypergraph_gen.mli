(** Random hypergraph generators: null models for the statistical
    analyses and fuzz inputs for the property-based tests. *)

val uniform : Hp_util.Prng.t -> nv:int -> ne:int -> edge_size:int -> Hypergraph.t
(** Each hyperedge is an independent uniform [edge_size]-subset of the
    vertices.  Requires [edge_size <= nv]. *)

val bipartite_configuration :
  Hp_util.Prng.t ->
  vertex_degrees:int array ->
  edge_sizes:int array ->
  Hypergraph.t
(** Erased bipartite configuration model: vertex stubs (one per unit of
    requested degree) are matched with hyperedge slots uniformly at
    random; duplicate memberships collapse, so realized degrees can be
    slightly below the request.  Stub totals need not agree — the
    shorter side truncates the pairing. *)

val powerlaw_membership :
  Hp_util.Prng.t ->
  nv:int ->
  ne:int ->
  gamma:float ->
  dmax:int ->
  Hypergraph.t
(** Vertex degrees drawn from a truncated power law with exponent
    [gamma] on [1, dmax]; memberships assigned by the configuration
    pairing with hyperedges picked uniformly. *)

val degree_preserving_shuffle :
  Hp_util.Prng.t -> Hypergraph.t -> rounds:int -> Hypergraph.t
(** Null model for the small-world comparison: rewires membership
    pairs (v1 in f1, v2 in f2) -> (v1 in f2, v2 in f1) when valid,
    preserving every vertex degree and hyperedge size while
    randomizing the wiring.  [rounds] is a multiplier on |E| swap
    attempts. *)
