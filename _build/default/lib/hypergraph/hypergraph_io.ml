module H = Hypergraph

let to_string h =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# hyperprot hypergraph\n";
  let in_some_edge = Array.make (H.n_vertices h) false in
  for e = 0 to H.n_edges h - 1 do
    Buffer.add_string buf (H.edge_name h e);
    Buffer.add_char buf ':';
    Array.iter
      (fun v ->
        in_some_edge.(v) <- true;
        Buffer.add_char buf ' ';
        Buffer.add_string buf (H.vertex_name h v))
      (H.edge_members h e);
    Buffer.add_char buf '\n'
  done;
  Array.iteri
    (fun v covered ->
      if not covered then begin
        Buffer.add_string buf "vertex ";
        Buffer.add_string buf (H.vertex_name h v);
        Buffer.add_char buf '\n'
      end)
    in_some_edge;
  Buffer.contents buf

let write path h =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string h))

let of_string text =
  let vertex_ids = Hashtbl.create 256 in
  let vertex_names = Hp_util.Dynarray.create ~dummy:"" () in
  let vertex_id name =
    match Hashtbl.find_opt vertex_ids name with
    | Some id -> id
    | None ->
      let id = Hp_util.Dynarray.length vertex_names in
      Hashtbl.add vertex_ids name id;
      Hp_util.Dynarray.push vertex_names name;
      id
  in
  let edges = Hp_util.Dynarray.create ~dummy:("", [||]) () in
  let tokens line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
  String.split_on_char '\n' text
  |> List.iteri (fun lineno line ->
         let line = String.trim line in
         if line <> "" && line.[0] <> '#' then begin
           match tokens line with
           | [ "vertex"; name ] -> ignore (vertex_id name)
           | first :: rest when String.length first > 1 && first.[String.length first - 1] = ':' ->
             let name = String.sub first 0 (String.length first - 1) in
             let members = Array.of_list (List.map vertex_id rest) in
             Hp_util.Dynarray.push edges (name, members)
           | _ ->
             failwith
               (Printf.sprintf "Hypergraph_io: malformed line %d: %S" (lineno + 1) line)
         end);
  let edge_arr = Hp_util.Dynarray.to_array edges in
  H.of_arrays
    ~vertex_names:(Hp_util.Dynarray.to_array vertex_names)
    ~edge_names:(Array.map fst edge_arr)
    ~n_vertices:(Hp_util.Dynarray.length vertex_names)
    (Array.map snd edge_arr)

let read path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
