(** Storage accounting for the representation argument of Sections
    1.2-1.3: a complex of n proteins costs O(n) in the hypergraph but
    O(n^2) edge entries in the clique-expansion interaction graph, and
    a protein in m complexes induces O(m^2) edges in the complex
    intersection graph.

    Costs are reported as incidence-entry counts (one integer per
    membership, two per graph edge), a machine-independent proxy for
    words of memory. *)

type report = {
  hypergraph_entries : int;   (** |E|: one entry per membership. *)
  clique_entries : int;       (** 2 x edges of the clique expansion (deduplicated). *)
  clique_entries_raw : int;   (** 2 x sum over complexes of (s choose 2), no dedup. *)
  star_entries : int;         (** 2 x edges of the star expansion. *)
  intersection_entries : int; (** 2 x edges of the intersection graph. *)
}

val measure : Hypergraph.t -> report
(** Materializes the deduplicated representations; suitable up to
    moderate sizes. *)

val raw_clique_entries : Hypergraph.t -> int
(** Analytic count without materializing, for large inputs. *)

val pp_report : Format.formatter -> report -> unit
