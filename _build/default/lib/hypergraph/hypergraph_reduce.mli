(** Reduced hypergraphs and hyperedge overlaps (paper Section 3).

    A reduced hypergraph is one in which every hyperedge is maximal:
    no hyperedge is contained in another.  The k-core is defined over
    reduced subhypergraphs, so inputs are reduced before peeling.

    Containment is detected the way the paper proposes: by counting
    pairwise overlaps rather than comparing vertex lists — f is
    contained in g exactly when overlap(f, g) = degree(f). *)

val overlaps : Hypergraph.t -> (int * int * int) list
(** All pairs of distinct hyperedges with a non-zero overlap, as
    [(f, g, count)] with [f < g], in lexicographic order.  Computed by
    scanning vertex adjacency lists in time proportional to the sum of
    squared vertex degrees. *)

val non_maximal_edges : Hypergraph.t -> int array
(** Hyperedges contained in (or equal to) another hyperedge, sorted.
    Among hyperedges with identical member sets all but the one with
    the smallest id are reported (the paper leaves the tie-break
    unspecified; this choice is documented in DESIGN.md).  Empty
    hyperedges are reported whenever any other hyperedge exists. *)

val reduce : Hypergraph.t -> Hypergraph.t * int array
(** Remove non-maximal hyperedges.  Returns the reduced hypergraph
    (all vertices kept) and the new-to-old hyperedge id map. *)
