module H = Hypergraph
module G = Hp_graph.Graph

let clique_expansion h =
  let edges = ref [] in
  for e = 0 to H.n_edges h - 1 do
    let ms = H.edge_members h e in
    let s = Array.length ms in
    for i = 0 to s - 1 do
      for j = i + 1 to s - 1 do
        edges := (ms.(i), ms.(j)) :: !edges
      done
    done
  done;
  G.of_edges ~n:(H.n_vertices h) !edges

let default_centers h =
  Array.init (H.n_edges h) (fun e ->
      let ms = H.edge_members h e in
      if Array.length ms = 0 then -1 else ms.(0))

let star_expansion h ~centers =
  if Array.length centers <> H.n_edges h then
    invalid_arg "Hypergraph_convert.star_expansion: centers length mismatch";
  let edges = ref [] in
  Array.iteri
    (fun e c ->
      let ms = H.edge_members h e in
      if Array.length ms > 0 then begin
        if not (H.mem h ~vertex:c ~edge:e) then
          invalid_arg "Hypergraph_convert.star_expansion: center not a member";
        Array.iter (fun v -> if v <> c then edges := (c, v) :: !edges) ms
      end)
    centers;
  G.of_edges ~n:(H.n_vertices h) !edges

let intersection_weights h =
  Hypergraph_reduce.overlaps h

let intersection_graph_min_overlap h ~s =
  if s < 1 then invalid_arg "Hypergraph_convert.intersection_graph_min_overlap: s < 1";
  let edges =
    List.filter_map
      (fun (f, g, w) -> if w >= s then Some (f, g) else None)
      (intersection_weights h)
  in
  G.of_edges ~n:(H.n_edges h) edges

let intersection_graph h = intersection_graph_min_overlap h ~s:1

let bipartite_graph h =
  let nv = H.n_vertices h in
  let edges = ref [] in
  for e = 0 to H.n_edges h - 1 do
    Array.iter (fun v -> edges := (v, nv + e) :: !edges) (H.edge_members h e)
  done;
  G.of_edges ~n:(nv + H.n_edges h) !edges
