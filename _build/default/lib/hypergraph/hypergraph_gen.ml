module U = Hp_util
module H = Hypergraph

let uniform rng ~nv ~ne ~edge_size =
  if edge_size > nv then invalid_arg "Hypergraph_gen.uniform: edge_size > nv";
  let members =
    Array.init ne (fun _ -> U.Prng.sample_without_replacement rng edge_size nv)
  in
  H.of_arrays ~n_vertices:nv members

let bipartite_configuration rng ~vertex_degrees ~edge_sizes =
  let nv = Array.length vertex_degrees and ne = Array.length edge_sizes in
  let vstubs =
    Array.concat
      (Array.to_list (Array.mapi (fun v d -> Array.make (max d 0) v) vertex_degrees))
  in
  let estubs =
    Array.concat
      (Array.to_list (Array.mapi (fun e s -> Array.make (max s 0) e) edge_sizes))
  in
  U.Prng.shuffle rng vstubs;
  U.Prng.shuffle rng estubs;
  let n = min (Array.length vstubs) (Array.length estubs) in
  let members = Array.make ne [] in
  for i = 0 to n - 1 do
    let v = vstubs.(i) and e = estubs.(i) in
    members.(e) <- v :: members.(e)
  done;
  H.of_arrays ~n_vertices:nv (Array.map Array.of_list members)

let powerlaw_membership rng ~nv ~ne ~gamma ~dmax =
  let vertex_degrees =
    Array.init nv (fun _ -> U.Prng.powerlaw_int rng ~gamma ~dmin:1 ~dmax)
  in
  let total = Array.fold_left ( + ) 0 vertex_degrees in
  (* Spread the same stub total over the hyperedges, uniformly. *)
  let edge_sizes = Array.make ne 0 in
  for _ = 1 to total do
    let e = U.Prng.int rng ne in
    edge_sizes.(e) <- edge_sizes.(e) + 1
  done;
  bipartite_configuration rng ~vertex_degrees ~edge_sizes

let degree_preserving_shuffle rng h ~rounds =
  let ne = H.n_edges h in
  (* Mutable membership sets. *)
  let members =
    Array.init ne (fun e ->
        let tbl = Hashtbl.create (1 + H.edge_size h e) in
        Array.iter (fun v -> Hashtbl.replace tbl v ()) (H.edge_members h e);
        tbl)
  in
  (* Flat incidence list for uniform pair sampling. *)
  let pairs = U.Dynarray.create ~dummy:(0, 0) () in
  for e = 0 to ne - 1 do
    Array.iter (fun v -> U.Dynarray.push pairs (v, e)) (H.edge_members h e)
  done;
  let np = U.Dynarray.length pairs in
  if np >= 2 then begin
    let attempts = rounds * np in
    for _ = 1 to attempts do
      let i = U.Prng.int rng np and j = U.Prng.int rng np in
      let v1, e1 = U.Dynarray.get pairs i and v2, e2 = U.Dynarray.get pairs j in
      (* Swap memberships when it keeps both hyperedges simple sets. *)
      if i <> j && e1 <> e2 && v1 <> v2
         && (not (Hashtbl.mem members.(e1) v2))
         && not (Hashtbl.mem members.(e2) v1)
      then begin
        Hashtbl.remove members.(e1) v1;
        Hashtbl.remove members.(e2) v2;
        Hashtbl.replace members.(e1) v2 ();
        Hashtbl.replace members.(e2) v1 ();
        U.Dynarray.set pairs i (v2, e1);
        U.Dynarray.set pairs j (v1, e2)
      end
    done
  end;
  let arrays =
    Array.map (fun tbl -> Array.of_list (Hashtbl.fold (fun v () acc -> v :: acc) tbl [])) members
  in
  H.of_arrays ~n_vertices:(H.n_vertices h) arrays
