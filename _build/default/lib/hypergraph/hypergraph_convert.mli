(** The graph representations the paper compares the hypergraph model
    against (Sections 1.1-1.2): the two protein-protein interaction
    projections (clique and star expansion) and the complex
    intersection graph.  Both lose information the hypergraph keeps;
    the conversions exist to reproduce the paper's storage and
    clustering arguments and for interoperability with graph
    algorithms. *)

val clique_expansion : Hypergraph.t -> Hp_graph.Graph.t
(** Protein interaction graph under the "every complex is a clique"
    assumption: vertices are the hypergraph vertices, and two vertices
    are adjacent when they co-occur in some hyperedge. *)

val star_expansion : Hypergraph.t -> centers:int array -> Hp_graph.Graph.t
(** Protein interaction graph under the "bait binds everything it
    pulls down" assumption: [centers.(e)] is the bait vertex of
    hyperedge [e] and is connected to every other member.  Requires
    [centers.(e)] to be a member of edge [e] (or the edge to be
    empty, in which case it contributes nothing). *)

val default_centers : Hypergraph.t -> int array
(** A center per hyperedge: its minimum-id member ([-1] for an empty
    hyperedge, which [star_expansion] then skips). *)

val intersection_graph : Hypergraph.t -> Hp_graph.Graph.t
(** Complex intersection graph: vertices are the hyperedges, adjacent
    when they share at least one vertex. *)

val intersection_weights : Hypergraph.t -> (int * int * int) list
(** Edges of the intersection graph with their shared-vertex counts,
    [(f, g, weight)] with [f < g] — the weighting the paper suggests
    for the complex intersection graph. *)

val intersection_graph_min_overlap : Hypergraph.t -> s:int -> Hp_graph.Graph.t
(** Thresholded intersection graph: complexes adjacent only when they
    share at least [s] vertices.  [s = 1] is [intersection_graph];
    higher [s] keeps only strongly overlapping complexes (shared
    sub-assemblies rather than incidental common members). *)

val bipartite_graph : Hypergraph.t -> Hp_graph.Graph.t
(** B(H): vertex [v] of the hypergraph is node [v]; hyperedge [e] is
    node [n_vertices + e]; nodes joined by membership.  Distances in
    B(H) are twice the hypergraph path length. *)
