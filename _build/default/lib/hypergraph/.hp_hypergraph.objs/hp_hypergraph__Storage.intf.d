lib/hypergraph/storage.mli: Format Hypergraph
