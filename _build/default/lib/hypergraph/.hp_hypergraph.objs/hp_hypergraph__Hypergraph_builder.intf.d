lib/hypergraph/hypergraph_builder.mli: Hypergraph
