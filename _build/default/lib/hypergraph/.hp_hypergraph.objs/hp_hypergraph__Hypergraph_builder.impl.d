lib/hypergraph/hypergraph_builder.ml: Array Hashtbl Hp_util Hypergraph List
