lib/hypergraph/hypergraph_path.mli: Hp_util Hypergraph
