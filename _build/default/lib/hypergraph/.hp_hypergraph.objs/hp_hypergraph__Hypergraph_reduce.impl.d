lib/hypergraph/hypergraph_reduce.ml: Array Fun Hashtbl Hp_util Hypergraph List Option
