lib/hypergraph/hypergraph_core.ml: Array Fun Hashtbl Hp_util Hypergraph Hypergraph_reduce List Option Queue
