lib/hypergraph/hypergraph_io.ml: Array Buffer Fun Hashtbl Hp_util Hypergraph List Printf String
