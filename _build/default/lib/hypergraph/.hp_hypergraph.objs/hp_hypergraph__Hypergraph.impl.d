lib/hypergraph/hypergraph.ml: Array Format Hashtbl Hp_util List Option
