lib/hypergraph/hypergraph_reduce.mli: Hypergraph
