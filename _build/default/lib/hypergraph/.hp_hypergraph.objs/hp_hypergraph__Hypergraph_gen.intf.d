lib/hypergraph/hypergraph_gen.mli: Hp_util Hypergraph
