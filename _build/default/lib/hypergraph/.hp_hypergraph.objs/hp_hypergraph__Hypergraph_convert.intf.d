lib/hypergraph/hypergraph_convert.mli: Hp_graph Hypergraph
