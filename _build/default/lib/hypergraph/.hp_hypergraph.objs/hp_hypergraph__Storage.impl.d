lib/hypergraph/storage.ml: Format Hp_graph Hypergraph Hypergraph_convert
