lib/hypergraph/hypergraph_dual.ml: Array Hypergraph Hypergraph_core
