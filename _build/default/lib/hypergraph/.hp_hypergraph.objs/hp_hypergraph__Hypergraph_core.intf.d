lib/hypergraph/hypergraph_core.mli: Hypergraph
