lib/hypergraph/hypergraph_convert.ml: Array Hp_graph Hypergraph Hypergraph_reduce List
