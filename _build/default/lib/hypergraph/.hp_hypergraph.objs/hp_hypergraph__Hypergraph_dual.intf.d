lib/hypergraph/hypergraph_dual.mli: Hypergraph Hypergraph_core
