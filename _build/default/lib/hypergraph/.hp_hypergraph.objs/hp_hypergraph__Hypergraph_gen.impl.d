lib/hypergraph/hypergraph_gen.ml: Array Hashtbl Hp_util Hypergraph
