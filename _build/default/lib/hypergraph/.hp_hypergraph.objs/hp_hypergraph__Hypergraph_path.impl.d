lib/hypergraph/hypergraph_path.ml: Array Fun Hashtbl Hp_util Hypergraph Queue
