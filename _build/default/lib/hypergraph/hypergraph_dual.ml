module H = Hypergraph

let dual h =
  let nv = H.n_vertices h and ne = H.n_edges h in
  let members = Array.init nv (fun v -> Array.copy (H.vertex_edges h v)) in
  let vertex_names = Array.init ne (fun e -> H.edge_name h e) in
  let edge_names = Array.init nv (fun v -> H.vertex_name h v) in
  H.of_arrays ~vertex_names ~edge_names ~n_vertices:ne members

let complex_core h k = Hypergraph_core.k_core (dual h) k
