(** Simple undirected graphs in compressed sparse row form.

    Vertices are integers [0 .. n-1].  Self-loops and parallel edges
    supplied to the builder are dropped, so the adjacency structure is
    that of a simple graph — the representation used for the
    protein-protein interaction baselines the paper discusses. *)

type t

val n_vertices : t -> int

val n_edges : t -> int
(** Number of undirected edges. *)

val degree : t -> int -> int

val neighbors : t -> int -> int array
(** Sorted neighbor array; shared with the internal representation, do
    not mutate. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit

val mem_edge : t -> int -> int -> bool

val iter_edges : t -> (int -> int -> unit) -> unit
(** Each undirected edge visited once, with [u < v]. *)

val edges : t -> (int * int) list

val degrees : t -> int array

val max_degree : t -> int

val of_edges : n:int -> (int * int) list -> t
(** Build from an edge list; duplicates and self-loops are ignored. *)

val of_edge_array : n:int -> (int * int) array -> t

val induced : t -> int array -> t * int array
(** [induced g vs] is the subgraph induced by the distinct vertices
    [vs], together with the map from new vertex ids to original ids. *)
