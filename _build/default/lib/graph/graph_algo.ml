module U = Hp_util

let bfs_distances g src =
  let n = Graph.n_vertices g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
  done;
  dist

let distance g u v =
  let d = (bfs_distances g u).(v) in
  if d < 0 then None else Some d

let components g =
  let n = Graph.n_vertices g in
  let ds = U.Disjoint_set.create n in
  Graph.iter_edges g (fun u v -> ignore (U.Disjoint_set.union ds u v));
  let labels = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    let r = U.Disjoint_set.find ds v in
    if labels.(r) < 0 then begin
      labels.(r) <- !next;
      incr next
    end;
    labels.(v) <- labels.(r)
  done;
  (labels, !next)

let component_sizes g =
  let labels, count = components g in
  let sizes = Array.make count 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) labels;
  Array.sort (fun a b -> compare b a) sizes;
  sizes

let largest_component g =
  let labels, count = components g in
  if count = 0 then [||]
  else begin
    let sizes = Array.make count 0 in
    Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) labels;
    let best = ref 0 in
    Array.iteri (fun c s -> if s > sizes.(!best) then best := c) sizes;
    let buf = U.Dynarray.create ~dummy:0 () in
    Array.iteri (fun v c -> if c = !best then U.Dynarray.push buf v) labels;
    U.Dynarray.to_array buf
  end

let eccentricity g v =
  Array.fold_left max 0 (bfs_distances g v)

(* Shared all-sources sweep accumulating (sum of finite distances,
   number of finite ordered pairs, max finite distance). *)
let all_pairs_stats g =
  let n = Graph.n_vertices g in
  let sum = ref 0 and pairs = ref 0 and dmax = ref 0 in
  for src = 0 to n - 1 do
    let dist = bfs_distances g src in
    Array.iteri
      (fun v d ->
        if v <> src && d > 0 then begin
          sum := !sum + d;
          incr pairs;
          if d > !dmax then dmax := d
        end)
      dist
  done;
  (!sum, !pairs, !dmax)

let diameter g =
  let _, _, dmax = all_pairs_stats g in
  dmax

let average_path_length g =
  let sum, pairs, _ = all_pairs_stats g in
  if pairs = 0 then 0.0 else float_of_int sum /. float_of_int pairs

let sampled_path_stats rng g ~samples =
  let n = Graph.n_vertices g in
  if n = 0 then (0.0, 0)
  else begin
    let sum = ref 0 and pairs = ref 0 and dmax = ref 0 in
    for _ = 1 to samples do
      let src = U.Prng.int rng n in
      let dist = bfs_distances g src in
      Array.iteri
        (fun v d ->
          if v <> src && d > 0 then begin
            sum := !sum + d;
            incr pairs;
            if d > !dmax then dmax := d
          end)
        dist
    done;
    let avg = if !pairs = 0 then 0.0 else float_of_int !sum /. float_of_int !pairs in
    (avg, !dmax)
  end

let clustering_coefficient g v =
  let nbrs = Graph.neighbors g v in
  let d = Array.length nbrs in
  if d < 2 then 0.0
  else begin
    let links = ref 0 in
    for i = 0 to d - 1 do
      for j = i + 1 to d - 1 do
        if Graph.mem_edge g nbrs.(i) nbrs.(j) then incr links
      done
    done;
    2.0 *. float_of_int !links /. float_of_int (d * (d - 1))
  end

let average_clustering g =
  let n = Graph.n_vertices g in
  if n = 0 then 0.0
  else begin
    let sum = ref 0.0 in
    for v = 0 to n - 1 do
      sum := !sum +. clustering_coefficient g v
    done;
    !sum /. float_of_int n
  end

let degree_histogram g = U.Int_histogram.of_array (Graph.degrees g)

let degree_assortativity g =
  (* Newman's r over edge-endpoint degree pairs, both orientations. *)
  let m2 = 2 * Graph.n_edges g in
  if m2 < 4 then nan
  else begin
    let sx = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
    Graph.iter_edges g (fun u v ->
        let du = float_of_int (Graph.degree g u) in
        let dv = float_of_int (Graph.degree g v) in
        (* Counting each edge in both directions keeps the statistic
           symmetric, so the x and y marginals coincide. *)
        sx := !sx +. du +. dv;
        sxx := !sxx +. (du *. du) +. (dv *. dv);
        sxy := !sxy +. (2.0 *. du *. dv));
    let n = float_of_int m2 in
    let mean = !sx /. n in
    let var = (!sxx /. n) -. (mean *. mean) in
    if var <= 1e-12 then nan
    else ((!sxy /. n) -. (mean *. mean)) /. var
  end
