type t = {
  n : int;
  offsets : int array;   (* length n+1 *)
  adj : int array;       (* concatenated sorted neighbor lists *)
  m : int;               (* number of undirected edges *)
}

let n_vertices g = g.n

let n_edges g = g.m

let degree g v = g.offsets.(v + 1) - g.offsets.(v)

let neighbors g v = Array.sub g.adj g.offsets.(v) (degree g v)

let iter_neighbors g v f =
  for i = g.offsets.(v) to g.offsets.(v + 1) - 1 do
    f g.adj.(i)
  done

let mem_edge g u v =
  let lo = g.offsets.(u) and hi = g.offsets.(u + 1) in
  let rec search lo hi =
    if lo >= hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if g.adj.(mid) = v then true
      else if g.adj.(mid) < v then search (mid + 1) hi
      else search lo mid
    end
  in
  search lo hi

let iter_edges g f =
  for u = 0 to g.n - 1 do
    iter_neighbors g u (fun v -> if u < v then f u v)
  done

let edges g =
  let acc = ref [] in
  iter_edges g (fun u v -> acc := (u, v) :: !acc);
  List.rev !acc

let degrees g = Array.init g.n (degree g)

let max_degree g = Array.fold_left max 0 (degrees g)

let of_edge_array ~n pairs =
  if n < 0 then invalid_arg "Graph.of_edge_array: negative n";
  (* Canonicalize: drop loops, order endpoints, sort, dedupe. *)
  let canon =
    Array.to_list pairs
    |> List.filter_map (fun (u, v) ->
           if u < 0 || u >= n || v < 0 || v >= n then
             invalid_arg "Graph.of_edge_array: endpoint out of range"
           else if u = v then None
           else Some (min u v, max u v))
    |> List.sort_uniq compare
  in
  let m = List.length canon in
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    canon;
  let offsets = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offsets.(v + 1) <- offsets.(v) + deg.(v)
  done;
  let adj = Array.make (2 * m) 0 in
  let cursor = Array.copy offsets in
  List.iter
    (fun (u, v) ->
      adj.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1;
      adj.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1)
    canon;
  for v = 0 to n - 1 do
    let lo = offsets.(v) and len = deg.(v) in
    let slice = Array.sub adj lo len in
    Array.sort compare slice;
    Array.blit slice 0 adj lo len
  done;
  { n; offsets; adj; m }

let of_edges ~n pairs = of_edge_array ~n (Array.of_list pairs)

let induced g vs =
  let vs = Hp_util.Sorted.of_array vs in
  let n' = Array.length vs in
  let index = Hashtbl.create (2 * n') in
  Array.iteri (fun i v -> Hashtbl.replace index v i) vs;
  let acc = ref [] in
  Array.iteri
    (fun i v ->
      iter_neighbors g v (fun w ->
          match Hashtbl.find_opt index w with
          | Some j when i < j -> acc := (i, j) :: !acc
          | Some _ | None -> ()))
    vs;
  (of_edges ~n:n' !acc, vs)
