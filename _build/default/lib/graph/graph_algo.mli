(** Traversal and network statistics over graphs: breadth-first
    distances, connected components, diameter / characteristic path
    length (the small-world measurements of the paper, applied to the
    baseline graph models), and clustering coefficients (the statistic
    that is inflated by the clique-expansion model, Section 1.2). *)

val bfs_distances : Graph.t -> int -> int array
(** Hop distances from the source; [-1] marks unreachable vertices. *)

val distance : Graph.t -> int -> int -> int option

val components : Graph.t -> int array * int
(** [(labels, count)]: component label per vertex in [0..count-1]. *)

val component_sizes : Graph.t -> int array
(** Sizes of the components, largest first. *)

val largest_component : Graph.t -> int array
(** Vertices of a largest component. *)

val eccentricity : Graph.t -> int -> int
(** Largest finite distance from the vertex. *)

val diameter : Graph.t -> int
(** Maximum eccentricity over all vertices, ignoring unreachable pairs
    (so for a disconnected graph this is the largest component-local
    diameter).  0 for an empty or edgeless graph. *)

val average_path_length : Graph.t -> float
(** Mean distance over all reachable ordered pairs of distinct
    vertices; 0 when no such pair exists. *)

val sampled_path_stats : Hp_util.Prng.t -> Graph.t -> samples:int -> float * int
(** [(average, max)] distance estimated from BFS at sampled sources —
    for graphs too large for the exact all-pairs sweep. *)

val clustering_coefficient : Graph.t -> int -> float
(** Fraction of pairs of neighbors that are themselves adjacent; 0 for
    degree < 2. *)

val average_clustering : Graph.t -> float
(** Mean vertex clustering coefficient (vertices of degree < 2
    contribute 0, the convention of Watts-Strogatz). *)

val degree_histogram : Graph.t -> Hp_util.Int_histogram.t

val degree_assortativity : Graph.t -> float
(** Pearson correlation of the degrees at the two endpoints of an edge
    (Newman's r): negative for hub-periphery networks like PPI graphs,
    [nan] when fewer than two edges or the degrees are constant.  Used
    with the Maslov-Sneppen null model (the paper's reference [8]) to
    read correlation profiles of the graph baselines. *)
