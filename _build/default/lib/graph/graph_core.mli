(** k-cores of a graph.

    The k-core is the maximal subgraph in which every vertex has degree
    at least k.  The decomposition runs the linear-time peeling
    algorithm the paper sketches in Section 3 (repeatedly remove a
    minimum-degree vertex; the highest minimum degree observed is the
    maximum core number), implemented with the bucket structure of
    Batagelj and Zaversnik. *)

type decomposition = {
  core_number : int array;
  (** [core_number.(v)] is the largest k such that v is in the k-core. *)
  max_core : int;
  (** Highest non-empty core index (0 for an edgeless graph). *)
  peel_order : int array;
  (** Vertices in the order the peeling removed them. *)
}

val decompose : Graph.t -> decomposition

val k_core_vertices : Graph.t -> int -> int array
(** Vertices of the k-core (possibly empty), in increasing order. *)

val k_core : Graph.t -> int -> Graph.t * int array
(** The k-core as an induced subgraph plus the new-to-old vertex map. *)

val max_core_vertices : Graph.t -> int array
(** Vertices of the maximum core. *)

val degeneracy : Graph.t -> int
(** Synonym for the maximum core number. *)
