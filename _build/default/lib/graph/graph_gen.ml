module U = Hp_util

let erdos_renyi_gnm rng ~n ~m =
  let limit = n * (n - 1) / 2 in
  if m < 0 || m > limit then invalid_arg "Graph_gen.erdos_renyi_gnm: bad m";
  let seen = Hashtbl.create (2 * m) in
  let edges = ref [] in
  let added = ref 0 in
  while !added < m do
    let u = U.Prng.int rng n and v = U.Prng.int rng n in
    if u <> v then begin
      let e = (min u v, max u v) in
      if not (Hashtbl.mem seen e) then begin
        Hashtbl.add seen e ();
        edges := e :: !edges;
        incr added
      end
    end
  done;
  Graph.of_edges ~n !edges

let barabasi_albert rng ~n ~m =
  if m < 1 || n <= m then invalid_arg "Graph_gen.barabasi_albert: need n > m >= 1";
  (* Repeated-endpoint list: each edge pushes both endpoints, so
     sampling a uniform element of [targets] is degree-proportional. *)
  let targets = U.Dynarray.create ~dummy:0 () in
  let edges = ref [] in
  let seed = m + 1 in
  for u = 0 to seed - 1 do
    for v = u + 1 to seed - 1 do
      edges := (u, v) :: !edges;
      U.Dynarray.push targets u;
      U.Dynarray.push targets v
    done
  done;
  for v = seed to n - 1 do
    let chosen = Hashtbl.create (2 * m) in
    let tries = ref 0 in
    while Hashtbl.length chosen < m && !tries < 50 * m do
      incr tries;
      let t = U.Dynarray.get targets (U.Prng.int rng (U.Dynarray.length targets)) in
      if t <> v && not (Hashtbl.mem chosen t) then Hashtbl.add chosen t ()
    done;
    Hashtbl.iter
      (fun t () ->
        edges := (v, t) :: !edges;
        U.Dynarray.push targets v;
        U.Dynarray.push targets t)
      chosen
  done;
  Graph.of_edges ~n !edges

let configuration_model rng degseq =
  let n = Array.length degseq in
  Array.iter
    (fun d -> if d < 0 then invalid_arg "Graph_gen.configuration_model: negative degree")
    degseq;
  let total = Array.fold_left ( + ) 0 degseq in
  let stubs = Array.make total 0 in
  let pos = ref 0 in
  Array.iteri
    (fun v d ->
      for _ = 1 to d do
        stubs.(!pos) <- v;
        incr pos
      done)
    degseq;
  U.Prng.shuffle rng stubs;
  (* Pair consecutive stubs; drop loops and duplicates (erased model).
     An odd leftover stub is simply discarded. *)
  let edges = ref [] in
  let npairs = total / 2 in
  for i = 0 to npairs - 1 do
    let u = stubs.(2 * i) and v = stubs.((2 * i) + 1) in
    if u <> v then edges := (u, v) :: !edges
  done;
  Graph.of_edges ~n !edges

let maslov_sneppen rng g ~rounds =
  let n = Graph.n_vertices g in
  let edges = Array.of_list (Graph.edges g) in
  let m = Array.length edges in
  if m >= 2 then begin
    let present = Hashtbl.create (2 * m) in
    Array.iter (fun e -> Hashtbl.replace present e ()) edges;
    let canon u v = (min u v, max u v) in
    let attempts = rounds * m in
    for _ = 1 to attempts do
      let i = U.Prng.int rng m and j = U.Prng.int rng m in
      if i <> j then begin
        let a, b = edges.(i) and c, d = edges.(j) in
        (* Orient the second edge both ways at random so all pairings
           are reachable. *)
        let c, d = if U.Prng.bool rng 0.5 then (c, d) else (d, c) in
        let e1 = canon a d and e2 = canon c b in
        if a <> d && c <> b
           && (not (Hashtbl.mem present e1))
           && (not (Hashtbl.mem present e2))
           && e1 <> e2
        then begin
          Hashtbl.remove present (canon a b);
          Hashtbl.remove present (canon c d);
          Hashtbl.replace present e1 ();
          Hashtbl.replace present e2 ();
          edges.(i) <- e1;
          edges.(j) <- e2
        end
      end
    done
  end;
  Graph.of_edge_array ~n edges

let random_regular_ish rng ~n ~degree =
  if n < 3 then invalid_arg "Graph_gen.random_regular_ish: need n >= 3";
  if degree < 0 || degree >= n then invalid_arg "Graph_gen.random_regular_ish: bad degree";
  let cycles = (degree + 1) / 2 in
  let edge_set = Hashtbl.create (2 * n * cycles) in
  let add u v =
    if u <> v then begin
      let e = (min u v, max u v) in
      if not (Hashtbl.mem edge_set e) then Hashtbl.add edge_set e ()
    end
  in
  for _ = 1 to cycles do
    let perm = Array.init n (fun i -> i) in
    U.Prng.shuffle rng perm;
    for i = 0 to n - 1 do
      add perm.(i) perm.((i + 1) mod n)
    done
  done;
  (* Patch vertices left short of the requested degree (cycle overlaps
     can eat edges): connect them to random partners. *)
  let deg = Array.make n 0 in
  Hashtbl.iter
    (fun (u, v) () ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edge_set;
  for v = 0 to n - 1 do
    let guard = ref 0 in
    while deg.(v) < degree && !guard < 20 * n do
      incr guard;
      let w = U.Prng.int rng n in
      let e = (min v w, max v w) in
      if v <> w && not (Hashtbl.mem edge_set e) then begin
        Hashtbl.add edge_set e ();
        deg.(v) <- deg.(v) + 1;
        deg.(w) <- deg.(w) + 1
      end
    done
  done;
  let edges = Hashtbl.fold (fun e () acc -> e :: acc) edge_set [] in
  Graph.of_edges ~n edges

let planted_core_powerlaw rng ~n ~core_size ~core_degree ~gamma ~dmax =
  if core_size > n then invalid_arg "Graph_gen.planted_core_powerlaw: core larger than n";
  let core = random_regular_ish rng ~n:core_size ~degree:core_degree in
  let edges = ref (Graph.edges core) in
  (* Degree-proportional endpoint pool, seeded with the core so the
     periphery preferentially attaches to it (hub structure). *)
  let targets = U.Dynarray.create ~dummy:0 () in
  List.iter
    (fun (u, v) ->
      U.Dynarray.push targets u;
      U.Dynarray.push targets v)
    !edges;
  for v = core_size to n - 1 do
    let d = U.Prng.powerlaw_int rng ~gamma ~dmin:1 ~dmax in
    let chosen = Hashtbl.create 8 in
    let tries = ref 0 in
    while Hashtbl.length chosen < d && !tries < 50 * (d + 1) do
      incr tries;
      let t = U.Dynarray.get targets (U.Prng.int rng (U.Dynarray.length targets)) in
      if t <> v && not (Hashtbl.mem chosen t) then Hashtbl.add chosen t ()
    done;
    if Hashtbl.length chosen = 0 then begin
      (* Always connect at least once so the graph has no isolated
         periphery vertices. *)
      let t = U.Prng.int rng (max 1 v) in
      Hashtbl.add chosen t ()
    end;
    Hashtbl.iter
      (fun t () ->
        edges := (v, t) :: !edges;
        U.Dynarray.push targets v;
        U.Dynarray.push targets t)
      chosen
  done;
  Graph.of_edges ~n !edges
