lib/graph/graph_gen.mli: Graph Hp_util
