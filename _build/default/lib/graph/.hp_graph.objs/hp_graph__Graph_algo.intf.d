lib/graph/graph_algo.mli: Graph Hp_util
