lib/graph/graph_gen.ml: Array Graph Hashtbl Hp_util List
