lib/graph/graph_algo.ml: Array Graph Hp_util Queue
