lib/graph/graph.ml: Array Hashtbl Hp_util List
