lib/graph/graph.mli:
