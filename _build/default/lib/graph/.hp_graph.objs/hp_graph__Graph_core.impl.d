lib/graph/graph_core.ml: Array Graph Hp_util
