lib/graph/graph_core.mli: Graph
