module U = Hp_util

type decomposition = {
  core_number : int array;
  max_core : int;
  peel_order : int array;
}

let decompose g =
  let n = Graph.n_vertices g in
  let core_number = Array.make n 0 in
  let peel_order = Array.make n 0 in
  if n = 0 then { core_number; max_core = 0; peel_order }
  else begin
    let maxd = Graph.max_degree g in
    let q = U.Bucket_queue.create ~n ~max_key:maxd in
    for v = 0 to n - 1 do
      U.Bucket_queue.insert q v (Graph.degree g v)
    done;
    let level = ref 0 in
    let idx = ref 0 in
    let continue = ref true in
    while !continue do
      match U.Bucket_queue.pop_min q with
      | None -> continue := false
      | Some (v, k) ->
        if k > !level then level := k;
        core_number.(v) <- !level;
        peel_order.(!idx) <- v;
        incr idx;
        Graph.iter_neighbors g v (fun w ->
            if U.Bucket_queue.mem q w then begin
              let kw = U.Bucket_queue.key q w in
              (* Never lower a neighbor below the current level: its
                 core number is already at least [level]. *)
              if kw > !level then U.Bucket_queue.change_key q w (kw - 1)
            end)
    done;
    let max_core = Array.fold_left max 0 core_number in
    { core_number; max_core; peel_order }
  end

let k_core_vertices g k =
  let d = decompose g in
  let buf = U.Dynarray.create ~dummy:0 () in
  Array.iteri (fun v c -> if c >= k then U.Dynarray.push buf v) d.core_number;
  U.Dynarray.to_array buf

let k_core g k = Graph.induced g (k_core_vertices g k)

let max_core_vertices g =
  let d = decompose g in
  let buf = U.Dynarray.create ~dummy:0 () in
  Array.iteri
    (fun v c -> if c = d.max_core && d.max_core > 0 then U.Dynarray.push buf v)
    d.core_number;
  U.Dynarray.to_array buf

let degeneracy g = (decompose g).max_core
