(** Random graph generators used for null models and for the synthetic
    protein-protein interaction networks that stand in for the DIP
    data. *)

val erdos_renyi_gnm : Hp_util.Prng.t -> n:int -> m:int -> Graph.t
(** Uniform simple graph with [n] vertices and [m] distinct edges.
    Requires [m <= n*(n-1)/2]. *)

val barabasi_albert : Hp_util.Prng.t -> n:int -> m:int -> Graph.t
(** Preferential attachment: start from a small clique and attach each
    new vertex with [m] edges, targets drawn proportionally to current
    degree.  Yields a power-law degree distribution with exponent
    close to 3. *)

val configuration_model : Hp_util.Prng.t -> int array -> Graph.t
(** Simple graph approximating the given degree sequence: stubs are
    matched uniformly at random, then self-loops and parallel edges
    are discarded, so realized degrees can fall slightly short of the
    request (standard erased configuration model). *)

val random_regular_ish : Hp_util.Prng.t -> n:int -> degree:int -> Graph.t
(** Near-regular graph in which every vertex has degree at least
    [degree] with high probability: union of [ceil(degree/2)] random
    Hamiltonian cycles plus patch edges for any vertex left short.
    Used to plant dense cores of prescribed minimum degree. *)

val maslov_sneppen : Hp_util.Prng.t -> Graph.t -> rounds:int -> Graph.t
(** Degree-preserving randomization by repeated double-edge swaps
    (a,b),(c,d) -> (a,d),(c,b), rejecting swaps that would create
    self-loops or parallel edges — the null model of Maslov and
    Sneppen, the paper's reference [8] for correlation profiles.
    [rounds] is a multiplier on the number of edges; every vertex
    degree is preserved exactly. *)

val planted_core_powerlaw :
  Hp_util.Prng.t ->
  n:int ->
  core_size:int ->
  core_degree:int ->
  gamma:float ->
  dmax:int ->
  Graph.t
(** Power-law periphery attached by preferential attachment to a
    planted near-regular dense subgraph on vertices
    [0 .. core_size-1] whose internal minimum degree is
    [core_degree] — the synthetic stand-in for the DIP networks, whose
    maximum core the experiment measures. *)
