module U = Hp_util
module H = Hp_hypergraph.Hypergraph

type symmetry = General | Symmetric

type t = {
  rows : int;
  cols : int;
  entries : (int * int) array;
  symmetry : symmetry;
}

let nnz t = Array.length t.entries

let create ~rows ~cols ?(symmetry = General) entries =
  if rows < 0 || cols < 0 then invalid_arg "Matrix_market.create: negative dimension";
  if symmetry = Symmetric && rows <> cols then
    invalid_arg "Matrix_market.create: symmetric matrix must be square";
  let canon (r, c) =
    if r < 0 || r >= rows || c < 0 || c >= cols then
      invalid_arg "Matrix_market.create: entry out of range";
    match symmetry with
    | General -> (r, c)
    | Symmetric -> if r >= c then (r, c) else (c, r)
  in
  let entries =
    List.map canon entries |> List.sort_uniq compare |> Array.of_list
  in
  { rows; cols; entries; symmetry }

let parse text =
  let lines = String.split_on_char '\n' text in
  let fail lineno msg =
    failwith (Printf.sprintf "Matrix_market.parse: line %d: %s" lineno msg)
  in
  match lines with
  | [] -> failwith "Matrix_market.parse: empty input"
  | header :: rest ->
    let lower = String.lowercase_ascii header in
    if not (String.length lower >= 14 && String.sub lower 0 14 = "%%matrixmarket") then
      failwith "Matrix_market.parse: missing %%MatrixMarket header";
    let tokens =
      String.split_on_char ' ' lower |> List.filter (fun s -> s <> "")
    in
    (match tokens with
    | _ :: "matrix" :: "coordinate" :: field :: sym :: _ ->
      if field <> "pattern" && field <> "real" && field <> "integer" then
        failwith ("Matrix_market.parse: unsupported field type " ^ field);
      let symmetry =
        match sym with
        | "general" -> General
        | "symmetric" -> Symmetric
        | s -> failwith ("Matrix_market.parse: unsupported symmetry " ^ s)
      in
      let is_data line = line <> "" && line.[0] <> '%' in
      let data =
        List.mapi (fun i l -> (i + 2, String.trim l)) rest
        |> List.filter (fun (_, l) -> is_data l)
      in
      (match data with
      | [] -> failwith "Matrix_market.parse: missing size line"
      | (szline, sizes) :: body ->
        let ints s =
          String.split_on_char ' ' s
          |> List.filter (fun x -> x <> "")
        in
        (match ints sizes with
        | [ r; c; n ] ->
          let rows = int_of_string r and cols = int_of_string c in
          let expected = int_of_string n in
          let entries =
            List.map
              (fun (lineno, line) ->
                match ints line with
                | r :: c :: _ ->
                  (try (int_of_string r - 1, int_of_string c - 1)
                   with Failure _ -> fail lineno "bad entry")
                | _ -> fail lineno "bad entry")
              body
          in
          if List.length entries <> expected then
            failwith
              (Printf.sprintf
                 "Matrix_market.parse: declared %d entries, found %d" expected
                 (List.length entries));
          create ~rows ~cols ~symmetry entries
        | _ -> fail szline "bad size line"))
    | _ -> failwith "Matrix_market.parse: unsupported header")

let read path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      let n = in_channel_length ic in
      parse (really_input_string ic n))

let to_string t =
  let buf = Buffer.create (32 * (nnz t + 2)) in
  let sym = match t.symmetry with General -> "general" | Symmetric -> "symmetric" in
  Buffer.add_string buf (Printf.sprintf "%%%%MatrixMarket matrix coordinate pattern %s\n" sym);
  Buffer.add_string buf (Printf.sprintf "%d %d %d\n" t.rows t.cols (nnz t));
  Array.iter
    (fun (r, c) -> Buffer.add_string buf (Printf.sprintf "%d %d\n" (r + 1) (c + 1)))
    t.entries;
  Buffer.contents buf

let write path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string t))

let to_hypergraph t =
  let members = Array.make t.rows [] in
  let add r c = members.(r) <- c :: members.(r) in
  Array.iter
    (fun (r, c) ->
      add r c;
      match t.symmetry with
      | Symmetric when r <> c -> add c r
      | Symmetric | General -> ())
    t.entries;
  H.of_arrays ~n_vertices:t.cols (Array.map Array.of_list members)

let banded rng ~n ~bandwidth ~fill =
  let entries = ref [] in
  for r = 0 to n - 1 do
    entries := (r, r) :: !entries;
    for c = max 0 (r - bandwidth) to r - 1 do
      if U.Prng.bool rng fill then entries := (r, c) :: !entries
    done
  done;
  create ~rows:n ~cols:n ~symmetry:Symmetric !entries

let random_rect rng ~rows ~cols ~nnz =
  let entries = ref [] in
  for r = 0 to rows - 1 do
    entries := (r, U.Prng.int rng cols) :: !entries
  done;
  let extra = max 0 (nnz - rows) in
  for _ = 1 to extra do
    entries := (U.Prng.int rng rows, U.Prng.int rng cols) :: !entries
  done;
  create ~rows ~cols !entries

let block_structured rng ~n ~block ~fill ~noise =
  if block <= 0 then invalid_arg "Matrix_market.block_structured: block <= 0";
  let entries = ref [] in
  for r = 0 to n - 1 do
    let b0 = r / block * block in
    entries := (r, r) :: !entries;
    for c = b0 to min (n - 1) (b0 + block - 1) do
      if c < r && U.Prng.bool rng fill then entries := (r, c) :: !entries
    done
  done;
  for _ = 1 to noise do
    let r = U.Prng.int rng n and c = U.Prng.int rng n in
    if r > c then entries := (r, c) :: !entries
    else if c > r then entries := (c, r) :: !entries
  done;
  create ~rows:n ~cols:n ~symmetry:Symmetric !entries

let synthetic_suite ?(seed = 77) () =
  let rng = U.Prng.create seed in
  [
    ("bfw398-like", banded rng ~n:398 ~bandwidth:12 ~fill:0.75);
    ("fidap035-like", block_structured rng ~n:1000 ~block:24 ~fill:0.8 ~noise:4000);
    ("stk21-like", banded rng ~n:2200 ~bandwidth:24 ~fill:0.7);
    ("utm5940-like", block_structured rng ~n:5940 ~block:12 ~fill:0.85 ~noise:30000);
    ("fidapm11-like", block_structured rng ~n:3200 ~block:56 ~fill:0.8 ~noise:40000);
  ]
