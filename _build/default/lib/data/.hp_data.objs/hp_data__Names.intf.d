lib/data/names.mli: Hp_util
