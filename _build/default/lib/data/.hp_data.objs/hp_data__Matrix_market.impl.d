lib/data/matrix_market.ml: Array Buffer Fun Hp_hypergraph Hp_util List Printf String
