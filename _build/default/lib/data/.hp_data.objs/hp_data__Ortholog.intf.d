lib/data/ortholog.mli: Hp_hypergraph Hp_util
