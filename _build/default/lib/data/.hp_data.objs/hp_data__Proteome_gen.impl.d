lib/data/proteome_gen.ml: Array Float Fun Hp_hypergraph Hp_util List Names Option
