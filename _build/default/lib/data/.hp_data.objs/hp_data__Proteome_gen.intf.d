lib/data/proteome_gen.mli: Hp_hypergraph Hp_util
