lib/data/matrix_market.mli: Hp_hypergraph Hp_util
