lib/data/cellzome.ml: Float Hashtbl Hp_hypergraph Hp_util Proteome_gen
