lib/data/purification.mli: Hp_hypergraph Hp_util
