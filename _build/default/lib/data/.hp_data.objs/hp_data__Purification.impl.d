lib/data/purification.ml: Array Hp_hypergraph Hp_util List
