lib/data/pajek.ml: Array Buffer Filename Fun Hp_hypergraph Printf Sys
