lib/data/dip.mli: Hp_graph
