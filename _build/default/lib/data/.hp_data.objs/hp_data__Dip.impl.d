lib/data/dip.ml: Array Fun Hp_graph Hp_util
