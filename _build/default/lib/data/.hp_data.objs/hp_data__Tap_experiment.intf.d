lib/data/tap_experiment.mli: Hp_hypergraph Hp_util
