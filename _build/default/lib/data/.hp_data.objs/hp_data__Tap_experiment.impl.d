lib/data/tap_experiment.ml: Array Hp_hypergraph Hp_util
