lib/data/cellzome.mli: Hp_hypergraph
