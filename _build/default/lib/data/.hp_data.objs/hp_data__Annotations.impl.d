lib/data/annotations.ml: Array Cellzome Hp_hypergraph Hp_stats Hp_util
