lib/data/ortholog.ml: Array Hashtbl Hp_cover Hp_hypergraph Hp_util
