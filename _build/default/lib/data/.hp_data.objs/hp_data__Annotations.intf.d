lib/data/annotations.mli: Cellzome Hp_stats Hp_util
