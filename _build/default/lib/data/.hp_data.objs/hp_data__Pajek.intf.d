lib/data/pajek.mli: Hp_hypergraph
