lib/data/names.ml: Array Hashtbl Hp_util Printf
