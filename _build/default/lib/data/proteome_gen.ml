module U = Hp_util
module H = Hp_hypergraph.Hypergraph

type params = {
  core_proteins : int;
  core_complexes : int;
  core_membership : int;
  free_periphery : int;
  periphery_complexes : int;
  hub_degree : int;
  satellites : int;
  satellite_pool : int;
  satellite_complexes : int;
  singletons : int;
  gamma : float;
  max_free_degree : int;
  attachment_window : int;
}

let cellzome_params = {
  core_proteins = 41;
  core_complexes = 54;
  core_membership = 6;
  free_periphery = 1176;
  periphery_complexes = 45;
  hub_degree = 21;
  satellites = 29;
  satellite_pool = 95;
  satellite_complexes = 130;
  singletons = 3;
  gamma = 2.5;
  max_free_degree = 20;
  attachment_window = 5;
}

let scaled p factor =
  if factor <= 0.0 then invalid_arg "Proteome_gen.scaled: factor must be positive";
  let s x = max 1 (int_of_float (Float.round (float_of_int x *. factor))) in
  {
    p with
    core_proteins = max p.core_membership (s p.core_proteins);
    core_complexes = max (p.core_membership + 1) (s p.core_complexes);
    free_periphery = s p.free_periphery;
    periphery_complexes = max p.hub_degree (s p.periphery_complexes);
    satellites = s p.satellites;
    satellite_pool = max (2 * s p.satellites) (s p.satellite_pool);
    satellite_complexes = max (s p.satellites) (s p.satellite_complexes);
    singletons = s p.singletons;
  }

type proteome = {
  hypergraph : H.t;
  core_proteins : int array;
  core_complexes : int array;
  hub : int;
}

let validate p =
  if p.core_membership < 1 || p.core_membership > p.core_complexes then
    invalid_arg "Proteome_gen: core_membership out of range";
  if p.hub_degree < 0 || p.hub_degree > p.periphery_complexes then
    invalid_arg "Proteome_gen: hub_degree exceeds periphery complexes";
  if p.satellites > 0 && p.satellite_pool < 2 * p.satellites then
    invalid_arg "Proteome_gen: satellite pools need at least two proteins each";
  if p.satellites > 0 && p.satellite_complexes < p.satellites then
    invalid_arg "Proteome_gen: need at least one complex per satellite";
  if p.attachment_window < 1 then invalid_arg "Proteome_gen: attachment window < 1";
  if p.gamma <= 0.0 || p.max_free_degree < 1 then
    invalid_arg "Proteome_gen: bad degree distribution parameters"

(* Core membership: each core protein joins exactly [core_membership]
   core complexes; member sets are repaired to hold at least two
   proteins each (rejection alone has success probability that decays
   exponentially in the complex count, so it cannot scale), then the
   assignment is retried until the core-restricted sets form an
   antichain (no containment; see DESIGN.md for why that guarantees the
   planted core survives peeling) and the core is connected. *)
let plant_core rng (p : params) =
  let ok_antichain sets =
    let ok = ref true in
    for f = 0 to p.core_complexes - 1 do
      for g = 0 to p.core_complexes - 1 do
        if f <> g && U.Sorted.subset sets.(f) sets.(g) then ok := false
      done
    done;
    !ok
  in
  let connected sets =
    let ds = U.Disjoint_set.create p.core_proteins in
    Array.iter
      (fun ms ->
        for i = 1 to Array.length ms - 1 do
          ignore (U.Disjoint_set.union ds ms.(0) ms.(i))
        done)
      sets;
    U.Disjoint_set.count ds = 1
  in
  (* Move memberships from the currently largest complex into any
     complex below two members.  Degrees are untouched: one protein
     simply trades complexes.  Terminates because the donor always has
     more members than the recipient. *)
  let repair_sizes members =
    let size c = List.length members.(c) in
    let rec fix () =
      let small = ref (-1) in
      for c = 0 to p.core_complexes - 1 do
        if !small < 0 && size c < 2 then small := c
      done;
      if !small >= 0 then begin
        let donor = ref 0 in
        for c = 1 to p.core_complexes - 1 do
          if size c > size !donor then donor := c
        done;
        let movable =
          List.filter (fun v -> not (List.mem v members.(!small))) members.(!donor)
        in
        match movable with
        | [] -> invalid_arg "Proteome_gen: cannot repair core complex sizes"
        | v :: _ ->
          members.(!donor) <- List.filter (fun w -> w <> v) members.(!donor);
          members.(!small) <- v :: members.(!small);
          fix ()
      end
    in
    fix ()
  in
  let rec attempt () =
    let members = Array.make p.core_complexes [] in
    for v = 0 to p.core_proteins - 1 do
      let cs = U.Prng.sample_without_replacement rng p.core_membership p.core_complexes in
      Array.iter (fun c -> members.(c) <- v :: members.(c)) cs
    done;
    repair_sizes members;
    let sets = Array.map U.Sorted.of_list members in
    if ok_antichain sets && connected sets then sets else attempt ()
  in
  attempt ()

let generate ?hub_name rng (p : params) =
  validate p;
  (* Derived layout: core proteins, then the hub, then one linker per
     periphery complex, then the free periphery, satellites and
     singleton proteins; complexes are core, periphery, satellite,
     singleton — in id order. *)
  let id_hub = p.core_proteins in
  let first_linker = id_hub + 1 in
  let n_linkers = p.periphery_complexes in
  let first_free = first_linker + n_linkers in
  let n_giant_p = first_free + p.free_periphery in
  let first_satellite_p = n_giant_p in
  let first_singleton_p = first_satellite_p + p.satellite_pool in
  let n_proteins = first_singleton_p + p.singletons in
  let first_periph_c = p.core_complexes in
  let first_satellite_c = first_periph_c + p.periphery_complexes in
  let first_singleton_c = first_satellite_c + p.satellite_complexes in
  let n_complexes = first_singleton_c + p.singletons in
  let members = Array.make n_complexes [] in
  let add_member c v = members.(c) <- v :: members.(c) in
  (* 1. Planted core. *)
  let core_sets = plant_core rng p in
  Array.iteri (fun c ms -> members.(c) <- Array.to_list ms) core_sets;
  let attach v c = add_member c v in
  (* 2. Linkers: seed each periphery complex and tie it to an earlier
     complex (every third anchors into the core) so the giant component
     is connected while path lengths stay realistic. *)
  for i = 0 to n_linkers - 1 do
    let v = first_linker + i in
    let own = first_periph_c + i in
    let anchor =
      if i = 0 || i mod 3 = 0 then U.Prng.int rng p.core_complexes else own - 1
    in
    attach v own;
    attach v anchor
  done;
  (* 3. The hub and other high-degree proteins take a PREFIX of the
     periphery complexes.  Restricted to hubs those complexes form a
     nested chain, so k-core peeling provably collapses them: the
     high-degree tail exists without contaminating the planted core
     (DESIGN.md, design notes). *)
  let attach_hub v d =
    for i = 0 to d - 1 do
      attach v (first_periph_c + i)
    done
  in
  attach_hub id_hub p.hub_degree;
  (* 3b. Decoy memberships: hub-free periphery complexes each hosting
     one core protein; their restriction during peeling is a singleton
     contained in that protein's core complexes, so they collapse.
     Spreads core-protein degrees above the planted minimum. *)
  let first_decoy_c = first_periph_c + p.hub_degree in
  let n_decoys = p.periphery_complexes - p.hub_degree in
  for i = 0 to n_decoys - 1 do
    attach (U.Prng.int rng p.core_proteins) (first_decoy_c + i)
  done;
  (* 4. Free periphery: power-law degrees; degrees above the planted
     core membership become nested hubs, the rest bind complexes from a
     local window of the cyclically ordered giant complexes. *)
  let n_giant_c = p.core_complexes + p.periphery_complexes in
  let hub_threshold = p.core_membership in
  for v = first_free to n_giant_p - 1 do
    let d = U.Prng.powerlaw_int rng ~gamma:p.gamma ~dmin:1 ~dmax:p.max_free_degree in
    if d >= hub_threshold then attach_hub v (min d p.periphery_complexes)
    else begin
      let center = U.Prng.int rng n_giant_c in
      let window = p.attachment_window in
      let cs = ref [ center ] in
      while List.length !cs < d do
        let offset = 1 + U.Prng.int rng window in
        let sign = if U.Prng.bool rng 0.5 then 1 else -1 in
        let c = ((center + (sign * offset)) mod n_giant_c + n_giant_c) mod n_giant_c in
        if not (List.mem c !cs) then cs := c :: !cs
      done;
      List.iter (fun c -> attach v c) !cs
    end
  done;
  (* 5. Satellites: tiny separate components; the first complex of each
     holds the whole protein pool so the component is connected.
     Pool/complex totals distribute as evenly as possible, earlier
     satellites absorbing the remainders. *)
  if p.satellites > 0 then begin
    let base_pool = p.satellite_pool / p.satellites in
    let extra_pool = p.satellite_pool - (base_pool * p.satellites) in
    let base_cpx = p.satellite_complexes / p.satellites in
    let extra_cpx = p.satellite_complexes - (base_cpx * p.satellites) in
    let sat_p = ref first_satellite_p and sat_c = ref first_satellite_c in
    for i = 0 to p.satellites - 1 do
      let pool_size = if i < extra_pool then base_pool + 1 else base_pool in
      let n_comp_c = if i < extra_cpx then base_cpx + 1 else base_cpx in
      let pool = Array.init pool_size (fun j -> !sat_p + j) in
      sat_p := !sat_p + pool_size;
      members.(!sat_c) <- Array.to_list pool;
      for j = 1 to n_comp_c - 1 do
        let size = 2 + U.Prng.int rng (pool_size - 1) in
        let picks = U.Prng.sample_without_replacement rng size pool_size in
        members.(!sat_c + j) <- Array.to_list (Array.map (fun ix -> pool.(ix)) picks)
      done;
      sat_c := !sat_c + n_comp_c
    done;
    assert (!sat_p = first_singleton_p && !sat_c = first_singleton_c)
  end;
  (* 6. Singleton complexes. *)
  for i = 0 to p.singletons - 1 do
    add_member (first_singleton_c + i) (first_singleton_p + i)
  done;
  let vertex_names = Names.gene_names rng n_proteins in
  Option.iter (fun name -> vertex_names.(id_hub) <- name) hub_name;
  let edge_names = Names.complex_names n_complexes in
  let hypergraph =
    H.create ~vertex_names ~edge_names ~n_vertices:n_proteins
      (Array.to_list members)
  in
  {
    hypergraph;
    core_proteins = Array.init p.core_proteins Fun.id;
    core_complexes = Array.init p.core_complexes Fun.id;
    hub = id_hub;
  }
