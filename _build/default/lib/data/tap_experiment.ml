module U = Hp_util
module H = Hp_hypergraph.Hypergraph

type outcome = {
  identified : bool array;
  pulls : int array;
  successful_baits : int;
}

let simulate rng h ~baits ~reproducibility =
  if reproducibility < 0.0 || reproducibility > 1.0 then
    invalid_arg "Tap_experiment.simulate: reproducibility out of [0,1]";
  let ne = H.n_edges h in
  let pulls = Array.make ne 0 in
  let successful_baits = ref 0 in
  Array.iter
    (fun b ->
      let pulled_any = ref false in
      Array.iter
        (fun e ->
          if U.Prng.bool rng reproducibility then begin
            pulls.(e) <- pulls.(e) + 1;
            pulled_any := true
          end)
        (H.vertex_edges h b);
      if !pulled_any then incr successful_baits)
    baits;
  {
    identified = Array.map (fun c -> c > 0) pulls;
    pulls;
    successful_baits = !successful_baits;
  }

type reliability = {
  trials : int;
  mean_identified_fraction : float;
  mean_twice_identified_fraction : float;
  always_identified : int;
  never_identified : int;
  coverable : int;
}

let assess rng h ~baits ~reproducibility ~trials =
  if trials <= 0 then invalid_arg "Tap_experiment.assess: trials must be positive";
  let ne = H.n_edges h in
  (* Coverable complexes: those containing at least one bait. *)
  let coverable_mask = Array.make ne false in
  Array.iter
    (fun b -> Array.iter (fun e -> coverable_mask.(e) <- true) (H.vertex_edges h b))
    baits;
  let coverable = Array.fold_left (fun a c -> if c then a + 1 else a) 0 coverable_mask in
  let hit_count = Array.make ne 0 in
  let sum_frac = ref 0.0 and sum_frac2 = ref 0.0 in
  for _ = 1 to trials do
    let o = simulate rng h ~baits ~reproducibility in
    let once = ref 0 and twice = ref 0 in
    Array.iteri
      (fun e p ->
        if p >= 1 then begin
          incr once;
          hit_count.(e) <- hit_count.(e) + 1
        end;
        if p >= 2 then incr twice)
      o.pulls;
    if coverable > 0 then begin
      sum_frac := !sum_frac +. (float_of_int !once /. float_of_int coverable);
      sum_frac2 := !sum_frac2 +. (float_of_int !twice /. float_of_int coverable)
    end
  done;
  let always = ref 0 and never = ref 0 in
  Array.iteri
    (fun e hits ->
      if coverable_mask.(e) then begin
        if hits = trials then incr always;
        if hits = 0 then incr never
      end)
    hit_count;
  {
    trials;
    mean_identified_fraction = !sum_frac /. float_of_int trials;
    mean_twice_identified_fraction = !sum_frac2 /. float_of_int trials;
    always_identified = !always;
    never_identified = !never;
    coverable;
  }
