(** Synthetic stand-in for the Cellzome (Gavin et al. 2002) yeast
    protein complex dataset, calibrated to the structure the paper
    reports (see the substitution table in DESIGN.md):

    - 1361 proteins and 232 complexes;
    - a giant component holding the bulk of the proteins and 99
      complexes, plus 29 small satellite components and 3 singleton
      complexes (33 components in total);
    - a power-law protein degree distribution with most proteins in a
      single complex and a maximum degree of 21, carried by the protein
      named ADH1;
    - a planted maximum core: 41 proteins, each in exactly six
      dedicated core complexes (54 of them) whose core-restricted
      member sets form an antichain, so the 6-core survives peeling
      and no 7-core exists (the argument is spelled out in DESIGN.md).

    Generation is deterministic in the seed. *)

type dataset = {
  hypergraph : Hp_hypergraph.Hypergraph.t;
  core_proteins : int array;    (** the 41 planted core proteins *)
  core_complexes : int array;   (** the 54 planted core complexes *)
  adh1 : int;                   (** vertex id of the max-degree protein *)
  historical_baits : int array;
  (** 459 proteins standing in for the productive Cellzome baits, with
      mean degree matched to the reported 1.85. *)
}

val generate : ?seed:int -> unit -> dataset

val paper : unit -> dataset
(** The canonical instance used by the experiments ([seed] 2004). *)

(** Constants the paper reports for the real dataset, for
    paper-vs-measured tables. *)
module Reported : sig
  val n_proteins : int          (* 1361 *)
  val n_complexes : int         (* 232 *)
  val n_components : int        (* 33 *)
  val largest_component_proteins : int  (* 1263 *)
  val largest_component_complexes : int (* 99 *)
  val degree_one_proteins : int (* 846 *)
  val max_degree : int          (* 21 *)
  val diameter : int            (* 6 *)
  val average_path : float      (* 2.568 *)
  val powerlaw_log10_c : float  (* 3.161 *)
  val powerlaw_gamma : float    (* 2.528 *)
  val powerlaw_r2 : float       (* 0.963 *)
  val max_core : int            (* 6 *)
  val core_proteins : int       (* 41 *)
  val core_complexes : int      (* 54 *)
  val baits_used : int          (* 589 *)
  val productive_baits : int    (* 459 *)
  val bait_average_degree : float (* 1.85 *)
  val greedy_cover_size : int   (* 109 *)
  val greedy_cover_avg_degree : float (* 3.7 *)
  val weighted_cover_size : int (* 233 *)
  val weighted_cover_avg_degree : float (* 1.14 *)
  val multicover_size : int     (* 558 *)
  val multicover_avg_degree : float (* 1.74 *)
  val multicover_complexes : int (* 229 *)
  val singleton_complexes : int (* 3 *)
end
