(** The upstream TAP pipeline (paper Section 1.1): each tagged bait
    protein yields purifications — the bait plus the proteins
    co-purified with it — and the protein complex data is assembled
    from those records.  This module simulates the pipeline against a
    ground-truth hypergraph and reconstructs a complex hypergraph from
    the noisy purifications, so the effect of bait selection on the
    fidelity of the final network can be measured (bench E18).

    Noise model per (bait, complex) pair: the pull-down succeeds with
    probability [reproducibility]; within a successful pull-down each
    non-bait member is detected with probability [1 - dropout]; and
    each purification picks up a Poisson-ish number of contaminant
    proteins at rate [contamination]. *)

type purification = {
  bait : int;
  preys : int array;   (** sorted, without the bait *)
}

val run_experiment :
  Hp_util.Prng.t ->
  Hp_hypergraph.Hypergraph.t ->
  baits:int array ->
  reproducibility:float ->
  dropout:float ->
  contamination:float ->
  purification list
(** One purification per successful (bait, complex) pull-down. *)

val reconstruct :
  ?merge_threshold:float ->
  n_vertices:int ->
  purification list ->
  Hp_hypergraph.Hypergraph.t
(** Assemble complexes: each purification is the candidate member set
    [{bait} ∪ preys]; candidates whose Jaccard similarity reaches
    [merge_threshold] (default 0.5) are merged transitively and each
    merged group becomes one hyperedge (the union of its candidates). *)

type accuracy = {
  true_complexes : int;     (** non-empty ground-truth complexes *)
  reconstructed : int;
  matched : int;            (** true complexes with a Jaccard >= 0.5 match *)
  spurious : int;           (** reconstructed complexes matching nothing *)
  mean_best_jaccard : float; (** over true complexes *)
}

val compare_to_truth :
  truth:Hp_hypergraph.Hypergraph.t ->
  Hp_hypergraph.Hypergraph.t ->
  accuracy

val jaccard : int array -> int array -> float
(** Jaccard similarity of two sorted vertex sets (1 for two empty
    sets). *)
