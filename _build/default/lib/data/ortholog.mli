(** Cross-organism transfer (paper Section 4: "when we wish to use one
    organism as a model to identify the protein complexes in a related
    organism").

    An ortholog network is modelled as a stochastic perturbation of the
    source hypergraph: memberships are lost (proteins that diverged out
    of a complex), gained (lineage-specific subunits), and whole
    complexes can be missing.  Vertex ids are shared between source and
    ortholog, standing for the ortholog mapping.

    [transfer_report] then measures how well a bait set chosen on the
    source covers the ortholog — the experiment behind the paper's
    suggestion. *)

type t = {
  hypergraph : Hp_hypergraph.Hypergraph.t;
  lost_memberships : int;
  gained_memberships : int;
  dropped_complexes : int;
}

val perturb :
  Hp_util.Prng.t ->
  ?membership_loss:float ->
  ?membership_gain:float ->
  ?complex_loss:float ->
  Hp_hypergraph.Hypergraph.t ->
  t
(** Defaults: 10% of memberships lost, gains equal to 5% of |E| (added
    to random complexes from random vertices), 5% of complexes dropped
    (replaced by empty hyperedges so ids keep their meaning). *)

type transfer_report = {
  baits : int;
  coverable_complexes : int;  (** non-empty ortholog complexes *)
  covered : int;              (** met by at least one transferred bait *)
  covered_twice : int;
  coverage_fraction : float;
}

val transfer_report :
  t -> baits:int array -> transfer_report
(** How the source-chosen bait set performs on the ortholog. *)
