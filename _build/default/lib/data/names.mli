(** Synthetic yeast-style nomenclature: gene names of the form
    three letters + number ("ADH1", "CDC28"), unique within a dataset,
    plus systematic complex names ("CPX001").  Purely cosmetic, but it
    keeps the examples and exports readable and lets the max-degree
    protein carry the name the paper highlights. *)

val gene_names : Hp_util.Prng.t -> int -> string array
(** [gene_names rng n] draws [n] distinct gene names. *)

val complex_names : int -> string array
(** ["CPX001"; "CPX002"; ...]. *)
