module GG = Hp_graph.Graph_gen
module U = Hp_util

type network = {
  graph : Hp_graph.Graph.t;
  planted_core : int array;
  expected_max_core : int;
}

let build ~seed ~n ~core_size ~core_degree ~dmax =
  let rng = U.Prng.create seed in
  let graph =
    GG.planted_core_powerlaw rng ~n ~core_size ~core_degree ~gamma:2.2 ~dmax
  in
  {
    graph;
    planted_core = Array.init core_size Fun.id;
    expected_max_core = core_degree;
  }

let yeast ?(seed = 1103) () =
  build ~seed ~n:4746 ~core_size:33 ~core_degree:10 ~dmax:9

let drosophila ?(seed = 1104) () =
  build ~seed ~n:7048 ~core_size:577 ~core_degree:8 ~dmax:7

module Reported = struct
  let yeast_proteins = 4746
  let yeast_max_core = 10
  let yeast_core_size = 33
  let drosophila_proteins = 7048
  let drosophila_max_core = 8
  let drosophila_core_size = 577
end
