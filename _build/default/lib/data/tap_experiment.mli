(** Simulation of the TAP (tandem affinity purification) experiment's
    reliability (paper Sections 1.1 and 4).

    The Cellzome experiments report a reproducibility of about 70%: a
    tagged bait pulls down each complex it belongs to only with that
    probability.  The paper's argument for the 2-multicover is that
    covering every complex twice makes identification robust to these
    failures.  This module makes the argument quantitative: it runs the
    stochastic experiment for a candidate bait set and measures how
    much of the complex network is actually recovered. *)

type outcome = {
  identified : bool array;
  (** Per hyperedge: pulled down by at least one bait this run. *)
  pulls : int array;
  (** Per hyperedge: number of baits that successfully pulled it. *)
  successful_baits : int;
  (** Baits that pulled down at least one complex. *)
}

val simulate :
  Hp_util.Prng.t ->
  Hp_hypergraph.Hypergraph.t ->
  baits:int array ->
  reproducibility:float ->
  outcome
(** One run: every (bait, complex it belongs to) pair succeeds
    independently with probability [reproducibility]. *)

type reliability = {
  trials : int;
  mean_identified_fraction : float;
  (** Mean fraction of coverable complexes identified per run.  A
      complex is coverable when some bait belongs to it. *)
  mean_twice_identified_fraction : float;
  (** Mean fraction pulled down at least twice (confident calls). *)
  always_identified : int;
  (** Complexes identified in every trial. *)
  never_identified : int;
  (** Coverable complexes missed in every trial. *)
  coverable : int;
}

val assess :
  Hp_util.Prng.t ->
  Hp_hypergraph.Hypergraph.t ->
  baits:int array ->
  reproducibility:float ->
  trials:int ->
  reliability
(** Monte-Carlo estimate over [trials] independent runs. *)
