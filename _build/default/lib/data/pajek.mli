(** Pajek export of the bipartite hypergraph drawing (paper Figure 3,
    which the authors produced with Pajek).

    [network] renders B(H) as a `.net` file: protein nodes first, then
    complex nodes, one arc per membership.  [core_partition] renders a
    `.clu` class file distinguishing the four node classes of the
    figure: periphery protein, core protein, periphery complex, core
    complex. *)

val network : Hp_hypergraph.Hypergraph.t -> string

val core_partition :
  Hp_hypergraph.Hypergraph.t ->
  core_vertices:int array ->
  core_edges:int array ->
  string

val write_figure3 :
  dir:string ->
  prefix:string ->
  Hp_hypergraph.Hypergraph.t ->
  core_vertices:int array ->
  core_edges:int array ->
  string * string
(** Writes [<prefix>.net] and [<prefix>.clu] under [dir] (created if
    missing) and returns both paths. *)
