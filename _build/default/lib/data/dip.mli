(** Synthetic protein-protein interaction networks standing in for the
    DIP (Database of Interacting Proteins, Nov 2003) graphs of paper
    Section 3: power-law graphs with a planted dense subgraph sized to
    reproduce the published maximum cores.

    - Yeast: 4746 proteins; max core k = 10 with 33 proteins.
    - Drosophila: 7048 proteins; max core k = 8 with 577 proteins
      (the paper's protein total for the fruit fly is garbled in the
      source scan; 7048 follows Giot et al. 2003, its reference [4]).

    Periphery degrees are capped below the planted core degree so the
    planted core is the maximum one (see DESIGN.md). *)

type network = {
  graph : Hp_graph.Graph.t;
  planted_core : int array;     (** vertices of the planted dense set *)
  expected_max_core : int;
}

val yeast : ?seed:int -> unit -> network

val drosophila : ?seed:int -> unit -> network

module Reported : sig
  val yeast_proteins : int      (* 4746 *)
  val yeast_max_core : int      (* 10 *)
  val yeast_core_size : int     (* 33 *)
  val drosophila_proteins : int (* 7048 *)
  val drosophila_max_core : int (* 8 *)
  val drosophila_core_size : int (* 577 *)
end
