module U = Hp_util
module H = Hp_hypergraph.Hypergraph

type annotation = {
  known : bool;
  essential : bool;
  has_homolog : bool;
}

type t = {
  by_protein : annotation array;
  genome_essential : int;
  genome_nonessential : int;
}

(* Core-conditional rates matching the paper's counts: 9/41 unknown,
   22/32 of known essential, 24/41 homologous. *)
let core_unknown_rate = 9.0 /. 41.0
let core_essential_rate = 22.0 /. 32.0
let core_homolog_rate = 24.0 /. 41.0

(* Genome-wide: 878 essential of 4036 characterized genes; roughly a
   third of the proteome uncharacterized circa 2002; homologs reported
   for about a third of proteins. *)
let base_unknown_rate = 0.30
let base_essential_rate = 878.0 /. (878.0 +. 3158.0)
let base_homolog_rate = 0.35

let generate rng dataset =
  let h = dataset.Cellzome.hypergraph in
  let n = H.n_vertices h in
  let in_core = Array.make n false in
  Array.iter (fun v -> in_core.(v) <- true) dataset.Cellzome.core_proteins;
  let by_protein =
    Array.init n (fun v ->
        let unknown_rate, essential_rate, homolog_rate =
          if in_core.(v) then (core_unknown_rate, core_essential_rate, core_homolog_rate)
          else (base_unknown_rate, base_essential_rate, base_homolog_rate)
        in
        let known = not (U.Prng.bool rng unknown_rate) in
        {
          known;
          essential = known && U.Prng.bool rng essential_rate;
          has_homolog = U.Prng.bool rng homolog_rate;
        })
  in
  { by_protein; genome_essential = 878; genome_nonessential = 3158 }

type core_report = {
  core_size : int;
  unknown : int;
  known_essential : int;
  known_total : int;
  homologs : int;
  essential_enrichment : Hp_stats.Hypergeom.enrichment;
}

let core_report t ~protein_ids =
  let unknown = ref 0 and known_essential = ref 0 and known_total = ref 0 in
  let homologs = ref 0 in
  Array.iter
    (fun v ->
      let a = t.by_protein.(v) in
      if a.known then begin
        incr known_total;
        if a.essential then incr known_essential
      end
      else incr unknown;
      if a.has_homolog then incr homologs)
    protein_ids;
  let enrichment =
    Hp_stats.Hypergeom.test
      ~population:(t.genome_essential + t.genome_nonessential)
      ~labelled:t.genome_essential ~sample:!known_total ~hits:!known_essential
  in
  {
    core_size = Array.length protein_ids;
    unknown = !unknown;
    known_essential = !known_essential;
    known_total = !known_total;
    homologs = !homologs;
    essential_enrichment = enrichment;
  }
