module U = Hp_util

(* Common yeast gene-family prefixes; combined with a numeric suffix
   they read like real systematic names. *)
let prefixes =
  [|
    "ACT"; "ADE"; "ALD"; "ARO"; "ATP"; "BEM"; "CDC"; "CLN"; "COX"; "CPA";
    "DBP"; "DED"; "EFT"; "ENO"; "ERG"; "FAS"; "GCN"; "GLN"; "GPD"; "HIS";
    "HSP"; "ILV"; "KAP"; "LEU"; "LYS"; "MET"; "MYO"; "NOP"; "PAB"; "PDC";
    "PGK"; "PHO"; "PMA"; "POL"; "PRE"; "PRT"; "RAD"; "RPB"; "RPL"; "RPS";
    "RRP"; "SEC"; "SNF"; "SPT"; "SSA"; "STE"; "TEF"; "TIF"; "TUB"; "URA";
  |]

let gene_names rng n =
  (* Numeric suffixes sized so the name space stays several times
     larger than the request (rejection sampling would stall once the
     space fills up). *)
  let suffix_bound = max 99 (n / 10) in
  let seen = Hashtbl.create (2 * n) in
  let out = Array.make n "" in
  let made = ref 0 in
  while !made < n do
    let prefix = U.Prng.choose rng prefixes in
    let num = 1 + U.Prng.int rng suffix_bound in
    let name = Printf.sprintf "%s%d" prefix num in
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      out.(!made) <- name;
      incr made
    end
  done;
  out

let complex_names n = Array.init n (fun i -> Printf.sprintf "CPX%03d" (i + 1))
