module U = Hp_util
module H = Hp_hypergraph.Hypergraph

type purification = {
  bait : int;
  preys : int array;
}

let jaccard a b =
  let inter = U.Sorted.inter_count a b in
  let union = Array.length a + Array.length b - inter in
  if union = 0 then 1.0 else float_of_int inter /. float_of_int union

let run_experiment rng h ~baits ~reproducibility ~dropout ~contamination =
  if reproducibility < 0.0 || reproducibility > 1.0 then
    invalid_arg "Purification.run_experiment: reproducibility out of [0,1]";
  if dropout < 0.0 || dropout > 1.0 then
    invalid_arg "Purification.run_experiment: dropout out of [0,1]";
  if contamination < 0.0 then
    invalid_arg "Purification.run_experiment: negative contamination";
  let nv = H.n_vertices h in
  let out = ref [] in
  Array.iter
    (fun b ->
      Array.iter
        (fun e ->
          if U.Prng.bool rng reproducibility then begin
            let preys = U.Dynarray.create ~dummy:0 () in
            Array.iter
              (fun v ->
                if v <> b && not (U.Prng.bool rng dropout) then
                  U.Dynarray.push preys v)
              (H.edge_members h e);
            (* Contaminants: geometric-ish tail at the given rate. *)
            let rec contaminate () =
              if nv > 0 && U.Prng.bool rng contamination then begin
                U.Dynarray.push preys (U.Prng.int rng nv);
                contaminate ()
              end
            in
            contaminate ();
            out :=
              { bait = b; preys = U.Sorted.of_array (U.Dynarray.to_array preys) }
              :: !out
          end)
        (H.vertex_edges h b))
    baits;
  List.rev !out

let reconstruct ?(merge_threshold = 0.5) ~n_vertices purifications =
  let candidates =
    Array.of_list
      (List.map
         (fun p -> U.Sorted.union [| p.bait |] p.preys)
         purifications)
  in
  let n = Array.length candidates in
  let ds = U.Disjoint_set.create (max n 1) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if jaccard candidates.(i) candidates.(j) >= merge_threshold then
        ignore (U.Disjoint_set.union ds i j)
    done
  done;
  let members =
    if n = 0 then [||]
    else
      U.Disjoint_set.groups ds
      |> Array.map (fun group ->
             List.fold_left
               (fun acc i -> U.Sorted.union acc candidates.(i))
               [||] group)
  in
  (* Drop singleton groups from the empty-candidate corner case. *)
  let members = Array.of_list (List.filter (fun m -> Array.length m > 0) (Array.to_list members)) in
  H.of_arrays ~n_vertices members

type accuracy = {
  true_complexes : int;
  reconstructed : int;
  matched : int;
  spurious : int;
  mean_best_jaccard : float;
}

let compare_to_truth ~truth reconstructed =
  let recon_sets =
    Array.init (H.n_edges reconstructed) (H.edge_members reconstructed)
  in
  let truth_sets =
    Array.to_list (Array.init (H.n_edges truth) (H.edge_members truth))
    |> List.filter (fun s -> Array.length s > 0)
    |> Array.of_list
  in
  let best_for s =
    Array.fold_left (fun acc r -> max acc (jaccard s r)) 0.0 recon_sets
  in
  let matched = ref 0 and jsum = ref 0.0 in
  Array.iter
    (fun s ->
      let j = best_for s in
      jsum := !jsum +. j;
      if j >= 0.5 then incr matched)
    truth_sets;
  let spurious = ref 0 in
  Array.iter
    (fun r ->
      let best =
        Array.fold_left (fun acc s -> max acc (jaccard r s)) 0.0 truth_sets
      in
      if best < 0.5 then incr spurious)
    recon_sets;
  let nt = Array.length truth_sets in
  {
    true_complexes = nt;
    reconstructed = Array.length recon_sets;
    matched = !matched;
    spurious = !spurious;
    mean_best_jaccard = (if nt = 0 then 0.0 else !jsum /. float_of_int nt);
  }
