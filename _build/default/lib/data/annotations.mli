(** Synthetic protein annotations (essentiality, homology, functional
    characterization) standing in for the Saccharomyces Genome Database
    and the Comprehensive Yeast Genome Database lookups of paper
    Section 3.

    Calibration (see DESIGN.md): the genome-wide base rates follow the
    paper (878 essential vs. 3158 non-essential genes); planted-core
    proteins are annotated so that about 9/41 are of unknown function,
    about 22/32 of the known ones are essential, and about 24/41 have
    reported homologs.  Non-core proteins follow the base rates. *)

type annotation = {
  known : bool;          (** protein function is characterized *)
  essential : bool;      (** gene deletion is lethal (only meaningful
                             when [known]) *)
  has_homolog : bool;    (** homolog reported in another organism *)
}

type t = {
  by_protein : annotation array;
  genome_essential : int;      (** 878 *)
  genome_nonessential : int;   (** 3158 *)
}

val generate : Hp_util.Prng.t -> Cellzome.dataset -> t

type core_report = {
  core_size : int;
  unknown : int;               (** proteins of unknown function *)
  known_essential : int;       (** essential among the known ones *)
  known_total : int;
  homologs : int;
  essential_enrichment : Hp_stats.Hypergeom.enrichment;
  (** essential-in-core vs. the genome base rate, over known proteins *)
}

val core_report : t -> protein_ids:int array -> core_report
(** The paper's Section 3 readout for an arbitrary protein set (the
    maximum core in the experiments). *)
