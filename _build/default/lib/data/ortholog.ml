module U = Hp_util
module H = Hp_hypergraph.Hypergraph

type t = {
  hypergraph : H.t;
  lost_memberships : int;
  gained_memberships : int;
  dropped_complexes : int;
}

let perturb rng ?(membership_loss = 0.10) ?(membership_gain = 0.05)
    ?(complex_loss = 0.05) h =
  let nv = H.n_vertices h and ne = H.n_edges h in
  let members =
    Array.init ne (fun e ->
        let tbl = Hashtbl.create (1 + H.edge_size h e) in
        Array.iter (fun v -> Hashtbl.replace tbl v ()) (H.edge_members h e);
        tbl)
  in
  let dropped = ref 0 and lost = ref 0 and gained = ref 0 in
  for e = 0 to ne - 1 do
    if U.Prng.bool rng complex_loss then begin
      incr dropped;
      Hashtbl.reset members.(e)
    end
    else begin
      (* Lose memberships independently, but keep at least one member
         so a surviving complex stays observable. *)
      let ms = H.edge_members h e in
      Array.iter
        (fun v ->
          if Hashtbl.length members.(e) > 1 && U.Prng.bool rng membership_loss
          then begin
            Hashtbl.remove members.(e) v;
            incr lost
          end)
        ms
    end
  done;
  let gains = int_of_float (membership_gain *. float_of_int (H.total_incidence h)) in
  if nv > 0 && ne > 0 then
    for _ = 1 to gains do
      let e = U.Prng.int rng ne in
      (* Dropped complexes stay dropped. *)
      if Hashtbl.length members.(e) > 0 then begin
        let v = U.Prng.int rng nv in
        if not (Hashtbl.mem members.(e) v) then begin
          Hashtbl.replace members.(e) v ();
          incr gained
        end
      end
    done;
  let arrays =
    Array.map
      (fun tbl -> Array.of_list (Hashtbl.fold (fun v () acc -> v :: acc) tbl []))
      members
  in
  let vertex_names = Some (Array.init nv (fun v -> H.vertex_name h v)) in
  let edge_names = Some (Array.init ne (fun e -> H.edge_name h e)) in
  {
    hypergraph =
      H.of_arrays ?vertex_names ?edge_names ~n_vertices:nv arrays;
    lost_memberships = !lost;
    gained_memberships = !gained;
    dropped_complexes = !dropped;
  }

type transfer_report = {
  baits : int;
  coverable_complexes : int;
  covered : int;
  covered_twice : int;
  coverage_fraction : float;
}

let transfer_report t ~baits =
  let h = t.hypergraph in
  let cov = Hp_cover.Cover.coverage h baits in
  let coverable = ref 0 and covered = ref 0 and twice = ref 0 in
  Array.iteri
    (fun e c ->
      if H.edge_size h e > 0 then begin
        incr coverable;
        if c >= 1 then incr covered;
        if c >= 2 then incr twice
      end)
    cov;
  {
    baits = Array.length baits;
    coverable_complexes = !coverable;
    covered = !covered;
    covered_twice = !twice;
    coverage_fraction =
      (if !coverable = 0 then 0.0
       else float_of_int !covered /. float_of_int !coverable);
  }
