(** Parameterized synthetic proteome generator.

    Generalizes the construction behind [Cellzome] (see DESIGN.md for
    the planting arguments) so protein complex hypergraphs can be
    synthesized at any scale — the paper closes by noting that studies
    "that scale to the human proteome ... will require high performance
    algorithms and software", and the E19 scaling bench measures
    exactly that on instances produced here.

    Construction, in brief: a planted core of [core_proteins], each in
    exactly [core_membership] core complexes whose core-restricted
    member sets form an antichain (so the planted core is precisely the
    maximum core); a giant periphery with power-law degrees, local
    window attachment, degree-2 linker chains and nested hub prefixes;
    small satellite components; and singleton complexes. *)

type params = {
  core_proteins : int;
  core_complexes : int;
  core_membership : int;   (** exact core-complex count per core protein = max core *)
  free_periphery : int;    (** giant-component proteins beyond core/hub/linkers *)
  periphery_complexes : int; (** giant complexes beyond the core ones *)
  hub_degree : int;        (** degree of the single named hub (<= periphery_complexes) *)
  satellites : int;        (** number of small components *)
  satellite_pool : int;    (** proteins per satellite *)
  satellite_complexes : int; (** complexes per satellite *)
  singletons : int;        (** singleton complexes (their own components) *)
  gamma : float;           (** periphery degree exponent *)
  max_free_degree : int;   (** cap on sampled periphery degrees *)
  attachment_window : int; (** locality of multi-complex membership *)
}

val cellzome_params : params
(** The calibration behind [Cellzome.paper]. *)

val scaled : params -> float -> params
(** Multiply all the size fields (not exponents, memberships or
    windows) by the factor, rounding, with sane minima. *)

type proteome = {
  hypergraph : Hp_hypergraph.Hypergraph.t;
  core_proteins : int array;
  core_complexes : int array;
  hub : int;  (** vertex id of the max-degree hub *)
}

val generate : ?hub_name:string -> Hp_util.Prng.t -> params -> proteome
(** Deterministic in the PRNG state.  [hub_name] overrides the drawn
    gene name of the hub (the Cellzome instance names it ADH1).  Raises
    [Invalid_argument] on inconsistent parameters (e.g. hub degree
    above the available periphery complexes). *)
