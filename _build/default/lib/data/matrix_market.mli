(** MatrixMarket coordinate-format sparse matrices and their hypergraph
    view (paper Section 3, Table 1: the authors ran their hypergraph
    core algorithm on matrices from math.nist.gov/MatrixMarket).

    The hypergraph view is the row-net model used in sparse-matrix
    partitioning: each column is a vertex and each row is a hyperedge
    containing the columns where the row has a nonzero.

    Because the container is sealed, [synthetic_suite] generates
    structured matrices of the same orders of magnitude as the paper's
    bfw / fidap / stk / utm instances; real [.mtx] files can be fed
    through [read] unchanged. *)

type symmetry = General | Symmetric

type t = {
  rows : int;
  cols : int;
  entries : (int * int) array;
  (** 0-based (row, col), deduplicated, sorted; for [Symmetric] only
      the lower triangle (row >= col) is stored. *)
  symmetry : symmetry;
}

val nnz : t -> int
(** Stored entries (symmetric matrices count the triangle). *)

val create : rows:int -> cols:int -> ?symmetry:symmetry -> (int * int) list -> t
(** Validates ranges; deduplicates; for [Symmetric] requires square and
    canonicalizes entries to the lower triangle. *)

(** {1 I/O} *)

val parse : string -> t
(** Parses the coordinate format ([pattern], [real] or [integer]
    fields; [general] or [symmetric]).  Values are discarded — the
    hypergraph view only needs the pattern.  Raises [Failure] with a
    message on malformed input. *)

val read : string -> t

val to_string : t -> string
(** Pattern coordinate format, 1-based indices. *)

val write : string -> t -> unit

(** {1 Hypergraph view} *)

val to_hypergraph : t -> Hp_hypergraph.Hypergraph.t
(** Rows become hyperedges over column vertices; a symmetric matrix is
    expanded to its full pattern first. *)

(** {1 Synthetic instances} *)

val banded : Hp_util.Prng.t -> n:int -> bandwidth:int -> fill:float -> t
(** Square matrix with nonzeros only within the band, each band slot
    kept with probability [fill]; diagonal always present. *)

val random_rect : Hp_util.Prng.t -> rows:int -> cols:int -> nnz:int -> t
(** Uniform random pattern with one guaranteed nonzero per row. *)

val block_structured : Hp_util.Prng.t -> n:int -> block:int -> fill:float -> noise:int -> t
(** Dense-ish diagonal blocks plus [noise] random off-block entries —
    the shape of assembled finite-element matrices. *)

val synthetic_suite : ?seed:int -> unit -> (string * t) list
(** The Table-1 stand-ins, smallest first: bfw398-like, fidap035-like,
    stk21-like, utm5940-like, fidapm11-like. *)
