module H = Hp_hypergraph.Hypergraph

let network h =
  let nv = H.n_vertices h and ne = H.n_edges h in
  let buf = Buffer.create (64 * (nv + ne)) in
  Buffer.add_string buf (Printf.sprintf "*Vertices %d\n" (nv + ne));
  for v = 0 to nv - 1 do
    Buffer.add_string buf (Printf.sprintf "%d \"%s\"\n" (v + 1) (H.vertex_name h v))
  done;
  for e = 0 to ne - 1 do
    Buffer.add_string buf (Printf.sprintf "%d \"%s\"\n" (nv + e + 1) (H.edge_name h e))
  done;
  Buffer.add_string buf "*Edges\n";
  for e = 0 to ne - 1 do
    Array.iter
      (fun v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" (v + 1) (nv + e + 1)))
      (H.edge_members h e)
  done;
  Buffer.contents buf

(* Classes follow Figure 3's colouring: 0 periphery protein (yellow),
   1 core protein (red), 2 periphery complex (pink), 3 core complex
   (green). *)
let core_partition h ~core_vertices ~core_edges =
  let nv = H.n_vertices h and ne = H.n_edges h in
  let klass = Array.make (nv + ne) 0 in
  for e = 0 to ne - 1 do
    klass.(nv + e) <- 2
  done;
  Array.iter (fun v -> klass.(v) <- 1) core_vertices;
  Array.iter (fun e -> klass.(nv + e) <- 3) core_edges;
  let buf = Buffer.create (8 * (nv + ne)) in
  Buffer.add_string buf (Printf.sprintf "*Vertices %d\n" (nv + ne));
  Array.iter (fun k -> Buffer.add_string buf (Printf.sprintf "%d\n" k)) klass;
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let write_figure3 ~dir ~prefix h ~core_vertices ~core_edges =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let net = Filename.concat dir (prefix ^ ".net") in
  let clu = Filename.concat dir (prefix ^ ".clu") in
  write_file net (network h);
  write_file clu (core_partition h ~core_vertices ~core_edges);
  (net, clu)
