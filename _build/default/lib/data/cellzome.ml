module U = Hp_util
module H = Hp_hypergraph.Hypergraph

type dataset = {
  hypergraph : H.t;
  core_proteins : int array;
  core_complexes : int array;
  adh1 : int;
  historical_baits : int array;
}

(* Historical baits: 459 proteins whose mean degree tracks the reported
   1.85; greedy pick over degree buckets toward the target sum. *)
let pick_historical_baits h =
  let target_picks = 459 in
  let target_sum = 849 (* 459 * 1.85, rounded *) in
  let by_degree = Hashtbl.create 32 in
  for v = 0 to H.n_vertices h - 1 do
    let d = H.vertex_degree h v in
    if d > 0 then begin
      let cell =
        match Hashtbl.find_opt by_degree d with
        | Some cell -> cell
        | None ->
          let cell = ref [] in
          Hashtbl.add by_degree d cell;
          cell
      in
      cell := v :: !cell
    end
  done;
  let buf = U.Dynarray.create ~dummy:0 () in
  let sum = ref 0 in
  while U.Dynarray.length buf < target_picks do
    let remaining = target_picks - U.Dynarray.length buf in
    let want =
      int_of_float
        (Float.round (float_of_int (target_sum - !sum) /. float_of_int remaining))
    in
    (* Closest non-empty degree bucket to the per-pick budget. *)
    let best = ref (-1) in
    Hashtbl.iter
      (fun d cell ->
        if !cell <> [] && (!best < 0 || abs (d - want) < abs (!best - want)) then
          best := d)
      by_degree;
    match Hashtbl.find_opt by_degree !best with
    | Some ({ contents = v :: rest } as cell) ->
      cell := rest;
      U.Dynarray.push buf v;
      sum := !sum + !best
    | Some { contents = [] } | None -> failwith "Cellzome: bait pool exhausted"
  done;
  U.Dynarray.to_array buf

let generate ?(seed = 2004) () =
  let rng = U.Prng.create seed in
  let p =
    Proteome_gen.generate ~hub_name:"ADH1" rng Proteome_gen.cellzome_params
  in
  {
    hypergraph = p.hypergraph;
    core_proteins = p.core_proteins;
    core_complexes = p.core_complexes;
    adh1 = p.hub;
    historical_baits = pick_historical_baits p.hypergraph;
  }

let paper () = generate ~seed:2004 ()

module Reported = struct
  let n_proteins = 1361
  let n_complexes = 232
  let n_components = 33
  let largest_component_proteins = 1263
  let largest_component_complexes = 99
  let degree_one_proteins = 846
  let max_degree = 21
  let diameter = 6
  let average_path = 2.568
  let powerlaw_log10_c = 3.161
  let powerlaw_gamma = 2.528
  let powerlaw_r2 = 0.963
  let max_core = 6
  let core_proteins = 41
  let core_complexes = 54
  let baits_used = 589
  let productive_baits = 459
  let bait_average_degree = 1.85
  let greedy_cover_size = 109
  let greedy_cover_avg_degree = 3.7
  let weighted_cover_size = 233
  let weighted_cover_avg_degree = 1.14
  let multicover_size = 558
  let multicover_avg_degree = 1.74
  let multicover_complexes = 229
  let singleton_complexes = 3
end
