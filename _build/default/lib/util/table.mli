(** Plain-text table rendering for the experiment harness, so the bench
    output mirrors the layout of the paper's Table 1. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] lays out the rows under the header with
    column widths fitted to content, a separator rule, and two-space
    gutters.  [align] gives per-column alignment (default: first column
    left, the rest right); missing entries default likewise. *)

val fmt_float : ?digits:int -> float -> string
(** Fixed-point formatting with trailing-zero trimming, e.g.
    [fmt_float ~digits:3 2.5280] = ["2.528"]. *)

val fmt_time : float -> string
(** Seconds rendered in the paper's legend style: ["0.47 s"],
    ["2.1 m"], ["1.3 h"]. *)
