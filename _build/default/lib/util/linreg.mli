(** Ordinary least squares for a single predictor, with the coefficient
    of determination the paper uses to assess the power-law fit:
    R^2 = 1 - (r^T r) / (y~^T y~) where r is the residual vector and y~
    the dependent variable in deviations from its mean. *)

type fit = {
  slope : float;
  intercept : float;
  r2 : float;
  n : int;
}

val fit : (float * float) array -> fit
(** Least squares [y = intercept + slope * x].  Requires at least two
    points with distinct x values. *)

val residuals : fit -> (float * float) array -> float array

val predict : fit -> float -> float

val mean : float array -> float

val variance : float array -> float
(** Population variance (divides by n). *)

val stddev : float array -> float
