type t = {
  parent : int array;
  rank : int array;
  size : int array;
  mutable count : int;
}

let create n = {
  parent = Array.init n (fun i -> i);
  rank = Array.make n 0;
  size = Array.make n 1;
  count = n;
}

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let r = find t p in
    t.parent.(x) <- r;
    r
  end

let union t x y =
  let rx = find t x and ry = find t y in
  if rx = ry then false
  else begin
    let rx, ry = if t.rank.(rx) < t.rank.(ry) then ry, rx else rx, ry in
    t.parent.(ry) <- rx;
    t.size.(rx) <- t.size.(rx) + t.size.(ry);
    if t.rank.(rx) = t.rank.(ry) then t.rank.(rx) <- t.rank.(rx) + 1;
    t.count <- t.count - 1;
    true
  end

let same t x y = find t x = find t y

let count t = t.count

let size_of t x = t.size.(find t x)

let groups t =
  let n = Array.length t.parent in
  let index = Hashtbl.create 16 in
  let acc = ref [] in
  let ngroups = ref 0 in
  for x = 0 to n - 1 do
    let r = find t x in
    match Hashtbl.find_opt index r with
    | Some cell -> cell := x :: !cell
    | None ->
      let cell = ref [ x ] in
      Hashtbl.add index r cell;
      acc := cell :: !acc;
      incr ngroups
  done;
  let out = Array.make !ngroups [] in
  List.iteri (fun i cell -> out.(i) <- List.rev !cell) !acc;
  out
