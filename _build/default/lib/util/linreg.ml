type fit = {
  slope : float;
  intercept : float;
  r2 : float;
  n : int;
}

let mean a =
  if Array.length a = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let m = mean a in
    Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a /. float_of_int n
  end

let stddev a = sqrt (variance a)

let fit points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Linreg.fit: need at least two points";
  let xs = Array.map fst points and ys = Array.map snd points in
  let mx = mean xs and my = mean ys in
  let sxx = ref 0.0 and sxy = ref 0.0 and syy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      let dx = x -. mx and dy = y -. my in
      sxx := !sxx +. (dx *. dx);
      sxy := !sxy +. (dx *. dy);
      syy := !syy +. (dy *. dy))
    points;
  if !sxx = 0.0 then invalid_arg "Linreg.fit: degenerate x values";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let ss_res = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      let r = y -. (intercept +. (slope *. x)) in
      ss_res := !ss_res +. (r *. r))
    points;
  let r2 = if !syy = 0.0 then 1.0 else 1.0 -. (!ss_res /. !syy) in
  { slope; intercept; r2; n }

let predict f x = f.intercept +. (f.slope *. x)

let residuals f points = Array.map (fun (x, y) -> y -. predict f x) points
