(** Binary min-heap of integer payloads with float priorities.

    Supports the lazy-deletion pattern used by the greedy cover
    algorithms: stale entries are simply popped and discarded or
    re-inserted with a fresh priority. *)

type t

val create : unit -> t

val size : t -> int

val is_empty : t -> bool

val push : t -> priority:float -> int -> unit

val pop : t -> (float * int) option
(** Remove and return a minimum-priority entry. *)

val peek : t -> (float * int) option
