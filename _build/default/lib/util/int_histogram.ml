type t = {
  counts : (int, int) Hashtbl.t;
  mutable total : int;
  mutable max_value : int;
}

let empty () = { counts = Hashtbl.create 64; total = 0; max_value = -1 }

let add t v =
  if v < 0 then invalid_arg "Int_histogram: negative value";
  let c = Option.value (Hashtbl.find_opt t.counts v) ~default:0 in
  Hashtbl.replace t.counts v (c + 1);
  t.total <- t.total + 1;
  if v > t.max_value then t.max_value <- v

let of_array a =
  let t = empty () in
  Array.iter (add t) a;
  t

let of_iter iter =
  let t = empty () in
  iter (add t);
  t

let count t v = Option.value (Hashtbl.find_opt t.counts v) ~default:0

let total t = t.total

let max_value t =
  if t.total = 0 then invalid_arg "Int_histogram.max_value: empty";
  t.max_value

let support t =
  Hashtbl.fold (fun v c acc -> (v, c) :: acc) t.counts []
  |> List.sort compare

let mean t =
  if t.total = 0 then 0.0
  else begin
    let s = Hashtbl.fold (fun v c acc -> acc + (v * c)) t.counts 0 in
    float_of_int s /. float_of_int t.total
  end

let mode t =
  if t.total = 0 then invalid_arg "Int_histogram.mode: empty";
  let best = ref (-1) and best_count = ref (-1) in
  List.iter
    (fun (v, c) -> if c > !best_count then begin best := v; best_count := c end)
    (support t);
  !best

let cumulative_ge t v =
  Hashtbl.fold (fun value c acc -> if value >= v then acc + c else acc) t.counts 0
