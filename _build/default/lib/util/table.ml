type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with
    | Left -> s ^ fill
    | Right -> fill ^ s
  end

let render ?(align = []) ~header rows =
  let ncols =
    List.fold_left (fun acc row -> max acc (List.length row)) (List.length header) rows
  in
  let cell row i = match List.nth_opt row i with Some s -> s | None -> "" in
  let widths =
    Array.init ncols (fun i ->
        List.fold_left
          (fun acc row -> max acc (String.length (cell row i)))
          (String.length (cell header i))
          rows)
  in
  let align_of i =
    match List.nth_opt align i with
    | Some a -> a
    | None -> if i = 0 then Left else Right
  in
  let render_row row =
    String.concat "  "
      (List.init ncols (fun i -> pad (align_of i) widths.(i) (cell row i)))
  in
  let rule =
    String.concat "  " (List.init ncols (fun i -> String.make widths.(i) '-'))
  in
  String.concat "\n" (render_row header :: rule :: List.map render_row rows)

let fmt_float ?(digits = 3) x =
  let s = Printf.sprintf "%.*f" digits x in
  if String.contains s '.' then begin
    let n = ref (String.length s) in
    while !n > 1 && s.[!n - 1] = '0' do decr n done;
    if !n > 1 && s.[!n - 1] = '.' then decr n;
    String.sub s 0 !n
  end
  else s

let fmt_time seconds =
  if seconds < 60.0 then Printf.sprintf "%s s" (fmt_float ~digits:3 seconds)
  else if seconds < 3600.0 then Printf.sprintf "%s m" (fmt_float ~digits:2 (seconds /. 60.0))
  else Printf.sprintf "%s h" (fmt_float ~digits:2 (seconds /. 3600.0))
