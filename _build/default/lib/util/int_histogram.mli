(** Frequency tables over non-negative integers (degree histograms). *)

type t

val of_array : int array -> t
(** Tally an array of non-negative values.  Raises [Invalid_argument]
    on a negative value. *)

val of_iter : ((int -> unit) -> unit) -> t
(** [of_iter iter] tallies every value produced by [iter]. *)

val count : t -> int -> int
(** Occurrences of a value (0 if never seen). *)

val total : t -> int
(** Number of tallied observations. *)

val max_value : t -> int
(** Largest observed value; raises [Invalid_argument] when empty. *)

val support : t -> (int * int) list
(** [(value, count)] pairs with positive count, in increasing value
    order. *)

val mean : t -> float

val mode : t -> int
(** A value with the highest count (smallest such value). *)

val cumulative_ge : t -> int -> int
(** [cumulative_ge t v] is the number of observations [>= v]. *)
