let dedup_sorted a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n a.(0) in
    let j = ref 0 in
    for i = 1 to n - 1 do
      if a.(i) <> out.(!j) then begin
        incr j;
        out.(!j) <- a.(i)
      end
    done;
    Array.sub out 0 (!j + 1)
  end

let of_array a =
  let b = Array.copy a in
  Array.sort compare b;
  dedup_sorted b

let of_list l = of_array (Array.of_list l)

let is_sorted_strict a =
  let rec loop i = i >= Array.length a || (a.(i - 1) < a.(i) && loop (i + 1)) in
  loop 1

let mem a x =
  let rec loop lo hi =
    if lo >= hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if a.(mid) = x then true
      else if a.(mid) < x then loop (mid + 1) hi
      else loop lo mid
    end
  in
  loop 0 (Array.length a)

let subset a b =
  let na = Array.length a and nb = Array.length b in
  let rec loop i j =
    if i = na then true
    else if j = nb then false
    else if a.(i) = b.(j) then loop (i + 1) (j + 1)
    else if a.(i) > b.(j) then loop i (j + 1)
    else false
  in
  loop 0 0

let inter_count a b =
  let na = Array.length a and nb = Array.length b in
  let rec loop i j acc =
    if i = na || j = nb then acc
    else if a.(i) = b.(j) then loop (i + 1) (j + 1) (acc + 1)
    else if a.(i) < b.(j) then loop (i + 1) j acc
    else loop i (j + 1) acc
  in
  loop 0 0 0

let inter a b =
  let buf = Dynarray.create ~dummy:0 () in
  let na = Array.length a and nb = Array.length b in
  let rec loop i j =
    if i < na && j < nb then
      if a.(i) = b.(j) then begin
        Dynarray.push buf a.(i);
        loop (i + 1) (j + 1)
      end
      else if a.(i) < b.(j) then loop (i + 1) j
      else loop i (j + 1)
  in
  loop 0 0;
  Dynarray.to_array buf

let union a b =
  let buf = Dynarray.create ~dummy:0 () in
  let na = Array.length a and nb = Array.length b in
  let rec loop i j =
    if i = na then
      for k = j to nb - 1 do Dynarray.push buf b.(k) done
    else if j = nb then
      for k = i to na - 1 do Dynarray.push buf a.(k) done
    else if a.(i) = b.(j) then begin
      Dynarray.push buf a.(i);
      loop (i + 1) (j + 1)
    end
    else if a.(i) < b.(j) then begin
      Dynarray.push buf a.(i);
      loop (i + 1) j
    end
    else begin
      Dynarray.push buf b.(j);
      loop i (j + 1)
    end
  in
  loop 0 0;
  Dynarray.to_array buf

let diff a b =
  let buf = Dynarray.create ~dummy:0 () in
  let na = Array.length a and nb = Array.length b in
  let rec loop i j =
    if i = na then ()
    else if j = nb then
      for k = i to na - 1 do Dynarray.push buf a.(k) done
    else if a.(i) = b.(j) then loop (i + 1) (j + 1)
    else if a.(i) < b.(j) then begin
      Dynarray.push buf a.(i);
      loop (i + 1) j
    end
    else loop i (j + 1)
  in
  loop 0 0;
  Dynarray.to_array buf

let remove a x =
  if not (mem a x) then a
  else begin
    let out = Array.make (Array.length a - 1) 0 in
    let j = ref 0 in
    Array.iter
      (fun v ->
        if v <> x then begin
          out.(!j) <- v;
          incr j
        end)
      a;
    out
  end

let equal a b = a = b
