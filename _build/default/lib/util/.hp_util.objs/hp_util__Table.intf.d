lib/util/table.mli:
