lib/util/linreg.mli:
