lib/util/dynarray.mli:
