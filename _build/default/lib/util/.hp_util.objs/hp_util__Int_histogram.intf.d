lib/util/int_histogram.mli:
