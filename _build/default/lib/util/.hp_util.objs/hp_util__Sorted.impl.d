lib/util/sorted.ml: Array Dynarray
