lib/util/int_histogram.ml: Array Hashtbl List Option
