lib/util/sorted.mli:
