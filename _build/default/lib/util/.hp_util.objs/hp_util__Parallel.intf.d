lib/util/parallel.mli:
