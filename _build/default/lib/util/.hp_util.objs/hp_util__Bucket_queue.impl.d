lib/util/bucket_queue.ml: Array
