lib/util/prng.mli:
