lib/util/heap.mli:
