lib/util/linreg.ml: Array
