(** Union-find over elements [0 .. n-1], with union by rank and path
    compression.  Used for connected-component computations. *)

type t

val create : int -> t
(** [create n] has each of [0..n-1] in its own singleton set. *)

val find : t -> int -> int
(** Canonical representative of the element's set. *)

val union : t -> int -> int -> bool
(** Merge two sets; returns [true] when they were previously distinct. *)

val same : t -> int -> int -> bool

val count : t -> int
(** Number of distinct sets. *)

val size_of : t -> int -> int
(** Size of the set containing the element. *)

val groups : t -> int list array
(** All sets as lists, indexed arbitrarily, each element appearing
    exactly once. *)
