type t = {
  max_key : int;
  keys : int array;         (* key of element, or -1 when absent *)
  head : int array;         (* first element of bucket k, or -1 *)
  next : int array;
  prev : int array;         (* prev.(v) = -1 when v is a bucket head *)
  bucket_of_head : int array; (* for heads, which bucket they lead; -1 otherwise *)
  mutable size : int;
  mutable min_hint : int;   (* lower bound on the smallest occupied key *)
}

let create ~n ~max_key =
  if n < 0 || max_key < 0 then invalid_arg "Bucket_queue.create";
  {
    max_key;
    keys = Array.make n (-1);
    head = Array.make (max_key + 1) (-1);
    next = Array.make n (-1);
    prev = Array.make n (-1);
    bucket_of_head = Array.make n (-1);
    size = 0;
    min_hint = 0;
  }

let mem t v = t.keys.(v) >= 0

let key t v =
  let k = t.keys.(v) in
  if k < 0 then invalid_arg "Bucket_queue.key: absent element";
  k

let size t = t.size

(* Unlink v from its bucket's doubly linked list. *)
let unlink t v =
  let k = t.keys.(v) in
  let nx = t.next.(v) and pv = t.prev.(v) in
  if pv = -1 then begin
    t.head.(k) <- nx;
    t.bucket_of_head.(v) <- -1;
    if nx <> -1 then begin
      t.prev.(nx) <- -1;
      t.bucket_of_head.(nx) <- k
    end
  end else begin
    t.next.(pv) <- nx;
    if nx <> -1 then t.prev.(nx) <- pv
  end;
  t.next.(v) <- -1;
  t.prev.(v) <- -1

let link t v k =
  let h = t.head.(k) in
  t.head.(k) <- v;
  t.next.(v) <- h;
  t.prev.(v) <- -1;
  t.bucket_of_head.(v) <- k;
  if h <> -1 then begin
    t.prev.(h) <- v;
    t.bucket_of_head.(h) <- -1
  end;
  t.keys.(v) <- k

let insert t v k =
  if k < 0 || k > t.max_key then invalid_arg "Bucket_queue.insert: key out of range";
  if mem t v then invalid_arg "Bucket_queue.insert: element already present";
  link t v k;
  t.size <- t.size + 1;
  if k < t.min_hint then t.min_hint <- k

let remove t v =
  if mem t v then begin
    unlink t v;
    t.keys.(v) <- -1;
    t.size <- t.size - 1
  end

let change_key t v k =
  if k < 0 || k > t.max_key then invalid_arg "Bucket_queue.change_key: key out of range";
  let cur = key t v in
  if cur <> k then begin
    unlink t v;
    link t v k;
    if k < t.min_hint then t.min_hint <- k
  end

let decrease t v = change_key t v (key t v - 1)

let rec advance t k =
  if k > t.max_key then None
  else if t.head.(k) <> -1 then begin
    t.min_hint <- k;
    Some (t.head.(k), k)
  end else advance t (k + 1)

let peek_min t = if t.size = 0 then None else advance t t.min_hint

let pop_min t =
  match peek_min t with
  | None -> None
  | Some (v, k) ->
    remove t v;
    Some (v, k)
