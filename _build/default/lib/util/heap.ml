type t = {
  mutable prio : float array;
  mutable data : int array;
  mutable len : int;
}

let create () = { prio = Array.make 16 0.0; data = Array.make 16 0; len = 0 }

let size t = t.len

let is_empty t = t.len = 0

let swap t i j =
  let p = t.prio.(i) and d = t.data.(i) in
  t.prio.(i) <- t.prio.(j);
  t.data.(i) <- t.data.(j);
  t.prio.(j) <- p;
  t.data.(j) <- d

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.prio.(i) < t.prio.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && t.prio.(l) < t.prio.(!smallest) then smallest := l;
  if r < t.len && t.prio.(r) < t.prio.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~priority x =
  if t.len = Array.length t.prio then begin
    let cap = 2 * t.len in
    let prio = Array.make cap 0.0 and data = Array.make cap 0 in
    Array.blit t.prio 0 prio 0 t.len;
    Array.blit t.data 0 data 0 t.len;
    t.prio <- prio;
    t.data <- data
  end;
  t.prio.(t.len) <- priority;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek t = if t.len = 0 then None else Some (t.prio.(0), t.data.(0))

let pop t =
  if t.len = 0 then None
  else begin
    let out = (t.prio.(0), t.data.(0)) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.prio.(0) <- t.prio.(t.len);
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    Some out
  end
