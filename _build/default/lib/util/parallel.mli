(** Minimal fork-join parallelism over index ranges (OCaml 5 domains).

    The paper closes Section 3 observing that hypergraphs much larger
    than the Cellzome study "will require high performance algorithms
    and software" and a parallel algorithm; the library's two
    embarrassingly parallel phases — all-sources BFS sweeps and the
    pairwise-overlap construction — run through this module.

    Work on [0, n) is split into [domains] contiguous chunks, each
    folded locally in its own domain with a fresh accumulator, and the
    per-domain results are combined left-to-right (so a deterministic
    [combine] gives deterministic results regardless of scheduling).
    Caller contract: [fold] must only read shared state — the
    accumulator is the only thing written. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count], capped at 8. *)

val fold_range :
  domains:int ->
  n:int ->
  create:(unit -> 'acc) ->
  fold:('acc -> int -> 'acc) ->
  combine:('acc -> 'acc -> 'acc) ->
  'acc
(** Runs sequentially when [domains <= 1] or the range is tiny.
    Raises [Invalid_argument] on [domains < 1] or [n < 0]; re-raises
    the first worker exception after joining every domain. *)
