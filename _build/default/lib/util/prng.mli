(** Deterministic pseudo-random number generator (splitmix64).

    Every generator in the library takes an explicit [Prng.t] so that
    all synthetic datasets and experiments are reproducible
    bit-for-bit, independent of [Stdlib.Random] global state. *)

type t

val create : int -> t
(** [create seed] seeds the stream; equal seeds give equal streams. *)

val copy : t -> t

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound).  Requires [bound > 0]. *)

val float : t -> float
(** Uniform on [0, 1). *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] is [k] distinct values from
    [0, n), in random order.  Requires [0 <= k <= n]. *)

val powerlaw_int : t -> gamma:float -> dmin:int -> dmax:int -> int
(** Sample an integer degree from a truncated discrete power law
    P(d) proportional to [d ** -gamma] on [dmin, dmax], by inverse
    transform over the normalized mass table.  Requires
    [1 <= dmin <= dmax] and [gamma > 0]. *)
