let recommended_domains () = min 8 (Domain.recommended_domain_count ())

let sequential ~n ~create ~fold =
  let acc = ref (create ()) in
  for i = 0 to n - 1 do
    acc := fold !acc i
  done;
  !acc

let fold_range ~domains ~n ~create ~fold ~combine =
  if domains < 1 then invalid_arg "Parallel.fold_range: domains < 1";
  if n < 0 then invalid_arg "Parallel.fold_range: negative range";
  if domains = 1 || n < 2 * domains then sequential ~n ~create ~fold
  else begin
    let chunk lo hi () =
      let acc = ref (create ()) in
      for i = lo to hi - 1 do
        acc := fold !acc i
      done;
      !acc
    in
    let bounds =
      Array.init domains (fun d -> (d * n / domains, (d + 1) * n / domains))
    in
    (* Workers for every chunk but the first, which runs here. *)
    let workers =
      Array.init (domains - 1) (fun i ->
          let lo, hi = bounds.(i + 1) in
          Domain.spawn (chunk lo hi))
    in
    let first =
      let lo, hi = bounds.(0) in
      match chunk lo hi () with
      | acc -> Ok acc
      | exception e -> Error e
    in
    (* Join everything before surfacing any failure. *)
    let results = Array.map (fun d -> try Ok (Domain.join d) with e -> Error e) workers in
    let value = function Ok v -> v | Error e -> raise e in
    Array.fold_left (fun acc r -> combine acc (value r)) (value first) results
  end
