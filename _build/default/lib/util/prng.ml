type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64, Steele et al.; full 64-bit avalanche per step. *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* 62-bit non-negative value (OCaml ints are 63-bit signed); modulo
     bias is negligible for the bounds used in this library (<< 2^32). *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let float t =
  (* 53 random bits mapped to [0,1). *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int v /. 9007199254740992.0

let bool t p = float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  if 3 * k >= n then begin
    let a = Array.init n (fun i -> i) in
    shuffle t a;
    Array.sub a 0 k
  end else begin
    (* Sparse case: rejection sampling into a hash set. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int t n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end

let powerlaw_int t ~gamma ~dmin ~dmax =
  if dmin < 1 || dmax < dmin then invalid_arg "Prng.powerlaw_int: bad range";
  if gamma <= 0.0 then invalid_arg "Prng.powerlaw_int: gamma must be positive";
  let n = dmax - dmin + 1 in
  let mass = Array.init n (fun i -> float_of_int (dmin + i) ** (-.gamma)) in
  let total = Array.fold_left ( +. ) 0.0 mass in
  let u = float t *. total in
  let rec pick i acc =
    if i = n - 1 then dmax
    else begin
      let acc = acc +. mass.(i) in
      if u < acc then dmin + i else pick (i + 1) acc
    end
  in
  pick 0 0.0
