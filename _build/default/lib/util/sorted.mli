(** Operations on strictly increasing integer arrays, used as the
    canonical set representation for hyperedge member lists. *)

val of_list : int list -> int array
(** Sort and deduplicate. *)

val of_array : int array -> int array
(** Sort and deduplicate a copy; the input is not modified. *)

val is_sorted_strict : int array -> bool

val mem : int array -> int -> bool
(** Binary search. *)

val subset : int array -> int array -> bool
(** [subset a b] is true iff every element of [a] occurs in [b]
    (linear merge). *)

val inter_count : int array -> int array -> int
(** Size of the intersection (linear merge). *)

val inter : int array -> int array -> int array

val union : int array -> int array -> int array

val diff : int array -> int array -> int array
(** [diff a b] = elements of [a] not in [b]. *)

val remove : int array -> int -> int array
(** [remove a x] is [a] without [x]; returns a fresh array (or [a]
    itself if [x] is absent). *)

val equal : int array -> int array -> bool
