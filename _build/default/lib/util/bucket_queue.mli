(** Monotone bucket priority structure.

    Holds elements [0 .. n-1] keyed by small non-negative integers, with
    O(1) insertion, removal and key change, and amortized O(max_key)
    total scanning cost for minimum extraction when keys evolve
    monotonically (the k-core peeling pattern: keys only decrease while
    the current minimum is extracted).

    This is the structure behind the linear-time graph core algorithm of
    Batagelj and Zaversnik, generalized with explicit removal so the
    hypergraph core algorithm can also use it. *)

type t

val create : n:int -> max_key:int -> t
(** [create ~n ~max_key] supports elements [0..n-1] and keys
    [0..max_key].  No element is initially present. *)

val insert : t -> int -> int -> unit
(** [insert t v k] adds element [v] with key [k].  Raises
    [Invalid_argument] if [v] is already present or [k] is out of
    range. *)

val remove : t -> int -> unit
(** [remove t v] deletes [v]; no-op if absent. *)

val mem : t -> int -> bool

val key : t -> int -> int
(** Current key of a present element.  Raises [Invalid_argument] if
    absent. *)

val change_key : t -> int -> int -> unit
(** [change_key t v k] moves [v] to bucket [k] (either direction). *)

val decrease : t -> int -> unit
(** [decrease t v] is [change_key t v (key t v - 1)]. *)

val size : t -> int

val pop_min : t -> (int * int) option
(** Remove and return an element with the smallest key, with its key. *)

val peek_min : t -> (int * int) option
