(** Power-law (scale-free) degree distribution fitting.

    The paper fits P(d) = c * d^(-gamma) to the protein degree
    frequencies by least squares on the log-log plot, reporting
    log10(c) = 3.161, gamma = 2.528 and judging the fit by
    R^2 = 0.963 (Figure 1).  [fit_loglog] is that method.

    As an extension, [fit_mle] estimates gamma by the discrete
    maximum-likelihood approximation of Clauset, Shalizi and Newman
    (gamma = 1 + n / sum ln(d_i / (dmin - 1/2))), and [ks_distance]
    gives the Kolmogorov-Smirnov distance between the empirical
    distribution and the fitted model — a goodness measure that, unlike
    R^2 on binned logs, does not overweight the sparse tail. *)

type loglog_fit = {
  log10_c : float;
  gamma : float;
  r2 : float;
  points : int;  (** number of distinct degrees used *)
}

val fit_loglog : Hp_util.Int_histogram.t -> loglog_fit
(** Requires at least two distinct positive degrees. *)

val predicted_count : loglog_fit -> int -> float
(** c * d^(-gamma). *)

type mle_fit = {
  gamma_mle : float;
  dmin : int;
  n_tail : int;  (** observations with degree >= dmin *)
}

val fit_mle : ?dmin:int -> Hp_util.Int_histogram.t -> mle_fit
(** [dmin] defaults to 1.  Requires at least one observation at or
    above [dmin], and [gamma] is only finite when some observation
    exceeds [dmin]. *)

val ks_distance : Hp_util.Int_histogram.t -> gamma:float -> dmin:int -> float
(** Max deviation between the empirical CDF (restricted to degrees >=
    dmin) and the truncated power-law CDF with the given exponent. *)
