(* log-factorials: exact summation with a memo table, adequate for the
   population sizes here (thousands). *)
let memo = ref (Array.make 1 0.0)

let log_factorial n =
  if n < 0 then invalid_arg "Hypergeom.log_factorial: negative";
  let table = !memo in
  if n < Array.length table then table.(n)
  else begin
    let size = max (n + 1) (2 * Array.length table) in
    let bigger = Array.make size 0.0 in
    Array.blit table 0 bigger 0 (Array.length table);
    for i = max 1 (Array.length table) to size - 1 do
      bigger.(i) <- bigger.(i - 1) +. log (float_of_int i)
    done;
    memo := bigger;
    bigger.(n)
  end

let log_choose n k =
  if k < 0 || k > n then neg_infinity
  else log_factorial n -. log_factorial k -. log_factorial (n - k)

let pmf ~capital_n ~capital_k ~n ~x =
  if capital_k > capital_n || n > capital_n then invalid_arg "Hypergeom.pmf: bad parameters";
  let l =
    log_choose capital_k x
    +. log_choose (capital_n - capital_k) (n - x)
    -. log_choose capital_n n
  in
  if l = neg_infinity then 0.0 else exp l

let p_value_ge ~capital_n ~capital_k ~n ~x =
  let hi = min capital_k n in
  let p = ref 0.0 in
  for i = max x 0 to hi do
    p := !p +. pmf ~capital_n ~capital_k ~n ~x:i
  done;
  min 1.0 !p

type enrichment = {
  population : int;
  labelled : int;
  sample : int;
  hits : int;
  sample_fraction : float;
  population_fraction : float;
  fold : float;
  p_value : float;
}

let test ~population ~labelled ~sample ~hits =
  if hits > sample || labelled > population || sample > population then
    invalid_arg "Hypergeom.test: inconsistent counts";
  let sample_fraction =
    if sample = 0 then 0.0 else float_of_int hits /. float_of_int sample
  in
  let population_fraction =
    if population = 0 then 0.0 else float_of_int labelled /. float_of_int population
  in
  let fold =
    if population_fraction = 0.0 then infinity else sample_fraction /. population_fraction
  in
  {
    population;
    labelled;
    sample;
    hits;
    sample_fraction;
    population_fraction;
    fold;
    p_value = p_value_ge ~capital_n:population ~capital_k:labelled ~n:sample ~x:hits;
  }
