(** Hypergeometric enrichment testing.

    The paper reports the core proteome to be "enriched in essential
    and homologous proteins" by comparing fractions (22 of 32 known
    core proteins essential vs. a genome base rate of 878 / 4036).
    This module supplies the standard one-sided hypergeometric test
    that makes the comparison quantitative: drawing [n] proteins from a
    population of [capital_n] containing [capital_k] labelled ones, the
    p-value is the probability of seeing at least [x] labelled. *)

val log_choose : int -> int -> float
(** log C(n, k); neg_infinity outside 0 <= k <= n. *)

val pmf : capital_n:int -> capital_k:int -> n:int -> x:int -> float
(** P(X = x). *)

val p_value_ge : capital_n:int -> capital_k:int -> n:int -> x:int -> float
(** One-sided over-representation tail P(X >= x). *)

type enrichment = {
  population : int;
  labelled : int;
  sample : int;
  hits : int;
  sample_fraction : float;
  population_fraction : float;
  fold : float;       (** sample fraction over population fraction *)
  p_value : float;    (** one-sided over-representation *)
}

val test : population:int -> labelled:int -> sample:int -> hits:int -> enrichment
