(** Degree distributions of the protein complex hypergraph (paper
    Section 2 / Figure 1). *)

val vertex_histogram : Hp_hypergraph.Hypergraph.t -> Hp_util.Int_histogram.t
(** Frequencies of protein degrees (number of complexes a protein
    belongs to). *)

val edge_histogram : Hp_hypergraph.Hypergraph.t -> Hp_util.Int_histogram.t
(** Frequencies of complex sizes. *)

val frequency_series : Hp_util.Int_histogram.t -> (int * int) array
(** [(degree, count)] pairs with positive count, increasing degree. *)

val loglog_points : Hp_util.Int_histogram.t -> (float * float) array
(** [(log10 degree, log10 count)] for degrees >= 1 with positive
    count — the points Figure 1 plots and fits. *)

val count_with_degree : Hp_util.Int_histogram.t -> int -> int
