module U = Hp_util
module HP = Hp_hypergraph.Hypergraph_path
module HG = Hp_hypergraph.Hypergraph_gen
module G = Hp_graph.Graph
module GA = Hp_graph.Graph_algo
module GG = Hp_graph.Graph_gen

type hypergraph_report = {
  diameter : int;
  average_path : float;
  null_diameter_mean : float;
  null_average_path_mean : float;
  trials : int;
}

let assess_hypergraph rng ?(trials = 5) ?(shuffle_rounds = 10) h =
  let diameter, average_path = HP.diameter_and_average_path h in
  let dsum = ref 0.0 and lsum = ref 0.0 in
  for _ = 1 to trials do
    let null = HG.degree_preserving_shuffle rng h ~rounds:shuffle_rounds in
    let d, l = HP.diameter_and_average_path null in
    dsum := !dsum +. float_of_int d;
    lsum := !lsum +. l
  done;
  let ft = float_of_int (max trials 1) in
  {
    diameter;
    average_path;
    null_diameter_mean = !dsum /. ft;
    null_average_path_mean = !lsum /. ft;
    trials;
  }

type graph_report = {
  g_average_path : float;
  g_clustering : float;
  rand_average_path : float;
  rand_clustering : float;
  sigma : float;
}

let assess_graph rng ?(trials = 3) g =
  let g_average_path = GA.average_path_length g in
  let g_clustering = GA.average_clustering g in
  let lsum = ref 0.0 and csum = ref 0.0 in
  for _ = 1 to trials do
    let null = GG.erdos_renyi_gnm rng ~n:(G.n_vertices g) ~m:(G.n_edges g) in
    lsum := !lsum +. GA.average_path_length null;
    csum := !csum +. GA.average_clustering null
  done;
  let ft = float_of_int (max trials 1) in
  let rand_average_path = !lsum /. ft and rand_clustering = !csum /. ft in
  let sigma =
    if rand_clustering <= 0.0 || rand_average_path <= 0.0 || g_average_path <= 0.0 then nan
    else g_clustering /. rand_clustering /. (g_average_path /. rand_average_path)
  in
  { g_average_path; g_clustering; rand_average_path; rand_clustering; sigma }
