lib/stats/hypergeom.mli:
