lib/stats/smallworld.mli: Hp_graph Hp_hypergraph Hp_util
