lib/stats/powerlaw.mli: Hp_util
