lib/stats/degree_dist.ml: Array Hp_hypergraph Hp_util List
