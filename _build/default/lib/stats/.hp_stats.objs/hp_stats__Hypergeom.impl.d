lib/stats/hypergeom.ml: Array
