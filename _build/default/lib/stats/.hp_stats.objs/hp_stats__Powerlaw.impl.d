lib/stats/powerlaw.ml: Array Degree_dist Float Hashtbl Hp_util List Option
