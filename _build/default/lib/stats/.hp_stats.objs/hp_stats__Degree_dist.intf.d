lib/stats/degree_dist.mli: Hp_hypergraph Hp_util
