lib/stats/smallworld.ml: Hp_graph Hp_hypergraph Hp_util
