module U = Hp_util
module H = Hp_hypergraph.Hypergraph

let vertex_histogram h = U.Int_histogram.of_array (H.vertex_degrees h)

let edge_histogram h = U.Int_histogram.of_array (H.edge_sizes h)

let frequency_series hist = Array.of_list (U.Int_histogram.support hist)

let loglog_points hist =
  U.Int_histogram.support hist
  |> List.filter (fun (d, c) -> d >= 1 && c > 0)
  |> List.map (fun (d, c) -> (log10 (float_of_int d), log10 (float_of_int c)))
  |> Array.of_list

let count_with_degree = U.Int_histogram.count
