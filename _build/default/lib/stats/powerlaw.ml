module U = Hp_util

type loglog_fit = {
  log10_c : float;
  gamma : float;
  r2 : float;
  points : int;
}

let fit_loglog hist =
  let pts = Degree_dist.loglog_points hist in
  if Array.length pts < 2 then
    invalid_arg "Powerlaw.fit_loglog: need at least two distinct degrees";
  let f = U.Linreg.fit pts in
  { log10_c = f.U.Linreg.intercept; gamma = -.f.U.Linreg.slope; r2 = f.U.Linreg.r2; points = f.U.Linreg.n }

let predicted_count fit d =
  (10.0 ** fit.log10_c) *. (float_of_int d ** -.fit.gamma)

type mle_fit = {
  gamma_mle : float;
  dmin : int;
  n_tail : int;
}

let fit_mle ?(dmin = 1) hist =
  if dmin < 1 then invalid_arg "Powerlaw.fit_mle: dmin must be >= 1";
  let tail =
    List.filter (fun (d, _) -> d >= dmin) (U.Int_histogram.support hist)
  in
  let n = List.fold_left (fun acc (_, c) -> acc + c) 0 tail in
  if n = 0 then invalid_arg "Powerlaw.fit_mle: no observations at or above dmin";
  let dmax = List.fold_left (fun acc (d, _) -> max acc d) dmin tail in
  let logsum =
    List.fold_left
      (fun acc (d, c) -> acc +. (float_of_int c *. log (float_of_int d)))
      0.0 tail
  in
  if dmax = dmin then { gamma_mle = infinity; dmin; n_tail = n }
  else begin
    (* Exact discrete truncated MLE: maximize
         log L(gamma) = -gamma * sum(c_d ln d) - n * ln Z(gamma),
       Z the truncated zeta on [dmin, dmax], by ternary search (the
       log-likelihood is strictly concave in gamma). *)
    let log_z gamma =
      let z = ref 0.0 in
      for d = dmin to dmax do
        z := !z +. (float_of_int d ** -.gamma)
      done;
      log !z
    in
    let log_likelihood gamma =
      (-.gamma *. logsum) -. (float_of_int n *. log_z gamma)
    in
    let lo = ref 0.01 and hi = ref 12.0 in
    for _ = 1 to 80 do
      let m1 = !lo +. ((!hi -. !lo) /. 3.0) in
      let m2 = !hi -. ((!hi -. !lo) /. 3.0) in
      if log_likelihood m1 < log_likelihood m2 then lo := m1 else hi := m2
    done;
    { gamma_mle = (!lo +. !hi) /. 2.0; dmin; n_tail = n }
  end

let ks_distance hist ~gamma ~dmin =
  let support =
    List.filter (fun (d, _) -> d >= dmin) (U.Int_histogram.support hist)
  in
  match support with
  | [] -> invalid_arg "Powerlaw.ks_distance: empty tail"
  | _ ->
    let dmax = List.fold_left (fun acc (d, _) -> max acc d) dmin support in
    let n_tail = List.fold_left (fun acc (_, c) -> acc + c) 0 support in
    (* Truncated model mass on [dmin, dmax]. *)
    let mass = Array.init (dmax - dmin + 1) (fun i -> float_of_int (dmin + i) ** -.gamma) in
    let z = Array.fold_left ( +. ) 0.0 mass in
    let worst = ref 0.0 in
    let emp = ref 0.0 and model = ref 0.0 in
    let counts = Hashtbl.create 64 in
    List.iter (fun (d, c) -> Hashtbl.replace counts d c) support;
    for d = dmin to dmax do
      emp :=
        !emp
        +. (float_of_int (Option.value (Hashtbl.find_opt counts d) ~default:0)
           /. float_of_int n_tail);
      model := !model +. (mass.(d - dmin) /. z);
      let dev = Float.abs (!emp -. !model) in
      if dev > !worst then worst := dev
    done;
    !worst
