(** Small-world assessment (paper Section 2).

    The paper calls the yeast hypergraph small-world on the strength of
    its diameter (6) and average path length (2.568) being tiny
    relative to its 1361 proteins.  This module quantifies the claim:
    it measures the observed path statistics and compares them against
    a degree-preserving random null model (hypergraphs) or an
    Erdos-Renyi null plus clustering ratio (graphs, the classic
    Watts-Strogatz sigma). *)

type hypergraph_report = {
  diameter : int;
  average_path : float;
  null_diameter_mean : float;
  null_average_path_mean : float;
  trials : int;
}

val assess_hypergraph :
  Hp_util.Prng.t ->
  ?trials:int ->
  ?shuffle_rounds:int ->
  Hp_hypergraph.Hypergraph.t ->
  hypergraph_report
(** Path statistics of the input against [trials] (default 5)
    degree-preserving shuffles ([shuffle_rounds], default 10, swap
    attempts per incidence entry each). *)

type graph_report = {
  g_average_path : float;
  g_clustering : float;
  rand_average_path : float;
  rand_clustering : float;
  sigma : float;
  (** (C/C_rand) / (L/L_rand): > 1 indicates small-world structure. *)
}

val assess_graph :
  Hp_util.Prng.t -> ?trials:int -> Hp_graph.Graph.t -> graph_report
(** Compares against Erdos-Renyi graphs with the same vertex and edge
    counts, averaging the null statistics over [trials] (default 3). *)
