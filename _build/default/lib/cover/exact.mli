(** Exact minimum-weight vertex cover by branch and bound, feasible for
    small hypergraphs only.  Serves as the ground truth the tests use
    to measure the empirical approximation ratio of the greedy and
    primal-dual algorithms. *)

val min_weight_cover :
  ?weights:float array ->
  ?node_limit:int ->
  Hp_hypergraph.Hypergraph.t ->
  int array option
(** An optimal cover of all non-empty hyperedges, or [None] when the
    search exceeds [node_limit] branch nodes (default 1_000_000).
    Branches on the members of an uncovered hyperedge of minimum size,
    pruning with the incumbent weight. *)

val optimal_weight :
  ?weights:float array ->
  ?node_limit:int ->
  Hp_hypergraph.Hypergraph.t ->
  float option
