module U = Hp_util
module H = Hp_hypergraph.Hypergraph

let coverage h set =
  let chosen = Array.make (H.n_vertices h) false in
  Array.iter (fun v -> chosen.(v) <- true) set;
  Array.init (H.n_edges h) (fun e ->
      Array.fold_left
        (fun acc v -> if chosen.(v) then acc + 1 else acc)
        0 (H.edge_members h e))

let is_cover h set =
  let cov = coverage h set in
  let ok = ref true in
  Array.iteri (fun e c -> if c = 0 && H.edge_size h e > 0 then ok := false) cov;
  !ok

let is_multicover h ~requirements set =
  if Array.length requirements <> H.n_edges h then
    invalid_arg "Cover.is_multicover: requirements length mismatch";
  let cov = coverage h set in
  let ok = ref true in
  Array.iteri (fun e c -> if c < requirements.(e) then ok := false) cov;
  !ok

let total_weight ~weights set =
  Array.fold_left (fun acc v -> acc +. weights.(v)) 0.0 set

let average_degree h set =
  if Array.length set = 0 then 0.0
  else begin
    let sum = Array.fold_left (fun acc v -> acc + H.vertex_degree h v) 0 set in
    float_of_int sum /. float_of_int (Array.length set)
  end

let uncovered h set =
  let cov = coverage h set in
  let buf = U.Dynarray.create ~dummy:0 () in
  Array.iteri
    (fun e c -> if c = 0 && H.edge_size h e > 0 then U.Dynarray.push buf e)
    cov;
  U.Dynarray.to_array buf
