lib/cover/primal_dual.ml: Array Fun Hp_hypergraph Hp_util
