lib/cover/cover.mli: Hp_hypergraph
