lib/cover/cover.ml: Array Hp_hypergraph Hp_util
