lib/cover/weighting.ml: Array Hp_hypergraph List
