lib/cover/greedy.mli: Hp_hypergraph
