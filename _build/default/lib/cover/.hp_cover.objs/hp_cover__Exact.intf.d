lib/cover/exact.mli: Hp_hypergraph
