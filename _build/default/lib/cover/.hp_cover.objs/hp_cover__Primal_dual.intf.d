lib/cover/primal_dual.mli: Hp_hypergraph
