lib/cover/exact.ml: Array Hp_hypergraph List Option
