lib/cover/multicover.ml: Array Greedy Hp_hypergraph
