lib/cover/multicover.mli: Greedy Hp_hypergraph
