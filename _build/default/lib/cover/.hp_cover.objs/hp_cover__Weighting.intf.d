lib/cover/weighting.mli: Hp_hypergraph
