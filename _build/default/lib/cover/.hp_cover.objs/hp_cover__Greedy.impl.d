lib/cover/greedy.ml: Array Hp_hypergraph Hp_util List
