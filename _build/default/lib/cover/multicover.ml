module H = Hp_hypergraph.Hypergraph

let uniform_requirements h ~r =
  if r < 0 then invalid_arg "Multicover.uniform_requirements: negative r";
  Array.init (H.n_edges h) (fun e -> if H.edge_size h e >= r then r else 0)

let solve = Greedy.solve

let double_cover ?weights h =
  Greedy.solve ?weights ~requirements:(uniform_requirements h ~r:2) h

let covered_edges ~requirements =
  Array.fold_left (fun acc r -> if r > 0 then acc + 1 else acc) 0 requirements
