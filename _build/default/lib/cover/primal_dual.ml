module U = Hp_util
module H = Hp_hypergraph.Hypergraph

let vertex_cover_with_duals ?weights h =
  let nv = H.n_vertices h and ne = H.n_edges h in
  let weights = match weights with Some w -> w | None -> Array.make nv 1.0 in
  if Array.length weights <> nv then
    invalid_arg "Primal_dual.vertex_cover: weights length mismatch";
  let slack = Array.copy weights in
  let y = Array.make ne 0.0 in
  let tight = Array.make nv false in
  let covered = Array.make ne false in
  let chosen = U.Dynarray.create ~dummy:0 () in
  let mark_covered v =
    Array.iter (fun e -> covered.(e) <- true) (H.vertex_edges h v)
  in
  (* Hyperedges processed largest-first: raising duals on big
     hyperedges first tends to tighten cheap shared vertices early. *)
  let order = Array.init ne Fun.id in
  Array.sort (fun a b -> compare (H.edge_size h b) (H.edge_size h a)) order;
  Array.iter
    (fun e ->
      let ms = H.edge_members h e in
      if (not covered.(e)) && Array.length ms > 0 then begin
        let delta =
          Array.fold_left (fun acc v -> min acc slack.(v)) infinity ms
        in
        y.(e) <- y.(e) +. delta;
        Array.iter
          (fun v ->
            slack.(v) <- slack.(v) -. delta;
            if slack.(v) <= 1e-12 && not tight.(v) then begin
              tight.(v) <- true;
              U.Dynarray.push chosen v;
              mark_covered v
            end)
          ms
      end)
    order;
  (* Reverse delete: drop vertices that later picks made redundant. *)
  let picks = U.Dynarray.to_array chosen in
  let keep = Array.make (Array.length picks) true in
  let still_chosen = Array.make nv false in
  Array.iter (fun v -> still_chosen.(v) <- true) picks;
  let needed v =
    (* Is v the only chosen member of some non-empty hyperedge? *)
    Array.exists
      (fun e ->
        let others =
          Array.fold_left
            (fun acc w -> if w <> v && still_chosen.(w) then acc + 1 else acc)
            0 (H.edge_members h e)
        in
        others = 0)
      (H.vertex_edges h v)
  in
  for i = Array.length picks - 1 downto 0 do
    let v = picks.(i) in
    if not (needed v) then begin
      keep.(i) <- false;
      still_chosen.(v) <- false
    end
  done;
  let final = U.Dynarray.create ~dummy:0 () in
  Array.iteri (fun i v -> if keep.(i) then U.Dynarray.push final v) picks;
  (U.Dynarray.to_array final, y)

let vertex_cover ?weights h = fst (vertex_cover_with_duals ?weights h)

let dual_lower_bound ?weights h =
  let _, y = vertex_cover_with_duals ?weights h in
  Array.fold_left ( +. ) 0.0 y
