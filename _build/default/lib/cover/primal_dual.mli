(** Primal-dual approximation for minimum-weight vertex cover in
    hypergraphs — the family of algorithms the paper names as "the
    subject of current work" (Section 4.1), implemented here as an
    extension so it can be compared against the greedy algorithm
    (bench E12).

    Dual variables y_f are raised on uncovered hyperedges until a
    member vertex becomes tight (its weight is fully paid for); tight
    vertices enter the cover.  The approximation ratio is Delta_F, the
    maximum hyperedge size — worse than H_m for the yeast hypergraph,
    as the paper observes, but incomparable in general. *)

val vertex_cover : ?weights:float array -> Hp_hypergraph.Hypergraph.t -> int array
(** Cover of all non-empty hyperedges, with a reverse-delete pruning
    pass that drops redundant vertices. *)

val vertex_cover_with_duals :
  ?weights:float array -> Hp_hypergraph.Hypergraph.t -> int array * float array
(** Also returns the dual solution y; sum of y is a lower bound on the
    optimal cover weight (weak LP duality), which the tests use to
    sandwich both algorithms. *)

val dual_lower_bound : ?weights:float array -> Hp_hypergraph.Hypergraph.t -> float
