module H = Hp_hypergraph.Hypergraph

exception Limit

let min_weight_cover ?weights ?(node_limit = 1_000_000) h =
  let nv = H.n_vertices h and ne = H.n_edges h in
  let weights = match weights with Some w -> w | None -> Array.make nv 1.0 in
  if Array.length weights <> nv then
    invalid_arg "Exact.min_weight_cover: weights length mismatch";
  let in_cover = Array.make nv false in
  let best = ref None in
  let best_weight = ref infinity in
  let nodes = ref 0 in
  (* First uncovered non-empty hyperedge of minimum size: small
     branching factor first. *)
  let pick_edge () =
    let best_e = ref (-1) and best_s = ref max_int in
    for e = 0 to ne - 1 do
      let ms = H.edge_members h e in
      let s = Array.length ms in
      if s > 0 && s < !best_s then begin
        let covered = Array.exists (fun v -> in_cover.(v)) ms in
        if not covered then begin
          best_e := e;
          best_s := s
        end
      end
    done;
    !best_e
  in
  let rec branch current_weight chosen =
    incr nodes;
    if !nodes > node_limit then raise Limit;
    if current_weight < !best_weight then begin
      let e = pick_edge () in
      if e < 0 then begin
        best_weight := current_weight;
        best := Some (List.rev chosen)
      end
      else
        Array.iter
          (fun v ->
            let w = current_weight +. weights.(v) in
            if w < !best_weight then begin
              in_cover.(v) <- true;
              branch w (v :: chosen);
              in_cover.(v) <- false
            end)
          (H.edge_members h e)
    end
  in
  match branch 0.0 [] with
  | () -> Option.map Array.of_list !best
  | exception Limit -> None

let optimal_weight ?weights ?node_limit h =
  let nv = H.n_vertices h in
  let w = match weights with Some w -> w | None -> Array.make nv 1.0 in
  Option.map
    (Array.fold_left (fun acc v -> acc +. w.(v)) 0.0)
    (min_weight_cover ~weights:w ?node_limit h)
