(** Minimum-weight multicovers: cover hyperedge f at least r_f times
    (paper Section 4.1).  The greedy modification keeps a hyperedge
    active until its multicover requirement is met; the approximation
    ratio H_m carries over.

    Used to propose redundant bait sets: since the reproducibility of
    the TAP experiment is ~70%, covering each complex twice makes the
    identification more reliable. *)

val uniform_requirements : Hp_hypergraph.Hypergraph.t -> r:int -> int array
(** Requirement [r] for every hyperedge that has at least [r] members;
    hyperedges with fewer members (e.g. the singleton complexes the
    paper excludes from its 2-cover) get requirement 0 and are left
    uncovered. *)

val solve :
  ?weights:float array ->
  requirements:int array ->
  Hp_hypergraph.Hypergraph.t ->
  Greedy.trace

val double_cover : ?weights:float array -> Hp_hypergraph.Hypergraph.t -> Greedy.trace
(** [solve] with [uniform_requirements ~r:2] — the paper's experiment. *)

val covered_edges : requirements:int array -> int
(** Number of hyperedges with a positive requirement. *)
