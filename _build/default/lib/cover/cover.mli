(** Vertex covers of a hypergraph and their validation (paper
    Section 4).

    A vertex cover is a vertex subset meeting every non-empty
    hyperedge; a multicover meets hyperedge f at least r_f times.  In
    the bait-selection application the cover is the candidate bait set
    and the quality measures below are the ones the paper reports:
    cover size, total weight, and the average degree of the chosen
    proteins. *)

val is_cover : Hp_hypergraph.Hypergraph.t -> int array -> bool
(** Does the vertex set meet every non-empty hyperedge?  (Empty
    hyperedges are ignored: no vertex set can cover them.) *)

val coverage : Hp_hypergraph.Hypergraph.t -> int array -> int array
(** Per hyperedge, how many of its members are in the given set. *)

val is_multicover :
  Hp_hypergraph.Hypergraph.t -> requirements:int array -> int array -> bool
(** Does the set meet hyperedge f at least [requirements.(f)] times? *)

val total_weight : weights:float array -> int array -> float

val average_degree : Hp_hypergraph.Hypergraph.t -> int array -> float
(** Mean hypergraph degree of the chosen vertices (0 for an empty
    set) — the statistic the paper uses to compare bait sets. *)

val uncovered : Hp_hypergraph.Hypergraph.t -> int array -> int array
(** Non-empty hyperedges not met by the set. *)
