module U = Hp_util
module H = Hp_hypergraph.Hypergraph

type step = {
  vertex : int;
  cost : float;
  completed : int;
}

type trace = {
  cover : int array;
  steps : step list;
  total_weight : float;
}

let harmonic m =
  let h = ref 0.0 in
  for i = 1 to m do
    h := !h +. (1.0 /. float_of_int i)
  done;
  !h

let solve ?weights ~requirements h =
  let nv = H.n_vertices h and ne = H.n_edges h in
  let weights = match weights with Some w -> w | None -> Array.make nv 1.0 in
  if Array.length weights <> nv then invalid_arg "Greedy.solve: weights length mismatch";
  if Array.length requirements <> ne then
    invalid_arg "Greedy.solve: requirements length mismatch";
  let residual = Array.copy requirements in
  Array.iteri
    (fun e r ->
      if r < 0 then invalid_arg "Greedy.solve: negative requirement";
      if r > H.edge_size h e then
        invalid_arg "Greedy.solve: requirement exceeds hyperedge size (infeasible)")
    residual;
  (* gain.(v): number of hyperedges containing v whose requirement is
     still unmet — the denominator of alpha(v). *)
  let gain = Array.make nv 0 in
  let unmet = ref 0 in
  for e = 0 to ne - 1 do
    if residual.(e) > 0 then begin
      incr unmet;
      Array.iter (fun v -> gain.(v) <- gain.(v) + 1) (H.edge_members h e)
    end
  done;
  let in_cover = Array.make nv false in
  let heap = U.Heap.create () in
  let cost v = weights.(v) /. float_of_int gain.(v) in
  for v = 0 to nv - 1 do
    if gain.(v) > 0 then U.Heap.push heap ~priority:(cost v) v
  done;
  let cover = U.Dynarray.create ~dummy:0 () in
  let steps = ref [] in
  let total = ref 0.0 in
  while !unmet > 0 do
    match U.Heap.pop heap with
    | None ->
      (* Unreachable given the feasibility check; defensive. *)
      failwith "Greedy.solve: heap exhausted with unmet requirements"
    | Some (popped_cost, v) ->
      if (not in_cover.(v)) && gain.(v) > 0 then begin
        let current = cost v in
        if current > popped_cost +. 1e-12 then
          (* Stale entry: the vertex lost covered hyperedges since this
             entry was pushed; re-queue at its true cost. *)
          U.Heap.push heap ~priority:current v
        else begin
          in_cover.(v) <- true;
          U.Dynarray.push cover v;
          total := !total +. weights.(v);
          let completed = ref 0 in
          Array.iter
            (fun e ->
              if residual.(e) > 0 then begin
                residual.(e) <- residual.(e) - 1;
                if residual.(e) = 0 then begin
                  incr completed;
                  decr unmet;
                  Array.iter
                    (fun w -> gain.(w) <- gain.(w) - 1)
                    (H.edge_members h e)
                end
              end)
            (H.vertex_edges h v);
          steps := { vertex = v; cost = current; completed = !completed } :: !steps
        end
      end
  done;
  { cover = U.Dynarray.to_array cover; steps = List.rev !steps; total_weight = !total }

let cover_requirements h =
  Array.init (H.n_edges h) (fun e -> if H.edge_size h e > 0 then 1 else 0)

let vertex_cover_trace ?weights h = solve ?weights ~requirements:(cover_requirements h) h

let vertex_cover ?weights h = (vertex_cover_trace ?weights h).cover
