(** The greedy approximation algorithm for minimum-weight vertex covers
    of a hypergraph (paper Section 4.1, Figure 5).

    At each step the current cost of a vertex is its weight spread over
    the hyperedges it belongs to that are not yet (fully) covered:
    alpha(v) = w(v) / |adj(v) ∩ F_i|.  The algorithm repeatedly picks a
    minimum-cost vertex and removes the hyperedges it covers.  By the
    set-cover analysis of Johnson, Chvatal and Lovasz this is an
    H_m-approximation, m the number of hyperedges.

    The engine below implements the multicover generalization directly
    (requirement r_f per hyperedge; a hyperedge is removed once its
    requirement is met); the plain cover is the r_f = 1 instance. *)

type step = {
  vertex : int;
  cost : float;        (** alpha(v) at selection time *)
  completed : int;     (** hyperedges whose requirement this pick met *)
}

type trace = {
  cover : int array;   (** chosen vertices, in selection order *)
  steps : step list;
  total_weight : float;
}

val vertex_cover : ?weights:float array -> Hp_hypergraph.Hypergraph.t -> int array
(** Greedy cover of all non-empty hyperedges.  [weights] defaults to
    uniform.  The result is in selection order. *)

val vertex_cover_trace :
  ?weights:float array -> Hp_hypergraph.Hypergraph.t -> trace

val solve :
  ?weights:float array ->
  requirements:int array ->
  Hp_hypergraph.Hypergraph.t ->
  trace
(** General engine.  [requirements.(f)] in [0, edge_size f]; a larger
    requirement is infeasible (a vertex is picked at most once) and
    raises [Invalid_argument]. *)

val harmonic : int -> float
(** H_m = 1 + 1/2 + ... + 1/m, the approximation guarantee. *)
