module H = Hp_hypergraph.Hypergraph

let uniform h = Array.make (H.n_vertices h) 1.0

let degree h = Array.init (H.n_vertices h) (fun v -> float_of_int (H.vertex_degree h v))

let degree_squared h =
  Array.init (H.n_vertices h) (fun v ->
      let d = float_of_int (H.vertex_degree h v) in
      d *. d)

let of_preferences h prefs ~default =
  let w = Array.make (H.n_vertices h) default in
  List.iter
    (fun (name, value) ->
      match H.vertex_of_name h name with
      | Some v -> w.(v) <- value
      | None -> invalid_arg ("Weighting.of_preferences: unknown vertex " ^ name))
    prefs;
  w
