(** Vertex weight schemes for bait selection (paper Section 4.2).

    The unweighted cover minimizes bait count but picks promiscuous
    high-degree proteins; weighting each protein by the square of its
    degree steers the cover toward degree-1 proteins that pull down
    their complex unambiguously.  A proteomics expert can instead
    supply explicit per-protein preferences. *)

val uniform : Hp_hypergraph.Hypergraph.t -> float array
(** Weight 1 for every vertex (minimum-cardinality cover). *)

val degree : Hp_hypergraph.Hypergraph.t -> float array

val degree_squared : Hp_hypergraph.Hypergraph.t -> float array

val of_preferences :
  Hp_hypergraph.Hypergraph.t -> (string * float) list -> default:float -> float array
(** Expert preference table keyed by vertex name; unknown names raise
    [Invalid_argument]. *)
