(* The TCP front end: the epoll/select event loop serving the full
   protocol concurrently, partial-frame robustness (1-byte-at-a-time
   clients), stalled connections not blocking anyone, and the HTTP
   /metrics + /healthz endpoints. *)

module Server = Hp_server.Server
module Client = Hp_server.Client
module Netaddr = Hp_server.Netaddr
module P = Hp_server.Protocol

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let checki = Alcotest.(check int)

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let tiny_hg = "# test\nc1: a b c\nc2: b c d\nc3: c d e\n"

let with_tcp_server ?(workers = 2) ?(queue_limit = 256) ?(http = false) f =
  let dir = Filename.temp_dir "hgd" "tcp" in
  let socket_path = Filename.concat dir "hgd.sock" in
  let config =
    {
      (Server.default_config ~socket_path) with
      workers;
      queue_limit;
      tcp = Some ("127.0.0.1", 0);
      http = (if http then Some ("127.0.0.1", 0) else None);
    }
  in
  match Server.start config with
  | Error msg -> Alcotest.failf "server start failed: %s" msg
  | Ok t ->
    let port =
      match Server.tcp_port t with
      | Some p -> p
      | None -> Alcotest.fail "no TCP port bound"
    in
    Fun.protect
      ~finally:(fun () -> Server.stop t)
      (fun () -> f ~dir ~socket_path ~t ~port)

let tcp_addr port = Client.Tcp { host = "127.0.0.1"; port }

let expect_ok what = function
  | Ok (P.Ok kvs) -> kvs
  | Ok (P.Err { code; message; _ }) ->
    Alcotest.failf "%s: unexpected ERR %s %s" what (P.error_code_to_string code)
      message
  | Error msg -> Alcotest.failf "%s: transport error %s" what msg

let load_dataset ~via dir =
  let data = Filename.concat dir "tiny.hg" in
  write_file data tiny_hg;
  let loaded =
    expect_ok "load"
      (Client.with_connection_addr via (fun c -> Client.request c (P.Load data)))
  in
  List.assoc "digest" loaded

(* ---------- raw-socket helpers (the adversarial clients) ---------- *)

let raw_tcp port =
  match Netaddr.connect ~host:"127.0.0.1" ~port with
  | Ok fd -> fd
  | Error msg -> Alcotest.failf "raw tcp connect: %s" msg

let raw_unix socket_path =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket_path);
  fd

(* One byte per write(2): every request crosses the server's framing
   in as many fragments as it has bytes. *)
let send_slow fd s =
  String.iter
    (fun ch ->
      let b = Bytes.make 1 ch in
      if Unix.write fd b 0 1 <> 1 then Alcotest.fail "short 1-byte write")
    s

let read_byte fd =
  let b = Bytes.create 1 in
  match Unix.read fd b 0 1 with 0 -> None | _ -> Some (Bytes.get b 0)

(* One byte per read(2), too. *)
let read_line_slow fd =
  let buf = Buffer.create 64 in
  let rec go () =
    match read_byte fd with
    | None -> None
    | Some '\n' -> Some (Buffer.contents buf)
    | Some ch ->
      Buffer.add_char buf ch;
      go ()
  in
  go ()

(* A full framed reply, reassembled with its newlines so transports
   can be compared byte-for-byte. *)
let read_reply_slow fd =
  match read_line_slow fd with
  | None -> Alcotest.fail "eof before reply header"
  | Some header ->
    let n =
      if String.length header >= 3 && String.sub header 0 3 = "OK " then
        match int_of_string_opt (String.sub header 3 (String.length header - 3)) with
        | Some n -> n
        | None -> Alcotest.failf "bad OK header %S" header
      else 0
    in
    let body =
      List.init n (fun i ->
          match read_line_slow fd with
          | Some l -> l
          | None -> Alcotest.failf "eof at reply line %d/%d" i n)
    in
    String.concat "\n" ((header :: body) @ [ "" ])

let recv_all fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents buf
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
  in
  go ()

let http_get fd request =
  send_slow fd request;
  recv_all fd

let status_of response =
  match String.index_opt response ' ' with
  | Some sp when String.length response >= sp + 4 ->
    String.sub response (sp + 1) 3
  | _ -> Alcotest.failf "unparsable HTTP response %S" response

let body_of response =
  let rec find i =
    if i + 3 < String.length response then
      if String.sub response i 4 = "\r\n\r\n" then
        String.sub response (i + 4) (String.length response - i - 4)
      else find (i + 1)
    else Alcotest.failf "no header/body separator in %S" response
  in
  find 0

(* ---------- full protocol over TCP ---------- *)

let test_end_to_end () =
  with_tcp_server ~http:false (fun ~dir ~socket_path ~t:_ ~port ->
      let addr = tcp_addr port in
      let digest = load_dataset ~via:addr dir in
      Client.with_connection_addr addr (fun c ->
          (* Analyses compute, then cache. *)
          let stats1 =
            expect_ok "stats over tcp"
              (Client.request c (P.Analyze { dataset = digest; analysis = P.Stats }))
          in
          checks "computed" "false" (List.assoc "cached" stats1);
          let stats2 =
            expect_ok "stats cached"
              (Client.request c (P.Analyze { dataset = digest; analysis = P.Stats }))
          in
          checks "cached" "true" (List.assoc "cached" stats2);
          (* Mutations land too: the full verb set rides TCP. *)
          let added =
            expect_ok "addvertex over tcp"
              (Client.request c (P.Add_vertex { dataset = digest; name = "zz" }))
          in
          checkb "epoch advanced" true (List.mem_assoc "epoch" added);
          (* A malformed line is an ERR, and the connection survives it
             (the Unix path closes only on oversized/transport faults). *)
          (match Client.request_line c "FROBNICATE all the things" with
          | Ok (P.Err { code = P.Bad_request; _ }) -> ()
          | other ->
            Alcotest.failf "garbage verb: expected ERR bad-request, got %s"
              (match other with
              | Ok _ -> "OK/other"
              | Error m -> "transport " ^ m));
          let pong = expect_ok "ping after err" (Client.request c P.Ping) in
          checks "pong" "hgd" (List.assoc "pong" pong);
          (* Pipelined BATCH over the event loop. *)
          (match
             Client.batch c
               [
                 P.Ping;
                 P.Analyze { dataset = digest; analysis = P.Kcore (Some 2) };
                 P.Datasets;
               ]
           with
          | Ok (Client.Items [ i1; i2; i3 ]) ->
            List.iter
              (fun (what, item) ->
                match item with
                | Ok (P.Ok _) -> ()
                | Ok (P.Err { message; _ }) ->
                  Alcotest.failf "batch %s: ERR %s" what message
                | Error m -> Alcotest.failf "batch %s: transport %s" what m)
              [ ("ping", i1); ("kcore", i2); ("datasets", i3) ]
          | Ok _ -> Alcotest.fail "batch: wrong shape"
          | Error m -> Alcotest.failf "batch: %s" m);
          Ok ())
      |> Result.get_ok;
      (* The Unix path still works, and its metrics saw the TCP side. *)
      let metrics =
        expect_ok "metrics over unix"
          (Client.with_connection ~socket_path (fun c ->
               Client.request c (P.Metrics P.Table)))
      in
      checkb "tcp connections counted" true
        (int_of_string (List.assoc "tcp_connections" metrics) >= 1))

(* ---------- partial frames: byte-at-a-time over both transports ---------- *)

let test_partial_frames_identical () =
  with_tcp_server (fun ~dir ~socket_path ~t:_ ~port ->
      let digest = load_dataset ~via:(Client.Unix_path socket_path) dir in
      let req = "KCORE " ^ digest ^ "\n" in
      (* Warm the cache so both transports serve the same stored
         reply (PING would differ: its uptime field moves). *)
      ignore
        (expect_ok "warm kcore"
           (Client.with_connection ~socket_path (fun c ->
                Client.request_line c ("KCORE " ^ digest))));
      let via_unix =
        let fd = raw_unix socket_path in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            send_slow fd req;
            read_reply_slow fd)
      in
      let via_tcp =
        let fd = raw_tcp port in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            send_slow fd req;
            read_reply_slow fd)
      in
      checkb "reply non-trivial" true (String.length via_unix > 8);
      checks "bit-identical across transports" via_unix via_tcp;
      (* Two requests dribbled down one TCP connection still frame
         correctly (the second arrives while the first's reply may be
         in flight). *)
      let fd = raw_tcp port in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          send_slow fd req;
          let first = read_reply_slow fd in
          send_slow fd req;
          let second = read_reply_slow fd in
          checks "pipelined replies identical" first second;
          checks "same as unix" via_unix first))

(* ---------- concurrency: 64 clients, none starved ---------- *)

let test_concurrent_64_clients () =
  with_tcp_server ~workers:2 ~queue_limit:512 (fun ~dir ~socket_path:_ ~t:_ ~port ->
      let addr = tcp_addr port in
      let digest = load_dataset ~via:addr dir in
      ignore
        (expect_ok "warm"
           (Client.with_connection_addr addr (fun c ->
                Client.request c
                  (P.Analyze { dataset = digest; analysis = P.Kcore (Some 2) }))));
      let failures = Atomic.make 0 in
      let incr_failures () = ignore (Atomic.fetch_and_add failures 1) in
      let worker _i =
        match Client.connect_addr addr with
        | Error _ -> Atomic.fetch_and_add failures 10 |> ignore
        | Ok c ->
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              Client.set_timeout c 30.0;
              for _ = 1 to 5 do
                match
                  Client.request c
                    (P.Analyze { dataset = digest; analysis = P.Kcore (Some 2) })
                with
                | Ok (P.Ok _) -> ()
                | _ -> incr_failures ()
              done)
      in
      let threads = List.init 64 (fun i -> Thread.create worker i) in
      List.iter Thread.join threads;
      checki "no failed requests across 64 concurrent clients" 0
        (Atomic.get failures))

(* ---------- a stalled client must not block anyone ---------- *)

let test_stalled_client_no_blocking () =
  with_tcp_server (fun ~dir ~socket_path:_ ~t:_ ~port ->
      let addr = tcp_addr port in
      let digest = load_dataset ~via:addr dir in
      ignore
        (expect_ok "warm"
           (Client.with_connection_addr addr (fun c ->
                Client.request c
                  (P.Analyze { dataset = digest; analysis = P.Kcore (Some 2) }))));
      (* Two flavours of stall: half a request line, and a batch header
         whose items never arrive.  Both hold server-side buffers. *)
      let stalled_line = raw_tcp port in
      send_slow stalled_line "KCORE deadbee";
      let stalled_batch = raw_tcp port in
      send_slow stalled_batch "BATCH 3\nPING\n";
      Fun.protect
        ~finally:(fun () ->
          Unix.close stalled_line;
          Unix.close stalled_batch)
        (fun () ->
          (* Other connections make normal progress the whole time. *)
          let t0 = Unix.gettimeofday () in
          for _ = 1 to 5 do
            ignore
              (expect_ok "request beside stalled clients"
                 (Client.with_connection_addr addr (fun c ->
                      Client.set_timeout c 10.0;
                      Client.request c
                        (P.Analyze { dataset = digest; analysis = P.Kcore (Some 2) }))))
          done;
          let elapsed = Unix.gettimeofday () -. t0 in
          checkb
            (Printf.sprintf "progress beside stalls took %.1fs" elapsed)
            true (elapsed < 10.0);
          (* The stalled line eventually completes and gets its answer:
             the buffered half-request was preserved intact. *)
          send_slow stalled_line "f\n";
          match read_line_slow stalled_line with
          | Some header ->
            checkb ("stalled completion answered: " ^ header) true
              (String.length header >= 3
              && (String.sub header 0 3 = "OK " || String.sub header 0 3 = "ERR"))
          | None -> Alcotest.fail "stalled connection lost its buffered bytes"))

(* ---------- HTTP endpoints ---------- *)

let prom_line_ok l =
  l = ""
  || String.length l >= 1
     && (l.[0] = '#'
        || String.length l > 4
           && String.sub l 0 4 = "hgd_"
           && String.contains l ' ')

let test_http_endpoints () =
  with_tcp_server ~http:true (fun ~dir ~socket_path:_ ~t ~port ->
      let hport =
        match Server.http_port t with
        | Some p -> p
        | None -> Alcotest.fail "no HTTP port bound"
      in
      let addr = tcp_addr port in
      ignore (load_dataset ~via:addr dir);
      let get ~port req =
        let fd = raw_tcp port in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () -> http_get fd req)
      in
      (* Health and metrics on the dedicated port. *)
      let health = get ~port:hport "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n" in
      checks "healthz status" "200" (status_of health);
      checks "healthz body" "ok\n" (body_of health);
      let metrics = get ~port:hport "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n" in
      checks "metrics status" "200" (status_of metrics);
      checkb "prometheus content type" true
        (let n = "text/plain; version=0.0.4" in
         let rec find i =
           i + String.length n <= String.length metrics
           && (String.sub metrics i (String.length n) = n || find (i + 1))
         in
         find 0);
      let mbody = body_of metrics in
      checkb "metrics carry requests_total" true
        (let n = "hgd_requests_total" in
         let rec find i =
           i + String.length n <= String.length mbody
           && (String.sub mbody i (String.length n) = n || find (i + 1))
         in
         find 0);
      List.iter
        (fun l -> checkb ("prom line: " ^ l) true (prom_line_ok l))
        (String.split_on_char '\n' mbody);
      (* Same endpoints answer on the protocol port by sniffing. *)
      let sniffed = get ~port "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n" in
      checks "sniffed healthz status" "200" (status_of sniffed);
      (* Errors: unknown path, bad method, non-HTTP garbage. *)
      checks "404" "404" (status_of (get ~port:hport "GET /nope HTTP/1.1\r\n\r\n"));
      checks "405" "405"
        (status_of (get ~port:hport "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n"));
      checks "400" "400" (status_of (get ~port:hport "how about no\r\n\r\n")))

(* ---------- the portable select backend serves the same traffic ---------- *)

let test_select_backend () =
  Unix.putenv "HGD_EVENT_BACKEND" "select";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "HGD_EVENT_BACKEND" "")
    (fun () ->
      with_tcp_server (fun ~dir ~socket_path:_ ~t:_ ~port ->
          let addr = tcp_addr port in
          let digest = load_dataset ~via:addr dir in
          let kcore =
            expect_ok "kcore on select backend"
              (Client.with_connection_addr addr (fun c ->
                   Client.request c
                     (P.Analyze { dataset = digest; analysis = P.Kcore (Some 2) })))
          in
          checkb "k parses" true (List.mem_assoc "k" kcore);
          (* Byte-at-a-time and HTTP survive the fallback too. *)
          let fd = raw_tcp port in
          Fun.protect
            ~finally:(fun () -> Unix.close fd)
            (fun () ->
              send_slow fd ("KCORE " ^ digest ^ "\n");
              checkb "slow reply on select backend" true
                (String.length (read_reply_slow fd) > 8));
          let fd = raw_tcp port in
          Fun.protect
            ~finally:(fun () -> Unix.close fd)
            (fun () ->
              checks "healthz on select backend" "200"
                (status_of (http_get fd "GET /healthz HTTP/1.1\r\n\r\n")))))

(* ---------- batched mutations: one repair per burst ---------- *)

(* A BATCH whose items include a run of mutations on one dataset is
   applied through a single Registry.mutate_batch: per-item replies
   must match what the per-op path would have produced (sequential
   epochs, assigned ids, counts after each op), an invalid item is
   rejected without poisoning the rest of the burst, and the dataset
   keeps serving correct analyses afterwards. *)
let test_batched_mutations () =
  with_tcp_server (fun ~dir ~socket_path ~t:_ ~port ->
      let digest = load_dataset ~via:(tcp_addr port) dir in
      let items =
        Client.with_connection_addr (tcp_addr port) (fun c ->
            Client.batch c
              [
                P.Add_vertex { dataset = digest; name = "z1" };
                P.Add_edge { dataset = digest; name = "zc"; members = [ 0; 1; 5 ] };
                P.Del_edge { dataset = digest; edge = 99 };
                P.Add_edge { dataset = digest; name = "zd"; members = [ 2; 3 ] };
                P.Ping;
                P.Add_vertex { dataset = digest; name = "z2" };
              ])
        |> Result.get_ok
      in
      let items =
        match items with
        | Client.Items l -> Array.of_list l
        | _ -> Alcotest.fail "batch: wrong reply shape"
      in
      checki "six sub-replies" 6 (Array.length items);
      let ok i =
        match items.(i) with
        | Ok (P.Ok kvs) -> kvs
        | Ok (P.Err { message; _ }) -> Alcotest.failf "item %d: ERR %s" i message
        | Error m -> Alcotest.failf "item %d: transport %s" i m
      in
      let kv i key = List.assoc key (ok i) in
      (* The run's per-item replies carry sequential epochs and the
         same assigned ids the per-op path would have handed out. *)
      checks "item0 epoch" "1" (kv 0 "epoch");
      checks "item0 assigned" "5" (kv 0 "assigned");
      checks "item0 vertices" "6" (kv 0 "vertices");
      checks "item1 epoch" "2" (kv 1 "epoch");
      checks "item1 assigned" "3" (kv 1 "assigned");
      checks "item1 hyperedges" "4" (kv 1 "hyperedges");
      (* The doomed DELEDGE is rejected alone; the burst continues. *)
      (match items.(2) with
      | Ok (P.Err { code = P.Bad_request; _ }) -> ()
      | _ -> Alcotest.fail "item2: expected ERR bad-request");
      checks "item3 epoch" "3" (kv 3 "epoch");
      checkb "item4 pong" true (List.mem_assoc "pong" (ok 4));
      (* The singleton run after PING rides the per-op path and sees
         the batch's state. *)
      checks "item5 epoch" "4" (kv 5 "epoch");
      checks "item5 assigned" "6" (kv 5 "assigned");
      checks "item5 vertices" "7" (kv 5 "vertices");
      (* The maintained decomposition absorbed the burst: analyses keep
         working and INFO accounts the repairs. *)
      let kcore =
        expect_ok "kcore after batch"
          (Client.with_connection ~socket_path (fun c ->
               Client.request_line c ("KCORE " ^ digest)))
      in
      checkb "kcore answers" true (List.mem_assoc "k" kcore);
      let info =
        expect_ok "info"
          (Client.with_connection ~socket_path (fun c -> Client.request c P.Info))
      in
      checks "budget reported" "4096" (List.assoc "kcore_budget" info);
      checkb "no budget fallbacks" true
        (List.assoc "kcore_budget_fallbacks" info = "0");
      let repairs =
        int_of_string (List.assoc "kcore_cascade_repairs" info)
        + int_of_string (List.assoc "kcore_component_repairs" info)
        + int_of_string (List.assoc "kcore_full_repeels" info)
      in
      (* 4 applied ops, but the 3-op run cost one repair: at most 2
         repairs total (the run's plus the singleton's). *)
      checkb "burst amortized into one repair" true (repairs <= 2 && repairs >= 1))

(* ---------- SHUTDOWN over TCP stops the daemon cleanly ---------- *)

let test_tcp_shutdown () =
  let dir = Filename.temp_dir "hgd" "tcpshut" in
  let socket_path = Filename.concat dir "hgd.sock" in
  let config =
    {
      (Server.default_config ~socket_path) with
      workers = 2;
      tcp = Some ("127.0.0.1", 0);
    }
  in
  match Server.start config with
  | Error msg -> Alcotest.failf "server start failed: %s" msg
  | Ok t ->
    let port =
      match Server.tcp_port t with Some p -> p | None -> Alcotest.fail "no port"
    in
    let reply =
      expect_ok "shutdown over tcp"
        (Client.with_connection_addr (tcp_addr port) (fun c ->
             Client.request c P.Shutdown))
    in
    checks "acknowledged" "true" (List.assoc "shutting_down" reply);
    (* The reply was written before the loop died, and wait returns. *)
    Server.wait t;
    checkb "socket removed" false (Sys.file_exists socket_path);
    match Client.connect_addr (tcp_addr port) with
    | Ok c ->
      Client.close c;
      Alcotest.fail "TCP port should be closed after shutdown"
    | Error _ -> ()

let () =
  Alcotest.run "hp_tcp"
    [
      ( "tcp",
        [
          Alcotest.test_case "full protocol end to end" `Quick test_end_to_end;
          Alcotest.test_case "partial frames, identical replies" `Quick
            test_partial_frames_identical;
          Alcotest.test_case "64 concurrent clients" `Quick
            test_concurrent_64_clients;
          Alcotest.test_case "stalled client blocks nobody" `Quick
            test_stalled_client_no_blocking;
          Alcotest.test_case "batched mutations, one repair per burst" `Quick
            test_batched_mutations;
          Alcotest.test_case "shutdown verb over tcp" `Quick test_tcp_shutdown;
        ] );
      ( "http",
        [ Alcotest.test_case "metrics and healthz" `Quick test_http_endpoints ] );
      ( "select-backend",
        [ Alcotest.test_case "fallback serves traffic" `Quick test_select_backend ]
      );
    ]
