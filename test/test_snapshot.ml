(* The binary snapshot store: pack/mmap round-trips, the corruption
   matrix (truncation, foreign bytes, version skew, checksum damage ⇒
   typed errors, never exceptions), and kernel bit-identity between
   text parse and snapshot load at 1/2/7 domains. *)

module H = Hp_hypergraph.Hypergraph
module HIO = Hp_hypergraph.Hypergraph_io
module HC = Hp_hypergraph.Hypergraph_core
module HP = Hp_hypergraph.Hypergraph_path
module MM = Hp_data.Matrix_market
module S = Hp_snapshot.Snapshot

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let tmp_dir () = Filename.temp_dir "hgsnap" "test"

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_bytes path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let expect_hypergraph what = function
  | Ok (h, _) -> h
  | Error e -> Alcotest.failf "%s: %s" what (S.error_to_string e)

let pack_to dir name h =
  let path = Filename.concat dir name in
  let info : S.pack_info = S.pack h path in
  checkb (name ^ ": pack reports the file size") true
    (info.bytes = (Unix.stat path).Unix.st_size);
  path

let same_names a b =
  H.n_vertices a = H.n_vertices b
  && H.n_edges a = H.n_edges b
  && Array.for_all
       (fun v -> H.vertex_name a v = H.vertex_name b v)
       (Array.init (H.n_vertices a) Fun.id)
  && Array.for_all (fun e -> H.edge_name a e = H.edge_name b e)
       (Array.init (H.n_edges a) Fun.id)

(* ---------- round trips ---------- *)

let test_round_trip_named () =
  let dir = tmp_dir () in
  let h = (Hp_data.Cellzome.generate ~seed:7 ()).hypergraph in
  let path = pack_to dir "cellzome.hgsnap" h in
  let h', t = Result.get_ok (S.read path) in
  checkb "structure survives" true (H.equal_structure h h');
  checkb "names survive" true (same_names h h');
  check "incidence recorded" (H.total_incidence h) t.S.incidence;
  checks "identity is stable across re-pack" t.S.identity
    (S.pack h (Filename.concat dir "again.hgsnap")).S.identity

let test_round_trip_unnamed () =
  let dir = tmp_dir () in
  let h =
    H.of_arrays ~n_vertices:6 [| [| 0; 1; 2 |]; [| 2; 3 |]; [| 1; 4; 5 |]; [||] |]
  in
  let path = pack_to dir "plain.hgsnap" h in
  let h' = expect_hypergraph "read" (S.read path) in
  checkb "structure survives" true (H.equal_structure h h');
  checks "fallback names" "v3" (H.vertex_name h' 3);
  checkb "no vertex names stored" true (H.vertex_names_opt h' = None)

let test_round_trip_degenerate () =
  let dir = tmp_dir () in
  List.iteri
    (fun i h ->
      let path = pack_to dir (Printf.sprintf "degenerate%d.hgsnap" i) h in
      let h' = expect_hypergraph "read" (S.read path) in
      checkb "structure survives" true (H.equal_structure h h');
      match S.verify path with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "verify: %s" (S.error_to_string e))
    [
      H.create ~n_vertices:0 [];                    (* nothing at all *)
      H.create ~n_vertices:4 [];                    (* vertices, no edges *)
      H.create ~n_vertices:3 [ []; [ 0; 2 ] ];      (* an empty hyperedge *)
      H.create ~n_vertices:1 [ [ 0 ]; [ 0 ]; [ 0 ] ];
    ]

let test_round_trip_mtx () =
  let dir = tmp_dir () in
  let m = MM.banded (Hp_util.Prng.create 11) ~n:120 ~bandwidth:9 ~fill:0.7 in
  let h = MM.to_hypergraph m in
  let path = pack_to dir "banded.hgsnap" h in
  let h' = expect_hypergraph "read" (S.read path) in
  checkb "structure survives" true (H.equal_structure h h');
  checkb "names survive" true (same_names h h')

let test_weird_names () =
  (* The blob stores names by offset, so bytes the text format could
     never carry (spaces, newlines, NULs) must round-trip. *)
  let dir = tmp_dir () in
  let h =
    H.of_arrays
      ~vertex_names:[| "a b"; "t\tab"; ""; "nu\000l"; "line\nfeed" |]
      ~edge_names:[| "\xff\xfe"; "" |]
      ~n_vertices:5
      [| [| 0; 1; 4 |]; [| 2; 3 |] |]
  in
  let path = pack_to dir "weird.hgsnap" h in
  let h' = expect_hypergraph "read" (S.read path) in
  checkb "names survive" true (same_names h h')

(* ---------- corruption matrix ---------- *)

let load_error what path =
  match S.load path with
  | Ok _ -> Alcotest.failf "%s: load should fail" what
  | Error e -> e

let test_truncation () =
  let dir = tmp_dir () in
  let h = H.create ~n_vertices:4 [ [ 0; 1 ]; [ 1; 2; 3 ] ] in
  let path = pack_to dir "whole.hgsnap" h in
  let whole = read_bytes path in
  let cut = Filename.concat dir "cut.hgsnap" in
  List.iter
    (fun keep ->
      write_bytes cut (String.sub whole 0 keep);
      match load_error (Printf.sprintf "truncated to %d" keep) cut with
      | S.Truncated _ -> ()
      | e ->
        Alcotest.failf "truncated to %d: expected Truncated, got %s" keep
          (S.error_to_string e))
    [ 0; 8; 71; 100; String.length whole - 8; String.length whole - 1 ]

let flip path at =
  let b = Bytes.of_string (read_bytes path) in
  Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0x01));
  write_bytes path (Bytes.to_string b)

let test_bad_magic () =
  let dir = tmp_dir () in
  let h = H.create ~n_vertices:2 [ [ 0; 1 ] ] in
  let path = pack_to dir "magic.hgsnap" h in
  flip path 0;
  (match load_error "flipped magic" path with
  | S.Bad_magic -> ()
  | e -> Alcotest.failf "expected Bad_magic, got %s" (S.error_to_string e));
  (* A text dataset is not a snapshot either. *)
  let text = Filename.concat dir "text.hg" in
  HIO.write text (Hp_data.Cellzome.generate ~seed:3 ()).hypergraph;
  match load_error "text file" text with
  | S.Bad_magic -> ()
  | e -> Alcotest.failf "expected Bad_magic, got %s" (S.error_to_string e)

let test_version_skew () =
  let dir = tmp_dir () in
  let h = H.create ~n_vertices:2 [ [ 0; 1 ] ] in
  let path = pack_to dir "version.hgsnap" h in
  let b = Bytes.of_string (read_bytes path) in
  Hp_util.Binary.set_int_le b ~pos:8 99;
  write_bytes path (Bytes.to_string b);
  match load_error "future version" path with
  | S.Version_skew { found } -> check "reports the found version" 99 found
  | e -> Alcotest.failf "expected Version_skew, got %s" (S.error_to_string e)

let test_payload_corruption () =
  let dir = tmp_dir () in
  let h = H.create ~n_vertices:5 [ [ 0; 1; 2 ]; [ 2; 3; 4 ] ] in
  let path = pack_to dir "payload.hgsnap" h in
  let size = String.length (read_bytes path) in
  (* Flip one byte in the last section's payload. *)
  flip path (size - 3);
  (match load_error "payload flip" path with
  | S.Digest_mismatch _ -> ()
  | e -> Alcotest.failf "expected Digest_mismatch, got %s" (S.error_to_string e));
  (* Flip a stored section checksum inside the table: the table's own
     checksum catches it before any section is trusted. *)
  let path2 = pack_to dir "table.hgsnap" h in
  flip path2 (72 + 24);
  (match load_error "table flip" path2 with
  | S.Digest_mismatch "header" -> ()
  | e ->
    Alcotest.failf "expected Digest_mismatch header, got %s" (S.error_to_string e));
  (* Flip a count field: also covered by the table checksum. *)
  let path3 = pack_to dir "count.hgsnap" h in
  flip path3 24;
  match load_error "count flip" path3 with
  | S.Digest_mismatch "header" -> ()
  | e ->
    Alcotest.failf "expected Digest_mismatch header, got %s" (S.error_to_string e)

let test_identity_corruption () =
  (* The identity is trusted on load (it is not a corruption check;
     the per-section checksums are) but verify recomputes it. *)
  let dir = tmp_dir () in
  let h = H.create ~n_vertices:3 [ [ 0; 1; 2 ] ] in
  let path = pack_to dir "identity.hgsnap" h in
  let b = Bytes.of_string (read_bytes path) in
  Bytes.set b 50 (Char.chr (Char.code (Bytes.get b 50) lxor 0x40));
  (* Restore the table checksum over the altered header so only the
     identity is inconsistent. *)
  let count = Option.get (Hp_util.Binary.get_int_le b ~pos:64) in
  let table_end = 72 + (32 * count) + 8 in
  Hp_util.Binary.set_i64_le b ~pos:(table_end - 8)
    (Int64.of_int
       (Hp_util.Binary.hash64 Hp_util.Binary.hash64_seed b ~pos:0
          ~len:(table_end - 8)));
  write_bytes path (Bytes.to_string b);
  checkb "load accepts" true (Result.is_ok (S.load path));
  match S.verify path with
  | Error (S.Digest_mismatch "identity") -> ()
  | Error e -> Alcotest.failf "expected identity mismatch, got %s" (S.error_to_string e)
  | Ok _ -> Alcotest.fail "verify should reject a forged identity"

let test_load_never_raises () =
  (* Fuzz bit flips across the whole file: every mutation must come
     back as a typed error or a (differently) valid snapshot. *)
  let dir = tmp_dir () in
  let h = H.create ~n_vertices:6 [ [ 0; 1; 2 ]; [ 3; 4 ]; [ 0; 5 ] ] in
  let path = pack_to dir "fuzz.hgsnap" h in
  let whole = read_bytes path in
  let target = Filename.concat dir "fuzzed.hgsnap" in
  let rng = Hp_util.Prng.create 42 in
  for _ = 1 to 200 do
    let b = Bytes.of_string whole in
    let at = Hp_util.Prng.int rng (Bytes.length b) in
    Bytes.set b at (Char.chr (Hp_util.Prng.int rng 256));
    write_bytes target (Bytes.to_string b);
    match S.read target with
    | Ok _ | Error _ -> ()
  done

let test_missing_file () =
  let dir = tmp_dir () in
  match load_error "absent" (Filename.concat dir "absent.hgsnap") with
  | S.Io _ -> ()
  | e -> Alcotest.failf "expected Io, got %s" (S.error_to_string e)

(* ---------- kernel bit-identity ---------- *)

let example_datasets () =
  let cellzome = (Hp_data.Cellzome.generate ~seed:2004 ()).hypergraph in
  let mm =
    MM.synthetic_suite ~seed:2004 ()
    |> List.filter_map (fun (name, m) ->
           (* Keep the test suite fast: the path sweep below is all-pairs. *)
           if MM.nnz m <= 30000 then Some (name, MM.to_hypergraph m) else None)
  in
  ("cellzome", cellzome) :: mm

let test_kernels_bit_identical () =
  let dir = tmp_dir () in
  List.iter
    (fun (name, h) ->
      let path = pack_to dir (name ^ ".hgsnap") h in
      let h' = expect_hypergraph name (S.read path) in
      checkb (name ^ ": structure") true (H.equal_structure h h');
      List.iter
        (fun domains ->
          let d = HC.decompose ~domains h and d' = HC.decompose ~domains h' in
          check
            (Printf.sprintf "%s: max core at %d domains" name domains)
            d.HC.max_core d'.HC.max_core;
          checkb
            (Printf.sprintf "%s: vertex cores at %d domains" name domains)
            true (d.HC.vertex_core = d'.HC.vertex_core);
          checkb
            (Printf.sprintf "%s: edge cores at %d domains" name domains)
            true (d.HC.edge_core = d'.HC.edge_core);
          let k, r = HC.max_core ~domains h and k', r' = HC.max_core ~domains h' in
          check (Printf.sprintf "%s: k_core index" name) k k';
          checkb (Printf.sprintf "%s: k_core members" name) true
            (r.HC.vertex_ids = r'.HC.vertex_ids && r.HC.edge_ids = r'.HC.edge_ids))
        [ 1; 2; 7 ])
    (example_datasets ())

let test_paths_bit_identical () =
  let h = (Hp_data.Cellzome.generate ~seed:2004 ()).hypergraph in
  let dir = tmp_dir () in
  let path = pack_to dir "paths.hgsnap" h in
  let h' = expect_hypergraph "read" (S.read path) in
  List.iter
    (fun domains ->
      let d, apl = HP.diameter_and_average_path ~domains h in
      let d', apl' = HP.diameter_and_average_path ~domains h' in
      check (Printf.sprintf "diameter at %d domains" domains) d d';
      checkb (Printf.sprintf "average path at %d domains" domains) true
        (apl = apl'))
    [ 1; 2; 7 ]

let () =
  Alcotest.run "hp_snapshot"
    [
      ( "round-trip",
        [
          Alcotest.test_case "named dataset" `Quick test_round_trip_named;
          Alcotest.test_case "unnamed dataset" `Quick test_round_trip_unnamed;
          Alcotest.test_case "degenerate shapes" `Quick test_round_trip_degenerate;
          Alcotest.test_case "matrix-market dataset" `Quick test_round_trip_mtx;
          Alcotest.test_case "hostile names" `Quick test_weird_names;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "truncation" `Quick test_truncation;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "version skew" `Quick test_version_skew;
          Alcotest.test_case "payload and table damage" `Quick test_payload_corruption;
          Alcotest.test_case "identity forgery" `Quick test_identity_corruption;
          Alcotest.test_case "bit-flip fuzz never raises" `Quick test_load_never_raises;
          Alcotest.test_case "missing file" `Quick test_missing_file;
        ] );
      ( "bit-identity",
        [
          Alcotest.test_case "decompose and k-core at 1/2/7 domains" `Slow
            test_kernels_bit_identical;
          Alcotest.test_case "path kernel at 1/2/7 domains" `Slow
            test_paths_bit_identical;
        ] );
    ]
