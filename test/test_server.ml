(* The hgd server stack: protocol encode/decode, registry identity,
   metrics, and a socket-level integration pass against an in-process
   server (LOAD + STATS + KCORE, repeated query served from cache,
   malformed requests answered with structured errors). *)

module P = Hp_server.Protocol
module Server = Hp_server.Server
module Client = Hp_server.Client
module Registry = Hp_server.Registry
module Metrics = Hp_server.Metrics
module Result_cache = Hp_server.Result_cache
module Snap = Hp_snapshot.Snapshot
module HIO = Hp_hypergraph.Hypergraph_io

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* ---------- protocol ---------- *)

let test_parse_requests () =
  let ok line req =
    match P.parse_request line with
    | Ok got -> checkb line true (got = req)
    | Error msg -> Alcotest.failf "%s: unexpected parse error %s" line msg
  in
  ok "LOAD data/x.hg" (P.Load "data/x.hg");
  ok "load data/x.hg" (P.Load "data/x.hg");
  ok "STATS abcd1234" (P.Analyze { dataset = "abcd1234"; analysis = P.Stats });
  ok "KCORE abcd1234" (P.Analyze { dataset = "abcd1234"; analysis = P.Kcore None });
  ok "KCORE abcd1234 3"
    (P.Analyze { dataset = "abcd1234"; analysis = P.Kcore (Some 3) });
  ok "COVER abcd1234"
    (P.Analyze
       { dataset = "abcd1234"; analysis = P.Cover { weighting = P.Uniform; r = 1 } });
  ok "COVER abcd1234 degree2 2"
    (P.Analyze
       {
         dataset = "abcd1234";
         analysis = P.Cover { weighting = P.Degree_squared; r = 2 };
       });
  ok "  METRICS  " (P.Metrics P.Table);
  ok "METRICS table" (P.Metrics P.Table);
  ok "METRICS prom" (P.Metrics P.Prometheus);
  ok "metrics PROMETHEUS" (P.Metrics P.Prometheus);
  ok "TRACE" (P.Trace None);
  ok "TRACE 5" (P.Trace (Some 5));
  ok "EVICT" (P.Evict None);
  ok "EVICT abcd" (P.Evict (Some "abcd"));
  ok "PING" P.Ping;
  ok "SHUTDOWN" P.Shutdown;
  ok "BATCH 1" (P.Batch 1);
  ok "batch 1024" (P.Batch P.max_batch_items);
  ok "ADDVERTEX abcd1234 p53"
    (P.Add_vertex { dataset = "abcd1234"; name = "p53" });
  ok "addvertex abcd1234 p53"
    (P.Add_vertex { dataset = "abcd1234"; name = "p53" });
  ok "ADDEDGE abcd1234 cplx 0 5 2"
    (P.Add_edge { dataset = "abcd1234"; name = "cplx"; members = [ 0; 5; 2 ] });
  ok "ADDEDGE abcd1234 lonely"
    (P.Add_edge { dataset = "abcd1234"; name = "lonely"; members = [] });
  ok "DELEDGE abcd1234 3" (P.Del_edge { dataset = "abcd1234"; edge = 3 });
  ok "CHECKPOINT abcd1234" (P.Checkpoint "abcd1234")

let test_parse_rejects () =
  let bad line =
    match P.parse_request line with
    | Ok _ -> Alcotest.failf "%S should not parse" line
    | Error _ -> ()
  in
  bad "";
  bad "   ";
  bad "FROB x";
  bad "LOAD";
  bad "LOAD a b";
  bad "STATS";
  bad "KCORE ds notanint";
  bad "KCORE ds -1";
  bad "COVER ds upside-down";
  bad "COVER ds degree 0";
  bad "METRICS json";
  bad "METRICS prom extra";
  bad "TRACE 0";
  bad "TRACE -3";
  bad "TRACE notanint";
  bad "TRACE 1 2";
  bad "PING extra";
  bad "SHUTDOWN now";
  bad "BATCH";
  bad "BATCH 0";
  bad "BATCH -2";
  bad "BATCH notanint";
  bad ("BATCH " ^ string_of_int (P.max_batch_items + 1));
  bad "BATCH 1 2";
  bad "ADDVERTEX";
  bad "ADDVERTEX ds";
  bad "ADDVERTEX ds a b";
  bad "ADDEDGE";
  bad "ADDEDGE ds";
  bad "ADDEDGE ds name notanint";
  bad "ADDEDGE ds name -1";
  bad "DELEDGE ds";
  bad "DELEDGE ds -1";
  bad "DELEDGE ds notanint";
  bad "DELEDGE ds 1 2";
  bad "CHECKPOINT";
  bad "CHECKPOINT a b"

let request_gen =
  QCheck.Gen.(
    let dataset = string_size ~gen:(oneofl [ 'a'; 'b'; '0'; '9'; 'f' ]) (return 8) in
    let weighting = oneofl [ P.Uniform; P.Degree; P.Degree_squared ] in
    let analysis =
      oneof
        [
          return P.Stats;
          map (fun k -> P.Kcore k) (opt (int_range 0 20));
          map2 (fun w r -> P.Cover { weighting = w; r }) weighting (int_range 1 5);
          return P.Storage;
          return P.Powerlaw;
        ]
    in
    oneof
      [
        map (fun ds -> P.Load ("data/" ^ ds ^ ".hg")) dataset;
        map2 (fun ds a -> P.Analyze { dataset = ds; analysis = a }) dataset analysis;
        return P.Datasets;
        map (fun f -> P.Metrics f) (oneofl [ P.Table; P.Prometheus ]);
        map (fun n -> P.Trace n) (opt (int_range 1 50));
        map (fun ds -> P.Evict ds) (opt dataset);
        return P.Ping;
        return P.Shutdown;
        map (fun n -> P.Batch n) (int_range 1 P.max_batch_items);
        map2
          (fun ds n -> P.Add_vertex { dataset = ds; name = "v" ^ string_of_int n })
          dataset (int_range 0 99);
        map3
          (fun ds n members ->
            P.Add_edge { dataset = ds; name = "e" ^ string_of_int n; members })
          dataset (int_range 0 99)
          (list_size (int_range 0 4) (int_range 0 50));
        map2 (fun ds e -> P.Del_edge { dataset = ds; edge = e }) dataset
          (int_range 0 99);
        map (fun ds -> P.Checkpoint ds) dataset;
      ])

let request_print r = P.request_line r

let prop_request_roundtrip =
  QCheck.Test.make ~name:"protocol: request_line round-trips" ~count:500
    (QCheck.make ~print:request_print request_gen)
    (fun req -> P.parse_request (P.request_line req) = Ok req)

let payload_gen =
  QCheck.Gen.(
    let token =
      string_size ~gen:(oneofl [ 'a'; 'z'; '0'; '.'; '-'; ' ' ]) (int_range 1 12)
    in
    let key = string_size ~gen:(oneofl [ 'a'; 'z'; '_' ]) (int_range 1 8) in
    list_size (int_range 0 10) (pair key token))

let reply_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun kvs -> P.Ok kvs) payload_gen;
        map3
          (fun code retry_after_ms message ->
            P.Err { code; message; retry_after_ms })
          (oneofl
             [ P.Bad_request; P.Unknown_dataset; P.Parse_error; P.Io_error;
               P.Timeout; P.Busy; P.Internal ])
          (opt (int_range 0 60_000))
          (string_size ~gen:(oneofl [ 'x'; ' '; '1' ]) (int_range 0 20));
      ])

let prop_reply_roundtrip =
  QCheck.Test.make ~name:"protocol: reply encode/decode round-trips" ~count:500
    (QCheck.make ~print:P.encode_reply reply_gen)
    (fun reply -> P.decode_reply (P.encode_reply reply) = Ok reply)

let test_reply_sanitization () =
  (* Tabs and newlines in payloads must not break framing. *)
  let encoded = P.encode_reply (P.Ok [ ("key", "a\tb\nc") ]) in
  match P.decode_reply encoded with
  | Ok (P.Ok [ ("key", v) ]) ->
    checks "sanitized" "a b c" v
  | _ -> Alcotest.fail "sanitized reply should decode to one binding"

let test_analysis_key_defaults () =
  checks "kcore max" "kcore k=max" (P.analysis_key (P.Kcore None));
  checks "kcore 3" "kcore k=3" (P.analysis_key (P.Kcore (Some 3)));
  checks "cover" "cover w=degree2 r=2"
    (P.analysis_key (P.Cover { weighting = P.Degree_squared; r = 2 }))

(* ---------- registry ---------- *)

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let tiny_hg = "# test\nc1: a b c\nc2: b c d\nc3: c d e\n"

let test_registry_identity () =
  let dir = Filename.temp_dir "hgd" "registry" in
  let p1 = Filename.concat dir "one.hg" in
  let p2 = Filename.concat dir "two.hg" in
  write_file p1 tiny_hg;
  write_file p2 tiny_hg;
  let r = Registry.create () in
  (match (Registry.load r p1, Registry.load r p1, Registry.load r p2) with
  | Ok (e1, fresh1), Ok (e2, fresh2), Ok (e3, fresh3) ->
    checkb "first load is fresh" true fresh1;
    checkb "reload is resident" false fresh2;
    checkb "same bytes, same dataset" false fresh3;
    checks "stable digest" e1.digest e2.digest;
    checks "content-addressed" e1.digest e3.digest;
    check "one resident dataset" 1 (List.length (Registry.list r));
    (match Registry.find r (String.sub e1.digest 0 8) with
    | `Found e -> checks "prefix lookup" e1.digest e.digest
    | _ -> Alcotest.fail "digest prefix should resolve");
    checkb "short prefix missing" true (Registry.find r "ab" = `Missing);
    checkb "evict" true (Registry.evict r e1.digest <> None);
    check "empty after evict" 0 (List.length (Registry.list r))
  | _ -> Alcotest.fail "loads should succeed");
  (match Registry.load r (Filename.concat dir "absent.hg") with
  | Error (Registry.Read_failed _) -> ()
  | _ -> Alcotest.fail "missing file should be Read_failed");
  let bad = Filename.concat dir "bad.hg" in
  write_file bad "c1: a b\nbroken line here\n";
  match Registry.load r bad with
  | Error (Registry.Parse_failed msg) ->
    checkb "names the file" true
      (String.length msg >= String.length bad
      && String.sub msg 0 (String.length bad) = bad)
  | _ -> Alcotest.fail "malformed file should be Parse_failed"

(* A text path with a valid sibling snapshot loads from the snapshot; a
   corrupt sibling is rejected and falls back to the text parse; a
   stale sibling (text edited after the pack) is ignored outright. *)
let test_registry_snapshot_preference () =
  let dir = Filename.temp_dir "hgd" "regsnap" in
  let path = Filename.concat dir "data.hg" in
  write_file path tiny_hg;
  let expect_load r p =
    match Registry.load r p with
    | Ok (e, fresh) ->
      checkb "load is fresh" true fresh;
      e
    | Error (Registry.Read_failed m | Registry.Parse_failed m) ->
      Alcotest.failf "load %s: %s" p m
  in
  (* No sibling yet: plain text load. *)
  let e = expect_load (Registry.create ()) path in
  checkb "text source" true (e.Registry.source = Registry.Text);
  checkb "no fallback" false e.Registry.fallback;
  let text_digest = e.Registry.digest in
  (* Pack the sibling (mtime >= the text file's): now preferred. *)
  let snap = Snap.sibling_path path in
  let info = Snap.pack (HIO.of_string tiny_hg) snap in
  let e = expect_load (Registry.create ()) path in
  checkb "snapshot source" true (e.Registry.source = Registry.Snapshot_file snap);
  checks "snapshot identity as digest" info.Snap.identity e.Registry.digest;
  checkb "identity differs from text digest" true
    (e.Registry.digest <> text_digest);
  checkb "no fallback" false e.Registry.fallback;
  (* Stale sibling: make the text file strictly newer; it wins. *)
  let future = Unix.gettimeofday () +. 3600.0 in
  Unix.utimes path future future;
  let e = expect_load (Registry.create ()) path in
  checkb "stale sibling ignored" true (e.Registry.source = Registry.Text);
  checkb "stale sibling is not a fallback" false e.Registry.fallback;
  Unix.utimes snap (future +. 1.0) (future +. 1.0);
  (* Corrupt sibling: degrade to the text parse, marked as fallback. *)
  let bytes =
    let ic = open_in_bin snap in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  in
  let corrupt = Bytes.of_string bytes in
  let mid = Bytes.length corrupt / 2 in
  Bytes.set corrupt mid (Char.chr (Char.code (Bytes.get corrupt mid) lxor 0x40));
  write_file snap (Bytes.to_string corrupt);
  (* Rewriting reset the sibling's mtime; keep it ahead of the text
     file so it is still the preferred load. *)
  Unix.utimes snap (future +. 1.0) (future +. 1.0);
  let e = expect_load (Registry.create ()) path in
  checkb "fallback to text" true (e.Registry.source = Registry.Text);
  checkb "fallback recorded" true e.Registry.fallback;
  checks "text digest on fallback" text_digest e.Registry.digest;
  (* Corruption on a direct .hgsnap load is an error, not a fallback. *)
  (match Registry.load (Registry.create ()) snap with
  | Error (Registry.Parse_failed msg) ->
    checkb "names the snapshot" true
      (String.length msg >= String.length snap
      && String.sub msg 0 (String.length snap) = snap)
  | _ -> Alcotest.fail "corrupt direct snapshot load should be Parse_failed");
  (* A healthy direct .hgsnap load works. *)
  write_file snap bytes;
  let e = expect_load (Registry.create ()) snap in
  checkb "direct snapshot source" true
    (e.Registry.source = Registry.Snapshot_file snap)

(* ---------- result cache persistence ---------- *)

let test_cache_persistence () =
  let dir = Filename.temp_dir "hgd" "cache" in
  let file = Filename.concat dir "cache.bin" in
  let fresh capacity = Result_cache.create ~capacity ~metrics:(Metrics.create ()) () in
  let payload i =
    [ ("k", string_of_int i); ("weird", "tab\there newline\nthere \xff") ]
  in
  (* Missing file: a cold start, not an error. *)
  (match Result_cache.restore (fresh 8) file with
  | Ok 0 -> ()
  | Ok n -> Alcotest.failf "restore of missing file returned %d entries" n
  | Error msg -> Alcotest.failf "restore of missing file: %s" msg);
  let c = fresh 4 in
  for i = 1 to 5 do
    Result_cache.add c (Printf.sprintf "digest%d stats" i) (payload i)
  done;
  (* Capacity 4: entry 1 was evicted before the save. *)
  (match Result_cache.save c file with
  | Ok 4 -> ()
  | Ok n -> Alcotest.failf "saved %d entries, expected 4" n
  | Error msg -> Alcotest.failf "save: %s" msg);
  let c2 = fresh 8 in
  (match Result_cache.restore c2 file with
  | Ok 4 -> ()
  | Ok n -> Alcotest.failf "restored %d entries, expected 4" n
  | Error msg -> Alcotest.failf "restore: %s" msg);
  for i = 2 to 5 do
    checkb
      (Printf.sprintf "entry %d survives the round trip" i)
      true
      (Result_cache.find c2 (Printf.sprintf "digest%d stats" i) = Some (payload i))
  done;
  (* Restoring into a smaller cache keeps the most recently used. *)
  let c3 = fresh 2 in
  (match Result_cache.restore c3 file with
  | Ok 2 -> ()
  | Ok n -> Alcotest.failf "restored %d entries into capacity 2" n
  | Error msg -> Alcotest.failf "restore small: %s" msg);
  checkb "most recent kept" true
    (Result_cache.find c3 "digest5 stats" = Some (payload 5));
  checkb "second most recent kept" true
    (Result_cache.find c3 "digest4 stats" = Some (payload 4));
  checkb "older dropped" true (Result_cache.find c3 "digest3 stats" = None);
  (* Any corruption fails the checksum and leaves the cache untouched. *)
  let bytes =
    let ic = open_in_bin file in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  in
  List.iter
    (fun pos ->
      let corrupt = Bytes.of_string bytes in
      Bytes.set corrupt pos (Char.chr (Char.code (Bytes.get corrupt pos) lxor 1));
      write_file file (Bytes.to_string corrupt);
      let c = fresh 8 in
      (match Result_cache.restore c file with
      | Error _ -> ()
      | Ok n -> Alcotest.failf "corrupt restore (byte %d) returned Ok %d" pos n);
      check "corrupt restore leaves cache empty" 0 (Result_cache.length c))
    [ 0; 9; 20; String.length bytes / 2; String.length bytes - 1 ];
  List.iter
    (fun keep ->
      write_file file (String.sub bytes 0 keep);
      match Result_cache.restore (fresh 8) file with
      | Error _ -> ()
      | Ok n -> Alcotest.failf "truncated restore (%d bytes) returned Ok %d" keep n)
    [ 5; 8; 31; String.length bytes - 1 ];
  (* An empty cache round-trips too. *)
  (match Result_cache.save (fresh 4) file with
  | Ok 0 -> ()
  | Ok n -> Alcotest.failf "empty save wrote %d entries" n
  | Error msg -> Alcotest.failf "empty save: %s" msg);
  match Result_cache.restore (fresh 4) file with
  | Ok 0 -> ()
  | Ok n -> Alcotest.failf "empty restore returned %d entries" n
  | Error msg -> Alcotest.failf "empty restore: %s" msg

(* ---------- metrics ---------- *)

let test_metrics_counters () =
  let m = Metrics.create () in
  check "unset counter" 0 (Metrics.get m "nope");
  Metrics.incr m "requests_total";
  Metrics.incr m ~by:4 "requests_total";
  check "incremented" 5 (Metrics.get m "requests_total");
  Metrics.observe_latency m 0.001;
  Metrics.observe_latency m 0.004;
  Metrics.observe_latency m 0.1;
  let snap = Metrics.snapshot m in
  checks "latency count" "3" (List.assoc "latency_count" snap);
  checkb "p50 present" true (List.mem_assoc "latency_p50_us" snap);
  checkb "max is 100ms" true
    (int_of_string (List.assoc "latency_max_us" snap) >= 100_000)

(* The percentile scan must agree with the retired implementation,
   which expanded every bucket count into individual observations and
   indexed the resulting sorted list (the O(total) behaviour the
   rewrite removed).  The expansion is the oracle here. *)
let test_percentiles_from_buckets () =
  let n = Metrics.n_buckets in
  let oracle buckets total max_us p =
    if total <= 0 then 0
    else begin
      let values = ref [] in
      for i = n - 1 downto 0 do
        for _ = 1 to buckets.(i) do
          values := (1 lsl i) :: !values
        done
      done;
      let arr = Array.of_list !values in
      let need =
        max 1 (min total (int_of_float (ceil (p /. 100.0 *. float_of_int total))))
      in
      if need - 1 < Array.length arr then arr.(need - 1) else max_us
    end
  in
  let case name buckets =
    let full = Array.make n 0 in
    List.iter (fun (i, c) -> full.(i) <- c) buckets;
    let total = Array.fold_left ( + ) 0 full in
    let max_us =
      let m = ref 0 in
      Array.iteri (fun i c -> if c > 0 then m := (1 lsl (i + 1)) - 1) full;
      !m
    in
    List.iter
      (fun p ->
        check
          (Printf.sprintf "%s p%g" name p)
          (oracle full total max_us p)
          (Metrics.percentile_of_buckets ~buckets:full ~total ~max_us p))
      [ 0.0; 1.0; 50.0; 90.0; 99.0; 99.9; 100.0 ]
  in
  case "empty" [];
  case "one observation" [ (5, 1) ];
  case "one bucket" [ (3, 100) ];
  case "two buckets" [ (0, 7); (10, 3) ];
  case "spread" [ (1, 5); (2, 40); (5, 30); (9, 20); (20, 5) ];
  case "heavy tail" [ (0, 990); (30, 10) ];
  case "last bucket" [ (n - 1, 4) ]

(* Regression for the expansion bug: a snapshot's cost must depend on
   the bucket count, not on how many observations the daemon has
   absorbed.  400x the observations must not cost anywhere near 400x
   the snapshot time. *)
let test_snapshot_cost_independent () =
  let m = Metrics.create () in
  let snapshots k =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to k do
      ignore (Metrics.snapshot m)
    done;
    Unix.gettimeofday () -. t0
  in
  for i = 1 to 1_000 do
    Metrics.observe_latency m (float_of_int (i mod 97) *. 1e-5)
  done;
  let small = snapshots 300 in
  for i = 1 to 400_000 do
    Metrics.observe_latency m (float_of_int (i mod 97) *. 1e-5)
  done;
  let large = snapshots 300 in
  (* The old expansion would make [large] ~400x [small]; allow a wide
     noise margin while still catching any O(total) regression. *)
  checkb
    (Printf.sprintf "snapshot cost grew %.1fx (small %.4fs, large %.4fs)"
       (large /. small) small large)
    true
    (large < (small *. 20.0) +. 0.05)

(* ---------- Prometheus exposition ---------- *)

let is_prom_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

(* Structural validity of one exposition line: a TYPE comment with a
   known kind, or "name[{labels}] value" with a parseable float. *)
let check_prom_line line =
  checkb ("no newline in: " ^ line) false (String.contains line '\n');
  if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then
    match String.split_on_char ' ' line with
    | [ "#"; "TYPE"; name; kind ] ->
      checkb ("namespaced: " ^ name) true
        (String.length name > 4 && String.sub name 0 4 = "hgd_");
      checkb ("known kind: " ^ kind) true
        (List.mem kind [ "counter"; "gauge"; "histogram" ])
    | _ -> Alcotest.failf "malformed TYPE line: %s" line
  else
    match String.index_opt line ' ' with
    | None -> Alcotest.failf "no value separator: %s" line
    | Some sp ->
      let name_part = String.sub line 0 sp in
      let value_part = String.sub line (sp + 1) (String.length line - sp - 1) in
      checkb ("value parses in: " ^ line) true
        (float_of_string_opt value_part <> None);
      let base =
        match String.index_opt name_part '{' with
        | Some i -> String.sub name_part 0 i
        | None -> name_part
      in
      checkb ("name charset: " ^ base) true
        (base <> "" && String.for_all is_prom_name_char base)

let prom_value lines name =
  let prefix = name ^ " " in
  let n = String.length prefix in
  match
    List.find_opt
      (fun l -> String.length l > n && String.sub l 0 n = prefix)
      lines
  with
  | Some l -> float_of_string (String.sub l n (String.length l - n))
  | None -> Alcotest.failf "missing exposition line: %s" name

let test_prometheus_format () =
  let m = Metrics.create () in
  Metrics.incr m "requests_total";
  Metrics.incr m ~by:3 "cache_hits";
  Metrics.incr m "weird name-with.chars";
  Metrics.observe_latency m 0.001;
  Metrics.observe_latency m 0.02;
  Metrics.observe m "queue_wait" 0.0001;
  let lines =
    Metrics.prometheus
      ~gauges:[ ("uptime_seconds", 12.5) ]
      ~extra_counters:[ ("worker_restarts", 1) ]
      (Metrics.freeze m)
  in
  checkb "non-empty exposition" true (lines <> []);
  List.iter check_prom_line lines;
  checkb "counter surfaced" true (prom_value lines "hgd_requests_total" = 1.0);
  checkb "extra counter surfaced" true
    (prom_value lines "hgd_worker_restarts" = 1.0);
  checkb "gauge surfaced" true (prom_value lines "hgd_uptime_seconds" = 12.5);
  checkb "hostile name sanitized" true
    (List.exists
       (fun l ->
         String.length l >= 26 && String.sub l 0 26 = "hgd_weird_name_with_chars ")
       lines);
  (* Histogram invariants: cumulative buckets never decrease and the
     +Inf bucket equals _count. *)
  let count = prom_value lines "hgd_latency_seconds_count" in
  checkb "histogram count" true (count = 2.0);
  let bucket_values =
    List.filter_map
      (fun l ->
        let p = "hgd_latency_seconds_bucket{le=" in
        let n = String.length p in
        if String.length l > n && String.sub l 0 n = p then
          match String.index_opt l ' ' with
          | Some sp ->
            Some (float_of_string (String.sub l (sp + 1) (String.length l - sp - 1)))
          | None -> None
        else None)
      lines
  in
  checkb "has buckets" true (bucket_values <> []);
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  checkb "buckets cumulative" true (monotone bucket_values);
  checkb "+Inf equals count" true
    (List.nth bucket_values (List.length bucket_values - 1) = count)

(* ---------- socket integration ---------- *)

let with_server ?(cache_capacity = 16) f =
  let dir = Filename.temp_dir "hgd" "server" in
  let socket_path = Filename.concat dir "hgd.sock" in
  let config =
    { (Server.default_config ~socket_path) with workers = 2; cache_capacity }
  in
  match Server.start config with
  | Error msg -> Alcotest.failf "server start failed: %s" msg
  | Ok t ->
    Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f dir socket_path)

let expect_ok what = function
  | Ok (P.Ok kvs) -> kvs
  | Ok (P.Err { code; message; _ }) ->
    Alcotest.failf "%s: unexpected ERR %s %s" what (P.error_code_to_string code)
      message
  | Error msg -> Alcotest.failf "%s: transport error %s" what msg

let expect_err what code = function
  | Ok (P.Err { code = got; _ }) ->
    checks (what ^ ": code") (P.error_code_to_string code)
      (P.error_code_to_string got)
  | Ok (P.Ok _) -> Alcotest.failf "%s: expected ERR, got OK" what
  | Error msg -> Alcotest.failf "%s: transport error %s" what msg

let connect socket_path =
  match Client.connect ~socket_path with
  | Ok c -> c
  | Error msg -> Alcotest.failf "connect: %s" msg

let test_integration () =
  with_server (fun dir socket_path ->
      let data = Filename.concat dir "tiny.hg" in
      write_file data tiny_hg;
      let c = connect socket_path in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      (* LOAD, then the digest addresses the dataset. *)
      let loaded = expect_ok "load" (Client.request c (P.Load data)) in
      let digest = List.assoc "digest" loaded in
      checks "vertices" "5" (List.assoc "vertices" loaded);
      checks "hyperedges" "3" (List.assoc "hyperedges" loaded);
      checks "fresh" "true" (List.assoc "fresh" loaded);
      (* First STATS computes, second is a cache hit. *)
      let stats1 =
        expect_ok "stats"
          (Client.request c (P.Analyze { dataset = digest; analysis = P.Stats }))
      in
      checks "cold query computed" "false" (List.assoc "cached" stats1);
      checks "stats vertices" "5" (List.assoc "vertices" stats1);
      let stats2 =
        expect_ok "stats again"
          (Client.request c (P.Analyze { dataset = digest; analysis = P.Stats }))
      in
      checks "repeat served from cache" "true" (List.assoc "cached" stats2);
      checkb "same payload modulo cache line" true
        (List.remove_assoc "cached" stats1 = List.remove_assoc "cached" stats2);
      (* KCORE, by digest prefix. *)
      let kcore =
        expect_ok "kcore"
          (Client.request c
             (P.Analyze { dataset = String.sub digest 0 8; analysis = P.Kcore None }))
      in
      checkb "kcore k parses" true (int_of_string_opt (List.assoc "k" kcore) <> None);
      (* METRICS must report the cache hit. *)
      let metrics = expect_ok "metrics" (Client.request c (P.Metrics P.Table)) in
      checkb "at least one cache hit" true
        (int_of_string (List.assoc "cache_hits" metrics) >= 1);
      checkb "requests counted" true
        (int_of_string (List.assoc "requests_total" metrics) >= 4);
      checkb "queue wait observed" true
        (int_of_string (List.assoc "queue_wait_count" metrics) >= 1);
      checkb "kernel sources counted" true
        (int_of_string (List.assoc "kernel_bfs_sources" metrics) >= 5);
      checkb "kernel peel rounds counted" true
        (List.mem_assoc "kernel_peel_rounds" metrics);
      (* METRICS prom carries the same state as Prometheus exposition
         lines, keyed by line index. *)
      let prom = expect_ok "metrics prom" (Client.request c (P.Metrics P.Prometheus)) in
      let prom_lines = List.map snd prom in
      checkb "prom non-empty" true (prom_lines <> []);
      List.iter check_prom_line prom_lines;
      checkb "prom requests_total at least table's" true
        (prom_value prom_lines "hgd_requests_total"
        >= float_of_string (List.assoc "requests_total" metrics));
      checkb "prom gauge workers" true (prom_value prom_lines "hgd_workers" = 2.0);
      (* TRACE shows finished requests with per-stage spans. *)
      let trace = expect_ok "trace" (Client.request c (P.Trace (Some 5))) in
      let traced = int_of_string (List.assoc "count" trace) in
      checkb "trace retains requests" true (traced >= 1 && traced <= 5);
      List.iter
        (fun key ->
          checkb ("trace has 0." ^ key) true (List.mem_assoc ("0." ^ key) trace))
        [ "trace"; "status"; "cached"; "total_us"; "queue_us"; "parse_us";
          "cache_us"; "compute_us"; "write_us"; "request" ];
      (* The slowest request did real work: its stages sum below the
         total (the total also covers dispatch overhead). *)
      let stage_sum =
        List.fold_left
          (fun acc k -> acc + int_of_string (List.assoc ("0." ^ k) trace))
          0
          [ "queue_us"; "parse_us"; "cache_us"; "compute_us"; "write_us" ]
      in
      checkb "stage spans bounded by total" true
        (stage_sum <= int_of_string (List.assoc "0.total_us" trace));
      checkb "slowest computed something" true
        (int_of_string (List.assoc "0.compute_us" trace) >= 0);
      (* Structured errors, and the daemon survives all of them. *)
      expect_err "malformed verb" P.Bad_request (Client.request_line c "FROB x");
      expect_err "empty-ish garbage" P.Bad_request (Client.request_line c "LOAD a b c");
      expect_err "unknown dataset" P.Unknown_dataset
        (Client.request c (P.Analyze { dataset = "feedfacedeadbeef"; analysis = P.Stats }));
      expect_err "missing file" P.Io_error
        (Client.request c (P.Load (Filename.concat dir "absent.hg")));
      let bad = Filename.concat dir "bad.hg" in
      write_file bad "c1: a b\nbroken line here\n";
      expect_err "malformed dataset file" P.Parse_error (Client.request c (P.Load bad));
      let pong = expect_ok "still alive" (Client.request c P.Ping) in
      checks "pong" "hgd" (List.assoc "pong" pong);
      (* EVICT drops the dataset and its cached results. *)
      let evicted = expect_ok "evict" (Client.request c (P.Evict (Some digest))) in
      checkb "dropped cached results" true
        (int_of_string (List.assoc "dropped_results" evicted) >= 1);
      expect_err "gone after evict" P.Unknown_dataset
        (Client.request c (P.Analyze { dataset = digest; analysis = P.Stats })))

let test_batch () =
  with_server (fun dir socket_path ->
      let data = Filename.concat dir "tiny.hg" in
      write_file data tiny_hg;
      let c = connect socket_path in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let digest =
        expect_ok "load" (Client.request c (P.Load data)) |> List.assoc "digest"
      in
      let stats = P.Analyze { dataset = digest; analysis = P.Stats } in
      (* One pipelined run: the repeated STATS must be a cache hit even
         though both items travel on the same connection. *)
      (match Client.batch c [ P.Ping; stats; stats ] with
      | Ok (Client.Items [ r1; r2; r3 ]) ->
        checks "batch pong" "hgd" (List.assoc "pong" (expect_ok "batch ping" r1));
        let cold = expect_ok "batch stats cold" r2 in
        checks "computed inside batch" "false" (List.assoc "cached" cold);
        let hot = expect_ok "batch stats hot" r3 in
        checks "cache hit inside batch" "true" (List.assoc "cached" hot);
        checkb "same payload modulo cache line" true
          (List.remove_assoc "cached" cold = List.remove_assoc "cached" hot)
      | Ok (Client.Items items) ->
        Alcotest.failf "batch: expected 3 items, got %d" (List.length items)
      | Ok (Client.Refused r) ->
        Alcotest.failf "batch refused: %s" (P.encode_reply r)
      | Error msg -> Alcotest.failf "batch transport: %s" msg);
      (* Per-item rejection: garbage, SHUTDOWN and nested BATCH inside
         the run each get their own tagged ERR, neighbours unharmed. *)
      (match
         Client.batch_lines c [ "PING"; "FROB x"; "SHUTDOWN"; "BATCH 2"; "PING" ]
       with
      | Ok (Client.Items [ ok1; bad; shut; nested; ok2 ]) ->
        ignore (expect_ok "item before rejects" ok1);
        expect_err "garbage item" P.Bad_request bad;
        expect_err "shutdown inside batch" P.Bad_request shut;
        expect_err "nested batch" P.Bad_request nested;
        checks "item after rejects still served" "hgd"
          (List.assoc "pong" (expect_ok "item after rejects" ok2))
      | Ok (Client.Items items) ->
        Alcotest.failf "batch: expected 5 items, got %d" (List.length items)
      | Ok (Client.Refused r) ->
        Alcotest.failf "batch refused: %s" (P.encode_reply r)
      | Error msg -> Alcotest.failf "batch transport: %s" msg);
      (* The connection is still usable for plain requests afterwards,
         and a malformed BATCH header is an ordinary one-line error. *)
      expect_err "batch header out of range" P.Bad_request
        (Client.request_line c "BATCH 0");
      ignore (expect_ok "plain request after batches" (Client.request c P.Ping));
      (* Metrics count the run and its items; traces record each item
         individually. *)
      let metrics = expect_ok "metrics" (Client.request c (P.Metrics P.Table)) in
      checkb "batch runs counted" true
        (int_of_string (List.assoc "batch_requests" metrics) >= 2);
      checkb "batch items counted" true
        (int_of_string (List.assoc "batch_items" metrics) >= 8);
      let trace = expect_ok "trace" (Client.request c (P.Trace (Some 20))) in
      let requests =
        List.filter_map
          (fun (k, v) ->
            if String.length k > 8 && String.sub k (String.length k - 8) 8 = ".request"
            then Some v
            else None)
          trace
      in
      checkb "batched items traced individually" true
        (List.length (List.filter (( = ) "PING") requests) >= 2);
      checkb "batch headers traced" true
        (List.exists (fun r -> r = "BATCH 3") requests))

let test_concurrent_clients () =
  with_server (fun dir socket_path ->
      let data = Filename.concat dir "tiny.hg" in
      write_file data tiny_hg;
      let digest =
        Client.with_connection ~socket_path (fun c -> Client.request c (P.Load data))
        |> expect_ok "load"
        |> List.assoc "digest"
      in
      let hammer () =
        Client.with_connection ~socket_path (fun c ->
            let rec go i acc =
              if i = 0 then Ok acc
              else
                match
                  Client.request c (P.Analyze { dataset = digest; analysis = P.Stats })
                with
                | Ok (P.Ok _) -> go (i - 1) (acc + 1)
                | Ok (P.Err { message; _ }) -> Error message
                | Error msg -> Error msg
            in
            go 10 0)
      in
      let domains = Array.init 4 (fun _ -> Domain.spawn hammer) in
      let results = Array.map Domain.join domains in
      Array.iter
        (function
          | Ok n -> check "all queries answered" 10 n
          | Error msg -> Alcotest.failf "concurrent client failed: %s" msg)
        results)

let test_shutdown_verb () =
  with_server (fun dir socket_path ->
      let _ = dir in
      let reply =
        Client.with_connection ~socket_path (fun c -> Client.request c P.Shutdown)
      in
      let kvs = expect_ok "shutdown" reply in
      checks "acknowledged" "true" (List.assoc "shutting_down" kvs);
      (* The socket disappears once the server drains. *)
      let rec poll n =
        if not (Sys.file_exists socket_path) then ()
        else if n = 0 then Alcotest.fail "socket file not removed after SHUTDOWN"
        else begin
          Unix.sleepf 0.1;
          poll (n - 1)
        end
      in
      poll 50)

(* Full warm-restart cycle: life 1 computes and saves the cache on
   shutdown; life 2 restores it and answers the same query cached on
   its very first request; life 3 starts from a truncated cache file
   and must come up cold but healthy. *)
let test_warm_restart () =
  let dir = Filename.temp_dir "hgd" "warm" in
  let socket_path = Filename.concat dir "hgd.sock" in
  let cache_file = Filename.concat dir "cache.bin" in
  let config =
    {
      (Server.default_config ~socket_path) with
      workers = 2;
      cache_capacity = 16;
      cache_file = Some cache_file;
    }
  in
  let data = Filename.concat dir "tiny.hg" in
  write_file data tiny_hg;
  ignore (Snap.pack (HIO.of_string tiny_hg) (Snap.sibling_path data));
  let life f =
    match Server.start config with
    | Error msg -> Alcotest.failf "server start failed: %s" msg
    | Ok t ->
      Fun.protect
        ~finally:(fun () -> Server.stop t)
        (fun () ->
          let c = connect socket_path in
          Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c))
  in
  let digest = ref "" in
  life (fun c ->
      let loaded = expect_ok "load" (Client.request c (P.Load data)) in
      checks "sibling snapshot used" "snapshot" (List.assoc "source" loaded);
      digest := List.assoc "digest" loaded;
      let stats =
        expect_ok "first stats"
          (Client.request c (P.Analyze { dataset = !digest; analysis = P.Stats }))
      in
      checks "cold in first life" "false" (List.assoc "cached" stats));
  checkb "cache file written on shutdown" true (Sys.file_exists cache_file);
  life (fun c ->
      let loaded = expect_ok "reload" (Client.request c (P.Load data)) in
      checks "same digest across restarts" !digest (List.assoc "digest" loaded);
      let stats =
        expect_ok "first stats after restart"
          (Client.request c (P.Analyze { dataset = !digest; analysis = P.Stats }))
      in
      checks "warm after restart" "true" (List.assoc "cached" stats);
      let metrics = expect_ok "metrics" (Client.request c (P.Metrics P.Table)) in
      checkb "restored entries counted" true
        (int_of_string (List.assoc "cache_restored" metrics) >= 1);
      checkb "snapshot loads counted" true
        (int_of_string (List.assoc "snapshot_loads" metrics) >= 1));
  (* Truncate the cache file: the daemon must start cold, not fail. *)
  let full =
    let ic = open_in_bin cache_file in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  in
  write_file cache_file (String.sub full 0 (String.length full / 2));
  life (fun c ->
      ignore (expect_ok "load after corrupt cache" (Client.request c (P.Load data)));
      let stats =
        expect_ok "stats after corrupt cache"
          (Client.request c (P.Analyze { dataset = !digest; analysis = P.Stats }))
      in
      checks "cold after corrupt cache file" "false" (List.assoc "cached" stats))

(* Live mutation end to end, across restarts: epochs in replies and
   metrics, epoch-keyed cache invalidation, WAL recovery counters
   moving over mutate -> restart -> recover, and CHECKPOINT bounding
   the next recovery's replay. *)
let test_mutation_durability () =
  let dir = Filename.temp_dir "hgd" "mutate" in
  let socket_path = Filename.concat dir "hgd.sock" in
  let config =
    { (Server.default_config ~socket_path) with workers = 2; cache_capacity = 16 }
  in
  let data = Filename.concat dir "tiny.hg" in
  write_file data tiny_hg;
  let life f =
    match Server.start config with
    | Error msg -> Alcotest.failf "server start failed: %s" msg
    | Ok t ->
      Fun.protect
        ~finally:(fun () -> Server.stop t)
        (fun () ->
          let c = connect socket_path in
          Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c))
  in
  let digest = ref "" in
  let epoch_key () = "dataset_epoch_" ^ String.sub !digest 0 12 in
  let stats c what =
    expect_ok what
      (Client.request c (P.Analyze { dataset = !digest; analysis = P.Stats }))
  in
  life (fun c ->
      let loaded = expect_ok "load" (Client.request c (P.Load data)) in
      digest := List.assoc "digest" loaded;
      checks "epoch starts at zero" "0" (List.assoc "epoch" loaded);
      (* Cache a result at epoch 0, then mutate: the epoch-qualified
         key makes the stale entry unreachable without any flush. *)
      checks "cold at epoch 0" "false" (List.assoc "cached" (stats c "stats"));
      checks "warm at epoch 0" "true" (List.assoc "cached" (stats c "stats"));
      let mv =
        expect_ok "addvertex"
          (Client.request c (P.Add_vertex { dataset = !digest; name = "p53" }))
      in
      checks "mutation epoch" "1" (List.assoc "epoch" mv);
      checks "assigned dense id" "5" (List.assoc "assigned" mv);
      checks "vertex count" "6" (List.assoc "vertices" mv);
      checks "not checkpointed" "false" (List.assoc "checkpointed" mv);
      let me =
        expect_ok "addedge"
          (Client.request c
             (P.Add_edge { dataset = !digest; name = "c4"; members = [ 0; 5 ] }))
      in
      checks "second epoch" "2" (List.assoc "epoch" me);
      checks "edge count" "4" (List.assoc "hyperedges" me);
      let fresh = stats c "stats after mutation" in
      checks "mutation invalidates by epoch" "false" (List.assoc "cached" fresh);
      checks "sees the new vertex" "6" (List.assoc "vertices" fresh);
      (* Invalid ops are client errors that move nothing. *)
      expect_err "member out of range" P.Bad_request
        (Client.request c
           (P.Add_edge { dataset = !digest; name = "x"; members = [ 99 ] }));
      expect_err "edge out of range" P.Bad_request
        (Client.request c (P.Del_edge { dataset = !digest; edge = 99 }));
      expect_err "unknown dataset" P.Unknown_dataset
        (Client.request c
           (P.Add_vertex { dataset = "feedfacedeadbeef"; name = "x" }));
      let m = expect_ok "metrics" (Client.request c (P.Metrics P.Table)) in
      checkb "appends counted" true
        (int_of_string (List.assoc "wal_records_appended" m) >= 2);
      checkb "mutations counted" true
        (int_of_string (List.assoc "mutations_total" m) >= 2);
      checkb "rejects counted" true
        (int_of_string (List.assoc "mutation_rejects" m) >= 2);
      checks "per-dataset epoch gauge" "2" (List.assoc (epoch_key ()) m);
      let prom =
        expect_ok "metrics prom" (Client.request c (P.Metrics P.Prometheus))
      in
      let prom_lines = List.map snd prom in
      List.iter check_prom_line prom_lines;
      checkb "labeled epoch gauge" true
        (List.mem
           (Printf.sprintf "hgd_dataset_epoch{dataset=%S} 2" !digest)
           prom_lines));
  (* Life 2: the acknowledged mutations survived the restart. *)
  life (fun c ->
      let loaded = expect_ok "reload" (Client.request c (P.Load data)) in
      checks "handle survives recovery" !digest (List.assoc "digest" loaded);
      checks "epoch recovered" "2" (List.assoc "epoch" loaded);
      checks "replay counted in reply" "2" (List.assoc "wal_replayed" loaded);
      checks "clean tail" "0" (List.assoc "wal_torn_bytes" loaded);
      let s = stats c "stats after recovery" in
      checks "recovered state answers" "6" (List.assoc "vertices" s);
      let m = expect_ok "metrics" (Client.request c (P.Metrics P.Table)) in
      checkb "recovery counted" true
        (int_of_string (List.assoc "wal_recoveries" m) >= 1);
      checkb "replayed records counted" true
        (int_of_string (List.assoc "wal_replayed_total" m) >= 2);
      checks "epoch gauge after recovery" "2" (List.assoc (epoch_key ()) m);
      (* CHECKPOINT compacts; the epoch does not move. *)
      let cp =
        expect_ok "checkpoint" (Client.request c (P.Checkpoint !digest))
      in
      checks "checkpoint epoch" "2" (List.assoc "epoch" cp);
      checks "records folded" "2" (List.assoc "records_folded" cp);
      checkb "snapshot on disk" true (Sys.file_exists (List.assoc "snapshot" cp));
      let m = expect_ok "metrics" (Client.request c (P.Metrics P.Table)) in
      checkb "checkpoint counted" true
        (int_of_string (List.assoc "wal_checkpoints" m) >= 1));
  (* Life 3: recovery now folds over the checkpoint, replaying
     nothing. *)
  life (fun c ->
      let loaded = expect_ok "reload" (Client.request c (P.Load data)) in
      checks "handle survives the checkpoint" !digest (List.assoc "digest" loaded);
      checks "epoch preserved" "2" (List.assoc "epoch" loaded);
      checks "bounded replay" "0" (List.assoc "wal_replayed" loaded);
      checks "checkpoint is the base" "snapshot" (List.assoc "source" loaded);
      ignore
        (expect_ok "still mutable"
           (Client.request c (P.Add_vertex { dataset = !digest; name = "brca1" })));
      let m = expect_ok "metrics" (Client.request c (P.Metrics P.Table)) in
      checks "epoch gauge keeps counting" "3" (List.assoc (epoch_key ()) m))

let () =
  Alcotest.run "hp_server"
    [
      ( "protocol",
        [
          Alcotest.test_case "parse accepts" `Quick test_parse_requests;
          Alcotest.test_case "parse rejects" `Quick test_parse_rejects;
          Alcotest.test_case "sanitization" `Quick test_reply_sanitization;
          Alcotest.test_case "analysis keys" `Quick test_analysis_key_defaults;
          Th.prop prop_request_roundtrip;
          Th.prop prop_reply_roundtrip;
        ] );
      ( "registry",
        [
          Alcotest.test_case "content identity" `Quick test_registry_identity;
          Alcotest.test_case "snapshot preference and fallback" `Quick
            test_registry_snapshot_preference;
        ] );
      ( "result cache",
        [ Alcotest.test_case "save and restore" `Quick test_cache_persistence ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and latency" `Quick test_metrics_counters;
          Alcotest.test_case "bucket percentiles vs expansion oracle" `Quick
            test_percentiles_from_buckets;
          Alcotest.test_case "snapshot cost independent of volume" `Slow
            test_snapshot_cost_independent;
          Alcotest.test_case "prometheus exposition" `Quick test_prometheus_format;
        ] );
      ( "server",
        [
          Alcotest.test_case "end to end" `Quick test_integration;
          Alcotest.test_case "batched pipelined queries" `Quick test_batch;
          Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
          Alcotest.test_case "shutdown verb" `Quick test_shutdown_verb;
          Alcotest.test_case "warm restart from cache file" `Quick
            test_warm_restart;
          Alcotest.test_case "mutation durability across restarts" `Quick
            test_mutation_durability;
        ] );
    ]
