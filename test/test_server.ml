(* The hgd server stack: protocol encode/decode, registry identity,
   metrics, and a socket-level integration pass against an in-process
   server (LOAD + STATS + KCORE, repeated query served from cache,
   malformed requests answered with structured errors). *)

module P = Hp_server.Protocol
module Server = Hp_server.Server
module Client = Hp_server.Client
module Registry = Hp_server.Registry
module Metrics = Hp_server.Metrics

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* ---------- protocol ---------- *)

let test_parse_requests () =
  let ok line req =
    match P.parse_request line with
    | Ok got -> checkb line true (got = req)
    | Error msg -> Alcotest.failf "%s: unexpected parse error %s" line msg
  in
  ok "LOAD data/x.hg" (P.Load "data/x.hg");
  ok "load data/x.hg" (P.Load "data/x.hg");
  ok "STATS abcd1234" (P.Analyze { dataset = "abcd1234"; analysis = P.Stats });
  ok "KCORE abcd1234" (P.Analyze { dataset = "abcd1234"; analysis = P.Kcore None });
  ok "KCORE abcd1234 3"
    (P.Analyze { dataset = "abcd1234"; analysis = P.Kcore (Some 3) });
  ok "COVER abcd1234"
    (P.Analyze
       { dataset = "abcd1234"; analysis = P.Cover { weighting = P.Uniform; r = 1 } });
  ok "COVER abcd1234 degree2 2"
    (P.Analyze
       {
         dataset = "abcd1234";
         analysis = P.Cover { weighting = P.Degree_squared; r = 2 };
       });
  ok "  METRICS  " P.Metrics;
  ok "EVICT" (P.Evict None);
  ok "EVICT abcd" (P.Evict (Some "abcd"));
  ok "PING" P.Ping;
  ok "SHUTDOWN" P.Shutdown

let test_parse_rejects () =
  let bad line =
    match P.parse_request line with
    | Ok _ -> Alcotest.failf "%S should not parse" line
    | Error _ -> ()
  in
  bad "";
  bad "   ";
  bad "FROB x";
  bad "LOAD";
  bad "LOAD a b";
  bad "STATS";
  bad "KCORE ds notanint";
  bad "KCORE ds -1";
  bad "COVER ds upside-down";
  bad "COVER ds degree 0";
  bad "PING extra";
  bad "SHUTDOWN now"

let request_gen =
  QCheck.Gen.(
    let dataset = string_size ~gen:(oneofl [ 'a'; 'b'; '0'; '9'; 'f' ]) (return 8) in
    let weighting = oneofl [ P.Uniform; P.Degree; P.Degree_squared ] in
    let analysis =
      oneof
        [
          return P.Stats;
          map (fun k -> P.Kcore k) (opt (int_range 0 20));
          map2 (fun w r -> P.Cover { weighting = w; r }) weighting (int_range 1 5);
          return P.Storage;
          return P.Powerlaw;
        ]
    in
    oneof
      [
        map (fun ds -> P.Load ("data/" ^ ds ^ ".hg")) dataset;
        map2 (fun ds a -> P.Analyze { dataset = ds; analysis = a }) dataset analysis;
        return P.Datasets;
        return P.Metrics;
        map (fun ds -> P.Evict ds) (opt dataset);
        return P.Ping;
        return P.Shutdown;
      ])

let request_print r = P.request_line r

let prop_request_roundtrip =
  QCheck.Test.make ~name:"protocol: request_line round-trips" ~count:500
    (QCheck.make ~print:request_print request_gen)
    (fun req -> P.parse_request (P.request_line req) = Ok req)

let payload_gen =
  QCheck.Gen.(
    let token =
      string_size ~gen:(oneofl [ 'a'; 'z'; '0'; '.'; '-'; ' ' ]) (int_range 1 12)
    in
    let key = string_size ~gen:(oneofl [ 'a'; 'z'; '_' ]) (int_range 1 8) in
    list_size (int_range 0 10) (pair key token))

let reply_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun kvs -> P.Ok kvs) payload_gen;
        map3
          (fun code retry_after_ms message ->
            P.Err { code; message; retry_after_ms })
          (oneofl
             [ P.Bad_request; P.Unknown_dataset; P.Parse_error; P.Io_error;
               P.Timeout; P.Busy; P.Internal ])
          (opt (int_range 0 60_000))
          (string_size ~gen:(oneofl [ 'x'; ' '; '1' ]) (int_range 0 20));
      ])

let prop_reply_roundtrip =
  QCheck.Test.make ~name:"protocol: reply encode/decode round-trips" ~count:500
    (QCheck.make ~print:P.encode_reply reply_gen)
    (fun reply -> P.decode_reply (P.encode_reply reply) = Ok reply)

let test_reply_sanitization () =
  (* Tabs and newlines in payloads must not break framing. *)
  let encoded = P.encode_reply (P.Ok [ ("key", "a\tb\nc") ]) in
  match P.decode_reply encoded with
  | Ok (P.Ok [ ("key", v) ]) ->
    checks "sanitized" "a b c" v
  | _ -> Alcotest.fail "sanitized reply should decode to one binding"

let test_analysis_key_defaults () =
  checks "kcore max" "kcore k=max" (P.analysis_key (P.Kcore None));
  checks "kcore 3" "kcore k=3" (P.analysis_key (P.Kcore (Some 3)));
  checks "cover" "cover w=degree2 r=2"
    (P.analysis_key (P.Cover { weighting = P.Degree_squared; r = 2 }))

(* ---------- registry ---------- *)

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let tiny_hg = "# test\nc1: a b c\nc2: b c d\nc3: c d e\n"

let test_registry_identity () =
  let dir = Filename.temp_dir "hgd" "registry" in
  let p1 = Filename.concat dir "one.hg" in
  let p2 = Filename.concat dir "two.hg" in
  write_file p1 tiny_hg;
  write_file p2 tiny_hg;
  let r = Registry.create () in
  (match (Registry.load r p1, Registry.load r p1, Registry.load r p2) with
  | Ok (e1, fresh1), Ok (e2, fresh2), Ok (e3, fresh3) ->
    checkb "first load is fresh" true fresh1;
    checkb "reload is resident" false fresh2;
    checkb "same bytes, same dataset" false fresh3;
    checks "stable digest" e1.digest e2.digest;
    checks "content-addressed" e1.digest e3.digest;
    check "one resident dataset" 1 (List.length (Registry.list r));
    (match Registry.find r (String.sub e1.digest 0 8) with
    | `Found e -> checks "prefix lookup" e1.digest e.digest
    | _ -> Alcotest.fail "digest prefix should resolve");
    checkb "short prefix missing" true (Registry.find r "ab" = `Missing);
    checkb "evict" true (Registry.evict r e1.digest <> None);
    check "empty after evict" 0 (List.length (Registry.list r))
  | _ -> Alcotest.fail "loads should succeed");
  (match Registry.load r (Filename.concat dir "absent.hg") with
  | Error (Registry.Read_failed _) -> ()
  | _ -> Alcotest.fail "missing file should be Read_failed");
  let bad = Filename.concat dir "bad.hg" in
  write_file bad "c1: a b\nbroken line here\n";
  match Registry.load r bad with
  | Error (Registry.Parse_failed msg) ->
    checkb "names the file" true
      (String.length msg >= String.length bad
      && String.sub msg 0 (String.length bad) = bad)
  | _ -> Alcotest.fail "malformed file should be Parse_failed"

(* ---------- metrics ---------- *)

let test_metrics_counters () =
  let m = Metrics.create () in
  check "unset counter" 0 (Metrics.get m "nope");
  Metrics.incr m "requests_total";
  Metrics.incr m ~by:4 "requests_total";
  check "incremented" 5 (Metrics.get m "requests_total");
  Metrics.observe_latency m 0.001;
  Metrics.observe_latency m 0.004;
  Metrics.observe_latency m 0.1;
  let snap = Metrics.snapshot m in
  checks "latency count" "3" (List.assoc "latency_count" snap);
  checkb "p50 present" true (List.mem_assoc "latency_p50_us" snap);
  checkb "max is 100ms" true
    (int_of_string (List.assoc "latency_max_us" snap) >= 100_000)

(* ---------- socket integration ---------- *)

let with_server ?(cache_capacity = 16) f =
  let dir = Filename.temp_dir "hgd" "server" in
  let socket_path = Filename.concat dir "hgd.sock" in
  let config =
    { (Server.default_config ~socket_path) with workers = 2; cache_capacity }
  in
  match Server.start config with
  | Error msg -> Alcotest.failf "server start failed: %s" msg
  | Ok t ->
    Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f dir socket_path)

let expect_ok what = function
  | Ok (P.Ok kvs) -> kvs
  | Ok (P.Err { code; message; _ }) ->
    Alcotest.failf "%s: unexpected ERR %s %s" what (P.error_code_to_string code)
      message
  | Error msg -> Alcotest.failf "%s: transport error %s" what msg

let expect_err what code = function
  | Ok (P.Err { code = got; _ }) ->
    checks (what ^ ": code") (P.error_code_to_string code)
      (P.error_code_to_string got)
  | Ok (P.Ok _) -> Alcotest.failf "%s: expected ERR, got OK" what
  | Error msg -> Alcotest.failf "%s: transport error %s" what msg

let connect socket_path =
  match Client.connect ~socket_path with
  | Ok c -> c
  | Error msg -> Alcotest.failf "connect: %s" msg

let test_integration () =
  with_server (fun dir socket_path ->
      let data = Filename.concat dir "tiny.hg" in
      write_file data tiny_hg;
      let c = connect socket_path in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      (* LOAD, then the digest addresses the dataset. *)
      let loaded = expect_ok "load" (Client.request c (P.Load data)) in
      let digest = List.assoc "digest" loaded in
      checks "vertices" "5" (List.assoc "vertices" loaded);
      checks "hyperedges" "3" (List.assoc "hyperedges" loaded);
      checks "fresh" "true" (List.assoc "fresh" loaded);
      (* First STATS computes, second is a cache hit. *)
      let stats1 =
        expect_ok "stats"
          (Client.request c (P.Analyze { dataset = digest; analysis = P.Stats }))
      in
      checks "cold query computed" "false" (List.assoc "cached" stats1);
      checks "stats vertices" "5" (List.assoc "vertices" stats1);
      let stats2 =
        expect_ok "stats again"
          (Client.request c (P.Analyze { dataset = digest; analysis = P.Stats }))
      in
      checks "repeat served from cache" "true" (List.assoc "cached" stats2);
      checkb "same payload modulo cache line" true
        (List.remove_assoc "cached" stats1 = List.remove_assoc "cached" stats2);
      (* KCORE, by digest prefix. *)
      let kcore =
        expect_ok "kcore"
          (Client.request c
             (P.Analyze { dataset = String.sub digest 0 8; analysis = P.Kcore None }))
      in
      checkb "kcore k parses" true (int_of_string_opt (List.assoc "k" kcore) <> None);
      (* METRICS must report the cache hit. *)
      let metrics = expect_ok "metrics" (Client.request c P.Metrics) in
      checkb "at least one cache hit" true
        (int_of_string (List.assoc "cache_hits" metrics) >= 1);
      checkb "requests counted" true
        (int_of_string (List.assoc "requests_total" metrics) >= 4);
      (* Structured errors, and the daemon survives all of them. *)
      expect_err "malformed verb" P.Bad_request (Client.request_line c "FROB x");
      expect_err "empty-ish garbage" P.Bad_request (Client.request_line c "LOAD a b c");
      expect_err "unknown dataset" P.Unknown_dataset
        (Client.request c (P.Analyze { dataset = "feedfacedeadbeef"; analysis = P.Stats }));
      expect_err "missing file" P.Io_error
        (Client.request c (P.Load (Filename.concat dir "absent.hg")));
      let bad = Filename.concat dir "bad.hg" in
      write_file bad "c1: a b\nbroken line here\n";
      expect_err "malformed dataset file" P.Parse_error (Client.request c (P.Load bad));
      let pong = expect_ok "still alive" (Client.request c P.Ping) in
      checks "pong" "hgd" (List.assoc "pong" pong);
      (* EVICT drops the dataset and its cached results. *)
      let evicted = expect_ok "evict" (Client.request c (P.Evict (Some digest))) in
      checkb "dropped cached results" true
        (int_of_string (List.assoc "dropped_results" evicted) >= 1);
      expect_err "gone after evict" P.Unknown_dataset
        (Client.request c (P.Analyze { dataset = digest; analysis = P.Stats })))

let test_concurrent_clients () =
  with_server (fun dir socket_path ->
      let data = Filename.concat dir "tiny.hg" in
      write_file data tiny_hg;
      let digest =
        Client.with_connection ~socket_path (fun c -> Client.request c (P.Load data))
        |> expect_ok "load"
        |> List.assoc "digest"
      in
      let hammer () =
        Client.with_connection ~socket_path (fun c ->
            let rec go i acc =
              if i = 0 then Ok acc
              else
                match
                  Client.request c (P.Analyze { dataset = digest; analysis = P.Stats })
                with
                | Ok (P.Ok _) -> go (i - 1) (acc + 1)
                | Ok (P.Err { message; _ }) -> Error message
                | Error msg -> Error msg
            in
            go 10 0)
      in
      let domains = Array.init 4 (fun _ -> Domain.spawn hammer) in
      let results = Array.map Domain.join domains in
      Array.iter
        (function
          | Ok n -> check "all queries answered" 10 n
          | Error msg -> Alcotest.failf "concurrent client failed: %s" msg)
        results)

let test_shutdown_verb () =
  with_server (fun dir socket_path ->
      let _ = dir in
      let reply =
        Client.with_connection ~socket_path (fun c -> Client.request c P.Shutdown)
      in
      let kvs = expect_ok "shutdown" reply in
      checks "acknowledged" "true" (List.assoc "shutting_down" kvs);
      (* The socket disappears once the server drains. *)
      let rec poll n =
        if not (Sys.file_exists socket_path) then ()
        else if n = 0 then Alcotest.fail "socket file not removed after SHUTDOWN"
        else begin
          Unix.sleepf 0.1;
          poll (n - 1)
        end
      in
      poll 50)

let () =
  Alcotest.run "hp_server"
    [
      ( "protocol",
        [
          Alcotest.test_case "parse accepts" `Quick test_parse_requests;
          Alcotest.test_case "parse rejects" `Quick test_parse_rejects;
          Alcotest.test_case "sanitization" `Quick test_reply_sanitization;
          Alcotest.test_case "analysis keys" `Quick test_analysis_key_defaults;
          Th.prop prop_request_roundtrip;
          Th.prop prop_reply_roundtrip;
        ] );
      ( "registry",
        [ Alcotest.test_case "content identity" `Quick test_registry_identity ] );
      ( "metrics",
        [ Alcotest.test_case "counters and latency" `Quick test_metrics_counters ] );
      ( "server",
        [
          Alcotest.test_case "end to end" `Quick test_integration;
          Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
          Alcotest.test_case "shutdown verb" `Quick test_shutdown_verb;
        ] );
    ]
