(* The durability centerpiece: a live hgd server is SIGKILLed in the
   middle of a randomized mutation burst, over and over, and every
   recovered state must be bit-identical — structure, names, and the
   decompose / max-core kernel outputs — to a single-process oracle
   that replays the first [epoch] acknowledged ops over the same base.

   Each schedule forks a child that runs a real server (one worker, a
   cycling --wal-sync policy, sometimes auto-checkpointing), drives it
   over the Unix socket, then kills it after a random 0-8 ms delay, so
   the kill lands anywhere: before the burst, between append and
   apply, inside a checkpoint's rename pair, mid-frame on the WAL.
   Whatever is on disk afterwards, recovery must produce a clean
   prefix of the schedule — torn tails truncate, skew heals, and no
   shape of crash may surface as an exception or a wrong answer. *)

module W = Hp_wal.Wal
module L = Hp_wal.Live
module H = Hp_hypergraph.Hypergraph
module HIO = Hp_hypergraph.Hypergraph_io
module HC = Hp_hypergraph.Hypergraph_core
module P = Hp_server.Protocol
module Server = Hp_server.Server
module Client = Hp_server.Client
module Registry = Hp_server.Registry
module Prng = Hp_util.Prng

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let base_text = "# crash base\nc1: a b c\nc2: b c d\nc3: c d e\n"

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

(* A schedule of ops that is valid by construction: vertex ids only
   grow, edge membership stays in range, deletes track the live edge
   count.  Any prefix of the schedule is therefore also valid — the
   property the oracle depends on. *)
let gen_ops rng ~nv0 ~ne0 n =
  let nv = ref nv0 and ne = ref ne0 in
  List.init n (fun i ->
      let pick = Prng.int rng 10 in
      if pick < 4 then begin
        incr nv;
        W.Add_vertex { name = Printf.sprintf "v%d" i }
      end
      else if pick < 8 || !ne = 0 then begin
        let k = 1 + Prng.int rng 4 in
        let members = Array.init k (fun _ -> Prng.int rng !nv) in
        incr ne;
        W.Add_edge { name = Printf.sprintf "e%d" i; members }
      end
      else begin
        decr ne;
        W.Del_edge { edge = Prng.int rng (!ne + 1) }
      end)

let op_line digest = function
  | W.Add_vertex { name } -> Printf.sprintf "ADDVERTEX %s %s" digest name
  | W.Add_edge { name; members } ->
    Printf.sprintf "ADDEDGE %s %s%s" digest name
      (Array.fold_left (fun acc m -> acc ^ " " ^ string_of_int m) "" members)
  | W.Del_edge { edge } -> Printf.sprintf "DELEDGE %s %d" digest edge

let write_fully fd s =
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < Bytes.length b then
      match Unix.write fd b off (Bytes.length b - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  go 0

(* Fork a child that becomes the daemon.  The child never returns to
   the test runner: _exit only, so alcotest state is not replayed. *)
let spawn_server config =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    Hp_util.Log.set_level Hp_util.Log.Error;
    (match Server.start config with
    | Ok t ->
      Server.wait t;
      Unix._exit 0
    | Error _ -> Unix._exit 127)
  | pid -> pid

let wait_for_socket ~pid socket_path =
  let rec poll n =
    if Sys.file_exists socket_path then ()
    else if n = 0 then Alcotest.fail "server socket never appeared"
    else begin
      (match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> ()
      | _ -> Alcotest.fail "server died before binding its socket");
      Unix.sleepf 0.005;
      poll (n - 1)
    end
  in
  poll 2000

let oracle ops n =
  let live = L.of_hypergraph (HIO.of_string base_text) in
  List.iteri
    (fun i op ->
      if i < n then
        match L.apply live op with
        | Ok _ -> ()
        | Error m -> Alcotest.failf "oracle op %d: %s" i m)
    ops;
  L.to_hypergraph live

let assert_bit_identical name a b =
  checkb (name ^ ": structure") true (H.equal_structure a b);
  checkb (name ^ ": names") true
    (Array.init (H.n_vertices a) (H.vertex_name a)
     = Array.init (H.n_vertices b) (H.vertex_name b)
    && Array.init (H.n_edges a) (H.edge_name a)
       = Array.init (H.n_edges b) (H.edge_name b));
  let d = HC.decompose ~domains:1 a and d' = HC.decompose ~domains:1 b in
  check (name ^ ": max core") d.HC.max_core d'.HC.max_core;
  checkb (name ^ ": vertex cores") true (d.HC.vertex_core = d'.HC.vertex_core);
  checkb (name ^ ": edge cores") true (d.HC.edge_core = d'.HC.edge_core);
  let k, r = HC.max_core ~domains:1 a and k', r' = HC.max_core ~domains:1 b in
  check (name ^ ": k-core index") k k';
  checkb (name ^ ": k-core members") true
    (r.HC.vertex_ids = r'.HC.vertex_ids && r.HC.edge_ids = r'.HC.edge_ids)

let run_schedule i =
  let rng = Prng.create (0x5EED + i) in
  let dir = Filename.temp_dir "hgcrash" (string_of_int i) in
  let socket_path = Filename.concat dir "hgd.sock" in
  let path = Filename.concat dir "data.hg" in
  write_file path base_text;
  let config =
    {
      (Server.default_config ~socket_path) with
      workers = 1;
      cache_capacity = 4;
      wal_sync =
        (match i mod 3 with 0 -> W.Always | 1 -> W.Batch | _ -> W.Never);
      wal_checkpoint_every = (if i mod 4 = 0 then 8 else 0);
    }
  in
  let n_ops = 16 + Prng.int rng 17 in
  let ops = gen_ops rng ~nv0:5 ~ne0:3 n_ops in
  let pid = spawn_server config in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()))
    (fun () ->
      wait_for_socket ~pid socket_path;
      (* The socket file appears at bind; retry the first connect over
         the bind-to-listen window. *)
      let rec connect_retry n =
        match Client.connect ~socket_path with
        | Ok c -> Ok c
        | Error m when n > 0 ->
          Unix.sleepf 0.01;
          ignore m;
          connect_retry (n - 1)
        | Error m -> Error m
      in
      (* LOAD on its own connection; the reply carries the handle. *)
      let digest =
        match connect_retry 50 with
        | Error m -> Alcotest.failf "schedule %d: connect: %s" i m
        | Ok c ->
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              match Client.request c (P.Load path) with
              | Ok (P.Ok kvs) -> List.assoc "digest" kvs
              | Ok (P.Err { message; _ }) ->
                Alcotest.failf "schedule %d: LOAD: %s" i message
              | Error m -> Alcotest.failf "schedule %d: LOAD: %s" i m)
      in
      (* The whole burst in one write, then a kill at a random point:
         sometimes nothing has run, sometimes everything has. *)
      let lines =
        List.concat_map
          (fun (j, op) ->
            let line = op_line digest op in
            if i mod 5 = 2 && j mod 10 = 9 then
              [ line; "CHECKPOINT " ^ digest ]
            else [ line ])
          (List.mapi (fun j op -> (j, op)) ops)
      in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX socket_path);
          write_fully fd (String.concat "" (List.map (fun l -> l ^ "\n") lines));
          Unix.sleepf (float_of_int (Prng.int rng 9) /. 1000.0);
          Unix.kill pid Sys.sigkill;
          ignore (Unix.waitpid [] pid)));
  (* Recovery in this process, straight off the dead server's disk. *)
  let reg = Registry.create () in
  match Registry.load reg path with
  | Error (Registry.Read_failed m | Registry.Parse_failed m) ->
    Alcotest.failf "schedule %d: recovery failed: %s" i m
  | Ok (entry, _) ->
    let st = entry.Registry.state in
    let epoch = st.Registry.epoch in
    checkb
      (Printf.sprintf "schedule %d: epoch %d within the burst" i epoch)
      true
      (epoch >= 0 && epoch <= n_ops);
    assert_bit_identical
      (Printf.sprintf "schedule %d (epoch %d/%d)" i epoch n_ops)
      (oracle ops epoch) st.Registry.hypergraph;
    ignore (Registry.evict reg entry.Registry.digest);
    (epoch, n_ops)

let test_sigkill_schedules () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let partial = ref 0 and complete = ref 0 and untouched = ref 0 in
  for i = 0 to 99 do
    let epoch, n_ops = run_schedule i in
    if epoch = 0 then incr untouched
    else if epoch = n_ops then incr complete
    else incr partial
  done;
  (* The kill delay is tuned so the three crash shapes all occur; a
     skew here means the schedules stopped exercising mid-burst
     recovery and the sleep range needs retuning. *)
  Printf.printf
    "crash schedules: %d mid-burst, %d complete, %d before any op\n%!"
    !partial !complete !untouched;
  checkb "some kill landed mid-burst" true (!partial > 0)

let () =
  Alcotest.run "hp_wal_crash"
    [
      ( "crash recovery",
        [
          Alcotest.test_case "100 randomized SIGKILL schedules" `Slow
            test_sigkill_schedules;
        ] );
    ]
