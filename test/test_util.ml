(* Unit and property tests for the hp_util substrate. *)

module U = Hp_util

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* Dynarray *)

let test_dynarray_basic () =
  let d = U.Dynarray.create ~dummy:0 () in
  checkb "empty" true (U.Dynarray.is_empty d);
  for i = 0 to 99 do
    U.Dynarray.push d i
  done;
  check "length" 100 (U.Dynarray.length d);
  check "get 57" 57 (U.Dynarray.get d 57);
  U.Dynarray.set d 57 (-1);
  check "set" (-1) (U.Dynarray.get d 57);
  check "pop" 99 (U.Dynarray.pop d);
  check "length after pop" 99 (U.Dynarray.length d);
  U.Dynarray.clear d;
  check "cleared" 0 (U.Dynarray.length d)

let test_dynarray_bounds () =
  let d = U.Dynarray.create ~dummy:0 () in
  U.Dynarray.push d 1;
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Dynarray: index 1 out of bounds [0,1)") (fun () ->
      ignore (U.Dynarray.get d 1));
  Alcotest.check_raises "pop empty" (Invalid_argument "Dynarray.pop: empty")
    (fun () ->
      ignore (U.Dynarray.pop d);
      ignore (U.Dynarray.pop d))

let test_dynarray_conversions () =
  let d = U.Dynarray.of_array ~dummy:0 [| 3; 1; 2 |] in
  Alcotest.(check (list int)) "to_list" [ 3; 1; 2 ] (U.Dynarray.to_list d);
  U.Dynarray.sort compare d;
  Alcotest.(check (array int)) "sort" [| 1; 2; 3 |] (U.Dynarray.to_array d);
  checkb "exists" true (U.Dynarray.exists (fun x -> x = 2) d);
  checkb "not exists" false (U.Dynarray.exists (fun x -> x = 9) d);
  check "fold" 6 (U.Dynarray.fold_left ( + ) 0 d)

let prop_dynarray_push_pop =
  QCheck.Test.make ~name:"dynarray: push then pop returns inputs reversed" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let d = U.Dynarray.create ~dummy:0 () in
      List.iter (U.Dynarray.push d) xs;
      let popped = List.init (List.length xs) (fun _ -> U.Dynarray.pop d) in
      popped = List.rev xs && U.Dynarray.is_empty d)

(* Bucket_queue *)

let test_bucket_queue_basic () =
  let q = U.Bucket_queue.create ~n:5 ~max_key:10 in
  U.Bucket_queue.insert q 0 3;
  U.Bucket_queue.insert q 1 1;
  U.Bucket_queue.insert q 2 7;
  check "size" 3 (U.Bucket_queue.size q);
  (match U.Bucket_queue.pop_min q with
  | Some (1, 1) -> ()
  | Some (v, k) -> Alcotest.failf "expected (1,1), got (%d,%d)" v k
  | None -> Alcotest.fail "expected (1,1), got None");
  U.Bucket_queue.change_key q 2 0;
  (match U.Bucket_queue.pop_min q with
  | Some (2, 0) -> ()
  | Some _ | None -> Alcotest.fail "expected element 2 at key 0");
  check "remaining" 1 (U.Bucket_queue.size q)

let test_bucket_queue_decrease () =
  let q = U.Bucket_queue.create ~n:3 ~max_key:5 in
  U.Bucket_queue.insert q 0 5;
  U.Bucket_queue.decrease q 0;
  check "decreased key" 4 (U.Bucket_queue.key q 0);
  U.Bucket_queue.remove q 0;
  checkb "removed" false (U.Bucket_queue.mem q 0);
  U.Bucket_queue.remove q 0 (* idempotent *)

let test_bucket_queue_errors () =
  let q = U.Bucket_queue.create ~n:2 ~max_key:3 in
  U.Bucket_queue.insert q 0 1;
  Alcotest.check_raises "double insert"
    (Invalid_argument "Bucket_queue.insert: element already present") (fun () ->
      U.Bucket_queue.insert q 0 2);
  Alcotest.check_raises "key out of range"
    (Invalid_argument "Bucket_queue.insert: key out of range") (fun () ->
      U.Bucket_queue.insert q 1 4)

let prop_bucket_queue_model =
  (* Compare against a naive model: map of element -> key. *)
  QCheck.Test.make ~name:"bucket_queue: pop_min matches naive model" ~count:300
    QCheck.(list (pair (int_bound 19) (int_bound 9)))
    (fun ops ->
      let q = U.Bucket_queue.create ~n:20 ~max_key:9 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (v, k) ->
          if U.Bucket_queue.mem q v then U.Bucket_queue.change_key q v k
          else U.Bucket_queue.insert q v k;
          Hashtbl.replace model v k)
        ops;
      let ok = ref true in
      let rec drain () =
        match U.Bucket_queue.pop_min q with
        | None -> if Hashtbl.length model <> 0 then ok := false
        | Some (v, k) ->
          (match Hashtbl.find_opt model v with
          | Some mk when mk = k ->
            let min_model = Hashtbl.fold (fun _ k acc -> min k acc) model max_int in
            if k <> min_model then ok := false;
            Hashtbl.remove model v
          | Some _ | None -> ok := false);
          drain ()
      in
      drain ();
      !ok)

(* Disjoint_set *)

let test_disjoint_set () =
  let ds = U.Disjoint_set.create 6 in
  check "initial count" 6 (U.Disjoint_set.count ds);
  checkb "union 0 1" true (U.Disjoint_set.union ds 0 1);
  checkb "union 1 2" true (U.Disjoint_set.union ds 1 2);
  checkb "redundant union" false (U.Disjoint_set.union ds 0 2);
  checkb "same" true (U.Disjoint_set.same ds 0 2);
  checkb "not same" false (U.Disjoint_set.same ds 0 3);
  check "count" 4 (U.Disjoint_set.count ds);
  check "size_of" 3 (U.Disjoint_set.size_of ds 1);
  let groups = U.Disjoint_set.groups ds in
  check "group count" 4 (Array.length groups);
  let total = Array.fold_left (fun acc g -> acc + List.length g) 0 groups in
  check "groups partition" 6 total

(* Prng *)

let test_prng_determinism () =
  let a = U.Prng.create 42 and b = U.Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (U.Prng.next_int64 a) (U.Prng.next_int64 b)
  done

let test_prng_bounds () =
  let rng = U.Prng.create 7 in
  for _ = 1 to 1000 do
    let v = U.Prng.int rng 13 in
    checkb "in range" true (v >= 0 && v < 13);
    let f = U.Prng.float rng in
    checkb "unit float" true (f >= 0.0 && f < 1.0)
  done

let test_prng_sample () =
  let rng = U.Prng.create 3 in
  let s = U.Prng.sample_without_replacement rng 5 100 in
  check "sample size" 5 (Array.length s);
  check "distinct" 5 (Array.length (U.Sorted.of_array s));
  let full = U.Prng.sample_without_replacement rng 100 100 in
  check "full sample distinct" 100 (Array.length (U.Sorted.of_array full))

let test_prng_powerlaw () =
  let rng = U.Prng.create 5 in
  let counts = Array.make 11 0 in
  for _ = 1 to 20000 do
    let d = U.Prng.powerlaw_int rng ~gamma:2.5 ~dmin:1 ~dmax:10 in
    checkb "in range" true (d >= 1 && d <= 10);
    counts.(d) <- counts.(d) + 1
  done;
  (* The mass must be decreasing and heavily skewed toward 1. *)
  checkb "monotone head" true (counts.(1) > counts.(2) && counts.(2) > counts.(3));
  checkb "skew" true (counts.(1) > 10000)

let test_prng_shuffle_permutes () =
  let rng = U.Prng.create 9 in
  let a = Array.init 50 Fun.id in
  U.Prng.shuffle rng a;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) (Th.sorted_array a)

(* Sorted *)

let prop_sorted_of_list =
  QCheck.Test.make ~name:"sorted: of_list sorts and dedups" ~count:300
    QCheck.(list small_int)
    (fun xs ->
      let a = U.Sorted.of_list xs in
      U.Sorted.is_sorted_strict a && Array.to_list a = List.sort_uniq compare xs)

let prop_sorted_set_ops =
  QCheck.Test.make ~name:"sorted: inter/union/diff match list model" ~count:300
    QCheck.(pair (list (int_bound 20)) (list (int_bound 20)))
    (fun (xs, ys) ->
      let a = U.Sorted.of_list xs and b = U.Sorted.of_list ys in
      let la = List.sort_uniq compare xs and lb = List.sort_uniq compare ys in
      let model_inter = List.filter (fun x -> List.mem x lb) la in
      let model_union = List.sort_uniq compare (la @ lb) in
      let model_diff = List.filter (fun x -> not (List.mem x lb)) la in
      Array.to_list (U.Sorted.inter a b) = model_inter
      && Array.to_list (U.Sorted.union a b) = model_union
      && Array.to_list (U.Sorted.diff a b) = model_diff
      && U.Sorted.inter_count a b = List.length model_inter
      && U.Sorted.subset a b = List.for_all (fun x -> List.mem x lb) la)

let prop_sorted_mem =
  QCheck.Test.make ~name:"sorted: mem is list membership" ~count:300
    QCheck.(pair (list (int_bound 30)) (int_bound 30))
    (fun (xs, x) ->
      let a = U.Sorted.of_list xs in
      U.Sorted.mem a x = List.mem x xs)

let test_sorted_remove () =
  let a = U.Sorted.of_list [ 1; 3; 5 ] in
  Alcotest.(check (array int)) "remove present" [| 1; 5 |] (U.Sorted.remove a 3);
  Alcotest.(check (array int)) "remove absent" [| 1; 3; 5 |] (U.Sorted.remove a 4)

(* Int_histogram *)

let test_histogram () =
  let h = U.Int_histogram.of_array [| 1; 1; 2; 5; 1 |] in
  check "count 1" 3 (U.Int_histogram.count h 1);
  check "count absent" 0 (U.Int_histogram.count h 3);
  check "total" 5 (U.Int_histogram.total h);
  check "max" 5 (U.Int_histogram.max_value h);
  check "mode" 1 (U.Int_histogram.mode h);
  check "cumulative >= 2" 2 (U.Int_histogram.cumulative_ge h 2);
  Alcotest.(check (list (pair int int)))
    "support"
    [ (1, 3); (2, 1); (5, 1) ]
    (U.Int_histogram.support h);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (U.Int_histogram.mean h)

let test_histogram_negative () =
  Alcotest.check_raises "negative value"
    (Invalid_argument "Int_histogram: negative value") (fun () ->
      ignore (U.Int_histogram.of_array [| -1 |]))

(* Linreg *)

let test_linreg_exact_line () =
  let pts = Array.init 10 (fun i -> (float_of_int i, (2.5 *. float_of_int i) +. 1.0)) in
  let f = U.Linreg.fit pts in
  Alcotest.(check (float 1e-9)) "slope" 2.5 f.slope;
  Alcotest.(check (float 1e-9)) "intercept" 1.0 f.intercept;
  Alcotest.(check (float 1e-9)) "r2" 1.0 f.r2;
  Alcotest.(check (float 1e-9)) "predict" 26.0 (U.Linreg.predict f 10.0)

let test_linreg_noisy () =
  let pts = [| (0.0, 0.1); (1.0, 0.9); (2.0, 2.1); (3.0, 2.9) |] in
  let f = U.Linreg.fit pts in
  Alcotest.(check bool) "slope near 1" true (Float.abs (f.slope -. 1.0) < 0.1);
  Alcotest.(check bool) "good r2" true (f.r2 > 0.99);
  let r = U.Linreg.residuals f pts in
  Alcotest.(check bool) "residuals near zero" true
    (Array.for_all (fun x -> Float.abs x < 0.2) r)

let test_linreg_degenerate () =
  Alcotest.check_raises "single point"
    (Invalid_argument "Linreg.fit: need at least two points") (fun () ->
      ignore (U.Linreg.fit [| (1.0, 1.0) |]));
  Alcotest.check_raises "vertical"
    (Invalid_argument "Linreg.fit: degenerate x values") (fun () ->
      ignore (U.Linreg.fit [| (1.0, 1.0); (1.0, 2.0) |]))

let test_summary_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (U.Linreg.mean [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "variance" (2.0 /. 3.0)
    (U.Linreg.variance [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "stddev of constants" 0.0
    (U.Linreg.stddev [| 4.0; 4.0 |])

(* Table *)

let test_table_render () =
  let s = U.Table.render ~header:[ "name"; "n" ] [ [ "a"; "1" ]; [ "bb"; "22" ] ] in
  let lines = String.split_on_char '\n' s in
  check "line count" 4 (List.length lines);
  Alcotest.(check string) "header" "name   n" (List.nth lines 0);
  Alcotest.(check string) "row" "a      1" (List.nth lines 2);
  Alcotest.(check string) "row 2" "bb    22" (List.nth lines 3)

let test_table_fmt () =
  Alcotest.(check string) "float trim" "2.528" (U.Table.fmt_float ~digits:3 2.528);
  Alcotest.(check string) "float trailing" "2.5" (U.Table.fmt_float ~digits:3 2.5);
  Alcotest.(check string) "int-like" "3" (U.Table.fmt_float 3.0001);
  Alcotest.(check string) "seconds" "0.47 s" (U.Table.fmt_time 0.47);
  Alcotest.(check string) "minutes" "2 m" (U.Table.fmt_time 120.0);
  Alcotest.(check string) "hours" "1.5 h" (U.Table.fmt_time 5400.0)

(* Heap *)

let test_heap_basic () =
  let h = U.Heap.create () in
  checkb "empty" true (U.Heap.is_empty h);
  U.Heap.push h ~priority:3.0 30;
  U.Heap.push h ~priority:1.0 10;
  U.Heap.push h ~priority:2.0 20;
  check "size" 3 (U.Heap.size h);
  (match U.Heap.peek h with
  | Some (p, v) ->
    Alcotest.(check (float 0.0)) "peek prio" 1.0 p;
    check "peek value" 10 v
  | None -> Alcotest.fail "peek on non-empty heap");
  (match U.Heap.pop h with
  | Some (_, 10) -> ()
  | Some _ | None -> Alcotest.fail "pop order");
  check "size after pop" 2 (U.Heap.size h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap: repeated pop yields sorted priorities" ~count:300
    QCheck.(list (pair (float_bound_exclusive 100.0) small_int))
    (fun entries ->
      let h = U.Heap.create () in
      List.iter (fun (p, v) -> U.Heap.push h ~priority:p v) entries;
      let rec drain acc =
        match U.Heap.pop h with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      let prios = drain [] in
      prios = List.sort compare prios && List.length prios = List.length entries)

(* Parallel *)

let test_parallel_sum () =
  let sum domains =
    U.Parallel.fold_range ~domains ~n:10000
      ~create:(fun () -> 0)
      ~fold:( + )
      ~combine:( + )
  in
  let expected = 10000 * 9999 / 2 in
  check "sequential" expected (sum 1);
  check "two domains" expected (sum 2);
  check "four domains" expected (sum 4);
  check "more domains than work" 3 (U.Parallel.fold_range ~domains:8 ~n:3
    ~create:(fun () -> 0) ~fold:(fun a i -> a + i) ~combine:( + ))

let test_parallel_empty_range () =
  check "empty range" 7
    (U.Parallel.fold_range ~domains:4 ~n:0 ~create:(fun () -> 7)
       ~fold:(fun a _ -> a + 1) ~combine:( + ))

let test_parallel_errors () =
  Alcotest.check_raises "bad domains"
    (Invalid_argument "Parallel.fold_range: domains < 1") (fun () ->
      ignore
        (U.Parallel.fold_range ~domains:0 ~n:1 ~create:(fun () -> 0)
           ~fold:(fun a _ -> a) ~combine:( + )));
  Alcotest.check_raises "worker exception surfaces" Exit (fun () ->
      ignore
        (U.Parallel.fold_range ~domains:3 ~n:300
           ~create:(fun () -> 0)
           ~fold:(fun _ i -> if i = 250 then raise Exit else i)
           ~combine:( + )))

let test_recommended_domains () =
  let d = U.Parallel.recommended_domains () in
  checkb "at least one" true (d >= 1);
  checkb "capped" true (d <= 8)

let with_budget b f =
  let saved = U.Parallel.domain_budget () in
  U.Parallel.set_domain_budget b;
  Fun.protect ~finally:(fun () -> U.Parallel.set_domain_budget saved) f

let test_parallel_small_n_fans_out () =
  (* An 8-item range at 4 domains used to fall back to one domain
     (n < 2 * domains); heavy-item small-n sweeps must fan out.  The
     fold records which domain ran each index. *)
  with_budget 4 (fun () ->
      let ids =
        U.Parallel.fold_range ~domains:4 ~n:8
          ~create:(fun () -> [])
          ~fold:(fun acc i -> (i, Domain.self ()) :: acc)
          ~combine:( @ )
      in
      check "all indices folded" 8 (List.length ids);
      checkb "every index exactly once" true
        (List.sort compare (List.map fst ids) = [ 0; 1; 2; 3; 4; 5; 6; 7 ]);
      let distinct =
        List.sort_uniq compare (List.map snd ids) |> List.length
      in
      check "four domains used" 4 distinct)

let test_parallel_remainder_first () =
  (* n = 7 over 3 domains: chunks 3/2/2 — no chunk empty, every index
     covered once, deterministic left-to-right combine. *)
  with_budget 8 (fun () ->
      let idx =
        U.Parallel.fold_range ~domains:3 ~n:7
          ~create:(fun () -> [])
          ~fold:(fun acc i -> i :: acc)
          ~combine:(fun a b -> a @ b)
      in
      checkb "in-order coverage" true
        (List.rev idx = [ 0; 1; 2; 3; 4; 5; 6 ] || List.sort compare idx = [ 0; 1; 2; 3; 4; 5; 6 ]))

let test_domain_budget_clamp () =
  with_budget 8 (fun () ->
      check "idle clamp is the budget" 8 (U.Parallel.effective_domains 8);
      check "requests below budget pass" 3 (U.Parallel.effective_domains 3);
      U.Parallel.enter_job ();
      U.Parallel.enter_job ();
      check "occupancy visible" 2 (U.Parallel.occupancy ());
      check "two jobs split the budget" 4 (U.Parallel.effective_domains 8);
      U.Parallel.enter_job ();
      U.Parallel.enter_job ();
      check "four jobs quarter it" 2 (U.Parallel.effective_domains 8);
      for _ = 1 to 4 do U.Parallel.leave_job () done;
      check "budget restored when jobs leave" 8 (U.Parallel.effective_domains 8);
      U.Parallel.set_domain_budget 1;
      check "floor of one domain" 1 (U.Parallel.effective_domains 8));
  Alcotest.check_raises "unbalanced leave"
    (Invalid_argument "Parallel.leave_job: no job entered") (fun () ->
      U.Parallel.leave_job ())

let prop_parallel_deterministic =
  QCheck.Test.make ~name:"parallel: result independent of domain count" ~count:50
    QCheck.(pair (int_range 1 6) (int_range 0 500))
    (fun (domains, n) ->
      let run d =
        U.Parallel.fold_range ~domains:d ~n
          ~create:(fun () -> [])
          ~fold:(fun acc i -> (i * i) :: acc)
          ~combine:(fun a b -> a @ b)
      in
      List.sort compare (run domains) = List.sort compare (run 1))

(* Lru *)

let test_lru_basic () =
  let l = U.Lru.create ~capacity:3 () in
  checkb "empty" true (U.Lru.is_empty l);
  check "capacity" 3 (U.Lru.capacity l);
  checkb "no eviction" true (U.Lru.set l "a" 1 = None);
  checkb "no eviction" true (U.Lru.set l "b" 2 = None);
  check "length" 2 (U.Lru.length l);
  checkb "find" true (U.Lru.find l "a" = Some 1);
  checkb "peek" true (U.Lru.peek l "b" = Some 2);
  checkb "missing" true (U.Lru.find l "z" = None);
  checkb "mem" true (U.Lru.mem l "a");
  checkb "remove" true (U.Lru.remove l "a");
  checkb "remove missing" false (U.Lru.remove l "a");
  U.Lru.clear l;
  check "cleared" 0 (U.Lru.length l)

let test_lru_eviction_order () =
  let l = U.Lru.create ~capacity:2 () in
  ignore (U.Lru.set l "a" 1);
  ignore (U.Lru.set l "b" 2);
  (* Touch "a" so "b" is the LRU. *)
  ignore (U.Lru.find l "a");
  checkb "lru is b" true (U.Lru.lru l = Some ("b", 2));
  checkb "evicts b" true (U.Lru.set l "c" 3 = Some ("b", 2));
  checkb "a survives" true (U.Lru.mem l "a");
  (* Replacing an existing key never evicts. *)
  checkb "replace" true (U.Lru.set l "a" 10 = None);
  checkb "replaced" true (U.Lru.peek l "a" = Some 10);
  check "length" 2 (U.Lru.length l)

let test_lru_zero_capacity () =
  let l = U.Lru.create ~capacity:0 () in
  checkb "set bounces" true (U.Lru.set l "a" 1 = Some ("a", 1));
  check "stays empty" 0 (U.Lru.length l);
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Lru.create: negative capacity") (fun () ->
      ignore (U.Lru.create ~capacity:(-1) ()))

(* Model-based property: an association list kept MRU-first, with the
   same promote-on-hit / evict-from-tail rules. *)
type lru_op = Set of int * int | Find of int | Peek of int | Remove of int

let lru_op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun k v -> Set (k, v)) (int_range 0 9) (int_range 0 99));
        (2, map (fun k -> Find k) (int_range 0 9));
        (1, map (fun k -> Peek k) (int_range 0 9));
        (1, map (fun k -> Remove k) (int_range 0 9));
      ])

let lru_op_print = function
  | Set (k, v) -> Printf.sprintf "set %d %d" k v
  | Find k -> Printf.sprintf "find %d" k
  | Peek k -> Printf.sprintf "peek %d" k
  | Remove k -> Printf.sprintf "remove %d" k

let prop_lru_matches_model =
  QCheck.Test.make ~name:"lru: agrees with list model" ~count:300
    QCheck.(
      pair (int_range 1 5)
        (make ~print:(fun l -> String.concat "; " (List.map lru_op_print l))
           (Gen.list_size (Gen.int_range 0 40) lru_op_gen)))
    (fun (cap, ops) ->
      let l = U.Lru.create ~capacity:cap () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Set (k, v) ->
            let evicted = U.Lru.set l k v in
            let expected_evicted =
              if List.mem_assoc k !model then begin
                model := (k, v) :: List.remove_assoc k !model;
                None
              end
              else if List.length !model >= cap then begin
                let doomed = List.nth !model (List.length !model - 1) in
                model :=
                  (k, v) :: List.filter (fun (k', _) -> k' <> fst doomed) !model;
                Some doomed
              end
              else begin
                model := (k, v) :: !model;
                None
              end
            in
            evicted = expected_evicted
            && U.Lru.length l <= cap
            && U.Lru.to_list l = !model
          | Find k ->
            let got = U.Lru.find l k in
            let expected = List.assoc_opt k !model in
            if expected <> None then
              model :=
                (k, Option.get expected) :: List.remove_assoc k !model;
            got = expected && U.Lru.to_list l = !model
          | Peek k -> U.Lru.peek l k = List.assoc_opt k !model
          | Remove k ->
            let removed = U.Lru.remove l k in
            let expected = List.mem_assoc k !model in
            model := List.remove_assoc k !model;
            removed = expected && U.Lru.to_list l = !model)
        ops)

(* Log *)

let checks = Alcotest.(check string)

let test_log_render () =
  checks "fixed keys and escaping"
    "{\"ts\":\"1970-01-01T00:00:00.000Z\",\"level\":\"info\",\"comp\":\"test\",\
     \"msg\":\"tab\\there\",\"k\":\"a\\\"b\\\\c\\nd\",\"ctl\":\"\\u0001\"}"
    (U.Log.render ~ts:0.0 U.Log.Info ~comp:"test"
       ~fields:[ ("k", "a\"b\\c\nd"); ("ctl", "\x01") ]
       "tab\there");
  checks "millis" "2001-09-09T01:46:40.500Z"
    (String.sub
       (U.Log.render ~ts:1_000_000_000.5 U.Log.Error ~comp:"c" ~fields:[] "m")
       7 24)

let test_log_levels_and_ring () =
  let saved = U.Log.current_level () in
  Fun.protect
    ~finally:(fun () -> U.Log.set_level saved)
    (fun () ->
      U.Log.set_level U.Log.Warn;
      checkb "debug disabled" false (U.Log.enabled U.Log.Debug);
      checkb "info disabled" false (U.Log.enabled U.Log.Info);
      checkb "warn enabled" true (U.Log.enabled U.Log.Warn);
      checkb "error enabled" true (U.Log.enabled U.Log.Error);
      U.Log.info ~comp:"ringtest" "below threshold, dropped";
      U.Log.warn ~comp:"ringtest" ~fields:[ ("n", "1") ] "first kept";
      U.Log.error ~comp:"ringtest" "second kept";
      match U.Log.recent 2 with
      | [ newest; older ] ->
        let has needle line =
          let nl = String.length needle and ll = String.length line in
          let rec go i = i + nl <= ll && (String.sub line i nl = needle || go (i + 1)) in
          go 0
        in
        checkb "newest first" true (has "second kept" newest);
        checkb "older second" true (has "first kept" older);
        checkb "dropped line not retained" false (has "below threshold" older)
      | l -> Alcotest.failf "expected 2 retained lines, got %d" (List.length l))

(* Intsort *)

let test_intsort_known () =
  let a = [| 5; 3; 100000; 0; 3; 70000; 1 |] in
  U.Intsort.sort a;
  Alcotest.(check (array int)) "sorted" [| 0; 1; 3; 3; 5; 70000; 100000 |] a

let test_intsort_len_prefix () =
  let a = [| 9; 4; 2; 77; 77; 77 |] in
  U.Intsort.sort ~len:3 a;
  Alcotest.(check (array int)) "prefix sorted, tail untouched"
    [| 2; 4; 9; 77; 77; 77 |] a

let test_intsort_negative () =
  Alcotest.check_raises "negative key"
    (Invalid_argument "Intsort.sort: negative key") (fun () ->
      U.Intsort.sort [| 1; -1 |])

let prop_intsort_matches_stdlib =
  QCheck.Test.make ~name:"intsort: agrees with stdlib sort" ~count:300
    QCheck.(list (int_bound 1_000_000))
    (fun xs ->
      let a = Array.of_list xs and b = Array.of_list xs in
      U.Intsort.sort a;
      Array.sort compare b;
      a = b)

let prop_merge_runs_counts =
  (* Splitting a multiset across buffers and merging must reproduce
     the run-length encoding of the sorted whole. *)
  QCheck.Test.make ~name:"intsort: merge_runs equals single-buffer RLE" ~count:200
    QCheck.(pair (list (int_bound 50)) (int_range 1 4))
    (fun (xs, k) ->
      let whole = Array.of_list xs in
      U.Intsort.sort whole;
      let expected = ref [] in
      U.Intsort.merge_runs
        [| (whole, Array.length whole) |]
        (fun key c -> expected := (key, c) :: !expected);
      (* Round-robin split, each bucket sorted independently. *)
      let buckets = Array.init k (fun _ -> ref []) in
      List.iteri (fun i x -> buckets.(i mod k) := x :: !(buckets.(i mod k))) xs;
      let bufs =
        Array.map
          (fun b ->
            let a = Array.of_list !b in
            U.Intsort.sort a;
            (a, Array.length a))
          buckets
      in
      let got = ref [] in
      U.Intsort.merge_runs bufs (fun key c -> got := (key, c) :: !got);
      !got = !expected)

(* Binary *)

let test_binary_known () =
  let b = Bytes.make 16 '\xff' in
  U.Binary.set_i64_le b ~pos:4 0x0102030405060708L;
  Alcotest.(check string) "little-endian layout"
    "\x08\x07\x06\x05\x04\x03\x02\x01"
    (Bytes.sub_string b 4 8);
  Alcotest.(check int64) "round trip" 0x0102030405060708L
    (U.Binary.get_i64_le b ~pos:4);
  U.Binary.set_int_le b ~pos:0 max_int;
  Alcotest.(check (option int)) "int round trip" (Some max_int)
    (U.Binary.get_int_le b ~pos:0);
  U.Binary.set_i64_le b ~pos:0 Int64.min_int;
  Alcotest.(check (option int)) "out-of-range i64 refused" None
    (U.Binary.get_int_le b ~pos:0)

let test_binary_bounds () =
  let b = Bytes.create 8 in
  let oob name f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  oob "get past end" (fun () -> U.Binary.get_i64_le b ~pos:1);
  oob "get negative" (fun () -> U.Binary.get_i64_le b ~pos:(-1));
  oob "set past end" (fun () -> U.Binary.set_i64_le b ~pos:8 0L);
  oob "set negative int" (fun () -> U.Binary.set_int_le b ~pos:0 (-1));
  oob "hash64 range" (fun () -> U.Binary.hash64 U.Binary.hash64_seed b ~pos:4 ~len:5)

let prop_binary_vs_stdlib =
  (* The hand-rolled byte fiddling must agree with the stdlib codec in
     both directions, at every alignment. *)
  QCheck.Test.make ~name:"binary: i64 LE agrees with Bytes.get/set_int64_le"
    ~count:500
    QCheck.(pair int64 (int_bound 8))
    (fun (v, pos) ->
      let ours = Bytes.make 16 '\x5a' and ref_ = Bytes.make 16 '\x5a' in
      U.Binary.set_i64_le ours ~pos v;
      Bytes.set_int64_le ref_ pos v;
      Bytes.equal ours ref_
      && U.Binary.get_i64_le ours ~pos = Bytes.get_int64_le ref_ pos)

let prop_binary_int_round_trip =
  QCheck.Test.make ~name:"binary: non-negative int round-trips" ~count:500
    QCheck.(int_bound max_int)
    (fun v ->
      let b = Bytes.create 8 in
      U.Binary.set_int_le b ~pos:0 v;
      U.Binary.get_int_le b ~pos:0 = Some v)

let prop_hash64_chain =
  (* Chaining over a split must equal hashing the concatenation, and
     the checksum must notice any single-byte flip. *)
  QCheck.Test.make ~name:"binary: hash64 chains and separates" ~count:300
    QCheck.(pair (string_of_size (Gen.int_range 1 64)) (int_bound 63))
    (fun (s, at) ->
      let at = at mod String.length s in
      let whole = U.Binary.hash64_string U.Binary.hash64_seed s in
      let left = U.Binary.hash64_string U.Binary.hash64_seed (String.sub s 0 at) in
      let chained =
        U.Binary.hash64 left (Bytes.of_string s) ~pos:at ~len:(String.length s - at)
      in
      let flipped = Bytes.of_string s in
      Bytes.set flipped at (Char.chr (Char.code s.[at] lxor 1));
      whole = chained
      && whole <> U.Binary.hash64_string U.Binary.hash64_seed (Bytes.to_string flipped))

(* Md5 *)

let test_md5_rfc_vectors () =
  (* RFC 1321 appendix A.5. *)
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string) input expected (U.Md5.string input))
    [
      ("", "d41d8cd98f00b204e9800998ecf8427e");
      ("a", "0cc175b9c0f1b6a831c399e269772661");
      ("abc", "900150983cd24fb0d6963f7d28e17f72");
      ("message digest", "f96b697d7cb7938d525a2f31aaf161d0");
      ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b");
      ( "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
        "57edf4a22be3c955ac49da2e2107b67a" );
    ]

let test_md5_finalized () =
  let t = U.Md5.init () in
  U.Md5.feed_string t "abc";
  Alcotest.(check string) "idempotent digest" (U.Md5.hex t) (U.Md5.hex t);
  Alcotest.check_raises "feed after digest"
    (Invalid_argument "Md5.feed: context already finalized") (fun () ->
      U.Md5.feed_string t "more")

let prop_md5_matches_digest =
  (* Any chunking of any string must reproduce the stdlib digest. *)
  QCheck.Test.make ~name:"md5: chunked feed matches Digest.string" ~count:300
    QCheck.(pair (string_of_size (Gen.int_range 0 300)) (list (int_range 1 97)))
    (fun (s, cuts) ->
      let t = U.Md5.init () in
      let pos = ref 0 in
      List.iter
        (fun step ->
          let n = min step (String.length s - !pos) in
          if n > 0 then begin
            U.Md5.feed t (Bytes.unsafe_of_string s) ~pos:!pos ~len:n;
            pos := !pos + n
          end)
        cuts;
      U.Md5.feed_string t (String.sub s !pos (String.length s - !pos));
      U.Md5.hex t = Digest.to_hex (Digest.string s))

let () =
  Alcotest.run "hp_util"
    [
      ( "dynarray",
        [
          Alcotest.test_case "basic" `Quick test_dynarray_basic;
          Alcotest.test_case "bounds" `Quick test_dynarray_bounds;
          Alcotest.test_case "conversions" `Quick test_dynarray_conversions;
          Th.prop prop_dynarray_push_pop;
        ] );
      ( "bucket_queue",
        [
          Alcotest.test_case "basic" `Quick test_bucket_queue_basic;
          Alcotest.test_case "decrease/remove" `Quick test_bucket_queue_decrease;
          Alcotest.test_case "errors" `Quick test_bucket_queue_errors;
          Th.prop prop_bucket_queue_model;
        ] );
      ("disjoint_set", [ Alcotest.test_case "union-find" `Quick test_disjoint_set ]);
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "sampling" `Quick test_prng_sample;
          Alcotest.test_case "powerlaw" `Quick test_prng_powerlaw;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
        ] );
      ( "intsort",
        [
          Alcotest.test_case "known" `Quick test_intsort_known;
          Alcotest.test_case "len prefix" `Quick test_intsort_len_prefix;
          Alcotest.test_case "negative rejected" `Quick test_intsort_negative;
          Th.prop prop_intsort_matches_stdlib;
          Th.prop prop_merge_runs_counts;
        ] );
      ( "sorted",
        [
          Th.prop prop_sorted_of_list;
          Th.prop prop_sorted_set_ops;
          Th.prop prop_sorted_mem;
          Alcotest.test_case "remove" `Quick test_sorted_remove;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "tally" `Quick test_histogram;
          Alcotest.test_case "negative rejected" `Quick test_histogram_negative;
        ] );
      ( "linreg",
        [
          Alcotest.test_case "exact line" `Quick test_linreg_exact_line;
          Alcotest.test_case "noisy line" `Quick test_linreg_noisy;
          Alcotest.test_case "degenerate input" `Quick test_linreg_degenerate;
          Alcotest.test_case "summary stats" `Quick test_summary_stats;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "formatting" `Quick test_table_fmt;
        ] );
      ( "heap",
        [ Alcotest.test_case "basic" `Quick test_heap_basic; Th.prop prop_heap_sorts ]
      );
      ( "lru",
        [
          Alcotest.test_case "basic" `Quick test_lru_basic;
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "zero capacity" `Quick test_lru_zero_capacity;
          Th.prop prop_lru_matches_model;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "sum across domains" `Quick test_parallel_sum;
          Alcotest.test_case "empty range" `Quick test_parallel_empty_range;
          Alcotest.test_case "errors" `Quick test_parallel_errors;
          Alcotest.test_case "recommended domains" `Quick test_recommended_domains;
          Alcotest.test_case "small n fans out" `Quick test_parallel_small_n_fans_out;
          Alcotest.test_case "remainder-first chunks" `Quick test_parallel_remainder_first;
          Alcotest.test_case "domain budget clamp" `Quick test_domain_budget_clamp;
          Th.prop prop_parallel_deterministic;
        ] );
      ( "log",
        [
          Alcotest.test_case "json rendering" `Quick test_log_render;
          Alcotest.test_case "threshold and ring" `Quick test_log_levels_and_ring;
        ] );
      ( "binary",
        [
          Alcotest.test_case "known layout" `Quick test_binary_known;
          Alcotest.test_case "bounds" `Quick test_binary_bounds;
          Th.prop prop_binary_vs_stdlib;
          Th.prop prop_binary_int_round_trip;
          Th.prop prop_hash64_chain;
        ] );
      ( "md5",
        [
          Alcotest.test_case "rfc vectors" `Quick test_md5_rfc_vectors;
          Alcotest.test_case "finalized context" `Quick test_md5_finalized;
          Th.prop prop_md5_matches_digest;
        ] );
    ]
