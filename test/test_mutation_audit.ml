(* Mutation-path audit (degree-0 vertices and edge deletion): the
   shapes a mutation stream can produce that the original text format
   only reaches through its "vertex NAME" escape hatch.

   - ADDVERTEX then CHECKPOINT must round-trip isolated vertices and
     their names through the .hgsnap pack -> mmap load ->
     to_hypergraph chain, and a snapshot-recovered replica must give
     the same KCORE/stats answers as a replica parsed from the
     equivalent text serialization (compared by vertex name: the two
     paths may order vertex ids differently).
   - DELEDGE of the last hyperedge containing a vertex must leave
     degrees, stats and core answers consistent with a fresh parse of
     the equivalent dataset.
   - A duplicate (or empty) ADDVERTEX name is a client error: the text
     format collapses equal names on parse, so accepting one would
     create a state no text round trip can represent — the registry
     must reject it without consuming an epoch or a WAL record. *)

module W = Hp_wal.Wal
module H = Hp_hypergraph.Hypergraph
module HIO = Hp_hypergraph.Hypergraph_io
module HC = Hp_hypergraph.Hypergraph_core
module Registry = Hp_server.Registry

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let base_text = "# audit base\nc1: a b c\nc2: b c d\nc3: c d e\n"

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let load_exn reg path =
  match Registry.load reg path with
  | Ok (entry, _) -> entry
  | Error (Registry.Read_failed m | Registry.Parse_failed m) ->
    Alcotest.failf "load %s: %s" path m

let mutate_exn reg digest op =
  match Registry.mutate reg digest op with
  | Ok a -> a
  | Error (`Invalid m | `Io m) -> Alcotest.failf "mutate: %s" m
  | Error (`Missing | `Ambiguous) -> Alcotest.fail "mutate: dataset lost"

(* Vertex names with their core numbers, and hyperedges as sorted
   member-name lists — the id-independent view both replicas must
   agree on. *)
let named_view h =
  let d = HC.decompose ~domains:1 h in
  let cores =
    List.sort compare
      (List.init (H.n_vertices h) (fun v ->
           (H.vertex_name h v, d.HC.vertex_core.(v))))
  in
  let edges =
    List.sort compare
      (List.init (H.n_edges h) (fun e ->
           List.sort compare
             (Array.to_list
                (Array.map (H.vertex_name h) (H.edge_members h e)))))
  in
  (d.HC.max_core, cores, edges)

let assert_same_answers name a b =
  let mk_a, cores_a, edges_a = named_view a in
  let mk_b, cores_b, edges_b = named_view b in
  check (name ^ ": vertices") (H.n_vertices a) (H.n_vertices b);
  check (name ^ ": hyperedges") (H.n_edges a) (H.n_edges b);
  check (name ^ ": max core") mk_a mk_b;
  checkb (name ^ ": core numbers by name") true (cores_a = cores_b);
  checkb (name ^ ": member sets by name") true (edges_a = edges_b)

let test_isolated_vertex_roundtrip () =
  let dir = Filename.temp_dir "hgaudit" "iso" in
  let path = Filename.concat dir "data.hg" in
  write_file path base_text;
  let reg = Registry.create () in
  let entry = load_exn reg path in
  let digest = entry.Registry.digest in
  ignore (mutate_exn reg digest (W.Add_vertex { name = "iso1" }));
  ignore (mutate_exn reg digest (W.Add_vertex { name = "iso2" }));
  ignore (mutate_exn reg digest (W.Del_edge { edge = 2 }));
  let before = entry.Registry.state in
  (match Registry.checkpoint reg digest with
  | Ok _ -> ()
  | Error (`Io m) -> Alcotest.failf "checkpoint: %s" m
  | Error (`Missing | `Ambiguous) -> Alcotest.fail "checkpoint: dataset lost");
  ignore (Registry.evict reg digest);
  (* Recovery reads the .hgsnap back through the mmap loader. *)
  let entry' = load_exn reg path in
  let after = entry'.Registry.state in
  check "epoch preserved" before.Registry.epoch after.Registry.epoch;
  checkb "structure round-trips" true
    (H.equal_structure before.Registry.hypergraph after.Registry.hypergraph);
  let names h = Array.init (H.n_vertices h) (H.vertex_name h) in
  checkb "names round-trip (isolated included)" true
    (names before.Registry.hypergraph = names after.Registry.hypergraph);
  check "degree-0 vertex survives" 0
    (H.vertex_degree after.Registry.hypergraph
       (H.n_vertices after.Registry.hypergraph - 1));
  (* A mutated dataset recovers with its maintained decomposition
     rebuilt; it must match a fresh peel bit-for-bit. *)
  (match after.Registry.cores with
  | None -> Alcotest.fail "recovered dataset has no maintained cores"
  | Some dec ->
    let d = HC.decompose ~domains:1 after.Registry.hypergraph in
    Alcotest.(check (array int))
      "recovered vertex cores" d.HC.vertex_core dec.HC.vertex_core;
    Alcotest.(check (array int))
      "recovered edge cores" d.HC.edge_core dec.HC.edge_core);
  assert_same_answers "snapshot replica" before.Registry.hypergraph
    after.Registry.hypergraph

let test_text_vs_snapshot_replica () =
  let dir = Filename.temp_dir "hgaudit" "replica" in
  let path = Filename.concat dir "data.hg" in
  write_file path base_text;
  let reg = Registry.create () in
  let entry = load_exn reg path in
  let digest = entry.Registry.digest in
  ignore (mutate_exn reg digest (W.Add_vertex { name = "lonely" }));
  ignore (mutate_exn reg digest (W.Add_edge { name = "e1"; members = [| 0; 5 |] }));
  ignore (mutate_exn reg digest (W.Del_edge { edge = 3 }));
  ignore (mutate_exn reg digest (W.Add_vertex { name = "stray" }));
  let mutated = entry.Registry.state.Registry.hypergraph in
  (* The text serialization of the mutated state, parsed fresh, must
     answer identically by name — including the degree-0 vertex, which
     only survives via the "vertex NAME" line. *)
  let text_path = Filename.concat dir "replica.hg" in
  write_file text_path (HIO.to_string mutated);
  let reg2 = Registry.create () in
  let entry2 = load_exn reg2 text_path in
  assert_same_answers "text replica" mutated
    entry2.Registry.state.Registry.hypergraph

let test_deledge_isolates_vertex () =
  let dir = Filename.temp_dir "hgaudit" "del" in
  let path = Filename.concat dir "data.hg" in
  write_file path "only: a b\nc2: b c\n";
  let reg = Registry.create () in
  let entry = load_exn reg path in
  let digest = entry.Registry.digest in
  let a = mutate_exn reg digest (W.Del_edge { edge = 0 }) in
  check "edge count" 1 a.Registry.n_edges;
  check "vertices keep their ids" 3 a.Registry.n_vertices;
  let h = entry.Registry.state.Registry.hypergraph in
  check "vertex a isolated" 0 (H.vertex_degree h 0);
  (* Equivalent dataset written directly: same answers by name. *)
  assert_same_answers "isolating delete" h
    (HIO.of_string "c2: b c\nvertex a\n");
  (* And the maintained decomposition the server would serve KCORE
     from agrees with a fresh peel at every level. *)
  match entry.Registry.state.Registry.cores with
  | None -> Alcotest.fail "mutated dataset has no maintained cores"
  | Some dec ->
    for k = 0 to dec.HC.max_core do
      let served = HC.core_of_decomposition h dec k in
      let peeled = HC.k_core ~domains:1 h k in
      checkb
        (Printf.sprintf "served %d-core" k)
        true
        (served.HC.vertex_ids = peeled.HC.vertex_ids
        && H.equal_structure served.HC.core peeled.HC.core)
    done

let test_duplicate_vertex_name_rejected () =
  let dir = Filename.temp_dir "hgaudit" "dup" in
  let path = Filename.concat dir "data.hg" in
  write_file path base_text;
  let reg = Registry.create () in
  let entry = load_exn reg path in
  let digest = entry.Registry.digest in
  let epoch0 = entry.Registry.state.Registry.epoch in
  (match Registry.mutate reg digest (W.Add_vertex { name = "a" }) with
  | Error (`Invalid _) -> ()
  | Ok _ -> Alcotest.fail "duplicate of a base vertex name accepted"
  | Error _ -> Alcotest.fail "unexpected error class");
  (match Registry.mutate reg digest (W.Add_vertex { name = "" }) with
  | Error (`Invalid _) -> ()
  | Ok _ -> Alcotest.fail "empty vertex name accepted"
  | Error _ -> Alcotest.fail "unexpected error class");
  check "no epoch consumed" epoch0 entry.Registry.state.Registry.epoch;
  ignore (mutate_exn reg digest (W.Add_vertex { name = "fresh" }));
  (match Registry.mutate reg digest (W.Add_vertex { name = "fresh" }) with
  | Error (`Invalid _) -> ()
  | Ok _ -> Alcotest.fail "duplicate of a mutated-in name accepted"
  | Error _ -> Alcotest.fail "unexpected error class");
  check "only the valid op advanced the epoch" (epoch0 + 1)
    entry.Registry.state.Registry.epoch

let () =
  Alcotest.run "hp_mutation_audit"
    [
      ( "mutation path",
        [
          Alcotest.test_case "isolated vertices round-trip a checkpoint" `Quick
            test_isolated_vertex_roundtrip;
          Alcotest.test_case "text and snapshot replicas agree" `Quick
            test_text_vs_snapshot_replica;
          Alcotest.test_case "DELEDGE isolating a vertex" `Quick
            test_deledge_isolates_vertex;
          Alcotest.test_case "duplicate vertex names rejected" `Quick
            test_duplicate_vertex_name_rejected;
        ] );
    ]
