(* The durable mutation layer: WAL codec round trips, torn-tail
   truncation at every byte of the final record, mid-log corruption as
   typed errors (checksum, epoch gap, bad op, header damage), the
   injected torn-append failpoint, Live op semantics, registry
   recovery (replay, checkpoint compaction, skew heal, base-skew
   rejection, load precedence), epoch-aware cache keys, and bit-flip
   fuzz over both WAL files and the persisted result cache — none of
   which may ever raise. *)

module W = Hp_wal.Wal
module L = Hp_wal.Live
module H = Hp_hypergraph.Hypergraph
module HIO = Hp_hypergraph.Hypergraph_io
module HC = Hp_hypergraph.Hypergraph_core
module B = Hp_util.Binary
module Fault = Hp_util.Fault
module Snap = Hp_snapshot.Snapshot
module Registry = Hp_server.Registry
module Result_cache = Hp_server.Result_cache
module Metrics = Hp_server.Metrics
module P = Hp_server.Protocol

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let tmp_dir () = Filename.temp_dir "hgwal" "test"

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_bytes path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let flip path at =
  let b = Bytes.of_string (read_bytes path) in
  Bytes.set b at (Char.chr (Char.code (Bytes.get b at) lxor 0x20));
  write_bytes path (Bytes.to_string b)

let expect_writer what = function
  | Ok w -> w
  | Error e -> Alcotest.failf "%s: %s" what (W.error_to_string e)

let expect_log what = function
  | Ok (log : W.log) -> log
  | Error e -> Alcotest.failf "%s: %s" what (W.error_to_string e)

let expect_append what w r =
  match W.append w r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: append: %s" what (W.error_to_string e)

(* A fixed op mix covering every constructor, duplicate members, and
   an empty member list. *)
let sample_ops =
  [
    W.Add_vertex { name = "f" };
    W.Add_edge { name = "c4"; members = [| 0; 5; 2; 2 |] };
    W.Del_edge { edge = 1 };
    W.Add_edge { name = "empty"; members = [||] };
  ]

let write_log path ~handle ~base_identity ~base_epoch ops =
  let w =
    expect_writer "create"
      (W.create ~path ~handle ~base_identity ~base_epoch ~sync:W.Never)
  in
  List.iteri
    (fun i op -> expect_append "write_log" w { W.epoch = base_epoch + i + 1; op })
    ops;
  W.close w

(* ---------- codec ---------- *)

let test_round_trip () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "log.hgwal" in
  write_log path ~handle:"deadbeef" ~base_identity:"feedface" ~base_epoch:7
    sample_ops;
  let log = expect_log "read" (W.read path) in
  checks "handle" "deadbeef" log.W.handle;
  checks "base identity" "feedface" log.W.base_identity;
  check "base epoch" 7 log.W.base_epoch;
  check "record count" (List.length sample_ops) (Array.length log.W.records);
  check "clean tail" 0 log.W.torn_bytes;
  List.iteri
    (fun i op ->
      checkb (Printf.sprintf "record %d op" i) true (log.W.records.(i).W.op = op);
      check (Printf.sprintf "record %d epoch" i) (7 + i + 1)
        log.W.records.(i).W.epoch)
    sample_ops;
  (* Reopen for append and extend the chain. *)
  let w =
    expect_writer "reopen"
      (W.open_append ~path ~valid_bytes:log.W.valid_bytes ~sync:W.Always)
  in
  checks "writer path" path (W.writer_path w);
  expect_append "extend" w
    { W.epoch = 12; op = W.Add_vertex { name = "late" } };
  W.close w;
  W.close w (* close is idempotent *);
  let log = expect_log "reread" (W.read path) in
  check "extended count" 5 (Array.length log.W.records);
  check "extended epoch" 12 log.W.records.(4).W.epoch

let test_sync_policies () =
  List.iter
    (fun p ->
      match W.sync_policy_of_string (W.sync_policy_to_string p) with
      | Ok p' -> checkb (W.sync_policy_to_string p) true (p = p')
      | Error m -> Alcotest.fail m)
    [ W.Always; W.Batch; W.Never ];
  (match W.sync_policy_of_string "sometimes" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus sync policy accepted");
  (* Every policy produces the same readable file. *)
  let dir = tmp_dir () in
  List.iter
    (fun sync ->
      let path =
        Filename.concat dir (W.sync_policy_to_string sync ^ ".hgwal")
      in
      let w =
        expect_writer "create"
          (W.create ~path ~handle:"h" ~base_identity:"b" ~base_epoch:0 ~sync)
      in
      for i = 1 to 2 * W.batch_every + 1 do
        expect_append "append" w
          { W.epoch = i; op = W.Add_vertex { name = string_of_int i } }
      done;
      W.flush w;
      W.close w;
      let log = expect_log "read" (W.read path) in
      check "all records" ((2 * W.batch_every) + 1) (Array.length log.W.records))
    [ W.Always; W.Batch; W.Never ]

let test_sibling_path () =
  checks ".hg" "data/x.hgwal" (W.sibling_path "data/x.hg");
  checks ".mtx" "data/x.hgwal" (W.sibling_path "data/x.mtx");
  checks ".hgsnap" "data/x.hgwal" (W.sibling_path "data/x.hgsnap")

(* Record boundaries, byte-exact: grow the log one record at a time
   and note valid_bytes after each step. *)
let log_boundaries dir ops =
  let path = Filename.concat dir "bounded.hgwal" in
  write_log path ~handle:"h" ~base_identity:"b" ~base_epoch:0 [];
  let boundaries = ref [ (expect_log "empty" (W.read path)).W.valid_bytes ] in
  List.iteri
    (fun i op ->
      let prev = List.hd !boundaries in
      let w =
        expect_writer "grow" (W.open_append ~path ~valid_bytes:prev ~sync:W.Never)
      in
      expect_append "grow" w { W.epoch = i + 1; op };
      W.close w;
      boundaries := (expect_log "grow" (W.read path)).W.valid_bytes :: !boundaries)
    ops;
  (path, List.rev !boundaries)

(* Truncation at *every* byte: below the header it is a typed error;
   past it, the longest whole-record prefix survives and the remainder
   is reported as a torn tail.  Never an exception. *)
let test_torn_tail_matrix () =
  let dir = tmp_dir () in
  let path, boundaries = log_boundaries dir sample_ops in
  let header_len = List.hd boundaries in
  let full = read_bytes path in
  let target = Filename.concat dir "torn.hgwal" in
  for keep = 0 to String.length full - 1 do
    write_bytes target (String.sub full 0 keep);
    match W.read target with
    | Error _ when keep < header_len -> ()
    | Error e ->
      Alcotest.failf "keep=%d: unexpected error %s" keep (W.error_to_string e)
    | Ok _ when keep < header_len ->
      Alcotest.failf "keep=%d: truncated header accepted" keep
    | Ok log ->
      let expect_valid =
        List.fold_left (fun acc b -> if b <= keep then max acc b else acc) 0
          boundaries
      in
      let expect_records =
        List.length (List.filter (fun b -> b <= keep) boundaries) - 1
      in
      check (Printf.sprintf "keep=%d records" keep) expect_records
        (Array.length log.W.records);
      check (Printf.sprintf "keep=%d valid bytes" keep) expect_valid
        log.W.valid_bytes;
      check (Printf.sprintf "keep=%d torn bytes" keep) (keep - expect_valid)
        log.W.torn_bytes
  done;
  (* Recovery over a torn tail: truncate to the valid prefix, then the
     epoch chain continues from the surviving records. *)
  let keep = List.nth boundaries 2 + 5 in
  write_bytes target (String.sub full 0 keep);
  let log = expect_log "torn" (W.read target) in
  check "two records survive" 2 (Array.length log.W.records);
  checkb "tail reported" true (log.W.torn_bytes > 0);
  let w =
    expect_writer "recover"
      (W.open_append ~path:target ~valid_bytes:log.W.valid_bytes ~sync:W.Never)
  in
  expect_append "recover" w { W.epoch = 3; op = W.Add_vertex { name = "re" } };
  W.close w;
  let log = expect_log "recovered" (W.read target) in
  check "recovered count" 3 (Array.length log.W.records);
  check "recovered tail clean" 0 log.W.torn_bytes

(* Mid-log damage is corruption, not a torn tail: a complete frame
   that fails its checksum, epoch chain, or op decoding rejects the
   log with a typed error naming the record. *)
let test_midlog_corruption () =
  let dir = tmp_dir () in
  let path, boundaries = log_boundaries dir sample_ops in
  let header_len = List.hd boundaries in
  let full = read_bytes path in
  let target = Filename.concat dir "damaged.hgwal" in
  (* Payload byte of record 0. *)
  write_bytes target full;
  flip target (header_len + 17);
  (match W.read target with
  | Error (W.Bad_checksum { index = 0 }) -> ()
  | Error e -> Alcotest.failf "payload flip: %s" (W.error_to_string e)
  | Ok _ -> Alcotest.fail "payload flip accepted");
  (* Checksum word of record 1. *)
  write_bytes target full;
  flip target (List.nth boundaries 1 + 8);
  (match W.read target with
  | Error (W.Bad_checksum { index = 1 }) -> ()
  | Error e -> Alcotest.failf "checksum flip: %s" (W.error_to_string e)
  | Ok _ -> Alcotest.fail "checksum flip accepted");
  (* Epoch gap: the writer stamps what it is told, the reader insists
     on base+1, base+2, ... *)
  let gap = Filename.concat dir "gap.hgwal" in
  let w =
    expect_writer "gap"
      (W.create ~path:gap ~handle:"h" ~base_identity:"b" ~base_epoch:0
         ~sync:W.Never)
  in
  expect_append "gap" w { W.epoch = 1; op = W.Add_vertex { name = "a" } };
  expect_append "gap" w { W.epoch = 3; op = W.Add_vertex { name = "b" } };
  W.close w;
  (match W.read gap with
  | Error (W.Epoch_gap { index = 1; expected = 2; got = 3 }) -> ()
  | Error e -> Alcotest.failf "epoch gap: %s" (W.error_to_string e)
  | Ok _ -> Alcotest.fail "epoch gap accepted");
  (* A frame with a valid checksum over an undecodable payload: frame
     it by hand with an unknown op tag. *)
  let bogus = Filename.concat dir "bogus.hgwal" in
  write_log bogus ~handle:"h" ~base_identity:"b" ~base_epoch:0 [];
  let payload =
    let b = Bytes.make 9 '\009' in
    B.set_int_le b ~pos:0 1;
    Bytes.to_string b
  in
  let frame =
    let n = String.length payload in
    let b = Bytes.create (16 + n) in
    B.set_int_le b ~pos:0 n;
    Bytes.blit_string payload 0 b 16 n;
    B.set_int_le b ~pos:8 (B.hash64 B.hash64_seed b ~pos:16 ~len:n land max_int);
    Bytes.to_string b
  in
  write_bytes bogus (read_bytes bogus ^ frame);
  (match W.read bogus with
  | Error (W.Bad_record { index = 0; what }) ->
    checkb "names the tag" true
      (String.length what > 0 && String.lowercase_ascii what <> "")
  | Error e -> Alcotest.failf "bogus tag: %s" (W.error_to_string e)
  | Ok _ -> Alcotest.fail "bogus tag accepted");
  (* Header damage: magic, version, checksum-covered fields. *)
  write_bytes target full;
  flip target 0;
  (match W.read target with
  | Error W.Bad_magic -> ()
  | Error e -> Alcotest.failf "magic flip: %s" (W.error_to_string e)
  | Ok _ -> Alcotest.fail "magic flip accepted");
  write_bytes target full;
  (let b = Bytes.of_string full in
   Bytes.set b 8 '\002';
   write_bytes target (Bytes.to_string b));
  (match W.read target with
  | Error (W.Version_skew { found = 2 }) -> ()
  | Error e -> Alcotest.failf "version bump: %s" (W.error_to_string e)
  | Ok _ -> Alcotest.fail "version bump accepted");
  write_bytes target full;
  flip target 30 (* inside the handle *);
  (match W.read target with
  | Error (W.Bad_header _) -> ()
  | Error e -> Alcotest.failf "handle flip: %s" (W.error_to_string e)
  | Ok _ -> Alcotest.fail "handle flip accepted");
  (* Missing file is Io. *)
  match W.read (Filename.concat dir "absent.hgwal") with
  | Error (W.Io _) -> ()
  | Error e -> Alcotest.failf "missing file: %s" (W.error_to_string e)
  | Ok _ -> Alcotest.fail "missing file accepted"

let test_error_rendering () =
  List.iter
    (fun e ->
      let s = W.error_to_string e in
      checkb "non-empty" true (String.length s > 0);
      checkb "single line" false (String.contains s '\n'))
    [
      W.Io "boom";
      W.Bad_magic;
      W.Version_skew { found = 9 };
      W.Bad_header "truncated magic";
      W.Bad_checksum { index = 3 };
      W.Bad_record { index = 1; what = "unknown op tag 9" };
      W.Epoch_gap { index = 2; expected = 3; got = 7 };
      W.Base_skew { base = "abc"; tried = [ "snapshot def"; "text ghi" ] };
      W.Base_skew { base = "abc"; tried = [] };
    ]

(* The injected mid-write crash: half a frame reaches the file, the
   append reports failure, and recovery truncates the tail. *)
let test_torn_append_failpoint () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "fp.hgwal" in
  let w =
    expect_writer "create"
      (W.create ~path ~handle:"h" ~base_identity:"b" ~base_epoch:0 ~sync:W.Never)
  in
  expect_append "pre" w { W.epoch = 1; op = W.Add_vertex { name = "a" } };
  Fault.arm ~count:1 "wal.append.torn" Fault.Err;
  Fun.protect ~finally:Fault.reset @@ fun () ->
  (match W.append w { W.epoch = 2; op = W.Add_vertex { name = "lost" } } with
  | Error (W.Io _) -> ()
  | Error e -> Alcotest.failf "torn append: %s" (W.error_to_string e)
  | Ok () -> Alcotest.fail "torn append reported success");
  W.close w;
  let log = expect_log "after torn append" (W.read path) in
  check "only the acknowledged record" 1 (Array.length log.W.records);
  checkb "half frame on disk" true (log.W.torn_bytes > 0);
  let w =
    expect_writer "recover"
      (W.open_append ~path ~valid_bytes:log.W.valid_bytes ~sync:W.Never)
  in
  expect_append "recover" w { W.epoch = 2; op = W.Add_vertex { name = "b" } };
  W.close w;
  let log = expect_log "recovered" (W.read path) in
  check "chain continues" 2 (Array.length log.W.records);
  check "clean" 0 log.W.torn_bytes

(* 200 random single-byte flips over a multi-record log: [read] must
   answer Ok or a typed error, never raise. *)
let test_bitflip_fuzz () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "fuzz.hgwal" in
  write_log path ~handle:"0123456789abcdef" ~base_identity:"fedcba9876543210"
    ~base_epoch:0
    (sample_ops @ sample_ops |> List.mapi (fun i -> function
       | W.Del_edge _ -> W.Del_edge { edge = i }
       | op -> op));
  let bytes = read_bytes path in
  let rng = Hp_util.Prng.create 42 in
  let target = Filename.concat dir "fuzzed.hgwal" in
  for _ = 1 to 200 do
    let b = Bytes.of_string bytes in
    let at = Hp_util.Prng.int rng (Bytes.length b) in
    Bytes.set b at (Char.chr (Hp_util.Prng.int rng 256));
    write_bytes target (Bytes.to_string b);
    match W.read target with
    | Ok _ | Error _ -> ()
  done

(* ---------- live state ---------- *)

let tiny_hg = "# test\nc1: a b c\nc2: b c d\nc3: c d e\n"

let test_live_semantics () =
  let base = HIO.of_string tiny_hg in
  let live = L.of_hypergraph base in
  check "vertices" 5 (L.n_vertices live);
  check "edges" 3 (L.n_edges live);
  (* Round trip with no ops is the identity. *)
  checkb "identity round trip" true
    (H.equal_structure base (L.to_hypergraph live));
  (* Adds take the next dense id; duplicate members collapse. *)
  (match L.apply live (W.Add_vertex { name = "f" }) with
  | Ok (Some 5) -> ()
  | _ -> Alcotest.fail "vertex id should be 5");
  (match L.apply live (W.Add_edge { name = "c4"; members = [| 5; 0; 5; 0 |] }) with
  | Ok (Some 3) -> ()
  | _ -> Alcotest.fail "edge id should be 3");
  let h = L.to_hypergraph live in
  checkb "duplicates collapse" true (H.edge_members h 3 = [| 0; 5 |]);
  checks "vertex name" "f" (H.vertex_name h 5);
  checks "edge name" "c4" (H.edge_name h 3);
  (* Deleting an edge shifts every later edge down by one. *)
  (match L.apply live (W.Del_edge { edge = 0 }) with
  | Ok None -> ()
  | _ -> Alcotest.fail "delete returns no id");
  let h = L.to_hypergraph live in
  check "one fewer edge" 3 (H.n_edges h);
  checks "edges shifted" "c2" (H.edge_name h 0);
  checks "last edge shifted" "c4" (H.edge_name h 2);
  (* Validation: out-of-range members and edge ids are client errors. *)
  (match L.validate live (W.Add_edge { name = "bad"; members = [| 99 |] }) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-range member accepted");
  (match L.validate live (W.Del_edge { edge = 99 }) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-range edge accepted");
  match L.validate live (W.Del_edge { edge = -1 }) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "negative edge accepted"

(* ---------- registry recovery ---------- *)

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let expect_entry what = function
  | Ok ((e : Registry.entry), fresh) -> (e, fresh)
  | Error (Registry.Read_failed m | Registry.Parse_failed m) ->
    Alcotest.failf "%s: %s" what m

let expect_mutate what r key op =
  match Registry.mutate r key op with
  | Ok (a : Registry.applied) -> a
  | Error `Missing -> Alcotest.failf "%s: missing" what
  | Error `Ambiguous -> Alcotest.failf "%s: ambiguous" what
  | Error (`Invalid m) -> Alcotest.failf "%s: invalid: %s" what m
  | Error (`Io m) -> Alcotest.failf "%s: io: %s" what m

let apply_oracle base ops =
  let live = L.of_hypergraph base in
  List.iter
    (fun op ->
      match L.apply live op with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "oracle: %s" m)
    ops;
  L.to_hypergraph live

(* Bit-identity: structure, names, and the decompose / max-core kernel
   outputs the ISSUE pins recovery to. *)
let assert_bit_identical name a b =
  checkb (name ^ ": structure") true (H.equal_structure a b);
  checkb (name ^ ": names") true
    (Array.init (H.n_vertices a) (H.vertex_name a)
     = Array.init (H.n_vertices b) (H.vertex_name b)
    && Array.init (H.n_edges a) (H.edge_name a)
       = Array.init (H.n_edges b) (H.edge_name b));
  List.iter
    (fun domains ->
      let d = HC.decompose ~domains a and d' = HC.decompose ~domains b in
      check
        (Printf.sprintf "%s: max core at %d domains" name domains)
        d.HC.max_core d'.HC.max_core;
      checkb
        (Printf.sprintf "%s: vertex cores at %d domains" name domains)
        true (d.HC.vertex_core = d'.HC.vertex_core);
      checkb
        (Printf.sprintf "%s: edge cores at %d domains" name domains)
        true (d.HC.edge_core = d'.HC.edge_core);
      let k, r = HC.max_core ~domains a and k', r' = HC.max_core ~domains b in
      check (Printf.sprintf "%s: k-core index" name) k k';
      checkb (Printf.sprintf "%s: k-core members" name) true
        (r.HC.vertex_ids = r'.HC.vertex_ids && r.HC.edge_ids = r'.HC.edge_ids))
    [ 1; 2 ]

let mutation_ops =
  [
    W.Add_vertex { name = "f" };
    W.Add_edge { name = "c4"; members = [| 0; 5; 2 |] };
    W.Del_edge { edge = 0 };
  ]

let test_mutate_and_recover () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "data.hg" in
  write_file path tiny_hg;
  let r = Registry.create () in
  let e, _ = expect_entry "load" (Registry.load r path) in
  let handle = e.Registry.digest in
  let a = expect_mutate "addvertex" r handle (List.nth mutation_ops 0) in
  check "epoch 1" 1 a.Registry.epoch;
  checkb "vertex id" true (a.Registry.assigned = Some 5);
  check "vertex count" 6 a.Registry.n_vertices;
  let a = expect_mutate "addedge" r handle (List.nth mutation_ops 1) in
  check "epoch 2" 2 a.Registry.epoch;
  checkb "edge id" true (a.Registry.assigned = Some 3);
  check "edge count" 4 a.Registry.n_edges;
  let a = expect_mutate "deledge" r handle (List.nth mutation_ops 2) in
  check "epoch 3" 3 a.Registry.epoch;
  checkb "delete assigns nothing" true (a.Registry.assigned = None);
  checkb "no auto checkpoint" false a.Registry.checkpointed;
  (* Rejected ops are not applied, not logged, and do not advance the
     epoch. *)
  (match Registry.mutate r handle (W.Add_edge { name = "x"; members = [| 99 |] })
   with
  | Error (`Invalid _) -> ()
  | _ -> Alcotest.fail "out-of-range member should be `Invalid");
  (match Registry.mutate r handle (W.Del_edge { edge = 99 }) with
  | Error (`Invalid _) -> ()
  | _ -> Alcotest.fail "out-of-range edge should be `Invalid");
  (match Registry.mutate r "feedfacedeadbeef" (List.nth mutation_ops 0) with
  | Error `Missing -> ()
  | _ -> Alcotest.fail "unknown dataset should be `Missing");
  let st = e.Registry.state in
  check "epoch unmoved by rejects" 3 st.Registry.epoch;
  let oracle = apply_oracle (HIO.of_string tiny_hg) mutation_ops in
  assert_bit_identical "in-process state" oracle st.Registry.hypergraph;
  (* The handle survives; the sibling WAL names it. *)
  let log = expect_log "wal on disk" (W.read (W.sibling_path path)) in
  checks "wal handle" handle log.W.handle;
  checks "wal base is the text digest" handle log.W.base_identity;
  check "wal records" 3 (Array.length log.W.records);
  ignore (Registry.evict r handle);
  (* A fresh process folds the log over the text base. *)
  let r2 = Registry.create () in
  let e2, fresh = expect_entry "recover" (Registry.load r2 path) in
  checkb "fresh load" true fresh;
  checks "handle survives recovery" handle e2.Registry.digest;
  check "epoch recovered" 3 e2.Registry.state.Registry.epoch;
  checkb "recovered from text base" true (e2.Registry.source = Registry.Text);
  (match e2.Registry.recovery with
  | Some { Registry.replayed = 3; torn_bytes = 0; healed_skew = false } -> ()
  | Some rv ->
    Alcotest.failf "recovery {replayed=%d; torn=%d; healed=%b}"
      rv.Registry.replayed rv.Registry.torn_bytes rv.Registry.healed_skew
  | None -> Alcotest.fail "no recovery info");
  assert_bit_identical "recovered state" oracle
    e2.Registry.state.Registry.hypergraph;
  (* Mutation continues the same epoch chain after recovery. *)
  let a = expect_mutate "post-recovery" r2 handle (W.Add_vertex { name = "g" }) in
  check "epoch continues" 4 a.Registry.epoch;
  ignore (Registry.evict r2 handle)

let test_checkpoint_compaction () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "data.hg" in
  write_file path tiny_hg;
  let r = Registry.create () in
  let e, _ = expect_entry "load" (Registry.load r path) in
  let handle = e.Registry.digest in
  List.iter (fun op -> ignore (expect_mutate "mutate" r handle op)) mutation_ops;
  let info =
    match Registry.checkpoint r handle with
    | Ok (i : Registry.checkpoint_info) -> i
    | Error `Missing | Error `Ambiguous -> Alcotest.fail "checkpoint: resolve"
    | Error (`Io m) -> Alcotest.failf "checkpoint: %s" m
  in
  check "checkpoint epoch" 3 info.Registry.at_epoch;
  check "records folded" 3 info.Registry.records_folded;
  checks "snapshot path" (Snap.sibling_path path) info.Registry.snapshot_path;
  checkb "snapshot on disk" true (Sys.file_exists info.Registry.snapshot_path);
  (* The log was reset over the snapshot; the epoch was not. *)
  let log = expect_log "reset log" (W.read (W.sibling_path path)) in
  checks "log base is the snapshot" info.Registry.snapshot_identity
    log.W.base_identity;
  check "log base epoch" 3 log.W.base_epoch;
  check "log emptied" 0 (Array.length log.W.records);
  (* More writes land in the fresh log; recovery folds only those. *)
  ignore (expect_mutate "post" r handle (W.Add_vertex { name = "g" }));
  ignore
    (expect_mutate "post" r handle
       (W.Add_edge { name = "c5"; members = [| 6; 1 |] }));
  ignore (Registry.evict r handle);
  let r2 = Registry.create () in
  let e2, _ = expect_entry "recover" (Registry.load r2 path) in
  checks "handle survives checkpoint" handle e2.Registry.digest;
  check "epoch across checkpoint" 5 e2.Registry.state.Registry.epoch;
  checkb "recovered from the checkpoint" true
    (e2.Registry.source = Registry.Snapshot_file info.Registry.snapshot_path);
  (match e2.Registry.recovery with
  | Some rv -> check "bounded replay" 2 rv.Registry.replayed
  | None -> Alcotest.fail "no recovery info");
  let oracle =
    apply_oracle (HIO.of_string tiny_hg)
      (mutation_ops
      @ [
          W.Add_vertex { name = "g" };
          W.Add_edge { name = "c5"; members = [| 6; 1 |] };
        ])
  in
  assert_bit_identical "checkpoint recovery" oracle
    e2.Registry.state.Registry.hypergraph;
  ignore (Registry.evict r2 handle)

let test_auto_checkpoint () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "data.hg" in
  write_file path tiny_hg;
  let r = Registry.create ~checkpoint_every:2 () in
  let e, _ = expect_entry "load" (Registry.load r path) in
  let handle = e.Registry.digest in
  let a = expect_mutate "first" r handle (W.Add_vertex { name = "f" }) in
  checkb "no checkpoint yet" false a.Registry.checkpointed;
  let a = expect_mutate "second" r handle (W.Add_vertex { name = "g" }) in
  checkb "auto checkpoint fired" true a.Registry.checkpointed;
  checkb "snapshot packed" true (Sys.file_exists (Snap.sibling_path path));
  let log = expect_log "reset" (W.read (W.sibling_path path)) in
  check "log emptied by auto checkpoint" 0 (Array.length log.W.records);
  check "log base epoch" 2 log.W.base_epoch;
  let a = expect_mutate "third" r handle (W.Add_vertex { name = "h" }) in
  checkb "counter restarted" false a.Registry.checkpointed;
  ignore (Registry.evict r handle);
  let r2 = Registry.create () in
  let e2, _ = expect_entry "recover" (Registry.load r2 path) in
  check "epoch" 3 e2.Registry.state.Registry.epoch;
  (match e2.Registry.recovery with
  | Some rv -> check "only the post-checkpoint record replays" 1 rv.Registry.replayed
  | None -> Alcotest.fail "no recovery info");
  ignore (Registry.evict r2 handle)

(* Checkpoint/log skew: the snapshot renamed but the log not reset —
   the crash window between the checkpoint's two atomic steps.  The
   recovered entry adopts the snapshot (which already contains every
   logged record) and retires the log. *)
let test_skew_heal () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "data.hg" in
  write_file path tiny_hg;
  let r = Registry.create () in
  let e, _ = expect_entry "load" (Registry.load r path) in
  let handle = e.Registry.digest in
  (* A first checkpoint pins the log to snapshot S1 — a base that only
     exists as that file. *)
  List.iter (fun op -> ignore (expect_mutate "mutate" r handle op))
    [ List.nth mutation_ops 0; List.nth mutation_ops 1 ];
  (match Registry.checkpoint r handle with
  | Ok _ -> ()
  | _ -> Alcotest.fail "first checkpoint");
  ignore (expect_mutate "post" r handle (List.nth mutation_ops 2));
  (* Simulate the crash between a second checkpoint's two renames:
     pack the current state over S1 ourselves, leaving the log naming
     a snapshot identity that is no longer on disk. *)
  ignore
    (Snap.pack e.Registry.state.Registry.hypergraph (Snap.sibling_path path));
  ignore (Registry.evict r handle);
  let r2 = Registry.create () in
  let e2, _ = expect_entry "heal" (Registry.load r2 path) in
  checks "handle survives the heal" handle e2.Registry.digest;
  check "epoch = base + log length" 3 e2.Registry.state.Registry.epoch;
  (match e2.Registry.recovery with
  | Some { Registry.replayed = 0; healed_skew = true; _ } -> ()
  | Some rv ->
    Alcotest.failf "heal {replayed=%d; healed=%b}" rv.Registry.replayed
      rv.Registry.healed_skew
  | None -> Alcotest.fail "no recovery info");
  let oracle = apply_oracle (HIO.of_string tiny_hg) mutation_ops in
  assert_bit_identical "healed state" oracle
    e2.Registry.state.Registry.hypergraph;
  (* The log was retired: fresh, empty, based on the snapshot. *)
  let log = expect_log "retired log" (W.read (W.sibling_path path)) in
  check "retired log empty" 0 (Array.length log.W.records);
  check "retired log epoch" 3 log.W.base_epoch;
  ignore (Registry.evict r2 handle)

(* The same skew produced the intended way: the [wal.swap] failpoint
   fails the checkpoint between its two renames.  The entry must stay
   writable (the next mutation folds over the already-renamed
   snapshot) and a restart must heal. *)
let test_swap_failpoint () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "data.hg" in
  write_file path tiny_hg;
  let r = Registry.create () in
  let e, _ = expect_entry "load" (Registry.load r path) in
  let handle = e.Registry.digest in
  List.iter (fun op -> ignore (expect_mutate "mutate" r handle op)) mutation_ops;
  Fault.arm ~count:1 "wal.swap" Fault.Err;
  Fun.protect ~finally:Fault.reset @@ fun () ->
  (match Registry.checkpoint r handle with
  | Error (`Io msg) -> checkb "names the failpoint" true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "checkpoint should fail at wal.swap"
  | Error `Missing | Error `Ambiguous -> Alcotest.fail "resolve");
  (* The snapshot is on disk but the old log still names the text
     base; writing again must create a sound log over the snapshot. *)
  let a = expect_mutate "after failed swap" r handle (W.Add_vertex { name = "g" }) in
  check "epoch continues" 4 a.Registry.epoch;
  let log = expect_log "fresh log" (W.read (W.sibling_path path)) in
  check "fresh log base epoch" 3 log.W.base_epoch;
  check "one record since the snapshot" 1 (Array.length log.W.records);
  ignore (Registry.evict r handle);
  let r2 = Registry.create () in
  let e2, _ = expect_entry "recover" (Registry.load r2 path) in
  check "epoch recovered" 4 e2.Registry.state.Registry.epoch;
  let oracle =
    apply_oracle (HIO.of_string tiny_hg)
      (mutation_ops @ [ W.Add_vertex { name = "g" } ])
  in
  assert_bit_identical "post-swap-failure recovery" oracle
    e2.Registry.state.Registry.hypergraph;
  ignore (Registry.evict r2 handle)

(* No loadable base matches the log: a typed error, not a guess.  A
   torn tail, by contrast, is the expected crash shape and recovers. *)
let test_base_skew_and_torn_tail () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "data.hg" in
  write_file path tiny_hg;
  let r = Registry.create () in
  let e, _ = expect_entry "load" (Registry.load r path) in
  let handle = e.Registry.digest in
  List.iter (fun op -> ignore (expect_mutate "mutate" r handle op)) mutation_ops;
  ignore (Registry.evict r handle);
  let wal_path = W.sibling_path path in
  let wal_bytes = read_bytes wal_path in
  (* Torn tail: cut into the last record; recovery drops it. *)
  write_bytes wal_path (String.sub wal_bytes 0 (String.length wal_bytes - 5));
  let r2 = Registry.create () in
  let e2, _ = expect_entry "torn recovery" (Registry.load r2 path) in
  check "last record dropped" 2 e2.Registry.state.Registry.epoch;
  (match e2.Registry.recovery with
  | Some rv ->
    check "replayed prefix" 2 rv.Registry.replayed;
    checkb "torn bytes reported" true (rv.Registry.torn_bytes > 0)
  | None -> Alcotest.fail "no recovery info");
  let oracle =
    apply_oracle (HIO.of_string tiny_hg)
      [ List.nth mutation_ops 0; List.nth mutation_ops 1 ]
  in
  assert_bit_identical "torn recovery" oracle
    e2.Registry.state.Registry.hypergraph;
  (* Recovery truncated the tail on disk: a re-read is clean. *)
  let log = expect_log "truncated on disk" (W.read wal_path) in
  check "clean after recovery" 0 log.W.torn_bytes;
  ignore (Registry.evict r2 handle);
  (* Base skew: rewrite the text file under the log, no snapshot. *)
  write_bytes wal_path wal_bytes;
  write_file path "# other\nz1: p q\n";
  (match Registry.load (Registry.create ()) path with
  | Error (Registry.Parse_failed msg) ->
    checkb "skew message names the wal" true
      (String.length msg >= String.length wal_path
      && String.sub msg 0 (String.length wal_path) = wal_path)
  | Ok _ -> Alcotest.fail "base skew accepted"
  | Error (Registry.Read_failed m) -> Alcotest.failf "base skew as Io: %s" m);
  (* A corrupt mid-log WAL is also a typed load error. *)
  write_file path tiny_hg;
  let b = Bytes.of_string wal_bytes in
  let mid = Bytes.length b - 10 in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x10));
  write_bytes wal_path (Bytes.to_string b);
  match Registry.load (Registry.create ()) path with
  | Error (Registry.Parse_failed _) -> ()
  | Ok _ -> Alcotest.fail "corrupt wal accepted"
  | Error (Registry.Read_failed m) -> Alcotest.failf "corrupt wal as Io: %s" m

(* Satellite 4: provenance precedence with all three artifacts on
   disk — checkpoint+WAL beats a fresh snapshot beats the text parse. *)
let test_load_precedence () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "data.hg" in
  write_file path tiny_hg;
  let r = Registry.create () in
  let e, _ = expect_entry "load" (Registry.load r path) in
  let handle = e.Registry.digest in
  ignore (expect_mutate "m1" r handle (W.Add_vertex { name = "f" }));
  ignore (expect_mutate "m2" r handle (W.Add_vertex { name = "g" }));
  (match Registry.checkpoint r handle with
  | Ok _ -> ()
  | _ -> Alcotest.fail "checkpoint");
  ignore (expect_mutate "m3" r handle (W.Add_vertex { name = "h" }));
  ignore (Registry.evict r handle);
  let snap_path = Snap.sibling_path path in
  let wal_path = W.sibling_path path in
  (* 1. checkpoint + WAL: full durable state, handle preserved. *)
  let e1, _ = expect_entry "wal wins" (Registry.load (Registry.create ()) path) in
  checks "handle under wal" handle e1.Registry.digest;
  check "epoch under wal" 3 e1.Registry.state.Registry.epoch;
  checkb "checkpoint is the base" true
    (e1.Registry.source = Registry.Snapshot_file snap_path);
  checkb "recovery recorded" true (e1.Registry.recovery <> None);
  (* 2. snapshot without WAL: a plain snapshot load — snapshot
     identity, epoch 0, no recovery. *)
  Sys.remove wal_path;
  let e2, _ = expect_entry "snapshot next" (Registry.load (Registry.create ()) path) in
  checkb "snapshot source" true (e2.Registry.source = Registry.Snapshot_file snap_path);
  checkb "snapshot identity, not the handle" true (e2.Registry.digest <> handle);
  check "epoch 0" 0 e2.Registry.state.Registry.epoch;
  checkb "no recovery" true (e2.Registry.recovery = None);
  (* 3. text alone: parse, digest is the handle again. *)
  Sys.remove snap_path;
  let e3, _ = expect_entry "text last" (Registry.load (Registry.create ()) path) in
  checkb "text source" true (e3.Registry.source = Registry.Text);
  checks "text digest" handle e3.Registry.digest;
  check "epoch 0" 0 e3.Registry.state.Registry.epoch

(* ---------- epoch-aware cache keys ---------- *)

let test_epoch_cache_keys () =
  let digest = "0123456789abcdef" in
  let k0 = Result_cache.key ~digest ~epoch:0 ~analysis:P.Stats in
  let k1 = Result_cache.key ~digest ~epoch:1 ~analysis:P.Stats in
  checkb "epoch distinguishes keys" true (k0 <> k1);
  checks "key shape" (digest ^ "@0 stats") k0;
  let c = Result_cache.create ~capacity:8 ~metrics:(Metrics.create ()) () in
  Result_cache.add c k0 [ ("vertices", "5") ];
  Result_cache.add c k1 [ ("vertices", "6") ];
  checkb "both epochs resident" true
    (Result_cache.find c k0 = Some [ ("vertices", "5") ]
    && Result_cache.find c k1 = Some [ ("vertices", "6") ]);
  (* Eviction by dataset drops every epoch. *)
  check "drop all epochs" 2 (Result_cache.drop_dataset c ~digest);
  checkb "gone" true
    (Result_cache.find c k0 = None && Result_cache.find c k1 = None)

(* Satellite 1: a truncated or bit-flipped cache file must answer
   [Error] (cold start), never raise. *)
let test_cache_restore_never_raises () =
  let dir = tmp_dir () in
  let file = Filename.concat dir "cache.bin" in
  let fresh () = Result_cache.create ~capacity:8 ~metrics:(Metrics.create ()) () in
  let c = fresh () in
  for i = 1 to 6 do
    Result_cache.add c
      (Result_cache.key ~digest:(Printf.sprintf "digest%d" i) ~epoch:i
         ~analysis:P.Stats)
      [ ("k", string_of_int i); ("raw", "tab\there \xff") ]
  done;
  (match Result_cache.save c file with
  | Ok 6 -> ()
  | Ok n -> Alcotest.failf "saved %d" n
  | Error m -> Alcotest.failf "save: %s" m);
  let bytes = read_bytes file in
  let rng = Hp_util.Prng.create 42 in
  for _ = 1 to 200 do
    let b = Bytes.of_string bytes in
    let at = Hp_util.Prng.int rng (Bytes.length b) in
    Bytes.set b at (Char.chr (Hp_util.Prng.int rng 256));
    write_bytes file (Bytes.to_string b);
    let c = fresh () in
    match Result_cache.restore c file with
    | Ok _ -> ()
    | Error _ -> check "failed restore leaves the cache cold" 0 (Result_cache.length c)
  done;
  for _ = 1 to 50 do
    let keep = Hp_util.Prng.int rng (String.length bytes) in
    write_bytes file (String.sub bytes 0 keep);
    match Result_cache.restore (fresh ()) file with
    | Ok _ | Error _ -> ()
  done;
  (* An unreadable file (a directory, say) is an error, not a crash. *)
  match Result_cache.restore (fresh ()) dir with
  | Error _ -> ()
  | Ok n -> Alcotest.failf "restored %d entries from a directory" n

let () =
  Alcotest.run "hp_wal"
    [
      ( "codec",
        [
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "sync policies" `Quick test_sync_policies;
          Alcotest.test_case "sibling path" `Quick test_sibling_path;
          Alcotest.test_case "torn tail at every byte" `Quick test_torn_tail_matrix;
          Alcotest.test_case "mid-log corruption" `Quick test_midlog_corruption;
          Alcotest.test_case "error rendering" `Quick test_error_rendering;
          Alcotest.test_case "torn append failpoint" `Quick
            test_torn_append_failpoint;
          Alcotest.test_case "bit-flip fuzz never raises" `Quick test_bitflip_fuzz;
        ] );
      ( "live",
        [ Alcotest.test_case "op semantics" `Quick test_live_semantics ] );
      ( "registry",
        [
          Alcotest.test_case "mutate, evict, recover" `Quick
            test_mutate_and_recover;
          Alcotest.test_case "checkpoint compaction" `Quick
            test_checkpoint_compaction;
          Alcotest.test_case "auto checkpoint" `Quick test_auto_checkpoint;
          Alcotest.test_case "skew heal" `Quick test_skew_heal;
          Alcotest.test_case "wal.swap failpoint" `Quick test_swap_failpoint;
          Alcotest.test_case "base skew and torn tail" `Quick
            test_base_skew_and_torn_tail;
          Alcotest.test_case "load precedence" `Quick test_load_precedence;
        ] );
      ( "cache",
        [
          Alcotest.test_case "epoch-aware keys" `Quick test_epoch_cache_keys;
          Alcotest.test_case "restore never raises" `Quick
            test_cache_restore_never_raises;
        ] );
    ]
