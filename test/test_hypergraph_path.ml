(* Tests for hypergraph paths, distances, and connectivity (paper
   Section 1.3 / Section 2). *)

module H = Hp_hypergraph.Hypergraph
module HP = Hp_hypergraph.Hypergraph_path
module HC = Hp_hypergraph.Hypergraph_convert
module GA = Hp_graph.Graph_algo
module U = Hp_util

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* A chain of three complexes: {0,1} {1,2} {2,3}, plus {4} isolated in
   its own complex and vertex 5 in no complex. *)
let chain () = H.create ~n_vertices:6 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 4 ] ]

let test_bfs_chain () =
  let h = chain () in
  Alcotest.(check (array int)) "distances from 0" [| 0; 1; 2; 3; -1; -1 |] (HP.bfs h 0);
  Alcotest.(check (option int)) "distance 0-3" (Some 3) (HP.distance h 0 3);
  Alcotest.(check (option int)) "same complex" (Some 1) (HP.distance h 0 1);
  Alcotest.(check (option int)) "self" (Some 0) (HP.distance h 2 2);
  Alcotest.(check (option int)) "unreachable" None (HP.distance h 0 4)

let test_components () =
  let h = chain () in
  let vlabel, elabel, count = HP.components h in
  check "components" 3 count;
  checkb "chain vertices together" true
    (vlabel.(0) = vlabel.(3) && vlabel.(0) = vlabel.(1));
  checkb "edge labels follow members" true (elabel.(0) = vlabel.(0));
  checkb "isolated complex separate" true (vlabel.(4) <> vlabel.(0));
  checkb "isolated vertex separate" true
    (vlabel.(5) <> vlabel.(0) && vlabel.(5) <> vlabel.(4));
  check "n_components" 3 (HP.n_components h)

let test_component_summary () =
  let h = chain () in
  Alcotest.(check (array (pair int int))) "summary sorted"
    [| (4, 3); (1, 1); (1, 0) |]
    (HP.component_summary h)

let test_largest_component () =
  let h = chain () in
  let sub, vids, eids = HP.largest_component h in
  check "vertices" 4 (H.n_vertices sub);
  check "edges" 3 (H.n_edges sub);
  Alcotest.(check (array int)) "vertex ids" [| 0; 1; 2; 3 |] vids;
  Alcotest.(check (array int)) "edge ids" [| 0; 1; 2 |] eids

let test_diameter () =
  let h = chain () in
  let diam, apl = HP.diameter_and_average_path h in
  check "diameter" 3 diam;
  (* Chain distances (ordered pairs, both directions): 1,2,3,1,2,1 each
     twice -> mean 10/6. *)
  Alcotest.(check (float 1e-9)) "average path" (10.0 /. 6.0) apl

let test_empty_edge_component () =
  let h = H.create ~n_vertices:1 [ []; [ 0 ] ] in
  check "empty hyperedge is its own component" 2 (HP.n_components h)

let test_sampled () =
  let rng = U.Prng.create 2 in
  let h = chain () in
  let dmax, avg = HP.sampled_diameter_and_average_path rng h ~samples:30 in
  checkb "sampled diameter bounded" true (dmax <= 3);
  checkb "sampled average positive" true (avg > 0.0)

let test_sampled_domains_agree () =
  let ds = Hp_data.Cellzome.generate ~seed:2004 () in
  let sweep domains =
    HP.sampled_diameter_and_average_path ~domains (U.Prng.create 7) ds.hypergraph
      ~samples:40
  in
  Alcotest.(check (pair int (float 1e-9)))
    "sampled sweep identical across domain counts" (sweep 1) (sweep 4)

let test_sampled_deadline_abort () =
  let ds = Hp_data.Cellzome.generate ~seed:2004 () in
  (* An already-blown budget (checked every source, stride 1) must
     abort the sampled sweep instead of running it to completion —
     this used to be impossible because the sweep hardcoded
     [Deadline.never]. *)
  let deadline = U.Deadline.after ~stride:1 1e-9 in
  Unix.sleepf 0.002;
  let stats = HP.sweep_stats () in
  (match
     HP.sampled_diameter_and_average_path ~deadline ~stats (U.Prng.create 7)
       ds.hypergraph ~samples:200
   with
  | _ -> Alcotest.fail "expired deadline should abort the sampled sweep"
  | exception U.Deadline.Expired -> ());
  checkb "aborted before finishing every source" true
    (HP.sources_visited stats < 200)

let test_sweep_stats_counts_sources () =
  let h = chain () in
  let stats = HP.sweep_stats () in
  let _ = HP.diameter_and_average_path ~stats h in
  check "one BFS per vertex" (H.n_vertices h) (HP.sources_visited stats);
  let _ = HP.sampled_diameter_and_average_path ~stats (U.Prng.create 3) h ~samples:11 in
  check "sampled sources accumulate" (H.n_vertices h + 11) (HP.sources_visited stats)

let prop_parallel_diameter_agrees =
  QCheck.Test.make ~name:"diameter: multi-domain sweep agrees with sequential"
    ~count:100 (Th.arbitrary_hypergraph ())
    (fun h ->
      HP.diameter_and_average_path ~domains:1 h
      = HP.diameter_and_average_path ~domains:3 h)

let prop_exact_sweep_domain_invariant =
  (* The required invariance set: 1 (sequential), 2 (even split), 7
     (odd split exercising the remainder-first chunking).  Exact
     equality — sum and pairs are integers, so averages either match
     bit-for-bit or not at all. *)
  QCheck.Test.make ~name:"diameter: identical at domains 1, 2 and 7" ~count:100
    (Th.arbitrary_hypergraph ())
    (fun h ->
      let at1 = HP.diameter_and_average_path ~domains:1 h in
      at1 = HP.diameter_and_average_path ~domains:2 h
      && at1 = HP.diameter_and_average_path ~domains:7 h)

let test_scratch_aliasing () =
  (* Two sweeps over different graphs interleaved on the same domain
     must not see each other through the shared scratch arena — the
     second graph is larger (forces the arena to grow mid-stream) and
     the first is revisited afterwards (stale stamps would surface as
     wrong distances). *)
  let a = chain () in
  let b =
    let ds = Hp_data.Cellzome.generate ~seed:2004 () in
    ds.hypergraph
  in
  let da_before = HP.bfs a 0 in
  let sweep_a = HP.diameter_and_average_path ~domains:1 a in
  let sweep_b = HP.diameter_and_average_path ~domains:1 b in
  (* Interleave per-source traversals across the two graphs. *)
  let db = HP.bfs b 1 in
  let da_mid = HP.bfs a 0 in
  let db' = HP.bfs b 1 in
  Alcotest.(check (array int)) "graph a stable across graph b traversals"
    da_before da_mid;
  Alcotest.(check (array int)) "graph b stable across graph a traversals" db db';
  Alcotest.(check (pair int (float 1e-9)))
    "sweep over a unchanged after sweeping b" sweep_a
    (HP.diameter_and_average_path ~domains:1 a);
  Alcotest.(check (pair int (float 1e-9)))
    "sweep over b unchanged after sweeping a" sweep_b
    (HP.diameter_and_average_path ~domains:1 b);
  Alcotest.(check (array int)) "shrunk arena reuse is clean"
    [| 0; 1; 2; 3; -1; -1 |] (HP.bfs a 0)

let test_parallel_diameter_real () =
  let ds = Hp_data.Cellzome.generate ~seed:2004 () in
  Alcotest.(check (pair int (float 1e-9)))
    "yeast sweep identical across domain counts"
    (HP.diameter_and_average_path ~domains:1 ds.hypergraph)
    (HP.diameter_and_average_path ~domains:4 ds.hypergraph)

let prop_distance_symmetric =
  QCheck.Test.make ~name:"hypergraph distance is symmetric" ~count:150
    (Th.arbitrary_hypergraph ())
    (fun h ->
      let n = H.n_vertices h in
      let ok = ref true in
      for u = 0 to n - 1 do
        let du = HP.bfs h u in
        for v = 0 to n - 1 do
          if (HP.bfs h v).(u) <> du.(v) then ok := false
        done
      done;
      !ok)

let prop_distance_matches_bipartite =
  (* Hypergraph distance counts hyperedges, i.e. exactly half the hop
     distance in the bipartite graph B(H). *)
  QCheck.Test.make ~name:"hypergraph distance = bipartite distance / 2" ~count:150
    (Th.arbitrary_hypergraph ())
    (fun h ->
      let b = HC.bipartite_graph h in
      let n = H.n_vertices h in
      let ok = ref true in
      for u = 0 to n - 1 do
        let dh = HP.bfs h u in
        let db = GA.bfs_distances b u in
        for v = 0 to n - 1 do
          let expected = if db.(v) < 0 then -1 else db.(v) / 2 in
          if dh.(v) <> expected then ok := false
        done
      done;
      !ok)

let prop_triangle_inequality =
  QCheck.Test.make ~name:"hypergraph distance satisfies triangle inequality"
    ~count:100 (Th.arbitrary_hypergraph ())
    (fun h ->
      let n = H.n_vertices h in
      let d = Array.init n (fun v -> HP.bfs h v) in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          for c = 0 to n - 1 do
            if d.(a).(b) >= 0 && d.(b).(c) >= 0 then
              if d.(a).(c) < 0 || d.(a).(c) > d.(a).(b) + d.(b).(c) then ok := false
          done
        done
      done;
      !ok)

let prop_components_consistent =
  QCheck.Test.make ~name:"components agree with reachability" ~count:150
    (Th.arbitrary_hypergraph ())
    (fun h ->
      let vlabel, _, _ = HP.components h in
      let n = H.n_vertices h in
      let ok = ref true in
      for u = 0 to n - 1 do
        let d = HP.bfs h u in
        for v = 0 to n - 1 do
          let reachable = d.(v) >= 0 in
          if reachable <> (vlabel.(u) = vlabel.(v)) then ok := false
        done
      done;
      !ok)

let () =
  Alcotest.run "hp_hypergraph_path"
    [
      ( "known cases",
        [
          Alcotest.test_case "bfs chain" `Quick test_bfs_chain;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "component summary" `Quick test_component_summary;
          Alcotest.test_case "largest component" `Quick test_largest_component;
          Alcotest.test_case "diameter and apl" `Quick test_diameter;
          Alcotest.test_case "empty hyperedge component" `Quick test_empty_edge_component;
          Alcotest.test_case "sampled stats" `Quick test_sampled;
          Alcotest.test_case "sampled multi-domain" `Quick test_sampled_domains_agree;
          Alcotest.test_case "sampled deadline abort" `Quick test_sampled_deadline_abort;
          Alcotest.test_case "sweep stats" `Quick test_sweep_stats_counts_sources;
        ] );
      ( "properties",
        [
          Th.prop prop_parallel_diameter_agrees;
          Th.prop prop_exact_sweep_domain_invariant;
          Alcotest.test_case "scratch arena aliasing" `Quick test_scratch_aliasing;
          Alcotest.test_case "parallel yeast sweep" `Quick test_parallel_diameter_real;
          Th.prop prop_distance_symmetric;
          Th.prop prop_distance_matches_bipartite;
          Th.prop prop_triangle_inequality;
          Th.prop prop_components_consistent;
        ] );
    ]
