(* Tests for hypergraph reduction and the k-core algorithm (paper
   Section 3, Figure 4) — the heart of the library.  Known small
   cases plus property tests that pin the definition:

   - every vertex of the k-core has degree >= k inside it;
   - the k-core is reduced (every hyperedge maximal);
   - the overlap-based algorithm agrees with the naive subset-scan
     oracle, and the one-pass decomposition with the iterated one;
   - cores are nested and the computation is idempotent. *)

module H = Hp_hypergraph.Hypergraph
module R = Hp_hypergraph.Hypergraph_reduce
module C = Hp_hypergraph.Hypergraph_core

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* Reduction *)

let test_overlaps () =
  let h = H.create ~n_vertices:4 [ [ 0; 1; 2 ]; [ 1; 2; 3 ]; [ 3 ] ] in
  Alcotest.(check (list (triple int int int)))
    "overlaps"
    [ (0, 1, 2); (1, 2, 1) ]
    (R.overlaps h)

let test_non_maximal () =
  let h = H.create ~n_vertices:4 [ [ 0; 1; 2 ]; [ 0; 1 ]; [ 0; 1; 2 ]; [ 3 ]; [] ] in
  (* e1 contained in e0; duplicate e2 loses to e0; empty e4 always
     removed when other edges exist. *)
  Alcotest.(check (array int)) "non-maximal" [| 1; 2; 4 |] (R.non_maximal_edges h);
  let reduced, emap = R.reduce h in
  check "edges after reduce" 2 (H.n_edges reduced);
  Alcotest.(check (array int)) "surviving ids" [| 0; 3 |] emap;
  checkb "result reduced" true (H.is_reduced reduced)

let test_reduce_duplicate_empties () =
  let h = H.create ~n_vertices:1 [ []; [] ] in
  let reduced, emap = R.reduce h in
  check "one empty survives" 1 (H.n_edges reduced);
  Alcotest.(check (array int)) "smallest id kept" [| 0 |] emap

let prop_reduce_is_reduced =
  QCheck.Test.make ~name:"reduce: output is reduced and maximal edges survive"
    ~count:300 (Th.arbitrary_hypergraph ())
    (fun h ->
      let reduced, emap = R.reduce h in
      H.is_reduced reduced
      (* Surviving edges keep their exact member sets. *)
      && Array.for_all
           (fun i ->
             H.edge_members reduced i = H.edge_members h emap.(i))
           (Array.init (H.n_edges reduced) Fun.id))

let prop_overlaps_match_intersections =
  QCheck.Test.make ~name:"overlaps match pairwise intersections" ~count:200
    (Th.arbitrary_hypergraph ())
    (fun h ->
      List.for_all
        (fun (f, g, c) ->
          c = Hp_util.Sorted.inter_count (H.edge_members h f) (H.edge_members h g))
        (R.overlaps h))

(* k-core: known cases *)

(* The planted example: three mutually overlapping 4-member complexes
   over six vertices; every vertex in exactly two -> max core 2. *)
let tri () = H.create ~n_vertices:6 [ [ 0; 1; 2; 3 ]; [ 0; 1; 4; 5 ]; [ 2; 3; 4; 5 ] ]

let test_kcore_tri () =
  let r = C.k_core (tri ()) 2 in
  check "2-core vertices" 6 (H.n_vertices r.core);
  check "2-core edges" 3 (H.n_edges r.core);
  let r3 = C.k_core (tri ()) 3 in
  check "3-core empty" 0 (H.n_vertices r3.core);
  check "3-core no edges" 0 (H.n_edges r3.core)

let test_kcore_negative () =
  Alcotest.check_raises "negative k"
    (Invalid_argument "Hypergraph_core.k_core: negative k") (fun () ->
      ignore (C.k_core (tri ()) (-1)))

let test_kcore_cascade () =
  (* Deleting the degree-1 vertex 3 shrinks e1 = {2,3} to {2}, which is
     then contained in e0 = {0,1,2}; deleting e1 drops vertex 2 to
     degree 1, so the 2-core is empty — the cascade the paper
     describes. *)
  let h = H.create ~n_vertices:4 [ [ 0; 1; 2 ]; [ 2; 3 ]; [ 0; 1 ] ] in
  let r = C.k_core h 2 in
  check "cascade empties the 2-core" 0 (H.n_vertices r.core)

let test_zero_core () =
  let h = H.create ~n_vertices:3 [ [ 0; 1 ]; [ 0 ] ] in
  let r = C.k_core h 0 in
  (* 0-core = reduced input with all vertices. *)
  check "vertices kept" 3 (H.n_vertices r.core);
  check "non-maximal dropped" 1 (H.n_edges r.core);
  check "edges_deleted stat" 1 r.stats.edges_deleted

let test_max_core_known () =
  let k, r = C.max_core (tri ()) in
  check "max core index" 2 k;
  check "max core vertices" 6 (H.n_vertices r.core)

let test_decompose_known () =
  let h =
    H.create ~n_vertices:8
      [
        [ 0; 1; 2; 3 ]; [ 0; 1; 4; 5 ]; [ 2; 3; 4; 5 ];  (* 2-core block *)
        [ 5; 6 ];                                          (* tail *)
        [ 7 ];                                             (* pendant *)
      ]
  in
  let d = C.decompose h in
  check "max core" 2 d.max_core;
  Alcotest.(check (array int)) "vertex core numbers"
    [| 2; 2; 2; 2; 2; 2; 1; 1 |]
    d.vertex_core;
  Alcotest.(check (array int)) "edge core numbers" [| 2; 2; 2; 1; 1 |] d.edge_core

let test_decompose_initial_reduction_edges () =
  let h = H.create ~n_vertices:3 [ [ 0; 1; 2 ]; [ 0; 1 ] ] in
  let d = C.decompose h in
  check "contained edge marked -1" (-1) d.edge_core.(1);
  check "maximal edge survives to level 1" 1 d.edge_core.(0)

let test_empty_hypergraph () =
  let h = H.create ~n_vertices:0 [] in
  check "max core of empty" 0 (C.decompose h).max_core;
  let k, r = C.max_core h in
  check "empty max core index" 0 k;
  check "empty core" 0 (H.n_vertices r.core)

let test_stats_counters () =
  let h = H.create ~n_vertices:4 [ [ 0; 1; 2 ]; [ 2; 3 ]; [ 0; 1 ] ] in
  let r = C.k_core h 2 in
  check "vertices deleted" 4 r.stats.vertices_deleted;
  check "edges deleted" 3 r.stats.edges_deleted;
  checkb "did maximality checks" true (r.stats.maximality_checks >= 0)

(* Property tests. *)

let in_core_degree_ok k core =
  Array.for_all
    (fun v -> H.vertex_degree core v >= k)
    (Array.init (H.n_vertices core) Fun.id)

let prop_kcore_invariants =
  QCheck.Test.make ~name:"k-core: min degree, reducedness, no empty edges" ~count:300
    QCheck.(pair (Th.arbitrary_hypergraph ()) (int_range 1 4))
    (fun (h, k) ->
      let k = max 1 k (* shrinker can escape the range *) in
      let r = C.k_core h k in
      in_core_degree_ok k r.core
      && H.is_reduced r.core
      && Array.for_all (fun s -> s > 0) (H.edge_sizes r.core)
      (* id maps are consistent: edge members in the core are the
         restriction of the original edge. *)
      && Array.for_all
           (fun i ->
             let original = H.edge_members h r.edge_ids.(i) in
             let mapped = Array.map (fun v -> r.vertex_ids.(v)) (H.edge_members r.core i) in
             Hp_util.Sorted.subset mapped original)
           (Array.init (H.n_edges r.core) Fun.id))

let prop_strategies_agree =
  QCheck.Test.make ~name:"k-core: CSR, hashtable and naive strategies agree"
    ~count:300
    QCheck.(pair (Th.arbitrary_hypergraph ()) (int_range 1 4))
    (fun (h, k) ->
      let a = C.k_core ~strategy:C.Overlap h k in
      let b = C.k_core ~strategy:C.Naive h k in
      let c = C.k_core ~strategy:C.Overlap_table h k in
      H.equal_structure a.core b.core
      && a.vertex_ids = b.vertex_ids
      && a.edge_ids = b.edge_ids
      && H.equal_structure a.core c.core
      && a.vertex_ids = c.vertex_ids
      && a.edge_ids = c.edge_ids)

let prop_decompose_strategies_domain_matrix =
  (* The tentpole guarantee: the CSR overlap kernel, the retired
     hashtable kernel and the naive oracle produce identical
     decompositions — exact arrays, not just multisets, since all
     three drive the same deletion order — at fan-outs covering the
     sequential path (1), an even split (2) and an odd split (7). *)
  QCheck.Test.make
    ~name:"decompose: Naive/Overlap_table/Overlap identical at domains 1, 2, 7"
    ~count:60 (Th.arbitrary_hypergraph ())
    (fun h ->
      let reference = C.decompose ~strategy:C.Naive ~domains:1 h in
      List.for_all
        (fun strategy ->
          List.for_all
            (fun domains ->
              let d = C.decompose ~strategy ~domains h in
              d.C.vertex_core = reference.C.vertex_core
              && d.C.edge_core = reference.C.edge_core
              && d.C.max_core = reference.C.max_core)
            [ 1; 2; 7 ])
        [ C.Naive; C.Overlap_table; C.Overlap ])

let prop_onepass_matches_iterated =
  (* Edge identity is order-dependent when two hyperedges shrink to
     the same restriction (either may represent it in the core), so
     edge levels are compared as a multiset; vertex core numbers are
     unique outright. *)
  QCheck.Test.make ~name:"decompose: one-pass equals iterated" ~count:300
    (Th.arbitrary_hypergraph ())
    (fun h ->
      let a = C.decompose_onepass h in
      let b = C.decompose_iterated h in
      a.max_core = b.max_core && a.vertex_core = b.vertex_core
      && Th.sorted_array a.edge_core = Th.sorted_array b.edge_core)

let prop_cores_nested =
  QCheck.Test.make ~name:"k-core: (k+1)-core inside k-core" ~count:200
    (Th.arbitrary_hypergraph ())
    (fun h ->
      let d = C.decompose h in
      let ok = ref true in
      for k = 1 to d.max_core do
        let hi = (C.k_core h k).vertex_ids in
        let lo = (C.k_core h (k - 1)).vertex_ids in
        if not (Hp_util.Sorted.subset hi lo) then ok := false
      done;
      !ok)

let prop_idempotent =
  QCheck.Test.make ~name:"k-core: recomputing on the core is identity" ~count:200
    QCheck.(pair (Th.arbitrary_hypergraph ()) (int_range 1 3))
    (fun (h, k) ->
      let r = C.k_core h k in
      let r2 = C.k_core r.core k in
      H.equal_structure r.core r2.core)

let prop_decompose_consistent_with_kcore =
  QCheck.Test.make ~name:"decompose: core numbers match per-k membership" ~count:150
    (Th.arbitrary_hypergraph ())
    (fun h ->
      let d = C.decompose h in
      let ok = ref true in
      for k = 1 to d.max_core + 1 do
        let r = C.k_core h k in
        let members = Array.make (H.n_vertices h) false in
        Array.iter (fun v -> members.(v) <- true) r.vertex_ids;
        Array.iteri
          (fun v c -> if (c >= k) <> members.(v) then ok := false)
          d.vertex_core
      done;
      !ok)

let test_core_profile () =
  let h =
    H.create ~n_vertices:8
      [ [ 0; 1; 2; 3 ]; [ 0; 1; 4; 5 ]; [ 2; 3; 4; 5 ]; [ 5; 6 ]; [ 7 ] ]
  in
  let p = C.core_profile (C.decompose h) in
  Alcotest.(check (array (triple int int int)))
    "profile"
    [| (0, 8, 5); (1, 8, 5); (2, 6, 3) |]
    p

let prop_core_profile_monotone =
  QCheck.Test.make ~name:"core profile: sizes weakly decrease in k" ~count:200
    (Th.arbitrary_hypergraph ())
    (fun h ->
      let p = C.core_profile (C.decompose h) in
      let ok = ref true in
      for i = 1 to Array.length p - 1 do
        let _, nv0, ne0 = p.(i - 1) and _, nv1, ne1 = p.(i) in
        if nv1 > nv0 || ne1 > ne0 then ok := false
      done;
      !ok)

let prop_parallel_init_agrees =
  QCheck.Test.make ~name:"k-core: multi-domain overlap init agrees with sequential"
    ~count:100
    QCheck.(pair (Th.arbitrary_hypergraph ()) (int_range 1 3))
    (fun (h, k) ->
      let k = max 1 k in
      let a = C.k_core ~domains:1 h k in
      let b = C.k_core ~domains:3 h k in
      H.equal_structure a.core b.core && a.vertex_ids = b.vertex_ids)

let prop_overlap_init_domain_invariant =
  (* The Overlap strategy's parallel pairwise-overlap preprocessing
     must give identical peels at domains 1 (sequential), 2 (even
     split) and 7 (odd split, remainder-first chunks): the merged
     overlap tables are the same multiset whatever the fan-out. *)
  QCheck.Test.make
    ~name:"k-core: Overlap preprocessing identical at domains 1, 2 and 7"
    ~count:100
    QCheck.(pair (Th.arbitrary_hypergraph ()) (int_range 1 3))
    (fun (h, k) ->
      let run d = C.k_core ~strategy:C.Overlap ~domains:d h k in
      let a = run 1 and b = run 2 and c = run 7 in
      H.equal_structure a.core b.core
      && H.equal_structure a.core c.core
      && a.vertex_ids = b.vertex_ids
      && a.vertex_ids = c.vertex_ids
      && a.edge_ids = b.edge_ids
      && a.edge_ids = c.edge_ids)

let prop_decompose_domain_invariant =
  QCheck.Test.make
    ~name:"decompose: identical at domains 1, 2 and 7" ~count:50
    (Th.arbitrary_hypergraph ())
    (fun h ->
      let run d = C.decompose ~domains:d h in
      let a = run 1 and b = run 2 and c = run 7 in
      a.C.vertex_core = b.C.vertex_core
      && a.C.vertex_core = c.C.vertex_core
      && a.C.edge_core = b.C.edge_core
      && a.C.edge_core = c.C.edge_core
      && a.C.max_core = b.C.max_core
      && a.C.max_core = c.C.max_core)

let test_parallel_on_real_instance () =
  let ds = Hp_data.Cellzome.generate ~seed:2004 () in
  let a = C.decompose ~domains:1 ds.hypergraph in
  let b = C.decompose ~domains:4 ds.hypergraph in
  Alcotest.(check int) "same max core" a.max_core b.max_core;
  Alcotest.(check (array int)) "same vertex cores" a.vertex_core b.vertex_core;
  Alcotest.(check (array int)) "same edge cores" a.edge_core b.edge_core

let prop_agrees_with_graph_core =
  (* A simple graph is a 2-uniform hypergraph.  Singleton hyperedges
     produced mid-peel are always contained in a surviving pair (or
     emptied), so the two independently implemented k-core algorithms
     must select exactly the same vertices at every level. *)
  QCheck.Test.make ~name:"k-core: 2-uniform hypergraph matches graph k-core"
    ~count:200 (Th.arbitrary_graph ())
    (fun g ->
      let module G = Hp_graph.Graph in
      let members =
        List.map (fun (u, v) -> [ u; v ]) (G.edges g)
      in
      let h = H.create ~n_vertices:(G.n_vertices g) members in
      let gd = Hp_graph.Graph_core.decompose g in
      let hd = C.decompose h in
      gd.core_number = hd.vertex_core)

let test_scratch_aliasing () =
  (* The CSR build's sort runs through a domain-local scratch arena
     that only grows; interleaving peels of two hypergraphs of very
     different sizes on one domain must not let the larger instance's
     leftovers leak into the smaller one's overlaps. *)
  let rng = Hp_util.Prng.create 97 in
  let big =
    (Hp_data.Proteome_gen.generate rng Hp_data.Proteome_gen.cellzome_params)
      .hypergraph
  in
  let small = tri () in
  let db0 = C.decompose ~strategy:C.Overlap big in
  let ds0 = C.decompose ~strategy:C.Overlap small in
  for _ = 1 to 3 do
    let db = C.decompose ~strategy:C.Overlap big in
    let ds = C.decompose ~strategy:C.Overlap small in
    Alcotest.(check (array int)) "big vertex cores stable" db0.vertex_core db.vertex_core;
    Alcotest.(check (array int)) "big edge cores stable" db0.edge_core db.edge_core;
    Alcotest.(check (array int)) "small vertex cores stable" ds0.vertex_core ds.vertex_core;
    Alcotest.(check (array int)) "small edge cores stable" ds0.edge_core ds.edge_core
  done

let test_peel_rounds_deadline () =
  let h = tri () in
  (* A healthy budget changes nothing. *)
  let r = C.peel_rounds ~deadline:(Hp_util.Deadline.after 60.0) h 3 in
  check "peeled to empty" 0 r.core_vertices;
  (* A cancelled token aborts the round loop mid-peel. *)
  let t = Hp_util.Deadline.after 60.0 in
  Hp_util.Deadline.cancel t;
  Alcotest.check_raises "expired budget" Hp_util.Deadline.Expired (fun () ->
      ignore (C.peel_rounds ~deadline:t h 3))

let prop_max_core_nonempty =
  QCheck.Test.make ~name:"max core is non-empty when an edge exists" ~count:200
    (Th.arbitrary_hypergraph ())
    (fun h ->
      let k, r = C.max_core h in
      let has_nonempty = Array.exists (fun s -> s > 0) (H.edge_sizes h) in
      if has_nonempty then k >= 1 && H.n_vertices r.core > 0
      else k = 0)

let prop_max_core_matches_kcore =
  (* max_core is now assembled from the decomposition arrays instead
     of a second peel; it must still be k_core at the maximum index as
     a set system (vertex ids are unique; edge representative ids can
     legitimately differ on shrink ties, so member sets are compared
     as sorted multisets). *)
  QCheck.Test.make ~name:"max core equals k_core at its index" ~count:150
    (Th.arbitrary_hypergraph ())
    (fun h ->
      let edge_sets core =
        List.sort compare
          (List.init (H.n_edges core) (fun e -> H.edge_members core e))
      in
      let k, r = C.max_core h in
      let r2 = C.k_core h k in
      r.vertex_ids = r2.vertex_ids
      && edge_sets r.core = edge_sets r2.core
      && r.stats.vertices_deleted = r2.stats.vertices_deleted
      && r.stats.edges_deleted = r2.stats.edges_deleted)

let test_max_core_canonical_edges () =
  (* Regression for order-dependent edge identity: e0 and e1 both
     shrink to {a, b} when their pendant vertex is peeled, and
     whichever is popped first is deleted as newly non-maximal — so
     the RAW peel's surviving id depends on bucket-queue order.  The
     canonicalized [max_core] must name the smallest original id whose
     restriction to the core equals the surviving member set, in both
     pendant orientations. *)
  let a = 0 and b = 1 and c = 2 and p = 3 and q = 4 in
  let variant pendants =
    let e0, e1 = pendants in
    let h =
      H.create ~n_vertices:5 [ [ a; b; e0 ]; [ a; b; e1 ]; [ b; c ]; [ a; c ] ]
    in
    let k, r = C.max_core h in
    check "max core index" 2 k;
    Alcotest.(check (array int)) "core vertices" [| a; b; c |] r.vertex_ids;
    Alcotest.(check (array int)) "canonical edge ids" [| 0; 2; 3 |] r.edge_ids
  in
  variant (p, q);
  variant (q, p)

let test_max_core_duplicate_complexes () =
  (* Literal duplicate complexes in the input: reduction keeps the
     smallest id of each duplicate pair, and the canonical core ids
     must reference those, never the dropped twins. *)
  let h =
    H.create ~n_vertices:6
      [
        [ 0; 1; 2; 3 ]; [ 0; 1; 2; 3 ];
        [ 0; 1; 4; 5 ]; [ 0; 1; 4; 5 ];
        [ 2; 3; 4; 5 ]; [ 2; 3; 4; 5 ];
      ]
  in
  let k, r = C.max_core h in
  check "max core index" 2 k;
  check "core vertices" 6 (H.n_vertices r.core);
  Alcotest.(check (array int)) "first of each pair" [| 0; 2; 4 |] r.edge_ids

let test_core_of_decomposition_negative_k () =
  Alcotest.check_raises "negative k"
    (Invalid_argument "Hypergraph_core.core_of_decomposition: negative k")
    (fun () -> ignore (C.core_of_decomposition (tri ()) (C.decompose (tri ())) (-1)))

let prop_core_of_decomposition_matches_kcore =
  (* Assembling any level from the decomposition arrays — the serving
     path for maintained decompositions — must agree with a direct
     peel at that level: same vertices, same set system, same
     deletion counts. *)
  QCheck.Test.make ~name:"core_of_decomposition equals k_core at every level"
    ~count:100
    QCheck.(pair (Th.arbitrary_hypergraph ()) (int_range 0 4))
    (fun (h, k) ->
      let d = C.decompose h in
      let a = C.core_of_decomposition h d k in
      let b = C.k_core h k in
      let edge_sets core =
        List.sort compare
          (List.init (H.n_edges core) (fun e -> H.edge_members core e))
      in
      a.vertex_ids = b.vertex_ids
      && edge_sets a.core = edge_sets b.core
      && a.stats.vertices_deleted = b.stats.vertices_deleted
      && a.stats.edges_deleted = b.stats.edges_deleted)

let () =
  Alcotest.run "hp_hypergraph_core"
    [
      ( "reduction",
        [
          Alcotest.test_case "overlaps" `Quick test_overlaps;
          Alcotest.test_case "non-maximal edges" `Quick test_non_maximal;
          Alcotest.test_case "duplicate empty edges" `Quick test_reduce_duplicate_empties;
          Th.prop prop_reduce_is_reduced;
          Th.prop prop_overlaps_match_intersections;
        ] );
      ( "k-core known cases",
        [
          Alcotest.test_case "triangle of complexes" `Quick test_kcore_tri;
          Alcotest.test_case "negative k rejected" `Quick test_kcore_negative;
          Alcotest.test_case "deletion cascade" `Quick test_kcore_cascade;
          Alcotest.test_case "0-core" `Quick test_zero_core;
          Alcotest.test_case "max core" `Quick test_max_core_known;
          Alcotest.test_case "decomposition" `Quick test_decompose_known;
          Alcotest.test_case "reduced edges marked" `Quick
            test_decompose_initial_reduction_edges;
          Alcotest.test_case "empty hypergraph" `Quick test_empty_hypergraph;
          Alcotest.test_case "stats counters" `Quick test_stats_counters;
        ] );
      ( "properties",
        [
          Th.prop prop_kcore_invariants;
          Th.prop prop_strategies_agree;
          Th.prop prop_decompose_strategies_domain_matrix;
          Th.prop prop_onepass_matches_iterated;
          Th.prop prop_cores_nested;
          Th.prop prop_idempotent;
          Th.prop prop_decompose_consistent_with_kcore;
          Alcotest.test_case "core profile" `Quick test_core_profile;
          Th.prop prop_core_profile_monotone;
          Th.prop prop_agrees_with_graph_core;
          Th.prop prop_parallel_init_agrees;
          Th.prop prop_overlap_init_domain_invariant;
          Th.prop prop_decompose_domain_invariant;
          Alcotest.test_case "parallel on the yeast instance" `Quick
            test_parallel_on_real_instance;
          Alcotest.test_case "scratch aliasing across instances" `Quick
            test_scratch_aliasing;
          Alcotest.test_case "peel_rounds deadline" `Quick test_peel_rounds_deadline;
          Th.prop prop_max_core_nonempty;
          Th.prop prop_max_core_matches_kcore;
          Alcotest.test_case "canonical edge identity" `Quick
            test_max_core_canonical_edges;
          Alcotest.test_case "duplicate complexes" `Quick
            test_max_core_duplicate_complexes;
          Alcotest.test_case "core_of_decomposition negative k" `Quick
            test_core_of_decomposition_negative_k;
          Th.prop prop_core_of_decomposition_matches_kcore;
        ] );
    ]
