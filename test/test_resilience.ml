(* Failure containment: cooperative deadlines, the fault-injection
   harness, worker crash-respawn, admission control / load shedding,
   client retry, and chaos runs against an in-process server with
   failpoints armed (killed workers, injected read errors, slow
   kernels, truncated replies). *)

module P = Hp_server.Protocol
module Server = Hp_server.Server
module Client = Hp_server.Client
module Registry = Hp_server.Registry
module Worker = Hp_server.Worker
module Deadline = Hp_util.Deadline
module Fault = Hp_util.Fault

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* Poll until [cond ()]; chaos tests must tolerate scheduler delay but
   fail loudly rather than hang. *)
let eventually ?(timeout = 10.0) what cond =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if cond () then ()
    else if Unix.gettimeofday () -. t0 > timeout then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

(* ---------- deadlines ---------- *)

let test_deadline_basics () =
  checkb "never does not expire" false (Deadline.expired Deadline.never);
  Deadline.check Deadline.never;
  Deadline.cancel Deadline.never;
  (* The shared constant must stay inert even after a cancel call. *)
  Deadline.check Deadline.never;
  checkb "of_timeout 0 never expires" false
    (Deadline.expired (Deadline.of_timeout 0.0));
  checkb "remaining of never" true
    (Deadline.remaining Deadline.never = infinity);
  let d = Deadline.after ~stride:1 0.0 in
  checkb "zero budget expires" true (Deadline.expired d);
  (match Deadline.check d with
  | () -> Alcotest.fail "check on an expired deadline should raise"
  | exception Deadline.Expired -> ());
  checkb "remaining clamps at zero" true (Deadline.remaining d = 0.0)

let test_deadline_cancel () =
  let d = Deadline.after ~stride:1 60.0 in
  Deadline.check d;
  checkb "fresh token not expired" false (Deadline.expired d);
  Deadline.cancel d;
  checkb "cancelled token expired" true (Deadline.expired d);
  match Deadline.check d with
  | () -> Alcotest.fail "cancelled deadline should raise"
  | exception Deadline.Expired -> ()

let test_deadline_stride () =
  (* With a large stride, expiry is still observed on the next clock
     read, never skipped forever. *)
  let d = Deadline.after ~stride:4 0.005 in
  Unix.sleepf 0.02;
  match
    for _ = 1 to 100 do
      Deadline.check d
    done
  with
  | () -> Alcotest.fail "strided check should notice an expired budget"
  | exception Deadline.Expired -> ()

(* ---------- fault injection ---------- *)

let with_faults spec f =
  (match Fault.configure spec with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "configure %S: %s" spec msg);
  Fun.protect ~finally:Fault.reset f

let test_fault_spec_rejects () =
  let bad spec =
    match Fault.configure spec with
    | Ok () -> Alcotest.failf "%S should not configure" spec
    | Error _ -> Fault.reset ()
  in
  bad "noequals";
  bad "x=frob";
  bad "x=err*many";
  bad "x=sleep:";
  bad "x=err%2.0";
  bad "=err"

let test_fault_count_and_skip () =
  with_faults "boom=err*2+1" (fun () ->
      Fault.point "boom";
      (* skipped *)
      (match Fault.point "boom" with
      | () -> Alcotest.fail "second hit should fire"
      | exception Fault.Injected "boom" -> ());
      (match Fault.point "boom" with
      | () -> Alcotest.fail "third hit should fire"
      | exception Fault.Injected "boom" -> ());
      Fault.point "boom";
      (* budget of 2 exhausted *)
      check "hits" 4 (Fault.hits "boom");
      check "fired" 2 (Fault.fired "boom");
      Fault.point "unarmed" (* unknown names are no-ops *))

let test_fault_prob_deterministic () =
  let run () =
    with_faults "maybe=err%0.5@42" (fun () ->
        List.init 64 (fun _ -> Fault.fires "maybe"))
  in
  let a = run () and b = run () in
  checkb "same seed, same firing pattern" true (a = b);
  checkb "fires sometimes" true (List.mem true a);
  checkb "passes sometimes" true (List.mem false a)

let test_fault_sleep_and_kill () =
  with_faults "slow=sleep:30*1;die=kill*1" (fun () ->
      let t0 = Unix.gettimeofday () in
      Fault.point "slow";
      checkb "sleep arm delays" true (Unix.gettimeofday () -. t0 >= 0.025);
      match Fault.point "die" with
      | () -> Alcotest.fail "kill arm should raise"
      | exception Fault.Killed "die" -> ())

(* ---------- worker pool supervision ---------- *)

exception Boom

let test_worker_captures_exceptions () =
  let served = Atomic.make 0 in
  let pool =
    Worker.create ~workers:2
      ~lethal:(function Fault.Killed _ -> true | _ -> false)
      (fun job ->
        if job = `Raise then raise Boom else Atomic.incr served)
  in
  Fun.protect ~finally:(fun () -> Worker.shutdown pool) @@ fun () ->
  checkb "accepted" true (Worker.submit pool `Raise = `Accepted);
  eventually "captured exception" (fun () -> Worker.exceptions pool = 1);
  for _ = 1 to 8 do
    ignore (Worker.submit pool `Work)
  done;
  eventually "jobs after capture" (fun () -> Atomic.get served = 8);
  check "no restarts for captured exceptions" 0 (Worker.restarts pool)

let test_worker_crash_respawn () =
  let served = Atomic.make 0 in
  let pool =
    Worker.create ~workers:2
      ~lethal:(function Fault.Killed _ -> true | _ -> false)
      (fun job ->
        if job = `Die then raise (Fault.Killed "test") else Atomic.incr served)
  in
  Fun.protect ~finally:(fun () -> Worker.shutdown pool) @@ fun () ->
  checkb "kill job accepted" true (Worker.submit pool `Die = `Accepted);
  eventually "respawn" (fun () -> Worker.restarts pool = 1);
  check "pool size stable" 2 (Worker.size pool);
  for _ = 1 to 8 do
    ignore (Worker.submit pool `Work)
  done;
  eventually "jobs after respawn" (fun () -> Atomic.get served = 8)

let test_worker_backpressure () =
  let release = Atomic.make false in
  let pool =
    Worker.create ~workers:1 ~max_pending:1 (fun `Job ->
        while not (Atomic.get release) do
          Unix.sleepf 0.005
        done)
  in
  let finish () =
    Atomic.set release true;
    Worker.shutdown pool
  in
  Fun.protect ~finally:finish @@ fun () ->
  checkb "first job accepted" true (Worker.submit pool `Job = `Accepted);
  eventually "worker picked up the job" (fun () -> Worker.pending pool = 0);
  checkb "queue slot accepted" true (Worker.submit pool `Job = `Accepted);
  (match Worker.submit pool `Job with
  | `Busy depth -> check "busy reports depth" 1 depth
  | `Accepted | `Stopping -> Alcotest.fail "third job should be rejected busy")

let test_worker_submit_after_shutdown () =
  let pool = Worker.create ~workers:1 (fun `Job -> ()) in
  Worker.shutdown pool;
  checkb "stopping" true (Worker.submit pool `Job = `Stopping)

(* ---------- deadlines in the kernels ---------- *)

let chain_hg n =
  let buf = Buffer.create (n * 12) in
  for i = 0 to n - 2 do
    Buffer.add_string buf (Printf.sprintf "c%d: v%d v%d\n" i i (i + 1))
  done;
  Buffer.contents buf

let chain n = Hp_hypergraph.Hypergraph_io.of_string (chain_hg n)

let test_kcore_deadline_abort () =
  let h = chain 200 in
  let d = Deadline.after ~stride:1 0.0 in
  (match Hp_hypergraph.Hypergraph_core.k_core ~deadline:d h 2 with
  | _ -> Alcotest.fail "k_core should abort on an expired deadline"
  | exception Deadline.Expired -> ());
  match Hp_hypergraph.Hypergraph_core.decompose ~deadline:d h with
  | _ -> Alcotest.fail "decompose should abort on an expired deadline"
  | exception Deadline.Expired -> ()

let test_diameter_deadline_abort () =
  let h = chain 64 in
  let d = Deadline.after ~stride:1 0.0 in
  (match Hp_hypergraph.Hypergraph_path.diameter_and_average_path ~deadline:d h with
  | _ -> Alcotest.fail "diameter should abort on an expired deadline"
  | exception Deadline.Expired -> ());
  (* Expired must also propagate out of the parallel sweep's domains. *)
  match
    Hp_hypergraph.Hypergraph_path.diameter_and_average_path ~domains:2
      ~deadline:(Deadline.after ~stride:1 0.0)
      h
  with
  | _ -> Alcotest.fail "parallel diameter should abort too"
  | exception Deadline.Expired -> ()

(* ---------- client backoff ---------- *)

let test_backoff_deterministic () =
  let policy =
    { Client.default_policy with base_delay_ms = 100; max_delay_ms = 5000 }
  in
  let schedule seed =
    let prng = Hp_util.Prng.create seed in
    List.init 8 (fun i ->
        Client.retry_delay_ms ~policy ~prng ~attempt:(i + 1) ~hint_ms:None)
  in
  checkb "same seed, same schedule" true (schedule 7 = schedule 7);
  let delays = schedule 7 in
  List.iteri
    (fun i d ->
      let ceiling = min (100 * (1 lsl i)) 5000 in
      checkb
        (Printf.sprintf "attempt %d in [%d, %d], got %d" (i + 1) (ceiling / 2)
           ceiling d)
        true
        (d >= ceiling / 2 && d <= ceiling))
    delays

let test_backoff_honors_hint () =
  let policy = { Client.default_policy with base_delay_ms = 10; max_delay_ms = 50 } in
  let prng = Hp_util.Prng.create 1 in
  let d = Client.retry_delay_ms ~policy ~prng ~attempt:1 ~hint_ms:(Some 777) in
  checkb "server hint is a floor" true (d >= 777)

let test_backoff_hint_keeps_jitter () =
  (* The hint floors the jitter *window*, not the drawn value: a herd
     of rejected clients quoting the same retry_after_ms must still
     spread out.  The old [max hint jittered] collapsed every delay to
     exactly [hint] whenever the hint dominated the backoff step. *)
  let policy =
    { Client.default_policy with base_delay_ms = 100; max_delay_ms = 5000 }
  in
  let hint = 2000 in
  let draws =
    List.init 64 (fun seed ->
        let prng = Hp_util.Prng.create (seed * 31 + 1) in
        Client.retry_delay_ms ~policy ~prng ~attempt:1 ~hint_ms:(Some hint))
  in
  List.iter
    (fun d ->
      checkb
        (Printf.sprintf "delay %d in [hint, hint + max_delay]" d)
        true
        (d >= hint && d <= hint + policy.Client.max_delay_ms))
    draws;
  checkb "jitter survives a dominant hint" true
    (List.length (List.sort_uniq compare draws) > 8)

let test_backoff_busy_schedule () =
  (* The exact busy -> retry schedule: every attempt respects both the
     hint floor and the hint + max_delay ceiling, and without a hint
     the plain equal-jitter window applies. *)
  let policy =
    { Client.default_policy with base_delay_ms = 100; max_delay_ms = 5000 }
  in
  let prng = Hp_util.Prng.create 42 in
  for attempt = 1 to 8 do
    let ceiling = min (100 * (1 lsl (attempt - 1))) 5000 in
    let hinted =
      Client.retry_delay_ms ~policy ~prng ~attempt ~hint_ms:(Some 300)
    in
    checkb
      (Printf.sprintf "attempt %d hinted %d in [%d, %d]" attempt hinted
         (max 300 (ceiling / 2))
         (300 + 5000))
      true
      (hinted >= max 300 (ceiling / 2) && hinted <= 300 + 5000);
    let plain = Client.retry_delay_ms ~policy ~prng ~attempt ~hint_ms:None in
    checkb
      (Printf.sprintf "attempt %d plain %d in [%d, %d]" attempt plain
         (ceiling / 2) ceiling)
      true
      (plain >= ceiling / 2 && plain <= ceiling);
    (* A nonsensical negative hint degrades to the plain window. *)
    let negative =
      Client.retry_delay_ms ~policy ~prng ~attempt ~hint_ms:(Some (-7))
    in
    checkb "negative hint clamped" true
      (negative >= ceiling / 2 && negative <= ceiling)
  done

let test_client_stale_socket () =
  let dir = Filename.temp_dir "hgd" "stale" in
  let path = Filename.concat dir "stale.sock" in
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 1;
  Unix.close fd;
  (* The file is still there, but nobody is listening. *)
  (match Client.connect ~socket_path:path with
  | Ok _ -> Alcotest.fail "connect to a dead socket should fail"
  | Error msg -> checkb ("stale named: " ^ msg) true (contains ~needle:"stale" msg));
  (match Client.connect ~socket_path:(Filename.concat dir "absent.sock") with
  | Ok _ -> Alcotest.fail "connect to a missing socket should fail"
  | Error msg ->
    checkb ("missing named: " ^ msg) true (contains ~needle:"hgd" msg));
  (* A restarting server replaces the stale file and serves again. *)
  let config = { (Server.default_config ~socket_path:path) with workers = 1 } in
  match Server.start config with
  | Error msg -> Alcotest.failf "restart over stale socket failed: %s" msg
  | Ok t ->
    Fun.protect ~finally:(fun () -> Server.stop t) @@ fun () ->
    (match
       Client.with_connection ~socket_path:path (fun c -> Client.request c P.Ping)
     with
    | Ok (P.Ok _) -> ()
    | _ -> Alcotest.fail "restarted server should answer PING")

(* ---------- chaos: in-process server with failpoints ---------- *)

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let tiny_hg = "# test\nc1: a b c\nc2: b c d\nc3: c d e\n"

let with_server ?(workers = 2) ?(queue_limit = 128) ?(shed_watermark = 0)
    ?(request_timeout = 30.0) ?(max_file_bytes = 0) ?(failpoints = "") f =
  let dir = Filename.temp_dir "hgd" "resilience" in
  let socket_path = Filename.concat dir "hgd.sock" in
  let config =
    {
      (Server.default_config ~socket_path) with
      workers;
      cache_capacity = 16;
      queue_limit;
      shed_watermark;
      request_timeout;
      max_file_bytes;
      failpoints;
    }
  in
  match Server.start config with
  | Error msg -> Alcotest.failf "server start failed: %s" msg
  | Ok t ->
    let finish () =
      Server.stop t;
      (* Failpoints are process-global; never leak into the next test. *)
      Fault.reset ()
    in
    Fun.protect ~finally:finish (fun () -> f dir socket_path)

let expect_ok what = function
  | Ok (P.Ok kvs) -> kvs
  | Ok (P.Err { code; message; _ }) ->
    Alcotest.failf "%s: unexpected ERR %s %s" what (P.error_code_to_string code)
      message
  | Error msg -> Alcotest.failf "%s: transport error %s" what msg

let metric socket_path name =
  let kvs =
    expect_ok ("metrics for " ^ name)
      (Client.with_connection ~socket_path (fun c -> Client.request c (P.Metrics P.Table)))
  in
  match List.assoc_opt name kvs with
  | Some v -> int_of_string v
  | None -> 0

let test_chaos_worker_kill () =
  with_server ~failpoints:"worker.job=kill*1" (fun _dir socket_path ->
      (* The first job kills its worker; that client just loses the
         connection... *)
      (match
         Client.with_connection ~socket_path (fun c -> Client.request c P.Ping)
       with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "first connection should die with its worker");
      (* ...the supervisor respawns the domain, and service continues. *)
      eventually "worker respawn" (fun () ->
          metric socket_path "worker_restarts" >= 1);
      let pong =
        expect_ok "after respawn"
          (Client.with_connection ~socket_path (fun c -> Client.request c P.Ping))
      in
      checks "pong" "hgd" (List.assoc "pong" pong))

let test_chaos_injected_read_error () =
  with_server ~failpoints:"registry.read=err*1" (fun dir socket_path ->
      let data = Filename.concat dir "tiny.hg" in
      write_file data tiny_hg;
      (match
         Client.with_connection ~socket_path (fun c ->
             Client.request c (P.Load data))
       with
      | Ok (P.Err { code = P.Io_error; message; _ }) ->
        checkb ("injected named: " ^ message) true
          (contains ~needle:"injected" message)
      | _ -> Alcotest.fail "injected read should be ERR io_error");
      (* One-shot fault: the retry succeeds and the daemon is healthy. *)
      let loaded =
        expect_ok "load after fault"
          (Client.with_connection ~socket_path (fun c ->
               Client.request c (P.Load data)))
      in
      checks "fresh load" "true" (List.assoc "fresh" loaded))

let test_chaos_deadline_abort () =
  (* Budget 0.5 s; every peel iteration sleeps 20 ms, so the strided
     deadline check (every 32 iterations) trips at ~0.64 s — the reply
     must arrive well inside 2x the budget instead of running the full
     ~4 s of injected delay. *)
  with_server ~request_timeout:0.5 ~failpoints:"core.peel=sleep:20"
    (fun dir socket_path ->
      let data = Filename.concat dir "chain.hg" in
      write_file data (chain_hg 200);
      let digest =
        Client.with_connection ~socket_path (fun c ->
            Client.request c (P.Load data))
        |> expect_ok "load" |> List.assoc "digest"
      in
      let t0 = Unix.gettimeofday () in
      let reply =
        Client.with_connection ~socket_path (fun c ->
            Client.request c
              (P.Analyze { dataset = digest; analysis = P.Kcore (Some 2) }))
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      (match reply with
      | Ok (P.Err { code = P.Timeout; message; _ }) ->
        checkb ("aborted mid-compute: " ^ message) true
          (contains ~needle:"aborted" message)
      | _ -> Alcotest.fail "over-budget kcore should be ERR timeout");
      checkb
        (Printf.sprintf "prompt abort (%.2f s <= 1.0 s)" elapsed)
        true (elapsed <= 1.0);
      checkb "timeouts counted" true (metric socket_path "timeouts" >= 1))

let test_chaos_busy_and_retry () =
  with_server ~workers:1 ~queue_limit:1 (fun _dir socket_path ->
      (* c1 parks on the only worker; c2 takes the one queue slot; c3
         must be turned away at the door with a retry hint. *)
      let c1 =
        match Client.connect ~socket_path with
        | Ok c -> c
        | Error msg -> Alcotest.failf "c1 connect: %s" msg
      in
      ignore (expect_ok "c1 ping" (Client.request c1 P.Ping));
      let c2 =
        match Client.connect ~socket_path with
        | Ok c -> c
        | Error msg -> Alcotest.failf "c2 connect: %s" msg
      in
      Unix.sleepf 0.2;
      (* let the accept domain queue c2 *)
      let c3 =
        match Client.connect ~socket_path with
        | Ok c -> c
        | Error msg -> Alcotest.failf "c3 connect: %s" msg
      in
      (match Client.request c3 P.Ping with
      | Ok (P.Err { code = P.Busy; retry_after_ms = Some ms; _ }) ->
        checkb "positive retry hint" true (ms > 0)
      | Ok (P.Err { code = P.Busy; retry_after_ms = None; _ }) ->
        Alcotest.fail "busy reply must carry retry_after_ms"
      | _ -> Alcotest.fail "over-admission connection should get ERR busy");
      Client.close c3;
      (* Free the pool; a retrying client then gets through. *)
      Client.close c1;
      Client.close c2;
      let policy =
        {
          Client.default_policy with
          retries = 8;
          base_delay_ms = 50;
          timeout = 5.0;
        }
      in
      let pong = expect_ok "retry breaks through" (Client.call ~policy ~socket_path P.Ping) in
      checks "pong after backoff" "hgd" (List.assoc "pong" pong);
      checkb "rejection counted" true
        (metric socket_path "busy_rejections" >= 1))

let test_chaos_shed_cache_only () =
  with_server ~workers:1 ~queue_limit:8 ~shed_watermark:1
    (fun dir socket_path ->
      let data = Filename.concat dir "tiny.hg" in
      write_file data tiny_hg;
      let c1 =
        match Client.connect ~socket_path with
        | Ok c -> c
        | Error msg -> Alcotest.failf "c1 connect: %s" msg
      in
      Fun.protect ~finally:(fun () -> Client.close c1) @@ fun () ->
      let digest =
        expect_ok "load" (Client.request c1 (P.Load data)) |> List.assoc "digest"
      in
      let stats =
        expect_ok "warm the cache"
          (Client.request c1 (P.Analyze { dataset = digest; analysis = P.Stats }))
      in
      checks "computed" "false" (List.assoc "cached" stats);
      (* Park a second connection in the queue to push depth to the
         watermark; c1's worker keeps serving c1. *)
      let c2 =
        match Client.connect ~socket_path with
        | Ok c -> c
        | Error msg -> Alcotest.failf "c2 connect: %s" msg
      in
      Fun.protect ~finally:(fun () -> Client.close c2) @@ fun () ->
      eventually "c2 queued" (fun () ->
          match Client.request c1 (P.Metrics P.Table) with
          | Ok (P.Ok kvs) -> List.assoc_opt "queue_pending" kvs = Some "1"
          | _ -> false);
      (* Cached analysis still served... *)
      let hit =
        expect_ok "cache hit under shedding"
          (Client.request c1 (P.Analyze { dataset = digest; analysis = P.Stats }))
      in
      checks "served from cache" "true" (List.assoc "cached" hit);
      (* ...a cache miss is shed with a hint instead of computed. *)
      (match
         Client.request c1 (P.Analyze { dataset = digest; analysis = P.Kcore None })
       with
      | Ok (P.Err { code = P.Busy; retry_after_ms = Some _; _ }) -> ()
      | _ -> Alcotest.fail "cache miss above watermark should be shed busy");
      let metrics = expect_ok "metrics" (Client.request c1 (P.Metrics P.Table)) in
      checkb "shed counted" true
        (int_of_string (List.assoc "shed_cacheonly" metrics) >= 1))

let test_chaos_truncated_reply () =
  with_server ~failpoints:"server.write.trunc=err*1" (fun _dir socket_path ->
      (match
         Client.with_connection ~socket_path (fun c -> Client.request c P.Ping)
       with
      | Error msg ->
        (* Not just any transport error: the torn tail is reported as
           a typed truncation, distinguishable from a clean close. *)
        checkb ("typed truncation: " ^ msg) true
          (contains ~needle:"truncated reply" msg)
      | Ok _ -> Alcotest.fail "truncated reply should be a client-side error");
      (* The worker survives (the write fault is a captured exception)
         and the next request is served whole. *)
      let pong =
        expect_ok "after truncation"
          (Client.with_connection ~socket_path (fun c -> Client.request c P.Ping))
      in
      checks "pong" "hgd" (List.assoc "pong" pong);
      (* The client observes the torn connection before the worker's
         exception path finishes accounting; poll rather than assert. *)
      eventually "exception captured" (fun () ->
          metric socket_path "worker_exceptions" >= 1))

let test_chaos_epipe_client_gone () =
  (* SIGPIPE/EPIPE regression: the client vanishes between request and
     reply.  The delayed write then hits a dead socket; the worker must
     account it and move on — not die, and certainly not take the
     process down via SIGPIPE. *)
  with_server ~failpoints:"server.write=sleep:150*1" (fun _dir socket_path ->
      (match Client.connect ~socket_path with
      | Error msg -> Alcotest.failf "connect: %s" msg
      | Ok c ->
        Client.send_raw c "PING\n";
        Client.close c);
      eventually "disconnect accounted" (fun () ->
          metric socket_path "client_disconnects" >= 1);
      (* The daemon is intact: same worker pool, next client served. *)
      let pong =
        expect_ok "after epipe"
          (Client.with_connection ~socket_path (fun c -> Client.request c P.Ping))
      in
      checks "pong" "hgd" (List.assoc "pong" pong);
      checkb "no worker lost to the dead client" true
        (metric socket_path "worker_restarts" = 0))

let test_oversized_request_line () =
  with_server (fun _dir socket_path ->
      let giant = String.make (P.max_line_bytes + 100) 'a' in
      (match
         Client.with_connection ~socket_path (fun c ->
             Client.request_line c giant)
       with
      | Ok (P.Err { code = P.Bad_request; message; _ }) ->
        checkb ("names the cap: " ^ message) true
          (contains ~needle:"exceeds" message)
      | Ok _ -> Alcotest.fail "oversized line should be ERR bad-request"
      | Error msg -> Alcotest.failf "oversized line: transport error %s" msg);
      (* The daemon is still healthy afterwards. *)
      ignore
        (expect_ok "after oversized"
           (Client.with_connection ~socket_path (fun c ->
                Client.request c P.Ping))))

let test_dataset_size_cap () =
  (* Unit level... *)
  let dir = Filename.temp_dir "hgd" "cap" in
  let big = Filename.concat dir "big.hg" in
  write_file big (chain_hg 64);
  let r = Registry.create ~max_file_bytes:32 () in
  (match Registry.load r big with
  | Error (Registry.Read_failed msg) ->
    checkb ("names the cap: " ^ msg) true (contains ~needle:"exceeds" msg)
  | _ -> Alcotest.fail "oversized dataset should be Read_failed");
  (* ...and through the wire. *)
  with_server ~max_file_bytes:32 (fun dir socket_path ->
      let data = Filename.concat dir "big.hg" in
      write_file data (chain_hg 64);
      match
        Client.with_connection ~socket_path (fun c ->
            Client.request c (P.Load data))
      with
      | Ok (P.Err { code = P.Io_error; message; _ }) ->
        checkb ("io_error names cap: " ^ message) true
          (contains ~needle:"exceeds" message)
      | _ -> Alcotest.fail "oversized dataset should be ERR io_error")

let () =
  (* The whole chaos suite runs with debug logging on: fault-injected
     crashes, respawns, and busy rejections must survive (and exercise)
     the structured-log path, not just the quiet default. *)
  Hp_util.Log.set_level Hp_util.Log.Debug;
  Alcotest.run "hp_resilience"
    [
      ( "deadline",
        [
          Alcotest.test_case "basics" `Quick test_deadline_basics;
          Alcotest.test_case "cancel" `Quick test_deadline_cancel;
          Alcotest.test_case "stride" `Quick test_deadline_stride;
        ] );
      ( "fault",
        [
          Alcotest.test_case "spec rejects" `Quick test_fault_spec_rejects;
          Alcotest.test_case "count and skip" `Quick test_fault_count_and_skip;
          Alcotest.test_case "prob deterministic" `Quick test_fault_prob_deterministic;
          Alcotest.test_case "sleep and kill" `Quick test_fault_sleep_and_kill;
        ] );
      ( "worker",
        [
          Alcotest.test_case "captures exceptions" `Quick test_worker_captures_exceptions;
          Alcotest.test_case "crash respawn" `Quick test_worker_crash_respawn;
          Alcotest.test_case "backpressure" `Quick test_worker_backpressure;
          Alcotest.test_case "submit after shutdown" `Quick test_worker_submit_after_shutdown;
        ] );
      ( "kernel deadlines",
        [
          Alcotest.test_case "kcore aborts" `Quick test_kcore_deadline_abort;
          Alcotest.test_case "diameter aborts" `Quick test_diameter_deadline_abort;
        ] );
      ( "client",
        [
          Alcotest.test_case "backoff deterministic" `Quick test_backoff_deterministic;
          Alcotest.test_case "backoff honors hint" `Quick test_backoff_honors_hint;
          Alcotest.test_case "hint floors window, jitter survives" `Quick
            test_backoff_hint_keeps_jitter;
          Alcotest.test_case "busy retry schedule bounds" `Quick
            test_backoff_busy_schedule;
          Alcotest.test_case "stale socket" `Quick test_client_stale_socket;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "worker kill and respawn" `Quick test_chaos_worker_kill;
          Alcotest.test_case "injected read error" `Quick test_chaos_injected_read_error;
          Alcotest.test_case "deadline aborts kcore" `Quick test_chaos_deadline_abort;
          Alcotest.test_case "busy and retry" `Quick test_chaos_busy_and_retry;
          Alcotest.test_case "shed cache-only" `Quick test_chaos_shed_cache_only;
          Alcotest.test_case "truncated reply" `Quick test_chaos_truncated_reply;
          Alcotest.test_case "client gone before reply" `Quick
            test_chaos_epipe_client_gone;
          Alcotest.test_case "oversized request" `Quick test_oversized_request_line;
          Alcotest.test_case "dataset size cap" `Quick test_dataset_size_cap;
        ] );
    ]
