(* Differential suite for incremental k-core maintenance
   (Hypergraph_maintain): replay randomized mutation schedules through
   a maintainer and assert, after EVERY mutation, that the maintained
   decomposition is bit-identical to a full one-pass re-peel of the
   current hypergraph.  Three schedule families:

   - default budget: small graphs, so every repair should stay
     incremental unless an empty hyperedge forces the global fallback;
   - adversarial budget (1): every edge op must blow the repair
     frontier and fall back to a full re-peel;
   - empty-hyperedge schedules: empty edges are a whole-hypergraph
     property in Hypergraph_reduce, so their presence must force the
     re-peel path until they are deleted again.

   The generator is the WAL crash suite's: valid by construction, so
   every prefix is a reachable server state. *)

module W = Hp_wal.Wal
module L = Hp_wal.Live
module H = Hp_hypergraph.Hypergraph
module HIO = Hp_hypergraph.Hypergraph_io
module HC = Hp_hypergraph.Hypergraph_core
module HM = Hp_hypergraph.Hypergraph_maintain
module Prng = Hp_util.Prng

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let base_text = "# inc base\nc1: a b c\nc2: b c d\nc3: c d e\n"

let gen_ops rng ~nv0 ~ne0 ?(empty_every = 0) n =
  let nv = ref nv0 and ne = ref ne0 in
  List.init n (fun i ->
      let pick = Prng.int rng 10 in
      if empty_every > 0 && i mod empty_every = empty_every - 1 then begin
        incr ne;
        W.Add_edge { name = Printf.sprintf "e%d" i; members = [||] }
      end
      else if pick < 4 then begin
        incr nv;
        W.Add_vertex { name = Printf.sprintf "v%d" i }
      end
      else if pick < 8 || !ne = 0 then begin
        let k = 1 + Prng.int rng 4 in
        let members = Array.init k (fun _ -> Prng.int rng !nv) in
        incr ne;
        W.Add_edge { name = Printf.sprintf "e%d" i; members }
      end
      else begin
        decr ne;
        W.Del_edge { edge = Prng.int rng (!ne + 1) }
      end)

let assert_maintained name maint after =
  let got = HM.decomposition maint in
  let want = HC.decompose ~domains:1 after in
  checkb (name ^ ": hypergraph") true
    (H.equal_structure (HM.hypergraph maint) after);
  check (name ^ ": max core") want.HC.max_core got.HC.max_core;
  Alcotest.(check (array int))
    (name ^ ": vertex cores") want.HC.vertex_core got.HC.vertex_core;
  Alcotest.(check (array int))
    (name ^ ": edge cores") want.HC.edge_core got.HC.edge_core

(* Replay [ops] through one maintainer, checking bit-identity after
   every mutation; returns the maintainer for stats assertions. *)
let replay ?budget name ops =
  let base = HIO.of_string base_text in
  let live = L.of_hypergraph base in
  let maint = HM.create ?budget base in
  assert_maintained (name ^ " op -1") maint base;
  List.iteri
    (fun i op ->
      (match L.apply live op with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "%s op %d: %s" name i m);
      let after = L.to_hypergraph live in
      (match op with
      | W.Add_vertex _ -> ignore (HM.add_vertex maint ~after)
      | W.Add_edge _ -> ignore (HM.add_edge maint ~after)
      | W.Del_edge { edge } -> ignore (HM.del_edge maint ~after ~edge));
      assert_maintained (Printf.sprintf "%s op %d" name i) maint after)
    ops;
  maint

let test_randomized_schedules () =
  let inc = ref 0 and repeels = ref 0 in
  for i = 0 to 99 do
    let rng = Prng.create (0x14C0 + i) in
    let n = 16 + Prng.int rng 17 in
    let ops = gen_ops rng ~nv0:5 ~ne0:3 n in
    let maint = replay (Printf.sprintf "schedule %d" i) ops in
    let s = HM.stats maint in
    inc := !inc + s.HM.incremental_repairs;
    repeels := !repeels + s.HM.full_repeels
  done;
  Printf.printf "randomized schedules: %d incremental, %d re-peels\n%!" !inc
    !repeels;
  (* The graphs are far smaller than the default budget: the only
     legitimate fallbacks are empty-edge ones, and this family never
     generates empty hyperedges. *)
  checkb "repairs happened" true (!inc > 0);
  check "no fallback below budget" 0 !repeels

let test_adversarial_budget () =
  (* Budget 1: the seed hyperedge alone exhausts the frontier, so
     every ADDEDGE/DELEDGE must fall back to a full re-peel — and the
     answers must not care. *)
  let repeels = ref 0 and edge_ops = ref 0 in
  for i = 0 to 19 do
    let rng = Prng.create (0xB1DE + i) in
    let n = 12 + Prng.int rng 9 in
    let ops = gen_ops rng ~nv0:5 ~ne0:3 n in
    let maint = replay ~budget:1 (Printf.sprintf "budget-1 %d" i) ops in
    edge_ops :=
      !edge_ops
      + List.length
          (List.filter (function W.Add_vertex _ -> false | _ -> true) ops);
    repeels := !repeels + (HM.stats maint).HM.full_repeels
  done;
  check "every edge op re-peeled" !edge_ops !repeels

let test_empty_edge_schedules () =
  (* An empty hyperedge's survival is decided against the WHOLE
     hypergraph, so schedules that keep inserting them must force the
     re-peel path — and stay correct throughout. *)
  let repeels = ref 0 in
  for i = 0 to 9 do
    let rng = Prng.create (0xE4417 + i) in
    let n = 12 + Prng.int rng 9 in
    let ops = gen_ops rng ~nv0:5 ~ne0:3 ~empty_every:4 n in
    let maint = replay (Printf.sprintf "empty-edge %d" i) ops in
    repeels := !repeels + (HM.stats maint).HM.full_repeels
  done;
  checkb "empty edges forced re-peels" true (!repeels > 0)

let test_isolating_delete () =
  (* DELEDGE of the last hyperedge containing a vertex: the vertex
     survives at degree 0 and every maintained answer must match a
     fresh parse of the equivalent dataset. *)
  let base = HIO.of_string "only: a b\nc2: b c\n" in
  let live = L.of_hypergraph base in
  let maint = HM.create base in
  (match L.apply live (W.Del_edge { edge = 0 }) with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  let after = L.to_hypergraph live in
  ignore (HM.del_edge maint ~after ~edge:0);
  assert_maintained "isolating delete" maint after;
  check "vertex a survives" 3 (H.n_vertices after);
  check "degree 0" 0 (H.vertex_degree after 0);
  let fresh = HIO.of_string "c2: b c\nvertex a\n" in
  let da = HC.decompose ~domains:1 fresh in
  let dm = HM.decomposition maint in
  check "max core matches fresh parse" da.HC.max_core dm.HC.max_core;
  (* Same multiset of core numbers; ids differ (parse orders vertices
     by first mention). *)
  let sorted a = List.sort compare (Array.to_list a) in
  checkb "vertex core multiset" true
    (sorted da.HC.vertex_core = sorted dm.HC.vertex_core)

let test_grow_from_empty () =
  (* A maintainer over the empty hypergraph, grown one op at a time —
     the ADDVERTEX fast path and first-edge transitions. *)
  let base = H.create ~n_vertices:0 [] in
  let live = L.of_hypergraph base in
  let maint = HM.create base in
  let ops =
    [
      W.Add_vertex { name = "a" };
      W.Add_vertex { name = "b" };
      W.Add_edge { name = "e0"; members = [| 0; 1 |] };
      W.Add_vertex { name = "c" };
      W.Add_edge { name = "e1"; members = [| 1; 2 |] };
      W.Add_edge { name = "e2"; members = [| 0; 2 |] };
      W.Del_edge { edge = 1 };
    ]
  in
  List.iteri
    (fun i op ->
      (match L.apply live op with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "grow op %d: %s" i m);
      let after = L.to_hypergraph live in
      (match op with
      | W.Add_vertex _ -> ignore (HM.add_vertex maint ~after)
      | W.Add_edge _ -> ignore (HM.add_edge maint ~after)
      | W.Del_edge { edge } -> ignore (HM.del_edge maint ~after ~edge));
      assert_maintained (Printf.sprintf "grow op %d" i) maint after)
    ops;
  let s = HM.stats maint in
  checkb "all incremental" true (s.HM.full_repeels = 0)

let () =
  Alcotest.run "hp_kcore_inc"
    [
      ( "incremental maintenance",
        [
          Alcotest.test_case "100 randomized schedules" `Slow
            test_randomized_schedules;
          Alcotest.test_case "adversarial budget forces re-peel" `Quick
            test_adversarial_budget;
          Alcotest.test_case "empty hyperedges force re-peel" `Quick
            test_empty_edge_schedules;
          Alcotest.test_case "isolating delete" `Quick test_isolating_delete;
          Alcotest.test_case "grow from empty" `Quick test_grow_from_empty;
        ] );
    ]
