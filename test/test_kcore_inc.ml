(* Differential suite for incremental k-core maintenance
   (Hypergraph_maintain): replay randomized and adversarial mutation
   schedules through a maintainer and assert, after EVERY mutation,
   that the maintained decomposition is bit-identical to a full
   one-pass re-peel of the current hypergraph.  Every schedule family
   runs under both repair strategies — the subcore cascade (default)
   and the whole-component re-peel oracle it falls back to.  Schedule
   families:

   - default budget: small graphs, so every repair must stay below the
     budget (no full re-peels);
   - adversarial budget (1): under the Component strategy every edge
     op must blow the repair frontier and fall back to a full re-peel;
     under Subcore the analysis itself is budget-free, so the answers
     must stay bit-identical while any region walk that starts blows
     the budget and is counted in budget_fallbacks;
   - clique-of-complexes: one giant dense overlap component, so the
     component oracle always re-peels almost everything while the
     cascade must stay correct (and mostly local) through targeted
     mutation bursts;
   - empty-hyperedge schedules: empty edges are a whole-hypergraph
     property in Hypergraph_reduce, so their presence must force the
     re-peel path until they are deleted again;
   - batched application: the same schedules chopped into bursts
     applied via apply_batch (one cascade per burst — the WAL-replay
     and rewiring path), including the whole schedule as one batch.

   The generator is the WAL crash suite's: valid by construction, so
   every prefix is a reachable server state.  Final states are also
   cross-checked against decompose at 1, 2 and 7 domains. *)

module W = Hp_wal.Wal
module L = Hp_wal.Live
module H = Hp_hypergraph.Hypergraph
module HIO = Hp_hypergraph.Hypergraph_io
module HC = Hp_hypergraph.Hypergraph_core
module HM = Hp_hypergraph.Hypergraph_maintain
module Prng = Hp_util.Prng

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let base_text = "# inc base\nc1: a b c\nc2: b c d\nc3: c d e\n"

let gen_ops rng ~nv0 ~ne0 ?(empty_every = 0) n =
  let nv = ref nv0 and ne = ref ne0 in
  List.init n (fun i ->
      let pick = Prng.int rng 10 in
      if empty_every > 0 && i mod empty_every = empty_every - 1 then begin
        incr ne;
        W.Add_edge { name = Printf.sprintf "e%d" i; members = [||] }
      end
      else if pick < 4 then begin
        incr nv;
        W.Add_vertex { name = Printf.sprintf "v%d" i }
      end
      else if pick < 8 || !ne = 0 then begin
        let k = 1 + Prng.int rng 4 in
        let members = Array.init k (fun _ -> Prng.int rng !nv) in
        incr ne;
        W.Add_edge { name = Printf.sprintf "e%d" i; members }
      end
      else begin
        decr ne;
        W.Del_edge { edge = Prng.int rng (!ne + 1) }
      end)

let assert_maintained name maint after =
  let got = HM.decomposition maint in
  let want = HC.decompose ~domains:1 after in
  checkb (name ^ ": hypergraph") true
    (H.equal_structure (HM.hypergraph maint) after);
  check (name ^ ": max core") want.HC.max_core got.HC.max_core;
  Alcotest.(check (array int))
    (name ^ ": vertex cores") want.HC.vertex_core got.HC.vertex_core;
  Alcotest.(check (array int))
    (name ^ ": edge cores") want.HC.edge_core got.HC.edge_core

(* The maintained answer must also agree with the parallel-built
   decompositions — the 1/2/7-domain cross-check. *)
let assert_domains name maint =
  let got = HM.decomposition maint in
  let h = HM.hypergraph maint in
  List.iter
    (fun d ->
      let want = HC.decompose ~domains:d h in
      Alcotest.(check (array int))
        (Printf.sprintf "%s: vertex cores at %d domains" name d)
        want.HC.vertex_core got.HC.vertex_core;
      Alcotest.(check (array int))
        (Printf.sprintf "%s: edge cores at %d domains" name d)
        want.HC.edge_core got.HC.edge_core)
    [ 1; 2; 7 ]

(* Replay [ops] through one maintainer, checking bit-identity after
   every mutation; returns the maintainer for stats assertions. *)
let replay ?budget ?strategy ?(base = HIO.of_string base_text) name ops =
  let live = L.of_hypergraph base in
  let maint = HM.create ?budget ?strategy base in
  assert_maintained (name ^ " op -1") maint base;
  List.iteri
    (fun i op ->
      (match L.apply live op with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "%s op %d: %s" name i m);
      let after = L.to_hypergraph live in
      (match op with
      | W.Add_vertex _ -> ignore (HM.add_vertex maint ~after)
      | W.Add_edge _ -> ignore (HM.add_edge maint ~after)
      | W.Del_edge { edge } -> ignore (HM.del_edge maint ~after ~edge));
      assert_maintained (Printf.sprintf "%s op %d" name i) maint after)
    ops;
  maint

let op_shape = function
  | W.Add_vertex _ -> HM.Op_add_vertex
  | W.Add_edge _ -> HM.Op_add_edge
  | W.Del_edge { edge } -> HM.Op_del_edge edge

(* Replay [ops] in bursts of [chunk], applying each burst through
   Live op-by-op but repairing once via apply_batch. *)
let replay_batched ?budget ?(base = HIO.of_string base_text) name ~chunk ops =
  let live = L.of_hypergraph base in
  let maint = HM.create ?budget base in
  let rec take k = function
    | [] -> ([], [])
    | rest when k = 0 -> ([], rest)
    | op :: rest ->
      let burst, tail = take (k - 1) rest in
      (op :: burst, tail)
  in
  let rec go i ops =
    match take chunk ops with
    | [], _ -> ()
    | burst, tail ->
      List.iteri
        (fun j op ->
          match L.apply live op with
          | Ok _ -> ()
          | Error m -> Alcotest.failf "%s burst %d op %d: %s" name i j m)
        burst;
      let after = L.to_hypergraph live in
      ignore (HM.apply_batch maint ~after ~ops:(List.map op_shape burst));
      assert_maintained (Printf.sprintf "%s burst %d" name i) maint after;
      go (i + 1) tail
  in
  go 0 ops;
  maint

let test_randomized_schedules () =
  let casc = ref 0 and inc = ref 0 in
  for i = 0 to 99 do
    let rng = Prng.create (0x14C0 + i) in
    let n = 16 + Prng.int rng 17 in
    let ops = gen_ops rng ~nv0:5 ~ne0:3 n in
    let m_sub = replay (Printf.sprintf "subcore %d" i) ops in
    let rng = Prng.create (0x14C0 + i) in
    let n = 16 + Prng.int rng 17 in
    let ops = gen_ops rng ~nv0:5 ~ne0:3 n in
    let m_cmp =
      replay ~strategy:HM.Component (Printf.sprintf "component %d" i) ops
    in
    casc := !casc + (HM.stats m_sub).HM.cascade_repairs;
    inc := !inc + (HM.stats m_cmp).HM.incremental_repairs;
    (* The graphs are far smaller than the default budget: the only
       legitimate fallbacks are empty-edge ones, and this family never
       generates empty hyperedges. *)
    check "subcore: no fallback below budget" 0
      (HM.stats m_sub).HM.full_repeels;
    check "component: no fallback below budget" 0
      (HM.stats m_cmp).HM.full_repeels;
    if i mod 10 = 0 then begin
      assert_domains (Printf.sprintf "subcore %d" i) m_sub;
      assert_domains (Printf.sprintf "component %d" i) m_cmp
    end
  done;
  Printf.printf "randomized schedules: %d cascades, %d component repairs\n%!"
    !casc !inc;
  checkb "cascades happened" true (!casc > 0);
  checkb "component repairs happened" true (!inc > 0)

let test_adversarial_budget () =
  (* Budget 1: the seed hyperedge alone exhausts the frontier.  Under
     the Component strategy every ADDEDGE/DELEDGE must therefore fall
     back to a full re-peel — and the answers must not care.  Under
     Subcore the band analysis costs no budget, so only the repairs
     that actually start a region walk fall back; identity is asserted
     per-op by [replay] and the fallback counter must fire. *)
  let repeels = ref 0 and edge_ops = ref 0 and fallbacks = ref 0 in
  for i = 0 to 19 do
    let rng = Prng.create (0xB1DE + i) in
    let n = 12 + Prng.int rng 9 in
    let ops = gen_ops rng ~nv0:5 ~ne0:3 n in
    let m_cmp =
      replay ~budget:1 ~strategy:HM.Component (Printf.sprintf "budget-1 %d" i)
        ops
    in
    edge_ops :=
      !edge_ops
      + List.length
          (List.filter (function W.Add_vertex _ -> false | _ -> true) ops);
    repeels := !repeels + (HM.stats m_cmp).HM.full_repeels;
    let m_sub = replay ~budget:1 (Printf.sprintf "budget-1 sub %d" i) ops in
    fallbacks := !fallbacks + (HM.stats m_sub).HM.budget_fallbacks
  done;
  check "component: every edge op re-peeled" !edge_ops !repeels;
  checkb "subcore: budget fallbacks fired" true (!fallbacks > 0)

(* One giant dense overlap component: [nc] complexes of size [k] laid
   around a ring of [nv] proteins with heavy pairwise overlap (stride
   smaller than k), so every hyperedge is overlap-connected to the
   whole structure and component re-peel is maximally expensive. *)
let clique_of_complexes ~nv ~nc ~k ~stride =
  let lines = Buffer.create 1024 in
  for v = 0 to nv - 1 do
    Buffer.add_string lines (Printf.sprintf "vertex p%d\n" v)
  done;
  for c = 0 to nc - 1 do
    Buffer.add_string lines (Printf.sprintf "cx%d:" c);
    for j = 0 to k - 1 do
      Buffer.add_string lines (Printf.sprintf " p%d" ((c * stride + j) mod nv))
    done;
    Buffer.add_char lines '\n'
  done;
  HIO.of_string (Buffer.contents lines)

let gen_dense_ops rng ~nv ~ne0 n =
  (* Mutation bursts aimed at the dense region: added complexes reuse
     ring vertices, deletions strike anywhere (including the dense
     originals). *)
  let ne = ref ne0 in
  List.init n (fun i ->
      let pick = Prng.int rng 10 in
      if pick < 6 || !ne = 0 then begin
        let k = 3 + Prng.int rng 4 in
        let start = Prng.int rng nv in
        let members = Array.init k (fun j -> (start + j) mod nv) in
        incr ne;
        W.Add_edge { name = Printf.sprintf "mx%d" i; members }
      end
      else begin
        decr ne;
        W.Del_edge { edge = Prng.int rng (!ne + 1) }
      end)

let test_clique_of_complexes () =
  let base = clique_of_complexes ~nv:40 ~nc:40 ~k:6 ~stride:1 in
  let casc = ref 0 in
  for i = 0 to 9 do
    let rng = Prng.create (0xC11E + i) in
    let ops = gen_dense_ops rng ~nv:40 ~ne0:40 (20 + Prng.int rng 11) in
    let m_sub = replay ~base (Printf.sprintf "clique sub %d" i) ops in
    let m_cmp =
      replay ~base ~strategy:HM.Component (Printf.sprintf "clique cmp %d" i)
        ops
    in
    casc := !casc + (HM.stats m_sub).HM.cascade_repairs;
    check "clique subcore: no fallback" 0 (HM.stats m_sub).HM.full_repeels;
    ignore m_cmp;
    if i mod 5 = 0 then assert_domains (Printf.sprintf "clique %d" i) m_sub
  done;
  checkb "cascades fired on the giant component" true (!casc > 0)

let test_empty_edge_schedules () =
  (* An empty hyperedge's survival is decided against the WHOLE
     hypergraph, so schedules that keep inserting them must force the
     re-peel path — and stay correct throughout. *)
  let repeels = ref 0 in
  for i = 0 to 9 do
    let rng = Prng.create (0xE4417 + i) in
    let n = 12 + Prng.int rng 9 in
    let ops = gen_ops rng ~nv0:5 ~ne0:3 ~empty_every:4 n in
    let strategy = if i mod 2 = 0 then HM.Subcore else HM.Component in
    let maint = replay ~strategy (Printf.sprintf "empty-edge %d" i) ops in
    repeels := !repeels + (HM.stats maint).HM.full_repeels
  done;
  checkb "empty edges forced re-peels" true (!repeels > 0)

let test_batched_application () =
  (* The same randomized schedules, applied in bursts through
     apply_batch: bit-identity after every burst, across burst sizes
     from single ops to the whole schedule as one batch (the
     WAL-replay recovery shape). *)
  let casc = ref 0 in
  for i = 0 to 39 do
    let rng = Prng.create (0xBA7C + i) in
    let n = 16 + Prng.int rng 17 in
    let ops = gen_ops rng ~nv0:5 ~ne0:3 n in
    let chunk = 1 + Prng.int rng 8 in
    let m =
      replay_batched (Printf.sprintf "batched %d (chunk %d)" i chunk) ~chunk
        ops
    in
    casc := !casc + (HM.stats m).HM.cascade_repairs;
    let m1 =
      replay_batched (Printf.sprintf "one-batch %d" i) ~chunk:(List.length ops)
        ops
    in
    if i mod 10 = 0 then assert_domains (Printf.sprintf "batched %d" i) m1
  done;
  (* Dense bursts over the giant component, including empty-edge
     bursts that must force the batch onto the re-peel path. *)
  let base = clique_of_complexes ~nv:40 ~nc:40 ~k:6 ~stride:1 in
  for i = 0 to 4 do
    let rng = Prng.create (0xBA7D + i) in
    let ops = gen_dense_ops rng ~nv:40 ~ne0:40 (20 + Prng.int rng 11) in
    ignore
      (replay_batched ~base (Printf.sprintf "batched clique %d" i) ~chunk:5 ops)
  done;
  for i = 0 to 4 do
    let rng = Prng.create (0xBA7E + i) in
    let n = 12 + Prng.int rng 9 in
    let ops = gen_ops rng ~nv0:5 ~ne0:3 ~empty_every:4 n in
    ignore (replay_batched (Printf.sprintf "batched empty %d" i) ~chunk:4 ops)
  done;
  checkb "batched cascades happened" true (!casc > 0)

let test_isolating_delete () =
  (* DELEDGE of the last hyperedge containing a vertex: the vertex
     survives at degree 0 and every maintained answer must match a
     fresh parse of the equivalent dataset. *)
  let base = HIO.of_string "only: a b\nc2: b c\n" in
  let live = L.of_hypergraph base in
  let maint = HM.create base in
  (match L.apply live (W.Del_edge { edge = 0 }) with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  let after = L.to_hypergraph live in
  ignore (HM.del_edge maint ~after ~edge:0);
  assert_maintained "isolating delete" maint after;
  check "vertex a survives" 3 (H.n_vertices after);
  check "degree 0" 0 (H.vertex_degree after 0);
  let fresh = HIO.of_string "c2: b c\nvertex a\n" in
  let da = HC.decompose ~domains:1 fresh in
  let dm = HM.decomposition maint in
  check "max core matches fresh parse" da.HC.max_core dm.HC.max_core;
  (* Same multiset of core numbers; ids differ (parse orders vertices
     by first mention). *)
  let sorted a = List.sort compare (Array.to_list a) in
  checkb "vertex core multiset" true
    (sorted da.HC.vertex_core = sorted dm.HC.vertex_core)

let test_grow_from_empty () =
  (* A maintainer over the empty hypergraph, grown one op at a time —
     the ADDVERTEX fast path and first-edge transitions. *)
  let base = H.create ~n_vertices:0 [] in
  let live = L.of_hypergraph base in
  let maint = HM.create base in
  let ops =
    [
      W.Add_vertex { name = "a" };
      W.Add_vertex { name = "b" };
      W.Add_edge { name = "e0"; members = [| 0; 1 |] };
      W.Add_vertex { name = "c" };
      W.Add_edge { name = "e1"; members = [| 1; 2 |] };
      W.Add_edge { name = "e2"; members = [| 0; 2 |] };
      W.Del_edge { edge = 1 };
    ]
  in
  List.iteri
    (fun i op ->
      (match L.apply live op with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "grow op %d: %s" i m);
      let after = L.to_hypergraph live in
      (match op with
      | W.Add_vertex _ -> ignore (HM.add_vertex maint ~after)
      | W.Add_edge _ -> ignore (HM.add_edge maint ~after)
      | W.Del_edge { edge } -> ignore (HM.del_edge maint ~after ~edge));
      assert_maintained (Printf.sprintf "grow op %d" i) maint after)
    ops;
  let s = HM.stats maint in
  checkb "all incremental" true (s.HM.full_repeels = 0)

let () =
  Alcotest.run "hp_kcore_inc"
    [
      ( "incremental maintenance",
        [
          Alcotest.test_case "100 randomized schedules" `Slow
            test_randomized_schedules;
          Alcotest.test_case "adversarial budget forces re-peel" `Quick
            test_adversarial_budget;
          Alcotest.test_case "clique of complexes" `Slow
            test_clique_of_complexes;
          Alcotest.test_case "empty hyperedges force re-peel" `Quick
            test_empty_edge_schedules;
          Alcotest.test_case "batched application" `Slow
            test_batched_application;
          Alcotest.test_case "isolating delete" `Quick test_isolating_delete;
          Alcotest.test_case "grow from empty" `Quick test_grow_from_empty;
        ] );
    ]
