(* Many-connection TCP load generator for hgd.

   Two measured phases against one live server: a single connection
   issuing the mixed workload alone (the round-trip floor), then
   [connections] concurrent clients issuing the same mix — each client
   a plain blocking {!Client} on its own thread, which is exactly the
   traffic shape the event loop exists to absorb.  The ratio of the
   two throughputs ("scaleup") is the number the CI guard watches:
   it is a same-host ratio, so it transfers across machines the way
   the kernel-bench speedup guards do.

   Optionally [stalled] extra connections connect, send *half* a
   request line, and hold the socket open for the whole loaded phase —
   the regression shape for the head-of-line-blocking bugs this
   front end was built against.  They are not counted in throughput;
   the measured clients simply must not care. *)

type config = {
  host : string;
  port : int;
  connections : int;
  requests_per_conn : int;
  dataset : string option;
      (* Digest for the KCORE/STATS mix; [None] degrades to a
         PING-and-batch mix that needs no resident dataset. *)
  stalled : int;
  seed : int;
  mutate : float;
      (* Fraction of requests that are ADDVERTEX/ADDEDGE/DELEDGE
         against [dataset], exercising the WAL + incremental-repair
         write path under the same concurrency; 0 keeps the mix
         read-only.  Needs [dataset]. *)
}

let default_config ~host ~port =
  {
    host;
    port;
    connections = 64;
    requests_per_conn = 50;
    dataset = None;
    stalled = 0;
    seed = 0x10ad;
    mutate = 0.0;
  }

type percentiles = {
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
  mean_ms : float;
}

type phase = {
  label : string;
  connections : int;
  requests : int;    (* completed successfully *)
  failures : int;    (* transport errors + ERR replies *)
  mutations : int;   (* mutation requests acknowledged OK *)
  mutation_races : int;
      (* Mutations the server rejected with a protocol ERR — under
         concurrent writers DELEDGE ids go stale as neighbours shift
         them, which is expected contention, not a failure. *)
  elapsed_s : float;
  throughput_rps : float;
  latency : percentiles;
}

type report = { single : phase; loaded : phase; scaleup : float }

(* ---------- workload mix ---------- *)

let pick_request prng dataset =
  let module P = Protocol in
  match dataset with
  | None -> (
    match Hp_util.Prng.int prng 4 with
    | 0 | 1 -> `One P.Ping
    | 2 -> `Batch [ P.Ping; P.Ping ]
    | _ -> `One P.Datasets)
  | Some d -> (
    (* KCORE and STATS replies come out of the result cache after the
       warm-up request, so the mix measures protocol + event-loop
       round trips, not kernel time. *)
    match Hp_util.Prng.int prng 8 with
    | 0 | 1 -> `One P.Ping
    | 2 | 3 -> `One (P.Analyze { dataset = d; analysis = P.Kcore (Some 2) })
    | 4 -> `One (P.Analyze { dataset = d; analysis = P.Kcore None })
    | 5 -> `One (P.Analyze { dataset = d; analysis = P.Stats })
    | 6 ->
      `Batch
        [
          P.Ping;
          P.Analyze { dataset = d; analysis = P.Kcore (Some 2) };
          P.Analyze { dataset = d; analysis = P.Stats };
        ]
    | _ -> `One (P.Analyze { dataset = d; analysis = P.Powerlaw }))

(* Per-client mutation state: names are made unique by phase label and
   client index so ADDVERTEX never collides with a sibling; edge ids
   handed back in [assigned] are remembered for later DELEDGE.  Other
   clients' deletes shift ids, so a remembered id can go stale — the
   server answers ERR, which is accounted as a race, not a failure. *)
type mut_state = {
  mutable tracked_edges : int list;  (* ids this client added, newest first *)
  mutable known_vertices : int;      (* count from the last mutation reply *)
  mutable next_name : int;
}

let pick_mutation prng st ~tag dataset =
  let module P = Protocol in
  let fresh_name prefix =
    let n = st.next_name in
    st.next_name <- n + 1;
    Printf.sprintf "%s%s%d" prefix tag n
  in
  match Hp_util.Prng.int prng 6 with
  | (0 | 1) when st.tracked_edges <> [] ->
    let e = List.hd st.tracked_edges in
    st.tracked_edges <- List.tl st.tracked_edges;
    `Del (P.Del_edge { dataset; edge = e })
  | (2 | 3) when st.known_vertices >= 2 ->
    let k = 2 + Hp_util.Prng.int prng 3 in
    let members =
      Array.to_list
        (Hp_util.Prng.sample_without_replacement prng
           (min k st.known_vertices) st.known_vertices)
    in
    `Add_edge (P.Add_edge { dataset; name = fresh_name "le"; members })
  | _ -> `Add_vertex (P.Add_vertex { dataset; name = fresh_name "lv" })

(* One client: dial once, run the whole request budget on that
   connection, record per-request latency.  A transport error kills
   the connection, so the remaining budget is counted as failed. *)
let run_client (cfg : config) ~tag ~idx ~out_latencies ~out_failures
    ~out_mutations ~out_races =
  let prng = Hp_util.Prng.create (cfg.seed + (idx * 7919)) in
  let addr = Client.Tcp { host = cfg.host; port = cfg.port } in
  match Client.connect_addr addr with
  | Error _ -> out_failures := !out_failures + cfg.requests_per_conn
  | Ok c ->
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        Client.set_timeout c 30.0;
        let st = { tracked_edges = []; known_vertices = 0; next_name = 0 } in
        let tag = Printf.sprintf "%s_%d_" tag idx in
        let alive = ref true in
        for _ = 1 to cfg.requests_per_conn do
          if !alive then begin
            let t0 = Unix.gettimeofday () in
            let mutation =
              match cfg.dataset with
              | Some d when Hp_util.Prng.bool prng cfg.mutate ->
                Some (pick_mutation prng st ~tag d)
              | _ -> None
            in
            let outcome =
              match mutation with
              | Some m -> (
                let req =
                  match m with
                  | `Del r | `Add_edge r | `Add_vertex r -> r
                in
                match Client.request c req with
                | Ok (Protocol.Ok kvs) ->
                  (match List.assoc_opt "vertices" kvs with
                  | Some v -> (
                    match int_of_string_opt v with
                    | Some n -> st.known_vertices <- n
                    | None -> ())
                  | None -> ());
                  (match (m, List.assoc_opt "assigned" kvs) with
                  | `Add_edge _, Some id -> (
                    match int_of_string_opt id with
                    | Some e -> st.tracked_edges <- e :: st.tracked_edges
                    | None -> ())
                  | _ -> ());
                  incr out_mutations;
                  `Ok
                | Ok (Protocol.Err _) ->
                  (* Stale DELEDGE id or name collision under
                     contention: a race, not a broken server. *)
                  incr out_races;
                  `Race
                | Error _ -> `Dead)
              | None -> (
                match pick_request prng cfg.dataset with
                | `One req -> (
                  match Client.request c req with
                  | Ok (Protocol.Ok _) -> `Ok
                  | Ok (Protocol.Err _) -> `Err
                  | Error _ -> `Dead)
                | `Batch reqs -> (
                  match Client.batch c reqs with
                  | Ok (Client.Items items)
                    when List.for_all
                           (function Ok (Protocol.Ok _) -> true | _ -> false)
                           items ->
                    `Ok
                  | Ok _ -> `Err
                  | Error _ -> `Dead))
            in
            match outcome with
            | `Ok ->
              out_latencies :=
                ((Unix.gettimeofday () -. t0) *. 1000.0) :: !out_latencies
            | `Race -> ()
            | `Err -> incr out_failures
            | `Dead ->
              incr out_failures;
              alive := false
          end
          else incr out_failures
        done)

(* A stalled connection: half a request line, then hold until the
   phase ends.  [stop] is polled so the generator never outlives its
   phase by more than ~50 ms. *)
let run_stalled (cfg : config) ~stop =
  match Client.connect_addr (Client.Tcp { host = cfg.host; port = cfg.port }) with
  | Error _ -> ()
  | Ok c ->
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        (match Client.send_raw c "KCORE deadbeef" with
        | () -> ()
        | exception _ -> ());
        while not (Atomic.get stop) do
          Thread.delay 0.05
        done)

let percentiles_of latencies =
  match latencies with
  | [] -> { p50_ms = 0.0; p90_ms = 0.0; p99_ms = 0.0; max_ms = 0.0; mean_ms = 0.0 }
  | _ ->
    let a = Array.of_list latencies in
    Array.sort compare a;
    let n = Array.length a in
    let pct q = a.(min (n - 1) (int_of_float (q *. float_of_int n))) in
    {
      p50_ms = pct 0.50;
      p90_ms = pct 0.90;
      p99_ms = pct 0.99;
      max_ms = a.(n - 1);
      mean_ms = Array.fold_left ( +. ) 0.0 a /. float_of_int n;
    }

let run_phase (cfg : config) ~label ~connections ~stalled =
  let stop = Atomic.make false in
  let stalled_threads =
    List.init stalled (fun _ -> Thread.create (fun () -> run_stalled cfg ~stop) ())
  in
  (* Give the stalled connections time to be accepted and half-parsed
     before measurement starts, so they are in the way the whole time. *)
  if stalled > 0 then Thread.delay 0.1;
  let slots =
    List.init connections (fun idx -> (idx, ref [], ref 0, ref 0, ref 0))
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.map
      (fun (idx, lats, fails, muts, races) ->
        Thread.create
          (fun () ->
            run_client cfg ~tag:label ~idx ~out_latencies:lats
              ~out_failures:fails ~out_mutations:muts ~out_races:races)
          ())
      slots
  in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  Atomic.set stop true;
  List.iter Thread.join stalled_threads;
  let latencies = List.concat_map (fun (_, l, _, _, _) -> !l) slots in
  let sum f = List.fold_left (fun acc slot -> acc + !(f slot)) 0 slots in
  let failures = sum (fun (_, _, f, _, _) -> f) in
  let mutations = sum (fun (_, _, _, m, _) -> m) in
  let mutation_races = sum (fun (_, _, _, _, r) -> r) in
  let requests = List.length latencies in
  {
    label;
    connections;
    requests;
    failures;
    mutations;
    mutation_races;
    elapsed_s = elapsed;
    throughput_rps =
      (if elapsed > 0.0 then float_of_int requests /. elapsed else 0.0);
    latency = percentiles_of latencies;
  }

let run (cfg : config) =
  if cfg.connections < 1 then Error "loadgen: connections must be >= 1"
  else if cfg.requests_per_conn < 1 then
    Error "loadgen: requests-per-conn must be >= 1"
  else if cfg.mutate < 0.0 || cfg.mutate > 1.0 then
    Error "loadgen: mutate must be in [0, 1]"
  else if cfg.mutate > 0.0 && cfg.dataset = None then
    Error "loadgen: mutate needs a dataset to mutate"
  else begin
    (* Warm the result cache (and prove the server is reachable) so
       phase throughput measures the socket path, not first-compute. *)
    let warm =
      let addr = Client.Tcp { host = cfg.host; port = cfg.port } in
      Client.with_connection_addr addr (fun c ->
          Client.set_timeout c 30.0;
          let reqs =
            Protocol.Ping
            ::
            (match cfg.dataset with
            | None -> []
            | Some d ->
              [
                Protocol.Analyze { dataset = d; analysis = Protocol.Kcore (Some 2) };
                Protocol.Analyze { dataset = d; analysis = Protocol.Kcore None };
                Protocol.Analyze { dataset = d; analysis = Protocol.Stats };
                Protocol.Analyze { dataset = d; analysis = Protocol.Powerlaw };
              ])
          in
          List.fold_left
            (fun acc req ->
              Result.bind acc (fun () ->
                  match Client.request c req with
                  | Ok (Protocol.Ok _) -> Ok ()
                  | Ok (Protocol.Err { message; _ }) ->
                    Error ("loadgen warm-up rejected: " ^ message)
                  | Error msg -> Error ("loadgen warm-up failed: " ^ msg)))
            (Ok ()) reqs)
    in
    match warm with
    | Error _ as e -> e
    | Ok () ->
      let single = run_phase cfg ~label:"single" ~connections:1 ~stalled:0 in
      let loaded =
        run_phase cfg ~label:"loaded" ~connections:cfg.connections
          ~stalled:cfg.stalled
      in
      let scaleup =
        if single.throughput_rps > 0.0 then
          loaded.throughput_rps /. single.throughput_rps
        else 0.0
      in
      Ok { single; loaded; scaleup }
  end

(* ---------- report / guard ---------- *)

let json_of_phase p =
  Printf.sprintf
    {|{"label":"%s","connections":%d,"requests":%d,"failures":%d,"mutations":%d,"mutation_races":%d,"elapsed_s":%.3f,"throughput_rps":%.1f,"latency_ms":{"p50":%.3f,"p90":%.3f,"p99":%.3f,"max":%.3f,"mean":%.3f}}|}
    p.label p.connections p.requests p.failures p.mutations p.mutation_races
    p.elapsed_s p.throughput_rps p.latency.p50_ms p.latency.p90_ms
    p.latency.p99_ms p.latency.max_ms p.latency.mean_ms

let to_json ~generated_at r =
  Printf.sprintf
    {|{"schema":1,"bench":"tcp_loadgen","generated_at":"%s","single":%s,"loaded":%s,"scaleup":%.2f}|}
    generated_at (json_of_phase r.single) (json_of_phase r.loaded) r.scaleup
  ^ "\n"

(* Minimal field scrape for the committed baseline — the schema is
   ours, so a full JSON parser buys nothing (same stance as the
   kernel-bench guards). *)
let scrape_float ~field s =
  let needle = "\"" ^ field ^ "\":" in
  match
    let at = ref None in
    let nl = String.length needle in
    for i = 0 to String.length s - nl do
      if !at = None && String.sub s i nl = needle then at := Some (i + nl)
    done;
    !at
  with
  | None -> None
  | Some start ->
    let stop = ref start in
    let len = String.length s in
    while
      !stop < len
      && (match s.[!stop] with
         | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true
         | _ -> false)
    do
      incr stop
    done;
    float_of_string_opt (String.sub s start (!stop - start))

let check ~baseline r =
  let total_failures = r.single.failures + r.loaded.failures in
  if total_failures > 0 then
    Error
      (Printf.sprintf "tcp loadgen guard: %d failed requests (want 0)"
         total_failures)
  else
    match scrape_float ~field:"scaleup" baseline with
    | None -> Error "tcp loadgen guard: baseline has no \"scaleup\" field"
    | Some want ->
      (* Same-host ratio guard, kernel-bench style: fail only when the
         concurrency scaleup collapses below half its baseline. *)
      if r.scaleup < want /. 2.0 then
        Error
          (Printf.sprintf
             "tcp loadgen guard: scaleup %.2fx below half the baseline %.2fx"
             r.scaleup want)
      else Ok ()
