/* Thin epoll bindings for the event loop.
 *
 * The OCaml side (Poller) treats this as an optional accelerator: if
 * hgd_epoll_create reports failure the loop falls back to
 * Unix.select, so non-Linux hosts build and run unchanged.
 *
 * Conventions shared with poller.ml:
 *   - fds travel as plain ints (Unix.file_descr is an int on Unix);
 *   - interest/readiness is a bitmask: 1 = readable, 2 = writable;
 *   - hgd_epoll_wait fills a caller-provided int array with
 *     (fd, flags) pairs and returns the pair count, 0 on EINTR,
 *     -1 on hard failure.
 */

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/signals.h>
#include <string.h>

#ifdef __linux__

#include <sys/epoll.h>
#include <errno.h>
#include <unistd.h>

CAMLprim value hgd_epoll_create(value unit)
{
  (void)unit;
  return Val_int(epoll_create1(EPOLL_CLOEXEC));
}

CAMLprim value hgd_epoll_ctl(value vep, value vop, value vfd, value vflags)
{
  struct epoll_event ev;
  int op;
  memset(&ev, 0, sizeof ev);
  switch (Int_val(vop)) {
  case 0: op = EPOLL_CTL_ADD; break;
  case 1: op = EPOLL_CTL_MOD; break;
  default: op = EPOLL_CTL_DEL; break;
  }
  if (Int_val(vflags) & 1) ev.events |= EPOLLIN;
  if (Int_val(vflags) & 2) ev.events |= EPOLLOUT;
  ev.data.fd = Int_val(vfd);
  if (epoll_ctl(Int_val(vep), op, Int_val(vfd), &ev) < 0)
    return Val_int(-errno);
  return Val_int(0);
}

#define HGD_EPOLL_MAX 256

CAMLprim value hgd_epoll_wait(value vep, value vtimeout, value vout)
{
  CAMLparam3(vep, vtimeout, vout);
  struct epoll_event evs[HGD_EPOLL_MAX];
  int ep = Int_val(vep);
  int timeout = Int_val(vtimeout);
  int cap = (int)(Wosize_val(vout) / 2);
  int n, i;
  if (cap > HGD_EPOLL_MAX) cap = HGD_EPOLL_MAX;
  caml_enter_blocking_section();
  n = epoll_wait(ep, evs, cap, timeout);
  caml_leave_blocking_section();
  if (n < 0)
    CAMLreturn(Val_int(errno == EINTR ? 0 : -1));
  for (i = 0; i < n; i++) {
    int flags = 0;
    /* HUP/ERR wake both directions so the read path can observe EOF
     * and the write path can observe the broken pipe. */
    if (evs[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) flags |= 1;
    if (evs[i].events & (EPOLLOUT | EPOLLHUP | EPOLLERR)) flags |= 2;
    Field(vout, 2 * i) = Val_int(evs[i].data.fd);
    Field(vout, 2 * i + 1) = Val_int(flags);
  }
  CAMLreturn(Val_int(n));
}

#else /* !__linux__: epoll unavailable, Poller falls back to select. */

CAMLprim value hgd_epoll_create(value unit)
{
  (void)unit;
  return Val_int(-1);
}

CAMLprim value hgd_epoll_ctl(value vep, value vop, value vfd, value vflags)
{
  (void)vep; (void)vop; (void)vfd; (void)vflags;
  return Val_int(-1);
}

CAMLprim value hgd_epoll_wait(value vep, value vtimeout, value vout)
{
  (void)vep; (void)vtimeout; (void)vout;
  return Val_int(-1);
}

#endif
