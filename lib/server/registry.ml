module Snapshot = Hp_snapshot.Snapshot
module Log = Hp_util.Log

type source = Text | Snapshot_file of string

type entry = {
  digest : string;
  path : string;
  hypergraph : Hp_hypergraph.Hypergraph.t;
  bytes : int;
  loaded_at : float;
  source : source;
  fallback : bool;
}

type t = {
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;
  max_file_bytes : int;  (* 0 = unlimited *)
}

type load_error =
  | Read_failed of string
  | Parse_failed of string

let create ?(max_file_bytes = 0) () =
  if max_file_bytes < 0 then invalid_arg "Registry.create: max_file_bytes < 0";
  { mutex = Mutex.create (); table = Hashtbl.create 16; max_file_bytes }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* The size gate runs before the bytes are pulled into memory, so a
   multi-GB file answers [ERR io_error] instead of OOM-ing the daemon.
   The digest is computed in the same pass as the read — a dataset is
   never read twice to learn its identity. *)
let read_file ~max_bytes path =
  Hp_util.Fault.point "registry.read";
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      let len = in_channel_length ic in
      if max_bytes > 0 && len > max_bytes then
        Error
          (Printf.sprintf "%s: file exceeds %d bytes (%d)" path max_bytes len)
      else begin
        let ctx = Hp_util.Md5.init () in
        let buf = Buffer.create (max len 64) in
        let chunk = Bytes.create 65536 in
        let remaining = ref len in
        while !remaining > 0 do
          let n = input ic chunk 0 (min !remaining (Bytes.length chunk)) in
          if n = 0 then remaining := 0 (* file shrank mid-read; digest what we saw *)
          else begin
            Hp_util.Md5.feed ctx chunk ~pos:0 ~len:n;
            Buffer.add_subbytes buf chunk 0 n;
            remaining := !remaining - n
          end
        done;
        Ok (Buffer.contents buf, Hp_util.Md5.hex ctx)
      end)

let parse_content ~path content =
  if Filename.check_suffix path ".mtx" then
    Hp_data.Matrix_market.to_hypergraph (Hp_data.Matrix_market.parse content)
  else Hp_hypergraph.Hypergraph_io.of_string content

(* Publish a freshly built entry, unless a concurrent load of the same
   content won the race; keeping the resident entry keeps ids stable. *)
let publish t entry =
  locked t (fun () ->
      match Hashtbl.find_opt t.table entry.digest with
      | Some existing -> Ok (existing, false)
      | None ->
        Hashtbl.add t.table entry.digest entry;
        Ok (entry, true))

let is_snapshot path = Filename.check_suffix path Snapshot.file_extension

(* The snapshot preferred over re-parsing [path]: its conventional
   sibling, when present and at least as new as the text file.  A
   stale sibling (text file edited after the pack) is ignored, not an
   error — the text file is the source of truth. *)
let preferred_snapshot path =
  if is_snapshot path then None
  else begin
    let snap = Snapshot.sibling_path path in
    match ((Unix.stat snap).Unix.st_mtime, (Unix.stat path).Unix.st_mtime) with
    | snap_t, path_t when snap_t >= path_t -> Some snap
    | _ -> None
    | exception Unix.Unix_error _ -> None
  end

let load_snapshot t ~given_path snap_path ~fallback_allowed =
  let size =
    match (Unix.stat snap_path).Unix.st_size with
    | size -> size
    | exception Unix.Unix_error _ -> 0
  in
  if t.max_file_bytes > 0 && size > t.max_file_bytes then
    if fallback_allowed then Error `Fall_back
    else
      Error
        (`Fail
          (Read_failed
             (Printf.sprintf "%s: file exceeds %d bytes (%d)" snap_path
                t.max_file_bytes size)))
  else
    match Snapshot.read snap_path with
    | Ok (hypergraph, snap) ->
      publish t
        {
          digest = snap.Snapshot.identity;
          path = given_path;
          hypergraph;
          bytes = snap.Snapshot.file_bytes;
          loaded_at = Unix.gettimeofday ();
          source = Snapshot_file snap_path;
          fallback = false;
        }
    | Error (Snapshot.Io msg) ->
      if fallback_allowed then Error `Fall_back
      else Error (`Fail (Read_failed msg))
    | Error e ->
      if fallback_allowed then Error `Fall_back
      else
        Error
          (`Fail (Parse_failed (snap_path ^ ": " ^ Snapshot.error_to_string e)))

let load_text t path ~fallback =
  match read_file ~max_bytes:t.max_file_bytes path with
  | exception Sys_error msg -> Error (Read_failed msg)
  | exception Hp_util.Fault.Injected name ->
    Error (Read_failed (Printf.sprintf "%s: injected fault %s" path name))
  | Error msg -> Error (Read_failed msg)
  | Ok (content, digest) ->
    (match locked t (fun () -> Hashtbl.find_opt t.table digest) with
    | Some entry -> Ok (entry, false)
    | None ->
      (match parse_content ~path content with
      | exception Failure msg -> Error (Parse_failed (Printf.sprintf "%s: %s" path msg))
      | exception Invalid_argument msg ->
        Error (Parse_failed (Printf.sprintf "%s: %s" path msg))
      | hypergraph ->
        publish t
          {
            digest;
            path;
            hypergraph;
            bytes = String.length content;
            loaded_at = Unix.gettimeofday ();
            source = Text;
            fallback;
          }))

let load t path =
  if is_snapshot path then
    match load_snapshot t ~given_path:path path ~fallback_allowed:false with
    | Ok _ as ok -> ok
    | Error (`Fail e) -> Error e
    | Error `Fall_back -> assert false
  else
    match preferred_snapshot path with
    | None -> load_text t path ~fallback:false
    | Some snap ->
      (match load_snapshot t ~given_path:path snap ~fallback_allowed:true with
      | Ok _ as ok -> ok
      | Error (`Fail _) -> assert false
      | Error `Fall_back ->
        (* A sibling existed but could not be trusted; fall back to the
           text parse and mark the entry so the server can count it. *)
        Log.warn ~comp:"registry"
          ~fields:[ ("snapshot", snap); ("dataset", path) ]
          "snapshot rejected, reparsing text";
        load_text t path ~fallback:true)

let resolve_locked t key =
  match Hashtbl.find_opt t.table key with
  | Some entry -> `Found entry
  | None ->
    if String.length key < 4 then `Missing
    else begin
      let matches =
        Hashtbl.fold
          (fun digest entry acc ->
            if String.length key <= String.length digest
               && String.sub digest 0 (String.length key) = key
            then entry :: acc
            else acc)
          t.table []
      in
      match matches with
      | [ entry ] -> `Found entry
      | [] -> `Missing
      | _ -> `Ambiguous
    end

let find t key = locked t (fun () -> resolve_locked t key)

let evict t key =
  locked t (fun () ->
      match resolve_locked t key with
      | `Found entry ->
        Hashtbl.remove t.table entry.digest;
        Some entry
      | `Ambiguous | `Missing -> None)

let list t =
  locked t (fun () -> Hashtbl.fold (fun _ e acc -> e :: acc) t.table [])
  |> List.sort (fun a b -> compare a.loaded_at b.loaded_at)
