type entry = {
  digest : string;
  path : string;
  hypergraph : Hp_hypergraph.Hypergraph.t;
  bytes : int;
  loaded_at : float;
}

type t = {
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;
  max_file_bytes : int;  (* 0 = unlimited *)
}

type load_error =
  | Read_failed of string
  | Parse_failed of string

let create ?(max_file_bytes = 0) () =
  if max_file_bytes < 0 then invalid_arg "Registry.create: max_file_bytes < 0";
  { mutex = Mutex.create (); table = Hashtbl.create 16; max_file_bytes }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* The size gate runs before the bytes are pulled into memory, so a
   multi-GB file answers [ERR io_error] instead of OOM-ing the daemon. *)
let read_file ~max_bytes path =
  Hp_util.Fault.point "registry.read";
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      let len = in_channel_length ic in
      if max_bytes > 0 && len > max_bytes then
        Error
          (Printf.sprintf "%s: file exceeds %d bytes (%d)" path max_bytes len)
      else Ok (really_input_string ic len))

let parse_content ~path content =
  if Filename.check_suffix path ".mtx" then
    Hp_data.Matrix_market.to_hypergraph (Hp_data.Matrix_market.parse content)
  else Hp_hypergraph.Hypergraph_io.of_string content

let load t path =
  match read_file ~max_bytes:t.max_file_bytes path with
  | exception Sys_error msg -> Error (Read_failed msg)
  | exception Hp_util.Fault.Injected name ->
    Error (Read_failed (Printf.sprintf "%s: injected fault %s" path name))
  | Error msg -> Error (Read_failed msg)
  | Ok content ->
    let digest = Digest.to_hex (Digest.string content) in
    (match locked t (fun () -> Hashtbl.find_opt t.table digest) with
    | Some entry -> Ok (entry, false)
    | None ->
      (match parse_content ~path content with
      | exception Failure msg -> Error (Parse_failed (Printf.sprintf "%s: %s" path msg))
      | exception Invalid_argument msg ->
        Error (Parse_failed (Printf.sprintf "%s: %s" path msg))
      | hypergraph ->
        let entry =
          {
            digest;
            path;
            hypergraph;
            bytes = String.length content;
            loaded_at = Unix.gettimeofday ();
          }
        in
        locked t (fun () ->
            (* A concurrent load of the same content may have won the
               race; keep the resident entry so ids stay stable. *)
            match Hashtbl.find_opt t.table digest with
            | Some existing -> Ok (existing, false)
            | None ->
              Hashtbl.add t.table digest entry;
              Ok (entry, true))))

let resolve_locked t key =
  match Hashtbl.find_opt t.table key with
  | Some entry -> `Found entry
  | None ->
    if String.length key < 4 then `Missing
    else begin
      let matches =
        Hashtbl.fold
          (fun digest entry acc ->
            if String.length key <= String.length digest
               && String.sub digest 0 (String.length key) = key
            then entry :: acc
            else acc)
          t.table []
      in
      match matches with
      | [ entry ] -> `Found entry
      | [] -> `Missing
      | _ -> `Ambiguous
    end

let find t key = locked t (fun () -> resolve_locked t key)

let evict t key =
  locked t (fun () ->
      match resolve_locked t key with
      | `Found entry ->
        Hashtbl.remove t.table entry.digest;
        Some entry
      | `Ambiguous | `Missing -> None)

let list t =
  locked t (fun () -> Hashtbl.fold (fun _ e acc -> e :: acc) t.table [])
  |> List.sort (fun a b -> compare a.loaded_at b.loaded_at)
