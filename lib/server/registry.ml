module Snapshot = Hp_snapshot.Snapshot
module Wal = Hp_wal.Wal
module Live = Hp_wal.Live
module Log = Hp_util.Log
module H = Hp_hypergraph.Hypergraph
module HM = Hp_hypergraph.Hypergraph_maintain

type source = Text | Snapshot_file of string

type state = {
  epoch : int;
  hypergraph : H.t;
  cores : Hp_hypergraph.Hypergraph_core.decomposition option;
}

type recovery = { replayed : int; torn_bytes : int; healed_skew : bool }

type entry = {
  digest : string;
  path : string;
  bytes : int;
  loaded_at : float;
  source : source;
  fallback : bool;
  recovery : recovery option;
  mutable state : state;
      (* Readers snapshot the whole pair with one field read, so a
         concurrent mutation can never pair an old hypergraph with a
         new epoch (or vice versa). *)
  mutable live : Live.t option;
  mutable maint : HM.t option;
      (* Incrementally maintained core decomposition; created together
         with [live] and advanced inside [mutate], so it exists exactly
         for the datasets paying the mutation path. *)
  mutable wal : Wal.writer option;
  mutable wal_records : int;  (* records in the current log file *)
  mutable wal_base_identity : string;
  mutable wal_base_epoch : int;
      (* The base the *next* created WAL folds over: kept ahead of the
         writer so a checkpoint whose log swap fails can still create
         a sound WAL on the following mutation. *)
}

type t = {
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;
  max_file_bytes : int;  (* 0 = unlimited *)
  wal_sync : Wal.sync_policy;
  checkpoint_every : int;  (* 0 = manual checkpoints only *)
  kcore_budget : int;  (* repair region budget for maintainers *)
}

type load_error =
  | Read_failed of string
  | Parse_failed of string

let create ?(max_file_bytes = 0) ?(wal_sync = Wal.Batch) ?(checkpoint_every = 0)
    ?(kcore_budget = 4096) () =
  if max_file_bytes < 0 then invalid_arg "Registry.create: max_file_bytes < 0";
  if checkpoint_every < 0 then
    invalid_arg "Registry.create: checkpoint_every < 0";
  if kcore_budget < 1 then invalid_arg "Registry.create: kcore_budget < 1";
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 16;
    max_file_bytes;
    wal_sync;
    checkpoint_every;
    kcore_budget;
  }

let kcore_budget t = t.kcore_budget

let op_shape : Wal.op -> HM.op = function
  | Wal.Add_vertex _ -> HM.Op_add_vertex
  | Wal.Add_edge _ -> HM.Op_add_edge
  | Wal.Del_edge { edge } -> HM.Op_del_edge edge

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* The size gate runs before the bytes are pulled into memory, so a
   multi-GB file answers [ERR io_error] instead of OOM-ing the daemon.
   The digest is computed in the same pass as the read — a dataset is
   never read twice to learn its identity. *)
let read_file ~max_bytes path =
  Hp_util.Fault.point "registry.read";
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      let len = in_channel_length ic in
      if max_bytes > 0 && len > max_bytes then
        Error
          (Printf.sprintf "%s: file exceeds %d bytes (%d)" path max_bytes len)
      else begin
        let ctx = Hp_util.Md5.init () in
        let buf = Buffer.create (max len 64) in
        let chunk = Bytes.create 65536 in
        let remaining = ref len in
        while !remaining > 0 do
          let n = input ic chunk 0 (min !remaining (Bytes.length chunk)) in
          if n = 0 then remaining := 0 (* file shrank mid-read; digest what we saw *)
          else begin
            Hp_util.Md5.feed ctx chunk ~pos:0 ~len:n;
            Buffer.add_subbytes buf chunk 0 n;
            remaining := !remaining - n
          end
        done;
        Ok (Buffer.contents buf, Hp_util.Md5.hex ctx)
      end)

let parse_content ~path content =
  if Filename.check_suffix path ".mtx" then
    Hp_data.Matrix_market.to_hypergraph (Hp_data.Matrix_market.parse content)
  else Hp_hypergraph.Hypergraph_io.of_string content

(* Publish a freshly built entry, unless a concurrent load of the same
   content won the race; keeping the resident entry keeps ids stable.
   The loser's WAL writer (if it opened one) is closed — the winner's
   fd is the one that matters. *)
let publish t candidate =
  locked t (fun () ->
      match Hashtbl.find_opt t.table candidate.digest with
      | Some existing ->
        Option.iter Wal.close candidate.wal;
        Ok (existing, false)
      | None ->
        Hashtbl.add t.table candidate.digest candidate;
        Ok (candidate, true))

let is_snapshot path = Filename.check_suffix path Snapshot.file_extension

(* The snapshot preferred over re-parsing [path]: its conventional
   sibling, when present and at least as new as the text file.  A
   stale sibling (text file edited after the pack) is ignored, not an
   error — the text file is the source of truth.  (Only consulted when
   no WAL exists; a WAL pins its base by identity, not mtime.) *)
let preferred_snapshot path =
  if is_snapshot path then None
  else begin
    let snap = Snapshot.sibling_path path in
    match ((Unix.stat snap).Unix.st_mtime, (Unix.stat path).Unix.st_mtime) with
    | snap_t, path_t when snap_t >= path_t -> Some snap
    | _ -> None
    | exception Unix.Unix_error _ -> None
  end

let fresh_entry ~digest ~path ~hypergraph ~bytes ~source ~fallback =
  {
    digest;
    path;
    bytes;
    loaded_at = Unix.gettimeofday ();
    source;
    fallback;
    recovery = None;
    state = { epoch = 0; hypergraph; cores = None };
    live = None;
    maint = None;
    wal = None;
    wal_records = 0;
    wal_base_identity = digest;
    wal_base_epoch = 0;
  }

let load_snapshot t ~given_path snap_path ~fallback_allowed =
  let size =
    match (Unix.stat snap_path).Unix.st_size with
    | size -> size
    | exception Unix.Unix_error _ -> 0
  in
  if t.max_file_bytes > 0 && size > t.max_file_bytes then
    if fallback_allowed then Error `Fall_back
    else
      Error
        (`Fail
          (Read_failed
             (Printf.sprintf "%s: file exceeds %d bytes (%d)" snap_path
                t.max_file_bytes size)))
  else
    match Snapshot.read snap_path with
    | Ok (hypergraph, snap) ->
      publish t
        (fresh_entry ~digest:snap.Snapshot.identity ~path:given_path ~hypergraph
           ~bytes:snap.Snapshot.file_bytes ~source:(Snapshot_file snap_path)
           ~fallback:false)
    | Error (Snapshot.Io msg) ->
      if fallback_allowed then Error `Fall_back
      else Error (`Fail (Read_failed msg))
    | Error e ->
      if fallback_allowed then Error `Fall_back
      else
        Error
          (`Fail (Parse_failed (snap_path ^ ": " ^ Snapshot.error_to_string e)))

let load_text t path ~fallback =
  match read_file ~max_bytes:t.max_file_bytes path with
  | exception Sys_error msg -> Error (Read_failed msg)
  | exception Hp_util.Fault.Injected name ->
    Error (Read_failed (Printf.sprintf "%s: injected fault %s" path name))
  | Error msg -> Error (Read_failed msg)
  | Ok (content, digest) ->
    (match locked t (fun () -> Hashtbl.find_opt t.table digest) with
    | Some entry -> Ok (entry, false)
    | None ->
      (match parse_content ~path content with
      | exception Failure msg -> Error (Parse_failed (Printf.sprintf "%s: %s" path msg))
      | exception Invalid_argument msg ->
        Error (Parse_failed (Printf.sprintf "%s: %s" path msg))
      | hypergraph ->
        publish t
          (fresh_entry ~digest ~path ~hypergraph ~bytes:(String.length content)
             ~source:Text ~fallback)))

(* ---------------------------------------------------------------- *)
(* WAL recovery                                                     *)

let wal_error_to_load wal_path = function
  | Wal.Io msg -> Read_failed msg
  | e -> Parse_failed (wal_path ^ ": " ^ Wal.error_to_string e)

(* A dataset with a sibling [.hgwal] recovers by folding the log over
   its base.  Base resolution precedence (DESIGN.md §12):

   1. a sibling snapshot whose identity equals the log's
      [base_identity] — the normal post-checkpoint shape;
   2. the text file whose byte digest equals [base_identity] — the
      pre-first-checkpoint shape;
   3. a snapshot that loads cleanly but names a *different* identity:
      checkpoint/log skew.  That shape only arises from a crash
      between the checkpoint's snapshot rename and its WAL reset — a
      window in which no mutation can be acknowledged — so the
      snapshot already contains every logged record.  Heal: adopt the
      snapshot at [base_epoch + record count] and start a fresh log.
   4. otherwise [Base_skew], a typed error naming what was tried. *)
let load_with_wal t ~path ~wal_path (log : Wal.log) =
  match locked t (fun () -> Hashtbl.find_opt t.table log.Wal.handle) with
  | Some entry -> Ok (entry, false)
  | None ->
    let snap_path =
      if is_snapshot path then path else Snapshot.sibling_path path
    in
    let snap_candidate =
      if Sys.file_exists snap_path then
        match Snapshot.read snap_path with
        | Ok (h, s) -> `Loaded (h, s)
        | Error e -> `Rejected (Snapshot.error_to_string e)
      else `Absent
    in
    let resolved =
      match snap_candidate with
      | `Loaded (h, s) when s.Snapshot.identity = log.Wal.base_identity ->
        Ok (`Base (h, Snapshot_file snap_path, s.Snapshot.file_bytes))
      | _ -> (
        let tried = ref [] in
        (match snap_candidate with
        | `Loaded (_, s) ->
          tried := Printf.sprintf "snapshot %s" s.Snapshot.identity :: !tried
        | `Rejected msg ->
          tried := Printf.sprintf "snapshot unreadable (%s)" msg :: !tried
        | `Absent -> ());
        let text =
          if is_snapshot path then `Absent
          else
            match read_file ~max_bytes:t.max_file_bytes path with
            | exception Sys_error msg -> `Unreadable msg
            | exception Hp_util.Fault.Injected name ->
              `Unreadable (Printf.sprintf "injected fault %s" name)
            | Error msg -> `Unreadable msg
            | Ok (content, digest) -> `Read (content, digest)
        in
        match text with
        | `Read (content, digest) when digest = log.Wal.base_identity -> (
          match parse_content ~path content with
          | exception Failure msg ->
            Error (Parse_failed (Printf.sprintf "%s: %s" path msg))
          | exception Invalid_argument msg ->
            Error (Parse_failed (Printf.sprintf "%s: %s" path msg))
          | h -> Ok (`Base (h, Text, String.length content)))
        | text -> (
          (match text with
          | `Read (_, digest) ->
            tried := Printf.sprintf "text %s" digest :: !tried
          | `Unreadable msg ->
            tried := Printf.sprintf "text unreadable (%s)" msg :: !tried
          | `Absent -> ());
          match snap_candidate with
          | `Loaded (h, s) -> Ok (`Heal (h, s))
          | `Rejected _ | `Absent ->
            Error
              (Parse_failed
                 (wal_path ^ ": "
                 ^ Wal.error_to_string
                     (Wal.Base_skew
                        {
                          base = log.Wal.base_identity;
                          tried = List.rev !tried;
                        })))))
    in
    (match resolved with
    | Error _ as e -> e
    | Ok (`Heal (hypergraph, s)) -> (
      let epoch = log.Wal.base_epoch + Array.length log.Wal.records in
      Log.warn ~comp:"registry"
        ~fields:[ ("wal", wal_path); ("snapshot", snap_path); ("dataset", path) ]
        "checkpoint/log skew healed: adopting snapshot, retiring log";
      match
        Wal.create ~path:wal_path ~handle:log.Wal.handle
          ~base_identity:s.Snapshot.identity ~base_epoch:epoch ~sync:t.wal_sync
      with
      | Error e -> Error (wal_error_to_load wal_path e)
      | Ok w ->
        publish t
          {
            digest = log.Wal.handle;
            path;
            bytes = s.Snapshot.file_bytes;
            loaded_at = Unix.gettimeofday ();
            source = Snapshot_file snap_path;
            fallback = false;
            recovery =
              Some
                {
                  replayed = 0;
                  torn_bytes = log.Wal.torn_bytes;
                  healed_skew = true;
                };
            state = { epoch; hypergraph; cores = None };
            live = None;
            maint = None;
            wal = Some w;
            wal_records = 0;
            wal_base_identity = s.Snapshot.identity;
            wal_base_epoch = epoch;
          })
    | Ok (`Base (base_h, source, bytes)) -> (
      let live = Live.of_hypergraph base_h in
      let n = Array.length log.Wal.records in
      let rec replay i =
        if i >= n then Ok ()
        else
          match Live.apply live log.Wal.records.(i).Wal.op with
          | Ok _ -> replay (i + 1)
          | Error msg ->
            Error
              (Parse_failed
                 (Printf.sprintf "%s: record %d does not apply: %s" wal_path i
                    msg))
      in
      match replay 0 with
      | Error _ as e -> e
      | Ok () -> (
        if log.Wal.torn_bytes > 0 then
          Log.warn ~comp:"registry"
            ~fields:
              [
                ("wal", wal_path);
                ("torn_bytes", string_of_int log.Wal.torn_bytes);
              ]
            "torn WAL tail truncated on recovery";
        match
          Wal.open_append ~path:wal_path ~valid_bytes:log.Wal.valid_bytes
            ~sync:t.wal_sync
        with
        | Error e -> Error (wal_error_to_load wal_path e)
        | Ok w ->
          let hypergraph = if n = 0 then base_h else Live.to_hypergraph live in
          (* The dataset was mutated before the restart, so rebuild
             the maintained decomposition now: the first KCORE after
             recovery is served warm, and subsequent mutations repair
             instead of re-peeling.  Peel the BASE, then absorb the
             whole replayed log as one batched cascade — recovery pays
             one repair for the burst instead of one peel of the final
             state (or n repairs). *)
          let maint = HM.create ~budget:t.kcore_budget base_h in
          if n > 0 then begin
            let ops =
              Array.to_list
                (Array.map (fun r -> op_shape r.Wal.op) log.Wal.records)
            in
            ignore (HM.apply_batch maint ~after:hypergraph ~ops)
          end;
          publish t
            {
              digest = log.Wal.handle;
              path;
              bytes;
              loaded_at = Unix.gettimeofday ();
              source;
              fallback = false;
              recovery =
                Some
                  {
                    replayed = n;
                    torn_bytes = log.Wal.torn_bytes;
                    healed_skew = false;
                  };
              state =
                {
                  epoch = log.Wal.base_epoch + n;
                  hypergraph;
                  cores = Some (HM.decomposition maint);
                };
              live = Some live;
              maint = Some maint;
              wal = Some w;
              wal_records = n;
              wal_base_identity = log.Wal.base_identity;
              wal_base_epoch = log.Wal.base_epoch;
            })))

let load t path =
  let wal_path = Wal.sibling_path path in
  if Sys.file_exists wal_path then
    match Wal.read wal_path with
    | Error e -> Error (wal_error_to_load wal_path e)
    | Ok log -> load_with_wal t ~path ~wal_path log
  else if is_snapshot path then
    match load_snapshot t ~given_path:path path ~fallback_allowed:false with
    | Ok _ as ok -> ok
    | Error (`Fail e) -> Error e
    | Error `Fall_back -> assert false
  else
    match preferred_snapshot path with
    | None -> load_text t path ~fallback:false
    | Some snap ->
      (match load_snapshot t ~given_path:path snap ~fallback_allowed:true with
      | Ok _ as ok -> ok
      | Error (`Fail _) -> assert false
      | Error `Fall_back ->
        (* A sibling existed but could not be trusted; fall back to the
           text parse and mark the entry so the server can count it. *)
        Log.warn ~comp:"registry"
          ~fields:[ ("snapshot", snap); ("dataset", path) ]
          "snapshot rejected, reparsing text";
        load_text t path ~fallback:true)

let resolve_locked t key =
  match Hashtbl.find_opt t.table key with
  | Some entry -> `Found entry
  | None ->
    if String.length key < 4 then `Missing
    else begin
      let matches =
        Hashtbl.fold
          (fun digest entry acc ->
            if String.length key <= String.length digest
               && String.sub digest 0 (String.length key) = key
            then entry :: acc
            else acc)
          t.table []
      in
      match matches with
      | [ entry ] -> `Found entry
      | [] -> `Missing
      | _ -> `Ambiguous
    end

let find t key = locked t (fun () -> resolve_locked t key)

let evict t key =
  locked t (fun () ->
      match resolve_locked t key with
      | `Found entry ->
        Option.iter Wal.close entry.wal;
        entry.wal <- None;
        Hashtbl.remove t.table entry.digest;
        Some entry
      | `Ambiguous | `Missing -> None)

let list t =
  locked t (fun () -> Hashtbl.fold (fun _ e acc -> e :: acc) t.table [])
  |> List.sort (fun a b -> compare a.loaded_at b.loaded_at)

let sync_wals t =
  locked t (fun () ->
      Hashtbl.iter (fun _ e -> Option.iter Wal.flush e.wal) t.table)

(* ---------------------------------------------------------------- *)
(* Mutation                                                         *)

type applied = {
  epoch : int;
  assigned : int option;
  n_vertices : int;
  n_edges : int;
  checkpointed : bool;
  repair : HM.outcome;
}

type checkpoint_info = {
  snapshot_path : string;
  snapshot_identity : string;
  snapshot_bytes : int;
  at_epoch : int;
  records_folded : int;
}

let wal_path_of entry = Wal.sibling_path entry.path

let ensure_live entry =
  match entry.live with
  | Some l -> l
  | None ->
    let l = Live.of_hypergraph entry.state.hypergraph in
    entry.live <- Some l;
    l

let ensure_maintained t entry =
  match entry.maint with
  | Some m -> m
  | None ->
    (* First mutation of this dataset: pay one full peel, then every
       subsequent mutation repairs incrementally. *)
    let m = HM.create ~budget:t.kcore_budget entry.state.hypergraph in
    entry.maint <- Some m;
    m

let ensure_writer t entry =
  match entry.wal with
  | Some w -> Ok w
  | None -> (
    match
      Wal.create ~path:(wal_path_of entry) ~handle:entry.digest
        ~base_identity:entry.wal_base_identity
        ~base_epoch:entry.wal_base_epoch ~sync:t.wal_sync
    with
    | Ok w ->
      entry.wal <- Some w;
      entry.wal_records <- 0;
      Ok w
    | Error e -> Error (`Io (Wal.error_to_string e)))

(* Pack the current state, then swap in a fresh log over it.  Both
   steps are atomic renames; [wal.swap] sits in the crash window
   between them — the exact skew shape [load_with_wal] heals.  The
   entry's [wal_base_*] fields are advanced *before* the swap so that
   even a failed swap leaves the next [ensure_writer] folding over the
   snapshot that is already on disk. *)
let checkpoint_locked t entry =
  let { epoch; hypergraph; _ } = entry.state in
  let snap_path =
    if is_snapshot entry.path then entry.path
    else Snapshot.sibling_path entry.path
  in
  let folded = entry.wal_records in
  match Snapshot.pack hypergraph snap_path with
  | exception Sys_error msg -> Error (`Io msg)
  | exception Unix.Unix_error (e, fn, arg) ->
    Error (`Io (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e)))
  | exception Invalid_argument msg -> Error (`Io msg)
  | exception Hp_util.Fault.Injected name ->
    Error (`Io (Printf.sprintf "injected fault %s" name))
  | info -> (
    entry.wal_base_identity <- info.Snapshot.identity;
    entry.wal_base_epoch <- epoch;
    Option.iter Wal.close entry.wal;
    entry.wal <- None;
    match
      Hp_util.Fault.point "wal.swap";
      Wal.create ~path:(wal_path_of entry) ~handle:entry.digest
        ~base_identity:info.Snapshot.identity ~base_epoch:epoch
        ~sync:t.wal_sync
    with
    | exception Hp_util.Fault.Injected name ->
      Error (`Io (Printf.sprintf "injected fault %s" name))
    | Error e -> Error (`Io (Wal.error_to_string e))
    | Ok w ->
      entry.wal <- Some w;
      entry.wal_records <- 0;
      Ok
        {
          snapshot_path = snap_path;
          snapshot_identity = info.Snapshot.identity;
          snapshot_bytes = info.Snapshot.bytes;
          at_epoch = epoch;
          records_folded = folded;
        })

let checkpoint t key =
  locked t (fun () ->
      match resolve_locked t key with
      | `Missing -> Error `Missing
      | `Ambiguous -> Error `Ambiguous
      | `Found entry -> (
        match checkpoint_locked t entry with
        | Ok _ as ok -> ok
        | Error (`Io msg) -> Error (`Io msg)))

let mutate t key op =
  locked t (fun () ->
      match resolve_locked t key with
      | `Missing -> Error `Missing
      | `Ambiguous -> Error `Ambiguous
      | `Found entry -> (
        let live = ensure_live entry in
        match Live.validate live op with
        | Error msg -> Error (`Invalid msg)
        | Ok () -> (
          match ensure_writer t entry with
          | Error (`Io msg) -> Error (`Io msg)
          | Ok w -> (
            let epoch = entry.state.epoch + 1 in
            (* WAL before apply: if the append fails the op was never
               acknowledged and the in-memory state is untouched. *)
            match Wal.append w { Wal.epoch; op } with
            | Error e -> Error (`Io (Wal.error_to_string e))
            | Ok () ->
              (* Build the maintainer from the pre-mutation state, so
                 its first full peel and this op's repair both happen
                 under the registry lock of this mutation. *)
              let maint = ensure_maintained t entry in
              let assigned = Live.apply_exn live op in
              entry.wal_records <- entry.wal_records + 1;
              let hypergraph = Live.to_hypergraph live in
              let repair =
                match op with
                | Wal.Add_vertex _ -> HM.add_vertex maint ~after:hypergraph
                | Wal.Add_edge _ -> HM.add_edge maint ~after:hypergraph
                | Wal.Del_edge { edge } ->
                  HM.del_edge maint ~after:hypergraph ~edge
              in
              entry.state <-
                { epoch; hypergraph; cores = Some (HM.decomposition maint) };
              let checkpointed =
                t.checkpoint_every > 0
                && entry.wal_records >= t.checkpoint_every
                &&
                match checkpoint_locked t entry with
                | Ok _ -> true
                | Error (`Io msg) ->
                  Log.warn ~comp:"registry"
                    ~fields:[ ("dataset", entry.digest); ("error", msg) ]
                    "auto-checkpoint failed; log keeps growing";
                  false
              in
              Ok
                {
                  epoch;
                  assigned;
                  n_vertices = H.n_vertices entry.state.hypergraph;
                  n_edges = H.n_edges entry.state.hypergraph;
                  checkpointed;
                  repair;
                }))))

(* ---------------------------------------------------------------- *)
(* Batched mutation                                                 *)

type batch_item = {
  b_epoch : int;
  b_assigned : int option;
  b_n_vertices : int;
  b_n_edges : int;
}

type batch_result = {
  items : (batch_item, [ `Invalid of string | `Io of string ]) result array;
      (* one per input op, in order *)
  batch_repair : HM.outcome option;  (* [None] when nothing applied *)
  batch_applied : int;
  batch_checkpointed : bool;
}

(* Apply a burst of mutations under one lock acquisition with ONE
   decomposition repair (HM.apply_batch) and one state rebuild at the
   end, instead of per-op repairs.  Ops validate sequentially against
   the evolving state; an invalid op is skipped with a per-item error
   and the rest of the burst continues (matching what the per-op path
   would have produced).  A WAL append failure aborts the remainder —
   those ops were never acknowledged. *)
let mutate_batch t key ops =
  locked t (fun () ->
      match resolve_locked t key with
      | `Missing -> Error `Missing
      | `Ambiguous -> Error `Ambiguous
      | `Found entry -> (
        let live = ensure_live entry in
        match ensure_writer t entry with
        | Error (`Io msg) -> Error (`Io msg)
        | Ok w ->
          (* Built from the pre-batch state: its first full peel (if
             any) happens before the burst's ops are folded in. *)
          let maint = ensure_maintained t entry in
          let base_epoch = entry.state.epoch in
          let applied = ref 0 in
          let shapes = ref [] in
          let aborted = ref None in
          let items =
            Array.of_list
              (List.map
                 (fun op ->
                   match !aborted with
                   | Some msg -> Error (`Io ("batch aborted: " ^ msg))
                   | None -> (
                     match Live.validate live op with
                     | Error msg -> Error (`Invalid msg)
                     | Ok () -> (
                       let epoch = base_epoch + !applied + 1 in
                       match Wal.append w { Wal.epoch; op } with
                       | Error e ->
                         let msg = Wal.error_to_string e in
                         aborted := Some msg;
                         Error (`Io msg)
                       | Ok () ->
                         let assigned = Live.apply_exn live op in
                         incr applied;
                         shapes := op_shape op :: !shapes;
                         Ok
                           {
                             b_epoch = epoch;
                             b_assigned = assigned;
                             b_n_vertices = Live.n_vertices live;
                             b_n_edges = Live.n_edges live;
                           })))
                 ops)
          in
          if !applied = 0 then
            Ok
              {
                items;
                batch_repair = None;
                batch_applied = 0;
                batch_checkpointed = false;
              }
          else begin
            entry.wal_records <- entry.wal_records + !applied;
            let hypergraph = Live.to_hypergraph live in
            let repair =
              HM.apply_batch maint ~after:hypergraph
                ~ops:(List.rev !shapes)
            in
            entry.state <-
              {
                epoch = base_epoch + !applied;
                hypergraph;
                cores = Some (HM.decomposition maint);
              };
            let checkpointed =
              t.checkpoint_every > 0
              && entry.wal_records >= t.checkpoint_every
              &&
              match checkpoint_locked t entry with
              | Ok _ -> true
              | Error (`Io msg) ->
                Log.warn ~comp:"registry"
                  ~fields:[ ("dataset", entry.digest); ("error", msg) ]
                  "auto-checkpoint failed; log keeps growing";
                false
            in
            Ok
              {
                items;
                batch_repair = Some repair;
                batch_applied = !applied;
                batch_checkpointed = checkpointed;
              }
          end))
