type t = {
  mutex : Mutex.t;
  lru : (string, (string * string) list) Hp_util.Lru.t;
  metrics : Metrics.t;
}

let create ~capacity ~metrics () =
  { mutex = Mutex.create (); lru = Hp_util.Lru.create ~capacity (); metrics }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* The dataset part of a key is "<handle>@<epoch>": mutations bump the
   epoch, so entries computed against an older state simply stop
   matching — invalidation by key construction, no flushes.  Stale
   epochs age out of the LRU like any other cold entry. *)
let key ~digest ~epoch ~analysis =
  Printf.sprintf "%s@%d %s" digest epoch (Protocol.analysis_key analysis)

let find t k =
  let hit = locked t (fun () -> Hp_util.Lru.find t.lru k) in
  Metrics.incr t.metrics (match hit with Some _ -> "cache_hits" | None -> "cache_misses");
  hit

let add t k payload =
  let evicted = locked t (fun () -> Hp_util.Lru.set t.lru k payload) in
  if Option.is_some evicted then Metrics.incr t.metrics "cache_evictions"

let dataset_of_key k =
  let k =
    match String.index_opt k ' ' with
    | Some i -> String.sub k 0 i
    | None -> k
  in
  match String.index_opt k '@' with
  | Some i -> String.sub k 0 i
  | None -> k

let drop_dataset t ~digest =
  locked t (fun () ->
      let doomed =
        Hp_util.Lru.to_list t.lru
        |> List.filter_map (fun (k, _) ->
               if dataset_of_key k = digest then Some k else None)
      in
      List.iter (fun k -> ignore (Hp_util.Lru.remove t.lru k)) doomed;
      List.length doomed)

let clear t =
  locked t (fun () ->
      let n = Hp_util.Lru.length t.lru in
      Hp_util.Lru.clear t.lru;
      n)

let length t = locked t (fun () -> Hp_util.Lru.length t.lru)

let capacity t = Hp_util.Lru.capacity t.lru

(* Warm-start persistence.  The on-disk form is a length-prefixed dump
   of the LRU bindings, most recent first, sealed with a trailing
   Binary.hash64 over everything before it; restore replays the dump
   least-recent-first so the reconstructed recency order matches the
   saved one.  A cache file is advisory: restore treats any defect as
   "start cold" and reports it, never raises. *)

module B = Hp_util.Binary

let cache_magic = "HGCACHE\n"

(* v2: keys carry the dataset epoch ("<digest>@<epoch> <analysis>").
   v1 files would restore cleanly but their epoch-less keys could
   never be hit again, so they are refused instead of limping. *)
let cache_version = 2

let add_u64 buf v =
  let scratch = Bytes.create 8 in
  B.set_int_le scratch ~pos:0 v;
  Buffer.add_bytes buf scratch

let add_string buf s =
  add_u64 buf (String.length s);
  Buffer.add_string buf s

let save t path =
  let bindings = locked t (fun () -> Hp_util.Lru.to_list t.lru) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf cache_magic;
  add_u64 buf cache_version;
  add_u64 buf (List.length bindings);
  List.iter
    (fun (k, pairs) ->
      add_string buf k;
      add_u64 buf (List.length pairs);
      List.iter
        (fun (pk, pv) ->
          add_string buf pk;
          add_string buf pv)
        pairs)
    bindings;
  add_u64 buf (B.hash64_string B.hash64_seed (Buffer.contents buf) land max_int);
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
        Buffer.output_buffer oc buf);
    Sys.rename tmp path
  with
  | () -> Ok (List.length bindings)
  | exception Sys_error msg -> Error msg

exception Bad of string

let restore t path =
  if not (Sys.file_exists path) then Ok 0
  else
    match
      let ic = open_in_bin path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
          let len = in_channel_length ic in
          really_input_string ic len)
    with
    | exception Sys_error msg -> Error msg
    | exception End_of_file -> Error (path ^ ": file shrank mid-read")
    | exception e -> Error (path ^ ": " ^ Printexc.to_string e)
    | content ->
      let len = String.length content in
      let bytes = Bytes.unsafe_of_string content in
      let u64 pos what =
        if pos < 0 || pos + 8 > len - 8 then
          raise (Bad (Printf.sprintf "truncated at %s" what))
        else
          match B.get_int_le bytes ~pos with
          | Some v -> v
          | None -> raise (Bad (Printf.sprintf "oversized %s" what))
      in
      let cursor = ref (String.length cache_magic) in
      let next what =
        let v = u64 !cursor what in
        cursor := !cursor + 8;
        v
      in
      let next_string what =
        let n = next (what ^ " length") in
        if n > len - 8 - !cursor then
          raise (Bad (Printf.sprintf "truncated at %s" what));
        let s = String.sub content !cursor n in
        cursor := !cursor + n;
        s
      in
      (match
         if len < String.length cache_magic + 24 then raise (Bad "truncated file");
         if String.sub content 0 (String.length cache_magic) <> cache_magic then
           raise (Bad "bad magic");
         let stored =
           match B.get_int_le bytes ~pos:(len - 8) with
           | Some v -> v
           | None -> raise (Bad "bad checksum field")
         in
         let computed =
           B.hash64 B.hash64_seed bytes ~pos:0 ~len:(len - 8) land max_int
         in
         if stored <> computed then raise (Bad "checksum mismatch");
         let version = next "version" in
         if version <> cache_version then
           raise (Bad (Printf.sprintf "unsupported version %d" version));
         let count = next "entry count" in
         let entries =
           List.init count (fun _ ->
               let k = next_string "key" in
               let pairs =
                 List.init
                   (next "pair count")
                   (fun _ ->
                     let pk = next_string "pair key" in
                     let pv = next_string "pair value" in
                     (pk, pv))
               in
               (k, pairs))
         in
         if !cursor <> len - 8 then raise (Bad "trailing garbage");
         entries
       with
      | exception Bad msg -> Error (path ^ ": " ^ msg)
      (* A corrupt file must cost warmth, never availability: any
         other escape from the decoder (however exotic the byte
         pattern that found it) degrades to a cold start too. *)
      | exception e -> Error (path ^ ": " ^ Printexc.to_string e)
      | entries ->
        locked t (fun () ->
            List.iter
              (fun (k, pairs) -> ignore (Hp_util.Lru.set t.lru k pairs))
              (List.rev entries);
            Ok (Hp_util.Lru.length t.lru)))
