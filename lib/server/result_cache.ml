type t = {
  mutex : Mutex.t;
  lru : (string, (string * string) list) Hp_util.Lru.t;
  metrics : Metrics.t;
}

let create ~capacity ~metrics () =
  { mutex = Mutex.create (); lru = Hp_util.Lru.create ~capacity (); metrics }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let key ~digest ~analysis = digest ^ " " ^ Protocol.analysis_key analysis

let find t k =
  let hit = locked t (fun () -> Hp_util.Lru.find t.lru k) in
  Metrics.incr t.metrics (match hit with Some _ -> "cache_hits" | None -> "cache_misses");
  hit

let add t k payload =
  let evicted = locked t (fun () -> Hp_util.Lru.set t.lru k payload) in
  if Option.is_some evicted then Metrics.incr t.metrics "cache_evictions"

let dataset_of_key k =
  match String.index_opt k ' ' with
  | Some i -> String.sub k 0 i
  | None -> k

let drop_dataset t ~digest =
  locked t (fun () ->
      let doomed =
        Hp_util.Lru.to_list t.lru
        |> List.filter_map (fun (k, _) ->
               if dataset_of_key k = digest then Some k else None)
      in
      List.iter (fun k -> ignore (Hp_util.Lru.remove t.lru k)) doomed;
      List.length doomed)

let clear t =
  locked t (fun () ->
      let n = Hp_util.Lru.length t.lru in
      Hp_util.Lru.clear t.lru;
      n)

let length t = locked t (fun () -> Hp_util.Lru.length t.lru)

let capacity t = Hp_util.Lru.capacity t.lru
