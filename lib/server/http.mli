(** Minimal HTTP/1.1 responder for the scrape endpoints.

    hgd is not a web server: it answers exactly [GET /metrics] and
    [GET /healthz] (plus [HEAD]), one request per connection,
    [Connection: close].  The event loop hands over the raw request
    head (request line + header lines, terminator stripped) and writes
    back whatever byte string this module builds. *)

type request = { meth : string; path : string }

(** Parse ["GET /metrics HTTP/1.1"].  [None] on anything that is not a
    three-token HTTP request line.  The path is returned with any
    query string stripped. *)
val parse_request_line : string -> request option

(** Build a full response (status line, headers, body).  [head_only]
    keeps the headers — including the true [Content-Length] — but
    drops the body, as HEAD requires. *)
val response :
  ?content_type:string -> ?head_only:bool -> status:int -> string -> string

(** Content type of the Prometheus text exposition format. *)
val prometheus_content_type : string
