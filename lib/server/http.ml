type request = { meth : string; path : string }

let parse_request_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ meth; target; version ]
    when String.length version >= 5 && String.sub version 0 5 = "HTTP/" ->
    let path =
      match String.index_opt target '?' with
      | Some i -> String.sub target 0 i
      | None -> target
    in
    Some { meth; path }
  | _ -> None

let reason_phrase = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 503 -> "Service Unavailable"
  | _ -> "Error"

let prometheus_content_type = "text/plain; version=0.0.4; charset=utf-8"

let response ?(content_type = "text/plain; charset=utf-8") ?(head_only = false)
    ~status body =
  Printf.sprintf
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status (reason_phrase status) content_type (String.length body)
    (if head_only then "" else body)
