let read = 1
let write = 2

(* Unix.file_descr is an int on Unix; the stubs traffic in ints. *)
external fd_int : Unix.file_descr -> int = "%identity"
external fd_of_int : int -> Unix.file_descr = "%identity"
external epoll_create : unit -> int = "hgd_epoll_create"
external epoll_ctl : int -> int -> int -> int -> int = "hgd_epoll_ctl"
external epoll_wait : int -> int -> int array -> int = "hgd_epoll_wait"

type backend =
  | Epoll of { ep : int; out : int array }
  | Select

type t = {
  backend : backend;
  (* fd -> interest mask.  The select backend polls from this table;
     the epoll backend keeps it as a mirror so [modify] after [remove]
     fails loudly in both.  Guarded by [mu]: mutations come from
     worker threads while the loop thread reads it. *)
  interest : (int, int) Hashtbl.t;
  mu : Mutex.t;
}

let backend t = match t.backend with Epoll _ -> "epoll" | Select -> "select"

let create ?(backend = `Auto) () =
  let forced_select =
    backend = `Select || Sys.getenv_opt "HGD_EVENT_BACKEND" = Some "select"
  in
  let b =
    if forced_select then Select
    else
      match epoll_create () with
      | ep when ep >= 0 -> Epoll { ep; out = Array.make 512 0 }
      | _ -> Select
  in
  { backend = b; interest = Hashtbl.create 64; mu = Mutex.create () }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let ctl_exn what r =
  if r < 0 then
    failwith (Printf.sprintf "Poller.%s: epoll_ctl failed (errno %d)" what (-r))

let add t fd mask =
  locked t (fun () ->
      Hashtbl.replace t.interest (fd_int fd) mask;
      match t.backend with
      | Epoll { ep; _ } -> ctl_exn "add" (epoll_ctl ep 0 (fd_int fd) mask)
      | Select -> ())

let modify t fd mask =
  locked t (fun () ->
      if Hashtbl.mem t.interest (fd_int fd) then begin
        Hashtbl.replace t.interest (fd_int fd) mask;
        match t.backend with
        | Epoll { ep; _ } -> ctl_exn "modify" (epoll_ctl ep 1 (fd_int fd) mask)
        | Select -> ()
      end)

let remove t fd =
  locked t (fun () ->
      if Hashtbl.mem t.interest (fd_int fd) then begin
        Hashtbl.remove t.interest (fd_int fd);
        match t.backend with
        | Epoll { ep; _ } ->
          (* The fd may already be closed (EBADF) — removal is best
             effort; a closed fd left epoll's set on its own. *)
          ignore (epoll_ctl ep 2 (fd_int fd) 0)
        | Select -> ()
      end)

let wait t ~timeout_ms =
  match t.backend with
  | Epoll { ep; out } -> (
    match epoll_wait ep timeout_ms out with
    | n when n > 0 ->
      let rec collect i acc =
        if i < 0 then acc
        else collect (i - 1) ((fd_of_int out.(2 * i), out.((2 * i) + 1)) :: acc)
      in
      collect (n - 1) []
    | _ -> [])
  | Select ->
    let readers, writers =
      locked t (fun () ->
          Hashtbl.fold
            (fun fd mask (rs, ws) ->
              ( (if mask land read <> 0 then fd_of_int fd :: rs else rs),
                if mask land write <> 0 then fd_of_int fd :: ws else ws ))
            t.interest ([], []))
    in
    let timeout = if timeout_ms < 0 then -1.0 else float_of_int timeout_ms /. 1000.0 in
    (match Unix.select readers writers [] timeout with
    | rs, ws, _ ->
      (* Merge per-fd readiness so each fd appears once, like epoll. *)
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun fd ->
          let k = fd_int fd in
          Hashtbl.replace tbl k (read lor (try Hashtbl.find tbl k with Not_found -> 0)))
        rs;
      List.iter
        (fun fd ->
          let k = fd_int fd in
          Hashtbl.replace tbl k (write lor (try Hashtbl.find tbl k with Not_found -> 0)))
        ws;
      Hashtbl.fold (fun fd mask acc -> (fd_of_int fd, mask) :: acc) tbl []
    | exception Unix.Unix_error (EINTR, _, _) -> []
    | exception Unix.Unix_error (EBADF, _, _) ->
      (* A registered fd was closed behind our back (connection torn
         down between rounds); the loop's own close path removes it on
         the next pass.  Report nothing this round. *)
      [])

let close t =
  match t.backend with
  | Epoll { ep; _ } -> ( try Unix.close (fd_of_int ep) with _ -> ())
  | Select -> ()
