(** Blocking client for the hgd socket protocol; used by
    [hgtool query] and the integration tests. *)

type t

val connect : socket_path:string -> (t, string) result

val close : t -> unit

val request : t -> Protocol.request -> (Protocol.reply, string) result
(** Send one request and read its full reply.  [Error] only on a
    transport or framing failure; a server-side [ERR] arrives as
    [Ok (Err _)]. *)

val request_line : t -> string -> (Protocol.reply, string) result
(** Send a raw line verbatim — deliberately malformed lines included,
    which is what the protocol-hardening tests need. *)

val with_connection :
  socket_path:string -> (t -> ('a, string) result) -> ('a, string) result
