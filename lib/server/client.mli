(** Blocking client for the hgd protocol, over a Unix-domain socket or
    TCP; used by [hgtool query], the load generator, and the
    integration tests. *)

type t

type addr = Unix_path of string | Tcp of { host : string; port : int }
(** Where the server lives.  The protocol is byte-identical over both
    transports. *)

val addr_to_string : addr -> string

val connect_addr : addr -> (t, string) result
(** TCP connects set [TCP_NODELAY] (request lines are tiny; Nagle only
    adds latency) and diagnose ECONNREFUSED. *)

val connect : socket_path:string -> (t, string) result
(** [connect_addr (Unix_path socket_path)].  A connect refused on an
    existing socket file is reported as a stale socket — the footprint
    of a daemon that died without unlinking (a restarting hgd replaces
    the file itself). *)

val close : t -> unit

val set_timeout : t -> float -> unit
(** Bound every subsequent read and write by [timeout] seconds, so a
    wedged server yields [Error "timed out ..."] instead of blocking
    forever.  [<= 0] is a no-op. *)

val request : t -> Protocol.request -> (Protocol.reply, string) result
(** Send one request and read its full reply.  [Error] only on a
    transport or framing failure; a server-side [ERR] arrives as
    [Ok (Err _)].  Reply lines beyond {!Protocol.max_line_bytes} are a
    framing error, bounding client memory against a corrupt stream.
    A connection that closes mid-line yields an error starting with
    ["truncated reply"] (stable prefix), distinguishing a torn reply
    from a clean ["connection closed by server"]; write-side stalls
    past a 30 s cumulative budget surface as an EAGAIN transport
    error instead of blocking forever. *)

val request_line : t -> string -> (Protocol.reply, string) result
(** Send a raw line verbatim — deliberately malformed lines included,
    which is what the protocol-hardening tests need. *)

val send_raw : t -> string -> unit
(** Write bytes verbatim — no newline appended, no reply read.  For
    partial-frame tests and stalled-client load generation; raises
    [Unix.Unix_error] on a transport failure. *)

val with_connection :
  socket_path:string -> (t -> ('a, string) result) -> ('a, string) result

val with_connection_addr :
  addr -> (t -> ('a, string) result) -> ('a, string) result

(** {2 Pipelined batches}

    [BATCH] sends n requests over one connection and reads n tagged
    sub-replies; the server flushes each as soon as it is computed, so
    a batch costs one round-trip plus compute instead of n
    round-trips. *)

type batch_reply =
  | Items of (Protocol.reply, string) result list
      (** One entry per request, in request order.  A server-side
          per-item failure is [Ok (Err _)]; [Error] marks an item lost
          to a transport break (only ever the last entry — framing is
          gone once a read fails). *)
  | Refused of Protocol.reply
      (** The server answered the whole batch with a single un-tagged
          reply (e.g. [ERR busy] at admission) before any item ran. *)

val batch_lines : t -> string list -> (batch_reply, string) result
(** Send the raw request lines as one [BATCH] and collect the tagged
    replies.  [Error] on an empty batch, a batch beyond
    {!Protocol.max_batch_items}, or a transport/framing failure. *)

val batch : t -> Protocol.request list -> (batch_reply, string) result
(** [batch_lines] over the canonical renderings of [reqs]. *)

(** {2 Retrying calls}

    One request per connection, retried across transient failures:
    [ERR busy] backpressure replies (honouring the server's
    [retry_after_ms] hint as a floor) and transport errors such as a
    connect refused while the daemon restarts. *)

type retry_policy = {
  retries : int;        (** Retry attempts after the first try. *)
  base_delay_ms : int;  (** Backoff step for the first retry. *)
  max_delay_ms : int;   (** Backoff ceiling. *)
  timeout : float;      (** Per-attempt I/O timeout; 0 = none. *)
  seed : int;           (** Jitter PRNG seed — fixed seed, fixed delays. *)
}

val default_policy : retry_policy
(** 3 retries, 100 ms doubling to a 5 s cap, no I/O timeout. *)

val retry_delay_ms :
  policy:retry_policy ->
  prng:Hp_util.Prng.t ->
  attempt:int ->
  hint_ms:int option ->
  int
(** The delay [call] sleeps after failed attempt [attempt] (1-based):
    equal-jitter exponential backoff with the server's [hint_ms]
    composed in as a floor on the jitter {e window}, not a clamp on
    the drawn value — so a herd of rejected clients still spreads out
    when the hint dominates the backoff step.  Contract:
    [hint <= delay <= hint + max_delay_ms] always; with no hint this
    is plain equal jitter over [[ceiling/2, ceiling]] where
    [ceiling = min (base * 2^(attempt-1)) max_delay_ms].  Exposed so
    tests can check the schedule without sleeping. *)

val call :
  ?policy:retry_policy ->
  socket_path:string ->
  Protocol.request ->
  (Protocol.reply, string) result
(** Dial, send [req], read the reply, close; on [ERR busy] or a
    transport error, back off and retry up to [policy.retries] times.
    A final [ERR busy] is returned as [Ok (Err _)]; a final transport
    failure as [Error] naming the attempt count.  Errors the server
    answers (timeout, bad request, ...) are never retried. *)

val call_addr :
  ?policy:retry_policy ->
  addr:addr ->
  Protocol.request ->
  (Protocol.reply, string) result
(** [call] over either transport. *)
