(** The hgd daemon: a Unix-domain-socket (and optionally TCP) server
    holding datasets resident and memoizing analyses.

    Architecture: one accept domain feeds Unix-socket connections to a
    fixed {!Worker} pool; each worker serves its connection's requests
    in a read-parse-dispatch-reply loop until the client disconnects.
    With [tcp] (and/or [http]) configured, an {!Event_loop} domain
    additionally multiplexes every TCP connection nonblockingly —
    framing requests in user space and submitting them to the same
    worker pool one at a time per connection — so a slow or stalled
    client costs buffer memory, never a worker or the accept path.
    The loop also answers HTTP [GET /metrics] (Prometheus text) and
    [GET /healthz]: on the dedicated [http] port, and on the [tcp]
    port for any connection whose first line is an HTTP request line.
    Analyses go through the {!Result_cache} (keyed by dataset content
    digest and canonical request), datasets through the {!Registry};
    every request is timed into {!Metrics}.

    Failure containment: each worker runs under a supervisor that
    respawns it if a job kills the domain (counted under
    [worker_restarts]); non-lethal handler exceptions are captured into
    [ERR internal] replies and the [worker_exceptions] counter.  The
    [request_timeout] is a cooperative deadline ({!Hp_util.Deadline})
    threaded into the k-core and path kernels, so an over-budget
    k-core or diameter request aborts mid-computation with
    [ERR timeout]; analyses without deadline checks still report the
    overrun after the fact.  Admission control bounds the job queue at
    [queue_limit]: overflow connections get an [ERR busy] carrying a
    [retry_after_ms] hint and are closed, and once the queue passes
    [shed_watermark] analyses are served from cache only.

    Malformed input at any layer — unparsable or oversized request
    line, unknown dataset, unreadable, oversized, or malformed file —
    produces a structured [ERR] reply, never a crash or a dropped
    connection. *)

type config = {
  socket_path : string;
  workers : int;          (** Worker pool size. *)
  cache_capacity : int;   (** Result-cache entry budget. *)
  request_timeout : float;(** Seconds; 0 disables the deadline. *)
  compute_domains : int;  (** Domains handed to the analysis kernels. *)
  preload : string list;  (** Datasets loaded before accepting. *)
  queue_limit : int;
  (** Max connections waiting for a worker before [ERR busy]. *)
  shed_watermark : int;
  (** Queue depth at which analyses become cache-only; <= 0 disables
      shedding. *)
  max_file_bytes : int;
  (** Reject dataset files larger than this (0 = unlimited). *)
  failpoints : string;
  (** {!Hp_util.Fault.configure} spec armed at [start]; [""] arms
      nothing.  Test-only. *)
  stats_samples : int;
  (** When > 0 and smaller than the vertex count, [STATS] estimates
      diameter and average path from this many sampled BFS sources
      (deterministic seed, so the cached result is reproducible)
      instead of the exact all-pairs sweep.  0 = exact. *)
  cache_file : string option;
  (** Warm-start file for the result cache: restored (if present and
      valid) before the first connection is accepted, saved on clean
      shutdown after the workers drain.  Restored entries are counted
      under [cache_restored]; a corrupt file logs a warning and starts
      cold.  [None] (the default) keeps the cache memory-only. *)
  wal_sync : Hp_wal.Wal.sync_policy;
  (** fsync policy for WAL appends ([--wal-sync]): [Always] makes
      every acknowledged mutation power-loss durable, [Batch] (the
      default) fsyncs every {!Hp_wal.Wal.batch_every} appends and on
      shutdown, [Never] leaves flushing to the OS.  All three survive
      a process kill (the write itself is synchronous); the policy
      only governs what an OS/power failure can take. *)
  wal_checkpoint_every : int;
  (** Auto-compact a dataset's WAL into a fresh sibling snapshot after
      this many records ([--wal-checkpoint-every]); 0 (the default)
      compacts only on explicit [CHECKPOINT]. *)
  kcore_budget : int;
  (** Per-repair visit budget for the maintained k-core decomposition
      ([--kcore-budget], default 4096): a mutation repair that would
      touch more than this many vertices + hyperedges falls back to a
      full re-peel instead (counted under [kcore_budget_fallbacks] and
      reported by [INFO]).  Must be >= 1. *)
  tcp : (string * int) option;
  (** Also serve the text protocol over TCP on this host/port
      ([--tcp HOST:PORT]), via the nonblocking event loop.  Port 0
      binds an ephemeral port, readable back via {!tcp_port}. *)
  http : (string * int) option;
  (** Dedicated HTTP port for [GET /metrics] and [GET /healthz]
      ([--http HOST:PORT]); both are also served on the [tcp] port by
      first-line sniffing, so this is for deployments that firewall
      the protocol port away from scrapers. *)
}

val default_config : socket_path:string -> config
(** Workers from {!Hp_util.Parallel.recommended_domains}, 128 cache
    entries, 30 s timeout, single-domain kernels, no preload, queue
    limit 128, shed watermark 64, 1 GiB file cap, no failpoints,
    exact path sweeps ([stats_samples = 0]), no cache file, [Batch]
    WAL sync, manual checkpoints only, k-core repair budget 4096. *)

type t

val start : config -> (t, string) result
(** Bind the socket (replacing a stale file), preload datasets, spawn
    the pool and the accept domain, and return without blocking.
    [Error] on bind failure or a preload that does not parse. *)

val stop : t -> unit
(** Initiate shutdown (as the [SHUTDOWN] verb does) and wait for
    workers to drain.  Idempotent. *)

val request_stop : t -> unit
(** Initiate shutdown without blocking — safe from a signal handler;
    pair with [wait]. *)

val wait : t -> unit
(** Block until the server has shut down — via [stop] or a client's
    [SHUTDOWN] — and its socket file is removed. *)

val run : config -> (unit, string) result
(** [start] then [wait]; the foreground entry point used by [hgd] and
    [hgtool serve]. *)

val socket_path : t -> string

val tcp_port : t -> int option
(** The bound TCP port, when [config.tcp] was given — the actual
    kernel-assigned port if 0 was requested. *)

val http_port : t -> int option
(** Likewise for the dedicated HTTP port. *)
