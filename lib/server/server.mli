(** The hgd daemon: a Unix-domain-socket server holding datasets
    resident and memoizing analyses.

    Architecture: one accept domain feeds connections to a fixed
    {!Worker} pool; each worker serves its connection's requests in a
    read-parse-dispatch-reply loop until the client disconnects.
    Analyses go through the {!Result_cache} (keyed by dataset content
    digest and canonical request), datasets through the {!Registry};
    every request is timed into {!Metrics}.

    Timeouts are best-effort: the deadline is checked when a
    computation finishes, so a slow analysis is reported (and counted
    under [timeouts]) but not preempted — the [ERR timeout] reply tells
    the client its budget was blown without leaving a poisoned worker
    behind.

    Malformed input at any layer — unparsable request line, unknown
    dataset, unreadable or malformed file — produces a structured
    [ERR] reply, never a crash or a dropped connection. *)

type config = {
  socket_path : string;
  workers : int;          (** Worker pool size. *)
  cache_capacity : int;   (** Result-cache entry budget. *)
  request_timeout : float;(** Seconds; 0 disables the deadline check. *)
  compute_domains : int;  (** Domains handed to the analysis kernels. *)
  preload : string list;  (** Datasets loaded before accepting. *)
}

val default_config : socket_path:string -> config
(** Workers from {!Hp_util.Parallel.recommended_domains}, 128 cache
    entries, 30 s timeout, single-domain kernels, no preload. *)

type t

val start : config -> (t, string) result
(** Bind the socket (replacing a stale file), preload datasets, spawn
    the pool and the accept domain, and return without blocking.
    [Error] on bind failure or a preload that does not parse. *)

val stop : t -> unit
(** Initiate shutdown (as the [SHUTDOWN] verb does) and wait for
    workers to drain.  Idempotent. *)

val request_stop : t -> unit
(** Initiate shutdown without blocking — safe from a signal handler;
    pair with [wait]. *)

val wait : t -> unit
(** Block until the server has shut down — via [stop] or a client's
    [SHUTDOWN] — and its socket file is removed. *)

val run : config -> (unit, string) result
(** [start] then [wait]; the foreground entry point used by [hgd] and
    [hgtool serve]. *)

val socket_path : t -> string
