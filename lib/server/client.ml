type t = { fd : Unix.file_descr; mutable pending : string }

let connect ~socket_path =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
  | () -> Ok { fd; pending = "" }
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with _ -> ());
    Error
      (Printf.sprintf "cannot connect to %s: %s" socket_path (Unix.error_message err))

let close t = try Unix.close t.fd with _ -> ()

let rec read_line t =
  match String.index_opt t.pending '\n' with
  | Some i ->
    let line = String.sub t.pending 0 i in
    t.pending <- String.sub t.pending (i + 1) (String.length t.pending - i - 1);
    Ok line
  | None -> (
    let buf = Bytes.create 4096 in
    match Unix.read t.fd buf 0 (Bytes.length buf) with
    | 0 -> Error "connection closed by server"
    | n ->
      t.pending <- t.pending ^ Bytes.sub_string buf 0 n;
      read_line t
    | exception Unix.Unix_error (EINTR, _, _) -> read_line t
    | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err))

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < Bytes.length b then begin
      match Unix.write fd b off (Bytes.length b - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
    end
  in
  go 0

let read_reply t =
  let ( let* ) = Result.bind in
  let* header = read_line t in
  (* Reassemble the framed lines and reuse the one decoder. *)
  if String.length header >= 3 && String.sub header 0 3 = "OK " then
    match int_of_string_opt (String.sub header 3 (String.length header - 3)) with
    | None -> Error ("bad OK header: " ^ header)
    | Some n ->
      let rec gather acc i =
        if i = n then Ok (List.rev acc)
        else
          let* line = read_line t in
          gather (line :: acc) (i + 1)
      in
      let* body = gather [] 0 in
      Protocol.decode_reply (String.concat "\n" ((header :: body) @ [ "" ]))
  else Protocol.decode_reply (header ^ "\n")

let request_line t line =
  match write_all t.fd (line ^ "\n") with
  | () -> read_reply t
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)

let request t req = request_line t (Protocol.request_line req)

let with_connection ~socket_path f =
  match connect ~socket_path with
  | Error _ as e -> e
  | Ok t -> Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
