type t = { fd : Unix.file_descr; mutable pending : string }

type addr = Unix_path of string | Tcp of { host : string; port : int }

let addr_to_string = function
  | Unix_path p -> p
  | Tcp { host; port } -> Printf.sprintf "%s:%d" host port

let connect_addr addr =
  match addr with
  | Tcp { host; port } ->
    Result.map (fun fd -> { fd; pending = "" }) (Netaddr.connect ~host ~port)
  | Unix_path socket_path -> (
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
    | () -> Ok { fd; pending = "" }
    | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with _ -> ());
      let detail =
        match err with
        | ECONNREFUSED ->
          (* The file exists but nobody is listening: a daemon died
             without unlinking.  A restarting hgd replaces it. *)
          "stale socket — no server listening (restart hgd to replace it)"
        | ENOENT -> "no such socket — is hgd running?"
        | _ -> Unix.error_message err
      in
      Error (Printf.sprintf "cannot connect to %s: %s" socket_path detail))

let connect ~socket_path = connect_addr (Unix_path socket_path)

let close t = try Unix.close t.fd with _ -> ()

(* A wedged or mid-restart server makes reads fail with EAGAIN instead
   of hanging the client. *)
let set_timeout t timeout =
  if timeout > 0.0 then begin
    try
      Unix.setsockopt_float t.fd SO_RCVTIMEO timeout;
      Unix.setsockopt_float t.fd SO_SNDTIMEO timeout
    with Unix.Unix_error _ -> ()
  end

let rec read_line t =
  match String.index_opt t.pending '\n' with
  | Some i ->
    let line = String.sub t.pending 0 i in
    t.pending <- String.sub t.pending (i + 1) (String.length t.pending - i - 1);
    Ok line
  | None ->
    if String.length t.pending > Protocol.max_line_bytes then
      Error
        (Printf.sprintf "reply line exceeds %d bytes" Protocol.max_line_bytes)
    else begin
      let buf = Bytes.create 4096 in
      match Unix.read t.fd buf 0 (Bytes.length buf) with
      | 0 ->
        if t.pending = "" then Error "connection closed by server"
        else begin
          (* EOF with an unterminated tail buffered: the server (or the
             path to it) died mid-reply.  The old behaviour silently
             dropped those bytes; surface them as a distinct error so
             callers can tell a torn reply from a clean close.  The
             "truncated reply" prefix is part of the contract. *)
          let n = String.length t.pending in
          t.pending <- "";
          Error
            (Printf.sprintf
               "truncated reply: connection closed with %d unterminated bytes" n)
        end
      | n ->
        t.pending <- t.pending ^ Bytes.sub_string buf 0 n;
        read_line t
      | exception Unix.Unix_error (EINTR, _, _) -> read_line t
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        Error "timed out waiting for reply"
      | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
    end

(* Cumulative stall budget for a request write: past this, a wedged
   server is reported instead of blocking forever. *)
let write_stall_budget = 30.0

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let rec go off stalled =
    if off < Bytes.length b then begin
      match Unix.write fd b off (Bytes.length b - off) with
      | n -> go (off + n) 0.0
      | exception Unix.Unix_error (EINTR, _, _) -> go off stalled
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        (* SO_SNDTIMEO expiry or a nonblocking fd: EAGAIN means the
           socket buffer is full, not that the write failed — wait for
           writability and resume, up to a stall budget. *)
        if stalled >= write_stall_budget then
          raise
            (Unix.Unix_error (Unix.EAGAIN, "write", "request stalled past budget"))
        else begin
          (match Unix.select [] [ fd ] [] 0.25 with
          | _ -> ()
          | exception Unix.Unix_error (EINTR, _, _) -> ());
          go off (stalled +. 0.25)
        end
    end
  in
  go 0 0.0

let read_reply_after t header =
  let ( let* ) = Result.bind in
  (* Reassemble the framed lines and reuse the one decoder. *)
  if String.length header >= 3 && String.sub header 0 3 = "OK " then
    match int_of_string_opt (String.sub header 3 (String.length header - 3)) with
    | None -> Error ("bad OK header: " ^ header)
    | Some n ->
      let rec gather acc i =
        if i = n then Ok (List.rev acc)
        else
          let* line = read_line t in
          gather (line :: acc) (i + 1)
      in
      let* body = gather [] 0 in
      Protocol.decode_reply (String.concat "\n" ((header :: body) @ [ "" ]))
  else Protocol.decode_reply (header ^ "\n")

let read_reply t =
  match read_line t with
  | Error _ as e -> e
  | Ok header -> read_reply_after t header

let request_line t line =
  match write_all t.fd (line ^ "\n") with
  | () -> read_reply t
  | exception Unix.Unix_error (err, _, _) -> (
    (* An admission-rejected connection is answered (ERR busy) and
       closed before the server ever reads; the write then fails but
       the reply is already sitting in the receive buffer. *)
    match read_reply t with
    | Ok _ as salvaged -> salvaged
    | Error _ -> Error (Unix.error_message err))

let request t req = request_line t (Protocol.request_line req)

(* Ship bytes verbatim with no terminator and read nothing back: the
   partial-frame tests and the load generator's stalled clients need
   to leave half a request sitting in the server's line buffer. *)
let send_raw t s = write_all t.fd s

(* ---------- pipelined batches ---------- *)

type batch_reply =
  | Items of (Protocol.reply, string) result list
  | Refused of Protocol.reply

let batch_lines t lines =
  let ( let* ) = Result.bind in
  let n = List.length lines in
  if n = 0 then Error "empty batch"
  else if n > Protocol.max_batch_items then
    Error
      (Printf.sprintf "batch of %d items exceeds the protocol cap of %d" n
         Protocol.max_batch_items)
  else begin
    let buf = Buffer.create (64 * (n + 1)) in
    Buffer.add_string buf (Protocol.request_line (Protocol.Batch n));
    Buffer.add_char buf '\n';
    List.iter
      (fun line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n')
      lines;
    let* () =
      match write_all t.fd (Buffer.contents buf) with
      | () -> Ok ()
      | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
    in
    let* first = read_line t in
    match Protocol.parse_item_line first with
    | None ->
      (* Un-tagged header: the server answered the whole batch with a
         single reply (admission rejection, malformed header). *)
      let* reply = read_reply_after t first in
      Ok (Refused reply)
    | Some _ ->
      (* Item replies arrive 0..n-1 in order, each flushed as soon as
         the server computes it — consume them as they land. *)
      let rec items acc i =
        if i >= n then Ok (Items (List.rev acc))
        else
          let* tag = if i = 0 then Ok first else read_line t in
          match Protocol.parse_item_line tag with
          | Some j when j = i ->
            let reply =
              match read_reply t with
              | Ok r -> Ok r
              | Error e -> Error e
            in
            (* A transport failure mid-stream kills the rest of the
               batch: framing is lost once a read breaks. *)
            (match reply with
            | Error e when i < n - 1 ->
              Error (Printf.sprintf "batch item %d: %s" i e)
            | _ -> items (reply :: acc) (i + 1))
          | _ -> Error (Printf.sprintf "bad batch framing: expected ITEM %d, got %S" i tag)
      in
      items [] 0
  end

let batch t reqs = batch_lines t (List.map Protocol.request_line reqs)

let with_connection_addr addr f =
  match connect_addr addr with
  | Error _ as e -> e
  | Ok t -> Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let with_connection ~socket_path f = with_connection_addr (Unix_path socket_path) f

(* ---------- retrying calls ---------- *)

type retry_policy = {
  retries : int;
  base_delay_ms : int;
  max_delay_ms : int;
  timeout : float;
  seed : int;
}

let default_policy =
  { retries = 3; base_delay_ms = 100; max_delay_ms = 5000; timeout = 0.0; seed = 0x6a09 }

let retry_delay_ms ~policy ~prng ~attempt ~hint_ms =
  if attempt < 1 then invalid_arg "Client.retry_delay_ms: attempt < 1";
  let exp = min (attempt - 1) 20 in
  let ceiling = min (policy.base_delay_ms * (1 lsl exp)) policy.max_delay_ms in
  (* Equal jitter over [ceiling/2, ceiling], lifted — not clamped — by
     the server's retry_after_ms hint.  The previous scheme took
     [max hint jittered], which collapses to exactly [hint] whenever
     the hint dominates: every rejected client in a herd slept the
     same server-quoted delay and re-collided.  Instead the hint
     floors the *window*, so jitter survives:

      lo = max hint (ceiling/2)
      hi = min (max ceiling (hint + ceiling/2)) (hint + max_delay_ms)
      delay uniform in [lo, hi]

     Invariants (unit-tested): hint <= delay <= hint + max_delay_ms;
     without a hint this is the plain equal-jitter schedule; the
     window never degenerates while ceiling >= 2. *)
  let hint = match hint_ms with Some h -> max 0 h | None -> 0 in
  let lo = max hint (ceiling / 2) in
  let hi = min (max ceiling (hint + (ceiling / 2))) (hint + policy.max_delay_ms) in
  let hi = max hi lo in
  lo + int_of_float (Hp_util.Prng.float prng *. float_of_int (hi - lo + 1))

let call_addr ?(policy = default_policy) ~addr req =
  let prng = Hp_util.Prng.create policy.seed in
  let attempt_once () =
    match connect_addr addr with
    | Error msg -> `Transport msg
    | Ok t ->
      Fun.protect
        ~finally:(fun () -> close t)
        (fun () ->
          set_timeout t policy.timeout;
          match request t req with
          | Ok (Protocol.Err { code = Protocol.Busy; retry_after_ms; _ } as reply)
            ->
            `Busy (reply, retry_after_ms)
          | Ok reply -> `Done reply
          | Error msg -> `Transport msg)
  in
  let rec go attempt =
    match attempt_once () with
    | `Done reply -> Ok reply
    | (`Busy _ | `Transport _) as outcome ->
      if attempt > policy.retries then
        match outcome with
        | `Busy (reply, _) -> Ok reply
        | `Transport msg ->
          Error (Printf.sprintf "%s (after %d attempts)" msg attempt)
      else begin
        let hint_ms =
          match outcome with `Busy (_, h) -> h | `Transport _ -> None
        in
        let delay = retry_delay_ms ~policy ~prng ~attempt ~hint_ms in
        Unix.sleepf (float_of_int delay /. 1000.0);
        go (attempt + 1)
      end
  in
  go 1

let call ?policy ~socket_path req = call_addr ?policy ~addr:(Unix_path socket_path) req
