module P = Protocol
module Log = Hp_util.Log

external fd_int : Unix.file_descr -> int = "%identity"

type payload =
  | Single of string
  | Batch of { header : string; n : int; items : string list }

type verdict =
  | Dispatched
  | Reply_now of string
  | Reply_close of string
  | Close_now

type mode = Proto | Http_mode

type conn = {
  fd : Unix.file_descr;
  peer : string;
  mutable mode : mode;
  mutable sniffed : bool;
  (* Read side: [pending.[pos..]] is unconsumed input.  Appends keep
     [pos] valid; extraction compacts when it runs out of newlines, so
     consumption is amortized O(bytes). *)
  mutable pending : string;
  mutable pos : int;
  (* A BATCH header waiting for its items: header line, item count,
     items collected so far (count, reversed list). *)
  mutable batch : (string * int * int * string list) option;
  mutable http_lines : string list;  (* reversed request head *)
  (* Write side: whole reply strings plus an offset into the head. *)
  outq : string Queue.t;
  mutable out_off : int;
  mutable out_bytes : int;
  mutable in_flight : bool;
  mutable eof : bool;
  mutable read_paused : bool;
  mutable closing : bool;  (* flush outbox, then close *)
  mutable closed : bool;
  mutable registered : bool;
  mutable cur_mask : int;
}

type t = {
  poller : Poller.t;
  metrics : Metrics.t;
  on_request : conn -> payload -> verdict;
  on_http : peer:string -> string list -> string;
  listeners : (Unix.file_descr * [ `Protocol | `Http ]) list;
  conns : (int, conn) Hashtbl.t;
  (* Mirror of [Hashtbl.length conns], readable without [mu]: the
     /metrics gauge is rendered from inside the HTTP handler, which
     already runs under the loop mutex. *)
  conn_count : int Atomic.t;
  mu : Mutex.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  max_connections : int;
  max_outbox_bytes : int;
  quiescing : bool Atomic.t;
  stopping : bool Atomic.t;
  mutable listeners_closed : bool;
  mutable domain : unit Domain.t option;
}

(* More than a max line plus a read chunk buffered without a complete
   frame means either an oversized line (rejected) or aggressive
   pipelining while a request is in flight (reads pause: that is the
   backpressure). *)
let max_buffered = P.max_line_bytes + (64 * 1024)

let peer_string fd =
  match Unix.getpeername fd with
  | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | Unix.ADDR_UNIX s -> if s = "" then "unix" else s
  | exception _ -> "?"

let buffered c = String.length c.pending - c.pos

(* ---------- poller interest ---------- *)

let want_mask c =
  (if (not c.eof) && (not c.read_paused) && not c.closing then Poller.read else 0)
  lor if c.out_bytes > 0 then Poller.write else 0

let update_interest t c =
  if not c.closed then begin
    let m = want_mask c in
    if m = 0 then begin
      if c.registered then begin
        Poller.remove t.poller c.fd;
        c.registered <- false;
        c.cur_mask <- 0
      end
    end
    else if not c.registered then begin
      Poller.add t.poller c.fd m;
      c.registered <- true;
      c.cur_mask <- m
    end
    else if m <> c.cur_mask then begin
      Poller.modify t.poller c.fd m;
      c.cur_mask <- m
    end
  end

(* ---------- connection teardown ---------- *)

let close_conn t c ~abnormal =
  if not c.closed then begin
    c.closed <- true;
    if c.registered then Poller.remove t.poller c.fd;
    c.registered <- false;
    Hashtbl.remove t.conns (fd_int c.fd);
    Atomic.decr t.conn_count;
    (try Unix.close c.fd with _ -> ());
    if abnormal then Metrics.incr t.metrics "client_disconnects"
  end

(* ---------- write path ---------- *)

let rec flush_conn t c =
  if not c.closed then
    match Queue.peek_opt c.outq with
    | None ->
      if c.closing then close_conn t c ~abnormal:false else update_interest t c
    | Some chunk -> (
      let len = String.length chunk - c.out_off in
      match Unix.write_substring c.fd chunk c.out_off len with
      | n ->
        c.out_bytes <- c.out_bytes - n;
        if n = len then begin
          ignore (Queue.pop c.outq);
          c.out_off <- 0
        end
        else c.out_off <- c.out_off + n;
        flush_conn t c
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        update_interest t c
      | exception Unix.Unix_error (EINTR, _, _) -> flush_conn t c
      | exception Unix.Unix_error (_, _, _) ->
        (* EPIPE/ECONNRESET and friends: the peer is gone with a reply
           owed — exactly what client_disconnects counts. *)
        close_conn t c ~abnormal:true)

let enqueue t c s =
  if (not c.closed) && s <> "" then begin
    Queue.push s c.outq;
    c.out_bytes <- c.out_bytes + String.length s;
    if c.out_bytes > t.max_outbox_bytes then begin
      Metrics.incr t.metrics "slow_client_overflows";
      Log.warn ~comp:"event_loop"
        ~fields:[ ("peer", c.peer); ("outbox_bytes", string_of_int c.out_bytes) ]
        "slow client dropped: outbox over cap";
      close_conn t c ~abnormal:false
    end
  end

(* ---------- framing ---------- *)

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let extract_line c =
  match String.index_from_opt c.pending c.pos '\n' with
  | Some i ->
    if i - c.pos > P.max_line_bytes then `Oversized
    else begin
      let line = String.sub c.pending c.pos (i - c.pos) in
      c.pos <- i + 1;
      `Line (strip_cr line)
    end
  | None ->
    if c.pos > 0 then begin
      c.pending <- String.sub c.pending c.pos (buffered c);
      c.pos <- 0
    end;
    if String.length c.pending > P.max_line_bytes then `Oversized else `None

let oversized_reply =
  P.encode_reply
    (P.err P.Bad_request
       (Printf.sprintf "request line exceeds %d bytes" P.max_line_bytes))

let is_http_method = function
  | "GET" | "HEAD" | "POST" | "PUT" | "DELETE" | "OPTIONS" -> true
  | _ -> false

let dispatch t c payload =
  c.in_flight <- true;
  match t.on_request c payload with
  | Dispatched -> ()
  | Reply_now s ->
    c.in_flight <- false;
    enqueue t c s;
    flush_conn t c
  | Reply_close s ->
    c.in_flight <- false;
    enqueue t c s;
    c.closing <- true;
    flush_conn t c
  | Close_now ->
    c.in_flight <- false;
    close_conn t c ~abnormal:false

let proto_line t c line =
  match c.batch with
  | Some (header, n, got, acc) ->
    let acc = line :: acc in
    let got = got + 1 in
    if got >= n then begin
      c.batch <- None;
      dispatch t c (Batch { header; n; items = List.rev acc })
    end
    else c.batch <- Some (header, n, got, acc)
  | None ->
    if String.trim line = "" then ()
    else (
      match P.parse_request line with
      | Ok (P.Batch n) -> c.batch <- Some (line, n, 0, [])
      | Ok _ | Error _ -> dispatch t c (Single line))

let serve_http t c =
  let lines = List.rev c.http_lines in
  c.http_lines <- [];
  Metrics.incr t.metrics "http_requests";
  let resp =
    try t.on_http ~peer:c.peer lines
    with e ->
      Log.warn ~comp:"event_loop"
        ~fields:[ ("peer", c.peer); ("exn", Printexc.to_string e) ]
        "http handler exception";
      Http.response ~status:500 "internal error\n"
  in
  enqueue t c resp;
  c.closing <- true;
  flush_conn t c

let http_line t c line =
  if String.trim line = "" then begin
    if c.http_lines <> [] then serve_http t c
  end
  else if List.length c.http_lines > 100 then begin
    enqueue t c (Http.response ~status:400 "too many header lines\n");
    c.closing <- true;
    flush_conn t c
  end
  else c.http_lines <- line :: c.http_lines

(* Extract and dispatch as many frames as the in-flight limit allows;
   then handle EOF leftovers and read-pause bookkeeping. *)
let rec process_frames t c =
  if (not c.closed) && (not c.closing) && not c.in_flight then begin
    match extract_line c with
    | `Oversized ->
      Metrics.incr t.metrics "oversized_requests";
      if c.mode = Proto then enqueue t c oversized_reply
      else enqueue t c (Http.response ~status:400 "request too large\n");
      c.closing <- true;
      flush_conn t c
    | `None -> at_input_edge t c
    | `Line line ->
      (match c.mode with
      | Http_mode -> http_line t c line
      | Proto ->
        if not c.sniffed then begin
          c.sniffed <- true;
          match Http.parse_request_line line with
          | Some r when is_http_method r.Http.meth ->
            c.mode <- Http_mode;
            http_line t c line
          | _ -> proto_line t c line
        end
        else proto_line t c line);
      process_frames t c
  end

and at_input_edge t c =
  if c.eof then begin
    (* Mirror the blocking path's EOF contract: a final unterminated
       protocol line is still served (then the connection closes); a
       half-collected batch or HTTP head without terminator is not
       worth guessing about — except a complete HTTP head whose client
       shut down the write side, which is answered anyway. *)
    if c.mode = Proto && c.batch = None && buffered c > 0 then begin
      let line = strip_cr (String.sub c.pending c.pos (buffered c)) in
      c.pending <- "";
      c.pos <- 0;
      proto_line t c line;
      if not c.in_flight then begin
        c.closing <- true;
        flush_conn t c
      end
    end
    else if c.mode = Http_mode && c.http_lines <> [] && not c.in_flight then
      serve_http t c
    else begin
      c.closing <- true;
      flush_conn t c
    end
  end
  else if c.read_paused && buffered c < max_buffered then begin
    c.read_paused <- false;
    update_interest t c
  end

(* ---------- read path ---------- *)

let rec read_input t c budget =
  if (not c.closed) && not c.eof then begin
    if buffered c > max_buffered then begin
      c.read_paused <- true;
      update_interest t c
    end
    else begin
      let buf = Bytes.create 16384 in
      match Unix.read c.fd buf 0 (Bytes.length buf) with
      | 0 ->
        c.eof <- true;
        update_interest t c;
        process_frames t c;
        (* EOF with nothing in flight and nothing owed: plain close. *)
        if (not c.closed) && (not c.in_flight) && c.out_bytes = 0 && c.closing
        then close_conn t c ~abnormal:false
      | n ->
        c.pending <- c.pending ^ Bytes.sub_string buf 0 n;
        process_frames t c;
        if budget > 1 then read_input t c (budget - 1)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (EINTR, _, _) -> read_input t c budget
      | exception Unix.Unix_error (_, _, _) ->
        close_conn t c ~abnormal:(c.in_flight || c.out_bytes > 0)
    end
  end

(* ---------- accept path ---------- *)

let add_conn t fd kind =
  Unix.set_nonblock fd;
  (try Unix.setsockopt fd TCP_NODELAY true with _ -> ());
  let c =
    {
      fd;
      peer = peer_string fd;
      mode = (match kind with `Protocol -> Proto | `Http -> Http_mode);
      sniffed = (kind = `Http);
      pending = "";
      pos = 0;
      batch = None;
      http_lines = [];
      outq = Queue.create ();
      out_off = 0;
      out_bytes = 0;
      in_flight = false;
      eof = false;
      read_paused = false;
      closing = false;
      closed = false;
      registered = false;
      cur_mask = 0;
    }
  in
  Hashtbl.replace t.conns (fd_int fd) c;
  Atomic.incr t.conn_count;
  update_interest t c

let rec accept_all t lfd kind =
  match Unix.accept ~cloexec:true lfd with
  | fd, _ ->
    if
      Atomic.get t.quiescing || Atomic.get t.stopping
      || Hashtbl.length t.conns >= t.max_connections
    then begin
      if Hashtbl.length t.conns >= t.max_connections then
        Metrics.incr t.metrics "conn_limit_rejections";
      try Unix.close fd with _ -> ()
    end
    else begin
      Metrics.incr t.metrics
        (match kind with
        | `Protocol -> "tcp_connections"
        | `Http -> "http_connections");
      add_conn t fd kind
    end;
    accept_all t lfd kind
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (EINTR, _, _) -> accept_all t lfd kind
  | exception Unix.Unix_error (_, _, _) -> ()

(* ---------- the loop ---------- *)

let drain_wake t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r buf 0 (Bytes.length buf) with
    | n when n > 0 -> go ()
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let wake t =
  try ignore (Unix.write_substring t.wake_w "w" 0 1)
  with Unix.Unix_error _ -> ()

let close_listeners t =
  if not t.listeners_closed then begin
    t.listeners_closed <- true;
    List.iter
      (fun (fd, _) ->
        Poller.remove t.poller fd;
        try Unix.close fd with _ -> ())
      t.listeners
  end

let handle_event t (fd, flags) =
  if fd = t.wake_r then drain_wake t
  else
    match List.find_opt (fun (lfd, _) -> lfd = fd) t.listeners with
    | Some (lfd, kind) -> if not t.listeners_closed then accept_all t lfd kind
    | None -> (
      match Hashtbl.find_opt t.conns (fd_int fd) with
      | None -> ()
      | Some c ->
        if flags land Poller.write <> 0 then flush_conn t c;
        if (not c.closed) && flags land Poller.read <> 0 then read_input t c 8)

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* On stop, give pending outboxes a short window to reach the kernel
   (a SHUTDOWN client deserves its reply), then tear everything down. *)
let drain_and_close t =
  let deadline = Unix.gettimeofday () +. 1.0 in
  let rec go () =
    let owed =
      locked t (fun () ->
          close_listeners t;
          Hashtbl.fold (fun _ c acc -> acc || c.out_bytes > 0) t.conns false)
    in
    if owed && Unix.gettimeofday () < deadline then begin
      let evs = Poller.wait t.poller ~timeout_ms:50 in
      locked t (fun () -> List.iter (handle_event t) evs);
      go ()
    end
  in
  go ();
  locked t (fun () ->
      let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
      List.iter (fun c -> close_conn t c ~abnormal:false) cs;
      Poller.remove t.poller t.wake_r;
      (try Unix.close t.wake_r with _ -> ());
      (try Unix.close t.wake_w with _ -> ());
      Poller.close t.poller)

let run t =
  let rec go () =
    let evs = Poller.wait t.poller ~timeout_ms:250 in
    locked t (fun () ->
        List.iter (handle_event t) evs;
        if Atomic.get t.quiescing then close_listeners t);
    if Atomic.get t.stopping then drain_and_close t else go ()
  in
  go ()

(* ---------- public API ---------- *)

let create ?backend ?(max_connections = 1024) ?(max_outbox_bytes = 16 lsl 20)
    ~metrics ~on_request ~on_http ~listeners () =
  let poller = Poller.create ?backend () in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  Poller.add poller wake_r Poller.read;
  List.iter
    (fun (fd, _) ->
      Unix.set_nonblock fd;
      Poller.add poller fd Poller.read)
    listeners;
  let t =
    {
      poller;
      metrics;
      on_request;
      on_http;
      listeners;
      conns = Hashtbl.create 64;
      conn_count = Atomic.make 0;
      mu = Mutex.create ();
      wake_r;
      wake_w;
      max_connections;
      max_outbox_bytes;
      quiescing = Atomic.make false;
      stopping = Atomic.make false;
      listeners_closed = false;
      domain = None;
    }
  in
  t.domain <- Some (Domain.spawn (fun () -> run t));
  Log.info ~comp:"event_loop"
    ~fields:
      [
        ("backend", Poller.backend poller);
        ("listeners", string_of_int (List.length listeners));
      ]
    "event loop started";
  t

let send t c s =
  locked t (fun () ->
      if not c.closed then begin
        enqueue t c s;
        flush_conn t c
      end)

let finish t c ~close =
  locked t (fun () ->
      if not c.closed then begin
        c.in_flight <- false;
        if close then begin
          c.closing <- true;
          flush_conn t c
        end
        else begin
          process_frames t c;
          if not c.closed then update_interest t c
        end
      end)

let quiesce t =
  if not (Atomic.exchange t.quiescing true) then wake t

let stop t =
  Atomic.set t.quiescing true;
  if not (Atomic.exchange t.stopping true) then wake t

let join t =
  match t.domain with
  | Some d ->
    t.domain <- None;
    Domain.join d
  | None -> ()

let connections t = Atomic.get t.conn_count
let backend t = Poller.backend t.poller
let peer c = c.peer
