type weighting = Uniform | Degree | Degree_squared

type analysis =
  | Stats
  | Kcore of int option
  | Cover of { weighting : weighting; r : int }
  | Storage
  | Powerlaw

type metrics_format = Table | Prometheus

type request =
  | Load of string
  | Analyze of { dataset : string; analysis : analysis }
  | Add_vertex of { dataset : string; name : string }
  | Add_edge of { dataset : string; name : string; members : int list }
  | Del_edge of { dataset : string; edge : int }
  | Checkpoint of string
  | Datasets
  | Info
  | Metrics of metrics_format
  | Trace of int option
  | Evict of string option
  | Ping
  | Shutdown
  | Batch of int

type error_code =
  | Bad_request
  | Unknown_dataset
  | Parse_error
  | Io_error
  | Timeout
  | Busy
  | Internal

type reply =
  | Ok of (string * string) list
  | Err of { code : error_code; message : string; retry_after_ms : int option }

let err ?retry_after_ms code message = Err { code; message; retry_after_ms }

let weighting_of_string = function
  | "uniform" -> Result.Ok Uniform
  | "degree" -> Result.Ok Degree
  | "degree2" -> Result.Ok Degree_squared
  | s -> Result.Error (Printf.sprintf "unknown weighting %S (uniform|degree|degree2)" s)

let weighting_to_string = function
  | Uniform -> "uniform"
  | Degree -> "degree"
  | Degree_squared -> "degree2"

let error_code_to_string = function
  | Bad_request -> "bad-request"
  | Unknown_dataset -> "unknown-dataset"
  | Parse_error -> "parse-error"
  | Io_error -> "io-error"
  | Timeout -> "timeout"
  | Busy -> "busy"
  | Internal -> "internal"

let error_code_of_string = function
  | "bad-request" -> Some Bad_request
  | "unknown-dataset" -> Some Unknown_dataset
  | "parse-error" -> Some Parse_error
  | "io-error" -> Some Io_error
  | "timeout" -> Some Timeout
  | "busy" -> Some Busy
  | "internal" -> Some Internal
  | _ -> None

(* Upper bound on the number of requests one BATCH may carry: keeps a
   single connection from parking an unbounded amount of work on one
   worker slot. *)
let max_batch_items = 1024

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let int_arg what s =
  match int_of_string_opt s with
  | Some n -> Result.Ok n
  | None -> Result.Error (Printf.sprintf "%s: expected an integer, got %S" what s)

let parse_request line =
  let ( let* ) = Result.bind in
  match tokens line with
  | [] -> Result.Error "empty request"
  | verb :: args ->
    (match (String.uppercase_ascii verb, args) with
    | "LOAD", [ path ] -> Result.Ok (Load path)
    | "LOAD", _ -> Result.Error "LOAD takes exactly one path"
    | "STATS", [ ds ] -> Result.Ok (Analyze { dataset = ds; analysis = Stats })
    | "STATS", _ -> Result.Error "STATS takes exactly one dataset"
    | "KCORE", [ ds ] -> Result.Ok (Analyze { dataset = ds; analysis = Kcore None })
    | "KCORE", [ ds; k ] ->
      let* k = int_arg "KCORE" k in
      if k < 0 then Result.Error "KCORE: k must be >= 0"
      else Result.Ok (Analyze { dataset = ds; analysis = Kcore (Some k) })
    | "KCORE", _ -> Result.Error "KCORE takes a dataset and an optional k"
    | "COVER", ds :: rest ->
      let* weighting, r =
        match rest with
        | [] -> Result.Ok (Uniform, 1)
        | [ w ] ->
          let* w = weighting_of_string w in
          Result.Ok (w, 1)
        | [ w; r ] ->
          let* w = weighting_of_string w in
          let* r = int_arg "COVER" r in
          if r < 1 then Result.Error "COVER: r must be >= 1" else Result.Ok (w, r)
        | _ -> Result.Error "COVER takes a dataset, an optional weighting and an optional r"
      in
      Result.Ok (Analyze { dataset = ds; analysis = Cover { weighting; r } })
    | "COVER", [] -> Result.Error "COVER takes a dataset"
    | "STORAGE", [ ds ] -> Result.Ok (Analyze { dataset = ds; analysis = Storage })
    | "STORAGE", _ -> Result.Error "STORAGE takes exactly one dataset"
    | "POWERLAW", [ ds ] -> Result.Ok (Analyze { dataset = ds; analysis = Powerlaw })
    | "POWERLAW", _ -> Result.Error "POWERLAW takes exactly one dataset"
    | "ADDVERTEX", [ ds; name ] -> Result.Ok (Add_vertex { dataset = ds; name })
    | "ADDVERTEX", _ -> Result.Error "ADDVERTEX takes a dataset and a vertex name"
    | "ADDEDGE", ds :: name :: members ->
      let* members =
        List.fold_left
          (fun acc m ->
            let* acc = acc in
            let* v = int_arg "ADDEDGE" m in
            if v < 0 then Result.Error "ADDEDGE: member ids must be >= 0"
            else Result.Ok (v :: acc))
          (Result.Ok []) members
      in
      Result.Ok (Add_edge { dataset = ds; name; members = List.rev members })
    | "ADDEDGE", _ ->
      Result.Error "ADDEDGE takes a dataset, an edge name, and member vertex ids"
    | "DELEDGE", [ ds; e ] ->
      let* e = int_arg "DELEDGE" e in
      if e < 0 then Result.Error "DELEDGE: edge id must be >= 0"
      else Result.Ok (Del_edge { dataset = ds; edge = e })
    | "DELEDGE", _ -> Result.Error "DELEDGE takes a dataset and an edge id"
    | "CHECKPOINT", [ ds ] -> Result.Ok (Checkpoint ds)
    | "CHECKPOINT", _ -> Result.Error "CHECKPOINT takes exactly one dataset"
    | "DATASETS", [] -> Result.Ok Datasets
    | "INFO", [] -> Result.Ok Info
    | "INFO", _ -> Result.Error "INFO takes no arguments"
    | "METRICS", [] -> Result.Ok (Metrics Table)
    | "METRICS", [ fmt ] ->
      (match String.lowercase_ascii fmt with
      | "table" | "text" -> Result.Ok (Metrics Table)
      | "prom" | "prometheus" -> Result.Ok (Metrics Prometheus)
      | other ->
        Result.Error (Printf.sprintf "unknown metrics format %S (table|prom)" other))
    | "METRICS", _ -> Result.Error "METRICS takes an optional format (table|prom)"
    | "TRACE", [] -> Result.Ok (Trace None)
    | "TRACE", [ n ] ->
      let* n = int_arg "TRACE" n in
      if n < 1 then Result.Error "TRACE: n must be >= 1"
      else Result.Ok (Trace (Some n))
    | "TRACE", _ -> Result.Error "TRACE takes an optional count"
    | "EVICT", [] -> Result.Ok (Evict None)
    | "EVICT", [ ds ] -> Result.Ok (Evict (Some ds))
    | "EVICT", _ -> Result.Error "EVICT takes at most one dataset"
    | "PING", [] -> Result.Ok Ping
    | "SHUTDOWN", [] -> Result.Ok Shutdown
    | "BATCH", [ n ] ->
      let* n = int_arg "BATCH" n in
      if n < 1 then Result.Error "BATCH: n must be >= 1"
      else if n > max_batch_items then
        Result.Error
          (Printf.sprintf "BATCH: n must be <= %d" max_batch_items)
      else Result.Ok (Batch n)
    | "BATCH", _ -> Result.Error "BATCH takes exactly one count"
    | v, _ -> Result.Error (Printf.sprintf "unknown verb %S" v))

let analysis_args = function
  | Stats -> "STATS", []
  | Kcore None -> "KCORE", []
  | Kcore (Some k) -> "KCORE", [ string_of_int k ]
  | Cover { weighting; r } -> "COVER", [ weighting_to_string weighting; string_of_int r ]
  | Storage -> "STORAGE", []
  | Powerlaw -> "POWERLAW", []

let request_line = function
  | Load path -> "LOAD " ^ path
  | Analyze { dataset; analysis } ->
    let verb, args = analysis_args analysis in
    String.concat " " (verb :: dataset :: args)
  | Add_vertex { dataset; name } ->
    String.concat " " [ "ADDVERTEX"; dataset; name ]
  | Add_edge { dataset; name; members } ->
    String.concat " "
      ("ADDEDGE" :: dataset :: name :: List.map string_of_int members)
  | Del_edge { dataset; edge } ->
    String.concat " " [ "DELEDGE"; dataset; string_of_int edge ]
  | Checkpoint ds -> "CHECKPOINT " ^ ds
  | Datasets -> "DATASETS"
  | Info -> "INFO"
  | Metrics Table -> "METRICS"
  | Metrics Prometheus -> "METRICS prom"
  | Trace None -> "TRACE"
  | Trace (Some n) -> "TRACE " ^ string_of_int n
  | Evict None -> "EVICT"
  | Evict (Some ds) -> "EVICT " ^ ds
  | Ping -> "PING"
  | Shutdown -> "SHUTDOWN"
  | Batch n -> "BATCH " ^ string_of_int n

let analysis_key = function
  | Stats -> "stats"
  | Kcore None -> "kcore k=max"
  | Kcore (Some k) -> Printf.sprintf "kcore k=%d" k
  | Cover { weighting; r } ->
    Printf.sprintf "cover w=%s r=%d" (weighting_to_string weighting) r
  | Storage -> "storage"
  | Powerlaw -> "powerlaw"

(* One line cap shared by the server's request reader and the
   client's reply reader, so neither side can be ballooned by a peer
   that never sends a newline. *)
let max_line_bytes = 1 lsl 20

(* Replies are framed by line count, so no payload byte may introduce a
   line or field separator. *)
let sanitize s =
  String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s

let retry_hint_prefix = "retry_after_ms="

let encode_reply = function
  | Ok kvs ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf (Printf.sprintf "OK %d\n" (List.length kvs));
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf (sanitize k);
        Buffer.add_char buf '\t';
        Buffer.add_string buf (sanitize v);
        Buffer.add_char buf '\n')
      kvs;
    Buffer.contents buf
  | Err { code; message; retry_after_ms } ->
    let hint =
      match retry_after_ms with
      | None -> ""
      | Some ms -> Printf.sprintf "%s%d " retry_hint_prefix ms
    in
    Printf.sprintf "ERR %s %s%s\n" (error_code_to_string code) hint
      (sanitize message)

(* Batched replies interleave a tag line before each sub-reply:
   ITEM <i>, then the standard OK/ERR framing for item i.  Items are
   written in request order, each as soon as it is computed, so a
   client can consume reply i while the server still works on i+1. *)
let item_line i = Printf.sprintf "ITEM %d" i

let parse_item_line line =
  match tokens line with
  | [ tag; i ] when String.uppercase_ascii tag = "ITEM" -> int_of_string_opt i
  | _ -> None

let decode_reply text =
  match String.split_on_char '\n' text with
  | [] -> Result.Error "empty reply"
  | header :: rest ->
    if String.length header >= 3 && String.sub header 0 3 = "OK " then begin
      match int_of_string_opt (String.sub header 3 (String.length header - 3)) with
      | None -> Result.Error ("bad OK header: " ^ header)
      | Some n ->
        let rec take acc i = function
          | _ when i = n -> Result.Ok (Ok (List.rev acc))
          | [] -> Result.Error "truncated reply payload"
          | line :: rest ->
            (match String.index_opt line '\t' with
            | None -> Result.Error ("payload line without tab: " ^ line)
            | Some t ->
              let k = String.sub line 0 t in
              let v = String.sub line (t + 1) (String.length line - t - 1) in
              take ((k, v) :: acc) (i + 1) rest)
        in
        take [] 0 rest
    end
    else if String.length header >= 4 && String.sub header 0 4 = "ERR " then begin
      let body = String.sub header 4 (String.length header - 4) in
      (* A machine-readable hint token may sit between code and
         message: ERR busy retry_after_ms=250 <message>. *)
      let split_hint s =
        let plen = String.length retry_hint_prefix in
        if String.length s >= plen && String.sub s 0 plen = retry_hint_prefix then begin
          let tok_end =
            match String.index_opt s ' ' with Some i -> i | None -> String.length s
          in
          match int_of_string_opt (String.sub s plen (tok_end - plen)) with
          | Some ms when ms >= 0 ->
            let rest =
              if tok_end >= String.length s then ""
              else String.sub s (tok_end + 1) (String.length s - tok_end - 1)
            in
            (Some ms, rest)
          | _ -> (None, s)
        end
        else (None, s)
      in
      match String.index_opt body ' ' with
      | None ->
        (match error_code_of_string body with
        | Some code -> Result.Ok (Err { code; message = ""; retry_after_ms = None })
        | None -> Result.Error ("unknown error code: " ^ body))
      | Some sp ->
        let code_s = String.sub body 0 sp in
        let rest = String.sub body (sp + 1) (String.length body - sp - 1) in
        (match error_code_of_string code_s with
        | Some code ->
          let retry_after_ms, message = split_hint rest in
          Result.Ok (Err { code; message; retry_after_ms })
        | None -> Result.Error ("unknown error code: " ^ code_s))
    end
    else Result.Error ("bad reply header: " ^ header)
