(** Per-request tracing: every request gets a trace id and a span per
    pipeline stage — queue wait (accept to worker pickup), parse,
    cache lookup, compute, reply write — and finished traces land in a
    bounded ring.  [TRACE \[n\]] answers with the slowest retained
    requests, so "why was that slow?" is answerable without restarting
    the daemon with profiling on.

    A collector is shared by all workers (mutex-serialized ring pushes,
    atomic id allocation); an {!active} trace belongs to the single
    worker serving the request and needs no locking. *)

type stage = Queue | Parse | Cache | Compute | Write

val stage_name : stage -> string
(** ["queue"], ["parse"], ["cache"], ["compute"], ["write"] — the span
    names used in logs and the [TRACE] payload. *)

type record = {
  id : int;             (** process-unique, monotonically increasing *)
  request : string;     (** request line, truncated to 200 bytes *)
  status : string;      (** ["ok"], ["err-<code>"], or ["write-error"] *)
  started_at : float;   (** epoch seconds at worker pickup *)
  total_us : int;       (** queue wait + service time, microseconds *)
  queue_us : int;
  parse_us : int;
  cache_us : int;
  compute_us : int;
  write_us : int;
  cached : bool;        (** answered from the result cache *)
}

type active

type t

val create : ?capacity:int -> unit -> t
(** Ring of the [capacity] (default 256) most recent finished traces. *)

val start : t -> ?queue_us:int -> request:string -> unit -> active
(** Allocate a trace id and start the clock.  [queue_us] is the accept
    to worker-pickup wait, measured by the caller before [start]. *)

val id : active -> int

val set_cached : active -> bool -> unit

val timed : active -> stage -> (unit -> 'a) -> 'a
(** Run a closure, adding its wall time to the stage's span.  Re-entry
    accumulates; an exception is re-raised after charging the time. *)

val finish : t -> active -> status:string -> record
(** Seal the trace (total = queue wait + elapsed since [start]) and
    push it into the ring, returning the sealed record. *)

val recent : t -> int -> record list
(** Up to [n] most recent finished traces, newest first. *)

val slowest : t -> int -> record list
(** Up to [n] retained traces by decreasing [total_us]. *)
