(** Nonblocking TCP front end: one loop domain multiplexes every
    socket with {!Poller} (epoll, or select as fallback), does the
    line framing in user space, and hands fully-framed requests to the
    worker pool.  Compute never runs on the loop; the loop never
    blocks on a client.

    Per-connection state is a read buffer (bytes that arrived but do
    not yet form a complete frame) and a write outbox (reply bytes the
    kernel has not accepted yet).  A frame is a request line, or — for
    [BATCH n] — the header plus its [n] item lines.  At most one frame
    per connection is in flight at a time, which preserves the
    protocol's reply-ordering guarantee; further pipelined frames wait
    in the read buffer.  A connection whose read buffer outgrows the
    frame cap is answered with an error and closed; one whose outbox
    outgrows [max_outbox_bytes] is dropped as a slow consumer
    ([slow_client_overflows]).  Writes that fail with
    [EPIPE]/[ECONNRESET] close the connection and count
    [client_disconnects]; [EAGAIN] parks the bytes until the poller
    reports writability again, so a stalled reader costs memory, never
    a worker or the loop.

    Listeners tagged [`Http] (and any protocol-port connection whose
    first line is an HTTP request line) are served by the [on_http]
    callback: one request per connection, response flushed, closed. *)

type t
type conn

(** What the loop parsed off the wire for the workers. *)
type payload =
  | Single of string  (** one request line, CR/LF stripped *)
  | Batch of { header : string; n : int; items : string list }
      (** a [BATCH n] header plus exactly [n] item lines *)

(** What to do with a framed request, decided synchronously by the
    server (admission control lives there).  [Dispatched] means a
    worker owns it and will call {!send} then {!finish}; the reply
    variants carry pre-encoded bytes the loop writes itself. *)
type verdict =
  | Dispatched
  | Reply_now of string  (** write, keep the connection open *)
  | Reply_close of string  (** write, then close *)
  | Close_now  (** close without a reply *)

(** [create ~metrics ~on_request ~on_http ~listeners ()] takes
    ownership of the (already bound and listening) [listeners] and
    spawns the loop domain.  [on_request] is called on the loop domain
    with the loop lock held — it must only enqueue work and return.
    [on_http] receives the raw request head (request line first) and
    returns the full response bytes. *)
val create :
  ?backend:[ `Auto | `Select ] ->
  ?max_connections:int ->
  ?max_outbox_bytes:int ->
  metrics:Metrics.t ->
  on_request:(conn -> payload -> verdict) ->
  on_http:(peer:string -> string list -> string) ->
  listeners:(Unix.file_descr * [ `Protocol | `Http ]) list ->
  unit ->
  t

(** Queue reply bytes on a connection and flush as far as the kernel
    allows.  Callable from any thread.  Silently dropped if the
    connection died meanwhile. *)
val send : t -> conn -> string -> unit

(** Mark the in-flight request done.  [close:true] flushes the outbox
    and closes (SHUTDOWN, fatal framing errors); otherwise the next
    buffered frame, if any, is dispatched.  Callable from any thread. *)
val finish : t -> conn -> close:bool -> unit

(** Stop accepting new connections; established ones keep being
    served.  Idempotent. *)
val quiesce : t -> unit

(** Ask the loop to exit: listeners and connections are closed after a
    short best-effort flush of pending outboxes (so a SHUTDOWN reply
    still reaches its client).  Idempotent; [join] waits for it. *)
val stop : t -> unit

val join : t -> unit

(** Currently-open client connections (gauge). *)
val connections : t -> int

(** Backend actually in use: ["epoll"] or ["select"]. *)
val backend : t -> string

(** Peer address of a connection, for logs ("ip:port" or socket path). *)
val peer : conn -> string
