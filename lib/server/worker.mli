(** A fixed pool of worker domains draining a shared job queue.

    The accept loop hands each client connection to the pool; workers
    run the handler to completion and pull the next job.  Jobs are
    processed FIFO; a handler exception is swallowed (the handler is
    expected to do its own error accounting), so one bad connection
    never kills a worker.

    Sizing follows {!Hp_util.Parallel.recommended_domains} by default —
    the same domain budget the analysis kernels use for their fork-join
    phases. *)

type 'a t

val create : ?workers:int -> ('a -> unit) -> 'a t
(** Spawns the worker domains immediately.  [workers] defaults to
    [Hp_util.Parallel.recommended_domains ()]; raises
    [Invalid_argument] when [workers < 1]. *)

val size : 'a t -> int

val pending : 'a t -> int
(** Jobs queued but not yet picked up. *)

val submit : 'a t -> 'a -> bool
(** Enqueue a job; [false] once [shutdown] has begun (the job is
    dropped and the caller should dispose of it). *)

val shutdown : 'a t -> unit
(** Stop accepting jobs, finish everything already queued, and join
    the domains.  Idempotent. *)
