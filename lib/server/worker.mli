(** A supervised, bounded pool of worker domains draining a shared
    job queue.

    The accept loop hands each client connection to the pool; workers
    run the handler to completion and pull the next job.  Jobs are
    processed FIFO.

    {b Exception containment.}  A handler exception is captured, not
    swallowed: the pool counts it ({!exceptions}) and reports it
    through [on_exception] (the server logs it and bumps the
    [worker_exceptions] metric), then the worker moves to the next
    job.  Exceptions matching the [lethal] predicate (the fault
    harness's {!Hp_util.Fault.Killed}, by default nothing) instead
    kill the worker domain; a supervisor domain detects the death,
    respawns a replacement into the same slot, and bumps
    {!restarts} — so a crashed worker costs one in-flight job, never
    pool capacity.

    {b Backpressure.}  The queue is bounded by [max_pending]:
    {!submit} refuses jobs beyond it with [`Busy], carrying the
    current depth so the caller can derive a retry hint.

    Sizing follows {!Hp_util.Parallel.recommended_domains} by default —
    the same domain budget the analysis kernels use for their fork-join
    phases. *)

type 'a t

val create :
  ?workers:int ->
  ?max_pending:int ->
  ?lethal:(exn -> bool) ->
  ?on_exception:(exn -> unit) ->
  ('a -> unit) ->
  'a t
(** Spawns the worker domains and the supervisor immediately.
    [workers] defaults to [Hp_util.Parallel.recommended_domains ()];
    raises [Invalid_argument] when [workers < 1].  [max_pending]
    (default 0 = unbounded) caps the queue of jobs not yet picked up.
    [lethal] (default [fun _ -> false]) selects the exceptions that
    kill a worker instead of being captured.  [on_exception] is called
    in the worker domain for every captured handler exception; its own
    exceptions are discarded. *)

val size : 'a t -> int

val pending : 'a t -> int
(** Jobs queued but not yet picked up. *)

val exceptions : 'a t -> int
(** Handler exceptions captured so far. *)

val restarts : 'a t -> int
(** Worker domains respawned after a lethal crash. *)

val submit : 'a t -> 'a -> [ `Accepted | `Busy of int | `Stopping ]
(** Enqueue a job.  [`Busy pending] when the bounded queue is full
    (the job is dropped; [pending] is the queue depth observed);
    [`Stopping] once [shutdown] has begun.  In both refusal cases the
    caller should dispose of the job. *)

val shutdown : 'a t -> unit
(** Stop accepting jobs, finish everything already queued, and join
    the supervisor and worker domains.  Idempotent. *)
