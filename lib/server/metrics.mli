(** Server observability: monotonic named counters plus a latency
    histogram, rendered as the [METRICS] reply payload.

    Latencies are tallied into power-of-two microsecond buckets
    (bucket i counts requests that took [2^i, 2^{i+1}) us); the
    snapshot turns the buckets into an {!Hp_util.Int_histogram} over
    bucket exponents to derive count / percentile / max lines, so the
    recording path is O(1) per request and a reply is a fixed number
    of lines.  All operations are mutex-serialized. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
(** Bump a named counter, creating it at 0 first.  [by] defaults to 1. *)

val get : t -> string -> int
(** Current value (0 for a counter never bumped). *)

val observe_latency : t -> float -> unit
(** Record one request service time, in seconds. *)

val snapshot : t -> (string * string) list
(** All counters in name order, followed by [latency_*] summary lines
    ([count], [mean_us], [p50_us], [p90_us], [p99_us], [max_us]) when
    at least one latency was observed. *)
