(** Server observability: monotonic named counters plus named latency
    histograms, rendered as the [METRICS] reply payload (table form)
    or Prometheus text exposition ([METRICS prom]).

    Durations are tallied into power-of-two microsecond buckets
    (bucket i counts observations in [2^i, 2^{i+1}) us).  Percentiles
    are computed directly from the bucket counts — a single
    O(n_buckets) cumulative scan — so a [METRICS] reply costs the same
    whether the daemon has served forty requests or forty million.
    All operations are mutex-serialized. *)

type t

val n_buckets : int
(** Number of power-of-two buckets per histogram (40: up to ~2^40 us,
    about 12.7 days, before clamping into the last bucket). *)

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
(** Bump a named counter, creating it at 0 first.  [by] defaults to 1. *)

val get : t -> string -> int
(** Current value (0 for a counter never bumped). *)

val observe : t -> string -> float -> unit
(** [observe t name seconds] records one duration into the histogram
    [name], creating it on first use. *)

val observe_latency : t -> float -> unit
(** [observe t "latency"] — the request service-time histogram. *)

val observe_value : t -> string -> int -> unit
(** [observe_value t name v] records one unit-less value (clamped at
    0) into the value histogram [name] — same power-of-two buckets,
    raw magnitudes instead of microseconds.  Used for distribution
    metrics like the per-repair region size
    ([kcore_repair_visited]). *)

val percentile_of_buckets :
  buckets:int array -> total:int -> max_us:int -> float -> int
(** [percentile_of_buckets ~buckets ~total ~max_us p] is the p-th
    percentile in microseconds, as the lower bound (2^i us) of the
    smallest bucket whose cumulative count covers p% of [total]
    observations ([max_us] when the scan runs off the end; 0 when
    [total] is 0).  Pure, O(n_buckets); exposed for tests. *)

val snapshot : t -> (string * string) list
(** All counters in name order, then for each histogram in name order
    with at least one observation, [<name>_count], [<name>_mean_us],
    [<name>_p50_us], [<name>_p90_us], [<name>_p99_us], [<name>_max_us];
    then value histograms likewise but without the [_us] suffix. *)

(** {2 Prometheus exposition} *)

type frozen_hist = {
  f_buckets : int array;
  f_sum_us : float;
  f_max_us : int;
  f_count : int;
}

type frozen = {
  f_counters : (string * int) list;  (** name order *)
  f_hists : (string * frozen_hist) list;  (** name order *)
  f_vhists : (string * frozen_hist) list;
      (** value histograms, name order; [f_sum_us]/[f_max_us] hold raw
          values *)
}

val freeze : t -> frozen
(** Consistent copy of all counters and histograms. *)

val prometheus :
  ?namespace:string ->
  ?labeled_gauges:(string * (string * string) list * float) list ->
  gauges:(string * float) list ->
  extra_counters:(string * int) list ->
  frozen -> string list
(** Prometheus text-exposition lines (version 0.0.4, no trailing
    newline per line): every frozen counter and [extra_counters] as
    [counter] metrics, [gauges] as [gauge] metrics, every latency
    histogram as a [histogram] named [<name>_seconds] with cumulative
    [le] buckets in seconds, [+Inf], [_sum] and [_count], and every
    value histogram likewise under its bare name with raw
    power-of-two [le] bounds.  [labeled_gauges] are
    [(name, labels, value)] triples — e.g. per-dataset epochs as
    [("dataset_epoch", [("dataset", digest)], e)] — emitted with one
    TYPE line per distinct name and label values escaped.  Metric
    names are prefixed with [namespace] (default ["hgd"]) and
    sanitized to the Prometheus charset; label keys are used as
    given. *)
