(** Resident datasets, keyed by content digest.

    [load] reads a [.hg] or [.mtx] file once — digesting the bytes
    (MD5, hex) in the same pass as the read — parses it, and keeps the
    hypergraph resident; loading a file whose content is already
    resident is a no-op that returns the existing entry, so the digest
    is a stable identity for the result cache no matter how many paths
    or reloads point at it.

    Snapshot preference: a [.hgsnap] path is mmap-loaded through
    {!Hp_snapshot.Snapshot} directly, and a text path whose sibling
    snapshot ([dataset.hgsnap] next to [dataset.hg], at least as new
    as it) exists loads from the snapshot instead of re-parsing.  A
    sibling that fails validation is logged, recorded as [fallback],
    and the text file is parsed as if it had no sibling — corruption
    degrades to a slow load, never an outage.  Snapshot-loaded entries
    carry the snapshot identity digest from the header (the MD5 of the
    CSR payloads), which differs from the digest of the equivalent
    text file's bytes: the two encodings are distinct cache keys.

    All operations are serialized by an internal mutex and safe to call
    from concurrent worker domains. *)

type source =
  | Text                     (** Parsed from the dataset file's bytes. *)
  | Snapshot_file of string  (** Mapped from the named [.hgsnap]. *)

type entry = {
  digest : string;  (** MD5 identity, lowercase hex (see above). *)
  path : string;    (** Path given at first load. *)
  hypergraph : Hp_hypergraph.Hypergraph.t;
  bytes : int;      (** Size of the file actually loaded. *)
  loaded_at : float;
  source : source;
  fallback : bool;  (** A sibling snapshot existed but was rejected. *)
}

type t

val create : ?max_file_bytes:int -> unit -> t
(** [max_file_bytes] (default 0 = unlimited) rejects dataset files
    larger than the cap with [Read_failed] before reading (or mapping)
    them, so a runaway input cannot OOM the daemon. *)

type load_error =
  | Read_failed of string   (** I/O: missing file, permissions, ... *)
  | Parse_failed of string  (** Malformed content; message names file and line. *)

val load : t -> string -> (entry * bool, load_error) result
(** [load t path] returns the resident entry and whether this call
    loaded it fresh ([true]) or found it by digest ([false]). *)

val find : t -> string -> [ `Found of entry | `Ambiguous | `Missing ]
(** Exact digest, or a digest prefix of at least 4 characters that
    matches exactly one resident dataset. *)

val evict : t -> string -> entry option
(** Drop a dataset (addressed as in [find]); returns the dropped entry. *)

val list : t -> entry list
(** Resident datasets, oldest first. *)
