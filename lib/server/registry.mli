(** Resident datasets, keyed by content digest.

    [load] reads a [.hg] or [.mtx] file once, digests its bytes (MD5,
    hex), parses it, and keeps the hypergraph resident; loading a file
    whose content is already resident is a no-op that returns the
    existing entry, so the digest is a stable identity for the result
    cache no matter how many paths or reloads point at it.

    All operations are serialized by an internal mutex and safe to call
    from concurrent worker domains. *)

type entry = {
  digest : string;  (** MD5 of the file bytes, lowercase hex. *)
  path : string;    (** Path given at first load. *)
  hypergraph : Hp_hypergraph.Hypergraph.t;
  bytes : int;      (** Size of the source file. *)
  loaded_at : float;
}

type t

val create : ?max_file_bytes:int -> unit -> t
(** [max_file_bytes] (default 0 = unlimited) rejects dataset files
    larger than the cap with [Read_failed] before reading them into
    memory, so a runaway input cannot OOM the daemon. *)

type load_error =
  | Read_failed of string   (** I/O: missing file, permissions, ... *)
  | Parse_failed of string  (** Malformed content; message names file and line. *)

val load : t -> string -> (entry * bool, load_error) result
(** [load t path] returns the resident entry and whether this call
    parsed it fresh ([true]) or found it by digest ([false]). *)

val find : t -> string -> [ `Found of entry | `Ambiguous | `Missing ]
(** Exact digest, or a digest prefix of at least 4 characters that
    matches exactly one resident dataset. *)

val evict : t -> string -> entry option
(** Drop a dataset (addressed as in [find]); returns the dropped entry. *)

val list : t -> entry list
(** Resident datasets, oldest first. *)
