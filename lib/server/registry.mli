(** Resident datasets, keyed by content digest, with live mutation
    under a per-dataset write-ahead log.

    [load] reads a [.hg] or [.mtx] file once — digesting the bytes
    (MD5, hex) in the same pass as the read — parses it, and keeps the
    hypergraph resident; loading a file whose content is already
    resident is a no-op that returns the existing entry, so the digest
    is a stable identity for the result cache no matter how many paths
    or reloads point at it.

    {2 Handle vs. epoch}

    The entry's [digest] is the dataset's {e handle}: its content
    identity at epoch 0.  Mutations ({!mutate}) do not change the
    handle — they bump the entry's monotone [epoch], and the pair
    [(handle, epoch)] names a specific state (the result cache keys on
    it).  The handle survives restarts, recoveries and checkpoints
    because the WAL header records it.

    {2 Durability}

    Each mutation is appended to the dataset's sibling [.hgwal]
    ({!Hp_wal.Wal}) {e before} it is applied, so an acknowledged
    mutation survives a crash.  {!checkpoint} compacts log + state
    into a fresh sibling [.hgsnap] (atomic rename) and starts an empty
    log over it, bounding recovery time by writes-since-checkpoint;
    the epoch is {e not} reset.  [create]'s [checkpoint_every] makes
    this automatic.

    {2 Load precedence}

    When a sibling [.hgwal] exists, it drives recovery: the base it
    folds over is resolved by identity — (1) a sibling snapshot whose
    identity matches the log's base wins; (2) the text file whose
    digest matches is next; (3) a loadable snapshot with a different
    identity is checkpoint/log skew from a crash between the
    checkpoint's two renames — the snapshot (which already contains
    every logged record) is adopted and the log retired; (4) anything
    else is a typed [Base_skew].  A torn WAL tail is truncated and
    recovery proceeds — it is the expected crash shape, not an error.

    Without a WAL, the old rules apply: a [.hgsnap] path is mmap-loaded
    through {!Hp_snapshot.Snapshot} directly, and a text path whose
    sibling snapshot ([dataset.hgsnap] next to [dataset.hg], at least
    as new as it) exists loads from the snapshot instead of
    re-parsing.  A sibling that fails validation is logged, recorded
    as [fallback], and the text file is parsed as if it had no
    sibling — corruption degrades to a slow load, never an outage.

    All operations are serialized by an internal mutex and safe to call
    from concurrent worker domains.  Readers should take
    [entry.state] with a single field read: the
    [{epoch; hypergraph; cores}] record is replaced wholesale by
    mutations, never updated in place.

    {2 Maintained core decomposition}

    Every mutation also advances an incrementally maintained k-core
    decomposition ({!Hp_hypergraph.Hypergraph_maintain}): instead of
    re-peeling the whole hypergraph per KCORE query, the mutation
    repairs only the overlap-connected region it touched (with a full
    re-peel fallback when the region outgrows the repair budget).  The
    result is published in [state.cores], bit-identical to a fresh
    [decompose ~domains:1] of [state.hypergraph].  [cores] is [None]
    only for never-mutated datasets — queries on those compute (and
    the server caches) on demand; after WAL recovery of a mutated
    dataset it is rebuilt eagerly so KCORE answers never regress to
    stale state. *)

type source =
  | Text                     (** Parsed from the dataset file's bytes. *)
  | Snapshot_file of string  (** Mapped from the named [.hgsnap]. *)

type state = {
  epoch : int;  (** Mutations applied since epoch 0; monotone. *)
  hypergraph : Hp_hypergraph.Hypergraph.t;
  cores : Hp_hypergraph.Hypergraph_core.decomposition option;
      (** Maintained core decomposition of [hypergraph]; [None] until
          the dataset is first mutated (see above).  Immutable
          snapshot — repairs install fresh records, never mutate. *)
}

type recovery = {
  replayed : int;     (** WAL records folded over the base at load. *)
  torn_bytes : int;   (** Torn-tail bytes truncated at load (0 = clean). *)
  healed_skew : bool; (** Checkpoint/log skew healed (see above). *)
}

type entry = {
  digest : string;  (** The handle: MD5 identity at epoch 0 (see above). *)
  path : string;    (** Path given at first load. *)
  bytes : int;      (** Size of the file actually loaded. *)
  loaded_at : float;
  source : source;
  fallback : bool;  (** A sibling snapshot existed but was rejected. *)
  recovery : recovery option;
      (** Present iff the entry was recovered through a WAL. *)
  mutable state : state;
  mutable live : Hp_wal.Live.t option;      (* registry-internal *)
  mutable maint : Hp_hypergraph.Hypergraph_maintain.t option;
                                            (* registry-internal *)
  mutable wal : Hp_wal.Wal.writer option;   (* registry-internal *)
  mutable wal_records : int;                (* registry-internal *)
  mutable wal_base_identity : string;       (* registry-internal *)
  mutable wal_base_epoch : int;             (* registry-internal *)
}

type t

val create :
  ?max_file_bytes:int ->
  ?wal_sync:Hp_wal.Wal.sync_policy ->
  ?checkpoint_every:int ->
  ?kcore_budget:int ->
  unit ->
  t
(** [max_file_bytes] (default 0 = unlimited) rejects dataset files
    larger than the cap with [Read_failed] before reading (or mapping)
    them, so a runaway input cannot OOM the daemon.  [wal_sync]
    (default [Batch]) is the fsync policy for WAL appends.
    [checkpoint_every] (default 0 = manual only) auto-compacts a
    dataset's log whenever it accumulates that many records.
    [kcore_budget] (default 4096, must be >= 1) bounds the vertices +
    hyperedges a maintained-decomposition repair may visit before
    falling back to a full re-peel. *)

val kcore_budget : t -> int

type load_error =
  | Read_failed of string   (** I/O: missing file, permissions, ... *)
  | Parse_failed of string  (** Malformed content; message names file and line. *)

val load : t -> string -> (entry * bool, load_error) result
(** [load t path] returns the resident entry and whether this call
    loaded it fresh ([true]) or found it by digest ([false]). *)

val find : t -> string -> [ `Found of entry | `Ambiguous | `Missing ]
(** Exact digest, or a digest prefix of at least 4 characters that
    matches exactly one resident dataset. *)

val evict : t -> string -> entry option
(** Drop a dataset (addressed as in [find]), closing its WAL writer;
    returns the dropped entry. *)

val list : t -> entry list
(** Resident datasets, oldest first. *)

val sync_wals : t -> unit
(** fsync every open WAL writer (shutdown hook; makes [Batch]/[Never]
    tails durable before exit). *)

type applied = {
  epoch : int;           (** The epoch this mutation created. *)
  assigned : int option; (** Dense id given to an added vertex/edge. *)
  n_vertices : int;
  n_edges : int;
  checkpointed : bool;   (** An auto-checkpoint ran after the apply. *)
  repair : Hp_hypergraph.Hypergraph_maintain.outcome;
      (** How the maintained decomposition absorbed this mutation
          (bounded incremental repair vs. full re-peel). *)
}

val mutate :
  t ->
  string ->
  Hp_wal.Wal.op ->
  (applied, [ `Missing | `Ambiguous | `Invalid of string | `Io of string ])
  result
(** Validate the op against the dataset's current state, append it to
    the WAL, then apply it and publish the new [state].  [`Invalid]
    (client error) and [`Io] (append/WAL-create failure) leave the
    state untouched — an op is applied iff it is durable. *)

type batch_item = {
  b_epoch : int;           (** The epoch this op created. *)
  b_assigned : int option; (** Dense id given to an added vertex/edge. *)
  b_n_vertices : int;      (** Counts immediately after this op. *)
  b_n_edges : int;
}

type batch_result = {
  items :
    (batch_item, [ `Invalid of string | `Io of string ]) result array;
      (** One per input op, in order; [`Invalid] is the client-facing
          rejection for that op, [`Io] a WAL append failure (or the
          abort it forced on the rest of the burst). *)
  batch_repair : Hp_hypergraph.Hypergraph_maintain.outcome option;
      (** The single repair that absorbed every applied op; [None]
          when nothing applied. *)
  batch_applied : int;
  batch_checkpointed : bool;
}

val mutate_batch :
  t ->
  string ->
  Hp_wal.Wal.op list ->
  (batch_result, [ `Missing | `Ambiguous | `Io of string ]) result
(** Apply a burst of mutations under one lock acquisition with a
    single decomposition repair
    ({!Hp_hypergraph.Hypergraph_maintain.apply_batch}) and one state
    publish at the end, amortizing the repair across the burst.  Ops
    validate sequentially against the evolving state; an invalid op is
    skipped with a per-item error and the burst continues — item
    outcomes match what the same sequence through {!mutate} would have
    produced.  A WAL append failure aborts the remaining ops (they
    were never acknowledged); already-appended ops stay applied.
    [`Io] is returned only when the WAL writer itself cannot be
    created. *)

type checkpoint_info = {
  snapshot_path : string;
  snapshot_identity : string;
  snapshot_bytes : int;
  at_epoch : int;
  records_folded : int;  (** WAL records compacted away. *)
}

val checkpoint :
  t -> string -> (checkpoint_info, [ `Missing | `Ambiguous | `Io of string ]) result
(** Pack the dataset's current state to its sibling [.hgsnap]
    (atomic), then start a fresh empty WAL over it (atomic).  The
    epoch is unchanged; only recovery cost shrinks. *)
