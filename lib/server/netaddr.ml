(* Shared TCP plumbing for the server's listeners, the client, and the
   load generator: HOST:PORT parsing, name resolution, and socket
   setup, in one place so they agree on defaults. *)

let parse_hostport spec =
  let fail () =
    Error
      (Printf.sprintf
         "%S: expected HOST:PORT or PORT (e.g. 127.0.0.1:7070, 0.0.0.0:7070, 7070)"
         spec)
  in
  match String.rindex_opt spec ':' with
  | None -> (
    (* A bare port listens on / connects to loopback. *)
    match int_of_string_opt spec with
    | Some p when p >= 0 && p < 65536 -> Ok ("127.0.0.1", p)
    | _ -> fail ())
  | Some i -> (
    let host = String.sub spec 0 i in
    let port = String.sub spec (i + 1) (String.length spec - i - 1) in
    match int_of_string_opt port with
    | Some p when p >= 0 && p < 65536 ->
      Ok ((if host = "" then "0.0.0.0" else host), p)
    | _ -> fail ())

let resolve host port =
  match Unix.inet_addr_of_string host with
  | addr -> Ok (Unix.ADDR_INET (addr, port))
  | exception Failure _ -> (
    match
      Unix.getaddrinfo host (string_of_int port)
        [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
    with
    | { Unix.ai_addr; _ } :: _ -> Ok ai_addr
    | [] | (exception _) -> Error (Printf.sprintf "cannot resolve host %S" host))

let socket_for = function
  | Unix.ADDR_INET (a, _) when Unix.is_inet6_addr a ->
    Unix.socket ~cloexec:true Unix.PF_INET6 Unix.SOCK_STREAM 0
  | Unix.ADDR_INET _ -> Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0
  | Unix.ADDR_UNIX _ -> Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0

(* Bind + listen; returns the fd and the actual port (useful with
   port 0, which the tests and self-hosted loadgen rely on). *)
let bind_listen ~host ~port ~backlog =
  match resolve host port with
  | Error _ as e -> e
  | Ok addr -> (
    let fd = socket_for addr in
    try
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd addr;
      Unix.listen fd backlog;
      let bound =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      Ok (fd, bound)
    with Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with _ -> ());
      Error
        (Printf.sprintf "cannot bind %s:%d: %s" host port
           (Unix.error_message err)))

let connect ~host ~port =
  match resolve host port with
  | Error _ as e -> e
  | Ok addr -> (
    let fd = socket_for addr in
    try
      Unix.connect fd addr;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
      Ok fd
    with Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with _ -> ());
      let detail =
        match err with
        | Unix.ECONNREFUSED -> "connection refused — is hgd --tcp listening?"
        | _ -> Unix.error_message err
      in
      Error (Printf.sprintf "cannot connect to %s:%d: %s" host port detail))
