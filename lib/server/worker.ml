type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : 'a Queue.t;
  mutable stopping : bool;
  mutable joined : bool;
  domains : unit Domain.t array Lazy.t;
  (* Lazy so the record exists before the domains that close over it. *)
}

let worker_loop t handler =
  let rec next () =
    Mutex.lock t.mutex;
    let job =
      let rec wait () =
        if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
        else if t.stopping then None
        else begin
          Condition.wait t.nonempty t.mutex;
          wait ()
        end
      in
      wait ()
    in
    Mutex.unlock t.mutex;
    match job with
    | Some job ->
      (try handler job with _ -> ());
      next ()
    | None -> ()
  in
  next ()

let create ?workers handler =
  let workers =
    match workers with
    | Some w ->
      if w < 1 then invalid_arg "Worker.create: workers < 1";
      w
    | None -> Hp_util.Parallel.recommended_domains ()
  in
  let rec t =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      joined = false;
      domains =
        lazy (Array.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t handler)));
    }
  in
  ignore (Lazy.force t.domains);
  t

let size t = Array.length (Lazy.force t.domains)

let pending t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n

let submit t job =
  Mutex.lock t.mutex;
  let accepted =
    if t.stopping then false
    else begin
      Queue.push job t.queue;
      Condition.signal t.nonempty;
      true
    end
  in
  Mutex.unlock t.mutex;
  accepted

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  let join_now = not t.joined in
  t.joined <- true;
  Mutex.unlock t.mutex;
  if join_now then Array.iter Domain.join (Lazy.force t.domains)
