type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  crash_wakeup : Condition.t;
  queue : 'a Queue.t;
  max_pending : int;  (* 0 = unbounded *)
  lethal : exn -> bool;
  on_exception : exn -> unit;
  mutable stopping : bool;
  mutable joined : bool;
  mutable exceptions : int;
  mutable restarts : int;
  mutable crashed : int list;  (* slot indices awaiting respawn *)
  slots : unit Domain.t option array;
  mutable supervisor : unit Domain.t option;
}

let worker_loop t handler =
  let rec next () =
    Mutex.lock t.mutex;
    let job =
      let rec wait () =
        if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
        else if t.stopping then None
        else begin
          Condition.wait t.nonempty t.mutex;
          wait ()
        end
      in
      wait ()
    in
    Mutex.unlock t.mutex;
    match job with
    | Some job ->
      (* The handler runs kernels that fan out over domains; bracket it
         so the shared domain budget sees how many jobs are in flight
         and clamps each job's fan-out accordingly (a pool of w workers
         each asking for 8 domains must not land 8w domains on the
         machine). *)
      Hp_util.Parallel.enter_job ();
      (match
         Fun.protect
           ~finally:(fun () -> Hp_util.Parallel.leave_job ())
           (fun () -> handler job)
       with
      | () -> ()
      | exception e when not (t.lethal e) ->
        (* Captured: account for it and keep the worker alive.  A
           lethal exception falls through and kills the domain; the
           supervisor respawns it. *)
        Mutex.lock t.mutex;
        t.exceptions <- t.exceptions + 1;
        Mutex.unlock t.mutex;
        (try t.on_exception e with _ -> ()));
      next ()
    | None -> ()
  in
  next ()

(* Body of one worker domain.  A lethal crash is recorded for the
   supervisor and the domain exits normally, so joins never re-raise. *)
let slot_body t handler i () =
  try worker_loop t handler
  with e ->
    Hp_util.Log.error ~comp:"worker"
      ~fields:[ ("slot", string_of_int i); ("exn", Printexc.to_string e) ]
      "worker killed; awaiting respawn";
    Mutex.lock t.mutex;
    t.crashed <- i :: t.crashed;
    Condition.signal t.crash_wakeup;
    Mutex.unlock t.mutex

(* The supervisor sleeps until a worker dies, then joins the corpse
   and spawns a replacement into the same slot.  It owns the slot
   array while running; [shutdown] joins it before joining workers. *)
let supervisor_body t handler () =
  let rec loop () =
    Mutex.lock t.mutex;
    while t.crashed = [] && not t.stopping do
      Condition.wait t.crash_wakeup t.mutex
    done;
    let dead = t.crashed in
    t.crashed <- [];
    let stopping = t.stopping in
    if not stopping then t.restarts <- t.restarts + List.length dead;
    Mutex.unlock t.mutex;
    List.iter
      (fun i ->
        Option.iter (fun d -> try Domain.join d with _ -> ()) t.slots.(i);
        t.slots.(i) <-
          (if stopping then None
           else begin
             Hp_util.Log.info ~comp:"worker"
               ~fields:[ ("slot", string_of_int i) ]
               "respawned worker slot";
             Some (Domain.spawn (slot_body t handler i))
           end))
      dead;
    if not stopping then loop ()
  in
  loop ()

let create ?workers ?(max_pending = 0) ?(lethal = fun _ -> false)
    ?(on_exception = fun _ -> ()) handler =
  let workers =
    match workers with
    | Some w ->
      if w < 1 then invalid_arg "Worker.create: workers < 1";
      w
    | None -> Hp_util.Parallel.recommended_domains ()
  in
  if max_pending < 0 then invalid_arg "Worker.create: max_pending < 0";
  let t =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      crash_wakeup = Condition.create ();
      queue = Queue.create ();
      max_pending;
      lethal;
      on_exception;
      stopping = false;
      joined = false;
      exceptions = 0;
      restarts = 0;
      crashed = [];
      slots = Array.make workers None;
      supervisor = None;
    }
  in
  for i = 0 to workers - 1 do
    t.slots.(i) <- Some (Domain.spawn (slot_body t handler i))
  done;
  t.supervisor <- Some (Domain.spawn (supervisor_body t handler));
  t

let size t = Array.length t.slots

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let pending t = locked t (fun () -> Queue.length t.queue)
let exceptions t = locked t (fun () -> t.exceptions)
let restarts t = locked t (fun () -> t.restarts)

let submit t job =
  locked t (fun () ->
      if t.stopping then `Stopping
      else begin
        let depth = Queue.length t.queue in
        if t.max_pending > 0 && depth >= t.max_pending then `Busy depth
        else begin
          Queue.push job t.queue;
          Condition.signal t.nonempty;
          `Accepted
        end
      end)

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Condition.broadcast t.crash_wakeup;
  let join_now = not t.joined in
  t.joined <- true;
  Mutex.unlock t.mutex;
  if join_now then begin
    (* The supervisor must go first: it is the only other writer of
       the slot array. *)
    Option.iter Domain.join t.supervisor;
    Array.iter (fun s -> Option.iter Domain.join s) t.slots
  end
