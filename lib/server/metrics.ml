let n_buckets = 40

type hist = {
  buckets : int array;  (* bucket i: observations in [2^i, 2^{i+1}) us *)
  mutable sum_us : float;
  mutable max_us : int;
  mutable count : int;
}

type t = {
  mutex : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
  vhists : (string, hist) Hashtbl.t;
      (* unit-less value histograms: same power-of-two buckets, the
         "us" fields hold raw values *)
}

let create () =
  {
    mutex = Mutex.create ();
    counters = Hashtbl.create 32;
    hists = Hashtbl.create 8;
    vhists = Hashtbl.create 8;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let incr ?(by = 1) t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.add t.counters name (ref by))

let get t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some r -> !r
      | None -> 0)

let bucket_of_us us =
  let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
  min (n_buckets - 1) (log2 (max 1 us) 0)

let observe_into t table name us =
  locked t (fun () ->
      let h =
        match Hashtbl.find_opt table name with
        | Some h -> h
        | None ->
          let h =
            { buckets = Array.make n_buckets 0; sum_us = 0.0; max_us = 0; count = 0 }
          in
          Hashtbl.add table name h;
          h
      in
      let b = bucket_of_us us in
      h.buckets.(b) <- h.buckets.(b) + 1;
      h.sum_us <- h.sum_us +. float_of_int us;
      h.count <- h.count + 1;
      if us > h.max_us then h.max_us <- us)

let observe t name seconds =
  let us = max 0 (int_of_float (seconds *. 1e6)) in
  observe_into t t.hists name us

let observe_value t name v = observe_into t t.vhists name (max 0 v)

let observe_latency t seconds = observe t "latency" seconds

(* The p-th percentile as the lower bound (2^i us) of the smallest
   bucket whose cumulative count covers p% of the observations.  One
   pass over the fixed-size bucket array — the cost does not grow with
   the number of observations (the old implementation expanded every
   observation into an intermediate histogram, O(total) per call). *)
let percentile_of_buckets ~buckets ~total ~max_us p =
  if total <= 0 then 0
  else begin
    let need =
      max 1 (min total (int_of_float (ceil (p /. 100.0 *. float_of_int total))))
    in
    let n = Array.length buckets in
    let rec scan i cum =
      if i >= n then max_us
      else
        let cum = cum + buckets.(i) in
        if cum >= need then 1 lsl i else scan (i + 1) cum
    in
    scan 0 0
  end

type frozen_hist = {
  f_buckets : int array;
  f_sum_us : float;
  f_max_us : int;
  f_count : int;
}

type frozen = {
  f_counters : (string * int) list;
  f_hists : (string * frozen_hist) list;
  f_vhists : (string * frozen_hist) list;
}

let freeze t =
  let freeze_table table =
    Hashtbl.fold
      (fun k h acc ->
        ( k,
          {
            f_buckets = Array.copy h.buckets;
            f_sum_us = h.sum_us;
            f_max_us = h.max_us;
            f_count = h.count;
          } )
        :: acc)
      table []
    |> List.sort compare
  in
  locked t (fun () ->
      {
        f_counters =
          Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
          |> List.sort compare;
        f_hists = freeze_table t.hists;
        f_vhists = freeze_table t.vhists;
      })

let snapshot t =
  let { f_counters; f_hists; f_vhists } = freeze t in
  let counter_lines =
    List.map (fun (k, v) -> (k, string_of_int v)) f_counters
  in
  (* [unit] suffixes the statistic names: "_us" for latency histograms,
     "" for unit-less value histograms. *)
  let hist_lines unit (name, h) =
    if h.f_count = 0 then []
    else begin
      let pct p =
        percentile_of_buckets ~buckets:h.f_buckets ~total:h.f_count
          ~max_us:h.f_max_us p
      in
      [
        (name ^ "_count", string_of_int h.f_count);
        (name ^ "_mean" ^ unit,
         Printf.sprintf "%.1f" (h.f_sum_us /. float_of_int h.f_count));
        (name ^ "_p50" ^ unit, string_of_int (pct 50.0));
        (name ^ "_p90" ^ unit, string_of_int (pct 90.0));
        (name ^ "_p99" ^ unit, string_of_int (pct 99.0));
        (name ^ "_max" ^ unit, string_of_int h.f_max_us);
      ]
    end
  in
  counter_lines
  @ List.concat_map (hist_lines "_us") f_hists
  @ List.concat_map (hist_lines "") f_vhists

(* ---------- Prometheus text exposition ---------- *)

let prom_name namespace s =
  let sane =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      s
  in
  let sane =
    if sane = "" then "_"
    else
      match sane.[0] with
      | '0' .. '9' -> "_" ^ sane
      | _ -> sane
  in
  namespace ^ "_" ^ sane

(* %.17g is lossless for doubles; trim the common integral case. *)
let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let prometheus ?(namespace = "hgd") ?(labeled_gauges = []) ~gauges
    ~extra_counters frozen =
  let buf = ref [] in
  let line l = buf := l :: !buf in
  let simple mtype (name, value) =
    let n = prom_name namespace name in
    line (Printf.sprintf "# TYPE %s %s" n mtype);
    line (Printf.sprintf "%s %s" n (prom_float value))
  in
  List.iter (fun (k, v) -> simple "counter" (k, float_of_int v)) frozen.f_counters;
  List.iter (fun (k, v) -> simple "counter" (k, float_of_int v)) extra_counters;
  List.iter (simple "gauge") gauges;
  (* One TYPE line per metric name, however many label sets follow.
     OCaml's %S escapes the backslash/quote/newline set Prometheus
     label values require. *)
  let typed = Hashtbl.create 4 in
  List.iter
    (fun (name, labels, value) ->
      let n = prom_name namespace name in
      if not (Hashtbl.mem typed n) then begin
        Hashtbl.add typed n ();
        line (Printf.sprintf "# TYPE %s gauge" n)
      end;
      let rendered =
        labels
        |> List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v)
        |> String.concat ","
      in
      line (Printf.sprintf "%s{%s} %s" n rendered (prom_float value)))
    labeled_gauges;
  (* Latency histograms convert their microsecond buckets to seconds
     (suffix [_seconds]); value histograms keep raw power-of-two
     bounds and the bare name. *)
  let emit_hist ~suffix ~scale (name, h) =
    let n = prom_name namespace (name ^ suffix) in
    line (Printf.sprintf "# TYPE %s histogram" n);
    let cum = ref 0 in
    Array.iteri
      (fun i c ->
        cum := !cum + c;
        (* Bucket i holds [2^i, 2^{i+1}), so its cumulative upper
           bound is 2^{i+1}. *)
        let le = Float.of_int (1 lsl (i + 1)) /. scale in
        line
          (Printf.sprintf "%s_bucket{le=\"%s\"} %d" n (prom_float le) !cum))
      h.f_buckets;
    line (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d" n h.f_count);
    line (Printf.sprintf "%s_sum %s" n (prom_float (h.f_sum_us /. scale)));
    line (Printf.sprintf "%s_count %d" n h.f_count)
  in
  List.iter (emit_hist ~suffix:"_seconds" ~scale:1e6) frozen.f_hists;
  List.iter (emit_hist ~suffix:"" ~scale:1.0) frozen.f_vhists;
  List.rev !buf
