let n_buckets = 40

type t = {
  mutex : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  latency_buckets : int array;  (* bucket i: latencies in [2^i, 2^{i+1}) us *)
  mutable latency_sum_us : float;
  mutable latency_max_us : int;
}

let create () =
  {
    mutex = Mutex.create ();
    counters = Hashtbl.create 32;
    latency_buckets = Array.make n_buckets 0;
    latency_sum_us = 0.0;
    latency_max_us = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let incr ?(by = 1) t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.add t.counters name (ref by))

let get t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some r -> !r
      | None -> 0)

let bucket_of_us us =
  let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
  min (n_buckets - 1) (log2 (max 1 us) 0)

let observe_latency t seconds =
  let us = max 0 (int_of_float (seconds *. 1e6)) in
  locked t (fun () ->
      let b = bucket_of_us us in
      t.latency_buckets.(b) <- t.latency_buckets.(b) + 1;
      t.latency_sum_us <- t.latency_sum_us +. float_of_int us;
      if us > t.latency_max_us then t.latency_max_us <- us)

let snapshot t =
  let counters, buckets, sum_us, max_us =
    locked t (fun () ->
        ( Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters [],
          Array.copy t.latency_buckets,
          t.latency_sum_us,
          t.latency_max_us ))
  in
  let counter_lines =
    List.sort compare counters
    |> List.map (fun (k, v) -> (k, string_of_int v))
  in
  let hist =
    Hp_util.Int_histogram.of_iter (fun f ->
        Array.iteri (fun exp c -> if c > 0 then
            for _ = 1 to c do f exp done)
          buckets)
  in
  let total = Hp_util.Int_histogram.total hist in
  if total = 0 then counter_lines
  else begin
    (* p-th percentile as the lower bound (2^exp us) of the smallest
       bucket that covers p% of observations. *)
    let percentile p =
      let need = int_of_float (ceil (p /. 100.0 *. float_of_int total)) in
      let rec scan exp =
        if exp >= n_buckets then t.latency_max_us
        else if total - Hp_util.Int_histogram.cumulative_ge hist (exp + 1) >= need
        then 1 lsl exp
        else scan (exp + 1)
      in
      scan 0
    in
    counter_lines
    @ [
        ("latency_count", string_of_int total);
        ("latency_mean_us",
         Printf.sprintf "%.1f" (sum_us /. float_of_int total));
        ("latency_p50_us", string_of_int (percentile 50.0));
        ("latency_p90_us", string_of_int (percentile 90.0));
        ("latency_p99_us", string_of_int (percentile 99.0));
        ("latency_max_us", string_of_int max_us);
      ]
  end
