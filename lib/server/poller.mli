(** Readiness polling behind one interface: Linux [epoll] via C stubs
    when available, [Unix.select] everywhere else.

    The event loop is the only intended consumer.  Interest is
    level-triggered in both backends: a readable fd keeps reporting
    readable until drained, a writable fd until the kernel buffer
    fills, so the loop never needs edge-triggered bookkeeping.

    Thread-safety: [add]/[modify]/[remove] may be called from any
    thread while another thread is blocked in [wait].  With the epoll
    backend the kernel picks the change up immediately; with the
    select backend it is observed at the next [wait] round (the loop
    bounds rounds with a timeout, so the latency is capped). *)

type t

(** Interest / readiness bitmask: [read lor write]. *)
val read : int

val write : int

(** [create ()] prefers epoll and silently falls back to select.
    [~backend:`Select] forces the fallback (used by tests, and by the
    [HGD_EVENT_BACKEND=select] escape hatch). *)
val create : ?backend:[ `Auto | `Select ] -> unit -> t

(** ["epoll"] or ["select"] — surfaced in logs and tests. *)
val backend : t -> string

(** Register a new fd with the given interest mask.  Re-adding a
    registered fd is an error with epoll; use [modify]. *)
val add : t -> Unix.file_descr -> int -> unit

val modify : t -> Unix.file_descr -> int -> unit

(** Forget an fd.  Safe to call for an fd that was never added. *)
val remove : t -> Unix.file_descr -> unit

(** Block up to [timeout_ms] (-1 = forever) and return ready
    [(fd, readiness)] pairs.  Returns [[]] on timeout or EINTR. *)
val wait : t -> timeout_ms:int -> (Unix.file_descr * int) list

val close : t -> unit
