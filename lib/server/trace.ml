type stage = Queue | Parse | Cache | Compute | Write

let stage_name = function
  | Queue -> "queue"
  | Parse -> "parse"
  | Cache -> "cache"
  | Compute -> "compute"
  | Write -> "write"

type record = {
  id : int;
  request : string;
  status : string;
  started_at : float;
  total_us : int;
  queue_us : int;
  parse_us : int;
  cache_us : int;
  compute_us : int;
  write_us : int;
  cached : bool;
}

type active = {
  a_id : int;
  a_request : string;
  a_started : float;
  mutable a_queue_us : int;
  mutable a_parse_us : int;
  mutable a_cache_us : int;
  mutable a_compute_us : int;
  mutable a_write_us : int;
  mutable a_cached : bool;
}

type t = {
  mutex : Mutex.t;
  ring : record array;
  capacity : int;
  mutable next : int;
  mutable count : int;
  ids : int Atomic.t;
}

let default_capacity = 256
let max_request_bytes = 200

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity < 1";
  let dummy =
    {
      id = 0; request = ""; status = ""; started_at = 0.0; total_us = 0;
      queue_us = 0; parse_us = 0; cache_us = 0; compute_us = 0; write_us = 0;
      cached = false;
    }
  in
  {
    mutex = Mutex.create ();
    ring = Array.make capacity dummy;
    capacity;
    next = 0;
    count = 0;
    ids = Atomic.make 1;
  }

let start t ?(queue_us = 0) ~request () =
  let request =
    if String.length request <= max_request_bytes then request
    else String.sub request 0 max_request_bytes
  in
  {
    a_id = Atomic.fetch_and_add t.ids 1;
    a_request = request;
    a_started = Unix.gettimeofday ();
    a_queue_us = max 0 queue_us;
    a_parse_us = 0;
    a_cache_us = 0;
    a_compute_us = 0;
    a_write_us = 0;
    a_cached = false;
  }

let id a = a.a_id

let set_cached a cached = a.a_cached <- cached

(* Time a closure into a stage accumulator ([+=], so a stage entered
   twice — e.g. the cache probe before and the insert after a compute —
   sums).  An exception still charges the elapsed time before
   re-raising, so aborted computes show up in the span. *)
let timed a stage f =
  let t0 = Unix.gettimeofday () in
  let charge () =
    let us = max 0 (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)) in
    match stage with
    | Queue -> a.a_queue_us <- a.a_queue_us + us
    | Parse -> a.a_parse_us <- a.a_parse_us + us
    | Cache -> a.a_cache_us <- a.a_cache_us + us
    | Compute -> a.a_compute_us <- a.a_compute_us + us
    | Write -> a.a_write_us <- a.a_write_us + us
  in
  match f () with
  | result ->
    charge ();
    result
  | exception e ->
    charge ();
    raise e

let finish t a ~status =
  let total_us =
    (* Queue wait precedes [start]; fold it into the end-to-end time. *)
    a.a_queue_us
    + max 0 (int_of_float ((Unix.gettimeofday () -. a.a_started) *. 1e6))
  in
  let r =
    {
      id = a.a_id;
      request = a.a_request;
      status;
      started_at = a.a_started;
      total_us;
      queue_us = a.a_queue_us;
      parse_us = a.a_parse_us;
      cache_us = a.a_cache_us;
      compute_us = a.a_compute_us;
      write_us = a.a_write_us;
      cached = a.a_cached;
    }
  in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      t.ring.(t.next) <- r;
      t.next <- (t.next + 1) mod t.capacity;
      if t.count < t.capacity then t.count <- t.count + 1);
  r

let retained t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      List.init t.count (fun i ->
          t.ring.((t.next - 1 - i + (2 * t.capacity)) mod t.capacity)))

let recent t n = List.filteri (fun i _ -> i < max 0 n) (retained t)

let slowest t n =
  retained t
  |> List.stable_sort (fun a b -> compare b.total_us a.total_us)
  |> List.filteri (fun i _ -> i < max 0 n)
