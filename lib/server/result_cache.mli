(** Content-addressed memo of analysis replies.

    Keys are ["<dataset digest>@<epoch> <canonical analysis key>"]
    (see {!Protocol.analysis_key}), values are finished reply
    payloads; identical queries against identical state are served
    without recomputation, whatever path the dataset was loaded from.
    Mutations bump the dataset's epoch, so entries computed against an
    older state stop matching by construction — stale results are
    invalidated per-epoch, never by flushing the cache.  Bounded
    by an LRU entry budget ({!Hp_util.Lru}); hits, misses and
    evictions are counted in the server {!Metrics} under
    [cache_hits] / [cache_misses] / [cache_evictions].

    Lookups and inserts are mutex-serialized.  There is no
    single-flight guarantee: two workers racing on the same cold key
    both compute and the second insert wins — wasted work, never a
    wrong answer (payloads for equal keys are equal). *)

type t

val create : capacity:int -> metrics:Metrics.t -> unit -> t

val key : digest:string -> epoch:int -> analysis:Protocol.analysis -> string

val find : t -> string -> (string * string) list option
(** Counts a hit or a miss. *)

val add : t -> string -> (string * string) list -> unit
(** Counts an eviction when the budget forces one out. *)

val drop_dataset : t -> digest:string -> int
(** Drop every cached result for a dataset; returns how many. *)

val clear : t -> int

val length : t -> int

val capacity : t -> int

(** {1 Warm-start persistence}

    The cache can be dumped to a checksummed binary file on shutdown
    and replayed on startup, so a restarted server answers its first
    repeated queries from cache instead of recomputing them.  Cached
    payloads are keyed by content digest, so a stale file is harmless:
    entries for datasets that changed on disk simply never match. *)

val save : t -> string -> (int, string) result
(** [save t path] atomically writes every cached binding (temp file +
    rename); returns how many were written. *)

val restore : t -> string -> (int, string) result
(** [restore t path] replays a file written by [save], preserving the
    saved recency order and respecting the current capacity (when the
    file holds more entries than fit, the most recent ones win).
    A missing file restores zero entries; a corrupt one (bad magic,
    version skew, truncation, bit flips, checksum mismatch, a file
    shrinking mid-read) is reported as [Error] and leaves the cache as
    it was — [restore] never raises; a damaged cache file costs
    warmth, not availability. *)
