(** TCP address plumbing shared by the server, client, and loadgen. *)

(** Parse ["HOST:PORT"] or a bare ["PORT"].  An empty host
    (e.g. [":7070"]) means all interfaces; a bare port means
    loopback. *)
val parse_hostport : string -> (string * int, string) result

val resolve : string -> int -> (Unix.sockaddr, string) result

(** Bind + listen with [SO_REUSEADDR]; returns the fd and the bound
    port (which differs from the requested one when asking for
    port 0 — tests and the self-hosted loadgen depend on that). *)
val bind_listen :
  host:string -> port:int -> backlog:int -> (Unix.file_descr * int, string) result

(** Connect with [TCP_NODELAY]; diagnoses ECONNREFUSED. *)
val connect : host:string -> port:int -> (Unix.file_descr, string) result
