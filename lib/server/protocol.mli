(** The hgd wire protocol: newline-delimited requests, tab-separated
    replies.

    A request is one line of space-separated tokens, case-insensitive
    in the verb:

    {v
    LOAD <path>
    STATS <dataset>
    KCORE <dataset> [k]
    COVER <dataset> [uniform|degree|degree2] [r]
    STORAGE <dataset>
    POWERLAW <dataset>
    ADDVERTEX <dataset> <name>
    ADDEDGE <dataset> <name> [<vertex-id> ...]
    DELEDGE <dataset> <edge-id>
    CHECKPOINT <dataset>
    DATASETS
    INFO
    METRICS [table|prom]
    TRACE [n]
    EVICT [<dataset>]
    PING
    SHUTDOWN
    BATCH <n>
    v}

    [<dataset>] is a content digest as returned by [LOAD] (an
    unambiguous prefix of at least 4 hex digits is accepted).  The
    digest is the dataset's {e handle}: it stays stable across
    mutations; the per-dataset [epoch] counter in mutation replies is
    what names a specific state.

    Mutation verbs ([ADDVERTEX]/[ADDEDGE]/[DELEDGE]) bump the
    dataset's epoch; each is appended to the dataset's write-ahead log
    before it is applied, so an acknowledged mutation survives a
    crash.  [CHECKPOINT] compacts log and state into a fresh sibling
    snapshot.

    A reply is either

    {v
    OK <n>
    <key>\t<value>     (n times)
    v}

    or the single line [ERR <code> <message>].  A [busy] error carries
    a machine-readable retry hint between the code and the message:
    [ERR busy retry_after_ms=250 <message>].  Keys and values never
    contain tabs or newlines (the encoder replaces them with spaces),
    so a reply is always exactly [1 + n] lines.

    [BATCH <n>] pipelines n requests over one connection: the client
    sends the BATCH line followed by n ordinary request lines, and the
    server answers with n tagged sub-replies — for each item, the line
    [ITEM <i>] (0-based, in request order) followed by that item's
    standard OK/ERR framing.  Each sub-reply is flushed as soon as it
    is computed, so the client may consume item i while item i+1 is
    still being served.  [SHUTDOWN] and nested [BATCH] are rejected
    per-item with [bad-request]; a malformed item line likewise gets
    its own [ERR] without poisoning its neighbours. *)

type weighting = Uniform | Degree | Degree_squared

type analysis =
  | Stats
  | Kcore of int option  (** [None] selects the maximum core. *)
  | Cover of { weighting : weighting; r : int }
  | Storage
  | Powerlaw

type metrics_format =
  | Table       (** key/value summary lines (the default) *)
  | Prometheus  (** text exposition, one line per payload value *)

type request =
  | Load of string
  | Analyze of { dataset : string; analysis : analysis }
  | Add_vertex of { dataset : string; name : string }
      (** Append a vertex under the dataset's next epoch.  Names are
          single tokens (no spaces). *)
  | Add_edge of { dataset : string; name : string; members : int list }
      (** Append a hyperedge over existing vertex ids; an empty member
          list is legal. *)
  | Del_edge of { dataset : string; edge : int }
      (** Delete a hyperedge by current dense id; later ids shift down. *)
  | Checkpoint of string
      (** Compact the dataset's WAL into a fresh sibling snapshot. *)
  | Datasets
  | Info
      (** Daemon configuration and repair accounting: the k-core
          repair budget and strategy, cascade / component-repair /
          re-peel / budget-fallback totals, worker and cache settings. *)
  | Metrics of metrics_format
  | Trace of int option
      (** Slowest recent requests with per-stage span timings;
          [None] defaults to 10. *)
  | Evict of string option
      (** [Some digest] drops a dataset and its cached results;
          [None] clears the whole result cache. *)
  | Ping
  | Shutdown
  | Batch of int
      (** Header for a pipelined run of n requests on one connection;
          the n request lines follow on the wire. *)

type error_code =
  | Bad_request      (** unparsable or unknown verb / arguments *)
  | Unknown_dataset  (** digest not resident (or ambiguous prefix) *)
  | Parse_error      (** dataset file failed to parse *)
  | Io_error         (** dataset file could not be read *)
  | Timeout          (** computation exceeded the request deadline *)
  | Busy             (** admission refused / load shed; retry later *)
  | Internal         (** unexpected exception while serving *)

type reply =
  | Ok of (string * string) list
  | Err of {
      code : error_code;
      message : string;
      retry_after_ms : int option;
          (** Server's backoff hint; set on [Busy] replies.  Clients
              should wait at least this long before retrying. *)
    }

val err : ?retry_after_ms:int -> error_code -> string -> reply
(** [err code message] builds an [Err] reply (hint omitted unless
    given) — the constructor the server uses everywhere. *)

val max_line_bytes : int
(** Upper bound (1 MiB) on any single protocol line.  The server
    aborts requests whose line exceeds it; the client refuses replies
    whose line exceeds it. *)

val max_batch_items : int
(** Upper bound (1024) on the item count of a single [BATCH]. *)

val item_line : int -> string
(** [item_line i] is the tag line ["ITEM <i>"] framing sub-reply [i]
    of a batched reply (no trailing newline). *)

val parse_item_line : string -> int option
(** Inverse of {!item_line}; [None] when the line is not an item tag. *)

val parse_request : string -> (request, string) result

val request_line : request -> string
(** Canonical single-line rendering; [parse_request (request_line r)]
    yields a request equal to [r]. *)

val analysis_key : analysis -> string
(** Canonical cache-key fragment for an analysis, with defaulted
    arguments spelled out (e.g. ["kcore k=max"], ["cover w=degree2 r=1"]). *)

val weighting_of_string : string -> (weighting, string) result

val weighting_to_string : weighting -> string

val error_code_to_string : error_code -> string

val error_code_of_string : string -> error_code option

val encode_reply : reply -> string
(** Full reply text including the trailing newline. *)

val decode_reply : string -> (reply, string) result
(** Inverse of [encode_reply] (modulo key/value sanitization). *)
