module H = Hp_hypergraph.Hypergraph
module HP = Hp_hypergraph.Hypergraph_path
module HC = Hp_hypergraph.Hypergraph_core
module P = Protocol

module Log = Hp_util.Log

type config = {
  socket_path : string;
  workers : int;
  cache_capacity : int;
  request_timeout : float;
  compute_domains : int;
  preload : string list;
  queue_limit : int;
  shed_watermark : int;
  max_file_bytes : int;
  failpoints : string;
  stats_samples : int;
  cache_file : string option;
  wal_sync : Hp_wal.Wal.sync_policy;
  wal_checkpoint_every : int;
  kcore_budget : int;
  tcp : (string * int) option;
  http : (string * int) option;
}

let default_config ~socket_path =
  {
    socket_path;
    workers = Hp_util.Parallel.recommended_domains ();
    cache_capacity = 128;
    request_timeout = 30.0;
    compute_domains = 1;
    preload = [];
    queue_limit = 128;
    shed_watermark = 64;
    max_file_bytes = 1 lsl 30;
    failpoints = "";
    stats_samples = 0;
    cache_file = None;
    wal_sync = Hp_wal.Wal.Batch;
    wal_checkpoint_every = 0;
    kcore_budget = 4096;
    tcp = None;
    http = None;
  }

(* A worker job is either a whole blocking Unix-socket connection (the
   worker owns its read loop until the client leaves), or one
   already-framed request off a TCP connection (the event loop owns
   the socket; the worker only computes and hands bytes back).  Both
   carry the timestamp they were queued at so the worker can measure
   the queue wait. *)
type job =
  | Conn of Unix.file_descr * float
  | Parsed of parsed_job

and parsed_job = {
  pconn : Event_loop.conn;
  payload : Event_loop.payload;
  enqueued_at : float;
}

type t = {
  config : config;
  registry : Registry.t;
  cache : Result_cache.t;
  metrics : Metrics.t;
  trace : Trace.t;
  listen_fd : Unix.file_descr;
  tcp_port : int option;
  http_port : int option;
  started_at : float;
  stopping : bool Atomic.t;
  mutable pool : job Worker.t option;
  mutable accept_domain : unit Domain.t option;
  mutable event_loop : Event_loop.t option;
  finalize_mutex : Mutex.t;
  mutable finalized : bool;
}

let socket_path t = t.config.socket_path
let tcp_port t = t.tcp_port
let http_port t = t.http_port

(* ---------- analysis payloads ---------- *)

let float3 = Printf.sprintf "%.3f"
let float4 = Printf.sprintf "%.4f"

let names h ids =
  String.concat " " (Array.to_list (Array.map (H.vertex_name h) ids))

let powerlaw_lines hist =
  match Hp_stats.Powerlaw.fit_loglog hist with
  | fit ->
    [
      ("powerlaw_gamma", float4 fit.gamma);
      ("powerlaw_log10_c", float4 fit.log10_c);
      ("powerlaw_r2", float4 fit.r2);
    ]
  | exception Invalid_argument _ -> [ ("powerlaw_fit", "n/a") ]

(* The deterministic seed for server-side sampled sweeps: the result
   is cached under the same key as the exact sweep, so it must at
   least be reproducible within a daemon's lifetime. *)
let sampled_sweep_seed = 2004

let stats_payload ~domains ~deadline ~samples ~metrics h =
  let summary = HP.component_summary h in
  let sweep = HP.sweep_stats () in
  (* The completed-source count feeds the kernel gauge even when the
     deadline aborts the sweep mid-flight. *)
  let diam, apl, sweep_lines =
    Fun.protect
      ~finally:(fun () ->
        Metrics.incr metrics ~by:(HP.sources_visited sweep) "kernel_bfs_sources")
      (fun () ->
        if samples > 0 && samples < H.n_vertices h then begin
          let rng = Hp_util.Prng.create sampled_sweep_seed in
          let d, a =
            HP.sampled_diameter_and_average_path ~domains ~deadline ~stats:sweep
              rng h ~samples
          in
          (d, a, [ ("sampled_sources", string_of_int samples) ])
        end
        else begin
          let d, a = HP.diameter_and_average_path ~domains ~deadline ~stats:sweep h in
          (d, a, [])
        end)
  in
  let largest =
    if Array.length summary = 0 then []
    else
      let nv, ne = summary.(0) in
      [
        ("largest_component_vertices", string_of_int nv);
        ("largest_component_hyperedges", string_of_int ne);
      ]
  in
  [
    ("vertices", string_of_int (H.n_vertices h));
    ("hyperedges", string_of_int (H.n_edges h));
    ("incidence", string_of_int (H.total_incidence h));
    ("max_vertex_degree", string_of_int (H.max_vertex_degree h));
    ("max_hyperedge_size", string_of_int (H.max_edge_size h));
    ("components", string_of_int (Array.length summary));
  ]
  @ largest
  @ [ ("diameter", string_of_int diam); ("average_path", float3 apl) ]
  @ sweep_lines
  @ powerlaw_lines (Hp_stats.Degree_dist.vertex_histogram h)

let kcore_payload ~domains ~deadline ~metrics ~cores h k =
  let result, k =
    match cores with
    | Some dec ->
      (* The mutation stream maintains this decomposition incrementally
         (Hypergraph_maintain), so the core is assembled from its
         arrays without re-peeling. *)
      let k = match k with Some k -> k | None -> dec.HC.max_core in
      Metrics.incr metrics "kcore_served_maintained";
      (HC.core_of_decomposition h dec k, k)
    | None -> (
      match k with
      | Some k -> (HC.k_core ~domains ~deadline h k, k)
      | None ->
        let k, r = HC.max_core ~domains ~deadline h in
        (r, k))
  in
  (* Kernel profiling stats used to be computed and dropped here; they
     now feed the kernel_* gauges behind METRICS. *)
  Metrics.incr metrics ~by:result.stats.peel_rounds "kernel_peel_rounds";
  Metrics.incr metrics ~by:result.stats.maximality_checks "kernel_maximality_checks";
  Metrics.incr metrics ~by:result.stats.vertices_deleted "kernel_vertices_peeled";
  Metrics.incr metrics ~by:result.stats.edges_deleted "kernel_edges_deleted";
  [
    ("k", string_of_int k);
    ("core_vertices", string_of_int (H.n_vertices result.core));
    ("core_hyperedges", string_of_int (H.n_edges result.core));
    ("members", names h result.vertex_ids);
  ]

let cover_payload h (weighting : P.weighting) r =
  let weights =
    match weighting with
    | P.Uniform -> Hp_cover.Weighting.uniform h
    | P.Degree -> Hp_cover.Weighting.degree h
    | P.Degree_squared -> Hp_cover.Weighting.degree_squared h
  in
  let trace =
    if r <= 1 then Hp_cover.Greedy.vertex_cover_trace ~weights h
    else
      Hp_cover.Greedy.solve ~weights
        ~requirements:(Hp_cover.Multicover.uniform_requirements h ~r)
        h
  in
  [
    ("weighting", P.weighting_to_string weighting);
    ("r", string_of_int r);
    ("cover_size", string_of_int (Array.length trace.cover));
    ("total_weight", float3 trace.total_weight);
    ("average_degree", float3 (Hp_cover.Cover.average_degree h trace.cover));
    ("members", names h trace.cover);
  ]

let storage_payload h =
  let r = Hp_hypergraph.Storage.measure h in
  [
    ("hypergraph_entries", string_of_int r.hypergraph_entries);
    ("clique_entries", string_of_int r.clique_entries);
    ("clique_entries_raw", string_of_int r.clique_entries_raw);
    ("star_entries", string_of_int r.star_entries);
    ("intersection_entries", string_of_int r.intersection_entries);
  ]

let powerlaw_payload h =
  let hist = Hp_stats.Degree_dist.vertex_histogram h in
  let ls = powerlaw_lines hist in
  match Hp_stats.Powerlaw.fit_mle hist with
  | mle ->
    let ks =
      match Hp_stats.Powerlaw.fit_loglog hist with
      | fit -> [ ("ks_distance", float4 (Hp_stats.Powerlaw.ks_distance hist ~gamma:fit.gamma ~dmin:1)) ]
      | exception Invalid_argument _ -> []
    in
    ls
    @ [
        ("mle_gamma", float4 mle.gamma_mle);
        ("mle_tail_n", string_of_int mle.n_tail);
      ]
    @ ks
  | exception Invalid_argument _ -> ls

let compute_payload ~domains ~deadline ~samples ~metrics ~cores h :
    P.analysis -> (string * string) list = function
  | P.Stats -> stats_payload ~domains ~deadline ~samples ~metrics h
  | P.Kcore k -> kcore_payload ~domains ~deadline ~metrics ~cores h k
  | P.Cover { weighting; r } -> cover_payload h weighting r
  | P.Storage -> storage_payload h
  | P.Powerlaw -> powerlaw_payload h

(* ---------- request dispatch ---------- *)

(* Load provenance: where the resident bytes actually came from — the
   text parse, or an mmap'd sibling snapshot — plus whether a sibling
   snapshot had to be rejected. *)
let source_kvs (e : Registry.entry) =
  match e.source with
  | Registry.Text ->
    ("source", "text")
    :: (if e.fallback then [ ("snapshot_fallback", "true") ] else [])
  | Registry.Snapshot_file snap -> [ ("source", "snapshot"); ("snapshot", snap) ]

let entry_summary (e : Registry.entry) =
  let st = e.Registry.state in
  Printf.sprintf
    "path=%s epoch=%d vertices=%d hyperedges=%d incidence=%d bytes=%d source=%s"
    e.path st.Registry.epoch
    (H.n_vertices st.Registry.hypergraph)
    (H.n_edges st.Registry.hypergraph)
    (H.total_incidence st.Registry.hypergraph)
    e.bytes
    (match e.source with
    | Registry.Text -> if e.fallback then "text(fallback)" else "text"
    | Registry.Snapshot_file snap -> "snapshot:" ^ snap)

let recovery_kvs (e : Registry.entry) =
  match e.recovery with
  | None -> []
  | Some r ->
    [
      ("wal_replayed", string_of_int r.Registry.replayed);
      ("wal_torn_bytes", string_of_int r.Registry.torn_bytes);
      ("wal_healed_skew", string_of_bool r.Registry.healed_skew);
    ]

(* Shared by protocol LOAD and --preload, so recovery counters move no
   matter which door the dataset came in through. *)
let count_load_metrics metrics (entry : Registry.entry) fresh =
  if fresh then begin
    Metrics.incr metrics "datasets_loaded";
    (match entry.Registry.source with
    | Registry.Snapshot_file _ -> Metrics.incr metrics "snapshot_loads"
    | Registry.Text -> ());
    if entry.Registry.fallback then Metrics.incr metrics "snapshot_fallbacks";
    match entry.Registry.recovery with
    | None -> ()
    | Some r ->
      Metrics.incr metrics "wal_recoveries";
      Metrics.incr metrics ~by:r.Registry.replayed "wal_replayed_total";
      if r.Registry.torn_bytes > 0 then Metrics.incr metrics "wal_torn_tails";
      if r.Registry.healed_skew then Metrics.incr metrics "wal_skew_heals"
  end

let load_reply t path : P.reply =
  match Registry.load t.registry path with
  | Ok (entry, fresh) ->
    count_load_metrics t.metrics entry fresh;
    let st = entry.Registry.state in
    P.Ok
      ([
         ("digest", entry.digest);
         ("path", entry.path);
         ("epoch", string_of_int st.Registry.epoch);
         ("vertices", string_of_int (H.n_vertices st.Registry.hypergraph));
         ("hyperedges", string_of_int (H.n_edges st.Registry.hypergraph));
         ("incidence", string_of_int (H.total_incidence st.Registry.hypergraph));
         ("bytes", string_of_int entry.bytes);
         ("fresh", string_of_bool fresh);
       ]
      @ source_kvs entry @ recovery_kvs entry)
  | Error (Read_failed msg) ->
    Metrics.incr t.metrics "io_errors";
    P.err P.Io_error msg
  | Error (Parse_failed msg) ->
    Metrics.incr t.metrics "parse_errors";
    P.err P.Parse_error msg

(* How long a rejected client should wait before retrying: scale with
   the queue depth it was turned away at, clamped to keep herds of
   clients from all sleeping for minutes. *)
let retry_hint_ms depth = min 5000 (100 * (depth + 1))

let queue_depth t =
  match t.pool with Some pool -> Worker.pending pool | None -> 0

let analyze_reply t ~t0 ~tr dataset analysis : P.reply =
  match Registry.find t.registry dataset with
  | `Missing ->
    P.err P.Unknown_dataset (Printf.sprintf "no resident dataset %S" dataset)
  | `Ambiguous ->
    P.err P.Unknown_dataset (Printf.sprintf "ambiguous digest prefix %S" dataset)
  | `Found entry ->
    (* One field read gives a consistent epoch/hypergraph pair even if
       a mutation lands mid-request; the reply is then simply for the
       epoch it names. *)
    let st = entry.Registry.state in
    let key =
      Result_cache.key ~digest:entry.digest ~epoch:st.Registry.epoch ~analysis
    in
    (match Trace.timed tr Trace.Cache (fun () -> Result_cache.find t.cache key) with
    | Some payload ->
      Trace.set_cached tr true;
      P.Ok (payload @ [ ("cached", "true") ])
    | None ->
      let depth = queue_depth t in
      if t.config.shed_watermark > 0 && depth >= t.config.shed_watermark then begin
        (* Cache hits were answered above; starting a fresh computation
           while the queue is already deep only digs the hole deeper. *)
        Metrics.incr t.metrics "shed_cacheonly";
        P.err
          ~retry_after_ms:(retry_hint_ms depth)
          P.Busy
          (Printf.sprintf
             "queue depth %d at shed watermark %d; serving cached results only"
             depth t.config.shed_watermark)
      end
      else begin
        let budget = t.config.request_timeout in
        let deadline = Hp_util.Deadline.of_timeout budget in
        match
          Trace.timed tr Trace.Compute (fun () ->
              compute_payload ~domains:t.config.compute_domains ~deadline
                ~samples:t.config.stats_samples ~metrics:t.metrics
                ~cores:st.Registry.cores st.Registry.hypergraph analysis)
        with
        | payload ->
          Trace.timed tr Trace.Cache (fun () -> Result_cache.add t.cache key payload);
          let elapsed = Unix.gettimeofday () -. t0 in
          if budget > 0.0 && elapsed > budget then begin
            (* Analyses without deadline checks (cover, storage, ...) can
               still overrun; report that after the fact as before. *)
            Metrics.incr t.metrics "timeouts";
            P.err P.Timeout
              (Printf.sprintf
                 "computed in %.1f s, over the %.1f s budget (result cached)"
                 elapsed budget)
          end
          else P.Ok (payload @ [ ("cached", "false") ])
        | exception Hp_util.Deadline.Expired ->
          Metrics.incr t.metrics "timeouts";
          P.err P.Timeout
            (Printf.sprintf "aborted after %.1f s (budget %.1f s)"
               (Unix.gettimeofday () -. t0)
               budget)
        | exception e ->
          Metrics.incr t.metrics "compute_errors";
          P.err P.Internal (Printexc.to_string e)
      end)

let unknown_dataset_reply ds kind =
  match kind with
  | `Missing -> P.err P.Unknown_dataset (Printf.sprintf "no resident dataset %S" ds)
  | `Ambiguous ->
    P.err P.Unknown_dataset (Printf.sprintf "ambiguous digest prefix %S" ds)

(* Repair accounting: cascades and component re-peels get distinct
   counters, and the region size feeds the [kcore_repair_visited]
   value histogram so the distribution (not just the total) is
   observable. *)
let count_repair t (repair : Hp_hypergraph.Hypergraph_maintain.outcome) =
  match repair with
  | Hp_hypergraph.Hypergraph_maintain.Cascade visited ->
    Metrics.incr t.metrics "kcore_cascade_repairs";
    Metrics.observe_value t.metrics "kcore_repair_visited" visited
  | Hp_hypergraph.Hypergraph_maintain.Incremental visited ->
    Metrics.incr t.metrics "kcore_incremental_repairs";
    Metrics.observe_value t.metrics "kcore_repair_visited" visited
  | Hp_hypergraph.Hypergraph_maintain.Repeel ->
    Metrics.incr t.metrics "kcore_full_repeels"

let mutate_reply t dataset (op : Hp_wal.Wal.op) : P.reply =
  match Registry.mutate t.registry dataset op with
  | Ok a ->
    Metrics.incr t.metrics "mutations_total";
    Metrics.incr t.metrics "wal_records_appended";
    if a.Registry.checkpointed then Metrics.incr t.metrics "wal_checkpoints";
    count_repair t a.Registry.repair;
    P.Ok
      ([ ("epoch", string_of_int a.Registry.epoch) ]
      @ (match a.Registry.assigned with
        | Some id -> [ ("assigned", string_of_int id) ]
        | None -> [])
      @ [
          ("vertices", string_of_int a.Registry.n_vertices);
          ("hyperedges", string_of_int a.Registry.n_edges);
          ("checkpointed", string_of_bool a.Registry.checkpointed);
        ])
  | Error ((`Missing | `Ambiguous) as kind) -> unknown_dataset_reply dataset kind
  | Error (`Invalid msg) ->
    Metrics.incr t.metrics "mutation_rejects";
    P.err P.Bad_request msg
  | Error (`Io msg) ->
    Metrics.incr t.metrics "io_errors";
    P.err P.Io_error msg

let checkpoint_reply t dataset : P.reply =
  match Registry.checkpoint t.registry dataset with
  | Ok info ->
    Metrics.incr t.metrics "wal_checkpoints";
    P.Ok
      [
        ("snapshot", info.Registry.snapshot_path);
        ("identity", info.Registry.snapshot_identity);
        ("bytes", string_of_int info.Registry.snapshot_bytes);
        ("epoch", string_of_int info.Registry.at_epoch);
        ("records_folded", string_of_int info.Registry.records_folded);
      ]
  | Error ((`Missing | `Ambiguous) as kind) -> unknown_dataset_reply dataset kind
  | Error (`Io msg) ->
    Metrics.incr t.metrics "io_errors";
    P.err P.Io_error msg

(* Per-dataset epoch gauges: the handle names the series, the value is
   the mutation count the dataset has absorbed. *)
let epoch_gauges t =
  List.map
    (fun (e : Registry.entry) ->
      (e.Registry.digest, float_of_int e.Registry.state.Registry.epoch))
    (Registry.list t.registry)

(* Point-in-time values the Metrics store does not own, appended to
   both exposition formats. *)
let server_gauges t =
  [
    ("cache_entries", float_of_int (Result_cache.length t.cache));
    ("cache_capacity", float_of_int (Result_cache.capacity t.cache));
    ("datasets_resident",
     float_of_int (List.length (Registry.list t.registry)));
    ("workers", float_of_int t.config.workers);
    ("queue_pending", float_of_int (queue_depth t));
    ("queue_limit", float_of_int t.config.queue_limit);
    ("uptime_seconds", Unix.gettimeofday () -. t.started_at);
  ]
  @
  match t.event_loop with
  | Some loop ->
    [ ("tcp_open_connections", float_of_int (Event_loop.connections loop)) ]
  | None -> []

(* The one Prometheus rendering, shared by the protocol's
   [METRICS prom] and HTTP [GET /metrics]. *)
let prometheus_lines t =
  let restarts =
    match t.pool with Some pool -> Worker.restarts pool | None -> 0
  in
  Metrics.prometheus ~gauges:(server_gauges t)
    ~labeled_gauges:
      (List.map
         (fun (digest, epoch) -> ("dataset_epoch", [ ("dataset", digest) ], epoch))
         (epoch_gauges t))
    ~extra_counters:[ ("worker_restarts", restarts) ]
    (Metrics.freeze t.metrics)

let metrics_reply t (fmt : P.metrics_format) : P.reply =
  let restarts =
    match t.pool with Some pool -> Worker.restarts pool | None -> 0
  in
  match fmt with
  | P.Table ->
    P.Ok
      (Metrics.snapshot t.metrics
      @ [
          ("cache_entries", string_of_int (Result_cache.length t.cache));
          ("cache_capacity", string_of_int (Result_cache.capacity t.cache));
          ("datasets_resident", string_of_int (List.length (Registry.list t.registry)));
          ("workers", string_of_int t.config.workers);
          ("worker_restarts", string_of_int restarts);
          ("queue_pending", string_of_int (queue_depth t));
          ("queue_limit", string_of_int t.config.queue_limit);
          ("uptime_s", Printf.sprintf "%.1f" (Unix.gettimeofday () -. t.started_at));
        ]
      @ List.map
          (fun (digest, epoch) ->
            (* Table form flattens the label into the key; the digest
               prefix is what DATASETS/EVICT accept anyway. *)
            ( "dataset_epoch_" ^ String.sub digest 0 (min 12 (String.length digest)),
              string_of_int (int_of_float epoch) ))
          (epoch_gauges t))
  | P.Prometheus ->
    (* One exposition line per payload value, keyed by line number, so
       the reply stays inside the tab-separated framing; the client
       reassembles by printing values in order. *)
    P.Ok (List.mapi (fun i l -> (string_of_int i, l)) (prometheus_lines t))

(* Daemon configuration and repair accounting.  The repair totals are
   read from the maintainers themselves (not the Metrics store), so
   they include repairs the request path never saw — WAL-replay
   recovery batches, for instance. *)
let info_reply t : P.reply =
  let module HM = Hp_hypergraph.Hypergraph_maintain in
  let maintained = ref 0 in
  let casc = ref 0 and inc = ref 0 and full = ref 0 in
  let fallbacks = ref 0 and visited = ref 0 in
  List.iter
    (fun (e : Registry.entry) ->
      match e.Registry.maint with
      | None -> ()
      | Some m ->
        incr maintained;
        let s = HM.stats m in
        casc := !casc + s.HM.cascade_repairs;
        inc := !inc + s.HM.incremental_repairs;
        full := !full + s.HM.full_repeels;
        fallbacks := !fallbacks + s.HM.budget_fallbacks;
        visited := !visited + s.HM.repair_visited)
    (Registry.list t.registry);
  P.Ok
    [
      ("kcore_budget", string_of_int t.config.kcore_budget);
      ("kcore_strategy", HM.strategy_to_string HM.Subcore);
      ("kcore_cascade_repairs", string_of_int !casc);
      ("kcore_component_repairs", string_of_int !inc);
      ("kcore_full_repeels", string_of_int !full);
      ("kcore_budget_fallbacks", string_of_int !fallbacks);
      ("kcore_repair_visited_total", string_of_int !visited);
      ("datasets_maintained", string_of_int !maintained);
      ("datasets_resident",
       string_of_int (List.length (Registry.list t.registry)));
      ("workers", string_of_int t.config.workers);
      ("compute_domains", string_of_int t.config.compute_domains);
      ("cache_capacity", string_of_int (Result_cache.capacity t.cache));
      ("request_timeout_s", Printf.sprintf "%.1f" t.config.request_timeout);
      ("wal_checkpoint_every", string_of_int t.config.wal_checkpoint_every);
      ("max_batch_items", string_of_int P.max_batch_items);
      ("uptime_s",
       Printf.sprintf "%.1f" (Unix.gettimeofday () -. t.started_at));
    ]

let trace_reply t n : P.reply =
  let n = Option.value n ~default:10 in
  let records = Trace.slowest t.trace n in
  let entry i (r : Trace.record) =
    let p = string_of_int i ^ "." in
    [
      (p ^ "trace", string_of_int r.Trace.id);
      (p ^ "status", r.status);
      (p ^ "cached", string_of_bool r.cached);
      (p ^ "total_us", string_of_int r.total_us);
      (p ^ "queue_us", string_of_int r.queue_us);
      (p ^ "parse_us", string_of_int r.parse_us);
      (p ^ "cache_us", string_of_int r.cache_us);
      (p ^ "compute_us", string_of_int r.compute_us);
      (p ^ "write_us", string_of_int r.write_us);
      (p ^ "request", r.request);
    ]
  in
  P.Ok
    (("count", string_of_int (List.length records))
    :: List.concat (List.mapi entry records))

let verb_counter : P.request -> string = function
  | P.Load _ -> "requests_load"
  | P.Analyze { analysis = P.Stats; _ } -> "requests_stats"
  | P.Analyze { analysis = P.Kcore _; _ } -> "requests_kcore"
  | P.Analyze { analysis = P.Cover _; _ } -> "requests_cover"
  | P.Analyze { analysis = P.Storage; _ } -> "requests_storage"
  | P.Analyze { analysis = P.Powerlaw; _ } -> "requests_powerlaw"
  | P.Add_vertex _ -> "requests_addvertex"
  | P.Add_edge _ -> "requests_addedge"
  | P.Del_edge _ -> "requests_deledge"
  | P.Checkpoint _ -> "requests_checkpoint"
  | P.Datasets -> "requests_datasets"
  | P.Info -> "requests_info"
  | P.Metrics _ -> "requests_metrics"
  | P.Trace _ -> "requests_trace"
  | P.Evict _ -> "requests_evict"
  | P.Ping -> "requests_ping"
  | P.Shutdown -> "requests_shutdown"
  | P.Batch _ -> "requests_batch"

let handle_request t ~t0 ~tr (req : P.request) : P.reply * [ `Continue | `Stop ] =
  Metrics.incr t.metrics (verb_counter req);
  match req with
  | P.Load path -> (load_reply t path, `Continue)
  | P.Analyze { dataset; analysis } ->
    (analyze_reply t ~t0 ~tr dataset analysis, `Continue)
  | P.Add_vertex { dataset; name } ->
    (mutate_reply t dataset (Hp_wal.Wal.Add_vertex { name }), `Continue)
  | P.Add_edge { dataset; name; members } ->
    ( mutate_reply t dataset
        (Hp_wal.Wal.Add_edge { name; members = Array.of_list members }),
      `Continue )
  | P.Del_edge { dataset; edge } ->
    (mutate_reply t dataset (Hp_wal.Wal.Del_edge { edge }), `Continue)
  | P.Checkpoint dataset -> (checkpoint_reply t dataset, `Continue)
  | P.Datasets ->
    let entries = Registry.list t.registry in
    (P.Ok (List.map (fun e -> (e.Registry.digest, entry_summary e)) entries), `Continue)
  | P.Info -> (info_reply t, `Continue)
  | P.Metrics fmt -> (metrics_reply t fmt, `Continue)
  | P.Trace n -> (trace_reply t n, `Continue)
  | P.Evict None ->
    let n = Result_cache.clear t.cache in
    (P.Ok [ ("dropped_results", string_of_int n) ], `Continue)
  | P.Evict (Some ds) ->
    (match Registry.evict t.registry ds with
    | Some entry ->
      Metrics.incr t.metrics "datasets_evicted";
      let n = Result_cache.drop_dataset t.cache ~digest:entry.digest in
      ( P.Ok
          [ ("evicted_dataset", entry.digest); ("dropped_results", string_of_int n) ],
        `Continue )
    | None ->
      ( P.err P.Unknown_dataset (Printf.sprintf "no resident dataset %S" ds),
        `Continue ))
  | P.Ping ->
    ( P.Ok
        [
          ("pong", "hgd");
          ("uptime_s", Printf.sprintf "%.1f" (Unix.gettimeofday () -. t.started_at));
        ],
      `Continue )
  | P.Shutdown -> (P.Ok [ ("shutting_down", "true") ], `Stop)
  | P.Batch _ ->
    (* Batch headers are consumed at the connection level (they need
       to read the item lines off the wire); reaching here means a
       direct API caller passed one through. *)
    (P.err P.Bad_request "BATCH heads a pipelined run; items follow on the wire", `Continue)

(* ---------- connection plumbing ---------- *)

type conn = { fd : Unix.file_descr; mutable pending : string }

(* Reads block in slices of the poll interval so a worker parked on an
   idle keep-alive connection notices shutdown promptly. *)
let rec read_line t conn =
  match String.index_opt conn.pending '\n' with
  | Some i when i > P.max_line_bytes ->
    Metrics.incr t.metrics "oversized_requests";
    `Oversized
  | Some i ->
    let line = String.sub conn.pending 0 i in
    conn.pending <-
      String.sub conn.pending (i + 1) (String.length conn.pending - i - 1);
    let line =
      if line <> "" && line.[String.length line - 1] = '\r' then
        String.sub line 0 (String.length line - 1)
      else line
    in
    `Line line
  | None ->
    if String.length conn.pending > P.max_line_bytes then begin
      Metrics.incr t.metrics "oversized_requests";
      `Oversized
    end
    else begin
      let buf = Bytes.create 4096 in
      match Unix.read conn.fd buf 0 (Bytes.length buf) with
      | 0 ->
        if conn.pending = "" then `Eof
        else begin
          let line = conn.pending in
          conn.pending <- "";
          `Line line
        end
      | n ->
        conn.pending <- conn.pending ^ Bytes.sub_string buf 0 n;
        read_line t conn
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        if Atomic.get t.stopping then `Eof else read_line t conn
    end

(* How long a blocking reply write may stall on a full socket buffer
   (cumulative, per reply) before the connection is declared a lost
   cause and dropped. *)
let write_stall_budget = 30.0

let write_all fd s =
  Hp_util.Fault.point "server.write";
  (* A truncation fault writes a prefix and then fails, modelling a
     connection torn down mid-reply. *)
  let truncated = Hp_util.Fault.fires "server.write.trunc" in
  let s = if truncated then String.sub s 0 (String.length s / 2) else s in
  let b = Bytes.unsafe_of_string s in
  let rec go off stalled =
    if off < Bytes.length b then begin
      match Unix.write fd b off (Bytes.length b - off) with
      | n -> go (off + n) 0.0
      | exception Unix.Unix_error (EINTR, _, _) -> go off stalled
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        (* A nonblocking fd or an expired SO_SNDTIMEO: wait for
           writability in slices and keep going, up to a stall budget —
           EAGAIN is backpressure, not an I/O failure.  Past the
           budget the client is not consuming; give up on it (the
           caller accounts the connection, not the process). *)
        if stalled >= write_stall_budget then
          raise
            (Unix.Unix_error (Unix.EAGAIN, "write", "reply stalled past budget"))
        else begin
          (match Unix.select [] [ fd ] [] 0.25 with
          | _ -> ()
          | exception Unix.Unix_error (EINTR, _, _) -> ());
          go off (stalled +. 0.25)
        end
    end
  in
  go 0 0.0;
  if truncated then raise (Hp_util.Fault.Injected "server.write.trunc")

let initiate_stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* Stop taking new TCP connections right away; established ones
       are drained when [wait] stops the loop after the workers. *)
    Option.iter Event_loop.quiesce t.event_loop;
    (* Nudge the accept loop out of its blocking accept. *)
    try
      let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          try Unix.connect fd (Unix.ADDR_UNIX t.config.socket_path) with _ -> ())
    with _ -> ()
  end

(* Answer one already-parsed request line: compute the reply, hand the
   bytes to [write] behind [prefix] (the ITEM tag for batched items,
   "" otherwise) and account metrics/trace.  Shared by both
   transports: the Unix path's [write] is a blocking [write_all] that
   may raise, the TCP path's is [Event_loop.send], which never does.
   Service time is observed after [write] returns, so serialization
   and (for the blocking path) write time are part of the request
   latency; a failed write is still a finished — and accounted —
   request. *)
let answer_parsed t ~tr ~t0 ~prefix ~write parsed : [ `Continue | `Stop | `Close ]
    =
  let reply, control =
    match parsed with
    | Error msg ->
      Metrics.incr t.metrics "bad_requests";
      (P.err P.Bad_request msg, `Continue)
    | Ok req -> (
      try handle_request t ~t0 ~tr req
      with
      | Hp_util.Fault.Killed _ as e -> raise e
      | e ->
        Metrics.incr t.metrics "compute_errors";
        (P.err P.Internal (Printexc.to_string e), `Continue))
  in
  let status =
    match reply with
    | P.Err { code; _ } ->
      Metrics.incr t.metrics "responses_err";
      "err-" ^ P.error_code_to_string code
    | P.Ok _ -> "ok"
  in
  let account status =
    Metrics.observe_latency t.metrics (Unix.gettimeofday () -. t0);
    let r = Trace.finish t.trace tr ~status in
    if Log.enabled Log.Debug then
      Log.debug ~comp:"server"
        ~fields:
          [
            ("trace", string_of_int r.Trace.id);
            ("status", r.status);
            ("cached", string_of_bool r.cached);
            ("total_us", string_of_int r.total_us);
            ("queue_us", string_of_int r.queue_us);
            ("parse_us", string_of_int r.parse_us);
            ("cache_us", string_of_int r.cache_us);
            ("compute_us", string_of_int r.compute_us);
            ("write_us", string_of_int r.write_us);
            ("request", r.request);
          ]
        "request"
  in
  (match
     Trace.timed tr Trace.Write (fun () -> write (prefix ^ P.encode_reply reply))
   with
  | () -> account status
  | exception e ->
    account "write-error";
    raise e);
  (control :> [ `Continue | `Stop | `Close ])

(* A batch item that is a mutation names its dataset and WAL op shape;
   maximal consecutive runs of mutations on one dataset inside a TCP
   BATCH are served by a single [Registry.mutate_batch] below. *)
let mutation_of_request : P.request -> (string * Hp_wal.Wal.op) option = function
  | P.Add_vertex { dataset; name } ->
    Some (dataset, Hp_wal.Wal.Add_vertex { name })
  | P.Add_edge { dataset; name; members } ->
    Some (dataset, Hp_wal.Wal.Add_edge { name; members = Array.of_list members })
  | P.Del_edge { dataset; edge } -> Some (dataset, Hp_wal.Wal.Del_edge { edge })
  | _ -> None

(* Serve a run of >= 2 consecutive mutations on one dataset (items
   [first .. first + length run - 1] of a TCP batch) through one
   [Registry.mutate_batch]: one lock acquisition, one WAL window, one
   decomposition repair for the burst.  Per-item replies and counters
   match what the same ops through the per-op path would produce; the
   batch's single repair is counted once, and the auto-checkpoint (if
   any) is attributed to the last applied item. *)
let serve_mutation_run t ~write ~dataset ~first (run : (string * Hp_wal.Wal.op) array)
    =
  let t0 = Unix.gettimeofday () in
  let trs =
    Array.map
      (fun (line, op) ->
        Metrics.incr t.metrics "requests_total";
        Metrics.incr t.metrics "batch_items";
        Metrics.incr t.metrics
          (match op with
          | Hp_wal.Wal.Add_vertex _ -> "requests_addvertex"
          | Hp_wal.Wal.Add_edge _ -> "requests_addedge"
          | Hp_wal.Wal.Del_edge _ -> "requests_deledge");
        Trace.start t.trace ~queue_us:0 ~request:line ())
      run
  in
  let ops = Array.to_list (Array.map snd run) in
  let replies =
    match Registry.mutate_batch t.registry dataset ops with
    | Ok r ->
      if r.Registry.batch_applied > 0 then begin
        Metrics.incr t.metrics ~by:r.Registry.batch_applied "mutations_total";
        Metrics.incr t.metrics ~by:r.Registry.batch_applied
          "wal_records_appended"
      end;
      if r.Registry.batch_checkpointed then
        Metrics.incr t.metrics "wal_checkpoints";
      Option.iter (count_repair t) r.Registry.batch_repair;
      let last_ok = ref (-1) in
      Array.iteri
        (fun k item -> if Result.is_ok item then last_ok := k)
        r.Registry.items;
      Array.mapi
        (fun k item ->
          match item with
          | Ok (b : Registry.batch_item) ->
            let checkpointed = r.Registry.batch_checkpointed && k = !last_ok in
            P.Ok
              ([ ("epoch", string_of_int b.Registry.b_epoch) ]
              @ (match b.Registry.b_assigned with
                | Some id -> [ ("assigned", string_of_int id) ]
                | None -> [])
              @ [
                  ("vertices", string_of_int b.Registry.b_n_vertices);
                  ("hyperedges", string_of_int b.Registry.b_n_edges);
                  ("checkpointed", string_of_bool checkpointed);
                ])
          | Error (`Invalid msg) ->
            Metrics.incr t.metrics "mutation_rejects";
            P.err P.Bad_request msg
          | Error (`Io msg) ->
            Metrics.incr t.metrics "io_errors";
            P.err P.Io_error msg)
        r.Registry.items
    | Error ((`Missing | `Ambiguous) as kind) ->
      Array.map (fun _ -> unknown_dataset_reply dataset kind) run
    | Error (`Io msg) ->
      Array.map
        (fun _ ->
          Metrics.incr t.metrics "io_errors";
          P.err P.Io_error msg)
        run
  in
  Array.iteri
    (fun k reply ->
      let status =
        match reply with
        | P.Err { code; _ } ->
          Metrics.incr t.metrics "responses_err";
          "err-" ^ P.error_code_to_string code
        | P.Ok _ -> "ok"
      in
      let tr = trs.(k) in
      let account status =
        Metrics.observe_latency t.metrics (Unix.gettimeofday () -. t0);
        ignore (Trace.finish t.trace tr ~status)
      in
      match
        Trace.timed tr Trace.Write (fun () ->
            write (P.item_line (first + k) ^ "\n" ^ P.encode_reply reply))
      with
      | () -> account status
      | exception e ->
        account "write-error";
        raise e)
    replies

let serve_connection t (fd, accepted_at) =
  Metrics.incr t.metrics "connections";
  (* Accept-to-pickup wait.  It belongs to the connection, so it is
     charged to the queue-wait histogram once and to the first request's
     trace (later requests on a keep-alive connection never queued). *)
  let queue_wait = Unix.gettimeofday () -. accepted_at in
  Metrics.observe t.metrics "queue_wait" queue_wait;
  let pending_queue_us = ref (max 0 (int_of_float (queue_wait *. 1e6))) in
  (try Unix.setsockopt_float fd SO_RCVTIMEO 0.25 with _ -> ());
  let conn = { fd; pending = "" } in
  let answer ~tr ~t0 ~prefix parsed =
    answer_parsed t ~tr ~t0 ~prefix ~write:(write_all fd) parsed
  in
  (* A BATCH header was read: consume its n item lines and answer each
     in order, flushing every sub-reply as soon as it is computed so
     the client can overlap its reads with our compute.  Each item
     carries its own metrics counters and trace record; SHUTDOWN and
     nested BATCH are refused per-item without poisoning neighbours. *)
  let serve_batch ~header_tr ~header_t0 n =
    Metrics.incr t.metrics "batch_requests";
    let rec items i =
      if i >= n then `Continue
      else
        match read_line t conn with
        | `Eof -> `Close
        | `Oversized ->
          Metrics.incr t.metrics "responses_err";
          (try
             write_all fd
               (P.item_line i ^ "\n"
               ^ P.encode_reply
                   (P.err P.Bad_request
                      (Printf.sprintf "request line exceeds %d bytes"
                         P.max_line_bytes)))
           with _ -> ());
          `Close
        | `Line line ->
          let t0 = Unix.gettimeofday () in
          Metrics.incr t.metrics "requests_total";
          Metrics.incr t.metrics "batch_items";
          let tr = Trace.start t.trace ~queue_us:0 ~request:line () in
          let parsed =
            Trace.timed tr Trace.Parse (fun () ->
                match P.parse_request line with
                | Result.Ok P.Shutdown ->
                  Result.Error "SHUTDOWN is not allowed inside BATCH"
                | Result.Ok (P.Batch _) ->
                  Result.Error "nested BATCH is not allowed"
                | r -> r)
          in
          (match answer ~tr ~t0 ~prefix:(P.item_line i ^ "\n") parsed with
          | `Continue -> items (i + 1)
          | (`Stop | `Close) as c -> c)
    in
    let control = items 0 in
    (* The header's own record spans the whole pipelined run. *)
    Metrics.observe_latency t.metrics (Unix.gettimeofday () -. header_t0);
    ignore
      (Trace.finish t.trace header_tr
         ~status:(match control with `Continue -> "ok" | _ -> "aborted"));
    control
  in
  let rec loop () =
    match read_line t conn with
    | `Eof -> ()
    | `Oversized ->
      (* The line cannot be parsed for a request id, so answer once and
         drop the connection rather than scan for the next newline. *)
      Metrics.incr t.metrics "responses_err";
      write_all fd
        (P.encode_reply
           (P.err P.Bad_request
              (Printf.sprintf "request line exceeds %d bytes" P.max_line_bytes)))
    | `Line line when String.trim line = "" -> loop ()
    | `Line line ->
      let t0 = Unix.gettimeofday () in
      Metrics.incr t.metrics "requests_total";
      let queue_us = !pending_queue_us in
      pending_queue_us := 0;
      let tr = Trace.start t.trace ~queue_us ~request:line () in
      let parsed = Trace.timed tr Trace.Parse (fun () -> P.parse_request line) in
      let control =
        match parsed with
        | Result.Ok (P.Batch n) ->
          Metrics.incr t.metrics (verb_counter (P.Batch n));
          serve_batch ~header_tr:tr ~header_t0:t0 n
        | parsed -> answer ~tr ~t0 ~prefix:"" parsed
      in
      (match control with
      | `Continue -> loop ()
      | `Close -> ()
      | `Stop -> initiate_stop t)
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Hp_util.Fault.point "worker.job";
      try loop () with
      | Unix.Unix_error ((EPIPE | ECONNRESET | ESHUTDOWN), _, _) ->
        (* The peer vanished with a reply owed.  SIGPIPE is ignored at
           startup, so the write surfaced as EPIPE; account it and
           keep the worker alive. *)
        Metrics.incr t.metrics "client_disconnects"
      | Unix.Unix_error _ -> ())

(* One framed TCP request, computed on a worker while the event loop
   keeps the socket: replies go back through [Event_loop.send] (which
   buffers without blocking) and [finish] releases the connection for
   its next pipelined frame.  Whatever happens — including a lethal
   failpoint killing the domain — the connection must be released, or
   it would hang in-flight forever. *)
let serve_parsed t (job : parsed_job) =
  match t.event_loop with
  | None -> ()
  | Some loop ->
    let conn = job.pconn in
    let send s = Event_loop.send loop conn s in
    let queue_wait = Unix.gettimeofday () -. job.enqueued_at in
    Metrics.observe t.metrics "queue_wait" queue_wait;
    let queue_us = max 0 (int_of_float (queue_wait *. 1e6)) in
    let body () =
      Hp_util.Fault.point "worker.job";
      match job.payload with
      | Event_loop.Single line ->
        let t0 = Unix.gettimeofday () in
        Metrics.incr t.metrics "requests_total";
        let tr = Trace.start t.trace ~queue_us ~request:line () in
        let parsed =
          Trace.timed tr Trace.Parse (fun () -> P.parse_request line)
        in
        answer_parsed t ~tr ~t0 ~prefix:"" ~write:send parsed
      | Event_loop.Batch { header; n = _; items } ->
        let header_t0 = Unix.gettimeofday () in
        Metrics.incr t.metrics "requests_total";
        Metrics.incr t.metrics (verb_counter (P.Batch 0));
        Metrics.incr t.metrics "batch_requests";
        let header_tr = Trace.start t.trace ~queue_us ~request:header () in
        (* Pre-parse every item so maximal consecutive runs of
           mutations on one dataset can be grouped into a single
           [Registry.mutate_batch] (one lock, one WAL window, one
           decomposition repair); everything else — including
           singleton mutations, which keep the per-op repair ladder —
           goes through the ordinary per-item path. *)
        let arr =
          Array.of_list
            (List.map
               (fun line ->
                 ( line,
                   match P.parse_request line with
                   | Result.Ok P.Shutdown ->
                     Result.Error "SHUTDOWN is not allowed inside BATCH"
                   | Result.Ok (P.Batch _) ->
                     Result.Error "nested BATCH is not allowed"
                   | r -> r ))
               items)
        in
        let n = Array.length arr in
        let mut_of i =
          match snd arr.(i) with
          | Result.Ok req -> mutation_of_request req
          | Result.Error _ -> None
        in
        let single i =
          let line, parsed = arr.(i) in
          let t0 = Unix.gettimeofday () in
          Metrics.incr t.metrics "requests_total";
          Metrics.incr t.metrics "batch_items";
          let tr = Trace.start t.trace ~queue_us:0 ~request:line () in
          answer_parsed t ~tr ~t0
            ~prefix:(P.item_line i ^ "\n")
            ~write:send parsed
        in
        let rec go i =
          if i >= n then `Continue
          else
            match mut_of i with
            | Some (ds, _) ->
              let j = ref i in
              while
                !j + 1 < n
                &&
                match mut_of (!j + 1) with
                | Some (ds', _) -> String.equal ds' ds
                | None -> false
              do
                incr j
              done;
              if !j = i then (
                match single i with
                | `Continue -> go (i + 1)
                | (`Stop | `Close) as c -> c)
              else begin
                let run =
                  Array.init
                    (!j - i + 1)
                    (fun k ->
                      let line, _ = arr.(i + k) in
                      match mut_of (i + k) with
                      | Some (_, op) -> (line, op)
                      | None -> assert false)
                in
                serve_mutation_run t ~write:send ~dataset:ds ~first:i run;
                go (!j + 1)
              end
            | None -> (
              match single i with
              | `Continue -> go (i + 1)
              | (`Stop | `Close) as c -> c)
        in
        let control = go 0 in
        Metrics.observe_latency t.metrics (Unix.gettimeofday () -. header_t0);
        ignore
          (Trace.finish t.trace header_tr
             ~status:(match control with `Continue -> "ok" | _ -> "aborted"));
        control
    in
    (match body () with
    | `Continue -> Event_loop.finish loop conn ~close:false
    | `Close -> Event_loop.finish loop conn ~close:true
    | `Stop ->
      Event_loop.finish loop conn ~close:true;
      initiate_stop t
    | exception e ->
      Event_loop.finish loop conn ~close:true;
      raise e)

(* Admission decision for a framed TCP request; runs on the loop
   domain, so it only queues and returns.  Unlike the Unix path, a
   busy rejection answers on the existing connection and keeps it open
   — reconnecting through a full queue would only add load. *)
let on_loop_request t pconn payload : Event_loop.verdict =
  if Atomic.get t.stopping then Event_loop.Close_now
  else
    match t.pool with
    | None -> Event_loop.Close_now
    | Some pool -> (
      let job = Parsed { pconn; payload; enqueued_at = Unix.gettimeofday () } in
      match Worker.submit pool job with
      | `Accepted -> Event_loop.Dispatched
      | `Stopping -> Event_loop.Close_now
      | `Busy depth ->
        Metrics.incr t.metrics "busy_rejections";
        Event_loop.Reply_now
          (P.encode_reply
             (P.err
                ~retry_after_ms:(retry_hint_ms depth)
                P.Busy
                (Printf.sprintf "job queue full (%d pending)" depth))))

(* The scrape endpoints.  Deliberately tiny: two GET paths, answered
   on the loop domain from in-memory state (no dataset work, no
   workers), one request per connection. *)
let http_response t ~peer:_ lines =
  let bad () = Http.response ~status:400 "bad request\n" in
  match lines with
  | [] -> bad ()
  | request_line :: _ -> (
    match Http.parse_request_line request_line with
    | None -> bad ()
    | Some { Http.meth; path } ->
      if meth <> "GET" && meth <> "HEAD" then
        Http.response ~status:405 "method not allowed\n"
      else begin
        let head_only = meth = "HEAD" in
        match path with
        | "/healthz" ->
          if Atomic.get t.stopping then
            Http.response ~head_only ~status:503 "stopping\n"
          else Http.response ~head_only ~status:200 "ok\n"
        | "/metrics" ->
          let body = String.concat "\n" (prometheus_lines t) ^ "\n" in
          Http.response ~content_type:Http.prometheus_content_type ~head_only
            ~status:200 body
        | _ -> Http.response ~head_only ~status:404 "not found\n"
      end)

let accept_loop t =
  let rec go () =
    if Atomic.get t.stopping then ()
    else begin
      match Unix.accept t.listen_fd with
      | fd, _ ->
        if Atomic.get t.stopping then (try Unix.close fd with _ -> ())
        else begin
          match t.pool with
          | None -> Unix.close fd
          | Some pool -> (
            match Worker.submit pool (Conn (fd, Unix.gettimeofday ())) with
            | `Accepted -> ()
            | `Stopping -> ( try Unix.close fd with _ -> ())
            | `Busy depth ->
              (* Reject at the door with a machine-readable backoff hint
                 instead of queueing unboundedly or hanging up mute. *)
              Metrics.incr t.metrics "busy_rejections";
              let reply =
                P.err
                  ~retry_after_ms:(retry_hint_ms depth)
                  P.Busy
                  (Printf.sprintf "job queue full (%d pending)" depth)
              in
              (try write_all fd (P.encode_reply reply) with _ -> ());
              (try Unix.close fd with _ -> ()))
        end;
        go ()
      | exception Unix.Unix_error (EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> ()
    end
  in
  go ();
  (try Unix.close t.listen_fd with _ -> ());
  (* No longer accepting: remove the rendezvous point right away, so a
     SHUTDOWN client observes the file gone once its reply arrives and
     a restarting server never sees its own stale socket. *)
  try Unix.unlink t.config.socket_path with _ -> ()

(* ---------- lifecycle ---------- *)

let start config =
  let ( let* ) = Result.bind in
  let* () = if config.workers >= 1 then Ok () else Error "workers must be >= 1" in
  let* () =
    if config.cache_capacity >= 0 then Ok () else Error "cache capacity must be >= 0"
  in
  let* () =
    if config.compute_domains >= 1 then Ok () else Error "compute domains must be >= 1"
  in
  let* () =
    if config.queue_limit >= 1 then Ok () else Error "queue limit must be >= 1"
  in
  let* () =
    if config.max_file_bytes >= 0 then Ok () else Error "max file bytes must be >= 0"
  in
  let* () =
    if config.wal_checkpoint_every >= 0 then Ok ()
    else Error "wal checkpoint interval must be >= 0"
  in
  let* () =
    if config.failpoints = "" then Ok ()
    else
      match Hp_util.Fault.configure config.failpoints with
      | Ok () -> Ok ()
      | Error msg -> Error ("failpoints: " ^ msg)
  in
  (* A client vanishing mid-reply must surface as EPIPE, not kill the
     daemon. *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
  let metrics = Metrics.create () in
  let registry =
    Registry.create ~max_file_bytes:config.max_file_bytes
      ~wal_sync:config.wal_sync ~checkpoint_every:config.wal_checkpoint_every
      ~kcore_budget:config.kcore_budget ()
  in
  let* () =
    List.fold_left
      (fun acc path ->
        let* () = acc in
        match Registry.load registry path with
        | Ok (entry, fresh) ->
          count_load_metrics metrics entry fresh;
          Ok ()
        | Error (Registry.Read_failed msg | Registry.Parse_failed msg) -> Error msg)
      (Ok ()) config.preload
  in
  (* Replace a stale socket file, but refuse to displace a live server. *)
  let* () =
    if not (Sys.file_exists config.socket_path) then Ok ()
    else begin
      let probe = Unix.socket PF_UNIX SOCK_STREAM 0 in
      let live =
        try
          Unix.connect probe (Unix.ADDR_UNIX config.socket_path);
          true
        with _ -> false
      in
      (try Unix.close probe with _ -> ());
      if live then Error (config.socket_path ^ ": a server is already listening")
      else begin
        (try Unix.unlink config.socket_path with _ -> ());
        Ok ()
      end
    end
  in
  let* listen_fd =
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    try
      Unix.bind fd (Unix.ADDR_UNIX config.socket_path);
      Unix.listen fd 64;
      Ok fd
    with Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with _ -> ());
      Error
        (Printf.sprintf "cannot bind %s: %s" config.socket_path
           (Unix.error_message err))
  in
  let release_unix () =
    (try Unix.close listen_fd with _ -> ());
    try Unix.unlink config.socket_path with _ -> ()
  in
  let* tcp_listen =
    match config.tcp with
    | None -> Ok None
    | Some (host, port) -> (
      match Netaddr.bind_listen ~host ~port ~backlog:128 with
      | Ok (fd, bound) -> Ok (Some (fd, bound))
      | Error e ->
        release_unix ();
        Error e)
  in
  let* http_listen =
    match config.http with
    | None -> Ok None
    | Some (host, port) -> (
      match Netaddr.bind_listen ~host ~port ~backlog:64 with
      | Ok (fd, bound) -> Ok (Some (fd, bound))
      | Error e ->
        release_unix ();
        Option.iter (fun (fd, _) -> try Unix.close fd with _ -> ()) tcp_listen;
        Error e)
  in
  let t =
    {
      config;
      registry;
      cache = Result_cache.create ~capacity:config.cache_capacity ~metrics ();
      metrics;
      listen_fd;
      tcp_port = Option.map snd tcp_listen;
      http_port = Option.map snd http_listen;
      trace = Trace.create ();
      started_at = Unix.gettimeofday ();
      stopping = Atomic.make false;
      pool = None;
      accept_domain = None;
      event_loop = None;
      finalize_mutex = Mutex.create ();
      finalized = false;
    }
  in
  (* Warm start: replay the previous run's result cache before the
     first connection is accepted.  A missing or damaged file only
     means a cold cache. *)
  Option.iter
    (fun path ->
      match Result_cache.restore t.cache path with
      | Ok n ->
        Metrics.incr metrics ~by:n "cache_restored";
        if n > 0 then
          Log.info ~comp:"server"
            ~fields:[ ("cache_file", path); ("entries", string_of_int n) ]
            "result cache restored"
      | Error msg ->
        Log.warn ~comp:"server"
          ~fields:[ ("cache_file", path); ("error", msg) ]
          "result cache restore failed; starting cold")
    config.cache_file;
  t.pool <-
    Some
      (Worker.create ~workers:config.workers ~max_pending:config.queue_limit
         ~lethal:(function Hp_util.Fault.Killed _ -> true | _ -> false)
         ~on_exception:(fun e ->
           Metrics.incr metrics "worker_exceptions";
           Log.warn ~comp:"worker"
             ~fields:[ ("exn", Printexc.to_string e) ]
             "handler exception captured")
         (fun job ->
           match job with
           | Conn (fd, at) -> serve_connection t (fd, at)
           | Parsed p -> serve_parsed t p));
  (match (tcp_listen, http_listen) with
  | None, None -> ()
  | _ ->
    let listeners =
      (match tcp_listen with Some (fd, _) -> [ (fd, `Protocol) ] | None -> [])
      @ match http_listen with Some (fd, _) -> [ (fd, `Http) ] | None -> []
    in
    t.event_loop <-
      Some
        (Event_loop.create ~metrics ~on_request:(on_loop_request t)
           ~on_http:(fun ~peer lines -> http_response t ~peer lines)
           ~listeners ()));
  t.accept_domain <- Some (Domain.spawn (fun () -> accept_loop t));
  Log.info ~comp:"server"
    ~fields:
      ([
         ("socket", config.socket_path);
         ("workers", string_of_int config.workers);
         ("queue_limit", string_of_int config.queue_limit);
         ("cache_capacity", string_of_int config.cache_capacity);
         ("compute_domains", string_of_int config.compute_domains);
         ("stats_samples", string_of_int config.stats_samples);
       ]
      @ (match (t.tcp_port, config.tcp) with
        | Some p, Some (host, _) -> [ ("tcp", Printf.sprintf "%s:%d" host p) ]
        | _ -> [])
      @ (match (t.http_port, config.http) with
        | Some p, Some (host, _) -> [ ("http", Printf.sprintf "%s:%d" host p) ]
        | _ -> [])
      @
      match t.event_loop with
      | Some loop -> [ ("event_backend", Event_loop.backend loop) ]
      | None -> [])
    "listening";
  Ok t

let request_stop = initiate_stop

let wait t =
  Mutex.lock t.finalize_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.finalize_mutex)
    (fun () ->
      if not t.finalized then begin
        Option.iter Domain.join t.accept_domain;
        Option.iter Worker.shutdown t.pool;
        (* Workers drained after the loop quiesced: every accepted TCP
           request has produced its reply bytes; stop the loop so it
           flushes outboxes and closes the remaining connections. *)
        Option.iter
          (fun loop ->
            Event_loop.stop loop;
            Event_loop.join loop)
          t.event_loop;
        (* Workers are drained: no more appends are coming, so make
           every Batch/Never-policy WAL tail durable before exit. *)
        Registry.sync_wals t.registry;
        (try Unix.unlink t.config.socket_path with _ -> ());
        (* Workers are drained: the cache is quiescent, dump it for the
           next run. *)
        Option.iter
          (fun path ->
            match Result_cache.save t.cache path with
            | Ok n ->
              Log.info ~comp:"server"
                ~fields:[ ("cache_file", path); ("entries", string_of_int n) ]
                "result cache saved"
            | Error msg ->
              Log.warn ~comp:"server"
                ~fields:[ ("cache_file", path); ("error", msg) ]
                "result cache save failed")
          t.config.cache_file;
        t.finalized <- true;
        Log.info ~comp:"server"
          ~fields:
            [
              ( "uptime_s",
                Printf.sprintf "%.3f" (Unix.gettimeofday () -. t.started_at) );
            ]
          "stopped"
      end)

let stop t =
  initiate_stop t;
  wait t

let run config =
  match start config with
  | Error _ as e -> e
  | Ok t ->
    wait t;
    Ok ()
