(** Many-connection TCP load generator: the measurement half of the
    [hgtool loadgen] command and the tcp-load CI job.

    Drives a live hgd TCP endpoint with blocking {!Client}s on
    threads — the adversarial traffic shape the event loop absorbs —
    in two phases: one connection alone (the round-trip floor), then
    [connections] concurrent clients running the same mixed
    KCORE/STATS/BATCH/PING workload.  The throughput ratio of the two
    ("scaleup") is a same-host ratio, so the committed baseline
    transfers across machines like the kernel-bench speedup guards.

    Repeated analysis requests are served from the result cache after
    an explicit warm-up pass, so phases measure the socket path and
    event loop, not kernel time. *)

type config = {
  host : string;
  port : int;
  connections : int;        (** Concurrent clients in the loaded phase. *)
  requests_per_conn : int;
  dataset : string option;
      (** Digest to aim KCORE/STATS/POWERLAW at; [None] degrades the
          mix to PING/DATASETS/batches needing no resident dataset. *)
  stalled : int;
      (** Extra connections that send half a request line and hold the
          socket for the whole loaded phase — head-of-line-blocking
          regression pressure, excluded from throughput. *)
  seed : int;               (** Workload-mix PRNG seed. *)
  mutate : float;
      (** Fraction of each client's requests that are
          ADDVERTEX/ADDEDGE/DELEDGE against [dataset] — the WAL +
          incremental k-core repair write path under the same
          concurrency.  Clients delete only edges they added (ids
          remembered from [assigned] replies); ids gone stale under
          concurrent deleters draw an [ERR] that is accounted as a
          [mutation_races], not a failure.  0 (the default) keeps the
          mix read-only; requires [dataset] when positive. *)
}

val default_config : host:string -> port:int -> config
(** 64 connections x 50 requests, no dataset, no stalled extras,
    read-only mix. *)

type percentiles = {
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
  mean_ms : float;
}

type phase = {
  label : string;
  connections : int;
  requests : int;           (** Completed with an [OK] reply. *)
  failures : int;           (** Transport errors + [ERR] replies. *)
  mutations : int;          (** Mutation requests acknowledged [OK]. *)
  mutation_races : int;
      (** Mutations rejected with a protocol [ERR] — expected
          write-write contention (stale DELEDGE ids), kept out of
          [failures] so the zero-failure guard still holds. *)
  elapsed_s : float;
  throughput_rps : float;
  latency : percentiles;
}

type report = { single : phase; loaded : phase; scaleup : float }

val run : config -> (report, string) result
(** Warm up, run both phases, aggregate.  [Error] if the server is
    unreachable or rejects the warm-up. *)

val to_json : generated_at:string -> report -> string
(** The BENCH_tcp.json artifact body (newline-terminated). *)

val check : baseline:string -> report -> (unit, string) result
(** The [--check-tcp] CI guard against the contents of
    [bench/tcp_baseline.json]: every request must have succeeded, and
    the measured scaleup must be at least half the baseline's. *)
