module H = Hp_hypergraph.Hypergraph
module B = Hp_util.Binary
module Md5 = Hp_util.Md5

(* On-disk layout (DESIGN.md §11), all integers little-endian u64:

     0   8    magic "HGSNAP\r\n"
     8   8    format version
     16  8    flags (bit0 = vertex names, bit1 = edge names)
     24  8    n_vertices
     32  8    n_edges
     40  8    incidence (|E|)
     48  16   identity: MD5 over the section payloads in table order
     64  8    section count c
     72  32c  section table: kind, offset, length, checksum
     72+32c 8 table checksum over bytes [0, 72+32c)
     ...      section payloads, each 8-byte aligned, blobs zero-padded

   Offset sections (CSR prefix sums, name offsets) are u64 words; the
   two incidence value sections (edge_members, vertex_adj) are u32 —
   vertex and edge ids are bounded by 2^31 at pack time, and halving
   the dominant sections halves what a load must fault in and
   checksum.  Name blobs are raw bytes.

   Section checksums are the word-folding Binary.hash64_words over the
   8-byte-aligned extent (true payload plus its zero padding), so
   verification costs one multiply per word, not per byte; the header
   table keeps the byte-wise Binary.hash64 since it is tiny.  The MD5
   identity covers the true-length payloads only, so identities are
   independent of padding.

   The '\r\n' in the magic catches newline-translating transports the
   same way PNG's does. *)

let magic = "HGSNAP\r\n"
let version = 1
let header_fixed = 72
let entry_bytes = 32
let max_sections = 64

let flag_vertex_names = 1
let flag_edge_names = 2

let kind_edge_off = 1
let kind_edge_members = 2
let kind_vertex_off = 3
let kind_vertex_adj = 4
let kind_vertex_name_off = 5
let kind_vertex_name_blob = 6
let kind_edge_name_off = 7
let kind_edge_name_blob = 8

let kind_name = function
  | 1 -> "edge_off"
  | 2 -> "edge_members"
  | 3 -> "vertex_off"
  | 4 -> "vertex_adj"
  | 5 -> "vertex_name_off"
  | 6 -> "vertex_name_blob"
  | 7 -> "edge_name_off"
  | 8 -> "edge_name_blob"
  | k -> "section" ^ string_of_int k

type error =
  | Io of string
  | Truncated of { what : string; expected : int; got : int }
  | Bad_magic
  | Version_skew of { found : int }
  | Digest_mismatch of string
  | Malformed of string

let error_to_string = function
  | Io msg -> "io: " ^ msg
  | Truncated { what; expected; got } ->
    Printf.sprintf "truncated: %s needs %d bytes, file has %d" what expected got
  | Bad_magic -> "bad magic: not a hyperprot snapshot"
  | Version_skew { found } ->
    Printf.sprintf "version skew: format %d, this build reads %d" found version
  | Digest_mismatch what -> Printf.sprintf "digest mismatch in %s" what
  | Malformed msg -> "malformed: " ^ msg

type i64_array =
  (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type i32_array =
  (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type char_array =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  path : string;
  identity : string;
  n_vertices : int;
  n_edges : int;
  incidence : int;
  file_bytes : int;
  edge_off : i64_array;
  edge_members : i32_array;
  vertex_off : i64_array;
  vertex_adj : i32_array;
  vertex_names : string array option;
  edge_names : string array option;
  sections : (string * int * int) list;
}

type pack_info = { identity : string; bytes : int }

let file_extension = ".hgsnap"
let sibling_path path = Filename.remove_extension path ^ file_extension

(* ---------- pack ---------- *)

let i64_payload n fill =
  let b = Bytes.create (8 * n) in
  for i = 0 to n - 1 do
    B.set_int_le b ~pos:(8 * i) (fill i)
  done;
  b

let offsets_payload n size =
  (* n+1 prefix sums of [size]. *)
  let acc = ref 0 in
  i64_payload (n + 1) (fun i ->
      if i > 0 then acc := !acc + size (i - 1);
      !acc)

let name_payloads names =
  let n = Array.length names in
  let blob = Buffer.create 256 in
  let off =
    i64_payload (n + 1) (fun i ->
        if i > 0 then Buffer.add_string blob names.(i - 1);
        Buffer.length blob)
  in
  (off, Buffer.to_bytes blob)

let align8 n = (n + 7) land lnot 7

let pack h path =
  let nv = H.n_vertices h and ne = H.n_edges h in
  if nv > 0x7FFFFFFF || ne > 0x7FFFFFFF then
    invalid_arg "Snapshot.pack: id spaces beyond 2^31 do not fit u32 sections";
  let inc = H.total_incidence h in
  let member e i = (H.edge_members h e).(i) in
  let incident v i = (H.vertex_edges h v).(i) in
  let edge_off = offsets_payload ne (H.edge_size h) in
  let edge_members =
    let b = Bytes.create (4 * inc) in
    let pos = ref 0 in
    for e = 0 to ne - 1 do
      for i = 0 to H.edge_size h e - 1 do
        B.set_u32_le b ~pos:!pos (member e i);
        pos := !pos + 4
      done
    done;
    b
  in
  let vertex_off = offsets_payload nv (H.vertex_degree h) in
  let vertex_adj =
    let b = Bytes.create (4 * inc) in
    let pos = ref 0 in
    for v = 0 to nv - 1 do
      for i = 0 to H.vertex_degree h v - 1 do
        B.set_u32_le b ~pos:!pos (incident v i);
        pos := !pos + 4
      done
    done;
    b
  in
  let vnames = H.vertex_names_opt h in
  let enames = H.edge_names_opt h in
  let sections =
    [ (kind_edge_off, edge_off);
      (kind_edge_members, edge_members);
      (kind_vertex_off, vertex_off);
      (kind_vertex_adj, vertex_adj) ]
    @ (match vnames with
      | None -> []
      | Some names ->
        let off, blob = name_payloads names in
        [ (kind_vertex_name_off, off); (kind_vertex_name_blob, blob) ])
    @
    match enames with
    | None -> []
    | Some names ->
      let off, blob = name_payloads names in
      [ (kind_edge_name_off, off); (kind_edge_name_blob, blob) ]
  in
  let count = List.length sections in
  let table_end = header_fixed + (entry_bytes * count) + 8 in
  let identity =
    let ctx = Md5.init () in
    List.iter (fun (_, p) -> Md5.feed ctx p ~pos:0 ~len:(Bytes.length p)) sections;
    Md5.digest ctx
  in
  (* (kind, true length, zero-padded payload): the file stores and
     checksums the padded extent, the table records the true length. *)
  let padded =
    List.map
      (fun (kind, payload) ->
        let len = Bytes.length payload in
        if len land 7 = 0 then (kind, len, payload)
        else begin
          let p = Bytes.make (align8 len) '\000' in
          Bytes.blit payload 0 p 0 len;
          (kind, len, p)
        end)
      sections
  in
  let flags =
    (if vnames <> None then flag_vertex_names else 0)
    lor (if enames <> None then flag_edge_names else 0)
  in
  let head = Bytes.make table_end '\000' in
  Bytes.blit_string magic 0 head 0 8;
  B.set_int_le head ~pos:8 version;
  B.set_int_le head ~pos:16 flags;
  B.set_int_le head ~pos:24 nv;
  B.set_int_le head ~pos:32 ne;
  B.set_int_le head ~pos:40 inc;
  Bytes.blit_string identity 0 head 48 16;
  B.set_int_le head ~pos:64 count;
  let offset = ref table_end in
  List.iteri
    (fun i (kind, len, payload) ->
      let pos = header_fixed + (entry_bytes * i) in
      B.set_int_le head ~pos kind;
      B.set_int_le head ~pos:(pos + 8) !offset;
      B.set_int_le head ~pos:(pos + 16) len;
      B.set_i64_le head ~pos:(pos + 24)
        (Int64.of_int
           (B.hash64_words B.hash64_seed payload ~pos:0
              ~len:(Bytes.length payload)));
      offset := !offset + Bytes.length payload)
    padded;
  B.set_i64_le head ~pos:(table_end - 8)
    (Int64.of_int (B.hash64 B.hash64_seed head ~pos:0 ~len:(table_end - 8)));
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_bytes oc head;
     List.iter (fun (_, _, payload) -> output_bytes oc payload) padded;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  { identity = Md5.to_hex identity; bytes = !offset }

(* ---------- load ---------- *)

let ( let* ) = Result.bind

(* Word-folding checksums over mapped views, mirroring
   B.hash64_words.  Three flavors so each section is verified through
   the same mapping its consumer reads later — checksumming faults the
   pages in exactly once, instead of once per mapping.  The caller has
   bounds-checked the section against the file size, which justifies
   unsafe_get; splitting words with to_int/logand/shift keeps
   everything in primitives the compiler leaves unboxed, so verifying
   megabytes costs one load and one serial multiply per word. *)
let hash64_words_i64 (w : i64_array) ~pos_words ~count_words =
  let h = ref B.hash64_seed in
  for j = pos_words to pos_words + count_words - 1 do
    let x = Bigarray.Array1.unsafe_get w j in
    let lo = Int64.to_int (Int64.logand x 0xFFFFFFFFL) in
    let hi = Int64.to_int (Int64.shift_right_logical x 32) in
    h := B.hash64_word !h ~lo ~hi
  done;
  !h

let hash64_words_i32 (m : i32_array) ~pos_elts ~count_words =
  let h = ref B.hash64_seed in
  for j = 0 to count_words - 1 do
    let p = pos_elts + (2 * j) in
    let lo = Int32.to_int (Bigarray.Array1.unsafe_get m p) land 0xFFFFFFFF in
    let hi =
      Int32.to_int (Bigarray.Array1.unsafe_get m (p + 1)) land 0xFFFFFFFF
    in
    h := B.hash64_word !h ~lo ~hi
  done;
  !h

let hash64_words_char (m : char_array) ~pos ~count_words =
  let h = ref B.hash64_seed in
  for j = 0 to count_words - 1 do
    let p = pos + (8 * j) in
    let lo =
      Char.code (Bigarray.Array1.unsafe_get m p)
      lor (Char.code (Bigarray.Array1.unsafe_get m (p + 1)) lsl 8)
      lor (Char.code (Bigarray.Array1.unsafe_get m (p + 2)) lsl 16)
      lor (Char.code (Bigarray.Array1.unsafe_get m (p + 3)) lsl 24)
    in
    let hi =
      Char.code (Bigarray.Array1.unsafe_get m (p + 4))
      lor (Char.code (Bigarray.Array1.unsafe_get m (p + 5)) lsl 8)
      lor (Char.code (Bigarray.Array1.unsafe_get m (p + 6)) lsl 16)
      lor (Char.code (Bigarray.Array1.unsafe_get m (p + 7)) lsl 24)
    in
    h := B.hash64_word !h ~lo ~hi
  done;
  !h

let bytes_of_map (m : char_array) pos len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set b i (Bigarray.Array1.unsafe_get m (pos + i))
  done;
  b

let empty_i64 : i64_array = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout 0
let empty_i32 : i32_array = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout 0
let empty_char : char_array = Bigarray.Array1.create Bigarray.char Bigarray.c_layout 0

(* Exactly one mapping per section, at the width its consumer reads:
   the checksum pass then faults each page in once and the view handed
   out reuses it, and the GC's off-heap accounting sees ~file_size of
   mapped memory instead of a multiple of it (mapped bigarrays are
   custom blocks, and over-accounting them forces major collections).
   Unix.map_file accepts the 8-aligned (not page-aligned) section
   offsets; it maps from the containing page boundary internally. *)
let map_i64 fd ~pos ~count : i64_array =
  if count = 0 then empty_i64
  else
    Bigarray.array1_of_genarray
      (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.int64 Bigarray.c_layout
         false [| count |])

let map_i32 fd ~pos ~count : i32_array =
  if count = 0 then empty_i32
  else
    Bigarray.array1_of_genarray
      (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.int32 Bigarray.c_layout
         false [| count |])

let map_char fd ~pos ~count : char_array =
  if count = 0 then empty_char
  else
    Bigarray.array1_of_genarray
      (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.char Bigarray.c_layout
         false [| count |])

let field_int head ~pos ~what =
  match B.get_int_le head ~pos with
  | Some v -> Ok v
  | None -> Error (Malformed (what ^ " out of range"))

(* Parsed section table entry (checksums are verified on the way in,
   not retained). *)
type entry = { kind : int; offset : int; length : int }

(* A section's mapping, at the width its kind is consumed at. *)
type view = V64 of i64_array | V32 of i32_array | VChar of char_array

let bytes_of_words (w : i64_array) len =
  let b = Bytes.create len in
  for j = 0 to (len / 8) - 1 do
    B.set_i64_le b ~pos:(8 * j) (Bigarray.Array1.get w j)
  done;
  b

let materialize_names ~what ~count (off : Bytes.t) (blob : Bytes.t) =
  if Bytes.length off <> 8 * (count + 1) then
    Error (Malformed (Printf.sprintf "%s_off has wrong length" what))
  else begin
    let bad = ref None in
    let prev = ref 0 in
    let offs =
      Array.init (count + 1) (fun i ->
          match B.get_int_le off ~pos:(8 * i) with
          | Some v when v >= !prev && v <= Bytes.length blob ->
            prev := v;
            v
          | _ ->
            bad := Some (Malformed (what ^ " offsets not monotone in blob"));
            0)
    in
    match !bad with
    | Some e -> Error e
    | None ->
      if offs.(count) <> Bytes.length blob then
        Error (Malformed (what ^ " blob length disagrees with offsets"))
      else
        Ok (Array.init count (fun i ->
                Bytes.sub_string blob offs.(i) (offs.(i + 1) - offs.(i))))
  end

let load path =
  if Sys.big_endian then
    Error (Malformed "big-endian hosts cannot map little-endian snapshots")
  else
    match Unix.openfile path [ Unix.O_RDONLY ] 0 with
    | exception Unix.Unix_error (err, _, _) ->
      Error (Io (path ^ ": " ^ Unix.error_message err))
    | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let size = (Unix.fstat fd).Unix.st_size in
          if size < header_fixed then
            Error (Truncated { what = "header"; expected = header_fixed; got = size })
          else begin
            let head =
              bytes_of_map (map_char fd ~pos:0 ~count:header_fixed) 0 header_fixed
            in
            if Bytes.sub_string head 0 8 <> magic then Error Bad_magic
            else begin
              let v64 = B.get_i64_le head ~pos:8 in
              if v64 <> Int64.of_int version then
                Error (Version_skew { found = Int64.to_int v64 })
              else
                let* flags = field_int head ~pos:16 ~what:"flags" in
                let* nv = field_int head ~pos:24 ~what:"n_vertices" in
                let* ne = field_int head ~pos:32 ~what:"n_edges" in
                let* inc = field_int head ~pos:40 ~what:"incidence" in
                let identity = Md5.to_hex (Bytes.sub_string head 48 16) in
                let* count = field_int head ~pos:64 ~what:"section count" in
                if count < 4 || count > max_sections then
                  Error (Malformed (Printf.sprintf "section count %d" count))
                else begin
                  let table_end = header_fixed + (entry_bytes * count) + 8 in
                  if size < table_end then
                    Error
                      (Truncated
                         { what = "section table"; expected = table_end; got = size })
                  else begin
                    let table =
                      bytes_of_map (map_char fd ~pos:0 ~count:table_end) 0
                        table_end
                    in
                    let stored =
                      Int64.to_int (B.get_i64_le table ~pos:(table_end - 8))
                    in
                    if
                      B.hash64 B.hash64_seed table ~pos:0 ~len:(table_end - 8)
                      <> stored
                    then Error (Digest_mismatch "header")
                    else begin
                      (* Parse and byte-validate every table entry, known
                         kind or not: alignment, bounds, checksum. *)
                      let rec entries i acc =
                        if i >= count then Ok (List.rev acc)
                        else
                          let pos = header_fixed + (entry_bytes * i) in
                          let* kind = field_int table ~pos ~what:"section kind" in
                          let* offset =
                            field_int table ~pos:(pos + 8) ~what:"section offset"
                          in
                          let* length =
                            field_int table ~pos:(pos + 16) ~what:"section length"
                          in
                          let checksum =
                            Int64.to_int (B.get_i64_le table ~pos:(pos + 24))
                          in
                          if offset land 7 <> 0 then
                            Error
                              (Malformed
                                 (kind_name kind ^ " section is not 8-byte aligned"))
                          else if offset < table_end then
                            Error
                              (Malformed
                                 (kind_name kind ^ " section overlaps the header"))
                          else if
                            (* The padded extent must fit: the file
                               stores (and checksums) align8 length
                               bytes per section. *)
                            length > max_int - 7 || align8 length > size - offset
                          then
                            Error
                              (Truncated
                                 {
                                   what = kind_name kind;
                                   expected = offset + align8 length;
                                   got = size;
                                 })
                          else begin
                            let words = align8 length / 8 in
                            let v =
                              if
                                kind = kind_edge_members
                                || kind = kind_vertex_adj
                              then
                                V32 (map_i32 fd ~pos:offset ~count:(2 * words))
                              else if
                                kind = kind_vertex_name_blob
                                || kind = kind_edge_name_blob
                              then
                                VChar (map_char fd ~pos:offset ~count:(8 * words))
                              else V64 (map_i64 fd ~pos:offset ~count:words)
                            in
                            let computed =
                              match v with
                              | V64 m ->
                                hash64_words_i64 m ~pos_words:0 ~count_words:words
                              | V32 m ->
                                hash64_words_i32 m ~pos_elts:0 ~count_words:words
                              | VChar m ->
                                hash64_words_char m ~pos:0 ~count_words:words
                            in
                            if computed <> checksum then
                              Error (Digest_mismatch (kind_name kind))
                            else
                              entries (i + 1) (({ kind; offset; length }, v) :: acc)
                          end
                      in
                      let* entries = entries 0 [] in
                      let find kind =
                        List.find_opt (fun (e, _) -> e.kind = kind) entries
                      in
                      let section kind ~bytes =
                        match find kind with
                        | None ->
                          Error
                            (Malformed ("missing section " ^ kind_name kind))
                        | Some (e, v) ->
                          if e.length <> bytes then
                            Error
                              (Malformed
                                 (Printf.sprintf "%s has %d bytes, expected %d"
                                    (kind_name kind) e.length bytes))
                          else Ok v
                      in
                      let required64 kind ~count:n =
                        let* v = section kind ~bytes:(8 * n) in
                        match v with
                        | V64 m -> Ok m
                        | V32 _ | VChar _ ->
                          Error (Malformed (kind_name kind ^ " view width"))
                      in
                      let required32 kind ~count:n =
                        let* v = section kind ~bytes:(4 * n) in
                        match v with
                        | V32 m ->
                          Ok
                            (if Bigarray.Array1.dim m = n then m
                             else Bigarray.Array1.sub m 0 n)
                        | V64 _ | VChar _ ->
                          Error (Malformed (kind_name kind ^ " view width"))
                      in
                      let* edge_off = required64 kind_edge_off ~count:(ne + 1) in
                      let* edge_members =
                        required32 kind_edge_members ~count:inc
                      in
                      let* vertex_off = required64 kind_vertex_off ~count:(nv + 1) in
                      let* vertex_adj = required32 kind_vertex_adj ~count:inc in
                      let names flag off_kind blob_kind ~count:n ~what =
                        if flags land flag = 0 then Ok None
                        else
                          match (find off_kind, find blob_kind) with
                          | Some (off_e, V64 off_m), Some (blob_e, VChar blob_m)
                            ->
                            let* arr =
                              materialize_names ~what ~count:n
                                (bytes_of_words off_m off_e.length)
                                (bytes_of_map blob_m 0 blob_e.length)
                            in
                            Ok (Some arr)
                          | _ ->
                            Error
                              (Malformed
                                 ("flags announce " ^ what ^ " but sections are missing"))
                      in
                      let* vertex_names =
                        names flag_vertex_names kind_vertex_name_off
                          kind_vertex_name_blob ~count:nv ~what:"vertex names"
                      in
                      let* edge_names =
                        names flag_edge_names kind_edge_name_off
                          kind_edge_name_blob ~count:ne ~what:"edge names"
                      in
                      Ok
                        {
                          path;
                          identity;
                          n_vertices = nv;
                          n_edges = ne;
                          incidence = inc;
                          file_bytes = size;
                          edge_off;
                          edge_members;
                          vertex_off;
                          vertex_adj;
                          vertex_names;
                          edge_names;
                          sections =
                            List.map
                              (fun (e, _) -> (kind_name e.kind, e.offset, e.length))
                              entries;
                        }
                    end
                  end
                end
            end
          end)

(* ---------- materialization ---------- *)

exception Bad of error

let rows (off : i64_array) (data : i32_array) ~count ~total ~max_value ~what =
  (* Expand CSR (offsets, values) into per-row arrays, checking the
     offsets are a monotone [0 .. total] cover and every value fits
     [0, max_value).  This is the hot half of an mmap load, so the
     checks are branchless unsigned compares against precomputed
     bounds; unsafe_get is in range because [load] already verified
     the section lengths ([off] has count+1 words, [data] has [total]
     and every index stays below a validated offset). *)
  let bad fmt = Printf.ksprintf (fun m -> raise (Bad (Malformed m))) fmt in
  (* [Int64.to_int] keeps the low 63 bits; together with an explicit
     bit-63 test that is a full unsigned range check, built only from
     primitives the compiler keeps unboxed (no per-element Int64
     allocation, unlike Int64.unsigned_compare which is a call). *)
  let get_off i =
    let w = Bigarray.Array1.unsafe_get off i in
    let v = Int64.to_int w in
    if v < 0 || v > total || Int64.to_int (Int64.shift_right_logical w 63) <> 0
    then bad "%s offset out of range" what;
    v
  in
  if get_off 0 <> 0 then bad "%s offsets do not start at 0" what;
  if get_off count <> total then bad "%s offsets do not cover the section" what;
  Array.init count (fun r ->
      let lo = get_off r and hi = get_off (r + 1) in
      if lo > hi then bad "%s offsets not monotone" what;
      let n = hi - lo in
      let row = Array.make n 0 in
      (* A stored u32 in [2^31, 2^32) reads back negative through
         int32, so strict-increase from a previous value of -1 plus an
         upper bound is the full unsigned-range-and-monotone check.  It
         folds branchlessly into a sign accumulator: [v - prev - 1] is
         negative whenever the row stops strictly increasing (which
         subsumes v < 0), [max_value - 1 - v] whenever v escapes the
         range, and neither subtraction can overflow 63-bit ints.  The
         accumulators ride tail-recursive arguments, not refs, so they
         stay in registers.  Checking monotonicity here lets
         [to_hypergraph] hand the rows to the trusted constructor
         without a second scan. *)
      let rec fill i prev flags =
        if i = n then flags
        else begin
          let v = Int32.to_int (Bigarray.Array1.unsafe_get data (lo + i)) in
          Array.unsafe_set row i v;
          fill (i + 1) v (flags lor (v - prev - 1) lor (max_value - 1 - v))
        end
      in
      if fill 0 (-1) 0 < 0 then begin
        (* Cold path: rescan for the precise diagnostic. *)
        let prev = ref (-1) in
        Array.iter
          (fun v ->
            if v < 0 || v >= max_value then bad "%s value out of range" what;
            if v <= !prev then bad "%s row not strictly increasing" what;
            prev := v)
          row;
        bad "%s row invalid" what
      end;
      row)

let to_hypergraph t =
  match
    let edges =
      rows t.edge_off t.edge_members ~count:t.n_edges ~total:t.incidence
        ~max_value:t.n_vertices ~what:"edge"
    in
    let vadj =
      rows t.vertex_off t.vertex_adj ~count:t.n_vertices ~total:t.incidence
        ~max_value:t.n_edges ~what:"vertex"
    in
    (* [rows] above already proved every edge row strictly increasing
       and in range, so the constructor can skip its own scan. *)
    H.of_csr_exn ~rows_validated:true ?vertex_names:t.vertex_names
      ?edge_names:t.edge_names ~n_vertices:t.n_vertices ~edges ~vadj ()
  with
  | h -> Ok h
  | exception Bad e -> Error e
  | exception Invalid_argument msg -> Error (Malformed msg)

let read path =
  let* t = load path in
  let* h = to_hypergraph t in
  Ok (h, t)

let verify path =
  let* t = load path in
  let* _h = to_hypergraph t in
  (* Recompute the identity over the payload bytes with buffered reads;
     no need to keep the mapping alive for this. *)
  match open_in_bin path with
  | exception Sys_error msg -> Error (Io msg)
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match
          let ctx = Md5.init () in
          let chunk = Bytes.create 65536 in
          List.iter
            (fun (_, offset, length) ->
              seek_in ic offset;
              let remaining = ref length in
              while !remaining > 0 do
                let n = input ic chunk 0 (min !remaining (Bytes.length chunk)) in
                if n = 0 then raise End_of_file;
                Md5.feed ctx chunk ~pos:0 ~len:n;
                remaining := !remaining - n
              done)
            t.sections;
          Md5.hex ctx
        with
        | recomputed ->
          if recomputed = t.identity then Ok t
          else Error (Digest_mismatch "identity")
        | exception End_of_file ->
          (* The file shrank between load and this re-read. *)
          Error
            (Truncated
               { what = "identity payload"; expected = t.file_bytes; got = 0 }))
