(** Binary snapshot store: the hypergraph's CSR arrays in an mmap-able
    on-disk format (DESIGN.md §11).

    A [.hgsnap] file is a fixed header (magic, format version, flags,
    vertex/edge/incidence counts, MD5 identity), a section table, and
    then the incidence arrays as little-endian payloads — u64 words
    for CSR offsets, u32 for the (much larger) member/adjacency value
    sections — each 8-byte aligned so the reader can hand the kernels
    [Bigarray.Array1] views straight out of [Unix.map_file]; loading
    costs page faults, not parsing.  Optional name sections carry
    vertex/edge labels as offset-indexed blobs.

    Robustness contract: every load validates framing, per-section
    checksums and structural invariants before any value is trusted;
    truncation, foreign bytes, version skew and corruption all come
    back as typed {!error}s, never exceptions.  The identity digest in
    the header is the MD5 of the section payloads, so it names the
    logical dataset independently of table layout — note it therefore
    differs from the registry's digest of the equivalent text file.

    Forward compatibility: readers reject files whose major [version]
    they do not know ({!Version_skew}), and ignore section kinds they
    do not recognize as long as the mandatory four CSR sections are
    present, so future writers may append new sections without
    breaking old readers. *)

type error =
  | Io of string
    (** The file could not be opened, statted, or mapped. *)
  | Truncated of { what : string; expected : int; got : int }
    (** The file ends before [what] (sizes in bytes). *)
  | Bad_magic
    (** Leading bytes are not the snapshot magic — not a snapshot. *)
  | Version_skew of { found : int }
    (** A snapshot, but from an incompatible format revision. *)
  | Digest_mismatch of string
    (** Checksum failure in the named section (or ["header"]). *)
  | Malformed of string
    (** Framing or structural invariant violated; the message says
        which. *)

val error_to_string : error -> string

type i64_array =
  (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type i32_array =
  (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  path : string;
  identity : string;       (** MD5 of the section payloads, hex. *)
  n_vertices : int;
  n_edges : int;
  incidence : int;         (** |E|, the total membership count. *)
  file_bytes : int;
  edge_off : i64_array;    (** [n_edges + 1] CSR offsets into [edge_members]. *)
  edge_members : i32_array;(** Member vertices, strictly increasing per edge. *)
  vertex_off : i64_array;  (** [n_vertices + 1] CSR offsets into [vertex_adj]. *)
  vertex_adj : i32_array;  (** Incident edges, strictly increasing per vertex. *)
  vertex_names : string array option;
  edge_names : string array option;
  sections : (string * int * int) list;
    (** (name, byte offset, byte length) of each payload, table order. *)
}
(** A validated snapshot: counts and checksums verified, array views
    backed by the read-only mapping (empty sections are zero-length
    arrays, not mappings).  Mutating the views is forbidden. *)

type pack_info = { identity : string; bytes : int }

val pack : Hp_hypergraph.Hypergraph.t -> string -> pack_info
(** Write a snapshot of the hypergraph.  Goes through a temp file in
    the target directory and renames into place, so a crashed pack
    never leaves a half-written [.hgsnap].  Raises [Sys_error] /
    [Unix.Unix_error] on I/O failure, and [Invalid_argument] on a
    hypergraph with more than [2^31] vertices or edges (ids must fit
    the u32 value sections). *)

val load : string -> (t, error) result
(** Map the file read-only and validate framing, bounds and the
    per-section checksums.  Does not re-verify the MD5 identity (see
    {!verify}) and does not check CSR invariants that only matter for
    materialization (see {!to_hypergraph}); it never raises. *)

val to_hypergraph : t -> (Hp_hypergraph.Hypergraph.t, error) result
(** Materialize the mapped arrays into the heap representation the
    kernels consume, verifying the CSR structural invariants
    (monotone offsets, strictly increasing rows, adjacency consistent
    with incidence) on the way.  [Malformed] on any violation. *)

val read : string -> (Hp_hypergraph.Hypergraph.t * t, error) result
(** [load] then [to_hypergraph]. *)

val verify : string -> (t, error) result
(** Deep check for [hgtool verify-snap]: everything [read] checks,
    plus recomputing the MD5 identity over the section payloads and
    comparing it against the header. *)

val file_extension : string
(** [".hgsnap"], including the dot. *)

val sibling_path : string -> string
(** The snapshot path conventionally paired with a dataset file:
    extension replaced by {!file_extension}. *)
