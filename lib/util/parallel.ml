let recommended_domains () = min 8 (Domain.recommended_domain_count ())

(* Shared domain budget.  Kernel call sites ask for a fan-out
   ([domains] below); when several worker-pool jobs run kernels
   concurrently each would otherwise spawn its full request, so a
   pool of 4 workers asking for 8 domains apiece lands 32 domains on
   8 cores.  The budget divides a fixed number of domains across the
   jobs currently inside the pool: [enter_job]/[leave_job] track
   occupancy and [fold_range] clamps its fan-out to budget/occupancy. *)
let budget = Atomic.make (recommended_domains ())
let occupancy_counter = Atomic.make 0

let set_domain_budget b =
  if b < 1 then invalid_arg "Parallel.set_domain_budget: budget < 1";
  Atomic.set budget b

let domain_budget () = Atomic.get budget
let occupancy () = Atomic.get occupancy_counter
let enter_job () = ignore (Atomic.fetch_and_add occupancy_counter 1)

let leave_job () =
  let prev = Atomic.fetch_and_add occupancy_counter (-1) in
  if prev <= 0 then (
    (* Unbalanced leave: restore and complain loudly in debug builds. *)
    ignore (Atomic.fetch_and_add occupancy_counter 1);
    invalid_arg "Parallel.leave_job: no job entered")

let effective_domains requested =
  if requested < 1 then invalid_arg "Parallel.effective_domains: domains < 1";
  let b = Atomic.get budget in
  let occ = max 1 (Atomic.get occupancy_counter) in
  max 1 (min requested (b / occ))

let sequential ~n ~create ~fold =
  let acc = ref (create ()) in
  for i = 0 to n - 1 do
    acc := fold !acc i
  done;
  !acc

let fold_range ~domains ~n ~create ~fold ~combine =
  if domains < 1 then invalid_arg "Parallel.fold_range: domains < 1";
  if n < 0 then invalid_arg "Parallel.fold_range: negative range";
  (* Fall back to the caller's domain only when the range genuinely
     cannot feed more than one chunk: an 8-source sweep over a huge
     graph must still fan out even though n is small. *)
  let domains = min (effective_domains domains) n in
  if domains <= 1 then sequential ~n ~create ~fold
  else begin
    let chunk lo hi () =
      let acc = ref (create ()) in
      for i = lo to hi - 1 do
        acc := fold !acc i
      done;
      !acc
    in
    (* Remainder-first: the first [n mod domains] chunks take one
       extra item, so no chunk is ever empty and heavy-item small-n
       workloads split as evenly as possible. *)
    let base = n / domains and rem = n mod domains in
    let bounds =
      Array.init domains (fun d ->
          let lo = (d * base) + min d rem in
          (lo, lo + base + if d < rem then 1 else 0))
    in
    (* Workers for every chunk but the first, which runs here. *)
    let workers =
      Array.init (domains - 1) (fun i ->
          let lo, hi = bounds.(i + 1) in
          Domain.spawn (chunk lo hi))
    in
    let first =
      let lo, hi = bounds.(0) in
      match chunk lo hi () with
      | acc -> Ok acc
      | exception e -> Error e
    in
    (* Join everything before surfacing any failure. *)
    let results = Array.map (fun d -> try Ok (Domain.join d) with e -> Error e) workers in
    let value = function Ok v -> v | Error e -> raise e in
    Array.fold_left (fun acc r -> combine acc (value r)) (value first) results
  end
