(** Cooperative deadlines for long-running computations.

    OCaml domains cannot be preempted safely, so an over-budget
    computation can only stop itself: the caller creates a token with
    a wall-clock budget and threads it into the kernel, and the
    kernel's inner loop calls {!check} at every iteration.  [check]
    amortizes the clock read over a stride of calls, so it is cheap
    enough for per-vertex / per-source loops; when the budget is blown
    it raises {!Expired}, which unwinds out of the kernel (including
    across {!Parallel.fold_range} worker domains, whose join re-raises
    it) and is translated into a structured [ERR timeout] by the
    server.

    A token can also be fired early from another domain with
    {!cancel} — the hook for load shedding and client-abandoned
    requests. *)

type t

exception Expired
(** Raised by {!check} (and by cancelled tokens) once the deadline has
    passed.  Carries no payload so handlers cannot lose information by
    re-raising. *)

val never : t
(** A token that never expires.  It is a shared constant: {!cancel}
    is a no-op on it (use [of_timeout] / [after] for a cancellable
    token). *)

val after : ?stride:int -> float -> t
(** [after budget] expires [budget] seconds from now.  [stride]
    (default 32) is how many {!check} calls share one clock read; 1
    checks the clock every time.  Raises [Invalid_argument] on a
    non-positive stride. *)

val of_timeout : float -> t
(** [of_timeout s] is [after s] when [s > 0.], else {!never} — the
    shape server configs use ([0] disables the budget). *)

val cancel : t -> unit
(** Force the token into the expired state immediately.  Safe from any
    domain; idempotent. *)

val expired : t -> bool
(** Whether the deadline has passed (always reads the clock). *)

val check : t -> unit
(** Raise {!Expired} if the deadline has passed.  Strided: only every
    [stride]-th call reads the clock, so a loop can call this
    unconditionally.  Cancellation is observed immediately. *)

val remaining : t -> float
(** Seconds left; [infinity] for {!never}, [0.] once expired. *)
