(* RFC 1321, on native ints masked to 32 bits. *)

let k =
  [|
    0xd76aa478; 0xe8c7b756; 0x242070db; 0xc1bdceee;
    0xf57c0faf; 0x4787c62a; 0xa8304613; 0xfd469501;
    0x698098d8; 0x8b44f7af; 0xffff5bb1; 0x895cd7be;
    0x6b901122; 0xfd987193; 0xa679438e; 0x49b40821;
    0xf61e2562; 0xc040b340; 0x265e5a51; 0xe9b6c7aa;
    0xd62f105d; 0x02441453; 0xd8a1e681; 0xe7d3fbc8;
    0x21e1cde6; 0xc33707d6; 0xf4d50d87; 0x455a14ed;
    0xa9e3e905; 0xfcefa3f8; 0x676f02d9; 0x8d2a4c8a;
    0xfffa3942; 0x8771f681; 0x6d9d6122; 0xfde5380c;
    0xa4beea44; 0x4bdecfa9; 0xf6bb4b60; 0xbebfbc70;
    0x289b7ec6; 0xeaa127fa; 0xd4ef3085; 0x04881d05;
    0xd9d4d039; 0xe6db99e5; 0x1fa27cf8; 0xc4ac5665;
    0xf4292244; 0x432aff97; 0xab9423a7; 0xfc93a039;
    0x655b59c3; 0x8f0ccc92; 0xffeff47d; 0x85845dd1;
    0x6fa87e4f; 0xfe2ce6e0; 0xa3014314; 0x4e0811a1;
    0xf7537e82; 0xbd3af235; 0x2ad7d2bb; 0xeb86d391;
  |]

let shifts =
  [|
    7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22;
    5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20;
    4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23; 4; 11; 16; 23;
    6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21;
  |]

type t = {
  mutable a : int;
  mutable b : int;
  mutable c : int;
  mutable d : int;
  block : Bytes.t;        (* 64-byte staging buffer *)
  mutable block_len : int;
  mutable total : int;    (* bytes absorbed so far *)
  mutable result : string option;
}

let init () =
  {
    a = 0x67452301;
    b = 0xefcdab89;
    c = 0x98badcfe;
    d = 0x10325476;
    block = Bytes.create 64;
    block_len = 0;
    total = 0;
    result = None;
  }

let mask = 0xffffffff
let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask

let word b pos =
  Char.code (Bytes.unsafe_get b pos)
  lor (Char.code (Bytes.unsafe_get b (pos + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get b (pos + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (pos + 3)) lsl 24)

(* One 64-byte block starting at [pos]. *)
let compress t buf pos =
  let a = ref t.a and b = ref t.b and c = ref t.c and d = ref t.d in
  for i = 0 to 63 do
    let f, g =
      if i < 16 then ((!b land !c) lor (lnot !b land !d), i)
      else if i < 32 then ((!d land !b) lor (lnot !d land !c), (5 * i + 1) land 15)
      else if i < 48 then (!b lxor !c lxor !d, (3 * i + 5) land 15)
      else (!c lxor (!b lor (lnot !d land mask)), 7 * i land 15)
    in
    let f = (f + !a + k.(i) + word buf (pos + 4 * g)) land mask in
    a := !d;
    d := !c;
    c := !b;
    b := (!b + rotl f shifts.(i)) land mask
  done;
  t.a <- (t.a + !a) land mask;
  t.b <- (t.b + !b) land mask;
  t.c <- (t.c + !c) land mask;
  t.d <- (t.d + !d) land mask

let feed t buf ~pos ~len =
  if pos < 0 || len < 0 || pos > Bytes.length buf - len then
    invalid_arg "Md5.feed: range outside buffer";
  if t.result <> None then invalid_arg "Md5.feed: context already finalized";
  t.total <- t.total + len;
  let pos = ref pos and len = ref len in
  (* Top up a partial staging block first. *)
  if t.block_len > 0 then begin
    let take = min !len (64 - t.block_len) in
    Bytes.blit buf !pos t.block t.block_len take;
    t.block_len <- t.block_len + take;
    pos := !pos + take;
    len := !len - take;
    if t.block_len = 64 then begin
      compress t t.block 0;
      t.block_len <- 0
    end
  end;
  while !len >= 64 do
    compress t buf !pos;
    pos := !pos + 64;
    len := !len - 64
  done;
  if !len > 0 then begin
    Bytes.blit buf !pos t.block 0 !len;
    t.block_len <- !len
  end

let feed_string t s =
  feed t (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let digest t =
  match t.result with
  | Some r -> r
  | None ->
    let total = t.total in
    let pad_len =
      let rem = (t.block_len + 1) mod 64 in
      1 + (if rem <= 56 then 56 - rem else 120 - rem)
    in
    let tail = Bytes.make (pad_len + 8) '\000' in
    Bytes.set tail 0 '\x80';
    (* Message length in bits, little-endian, modulo 2^64. *)
    Binary.set_i64_le tail ~pos:pad_len (Int64.mul (Int64.of_int total) 8L);
    feed t tail ~pos:0 ~len:(Bytes.length tail);
    t.total <- total;
    assert (t.block_len = 0);
    let out = Bytes.create 16 in
    let put pos v =
      Bytes.set out pos (Char.chr (v land 0xff));
      Bytes.set out (pos + 1) (Char.chr ((v lsr 8) land 0xff));
      Bytes.set out (pos + 2) (Char.chr ((v lsr 16) land 0xff));
      Bytes.set out (pos + 3) (Char.chr ((v lsr 24) land 0xff))
    in
    put 0 t.a;
    put 4 t.b;
    put 8 t.c;
    put 12 t.d;
    let r = Bytes.to_string out in
    t.result <- Some r;
    r

let to_hex raw =
  let buf = Buffer.create (2 * String.length raw) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) raw;
  Buffer.contents buf

let hex t = to_hex (digest t)

let string s =
  let t = init () in
  feed_string t s;
  hex t
