(* Binary min-heap over plain ints.

   The peel drivers use it as a lazy priority queue: an element is
   re-pushed every time its key improves and stale entries are
   discarded at pop time, so there is no decrease-key and no handle
   bookkeeping — callers pack (key, id) into one int (key * stride +
   id) and validate each popped entry against their own side arrays.
   Pop order is therefore exact (key, id)-lexicographic order, which
   is what makes the one-pass sweep a pure function of the peeling
   state. *)

type t = { mutable a : int array; mutable len : int }

let create ?(capacity = 16) () = { a = Array.make (max capacity 1) 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let clear t = t.len <- 0

let grow t =
  let bigger = Array.make (2 * Array.length t.a) 0 in
  Array.blit t.a 0 bigger 0 t.len;
  t.a <- bigger

let push t x =
  if t.len = Array.length t.a then grow t;
  let a = t.a in
  let i = ref t.len in
  t.len <- t.len + 1;
  (* Sift up. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) lsr 1 in
    if Array.unsafe_get a parent > x then begin
      Array.unsafe_set a !i (Array.unsafe_get a parent);
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set a !i x

let pop_min t =
  if t.len = 0 then None
  else begin
    let a = t.a in
    let top = a.(0) in
    t.len <- t.len - 1;
    let x = a.(t.len) in
    (* Sift the last element down from the root. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= t.len then continue := false
      else begin
        let r = l + 1 in
        let c =
          if r < t.len && Array.unsafe_get a r < Array.unsafe_get a l then r
          else l
        in
        if Array.unsafe_get a c < x then begin
          Array.unsafe_set a !i (Array.unsafe_get a c);
          i := c
        end
        else continue := false
      end
    done;
    Array.unsafe_set a !i x;
    Some top
  end
