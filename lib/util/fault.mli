(** Deterministic fault injection: named failpoints compiled into the
    hot paths (registry file I/O, worker job pickup, socket writes,
    kernel inner loops) and armed at run time from a spec string.

    A failpoint site calls {!point} (perform the armed action) or
    {!fires} (just ask whether the trigger fires, for sites that
    synthesize their own failure, e.g. a truncated socket write).
    When nothing is armed the cost of a site is one [Atomic.get], so
    failpoints stay compiled into production binaries.

    {2 Spec grammar}

    A spec is [;]-separated arms, each
    [name=action[*count][+skip][%prob][@seed]]:

    - [action] is [err] (raise {!Injected}), [kill] (raise {!Killed},
      which supervised worker pools treat as lethal), or [sleep:MS]
      (delay the caller by [MS] milliseconds).
    - [*count] fires at most [count] times (default unlimited).
    - [+skip] passes the first [skip] hits before arming (default 0).
    - [%prob] fires each eligible hit with probability [prob],
      decided by a per-failpoint splitmix64 stream (default 1 —
      always), seeded by [@seed] (default 0).  Equal seeds give equal
      firing patterns, so probabilistic chaos runs are replayable.

    Example: ["worker.job=kill*1;registry.read=err+2;core.peel=sleep:5%0.5@42"].

    The registry is process-global (sites are scattered across
    libraries) and mutex-protected; [hits]/[fired] counters make
    assertions in chaos tests deterministic. *)

exception Injected of string
(** Raised by an [err] arm; carries the failpoint name. *)

exception Killed of string
(** Raised by a [kill] arm.  {!Hp_server.Worker} treats it as lethal:
    the worker domain dies and the supervisor respawns it. *)

type action = Err | Kill | Sleep_ms of int

val configure : string -> (unit, string) result
(** Parse a spec and arm its failpoints, replacing the current
    configuration ([configure ""] disarms everything).  [Error]
    describes the first malformed arm. *)

val arm : ?count:int -> ?skip:int -> ?prob:float -> ?seed:int -> string -> action -> unit
(** Programmatic equivalent of one spec arm. *)

val disarm : string -> unit

val reset : unit -> unit
(** Disarm every failpoint and zero all counters. *)

val point : string -> unit
(** Evaluate the failpoint: no-op when disarmed or the trigger does
    not fire; otherwise perform the armed action ([Err]/[Kill] raise,
    [Sleep_ms] blocks). *)

val fires : string -> bool
(** Evaluate the trigger and consume a hit, but perform no action —
    the call site supplies its own failure. *)

val hits : string -> int
(** Times the failpoint was evaluated since it was armed. *)

val fired : string -> int
(** Times it actually fired. *)

val stats : unit -> (string * int * int) list
(** [(name, hits, fired)] for every armed failpoint, name order. *)
