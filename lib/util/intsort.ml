(* LSD radix sort over 16-bit digits with domain-local scratch, plus a
   k-way run-length merge of sorted buffers.  See intsort.mli. *)

let digit_bits = 16
let radix = 1 lsl digit_bits
let digit_mask = radix - 1

(* Per-domain scratch: the ping-pong buffer grows to the largest sort
   seen on this domain; the digit counters are allocated once. *)
type scratch = { mutable aux : int array; mutable counts : int array }

let scratch_key : scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { aux = [||]; counts = [||] })

let sort ?len a =
  let n = match len with Some n -> n | None -> Array.length a in
  if n < 0 || n > Array.length a then invalid_arg "Intsort.sort: len";
  if n > 1 then begin
    let hi = ref 0 in
    for i = 0 to n - 1 do
      let x = Array.unsafe_get a i in
      if x < 0 then invalid_arg "Intsort.sort: negative key";
      if x > !hi then hi := x
    done;
    let s = Domain.DLS.get scratch_key in
    if Array.length s.aux < n then s.aux <- Array.make n 0;
    if Array.length s.counts = 0 then s.counts <- Array.make radix 0;
    let counts = s.counts in
    let src = ref a and dst = ref s.aux in
    let shift = ref 0 in
    while !hi lsr !shift > 0 do
      Array.fill counts 0 radix 0;
      let sr = !src in
      for i = 0 to n - 1 do
        let d = (Array.unsafe_get sr i lsr !shift) land digit_mask in
        Array.unsafe_set counts d (Array.unsafe_get counts d + 1)
      done;
      let acc = ref 0 in
      for d = 0 to radix - 1 do
        let c = Array.unsafe_get counts d in
        Array.unsafe_set counts d !acc;
        acc := !acc + c
      done;
      let ds = !dst in
      for i = 0 to n - 1 do
        let x = Array.unsafe_get sr i in
        let d = (x lsr !shift) land digit_mask in
        let p = Array.unsafe_get counts d in
        Array.unsafe_set counts d (p + 1);
        Array.unsafe_set ds p x
      done;
      let tmp = !src in
      src := !dst;
      dst := tmp;
      shift := !shift + digit_bits
    done;
    if !src != a then Array.blit !src 0 a 0 n
  end

let merge_runs bufs f =
  let k = Array.length bufs in
  let idx = Array.make (max k 1) 0 in
  let continue = ref (k > 0) in
  while !continue do
    (* Smallest head across the buffers; max_int is the exhausted
       sentinel (keys are < max_int by contract). *)
    let best = ref max_int in
    for i = 0 to k - 1 do
      let a, len = bufs.(i) in
      if idx.(i) < len then begin
        let x = a.(idx.(i)) in
        if x < !best then best := x
      end
    done;
    if !best = max_int then continue := false
    else begin
      let key = !best in
      let count = ref 0 in
      for i = 0 to k - 1 do
        let a, len = bufs.(i) in
        let j = ref idx.(i) in
        while !j < len && a.(!j) = key do
          incr count;
          incr j
        done;
        idx.(i) <- !j
      done;
      f key !count
    end
  done
