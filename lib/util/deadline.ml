exception Expired

type t = {
  at : float;  (* absolute epoch seconds; infinity = never *)
  cancelled : bool Atomic.t;
  stride : int;
  mutable tick : int;
      (* Racy under multi-domain checks by design: a lost increment
         only shifts when the next clock read happens, never whether
         expiry is eventually observed. *)
}

let never = { at = infinity; cancelled = Atomic.make false; stride = 1; tick = 0 }

let after ?(stride = 32) budget =
  if stride < 1 then invalid_arg "Deadline.after: stride < 1";
  {
    at = Unix.gettimeofday () +. budget;
    cancelled = Atomic.make false;
    stride;
    tick = 0;
  }

let of_timeout s = if s > 0.0 then after s else never

(* [never] is a shared constant; cancelling it would poison every
   caller that defaulted to it. *)
let cancel t = if t != never then Atomic.set t.cancelled true

let expired t =
  Atomic.get t.cancelled || (t.at < infinity && Unix.gettimeofday () >= t.at)

let check t =
  if Atomic.get t.cancelled then raise Expired
  else if t.at < infinity then begin
    t.tick <- t.tick + 1;
    if t.tick mod t.stride = 0 && Unix.gettimeofday () >= t.at then raise Expired
  end

let remaining t =
  if Atomic.get t.cancelled then 0.0
  else if t.at = infinity then infinity
  else max 0.0 (t.at -. Unix.gettimeofday ())
