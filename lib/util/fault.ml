exception Injected of string
exception Killed of string

type action = Err | Kill | Sleep_ms of int

type arm = {
  action : action;
  count : int option;  (* max firings; None = unlimited *)
  skip : int;          (* hits passed through before arming *)
  prob : float;
  prng : Prng.t;
  mutable hits : int;
  mutable fired : int;
}

let mutex = Mutex.create ()
let table : (string, arm) Hashtbl.t = Hashtbl.create 8

(* Fast path: sites are compiled into hot loops, so an unarmed process
   must pay one atomic read, not a mutex. *)
let armed = Atomic.make false

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let arm ?count ?(skip = 0) ?(prob = 1.0) ?(seed = 0) name action =
  locked (fun () ->
      Hashtbl.replace table name
        { action; count; skip; prob; prng = Prng.create seed; hits = 0; fired = 0 };
      Atomic.set armed true)

let disarm name =
  locked (fun () ->
      Hashtbl.remove table name;
      if Hashtbl.length table = 0 then Atomic.set armed false)

let reset () =
  locked (fun () ->
      Hashtbl.reset table;
      Atomic.set armed false)

(* Decide whether this hit fires, under the registry mutex. *)
let eval p =
  p.hits <- p.hits + 1;
  let live = match p.count with Some n -> p.fired < n | None -> true in
  let past_skip = p.hits > p.skip in
  let lucky = p.prob >= 1.0 || Prng.float p.prng < p.prob in
  if live && past_skip && lucky then begin
    p.fired <- p.fired + 1;
    true
  end
  else false

let trigger name =
  if not (Atomic.get armed) then None
  else
    locked (fun () ->
        match Hashtbl.find_opt table name with
        | None -> None
        | Some p -> if eval p then Some p.action else None)

let fires name = trigger name <> None

let point name =
  match trigger name with
  | None -> ()
  | Some Err -> raise (Injected name)
  | Some Kill -> raise (Killed name)
  | Some (Sleep_ms ms) -> Unix.sleepf (float_of_int ms /. 1000.0)

let hits name =
  locked (fun () ->
      match Hashtbl.find_opt table name with Some p -> p.hits | None -> 0)

let fired name =
  locked (fun () ->
      match Hashtbl.find_opt table name with Some p -> p.fired | None -> 0)

let stats () =
  locked (fun () ->
      Hashtbl.fold (fun name p acc -> (name, p.hits, p.fired) :: acc) table [])
  |> List.sort compare

(* ---------- spec parsing ---------- *)

(* name=action[*count][+skip][%prob][@seed], arms separated by ';'. *)

let parse_action s =
  if s = "err" then Ok Err
  else if s = "kill" then Ok Kill
  else if String.length s > 6 && String.sub s 0 6 = "sleep:" then
    match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
    | Some ms when ms >= 0 -> Ok (Sleep_ms ms)
    | _ -> Error (Printf.sprintf "bad sleep duration in %S" s)
  else Error (Printf.sprintf "unknown action %S (err|kill|sleep:MS)" s)

(* Split [s] at the first occurrence of any modifier introducer,
   returning the head and the (introducer, body) list. *)
let split_modifiers s =
  let is_intro c = c = '*' || c = '+' || c = '%' || c = '@' in
  let n = String.length s in
  let rec find i = if i >= n then n else if is_intro s.[i] then i else find (i + 1) in
  let head_end = find 0 in
  let head = String.sub s 0 head_end in
  let rec mods i acc =
    if i >= n then List.rev acc
    else begin
      let j = find (i + 1) in
      mods j ((s.[i], String.sub s (i + 1) (j - i - 1)) :: acc)
    end
  in
  (head, mods head_end [])

let parse_arm s =
  let ( let* ) = Result.bind in
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "arm %S has no '='" s)
  | Some eq ->
    let name = String.trim (String.sub s 0 eq) in
    let* () = if name = "" then Error "empty failpoint name" else Ok () in
    let rhs = String.trim (String.sub s (eq + 1) (String.length s - eq - 1)) in
    let action_s, mods = split_modifiers rhs in
    let* action = parse_action action_s in
    let int_mod what body =
      match int_of_string_opt body with
      | Some n when n >= 0 -> Ok n
      | _ -> Error (Printf.sprintf "bad %s %S in arm %S" what body s)
    in
    let* count, skip, prob, seed =
      List.fold_left
        (fun acc (c, body) ->
          let* count, skip, prob, seed = acc in
          match c with
          | '*' ->
            let* n = int_mod "count" body in
            Ok (Some n, skip, prob, seed)
          | '+' ->
            let* n = int_mod "skip" body in
            Ok (count, n, prob, seed)
          | '%' ->
            (match float_of_string_opt body with
            | Some p when p >= 0.0 && p <= 1.0 -> Ok (count, skip, p, seed)
            | _ -> Error (Printf.sprintf "bad probability %S in arm %S" body s))
          | '@' ->
            let* n = int_mod "seed" body in
            Ok (count, skip, prob, Some n)
          | _ -> assert false)
        (Ok (None, 0, 1.0, None))
        mods
    in
    Ok (name, action, count, skip, prob, Option.value seed ~default:0)

let configure spec =
  let arms =
    String.split_on_char ';' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
      match parse_arm s with
      | Ok a -> go (a :: acc) rest
      | Error _ as e -> e)
  in
  match go [] arms with
  | Error msg -> Error msg
  | Ok parsed ->
    reset ();
    List.iter
      (fun (name, action, count, skip, prob, seed) ->
        arm ?count ~skip ~prob ~seed name action)
      parsed;
    Ok ()
