(** Structured logging: leveled JSON-lines on stderr plus a bounded
    in-memory ring of recent entries.

    One log record is one JSON object on one line, with the fixed keys
    [ts] (ISO-8601 UTC, millisecond precision), [level], [comp] (the
    emitting component) and [msg], followed by the caller's string
    fields.  Machines grep and parse it; humans still read it.

    The logger is a process-wide singleton (like {!Fault}): the
    daemon's components — server, worker pool, kernels — log through
    the same threshold and into the same ring, and the binaries set
    the threshold once from [--log-level].  Entries below the
    threshold are dropped entirely (neither written nor retained).
    Emission is mutex-serialized so concurrent domains never interleave
    bytes within a line. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

val level_of_string : string -> (level, string) result
(** Inverse of {!level_to_string} (case-insensitive); [Error] names the
    accepted spellings. *)

val set_level : level -> unit
(** Set the process-wide threshold.  Default: [Info]. *)

val current_level : unit -> level

val enabled : level -> bool
(** Whether a record at this level would be emitted — the guard for
    callers that want to skip building expensive fields. *)

val render :
  ts:float -> level -> comp:string -> fields:(string * string) list ->
  string -> string
(** Pure JSON-line rendering (no trailing newline), exposed for tests:
    [render ~ts level ~comp ~fields msg].  All values are JSON strings
    with full escaping; caller fields follow the fixed keys in order. *)

val emit : level -> comp:string -> ?fields:(string * string) list -> string -> unit
(** Render with the current wall clock and, when at or above the
    threshold, write the line to stderr and retain it in the ring. *)

val debug : comp:string -> ?fields:(string * string) list -> string -> unit
val info : comp:string -> ?fields:(string * string) list -> string -> unit
val warn : comp:string -> ?fields:(string * string) list -> string -> unit
val error : comp:string -> ?fields:(string * string) list -> string -> unit

val ring_capacity : int
(** Entries retained in memory (the oldest are overwritten). *)

val recent : int -> string list
(** Up to [n] most recent retained lines, newest first. *)
