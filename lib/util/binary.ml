let check name b ~pos ~len =
  if pos < 0 || len < 0 || pos > Bytes.length b - len then
    invalid_arg
      (Printf.sprintf "Binary.%s: range [%d, %d) outside buffer of %d bytes"
         name pos (pos + len) (Bytes.length b))

let set_i64_le b ~pos v =
  check "set_i64_le" b ~pos ~len:8;
  for i = 0 to 7 do
    let byte = Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL) in
    Bytes.unsafe_set b (pos + i) (Char.unsafe_chr byte)
  done

let get_i64_le b ~pos =
  check "get_i64_le" b ~pos ~len:8;
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8)
           (Int64.of_int (Char.code (Bytes.unsafe_get b (pos + i))))
  done;
  !v

let set_int_le b ~pos v =
  if v < 0 then invalid_arg "Binary.set_int_le: negative value";
  set_i64_le b ~pos (Int64.of_int v)

let set_u32_le b ~pos v =
  if v < 0 || v > 0xFFFFFFFF then
    invalid_arg "Binary.set_u32_le: value outside [0, 2^32)";
  check "set_u32_le" b ~pos ~len:4;
  Bytes.unsafe_set b pos (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set b (pos + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set b (pos + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set b (pos + 3) (Char.unsafe_chr ((v lsr 24) land 0xff))

let get_u32_le b ~pos =
  check "get_u32_le" b ~pos ~len:4;
  Char.code (Bytes.unsafe_get b pos)
  lor (Char.code (Bytes.unsafe_get b (pos + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get b (pos + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (pos + 3)) lsl 24)

let int_of_i64 v =
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then None
  else Some (Int64.to_int v)

let get_int_le b ~pos = int_of_i64 (get_i64_le b ~pos)

(* FNV-1a offset basis 0xcbf29ce484222325, truncated into the native
   int; the multiply wraps modulo 2^63 which is the whole point. *)
let hash64_seed = Int64.to_int 0xcbf29ce484222325L
let hash64_prime = 0x100000001b3

let hash64_byte acc byte = (acc lxor (byte land 0xff)) * hash64_prime

let hash64 acc b ~pos ~len =
  check "hash64" b ~pos ~len;
  let h = ref acc in
  for i = pos to pos + len - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b i)) * hash64_prime
  done;
  !h

let hash64_string acc s =
  hash64 acc (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

(* Word-folding variant for bulk payloads: one serial multiply per
   little-endian 64-bit word instead of eight.  The high half is
   pre-mixed with its own (per-word independent, so pipelined)
   multiply so every one of the 64 input bits lands in the
   accumulator; multiplication by the odd prime is invertible mod
   2^63, so no high bit is silently dropped. *)
let hash64_words acc b ~pos ~len =
  check "hash64_words" b ~pos ~len;
  if len land 7 <> 0 then
    invalid_arg "Binary.hash64_words: length is not a multiple of 8";
  let h = ref acc in
  let i = ref pos in
  let stop = pos + len in
  while !i < stop do
    let p = !i in
    let lo =
      Char.code (Bytes.unsafe_get b p)
      lor (Char.code (Bytes.unsafe_get b (p + 1)) lsl 8)
      lor (Char.code (Bytes.unsafe_get b (p + 2)) lsl 16)
      lor (Char.code (Bytes.unsafe_get b (p + 3)) lsl 24)
    in
    let hi =
      Char.code (Bytes.unsafe_get b (p + 4))
      lor (Char.code (Bytes.unsafe_get b (p + 5)) lsl 8)
      lor (Char.code (Bytes.unsafe_get b (p + 6)) lsl 16)
      lor (Char.code (Bytes.unsafe_get b (p + 7)) lsl 24)
    in
    h := (!h lxor (lo lxor (hi * hash64_prime))) * hash64_prime;
    i := p + 8
  done;
  !h

let hash64_word acc ~lo ~hi =
  (acc lxor (lo lxor (hi * hash64_prime))) * hash64_prime
