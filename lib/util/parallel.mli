(** Minimal fork-join parallelism over index ranges (OCaml 5 domains).

    The paper closes Section 3 observing that hypergraphs much larger
    than the Cellzome study "will require high performance algorithms
    and software" and a parallel algorithm; the library's two
    embarrassingly parallel phases — all-sources BFS sweeps and the
    pairwise-overlap construction — run through this module.

    Work on [0, n) is split into [domains] contiguous chunks, each
    folded locally in its own domain with a fresh accumulator, and the
    per-domain results are combined left-to-right (so a deterministic
    [combine] gives deterministic results regardless of scheduling).
    Caller contract: [fold] must only read shared state — the
    accumulator is the only thing written. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count], capped at 8. *)

(** {2 Shared domain budget}

    When a worker pool runs several jobs at once, each job calling a
    kernel with [domains = recommended_domains ()] would multiply the
    fan-out by the pool size.  The budget is a process-wide cap on
    concurrently useful domains, divided across the jobs currently
    executing: a job brackets its kernel work with
    [enter_job]/[leave_job], and [fold_range] clamps its fan-out to
    [budget / occupancy] (at least 1).  With no job entered (CLI
    paths), the clamp is just [min requested budget]. *)

val set_domain_budget : int -> unit
(** Set the process-wide domain budget (default
    [recommended_domains ()]).  Raises [Invalid_argument] on [b < 1]. *)

val domain_budget : unit -> int
(** Current budget. *)

val occupancy : unit -> int
(** Number of jobs currently between [enter_job] and [leave_job]. *)

val enter_job : unit -> unit
(** Mark this thread of control as one concurrently running job. *)

val leave_job : unit -> unit
(** Undo one [enter_job].  Raises [Invalid_argument] if unbalanced. *)

val effective_domains : int -> int
(** [effective_domains requested] is the fan-out [fold_range] will
    actually use before range clamping:
    [max 1 (min requested (budget / max 1 occupancy))]. *)

val fold_range :
  domains:int ->
  n:int ->
  create:(unit -> 'acc) ->
  fold:('acc -> int -> 'acc) ->
  combine:('acc -> 'acc -> 'acc) ->
  'acc
(** Runs sequentially only when the clamped fan-out or the range
    leaves a single chunk ([n < 2] or effective domains = 1); chunks
    are near-equal with the remainder spread over the first chunks.
    Raises [Invalid_argument] on [domains < 1] or [n < 0]; re-raises
    the first worker exception after joining every domain. *)
