(* Hash table over keys + intrusive doubly linked recency list.  The
   list runs MRU (head) to LRU (tail); nodes are spliced in O(1). *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
}

let create ~capacity () =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  { capacity; table = Hashtbl.create (max 16 capacity); head = None; tail = None }

let capacity t = t.capacity

let length t = Hashtbl.length t.table

let is_empty t = length t = 0

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  (match t.head with
  | Some h -> h.prev <- Some node
  | None -> t.tail <- Some node);
  t.head <- Some node

let promote t node =
  match t.head with
  | Some h when h == node -> ()
  | _ ->
    unlink t node;
    push_front t node

let mem t k = Hashtbl.mem t.table k

let peek t k =
  match Hashtbl.find_opt t.table k with
  | Some node -> Some node.value
  | None -> None

let find t k =
  match Hashtbl.find_opt t.table k with
  | Some node ->
    promote t node;
    Some node.value
  | None -> None

let remove t k =
  match Hashtbl.find_opt t.table k with
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table k;
    true
  | None -> false

let evict_lru t =
  match t.tail with
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key;
    Some (node.key, node.value)
  | None -> None

let set t k v =
  match Hashtbl.find_opt t.table k with
  | Some node ->
    node.value <- v;
    promote t node;
    None
  | None ->
    if t.capacity = 0 then Some (k, v)
    else begin
      let evicted = if length t >= t.capacity then evict_lru t else None in
      let node = { key = k; value = v; prev = None; next = None } in
      Hashtbl.add t.table k node;
      push_front t node;
      evicted
    end

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let to_list t =
  let rec walk acc = function
    | Some node -> walk ((node.key, node.value) :: acc) node.next
    | None -> List.rev acc
  in
  walk [] t.head

let lru t =
  match t.tail with
  | Some node -> Some (node.key, node.value)
  | None -> None
