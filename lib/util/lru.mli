(** Bounded map with least-recently-used eviction.

    Backs the hgd result cache, but is independently reusable: a
    polymorphic-hash table over the keys plus an intrusive doubly
    linked recency list, so every operation is O(1) expected.

    Recency: [set] and a successful [find] make the binding the most
    recently used; [peek] and [mem] observe without promoting.  When an
    insert of a {e new} key would exceed [capacity], the least recently
    used binding is evicted and returned to the caller (so a cache can
    count evictions or release resources).  A capacity of 0 is legal
    and makes every [set] a no-op that returns its own binding. *)

type ('k, 'v) t

val create : capacity:int -> unit -> ('k, 'v) t
(** Raises [Invalid_argument] when [capacity < 0]. *)

val capacity : ('k, 'v) t -> int

val length : ('k, 'v) t -> int

val is_empty : ('k, 'v) t -> bool

val mem : ('k, 'v) t -> 'k -> bool
(** Does not promote. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Promotes the binding to most recently used when present. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Like [find] without promoting. *)

val set : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option
(** Insert or replace, making the binding most recently used.  Returns
    the binding evicted to stay within capacity, if any (replacing an
    existing key never evicts). *)

val remove : ('k, 'v) t -> 'k -> bool
(** True when the key was bound. *)

val clear : ('k, 'v) t -> unit

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Bindings from most to least recently used. *)

val lru : ('k, 'v) t -> ('k * 'v) option
(** The binding next in line for eviction. *)
