type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" | "warning" -> Ok Warn
  | "error" -> Ok Error
  | other ->
    Result.Error (Printf.sprintf "unknown log level %S (debug|info|warn|error)" other)

(* The threshold is read on every call from any domain; an int Atomic
   keeps the hot path lock-free. *)
let threshold = Atomic.make (severity Info)

let set_level l = Atomic.set threshold (severity l)

let current_level () =
  match Atomic.get threshold with
  | 0 -> Debug
  | 1 -> Info
  | 2 -> Warn
  | _ -> Error

let enabled l = severity l >= Atomic.get threshold

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let iso8601 ts =
  let tm = Unix.gmtime ts in
  let millis =
    int_of_float ((ts -. Float.of_int (int_of_float ts)) *. 1000.0)
  in
  let millis = max 0 (min 999 millis) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ" (tm.tm_year + 1900)
    (tm.tm_mon + 1) tm.tm_mday tm.tm_hour tm.tm_min tm.tm_sec millis

let render ~ts level ~comp ~fields msg =
  let buf = Buffer.create 128 in
  let field k v =
    Buffer.add_string buf ",\"";
    json_escape buf k;
    Buffer.add_string buf "\":\"";
    json_escape buf v;
    Buffer.add_char buf '"'
  in
  Buffer.add_string buf "{\"ts\":\"";
  Buffer.add_string buf (iso8601 ts);
  Buffer.add_string buf "\",\"level\":\"";
  Buffer.add_string buf (level_to_string level);
  Buffer.add_char buf '"';
  field "comp" comp;
  field "msg" msg;
  List.iter (fun (k, v) -> field k v) fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* Ring of recent lines.  The mutex also serializes the stderr write so
   lines from concurrent domains never interleave. *)
let ring_capacity = 512

let mutex = Mutex.create ()
let ring = Array.make ring_capacity ""
let ring_next = ref 0
let ring_count = ref 0

let emit level ~comp ?(fields = []) msg =
  if enabled level then begin
    let line = render ~ts:(Unix.gettimeofday ()) level ~comp ~fields msg in
    Mutex.lock mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mutex)
      (fun () ->
        ring.(!ring_next) <- line;
        ring_next := (!ring_next + 1) mod ring_capacity;
        if !ring_count < ring_capacity then incr ring_count;
        output_string stderr line;
        output_char stderr '\n';
        flush stderr)
  end

let debug ~comp ?fields msg = emit Debug ~comp ?fields msg
let info ~comp ?fields msg = emit Info ~comp ?fields msg
let warn ~comp ?fields msg = emit Warn ~comp ?fields msg
let error ~comp ?fields msg = emit Error ~comp ?fields msg

let recent n =
  Mutex.lock mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mutex)
    (fun () ->
      let n = max 0 (min n !ring_count) in
      List.init n (fun i ->
          let idx = (!ring_next - 1 - i + (2 * ring_capacity)) mod ring_capacity in
          ring.(idx)))
