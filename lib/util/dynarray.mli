(** Growable arrays.

    OCaml 5.1 does not ship [Stdlib.Dynarray] (added in 5.2), so this
    module provides the subset the rest of the library needs.  Elements
    are stored in a backing array that doubles on demand; a [dummy]
    element supplied at creation fills unused slots so no [Obj] tricks
    are needed. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is an empty dynamic array.  [capacity] is the
    initial size of the backing store (default 16, minimum 1). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get t i] raises [Invalid_argument] when [i] is out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit
(** Append an element, growing the backing store if needed. *)

val pop : 'a t -> 'a
(** Remove and return the last element.  Raises [Invalid_argument] on an
    empty array. *)

val remove : 'a t -> int -> unit
(** [remove t i] deletes the element at [i], shifting everything after
    it one slot left (O(n - i)).  Raises [Invalid_argument] when [i]
    is out of bounds. *)

val clear : 'a t -> unit
(** Reset the length to zero.  The backing store is kept but overwritten
    with the dummy so no stale values are retained. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_array : 'a t -> 'a array
(** A fresh array of exactly [length t] elements. *)

val of_array : dummy:'a -> 'a array -> 'a t

val to_list : 'a t -> 'a list

val exists : ('a -> bool) -> 'a t -> bool

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** In-place sort of the live prefix. *)
