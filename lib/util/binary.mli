(** Endian-safe fixed-width integer serialization.

    The snapshot store and the cache persistence layer write
    little-endian 64-bit fields; these helpers centralize the byte
    fiddling behind bounds-checked accessors so no call site indexes
    raw bytes by hand.  All accessors raise [Invalid_argument] when the
    8-byte window [pos, pos+8) falls outside the buffer.

    [hash64] is a cheap integrity checksum for framing and section
    payloads: FNV-1a folded into OCaml's native (63-bit) int, so the
    hot loop runs on unboxed arithmetic.  It is not standard 64-bit
    FNV-1a and must only be compared against values produced by this
    module (which is all the on-disk formats here need). *)

val set_i64_le : Bytes.t -> pos:int -> int64 -> unit
(** Write [v] as 8 little-endian bytes at [pos]. *)

val get_i64_le : Bytes.t -> pos:int -> int64
(** Read 8 little-endian bytes at [pos]. *)

val set_int_le : Bytes.t -> pos:int -> int -> unit
(** [set_int_le b ~pos v] writes a non-negative OCaml int as a
    little-endian u64.  Raises [Invalid_argument] when [v < 0]. *)

val set_u32_le : Bytes.t -> pos:int -> int -> unit
(** Write a value in [0, 2^32) as 4 little-endian bytes — the narrow
    encoding the snapshot store uses for incidence values, which halves
    the bytes it must map and verify.  Raises [Invalid_argument] when
    the value does not fit. *)

val get_u32_le : Bytes.t -> pos:int -> int
(** Read 4 little-endian bytes as an int in [0, 2^32); total on 64-bit
    hosts (where OCaml ints hold 63 bits). *)

val get_int_le : Bytes.t -> pos:int -> int option
(** Read a u64 field back as an OCaml int; [None] when the stored
    value is negative or exceeds [max_int] (i.e. it cannot have been
    written by [set_int_le] on this platform). *)

val int_of_i64 : int64 -> int option
(** Checked narrowing: [Some v] iff the value is in [0, max_int]. *)

val hash64_seed : int
(** Initial accumulator for [hash64] chains. *)

val hash64 : int -> Bytes.t -> pos:int -> len:int -> int
(** [hash64 acc b ~pos ~len] folds the byte range into the running
    checksum; chain calls to hash discontiguous regions.  Raises
    [Invalid_argument] when the range falls outside the buffer. *)

val hash64_byte : int -> int -> int
(** [hash64_byte acc byte] folds a single byte (low 8 bits) into the
    checksum — the building block for hashing buffers that are not
    [Bytes], e.g. mapped bigarrays. *)

val hash64_string : int -> string -> int
(** [hash64] over a whole string. *)

val hash64_words : int -> Bytes.t -> pos:int -> len:int -> int
(** Word-folding checksum over an 8-byte-aligned range: one serial
    multiply per little-endian 64-bit word instead of one per byte,
    which is what makes verifying multi-megabyte snapshot sections
    cheap next to an mmap.  Incompatible with [hash64] — the two must
    never be compared.  Raises [Invalid_argument] when the range falls
    outside the buffer or [len] is not a multiple of 8. *)

val hash64_word : int -> lo:int -> hi:int -> int
(** [hash64_word acc ~lo ~hi] folds one 64-bit word given as two
    32-bit little-endian halves — the building block behind
    [hash64_words] for hashing buffers that are not [Bytes], e.g.
    mapped bigarrays. *)
