type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 16) ~dummy () =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; len = 0; dummy }

let length t = t.len

let is_empty t = t.len = 0

let check t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Dynarray: index %d out of bounds [0,%d)" i t.len)

let get t i = check t i; t.data.(i)

let set t i x = check t i; t.data.(i) <- x

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) t.dummy in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Dynarray.pop: empty";
  t.len <- t.len - 1;
  let x = t.data.(t.len) in
  t.data.(t.len) <- t.dummy;
  x

let remove t i =
  check t i;
  Array.blit t.data (i + 1) t.data i (t.len - i - 1);
  t.len <- t.len - 1;
  t.data.(t.len) <- t.dummy

let clear t =
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_array t = Array.sub t.data 0 t.len

let of_array ~dummy a =
  let len = Array.length a in
  let data = Array.make (max len 1) dummy in
  Array.blit a 0 data 0 len;
  { data; len; dummy }

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (t.data.(i) :: acc) in
  loop (t.len - 1) []

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let sort cmp t =
  let a = to_array t in
  Array.sort cmp a;
  Array.blit a 0 t.data 0 t.len
