(** Incremental MD5 (RFC 1321).

    The stdlib [Digest] only hashes a value it can see whole, which
    forces callers to hold an entire file in memory just to learn its
    identity.  This context-based implementation digests data as it
    streams past — the registry hashes a dataset in the same pass that
    reads it, and the snapshot writer hashes sections as it emits them.

    Produces exactly the same 16-byte digests as [Digest.string]
    (property-tested against it), so identities recorded before this
    module existed remain valid. *)

type t
(** A running digest context.  Not thread-safe. *)

val init : unit -> t

val feed : t -> Bytes.t -> pos:int -> len:int -> unit
(** Absorb a byte range.  Raises [Invalid_argument] when the range
    falls outside the buffer, or when the context is finalized. *)

val feed_string : t -> string -> unit

val digest : t -> string
(** Finalize and return the raw 16-byte digest.  The context cannot be
    fed afterwards; calling [digest] again returns the same value. *)

val hex : t -> string
(** [digest] rendered as 32 lowercase hex characters (the registry's
    identity format). *)

val to_hex : string -> string
(** Render a raw digest as lowercase hex. *)

val string : string -> string
(** One-shot convenience: hex digest of a whole string. *)
