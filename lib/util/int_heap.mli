(** Binary min-heap over plain ints.

    Built for lazy priority queues: callers pack [(key, id)] as
    [key * stride + id], push a fresh entry whenever an element's key
    improves, and drop stale entries at pop time by checking the
    decoded key against their own side array.  Pop order is exact
    [(key, id)]-lexicographic order. *)

type t

val create : ?capacity:int -> unit -> t
(** Empty heap.  [capacity] (default 16) preallocates storage; the
    heap grows as needed. *)

val push : t -> int -> unit

val pop_min : t -> int option
(** Smallest entry, or [None] when empty. *)

val length : t -> int
val is_empty : t -> bool

val clear : t -> unit
(** Forget all entries without releasing storage. *)
