(** Flat sorting and run-length merging of non-negative integer keys.

    The overlap-CSR construction in the k-core kernel turns pairwise
    co-incidence into flat buffers of integer pair keys; counting a
    multiset of such keys is a sort followed by a run-length scan, with
    per-domain buffers merged afterwards.  This module provides the two
    pieces: an LSD radix sort whose auxiliary buffers live in
    domain-local scratch (so a peel allocates the scratch once per
    domain and every later sort reuses it — arrays only grow), and a
    k-way run-length merge over already-sorted buffers.

    All keys must be non-negative; {!sort} raises [Invalid_argument]
    on a negative element rather than silently misordering it. *)

val sort : ?len:int -> int array -> unit
(** [sort a] sorts [a.(0 .. len-1)] ascending in place ([len] defaults
    to the whole array).  LSD radix sort over 16-bit digits: linear in
    [len] with one pass per 16 significant bits of the maximum key, so
    pair keys bounded by m^2 take at most four passes.  The auxiliary
    array and digit counters come from [Domain.DLS] scratch and are
    reused across calls on the same domain.  Raises [Invalid_argument]
    on a negative key or [len] out of bounds. *)

val merge_runs : (int array * int) array -> (int -> int -> unit) -> unit
(** [merge_runs bufs f] treats each [(a, len)] as a sorted (ascending)
    multiset of keys [a.(0 .. len-1)] and calls [f key count] for every
    distinct key in ascending order, where [count] is the key's total
    multiplicity across all buffers.  With a single buffer this is a
    plain run-length scan.  Keys must be [< max_int] (the sentinel).
    Cost is O(total length * number of buffers) — the buffer count is
    the fold's domain fan-out, so it is small. *)
