module U = Hp_util

type t = {
  nv : int;
  edges : int array array;      (* edge id -> sorted member vertices *)
  vadj : int array array;       (* vertex id -> sorted incident edge ids *)
  vertex_names : string array option;
  edge_names : string array option;
  (* Name-to-id indexes are built on first lookup: constructing them
     eagerly costs more than everything else a snapshot load does, and
     most kernel work never queries by name. *)
  vertex_index : (string, int) Hashtbl.t option Lazy.t;
  edge_index : (string, int) Hashtbl.t option Lazy.t;
}

let build_index = function
  | None -> None
  | Some names ->
    let idx = Hashtbl.create (2 * Array.length names) in
    Array.iteri (fun i name -> if not (Hashtbl.mem idx name) then Hashtbl.add idx name i) names;
    Some idx

let of_arrays ?vertex_names ?edge_names ~n_vertices members =
  if n_vertices < 0 then invalid_arg "Hypergraph: negative vertex count";
  (match vertex_names with
  | Some names when Array.length names <> n_vertices ->
    invalid_arg "Hypergraph: vertex_names length mismatch"
  | Some _ | None -> ());
  (match edge_names with
  | Some names when Array.length names <> Array.length members ->
    invalid_arg "Hypergraph: edge_names length mismatch"
  | Some _ | None -> ());
  let edges =
    Array.map
      (fun ms ->
        let ms = U.Sorted.of_array ms in
        Array.iter
          (fun v ->
            if v < 0 || v >= n_vertices then
              invalid_arg "Hypergraph: member vertex out of range")
          ms;
        ms)
      members
  in
  let deg = Array.make n_vertices 0 in
  Array.iter (Array.iter (fun v -> deg.(v) <- deg.(v) + 1)) edges;
  let vadj = Array.init n_vertices (fun v -> Array.make deg.(v) 0) in
  let cursor = Array.make n_vertices 0 in
  Array.iteri
    (fun e ms ->
      Array.iter
        (fun v ->
          vadj.(v).(cursor.(v)) <- e;
          cursor.(v) <- cursor.(v) + 1)
        ms)
    edges;
  (* Edge ids were appended in increasing order, so vadj rows are
     already sorted. *)
  {
    nv = n_vertices;
    edges;
    vadj;
    vertex_names;
    edge_names;
    vertex_index = lazy (build_index vertex_names);
    edge_index = lazy (build_index edge_names);
  }

(* Constructor for loaders that already hold both incidence directions
   (the snapshot store).  Skips the sort of [of_arrays] but still
   refuses malformed input: member rows must be strictly increasing and
   in range, and [vadj] must be exactly the reverse incidence —
   verified with a cursor sweep in O(|E|), the same order the arrays
   would take to rebuild. *)
let of_csr_exn ?(rows_validated = false) ?vertex_names ?edge_names ~n_vertices
    ~edges ~vadj () =
  if n_vertices < 0 then invalid_arg "Hypergraph: negative vertex count";
  (match vertex_names with
  | Some names when Array.length names <> n_vertices ->
    invalid_arg "Hypergraph: vertex_names length mismatch"
  | Some _ | None -> ());
  (match edge_names with
  | Some names when Array.length names <> Array.length edges ->
    invalid_arg "Hypergraph: edge_names length mismatch"
  | Some _ | None -> ());
  if Array.length vadj <> n_vertices then
    invalid_arg "Hypergraph: vadj length mismatch";
  (* Explicit loops: this runs on every snapshot load, so avoid the
     closure and double-bounds-check overhead of the iterator forms.
     The range-and-monotonicity pass is branchless — [v - prev - 1]
     goes negative when the row stops strictly increasing (which also
     catches any v < 0, since prev starts at -1 and a first negative
     member trips it immediately), [n_vertices - 1 - v] when v
     escapes the vertex range; a row whose sign accumulator stays
     non-negative is valid, and the rare flagged row is rescanned for
     the precise diagnostic. *)
  let check_row_precise ms =
    let p = ref (-1) in
    Array.iter
      (fun v ->
        if v < 0 || v >= n_vertices then
          invalid_arg "Hypergraph: member vertex out of range";
        if v <= !p then
          invalid_arg "Hypergraph: members not strictly increasing";
        p := v)
      ms
  in
  let ne = Array.length edges in
  (* [rows_validated] callers (the snapshot loader) already ran this
     exact check while extracting the rows; the cursor sweep below
     still works unconditionally because it only indexes through
     values pass 1 vouched for — so it must not be skipped. *)
  if not rows_validated then
    for e = 0 to ne - 1 do
      let ms = Array.unsafe_get edges e in
      let len = Array.length ms in
      let rec scan i prev flags =
        if i = len then flags
        else
          let v = Array.unsafe_get ms i in
          scan (i + 1) v (flags lor (v - prev - 1) lor (n_vertices - 1 - v))
      in
      if scan 0 (-1) 0 < 0 then check_row_precise ms
    done;
  let cursor = Array.make n_vertices 0 in
  for e = 0 to ne - 1 do
    let ms = Array.unsafe_get edges e in
    for i = 0 to Array.length ms - 1 do
      (* v < n_vertices was established by the pass above, so it
         indexes cursor and vadj (length n_vertices) safely. *)
      let v = Array.unsafe_get ms i in
      let row = Array.unsafe_get vadj v in
      let c = Array.unsafe_get cursor v in
      if c >= Array.length row || Array.unsafe_get row c <> e then
        invalid_arg "Hypergraph: vadj disagrees with incidence";
      Array.unsafe_set cursor v (c + 1)
    done
  done;
  Array.iteri
    (fun v c ->
      if c <> Array.length vadj.(v) then
        invalid_arg "Hypergraph: vadj disagrees with incidence")
    cursor;
  {
    nv = n_vertices;
    edges;
    vadj;
    vertex_names;
    edge_names;
    vertex_index = lazy (build_index vertex_names);
    edge_index = lazy (build_index edge_names);
  }

let create ?vertex_names ?edge_names ~n_vertices members =
  of_arrays ?vertex_names ?edge_names ~n_vertices
    (Array.of_list (List.map Array.of_list members))

let n_vertices h = h.nv

let n_edges h = Array.length h.edges

let vertex_degree h v = Array.length h.vadj.(v)

let edge_size h e = Array.length h.edges.(e)

let total_incidence h = Array.fold_left (fun acc ms -> acc + Array.length ms) 0 h.edges

let max_vertex_degree h = Array.fold_left (fun acc a -> max acc (Array.length a)) 0 h.vadj

let max_edge_size h = Array.fold_left (fun acc a -> max acc (Array.length a)) 0 h.edges

let edge_members h e = h.edges.(e)

let vertex_edges h v = h.vadj.(v)

let mem h ~vertex ~edge = U.Sorted.mem h.edges.(edge) vertex

let vertex_degrees h = Array.map Array.length h.vadj

let edge_sizes h = Array.map Array.length h.edges

let edge_degree2 h e =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun v ->
      Array.iter
        (fun f -> if f <> e && not (Hashtbl.mem seen f) then Hashtbl.add seen f ())
        h.vadj.(v))
    h.edges.(e);
  Hashtbl.length seen

let max_edge_degree2 h =
  let best = ref 0 in
  for e = 0 to n_edges h - 1 do
    let d2 = edge_degree2 h e in
    if d2 > !best then best := d2
  done;
  !best

let vertex_degree2 h v =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun e ->
      Array.iter
        (fun w -> if w <> v && not (Hashtbl.mem seen w) then Hashtbl.add seen w ())
        h.edges.(e))
    h.vadj.(v);
  Hashtbl.length seen

let vertex_names_opt h = h.vertex_names

let edge_names_opt h = h.edge_names

let vertex_name h v =
  match h.vertex_names with
  | Some names -> names.(v)
  | None -> "v" ^ string_of_int v

let edge_name h e =
  match h.edge_names with
  | Some names -> names.(e)
  | None -> "e" ^ string_of_int e

let vertex_of_name h name =
  match Lazy.force h.vertex_index with
  | Some idx -> Hashtbl.find_opt idx name
  | None -> None

let edge_of_name h name =
  match Lazy.force h.edge_index with
  | Some idx -> Hashtbl.find_opt idx name
  | None -> None

let sub h ~vertices ~edges =
  let vertices = U.Sorted.of_array vertices in
  let edges = U.Sorted.of_array edges in
  let nv' = Array.length vertices in
  let vmap = Hashtbl.create (2 * nv') in
  Array.iteri (fun i v -> Hashtbl.replace vmap v i) vertices;
  let members =
    Array.map
      (fun e ->
        let kept =
          Array.to_list h.edges.(e)
          |> List.filter_map (fun v -> Hashtbl.find_opt vmap v)
        in
        Array.of_list kept)
      edges
  in
  let vertex_names =
    Option.map (fun names -> Array.map (fun v -> names.(v)) vertices) h.vertex_names
  in
  let edge_names =
    Option.map (fun names -> Array.map (fun e -> names.(e)) edges) h.edge_names
  in
  (of_arrays ?vertex_names ?edge_names ~n_vertices:nv' members, vertices, edges)

let is_reduced h =
  let m = n_edges h in
  let contained_somewhere e =
    (* f is contained in g iff g is a superset; scan candidate supersets
       through a member's adjacency (any member of f works, since a
       superset shares all members). *)
    let ms = h.edges.(e) in
    if Array.length ms = 0 then m > 1 (* empty edge is contained in any other *)
    else begin
      let candidates = h.vadj.(ms.(0)) in
      Array.exists
        (fun g -> g <> e && U.Sorted.subset ms h.edges.(g))
        candidates
    end
  in
  let rec loop e = e >= m || ((not (contained_somewhere e)) && loop (e + 1)) in
  loop 0

let equal_structure a b =
  a.nv = b.nv && Array.length a.edges = Array.length b.edges
  && Array.for_all2 U.Sorted.equal a.edges b.edges

let pp ppf h =
  Format.fprintf ppf "@[<v>hypergraph: %d vertices, %d hyperedges, |E| = %d@,"
    (n_vertices h) (n_edges h) (total_incidence h);
  Array.iteri
    (fun e ms ->
      Format.fprintf ppf "%s:" (edge_name h e);
      Array.iter (fun v -> Format.fprintf ppf " %s" (vertex_name h v)) ms;
      Format.fprintf ppf "@,")
    h.edges;
  Format.fprintf ppf "@]"
