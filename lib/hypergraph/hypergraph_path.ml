module U = Hp_util
module H = Hypergraph

(* BFS on the bipartite view, alternating vertex and hyperedge layers.
   Vertex distance d corresponds to d hyperedges along the path.

   The sweep runs this once per source, so the kernel allocates
   nothing per call: each domain owns a scratch arena of epoch-stamped
   flat arrays ([vstamp.(v) = epoch] means v was reached in the
   current traversal, so no O(|V|+|E|) clear between sources) and an
   int-array frontier (every vertex is enqueued at most once, so a
   flat queue of capacity |V| never wraps).  Arrays only grow; a
   smaller graph reuses a larger arena untouched.  Epochs start at 1
   and are bumped per source — freshly grown arrays are zero-filled,
   which can never equal a live epoch. *)
type scratch = {
  mutable vstamp : int array; (* vstamp.(v) = epoch  <=>  v reached *)
  mutable vdist : int array;  (* valid only where vstamp matches *)
  mutable estamp : int array; (* estamp.(e) = epoch  <=>  e expanded *)
  mutable frontier : int array; (* flat FIFO, head/tail in run_bfs *)
  mutable epoch : int;
}

let scratch_key : scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { vstamp = [||]; vdist = [||]; estamp = [||]; frontier = [||]; epoch = 0 })

let ensure_capacity s ~nv ~ne =
  if Array.length s.vstamp < nv then begin
    s.vstamp <- Array.make nv 0;
    s.vdist <- Array.make nv 0;
    s.frontier <- Array.make nv 0
  end;
  if Array.length s.estamp < ne then s.estamp <- Array.make ne 0

(* One traversal from [src], accumulating the sweep statistics inline:
   (sum of finite distances to other vertices, count of such vertices,
   max distance).  Distances land in [s.vdist] under epoch [s.epoch]
   for callers that want the full vector. *)
let run_bfs s h src =
  let nv = H.n_vertices h and ne = H.n_edges h in
  ensure_capacity s ~nv ~ne;
  s.epoch <- s.epoch + 1;
  let ep = s.epoch in
  let vstamp = s.vstamp
  and vdist = s.vdist
  and estamp = s.estamp
  and queue = s.frontier in
  Array.unsafe_set vstamp src ep;
  Array.unsafe_set vdist src 0;
  Array.unsafe_set queue 0 src;
  let head = ref 0 and tail = ref 1 in
  let sum = ref 0 and pairs = ref 0 and dmax = ref 0 in
  while !head < !tail do
    let v = Array.unsafe_get queue !head in
    incr head;
    let d = Array.unsafe_get vdist v + 1 in
    let es = H.vertex_edges h v in
    for ei = 0 to Array.length es - 1 do
      let e = Array.unsafe_get es ei in
      if Array.unsafe_get estamp e <> ep then begin
        Array.unsafe_set estamp e ep;
        let ws = H.edge_members h e in
        for wi = 0 to Array.length ws - 1 do
          let w = Array.unsafe_get ws wi in
          if Array.unsafe_get vstamp w <> ep then begin
            Array.unsafe_set vstamp w ep;
            Array.unsafe_set vdist w d;
            Array.unsafe_set queue !tail w;
            incr tail;
            sum := !sum + d;
            incr pairs;
            if d > !dmax then dmax := d
          end
        done
      end
    done
  done;
  (!sum, !pairs, !dmax)

let bfs h src =
  let s = Domain.DLS.get scratch_key in
  ignore (run_bfs s h src);
  let ep = s.epoch and vstamp = s.vstamp and vd = s.vdist in
  Array.init (H.n_vertices h) (fun v ->
      if vstamp.(v) = ep then vd.(v) else -1)

let distance h u v =
  let d = (bfs h u).(v) in
  if d < 0 then None else Some d

let components h =
  let nv = H.n_vertices h and ne = H.n_edges h in
  let ds = U.Disjoint_set.create (nv + ne) in
  for e = 0 to ne - 1 do
    Array.iter (fun v -> ignore (U.Disjoint_set.union ds v (nv + e))) (H.edge_members h e)
  done;
  let vlabel = Array.make nv (-1) and elabel = Array.make ne (-1) in
  let canon = Hashtbl.create 64 in
  let next = ref 0 in
  let label_of node =
    let r = U.Disjoint_set.find ds node in
    match Hashtbl.find_opt canon r with
    | Some l -> l
    | None ->
      let l = !next in
      incr next;
      Hashtbl.add canon r l;
      l
  in
  for v = 0 to nv - 1 do
    vlabel.(v) <- label_of v
  done;
  for e = 0 to ne - 1 do
    elabel.(e) <- label_of (nv + e)
  done;
  (vlabel, elabel, !next)

let n_components h =
  let _, _, c = components h in
  c

let component_summary h =
  let vlabel, elabel, count = components h in
  let nv = Array.make count 0 and ne = Array.make count 0 in
  Array.iter (fun c -> nv.(c) <- nv.(c) + 1) vlabel;
  Array.iter (fun c -> ne.(c) <- ne.(c) + 1) elabel;
  let pairs = Array.init count (fun c -> (nv.(c), ne.(c))) in
  Array.sort (fun a b -> compare b a) pairs;
  pairs

let largest_component h =
  let vlabel, elabel, count = components h in
  if count = 0 then (h, [||], [||])
  else begin
    let sizes = Array.make count 0 in
    Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) vlabel;
    let best = ref 0 in
    Array.iteri (fun c s -> if s > sizes.(!best) then best := c) sizes;
    let vkeep = U.Dynarray.create ~dummy:0 () in
    Array.iteri (fun v c -> if c = !best then U.Dynarray.push vkeep v) vlabel;
    let ekeep = U.Dynarray.create ~dummy:0 () in
    Array.iteri (fun e c -> if c = !best then U.Dynarray.push ekeep e) elabel;
    H.sub h ~vertices:(U.Dynarray.to_array vkeep) ~edges:(U.Dynarray.to_array ekeep)
  end

(* Profiling hook for the sweeps: completed-source counting is atomic
   because the fold fans out across domains. *)
type sweep_stats = { sources : int Atomic.t }

let sweep_stats () = { sources = Atomic.make 0 }
let sources_visited s = Atomic.get s.sources

(* One BFS per source, accumulating (sum of finite distances, finite
   ordered pairs, max distance).  Sources are independent, so the sweep
   fans out across domains: the hypergraph is only read.  The deadline
   is checked once per source — [Deadline.Expired] raised in a worker
   domain is re-raised by the fork-join, so an over-budget sweep
   aborts across all domains. *)
let pair_stats_over ~domains ~deadline ?stats h ~n_sources ~source_of =
  let fold (sum, pairs, dmax) i =
    U.Deadline.check deadline;
    U.Fault.point "path.bfs";
    let src = source_of i in
    let s, p, d = run_bfs (Domain.DLS.get scratch_key) h src in
    (match stats with Some st -> Atomic.incr st.sources | None -> ());
    (sum + s, pairs + p, max dmax d)
  in
  let sum, pairs, dmax =
    U.Parallel.fold_range ~domains ~n:n_sources
      ~create:(fun () -> (0, 0, 0))
      ~fold
      ~combine:(fun (a, b, c) (d, e, f) -> (a + d, b + e, max c f))
  in
  let avg = if pairs = 0 then 0.0 else float_of_int sum /. float_of_int pairs in
  (dmax, avg)

let diameter_and_average_path ?(domains = 1) ?(deadline = U.Deadline.never)
    ?stats h =
  pair_stats_over ~domains ~deadline ?stats h ~n_sources:(H.n_vertices h)
    ~source_of:Fun.id

let sampled_diameter_and_average_path ?(domains = 1)
    ?(deadline = U.Deadline.never) ?stats rng h ~samples =
  let nv = H.n_vertices h in
  if nv = 0 then (0, 0.0)
  else begin
    (* Sources are drawn up front so the estimate is a function of the
       rng alone — the same seed yields the same answer at any domain
       count (the combine is commutative). *)
    let sources = Array.init samples (fun _ -> U.Prng.int rng nv) in
    pair_stats_over ~domains ~deadline ?stats h ~n_sources:samples
      ~source_of:(fun i -> sources.(i))
  end
