module U = Hp_util
module H = Hypergraph

(* BFS on the bipartite view, alternating vertex and hyperedge layers.
   Vertex distance d corresponds to d hyperedges along the path. *)
let bfs h src =
  let nv = H.n_vertices h in
  let ne = H.n_edges h in
  let vdist = Array.make nv (-1) in
  let evisited = Array.make ne false in
  let queue = Queue.create () in
  vdist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    Array.iter
      (fun e ->
        if not evisited.(e) then begin
          evisited.(e) <- true;
          Array.iter
            (fun w ->
              if vdist.(w) < 0 then begin
                vdist.(w) <- vdist.(v) + 1;
                Queue.add w queue
              end)
            (H.edge_members h e)
        end)
      (H.vertex_edges h v)
  done;
  vdist

let distance h u v =
  let d = (bfs h u).(v) in
  if d < 0 then None else Some d

let components h =
  let nv = H.n_vertices h and ne = H.n_edges h in
  let ds = U.Disjoint_set.create (nv + ne) in
  for e = 0 to ne - 1 do
    Array.iter (fun v -> ignore (U.Disjoint_set.union ds v (nv + e))) (H.edge_members h e)
  done;
  let vlabel = Array.make nv (-1) and elabel = Array.make ne (-1) in
  let canon = Hashtbl.create 64 in
  let next = ref 0 in
  let label_of node =
    let r = U.Disjoint_set.find ds node in
    match Hashtbl.find_opt canon r with
    | Some l -> l
    | None ->
      let l = !next in
      incr next;
      Hashtbl.add canon r l;
      l
  in
  for v = 0 to nv - 1 do
    vlabel.(v) <- label_of v
  done;
  for e = 0 to ne - 1 do
    elabel.(e) <- label_of (nv + e)
  done;
  (vlabel, elabel, !next)

let n_components h =
  let _, _, c = components h in
  c

let component_summary h =
  let vlabel, elabel, count = components h in
  let nv = Array.make count 0 and ne = Array.make count 0 in
  Array.iter (fun c -> nv.(c) <- nv.(c) + 1) vlabel;
  Array.iter (fun c -> ne.(c) <- ne.(c) + 1) elabel;
  let pairs = Array.init count (fun c -> (nv.(c), ne.(c))) in
  Array.sort (fun a b -> compare b a) pairs;
  pairs

let largest_component h =
  let vlabel, elabel, count = components h in
  if count = 0 then (h, [||], [||])
  else begin
    let sizes = Array.make count 0 in
    Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) vlabel;
    let best = ref 0 in
    Array.iteri (fun c s -> if s > sizes.(!best) then best := c) sizes;
    let vkeep = U.Dynarray.create ~dummy:0 () in
    Array.iteri (fun v c -> if c = !best then U.Dynarray.push vkeep v) vlabel;
    let ekeep = U.Dynarray.create ~dummy:0 () in
    Array.iteri (fun e c -> if c = !best then U.Dynarray.push ekeep e) elabel;
    H.sub h ~vertices:(U.Dynarray.to_array vkeep) ~edges:(U.Dynarray.to_array ekeep)
  end

(* Profiling hook for the sweeps: completed-source counting is atomic
   because the fold fans out across domains. *)
type sweep_stats = { sources : int Atomic.t }

let sweep_stats () = { sources = Atomic.make 0 }
let sources_visited s = Atomic.get s.sources

(* One BFS per source, accumulating (sum of finite distances, finite
   ordered pairs, max distance).  Sources are independent, so the sweep
   fans out across domains: the hypergraph is only read.  The deadline
   is checked once per source — [Deadline.Expired] raised in a worker
   domain is re-raised by the fork-join, so an over-budget sweep
   aborts across all domains. *)
let pair_stats_over ~domains ~deadline ?stats h ~n_sources ~source_of =
  let fold (sum, pairs, dmax) i =
    U.Deadline.check deadline;
    U.Fault.point "path.bfs";
    let src = source_of i in
    let dist = bfs h src in
    (match stats with Some s -> Atomic.incr s.sources | None -> ());
    let sum = ref sum and pairs = ref pairs and dmax = ref dmax in
    Array.iteri
      (fun v d ->
        if v <> src && d > 0 then begin
          sum := !sum + d;
          incr pairs;
          if d > !dmax then dmax := d
        end)
      dist;
    (!sum, !pairs, !dmax)
  in
  let sum, pairs, dmax =
    U.Parallel.fold_range ~domains ~n:n_sources
      ~create:(fun () -> (0, 0, 0))
      ~fold
      ~combine:(fun (a, b, c) (d, e, f) -> (a + d, b + e, max c f))
  in
  let avg = if pairs = 0 then 0.0 else float_of_int sum /. float_of_int pairs in
  (dmax, avg)

let diameter_and_average_path ?(domains = 1) ?(deadline = U.Deadline.never)
    ?stats h =
  pair_stats_over ~domains ~deadline ?stats h ~n_sources:(H.n_vertices h)
    ~source_of:Fun.id

let sampled_diameter_and_average_path ?(domains = 1)
    ?(deadline = U.Deadline.never) ?stats rng h ~samples =
  let nv = H.n_vertices h in
  if nv = 0 then (0, 0.0)
  else begin
    (* Sources are drawn up front so the estimate is a function of the
       rng alone — the same seed yields the same answer at any domain
       count (the combine is commutative). *)
    let sources = Array.init samples (fun _ -> U.Prng.int rng nv) in
    pair_stats_over ~domains ~deadline ?stats h ~n_sources:samples
      ~source_of:(fun i -> sources.(i))
  end
