(** The k-core of a hypergraph (paper Section 3, Figure 4).

    The k-core of H is the maximal subhypergraph that is reduced (every
    hyperedge maximal) and in which every vertex belongs to at least k
    hyperedges.  The algorithm deletes vertices of degree < k; removing
    a vertex shrinks the hyperedges containing it, and a hyperedge that
    stops being maximal — including the special case of becoming
    empty — is deleted outright, which lowers the degrees of its
    remaining members and can cascade.

    Maximality is detected without comparing vertex lists, by
    maintaining pairwise hyperedge overlaps: after a deletion, a
    hyperedge f is contained in a partner g exactly when its current
    degree equals its current overlap with g (the paper's key
    observation).  The default strategy stores the overlaps as a flat
    CSR overlap graph — per-edge partner slices with parallel count
    and twin-slot arrays, built once by parallel sort-based counting
    (DESIGN.md section 10) — so the per-deletion bookkeeping is array
    scans and a binary search instead of hash probes.  The retired
    hashtable implementation survives as [Overlap_table], and a naive
    strategy that re-scans member lists as [Naive]; both serve
    differential testing and the E11/E22 ablation benches.

    Uniqueness caveat: the k-core is unique as a SET SYSTEM, but when
    two hyperedges shrink to the same restriction during peeling,
    either original may survive the peel — so raw peel output
    ([k_core]) has deletion-order-dependent edge identity (vertex core
    numbers and the multiset of edge core levels do not).
    [max_core] and [core_of_decomposition] canonicalize: every
    surviving member-set is represented by the smallest original
    hyperedge id whose restriction to the core vertex set equals it,
    independent of peel order.

    Every driver accepts a cooperative [?deadline]
    ({!Hp_util.Deadline}): the peeling loop checks it each iteration
    and raises [Deadline.Expired] when the budget is blown, so a
    server can abort an over-budget request mid-computation instead of
    discovering the overrun after the fact. *)

type strategy =
  | Overlap
      (** overlap-count maximality (the paper's algorithm) over the
          flat CSR overlap graph — the fast default *)
  | Overlap_table
      (** overlap-count maximality over per-pair hashtables — the
          retired reference kernel, kept for differential testing and
          the E22 bench *)
  | Naive    (** subset re-scan maximality (oracle / ablation) *)

type stats = {
  vertices_deleted : int;
  edges_deleted : int;
  maximality_checks : int;
  (** Number of (hyperedge, candidate container) containment tests. *)
  peel_rounds : int;
  (** FIFO cascade depth of the peel: the number of worklist batches
      drained, where each batch holds the vertices exposed by the
      previous one.  0 when nothing was peeled (k = 0, or no vertex
      ever fell below k). *)
}

type result = {
  core : Hypergraph.t;
  vertex_ids : int array;  (** new-to-old vertex id map into the input *)
  edge_ids : int array;    (** new-to-old hyperedge id map into the input *)
  stats : stats;
}

val k_core :
  ?strategy:strategy ->
  ?domains:int ->
  ?deadline:Hp_util.Deadline.t ->
  Hypergraph.t ->
  int ->
  result
(** [k_core h k] for k >= 0.  The 0-core is the reduced input with all
    vertices.  Raises [Invalid_argument] for negative k and
    [Hp_util.Deadline.Expired] when [deadline] (default
    {!Hp_util.Deadline.never}) passes mid-peel. *)

type decomposition = {
  vertex_core : int array;
  (** Largest k such that the vertex is in the k-core (>= 0). *)
  edge_core : int array;
  (** Largest k such that the hyperedge is in the k-core; [-1] for
      hyperedges dropped when reducing the input. *)
  max_core : int;
  (** Largest k with a non-empty k-core; 0 when the 1-core is empty. *)
}

val decompose :
  ?strategy:strategy ->
  ?domains:int ->
  ?deadline:Hp_util.Deadline.t ->
  Hypergraph.t ->
  decomposition
(** Alias for [decompose_onepass]. *)

val decompose_iterated :
  ?strategy:strategy ->
  ?domains:int ->
  ?deadline:Hp_util.Deadline.t ->
  Hypergraph.t ->
  decomposition
(** Runs [k_core] for k = 1, 2, ... on the shrinking core, exactly as
    the paper describes the maximum-core search.  Cost grows with the
    maximum core index; kept as the reference implementation. *)

val decompose_onepass :
  ?strategy:strategy ->
  ?domains:int ->
  ?deadline:Hp_util.Deadline.t ->
  Hypergraph.t ->
  decomposition
(** Single minimum-degree peel over a bucket queue (the hypergraph
    analogue of the Batagelj-Zaversnik sweep): the level only rises,
    every vertex is deleted once, and the core numbers fall out of the
    deletion levels.  Agrees with [decompose_iterated] (property-tested)
    at a fraction of the cost for deep cores. *)

val resume_peel :
  ?strategy:strategy ->
  ?domains:int ->
  ?deadline:Hp_util.Deadline.t ->
  level:int ->
  Hypergraph.t ->
  decomposition
(** Resume the canonical one-pass sweep from a peel boundary: [h] must
    be (a union of overlap components of) the alive structure of some
    sweep at the moment its level first reached [level] — vertices and
    hyperedges that survive to core [level], hyperedges restricted to
    surviving vertices, no reduction applied (a boundary is already
    reduced and containment-free).  Every returned core number is
    >= [level], and — because the sweep pops the (key, id)-minimum and
    its effects are component-local — the result is bit-identical to
    the full sweep's values on those components.  This is the repair
    kernel of the subcore cascade in {!Hypergraph_maintain}.  Raises
    [Invalid_argument] for negative [level]. *)

val max_core :
  ?strategy:strategy ->
  ?domains:int ->
  ?deadline:Hp_util.Deadline.t ->
  Hypergraph.t ->
  int * result
(** The maximum core and its index: the k-core for the largest k such
    that the core still has vertices.  Built directly from the
    one-pass decomposition's [vertex_core]/[edge_core] arrays via
    {!core_of_decomposition} — no second peel — so [stats] reports the
    decomposition's counters: [maximality_checks] is the sweep's
    total, and [peel_rounds] is 0 (the minimum-degree sweep has no
    FIFO cascade structure).  Edge identity is canonical per the
    uniqueness caveat above: duplicate member-sets are represented by
    the smallest original hyperedge id. *)

val core_of_decomposition : Hypergraph.t -> decomposition -> int -> result
(** [core_of_decomposition h d k] assembles the k-core of [h] from an
    already-computed decomposition without re-peeling: vertices with
    [vertex_core >= k], hyperedges with [edge_core >= k], and a
    canonical edge identity — each surviving member-set is represented
    by the smallest original hyperedge id whose restriction to the
    core vertex set equals it.  [stats] counts only what the id sets
    imply ([maximality_checks] and [peel_rounds] are 0).  This is the
    serving path for incrementally maintained decompositions
    ({!Hypergraph_maintain}): O(vertices + total member size) per
    query instead of a full peel.  Raises [Invalid_argument] for
    negative [k]. *)

val core_profile : decomposition -> (int * int * int) array
(** Per level k = 0 .. max_core: [(k, vertices in the k-core, edges in
    the k-core)] — the series behind a core-decomposition plot, and the
    statistic compared against null models in the E17 bench. *)

type round_stats = {
  rounds : int;
  (** Number of synchronous peeling rounds until the k-core fixpoint —
      the parallel depth of the computation. *)
  batch_sizes : int array;
  (** Vertices deleted in each round. *)
  core_vertices : int;
  core_edges : int;
}

val peel_rounds :
  ?strategy:strategy ->
  ?domains:int ->
  ?deadline:Hp_util.Deadline.t ->
  Hypergraph.t ->
  int ->
  round_stats
(** Batch-synchronous variant of the k-core peel: each round deletes
    every vertex currently below degree k at once.  The round count is
    the depth a parallel implementation would need — the groundwork for
    the parallel algorithm the paper calls for on large hypergraphs
    (Section 3).  The resulting core equals [k_core]'s.  Like every
    other driver, checks [deadline] per deletion and raises
    [Hp_util.Deadline.Expired] when the budget is blown. *)
