module U = Hp_util
module H = Hypergraph

type strategy = Overlap | Naive

type stats = {
  vertices_deleted : int;
  edges_deleted : int;
  maximality_checks : int;
  peel_rounds : int;
}

type result = {
  core : Hypergraph.t;
  vertex_ids : int array;
  edge_ids : int array;
  stats : stats;
}

(* Mutable peeling state over a (reduced) hypergraph.  The two drivers
   below share it: the per-k algorithm of Figure 4 seeds a worklist
   with low-degree vertices, while the one-pass decomposition peels
   minimum-degree vertices from a bucket queue.  They observe deletions
   through the [on_vertex_degree] / [on_edge_delete] hooks. *)
(* Incidence is read straight off the immutable CSR arrays
   ([H.vertex_edges] / [H.edge_members]) filtered through the alive
   flags: the alive members of edge e are exactly its static members
   whose [valive] flag still holds, and symmetrically for a vertex's
   alive incident edges.  (Deletion order makes this exact: a vertex's
   flag drops before its edges are rechecked, and an edge's flag drops
   before its members' degrees fall.)  The per-vertex/per-edge
   hashtables this replaces dominated [init] on small-k peels of
   already-reduced inputs — O(|V| + |E| + total incidence) hashtable
   inserts before any peeling started. *)
type state = {
  m : int;                                (* edge count, for pair keys *)
  strategy : strategy;
  h : H.t;                                (* static incidence (CSR arrays) *)
  valive : bool array;
  ealive : bool array;
  vdeg : int array;
  edeg : int array;
  overlap : (int, int) Hashtbl.t;         (* key f*m+g (f<g) -> count *)
  partners : (int, unit) Hashtbl.t array; (* edge -> overlapping alive edges *)
  mutable on_vertex_degree : int -> unit; (* fires after a degree drop *)
  mutable on_edge_delete : int -> unit;
  mutable vdel : int;
  mutable edel : int;
  mutable checks : int;
}

let pair_key st f g = if f < g then (f * st.m) + g else (g * st.m) + f

let get_overlap st f g =
  Option.value (Hashtbl.find_opt st.overlap (pair_key st f g)) ~default:0

let dec_overlap st f g =
  let key = pair_key st f g in
  match Hashtbl.find_opt st.overlap key with
  | None -> ()
  | Some 1 ->
    Hashtbl.remove st.overlap key;
    Hashtbl.remove st.partners.(f) g;
    Hashtbl.remove st.partners.(g) f
  | Some c -> Hashtbl.replace st.overlap key (c - 1)

let init ~strategy ~domains h =
  let nv = H.n_vertices h and m = H.n_edges h in
  let st =
    {
      m;
      strategy;
      h;
      valive = Array.make nv true;
      ealive = Array.make m true;
      vdeg = H.vertex_degrees h;
      edeg = H.edge_sizes h;
      overlap =
        (match strategy with
        | Naive -> Hashtbl.create 1
        | Overlap -> Hashtbl.create (4 * (m + 1)));
      partners =
        (match strategy with
        | Naive -> [||]
        | Overlap -> Array.init m (fun _ -> Hashtbl.create 8));
      on_vertex_degree = ignore;
      on_edge_delete = ignore;
      vdel = 0;
      edel = 0;
      checks = 0;
    }
  in
  (match strategy with
  | Naive -> ()
  | Overlap ->
    (* Pairwise overlaps from vertex adjacency lists, the paper's
       O(sum d(v)^2) preprocessing.  Vertices are independent, so the
       counting fans out over domains into local tables that are merged
       afterwards. *)
    let local =
      U.Parallel.fold_range ~domains ~n:nv
        ~create:(fun () -> Hashtbl.create 256)
        ~fold:(fun tbl v ->
          let adj = H.vertex_edges h v in
          let d = Array.length adj in
          for i = 0 to d - 1 do
            for j = i + 1 to d - 1 do
              let key = pair_key st adj.(i) adj.(j) in
              let c = Option.value (Hashtbl.find_opt tbl key) ~default:0 in
              Hashtbl.replace tbl key (c + 1)
            done
          done;
          tbl)
        ~combine:(fun a b ->
          let big, small =
            if Hashtbl.length a >= Hashtbl.length b then (a, b) else (b, a)
          in
          Hashtbl.iter
            (fun key c ->
              let c0 = Option.value (Hashtbl.find_opt big key) ~default:0 in
              Hashtbl.replace big key (c0 + c))
            small;
          big)
    in
    Hashtbl.iter
      (fun key c ->
        Hashtbl.replace st.overlap key c;
        let f = key / m and g = key mod m in
        Hashtbl.replace st.partners.(f) g ();
        Hashtbl.replace st.partners.(g) f ())
      local);
  st

let rec delete_edge st f =
  st.ealive.(f) <- false;
  st.edel <- st.edel + 1;
  st.on_edge_delete f;
  Array.iter
    (fun w ->
      if st.valive.(w) then begin
        st.vdeg.(w) <- st.vdeg.(w) - 1;
        st.on_vertex_degree w
      end)
    (H.edge_members st.h f);
  match st.strategy with
  | Naive -> ()
  | Overlap ->
    let ps = Hashtbl.fold (fun g () acc -> g :: acc) st.partners.(f) [] in
    List.iter
      (fun g ->
        Hashtbl.remove st.partners.(g) f;
        Hashtbl.remove st.overlap (pair_key st f g))
      ps;
    Hashtbl.reset st.partners.(f)

and check_maximality st f =
  if st.ealive.(f) then begin
    if st.edeg.(f) = 0 then delete_edge st f
    else begin
      let contained =
        match st.strategy with
        | Overlap ->
          let found = ref false in
          Hashtbl.iter
            (fun g () ->
              if (not !found) && st.ealive.(g) then begin
                st.checks <- st.checks + 1;
                let c = get_overlap st f g in
                if c = st.edeg.(f)
                   && (st.edeg.(g) > st.edeg.(f)
                      || (st.edeg.(g) = st.edeg.(f) && g < f))
                then found := true
              end)
            st.partners.(f);
          !found
        | Naive ->
          (* Candidate containers share every member, so scanning the
             alive edges incident to one alive member of f is complete
             (edeg f > 0 here, so such a member exists). *)
          let ms = H.edge_members st.h f in
          let anchor = ref (-1) in
          let i = ref 0 in
          while !anchor < 0 do
            if st.valive.(ms.(!i)) then anchor := ms.(!i);
            incr i
          done;
          let subset_of g =
            st.checks <- st.checks + 1;
            Array.for_all
              (fun w -> (not st.valive.(w)) || H.mem st.h ~vertex:w ~edge:g)
              ms
          in
          Array.exists
            (fun g ->
              g <> f && st.ealive.(g)
              && (st.edeg.(g) > st.edeg.(f)
                 || (st.edeg.(g) = st.edeg.(f) && g < f))
              && subset_of g)
            (H.vertex_edges st.h !anchor)
      in
      if contained then delete_edge st f
    end
  end

let delete_vertex st v =
  st.valive.(v) <- false;
  st.vdel <- st.vdel + 1;
  let affected = ref [] in
  Array.iter
    (fun e -> if st.ealive.(e) then affected := e :: !affected)
    (H.vertex_edges st.h v);
  let affected = !affected in
  (* Overlap bookkeeping: every pair of alive edges containing v loses
     one common vertex. *)
  (match st.strategy with
  | Naive -> ()
  | Overlap ->
    let rec pairs = function
      | [] -> ()
      | f :: rest ->
        List.iter (fun g -> dec_overlap st f g) rest;
        pairs rest
    in
    pairs affected);
  (* [valive.(v)] is already down, so the flag-filtered member views
     exclude v; only the degree counters need the explicit update. *)
  List.iter (fun f -> st.edeg.(f) <- st.edeg.(f) - 1) affected;
  (* Only hyperedges whose degree was just decremented can have become
     non-maximal (paper Section 3). *)
  List.iter (fun f -> check_maximality st f) affected

let alive_ids flags =
  let buf = U.Dynarray.create ~dummy:0 () in
  Array.iteri (fun i alive -> if alive then U.Dynarray.push buf i) flags;
  U.Dynarray.to_array buf

let compose map ids = Array.map (fun i -> map.(i)) ids

let k_core ?(strategy = Overlap) ?(domains = 1) ?(deadline = U.Deadline.never) h k =
  if k < 0 then invalid_arg "Hypergraph_core.k_core: negative k";
  let reduced, emap0 = Hypergraph_reduce.reduce h in
  if k = 0 then begin
    {
      core = reduced;
      vertex_ids = Array.init (H.n_vertices h) Fun.id;
      edge_ids = emap0;
      stats =
        {
          vertices_deleted = 0;
          edges_deleted = H.n_edges h - H.n_edges reduced;
          maximality_checks = 0;
          peel_rounds = 0;
        };
    }
  end
  else begin
    let st = init ~strategy ~domains reduced in
    let queue = Queue.create () in
    st.on_vertex_degree <- (fun w -> if st.vdeg.(w) < k then Queue.add w queue);
    (* An initially-empty hyperedge (possible only when it is the sole
       hyperedge, otherwise reduction removed it) is deleted for any
       k >= 1 — the paper's "special case of a hyperedge becoming
       empty". *)
    for e = 0 to H.n_edges reduced - 1 do
      if st.edeg.(e) = 0 then delete_edge st e
    done;
    for v = 0 to H.n_vertices reduced - 1 do
      if st.vdeg.(v) < k then Queue.add v queue
    done;
    (* Drain the worklist in FIFO batches: everything queued at the top
       of a batch was exposed by the previous one, so the batch count is
       the cascade depth (the profiling gauge behind [peel_rounds]).
       Deletion order is exactly the plain FIFO drain's. *)
    let rounds = ref 0 in
    while not (Queue.is_empty queue) do
      incr rounds;
      let batch = Queue.length queue in
      for _ = 1 to batch do
        (* The cascade is the long pole on large inputs; abort promptly
           when the caller's budget is blown. *)
        U.Deadline.check deadline;
        U.Fault.point "core.peel";
        let v = Queue.take queue in
        if st.valive.(v) then delete_vertex st v
      done
    done;
    let vkeep = alive_ids st.valive and ekeep = alive_ids st.ealive in
    let core, _, esub = H.sub reduced ~vertices:vkeep ~edges:ekeep in
    {
      core;
      vertex_ids = vkeep;
      edge_ids = compose emap0 esub;
      stats =
        {
          vertices_deleted = st.vdel;
          edges_deleted = st.edel + (H.n_edges h - H.n_edges reduced);
          maximality_checks = st.checks;
          peel_rounds = !rounds;
        };
    }
  end

type decomposition = {
  vertex_core : int array;
  edge_core : int array;
  max_core : int;
}

let decompose_iterated ?(strategy = Overlap) ?(domains = 1)
    ?(deadline = U.Deadline.never) h =
  let nv = H.n_vertices h and m = H.n_edges h in
  let vertex_core = Array.make nv 0 in
  let edge_core = Array.make m (-1) in
  (* Edges surviving the initial reduction are at least in the 0-core. *)
  let r0 = k_core ~strategy ~domains ~deadline h 0 in
  Array.iter (fun e -> edge_core.(e) <- 0) r0.edge_ids;
  (* Iterate k upward, peeling the previous core (cores are nested; see
     the property tests). *)
  let rec loop k cur vids eids =
    let r = k_core ~strategy ~domains ~deadline cur k in
    if H.n_vertices r.core = 0 then k - 1
    else begin
      let vids' = compose vids r.vertex_ids in
      let eids' = compose eids r.edge_ids in
      Array.iter (fun v -> vertex_core.(v) <- k) vids';
      Array.iter (fun e -> edge_core.(e) <- k) eids';
      loop (k + 1) r.core vids' eids'
    end
  in
  let max_core = loop 1 r0.core (Array.init nv Fun.id) r0.edge_ids in
  { vertex_core; edge_core; max_core = max max_core 0 }

let decompose_onepass ?(strategy = Overlap) ?(domains = 1)
    ?(deadline = U.Deadline.never) h =
  let nv = H.n_vertices h and m = H.n_edges h in
  let vertex_core = Array.make nv 0 in
  let edge_core = Array.make m (-1) in
  let reduced, emap0 = Hypergraph_reduce.reduce h in
  Array.iter (fun e -> edge_core.(e) <- 0) emap0;
  let st = init ~strategy ~domains reduced in
  (* Initially-empty hyperedges belong to the 0-core only. *)
  for e = 0 to H.n_edges reduced - 1 do
    if st.edeg.(e) = 0 then delete_edge st e
  done;
  let maxd = Array.fold_left max 0 st.vdeg in
  let q = U.Bucket_queue.create ~n:nv ~max_key:maxd in
  for v = 0 to nv - 1 do
    U.Bucket_queue.insert q v st.vdeg.(v)
  done;
  let level = ref 0 in
  st.on_vertex_degree <-
    (fun w ->
      if U.Bucket_queue.mem q w then
        (* Degree below the current level cannot lower the core number
           any further; clamp so the bucket scan stays monotone. *)
        U.Bucket_queue.change_key q w (max st.vdeg.(w) !level));
  st.on_edge_delete <- (fun f -> edge_core.(emap0.(f)) <- !level);
  let continue = ref true in
  while !continue do
    U.Deadline.check deadline;
    U.Fault.point "core.peel";
    match U.Bucket_queue.pop_min q with
    | None -> continue := false
    | Some (v, d) ->
      if d > !level then level := d;
      vertex_core.(v) <- !level;
      delete_vertex st v
  done;
  { vertex_core; edge_core; max_core = !level }

let decompose = decompose_onepass

let max_core ?(strategy = Overlap) ?(domains = 1) ?(deadline = U.Deadline.never) h =
  let d = decompose_onepass ~strategy ~domains ~deadline h in
  (d.max_core, k_core ~strategy ~domains ~deadline h d.max_core)

let core_profile d =
  Array.init (d.max_core + 1) (fun k ->
      let nv =
        Array.fold_left (fun a c -> if c >= k then a + 1 else a) 0 d.vertex_core
      in
      let ne =
        Array.fold_left (fun a c -> if c >= k then a + 1 else a) 0 d.edge_core
      in
      (k, nv, ne))

type round_stats = {
  rounds : int;
  batch_sizes : int array;
  core_vertices : int;
  core_edges : int;
}

let peel_rounds ?(strategy = Overlap) ?(domains = 1) h k =
  if k < 0 then invalid_arg "Hypergraph_core.peel_rounds: negative k";
  let reduced, _ = Hypergraph_reduce.reduce h in
  let nv = H.n_vertices reduced in
  let st = init ~strategy ~domains reduced in
  for e = 0 to H.n_edges reduced - 1 do
    if st.edeg.(e) = 0 then delete_edge st e
  done;
  let batches = U.Dynarray.create ~dummy:0 () in
  let continue = ref (k > 0) in
  while !continue do
    let batch = ref [] in
    for v = 0 to nv - 1 do
      if st.valive.(v) && st.vdeg.(v) < k then batch := v :: !batch
    done;
    match !batch with
    | [] -> continue := false
    | vs ->
      U.Dynarray.push batches (List.length vs);
      List.iter (fun v -> if st.valive.(v) then delete_vertex st v) vs
  done;
  let core_vertices = Array.fold_left (fun a b -> if b then a + 1 else a) 0 st.valive in
  let core_edges = Array.fold_left (fun a b -> if b then a + 1 else a) 0 st.ealive in
  {
    rounds = U.Dynarray.length batches;
    batch_sizes = U.Dynarray.to_array batches;
    core_vertices;
    core_edges;
  }
